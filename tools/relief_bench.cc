/**
 * @file
 * relief_bench — the performance benchmark harness.
 *
 * Runs a matrix of application mixes under a set of scheduling
 * policies, times each simulation on the host clock, and writes one
 * machine-readable JSON document ("relief-bench-v1") summarizing
 * simulator throughput (events per host second), workload outcomes
 * (deadline fractions), and the mean critical-path latency
 * attribution per bucket (see manager/critical_path.hh). CI's bench
 * smoke job and scripts/run_bench.sh consume the file; the schema is
 * validated by scripts/check_bench_schema.py and documented in
 * docs/observability.md.
 *
 * Examples:
 *
 *   relief_bench                          # full matrix -> BENCH_relief.json
 *   relief_bench --smoke --out b.json     # one mix, two policies, 5 ms
 *   relief_bench --mixes CDL,GHL --policies RELIEF,FCFS --limit-ms 20
 *   relief_bench --jobs 8                 # matrix points on 8 threads
 *
 * Flags:
 *   --out FILE      output path (default BENCH_relief.json)
 *   --mixes LIST    comma-separated mixes (default CDL,GHL,CG)
 *   --policies LIST comma-separated policy names (default all)
 *   --limit-ms X    per-run simulation cap (default 50, the paper's)
 *   --continuous    loop applications until the cap
 *   --smoke         tiny matrix for CI: mix CDL, FCFS+RELIEF, 5 ms
 *   --jobs N        run matrix points on N worker threads (0 = one
 *                   per hardware thread). Every (mix, policy) run is
 *                   an independent simulation, so results — console
 *                   lines and the JSON document alike — are identical
 *                   for any N; only wall-clock changes. Per-run
 *                   events_per_sec is measured while N runs share the
 *                   host, so prefer --jobs 1 when quoting simulator
 *                   throughput (see docs/performance.md).
 */

#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/cli.hh"
#include "core/relief.hh"
#include "kernels/scratch.hh"
#include "sim/build_info.hh"
#include "sim/hostprof.hh"
#include "stats/json.hh"

using namespace relief;

namespace
{

struct BenchRun
{
    std::string mix;
    PolicyKind policy = PolicyKind::Relief;
    double hostWallS = 0.0;
    std::uint64_t simTicks = 0;
    std::uint64_t simEvents = 0;
    double nodeDeadlineFraction = 0.0;
    double dagDeadlineFraction = 0.0;
    std::uint64_t dagsFinished = 0;
    /** Mean per-DAG critical-path bucket values (us), plus total. */
    double cpMeanUs[numLatencyBuckets] = {};
    double cpTotalMeanUs = 0.0;
    /** Host-time attribution for this cell (--host-profile). */
    bool hasHostProf = false;
    HostProfSnapshot hostprof;

    double eventsPerSec() const
    {
        return hostWallS > 0.0 ? double(simEvents) / hostWallS : 0.0;
    }
};

std::vector<std::string>
splitCsv(const std::string &list)
{
    std::vector<std::string> out;
    std::stringstream in(list);
    std::string item;
    while (std::getline(in, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

BenchRun
runOne(const std::string &mix, PolicyKind policy, Tick limit,
       bool continuous, bool host_profile, std::uint64_t spin_ns)
{
    BenchRun run;
    run.mix = mix;
    run.policy = policy;

    resetNodeIds();      // results independent of worker-thread history
    resetKernelScratch(); // same contract for kernels.scratch_* stats

    ExperimentConfig config;
    config.mix = mix;
    config.soc.policy = policy;
    config.continuous = continuous;
    config.timeLimit = limit;

    Soc soc(config.soc);
    for (AppId app : parseMix(mix))
        soc.submit(buildApp(app, config.app), 0, continuous);
    if (spin_ns != 0)
        soc.sim().events().setDispatchSpin(spin_ns);

    // The profiled window is exactly the timed window, so per-cell
    // coverage relates attributed ns to the same wall time events/s
    // is computed from. HostProf state is thread-local: parallel
    // workers meter their own cells without synchronization.
    if (host_profile)
        setHostProfEnabled(true);
    auto start = std::chrono::steady_clock::now();
    soc.run(config.timeLimit);
    auto stop = std::chrono::steady_clock::now();
    if (host_profile) {
        setHostProfEnabled(false);
        run.hasHostProf = true;
        run.hostprof = hostProfSnapshot();
    }
    run.hostWallS =
        std::chrono::duration<double>(stop - start).count();

    run.simTicks = soc.sim().events().curTick();
    run.simEvents = soc.sim().events().numExecuted();

    const RunMetrics &m = soc.manager().metrics();
    run.nodeDeadlineFraction = m.nodeDeadlineFraction();
    run.dagDeadlineFraction = m.dagDeadlineFraction();
    run.dagsFinished = m.dagsFinished;
    const Histogram *buckets[numLatencyBuckets] = {
        &m.cpQueueWaitUs, &m.cpManagerUs,  &m.cpDmaInUs,
        &m.cpComputeUs,   &m.cpDmaOutUs,   &m.cpDepStallUs};
    for (int b = 0; b < numLatencyBuckets; ++b)
        run.cpMeanUs[b] = buckets[b]->mean();
    run.cpTotalMeanUs = m.cpTotalUs.mean();
    return run;
}

void
writeBenchJson(std::ostream &os, const std::vector<BenchRun> &runs,
               Tick limit, bool smoke, int jobs,
               std::uint64_t spin_ns)
{
    os << "{\n  \"schema\": \"relief-bench-v1\",\n"
       << "  \"build_info\": ";
    writeBuildInfoJson(os, 2);
    os << ",\n"
       << "  \"limit_ms\": " << jsonNumber(toMs(limit)) << ",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"jobs\": " << jobs << ",\n"
       << "  \"inject_spin_ns\": " << spin_ns << ",\n"
       << "  \"runs\": [";
    bool first = true;
    for (const BenchRun &run : runs) {
        if (!first)
            os << ",";
        first = false;
        os << "\n    {\n"
           << "      \"mix\": \"" << jsonEscape(run.mix) << "\",\n"
           << "      \"policy\": \"" << policyName(run.policy)
           << "\",\n"
           << "      \"host_wall_s\": " << jsonNumber(run.hostWallS)
           << ",\n"
           << "      \"sim_ticks\": " << run.simTicks << ",\n"
           << "      \"sim_events\": " << run.simEvents << ",\n"
           << "      \"events_per_sec\": "
           << jsonNumber(run.eventsPerSec()) << ",\n"
           << "      \"dags_finished\": " << run.dagsFinished << ",\n"
           << "      \"node_deadline_fraction\": "
           << jsonNumber(run.nodeDeadlineFraction) << ",\n"
           << "      \"dag_deadline_fraction\": "
           << jsonNumber(run.dagDeadlineFraction) << ",\n"
           << "      \"critical_path_us\": {";
        for (int b = 0; b < numLatencyBuckets; ++b) {
            os << (b ? ", " : "") << "\"" << latencyBucketName(b)
               << "\": " << jsonNumber(run.cpMeanUs[b]);
        }
        os << ", \"total\": " << jsonNumber(run.cpTotalMeanUs)
           << "}";
        if (run.hasHostProf) {
            os << ",\n      \"hostprof\": ";
            run.hostprof.writeJson(os, /*standalone=*/false, 6);
        }
        os << "\n    }";
    }
    os << "\n  ]\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path = "BENCH_relief.json";
    std::vector<std::string> mixes = {"CDL", "GHL", "CG"};
    std::vector<std::string> policies;
    for (PolicyKind kind : allPolicies)
        policies.push_back(policyName(kind));
    double limit_ms = toMs(continuousWindow);
    bool continuous = false;
    bool smoke = false;
    int jobs = 1;
    bool host_profile = false;
    std::uint64_t spin_ns = 0;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto need_value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "flag " << arg << " needs a value\n";
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--out") {
            out_path = need_value();
        } else if (arg == "--mixes") {
            mixes = splitCsv(need_value());
        } else if (arg == "--policies") {
            policies = splitCsv(need_value());
        } else if (arg == "--limit-ms") {
            limit_ms = std::atof(need_value().c_str());
            if (limit_ms <= 0.0) {
                std::cerr << "--limit-ms needs a positive value\n";
                return 1;
            }
        } else if (arg == "--continuous") {
            continuous = true;
        } else if (arg == "--jobs") {
            jobs = std::atoi(need_value().c_str());
            if (jobs < 0) {
                std::cerr << "--jobs needs a non-negative value\n";
                return 1;
            }
            if (jobs == 0)
                jobs = defaultParallelJobs();
        } else if (arg == "--host-profile") {
            host_profile = true;
        } else if (arg == "--inject-spin-ns") {
            long long ns = std::atoll(need_value().c_str());
            if (ns < 0) {
                std::cerr << "--inject-spin-ns needs a non-negative"
                             " value\n";
                return 1;
            }
            spin_ns = std::uint64_t(ns);
        } else if (arg == "--smoke") {
            smoke = true;
            mixes = {"CDL"};
            policies = {policyName(PolicyKind::Fcfs),
                        policyName(PolicyKind::Relief)};
            limit_ms = 5.0;
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: relief_bench [--out FILE] "
                         "[--mixes LIST] [--policies LIST] "
                         "[--limit-ms X] [--continuous] [--smoke] "
                         "[--jobs N] [--host-profile] "
                         "[--inject-spin-ns NS]\n";
            return 0;
        } else {
            std::cerr << "unknown flag '" << arg << "'\n";
            return 1;
        }
    }

    Tick limit = fromMs(limit_ms);

    // Expand and validate the whole matrix up front, then run its
    // points (each an independent simulation) on the worker pool.
    // Results land in index-owned slots, so the printed lines and the
    // JSON document come out in matrix order for any --jobs value.
    struct MatrixPoint
    {
        std::string mix;
        PolicyKind policy;
    };
    std::vector<MatrixPoint> points;
    std::vector<BenchRun> runs;
    try {
        for (const std::string &mix : mixes) {
            parseMix(mix); // validate before timing anything
            for (const std::string &policy : policies)
                points.push_back({mix, policyFromName(policy)});
        }
        runs.resize(points.size());
        parallelFor(points.size(), jobs, [&](std::size_t i) {
            runs[i] = runOne(points[i].mix, points[i].policy, limit,
                             continuous, host_profile, spin_ns);
        });
    } catch (const FatalError &err) {
        std::cerr << err.what() << "\n";
        return 1;
    }
    for (const BenchRun &run : runs) {
        std::cout << "bench " << run.mix << " / "
                  << policyName(run.policy) << ": "
                  << Table::num(run.hostWallS, 3) << " s host, "
                  << run.simEvents << " events ("
                  << Table::num(run.eventsPerSec() / 1e6, 2)
                  << " M events/s), dag deadline fraction "
                  << Table::num(run.dagDeadlineFraction, 2) << "\n";
    }

    std::ofstream out(out_path);
    if (!out) {
        std::cerr << "cannot write " << out_path << "\n";
        return 1;
    }
    writeBenchJson(out, runs, limit, smoke, jobs, spin_ns);
    std::cout << "BENCH JSON written to " << out_path << "\n";
    return 0;
}
