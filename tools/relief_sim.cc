/**
 * @file
 * relief_sim — the command-line simulation driver.
 *
 * Configure the platform and workload entirely from flags, run one
 * simulation, and print the full metrics report (plus an optional
 * schedule trace). Examples:
 *
 *   relief_sim --mix GHL --policy LAX
 *   relief_sim --mix CDG --policy RELIEF --continuous --limit-ms 50
 *   relief_sim --mix CG --instances EM=2 --fabric xbar --trace out.json
 *   relief_sim --mix CDL --stats-json stats.json --debug-flags Sched
 *
 * --trace FILE writes a Chrome trace (spans, counter tracks, and
 * dependency-edge flow arrows; load in Perfetto), --stats FILE the
 * gem5-style text dump, --stats-json FILE the stable-schema JSON
 * stats, --latency-breakdown prints the per-DAG critical-path
 * attribution table, and --debug-flags LIST enables sim-time-stamped
 * category logging (e.g. Sched,Dma,Mem).
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/cli.hh"
#include "core/relief.hh"
#include "dag/workload_file.hh"
#include "sim/hostprof.hh"

using namespace relief;

int
main(int argc, char **argv)
{
    std::string trace_path;
    std::string stats_path;
    std::string dot_dir;
    std::string workload_path;
    std::string pressure_path;
    std::string hostprof_path;
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--trace" && i + 1 < argc) {
            trace_path = argv[++i];
        } else if (arg == "--stats" && i + 1 < argc) {
            stats_path = argv[++i];
        } else if (arg == "--dot" && i + 1 < argc) {
            dot_dir = argv[++i];
        } else if (arg == "--workload" && i + 1 < argc) {
            workload_path = argv[++i];
        } else if (arg == "--pressure-report" && i + 1 < argc) {
            pressure_path = argv[++i];
        } else if (arg == "--host-profile" && i + 1 < argc) {
            hostprof_path = argv[++i];
        } else if (arg == "--help" || arg == "-h") {
            std::cout << cliUsage()
                      << " [--workload FILE] [--trace FILE] [--stats FILE] [--dot DIR]"
                         " [--pressure-report FILE] [--host-profile FILE]\n";
            return 0;
        } else {
            args.push_back(arg);
        }
    }

    ExperimentConfig config;
    try {
        config = parseCliOptions(args);
    } catch (const FatalError &err) {
        std::cerr << err.what() << "\n";
        return 1;
    }

    // Start the host-time meter before the platform exists so model
    // construction and workload building are inside the measured
    // window (attributed to "other" via the scope below).
    if (!hostprof_path.empty())
        setHostProfEnabled(true);
    HostProfScope buildProf(HostCat::Other);

    Soc soc(config.soc);
    if (!trace_path.empty())
        soc.enableTracing();

    std::vector<DagPtr> dags;
    try {
        if (!workload_path.empty()) {
            // A workload file replaces the built-in mix.
            dags = loadWorkloadFile(workload_path);
        } else {
            for (AppId app : parseMix(config.mix))
                dags.push_back(buildApp(app, config.app));
        }
    } catch (const FatalError &err) {
        std::cerr << err.what() << "\n";
        return 1;
    }
    for (DagPtr &dag : dags) {
        if (!dot_dir.empty()) {
            std::string path = dot_dir + "/" + dag->name() + ".dot";
            std::ofstream out(path);
            if (!out) {
                std::cerr << "cannot write " << path << "\n";
                return 1;
            }
            dag->writeDot(out);
            std::cout << "DAG written to " << path << "\n";
        }
        soc.submit(dag, 0, config.continuous);
    }
    soc.run(config.timeLimit);
    MetricsReport report = soc.report();

    std::string workload_label = workload_path.empty()
                                     ? "mix " + config.mix
                                     : "workload " + workload_path;
    Table summary("relief_sim — " + workload_label + " under " +
                  policyName(config.soc.policy));
    summary.setHeader({"metric", "value"});
    summary.addRow({"execution time (ms)", Table::num(toMs(report.execTime), 3)});
    summary.addRow({"edges consumed", std::to_string(report.run.edgesConsumed)});
    summary.addRow({"forwards", std::to_string(report.run.forwards)});
    summary.addRow({"colocations", std::to_string(report.run.colocations)});
    summary.addRow({"forward+coloc share (%)",
                    Table::pct(report.forwardFraction())});
    summary.addRow({"DRAM traffic (KiB)",
                    std::to_string(report.dramBytes / 1024)});
    summary.addRow({"DRAM traffic vs all-DRAM (%)",
                    Table::pct(report.dramTrafficFraction())});
    summary.addRow({"SPM-to-SPM traffic (KiB)",
                    std::to_string(report.spmForwardBytes / 1024)});
    summary.addRow({"DRAM energy (uJ)",
                    Table::num(report.dramEnergyPJ / 1e6, 2)});
    summary.addRow({"SPM energy (uJ)",
                    Table::num(report.spmEnergyPJ / 1e6, 2)});
    summary.addRow({"node deadlines met (%)",
                    Table::pct(report.run.nodeDeadlineFraction())});
    summary.addRow({"DAG deadlines met",
                    std::to_string(report.run.dagDeadlinesMet) + "/" +
                        std::to_string(report.run.dagsFinished)});
    summary.addRow({"accelerator occupancy",
                    Table::num(report.accOccupancy, 3)});
    summary.addRow({"interconnect occupancy (%)",
                    Table::pct(report.fabricOccupancy)});
    summary.addRow({"manager busy (us)",
                    Table::num(toUs(report.run.managerBusyTime), 1)});
    summary.print(std::cout);

    Table apps("per application");
    apps.setHeader({"app", "iterations", "deadlines met", "gmean slowdown",
                    "max slowdown"});
    for (const AppOutcome &app : report.apps) {
        apps.addRow({app.name, std::to_string(app.iterations),
                     std::to_string(app.deadlinesMet),
                     app.starved() ? "inf" : Table::num(app.meanSlowdown(), 2),
                     app.starved() ? "inf" : Table::num(app.maxSlowdown(), 2)});
    }
    std::cout << "\n";
    apps.print(std::cout);

    if (config.latencyBreakdown) {
        std::cout << "\n";
        soc.printLatencyBreakdown(std::cout);
    }

    if (!trace_path.empty()) {
        std::ofstream out(trace_path);
        if (!out) {
            std::cerr << "cannot write trace to " << trace_path << "\n";
            return 1;
        }
        soc.trace()->writeChromeJson(out);
        std::cout << "\ntrace written to " << trace_path << "\n";
    }
    if (!stats_path.empty()) {
        std::ofstream out(stats_path);
        if (!out) {
            std::cerr << "cannot write stats to " << stats_path << "\n";
            return 1;
        }
        soc.dumpStats(out);
        std::cout << "stats written to " << stats_path << "\n";
    }
    if (!config.statsJsonPath.empty()) {
        std::ofstream out(config.statsJsonPath);
        if (!out) {
            std::cerr << "cannot write stats to " << config.statsJsonPath
                      << "\n";
            return 1;
        }
        soc.writeStatsJson(out);
        std::cout << "JSON stats written to " << config.statsJsonPath
                  << "\n";
    }
    if (!pressure_path.empty()) {
        std::ofstream out(pressure_path);
        if (!out) {
            std::cerr << "cannot write pressure report to "
                      << pressure_path << "\n";
            return 1;
        }
        soc.writePressureJson(out);
        std::cout << "pressure report written to " << pressure_path
                  << "\n";

        // Console digest: the busiest resources and who pressures them.
        const PressureLedger &ledger = soc.pressureLedger();
        Table pressure("memory pressure — top contenders per resource");
        pressure.setHeader({"resource", "source", "qos", "traffic",
                            "KiB", "wait (us)", "caused (us)"});
        for (int res = 0; res < ledger.numResources(); ++res) {
            auto rows = ledger.topContenders(res, 3);
            if (rows.empty())
                continue;
            for (const auto &row : rows) {
                int src = ledger.keySource(row.key);
                pressure.addRow(
                    {ledger.resource(res).name(),
                     src < 0 ? "untagged" : ledger.sourceName(src),
                     ledger.qosClassName(ledger.keyQos(row.key)),
                     row.key == 0 ? "untagged"
                                  : pressureTrafficName(
                                        ledger.keyTraffic(row.key)),
                     std::to_string(row.slot.bytes / 1024),
                     Table::num(toUs(row.slot.waitSuffered), 1),
                     Table::num(toUs(row.slot.waitCaused), 1)});
            }
        }
        std::cout << "\n";
        pressure.print(std::cout);
    }
    if (!hostprof_path.empty()) {
        // Freeze the meter (charging the open root scope up to now),
        // then export the standalone relief-hostprof-v1 document.
        setHostProfEnabled(false);
        HostProfSnapshot snap = hostProfSnapshot();
        std::ofstream out(hostprof_path);
        if (!out) {
            std::cerr << "cannot write host profile to " << hostprof_path
                      << "\n";
            return 1;
        }
        snap.writeJson(out, /*standalone=*/true);
        out << "\n";
        std::cout << "host profile written to " << hostprof_path
                  << " (coverage "
                  << Table::pct(snap.coverage()) << "%)\n";
    }
    return 0;
}
