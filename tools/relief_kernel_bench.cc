/**
 * @file
 * relief_kernel_bench — the functional-kernel microbenchmark.
 *
 * Times every row primitive of the SIMD kernel engine
 * (kernels/simd/simd.hh) under the scalar backend and under the
 * active (widest supported, or --kernel-isa forced) backend on
 * cache-resident images, verifies the two produce bit-identical
 * output, and writes one machine-readable JSON document
 * ("relief-kernels-v1") with per-kernel throughput and speedups plus
 * the geometric-mean speedup. CI's kernel-bench job consumes the
 * file; the schema is validated by scripts/check_bench_schema.py and
 * diffable against a baseline with relief_compare --diff (the same
 * noise model as relief-bench-v1 documents).
 *
 * Examples:
 *
 *   relief_kernel_bench                      # -> KERNELS_relief.json
 *   relief_kernel_bench --smoke --out k.json # tiny image, short reps
 *   relief_kernel_bench --kernel-isa sse4.2  # force the SIMD side
 *
 * Flags:
 *   --out FILE        output path (default KERNELS_relief.json)
 *   --kernel-isa NAME SIMD backend to measure (default: widest
 *                     supported; "scalar" measures scalar vs scalar)
 *   --smoke           small image and short timing windows for CI
 *   --reps N          minimum timed repetitions per kernel (default 8)
 *   --min-ms X        minimum timed window per kernel in host ms
 *                     (default 20, smoke 2)
 *
 * Exit status: 0 on success, 1 on a bit-identity mismatch between the
 * scalar and SIMD backends (the contract simd_test.cc enforces per
 * shape; here it is re-checked on the benchmark images).
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <random>
#include <string>
#include <vector>

#include "kernels/filters.hh"
#include "kernels/simd/simd.hh"
#include "sim/build_info.hh"
#include "sim/logging.hh"
#include "stats/json.hh"
#include "stats/table.hh"

using namespace relief;

namespace
{

/** One measured kernel: a closure running the op once over the whole
 *  image with a given backend, plus its reporting metadata. */
struct KernelCase
{
    std::string name;
    std::string unit;     ///< "MPix/s" (2-D) or "Melem/s" (flat).
    /** Run the kernel once with @p ops, writing into @p out. */
    void (*run)(const KernelOps &ops, const std::vector<float> &in,
                const std::vector<float> &in2, int w, int h,
                std::vector<float> &out);
};

/** Deterministic pseudo-image in [0, 1) plus a few exact zeros and
 *  negatives so the guarded ops (Div, Sqrt) exercise both sides of
 *  their masks. */
std::vector<float>
makeInput(std::size_t n, std::uint32_t seed)
{
    std::mt19937 rng(seed);
    std::uniform_real_distribution<float> dist(-0.25f, 1.0f);
    std::vector<float> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = dist(rng);
    for (std::size_t i = 0; i < n; i += 97)
        v[i] = 0.0f;
    return v;
}

/** Clamped row pointers r[y-half] .. r[y+half] for a conv/NMS row. */
inline void
clampedRows(const float *base, int w, int h, int y, int half,
            const float **rows)
{
    for (int fy = -half; fy <= half; ++fy) {
        int yy = std::clamp(y + fy, 0, h - 1);
        rows[fy + half] = base + std::size_t(yy) * w;
    }
}

void
runConv(const KernelOps &ops, const std::vector<float> &in,
        const std::vector<float> &, int w, int h,
        std::vector<float> &out, const Filter2D &filter)
{
    int half = filter.size() / 2;
    const float *rows[7];
    RELIEF_ASSERT(filter.size() <= 7, "bench conv filter too large");
    for (int y = 0; y < h; ++y) {
        clampedRows(in.data(), w, h, y, half, rows);
        ops.convRow(rows, w, filter.taps(), filter.size(),
                    out.data() + std::size_t(y) * w);
    }
}

void
runConv3(const KernelOps &ops, const std::vector<float> &in,
         const std::vector<float> &in2, int w, int h,
         std::vector<float> &out)
{
    static const Filter2D filter = sobelX();
    runConv(ops, in, in2, w, h, out, filter);
}

void
runConv5(const KernelOps &ops, const std::vector<float> &in,
         const std::vector<float> &in2, int w, int h,
         std::vector<float> &out)
{
    static const Filter2D filter = gaussianFilter(5);
    runConv(ops, in, in2, w, h, out, filter);
}

void
runSepConv5(const KernelOps &ops, const std::vector<float> &in,
            const std::vector<float> &, int w, int h,
            std::vector<float> &out)
{
    static const std::vector<float> taps = gaussianTaps1d(5);
    static std::vector<float> tmp;
    tmp.resize(in.size());
    for (int y = 0; y < h; ++y)
        ops.sepConvRowH(in.data() + std::size_t(y) * w, w, taps.data(),
                        int(taps.size()),
                        tmp.data() + std::size_t(y) * w);
    int half = int(taps.size()) / 2;
    const float *rows[7];
    for (int y = 0; y < h; ++y) {
        clampedRows(tmp.data(), w, h, y, half, rows);
        ops.sepConvRowV(rows, w, taps.data(), int(taps.size()),
                        out.data() + std::size_t(y) * w);
    }
}

void
runCannyNms(const KernelOps &ops, const std::vector<float> &in,
            const std::vector<float> &in2, int w, int h,
            std::vector<float> &out)
{
    const float *rows[3];
    for (int y = 0; y < h; ++y) {
        clampedRows(in.data(), w, h, y, 1, rows);
        ops.cannyNmsRow(rows, in2.data() + std::size_t(y) * w, w,
                        out.data() + std::size_t(y) * w);
    }
}

void
runHarrisNms(const KernelOps &ops, const std::vector<float> &in,
             const std::vector<float> &, int w, int h,
             std::vector<float> &out)
{
    const float *rows[3];
    for (int y = 0; y < h; ++y) {
        clampedRows(in.data(), w, h, y, 1, rows);
        ops.harrisNmsRow(rows, w, out.data() + std::size_t(y) * w);
    }
}

void
runBt601(const KernelOps &ops, const std::vector<float> &in,
         const std::vector<float> &in2, int w, int h,
         std::vector<float> &out)
{
    std::size_t n = std::size_t(w) * h;
    ops.bt601(in.data(), in2.data(), in.data(), out.data(), n);
}

void
runCcmClamp(const KernelOps &ops, const std::vector<float> &in,
            const std::vector<float> &in2, int w, int h,
            std::vector<float> &out)
{
    static const float ccm[3][3] = {{1.7f, -0.5f, -0.2f},
                                    {-0.3f, 1.6f, -0.3f},
                                    {-0.2f, -0.5f, 1.7f}};
    std::size_t n = std::size_t(w) * h;
    // ccmClamp is in place: stage the three channels into out-adjacent
    // scratch so every rep sees the same input bits.
    static std::vector<float> r, g, b;
    r.assign(in.begin(), in.begin() + long(n));
    g.assign(in2.begin(), in2.begin() + long(n));
    b.assign(in.begin(), in.begin() + long(n));
    ops.ccmClamp(r.data(), g.data(), b.data(), n, ccm);
    std::memcpy(out.data(), r.data(), n * sizeof(float));
}

template <ElemOp op>
void
runElem(const KernelOps &ops, const std::vector<float> &in,
        const std::vector<float> &in2, int w, int h,
        std::vector<float> &out)
{
    std::size_t n = std::size_t(w) * h;
    ops.elemRow(op, in.data(), in2.data(), 0.5f, out.data(), n);
}

void
runGradMag(const KernelOps &ops, const std::vector<float> &in,
           const std::vector<float> &in2, int w, int h,
           std::vector<float> &out)
{
    std::size_t n = std::size_t(w) * h;
    ops.gradMag(in.data(), in2.data(), out.data(), n);
}

void
runRnnGatePre(const KernelOps &ops, const std::vector<float> &in,
              const std::vector<float> &in2, int w, int h,
              std::vector<float> &out)
{
    std::size_t n = std::size_t(w) * h;
    ops.rnnGatePre(in.data(), in2.data(), in2.data(), in.data(),
                   in2.data(), out.data(), n);
}

const KernelCase kernelCases[] = {
    {"conv3x3", "MPix/s", runConv3},
    {"conv5x5", "MPix/s", runConv5},
    {"sep_conv5", "MPix/s", runSepConv5},
    {"canny_nms", "MPix/s", runCannyNms},
    {"harris_nms", "MPix/s", runHarrisNms},
    {"bt601", "MPix/s", runBt601},
    {"ccm_clamp", "MPix/s", runCcmClamp},
    {"grad_mag", "Melem/s", runGradMag},
    {"elem_add", "Melem/s", runElem<ElemOp::Add>},
    {"elem_mul", "Melem/s", runElem<ElemOp::Mul>},
    {"elem_div", "Melem/s", runElem<ElemOp::Div>},
    {"elem_sqrt", "Melem/s", runElem<ElemOp::Sqrt>},
    {"elem_scale", "Melem/s", runElem<ElemOp::Scale>},
    {"rnn_gate_pre", "Melem/s", runRnnGatePre},
};

struct CaseResult
{
    std::string name;
    std::string unit;
    int reps = 0;
    double scalarRate = 0.0; ///< M units per second, scalar backend.
    double simdRate = 0.0;   ///< M units per second, SIMD backend.
    bool identical = false;

    double speedup() const
    {
        return scalarRate > 0.0 ? simdRate / scalarRate : 0.0;
    }
};

/** Best-of-reps throughput of @p kernel with @p ops, timed until both
 *  @p min_reps and @p min_ms are reached. */
double
measure(const KernelCase &kernel, const KernelOps &ops,
        const std::vector<float> &in, const std::vector<float> &in2,
        int w, int h, std::vector<float> &out, int min_reps,
        double min_ms, int *reps_out)
{
    using clock = std::chrono::steady_clock;
    double best_s = 1e30;
    double total_s = 0.0;
    int reps = 0;
    while (reps < min_reps || total_s * 1e3 < min_ms) {
        auto start = clock::now();
        kernel.run(ops, in, in2, w, h, out);
        double s =
            std::chrono::duration<double>(clock::now() - start).count();
        best_s = std::min(best_s, s);
        total_s += s;
        ++reps;
        if (reps > 100000) // degenerate clock: bail out
            break;
    }
    if (reps_out)
        *reps_out = reps;
    double work = double(w) * double(h);
    return best_s > 0.0 ? work / best_s / 1e6 : 0.0;
}

void
writeKernelsJson(std::ostream &os, const std::vector<CaseResult> &runs,
                 KernelIsa isa, int lane_width, bool smoke, int w,
                 int h, double geomean)
{
    os << "{\n  \"schema\": \"relief-kernels-v1\",\n"
       << "  \"build_info\": ";
    writeBuildInfoJson(os, 2);
    os << ",\n"
       << "  \"isa\": \"" << kernelIsaName(isa) << "\",\n"
       << "  \"lane_width\": " << lane_width << ",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"width\": " << w << ",\n"
       << "  \"height\": " << h << ",\n"
       << "  \"runs\": [";
    bool first = true;
    for (const CaseResult &run : runs) {
        if (!first)
            os << ",";
        first = false;
        os << "\n    {\n"
           << "      \"kernel\": \"" << jsonEscape(run.name) << "\",\n"
           << "      \"unit\": \"" << run.unit << "\",\n"
           << "      \"reps\": " << run.reps << ",\n"
           << "      \"scalar\": " << jsonNumber(run.scalarRate)
           << ",\n"
           << "      \"simd\": " << jsonNumber(run.simdRate) << ",\n"
           << "      \"speedup\": " << jsonNumber(run.speedup())
           << ",\n"
           << "      \"identical\": "
           << (run.identical ? "true" : "false") << "\n    }";
    }
    os << "\n  ],\n"
       << "  \"geomean_speedup\": " << jsonNumber(geomean) << "\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path = "KERNELS_relief.json";
    bool smoke = false;
    int min_reps = 8;
    double min_ms = -1.0; // default depends on --smoke

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto need_value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "flag " << arg << " needs a value\n";
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--out") {
            out_path = need_value();
        } else if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--kernel-isa") {
            try {
                setKernelIsa(kernelIsaFromName(need_value()));
            } catch (const FatalError &err) {
                std::cerr << err.what() << "\n";
                return 1;
            }
        } else if (arg == "--reps") {
            min_reps = std::atoi(need_value().c_str());
            if (min_reps < 1) {
                std::cerr << "--reps needs a positive count\n";
                return 1;
            }
        } else if (arg == "--min-ms") {
            min_ms = std::atof(need_value().c_str());
            if (min_ms <= 0.0) {
                std::cerr << "--min-ms needs a positive value\n";
                return 1;
            }
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: relief_kernel_bench [--out FILE] "
                         "[--kernel-isa NAME] [--smoke] [--reps N] "
                         "[--min-ms X]\n";
            return 0;
        } else {
            std::cerr << "unknown flag '" << arg << "'\n";
            return 1;
        }
    }
    if (min_ms <= 0.0)
        min_ms = smoke ? 2.0 : 20.0;

    // Cache-resident working set: measure ALU throughput, not DRAM.
    int w = smoke ? 96 : 320;
    int h = smoke ? 64 : 180;
    std::size_t n = std::size_t(w) * h;

    const KernelOps &simd = kernelOps(); // resolves the active ISA
    const KernelOps &scalar = kernelOpsFor(KernelIsa::Scalar);
    std::cout << "kernel bench: " << w << "x" << h << ", scalar vs "
              << kernelIsaName(simd.isa) << " (" << simd.laneWidth
              << " lanes)\n";

    std::vector<float> in = makeInput(n, 1);
    std::vector<float> in2 = makeInput(n, 2);
    // canny_nms consumes a direction plane: fill in2's alias role with
    // angles spanning all four quantization classes.
    std::vector<float> dir(n);
    for (std::size_t i = 0; i < n; ++i)
        dir[i] = float(M_PI) * (float(i % 360) / 180.0f - 1.0f);

    std::vector<float> out_scalar(n), out_simd(n);
    std::vector<CaseResult> results;
    double log_sum = 0.0;
    int mismatches = 0;
    for (const KernelCase &kernel : kernelCases) {
        const std::vector<float> &second =
            kernel.name == "canny_nms" ? dir : in2;
        CaseResult r;
        r.name = kernel.name;
        r.unit = kernel.unit;
        r.scalarRate = measure(kernel, scalar, in, second, w, h,
                               out_scalar, min_reps, min_ms, nullptr);
        r.simdRate = measure(kernel, simd, in, second, w, h, out_simd,
                             min_reps, min_ms, &r.reps);
        r.identical = std::memcmp(out_scalar.data(), out_simd.data(),
                                  n * sizeof(float)) == 0;
        if (!r.identical) {
            ++mismatches;
            std::cerr << "BIT-IDENTITY VIOLATION: " << kernel.name
                      << " differs between scalar and "
                      << kernelIsaName(simd.isa) << "\n";
        }
        log_sum += std::log(std::max(r.speedup(), 1e-12));
        results.push_back(r);
        std::cout << "  " << kernel.name << ": "
                  << Table::num(r.scalarRate, 1) << " -> "
                  << Table::num(r.simdRate, 1) << " " << kernel.unit
                  << " (" << Table::num(r.speedup(), 2) << "x, "
                  << (r.identical ? "bit-identical" : "MISMATCH")
                  << ")\n";
    }
    double geomean = std::exp(log_sum / double(std::size(kernelCases)));
    std::cout << "geomean speedup: " << Table::num(geomean, 2)
              << "x\n";

    std::ofstream out(out_path);
    if (!out) {
        std::cerr << "cannot write " << out_path << "\n";
        return 1;
    }
    writeKernelsJson(out, results, simd.isa, simd.laneWidth, smoke, w,
                     h, geomean);
    std::cout << "KERNELS JSON written to " << out_path << "\n";
    return mismatches > 0 ? 1 : 0;
}
