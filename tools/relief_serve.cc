/**
 * @file
 * relief_serve — the online serving driver CLI.
 *
 * Runs one open-loop serving experiment: stochastic request arrivals
 * against a configured platform and scheduling policy, with QoS
 * classes, admission control, and per-class SLO accounting
 * (docs/serving.md). Prints the per-class SLO table and optionally
 * writes a single-run relief-serve-v1 JSON document.
 *
 * Examples:
 *
 *   relief_serve --policy RELIEF --rate 400
 *   relief_serve --arrival bursty --rate 600 --admission queue-cap \
 *       --queue-cap 32 --horizon-ms 100 --seed 7 --out serve.json
 *   relief_serve --arrival trace --trace-file arrivals.txt
 *
 * Flags:
 *   --policy NAME        scheduling policy (default RELIEF)
 *   --rate X             mean offered rate, requests/s (default 200)
 *   --arrival KIND       poisson | bursty | trace (default poisson)
 *   --trace-file FILE    arrival trace for --arrival trace
 *   --burst-mult X       bursty: burst-state rate multiplier (default 4)
 *   --burst-frac X       bursty: fraction of time in burst (default .25)
 *   --admission KIND     admit-all | queue-cap | laxity (default
 *                        admit-all)
 *   --queue-cap N        queue-cap: in-system request cap (default 64)
 *   --horizon-ms X       measurement window (default 50, the paper's)
 *   --seed N             arrival-stream seed (default 1)
 *   --stats-json FILE    dump the full stat registry (incl. serve.*)
 *   --out FILE           write a relief-serve-v1 JSON document
 *
 * Telemetry (docs/serving.md "Request tracing"):
 *   --trace FILE         Perfetto trace: serve counter tracks + kept
 *                        request span trees (implies request tracing)
 *   --trace-json FILE    relief-trace-v1 document of kept traces
 *                        (implies request tracing)
 *   --sample-ok X        tail-sampling keep fraction for OK traces
 *                        (default 0; misses/shed/rejected always kept)
 *   --expo FILE          periodic Prometheus text exposition snapshots
 *   --expo-period-us N   exposition cadence (default 5000)
 *   --expo-series        also keep every snapshot as FILE.<n>
 *   --alerts             evaluate per-class SLO burn-rate alerts
 *   --slo-target X       alert SLO attainment target (default 0.9)
 *   --alert-fast-ms X    fast burn window (default 5)
 *   --alert-slow-ms X    slow burn window (default 25)
 *   --debug-flags LIST   debug categories, e.g. Serve,Sched
 */

#include <fstream>
#include <iostream>
#include <string>

#include "core/cli.hh"
#include "core/relief.hh"
#include "serve/server.hh"
#include "sim/build_info.hh"
#include "sim/debug.hh"
#include "stats/json.hh"

using namespace relief;

int
main(int argc, char **argv)
{
    ServeConfig config;
    std::string out_path;
    std::string stats_json_path;
    std::string trace_path;
    std::string trace_json_path;
    double horizon_ms = toMs(continuousWindow);

    try {
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            auto need_value = [&]() -> std::string {
                if (i + 1 >= argc)
                    fatal("flag ", arg, " needs a value");
                return argv[++i];
            };
            if (arg == "--policy") {
                config.soc.policy = policyFromName(need_value());
            } else if (arg == "--rate") {
                config.arrival.ratePerSec =
                    std::atof(need_value().c_str());
                if (config.arrival.ratePerSec <= 0.0)
                    fatal("--rate needs a positive value");
            } else if (arg == "--arrival") {
                config.arrival.kind = arrivalFromName(need_value());
            } else if (arg == "--trace-file") {
                config.arrival.tracePath = need_value();
            } else if (arg == "--burst-mult") {
                config.arrival.burstRateMultiplier =
                    std::atof(need_value().c_str());
            } else if (arg == "--burst-frac") {
                config.arrival.burstFraction =
                    std::atof(need_value().c_str());
            } else if (arg == "--admission") {
                config.admission.kind = admissionFromName(need_value());
            } else if (arg == "--queue-cap") {
                config.admission.queueCap =
                    std::atoi(need_value().c_str());
            } else if (arg == "--horizon-ms") {
                horizon_ms = std::atof(need_value().c_str());
                if (horizon_ms <= 0.0)
                    fatal("--horizon-ms needs a positive value");
            } else if (arg == "--seed") {
                config.seed =
                    std::uint64_t(std::atoll(need_value().c_str()));
            } else if (arg == "--stats-json") {
                stats_json_path = need_value();
            } else if (arg == "--out") {
                out_path = need_value();
            } else if (arg == "--trace") {
                trace_path = need_value();
                config.telemetry.perfetto = true;
                config.telemetry.traceRequests = true;
            } else if (arg == "--trace-json") {
                trace_json_path = need_value();
                config.telemetry.traceRequests = true;
            } else if (arg == "--sample-ok") {
                config.telemetry.okFraction =
                    std::atof(need_value().c_str());
                if (config.telemetry.okFraction < 0.0 ||
                    config.telemetry.okFraction > 1.0) {
                    fatal("--sample-ok needs a fraction in [0, 1]");
                }
            } else if (arg == "--expo") {
                config.telemetry.exposition.path = need_value();
            } else if (arg == "--expo-period-us") {
                double us = std::atof(need_value().c_str());
                if (us <= 0.0)
                    fatal("--expo-period-us needs a positive value");
                config.telemetry.exposition.period = fromUs(us);
            } else if (arg == "--expo-series") {
                config.telemetry.exposition.series = true;
            } else if (arg == "--alerts") {
                config.telemetry.alerts = true;
            } else if (arg == "--slo-target") {
                double target = std::atof(need_value().c_str());
                if (target <= 0.0 || target >= 1.0)
                    fatal("--slo-target needs a value in (0, 1)");
                config.telemetry.burnRate.sloTarget = target;
            } else if (arg == "--alert-fast-ms") {
                double ms = std::atof(need_value().c_str());
                if (ms <= 0.0)
                    fatal("--alert-fast-ms needs a positive value");
                config.telemetry.burnRate.fastWindow = fromMs(ms);
            } else if (arg == "--alert-slow-ms") {
                double ms = std::atof(need_value().c_str());
                if (ms <= 0.0)
                    fatal("--alert-slow-ms needs a positive value");
                config.telemetry.burnRate.slowWindow = fromMs(ms);
            } else if (arg == "--debug-flags") {
                setDebugFlags(need_value());
            } else if (arg == "--help" || arg == "-h") {
                std::cout
                    << "usage: relief_serve [--policy NAME] [--rate X] "
                       "[--arrival poisson|bursty|trace] "
                       "[--trace-file FILE] [--burst-mult X] "
                       "[--burst-frac X] "
                       "[--admission admit-all|queue-cap|laxity] "
                       "[--queue-cap N] [--horizon-ms X] [--seed N] "
                       "[--stats-json FILE] [--out FILE] "
                       "[--trace FILE] [--trace-json FILE] "
                       "[--sample-ok X] [--expo FILE] "
                       "[--expo-period-us N] [--expo-series] "
                       "[--alerts] [--slo-target X] "
                       "[--alert-fast-ms X] [--alert-slow-ms X] "
                       "[--debug-flags LIST]\n";
                return 0;
            } else {
                fatal("unknown flag '", arg, "'");
            }
        }
        config.horizon = fromMs(horizon_ms);

        ServeDriver driver(config);
        ServeReport report = driver.run();

        std::cout << "serve: " << policyName(config.soc.policy) << " / "
                  << admissionKindName(config.admission.kind) << " / "
                  << arrivalKindName(config.arrival.kind) << " @ "
                  << Table::num(config.arrival.ratePerSec, 1)
                  << " rps for " << Table::num(horizon_ms, 1)
                  << " ms (seed " << config.seed << ")\n\n";
        printSloTable(std::cout, report, "Per-class SLO report");

        if (config.telemetry.traceRequests) {
            const TailSampleSummary &s = driver.tailSampler()->summary();
            std::cout << "\ntraces: kept " << s.kept() << " of "
                      << s.offered << " requests (ok " << s.keptOk
                      << ", miss/in-flight " << s.keptMiss << ", shed "
                      << s.keptShed << ", rejected " << s.keptRejected
                      << ", dropped " << s.dropped << ")\n";
        }

        if (!stats_json_path.empty()) {
            std::ofstream out(stats_json_path);
            if (!out)
                fatal("cannot write ", stats_json_path);
            driver.soc().writeStatsJson(out);
        }
        if (!trace_path.empty()) {
            std::ofstream out(trace_path);
            if (!out)
                fatal("cannot write ", trace_path);
            driver.soc().trace()->writeChromeJson(out);
            std::cout << "Perfetto trace written to " << trace_path
                      << "\n";
        }
        if (!trace_json_path.empty()) {
            std::ofstream out(trace_json_path);
            if (!out)
                fatal("cannot write ", trace_json_path);
            writeTraceDocJson(out, driver.keptTraces(),
                              driver.tailSampler()->summary(),
                              config.telemetry.okFraction, config.seed,
                              horizon_ms);
            std::cout << "trace JSON written to " << trace_json_path
                      << "\n";
        }
        if (!out_path.empty()) {
            std::ofstream out(out_path);
            if (!out)
                fatal("cannot write ", out_path);
            out << "{\n  \"schema\": \"relief-serve-v1\",\n"
                << "  \"build_info\": ";
            writeBuildInfoJson(out, 2);
            out << ",\n"
                << "  \"seed\": " << config.seed << ",\n"
                << "  \"horizon_ms\": " << jsonNumber(horizon_ms)
                << ",\n  \"smoke\": false,\n"
                << "  \"capacity_rps\": null,\n"
                << "  \"runs\": [\n    ";
            writeServeRunJson(out, report,
                              policyName(config.soc.policy),
                              admissionKindName(config.admission.kind),
                              arrivalKindName(config.arrival.kind),
                              0.0, config.arrival.ratePerSec, 4);
            out << "\n  ],\n  \"saturation\": []\n}\n";
            std::cout << "\nserve JSON written to " << out_path << "\n";
        }
    } catch (const FatalError &err) {
        std::cerr << err.what() << "\n";
        return 1;
    }
    return 0;
}
