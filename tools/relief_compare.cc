/**
 * @file
 * relief_compare — run one workload under every scheduling policy and
 * print the side-by-side comparison (forwards, colocations, traffic,
 * deadlines, makespan). For workloads small enough (<= 24 nodes total,
 * e.g. a --workload file), an "Ideal (oracle)" row from the exhaustive
 * schedule search is appended as the upper bound.
 *
 * Usage: relief_compare [--mix SYMBOLS | --workload FILE]
 *                       [--continuous] [--limit-ms X] [platform flags]
 *
 * --stats-json FILE writes one JSON stats dump per policy, with the
 * policy name spliced in before the extension (stats.json ->
 * stats.RELIEF.json); --debug-flags applies to every run.
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/cli.hh"
#include "core/relief.hh"
#include "dag/workload_file.hh"
#include "sched/oracle.hh"

using namespace relief;

namespace
{

std::vector<DagPtr>
buildWorkload(const ExperimentConfig &config,
              const std::string &workload_path)
{
    if (!workload_path.empty())
        return loadWorkloadFile(workload_path);
    std::vector<DagPtr> dags;
    for (AppId app : parseMix(config.mix))
        dags.push_back(buildApp(app, config.app));
    return dags;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload_path;
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--workload" && i + 1 < argc) {
            workload_path = argv[++i];
        } else if (arg == "--help" || arg == "-h") {
            std::cout << cliUsage() << " [--workload FILE]\n";
            return 0;
        } else {
            args.push_back(arg);
        }
    }

    ExperimentConfig config;
    try {
        config = parseCliOptions(args);
    } catch (const FatalError &err) {
        std::cerr << err.what() << "\n";
        return 1;
    }

    Table table("policy comparison — " +
                (workload_path.empty() ? "mix " + config.mix
                                       : "workload " + workload_path));
    table.setHeader({"policy", "fwd", "coloc", "DRAM KiB",
                     "node deadlines %", "DAG deadlines",
                     "makespan (ms)"});

    std::vector<PolicyKind> policies = allPolicies;
    policies.push_back(PolicyKind::ReliefHetSched);
    for (PolicyKind policy : policies) {
        SocConfig soc_config = config.soc;
        soc_config.policy = policy;
        Soc soc(soc_config);
        std::vector<DagPtr> dags;
        try {
            dags = buildWorkload(config, workload_path);
        } catch (const FatalError &err) {
            std::cerr << err.what() << "\n";
            return 1;
        }
        for (DagPtr &dag : dags)
            soc.submit(dag, 0, config.continuous);
        soc.run(config.timeLimit);
        MetricsReport r = soc.report();
        if (!config.statsJsonPath.empty()) {
            std::string path = config.statsJsonPath;
            std::size_t dot = path.rfind('.');
            std::string tag = std::string(".") + policyName(policy);
            path = dot == std::string::npos
                       ? path + tag
                       : path.substr(0, dot) + tag + path.substr(dot);
            std::ofstream out(path);
            if (!out) {
                std::cerr << "cannot write stats to " << path << "\n";
                return 1;
            }
            soc.writeStatsJson(out);
            std::cout << "JSON stats written to " << path << "\n";
        }
        table.addRow(
            {policyName(policy), std::to_string(r.run.forwards),
             std::to_string(r.run.colocations),
             std::to_string(r.dramBytes / 1024),
             Table::pct(r.run.nodeDeadlineFraction()),
             std::to_string(r.run.dagDeadlinesMet) + "/" +
                 std::to_string(r.run.dagsFinished),
             Table::num(toMs(r.execTime), 3)});
    }

    // Oracle bound, when the search is tractable.
    try {
        std::vector<DagPtr> dags = buildWorkload(config, workload_path);
        int total_nodes = 0;
        std::vector<Dag *> raw;
        for (DagPtr &dag : dags) {
            total_nodes += dag->numNodes();
            raw.push_back(dag.get());
        }
        if (total_nodes <= 24 && !config.continuous) {
            OracleResult ideal =
                findIdealSchedule(raw, config.soc.instances);
            table.addRow(
                {std::string("Ideal (oracle") +
                     (ideal.exhaustive ? ")" : ", state-capped)"),
                 std::to_string(ideal.forwards),
                 std::to_string(ideal.colocations), "-", "-",
                 std::to_string(ideal.dagDeadlinesMet) + "/" +
                     std::to_string(ideal.dagCount),
                 Table::num(toMs(ideal.makespan), 3)});
        }
    } catch (const PanicError &) {
        // Too large for the oracle: no bound row.
    }

    table.print(std::cout);
    return 0;
}
