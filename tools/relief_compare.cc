/**
 * @file
 * relief_compare — run one workload under every scheduling policy and
 * print the side-by-side comparison (forwards, colocations, traffic,
 * deadlines, makespan). For workloads small enough (<= 24 nodes total,
 * e.g. a --workload file), an "Ideal (oracle)" row from the exhaustive
 * schedule search is appended as the upper bound.
 *
 * Usage: relief_compare [--mix SYMBOLS | --workload FILE]
 *                       [--continuous] [--limit-ms X] [platform flags]
 *
 * --stats-json FILE writes one JSON stats dump per policy, with the
 * policy name spliced in before the extension (stats.json ->
 * stats.RELIEF.json); --debug-flags applies to every run.
 *
 * Diff mode compares two previously written documents instead of
 * running anything:
 *
 *   relief_compare --diff A.json B.json [--max-rel-delta PCT]
 *                  [--abs-floor X] [--time-rel-delta PCT]
 *                  [--breaches-only]
 *
 * For relief-stats-v1 / relief-pressure-v1 documents, every numeric
 * field of the memory-pressure block (totals, per-QoS rollups,
 * per-resource counters, contender slots matched by
 * source/qos/traffic) and the p50/p95/p99 of every histogram stat are
 * compared; a relative delta above the threshold (default 10%) is a
 * breach, and any breach makes the exit status non-zero — the CI hook
 * for "this change moved memory pressure". Values where both sides
 * sit below --abs-floor are skipped as noise.
 *
 * relief-bench-v1, relief-hostprof-v1, and relief-kernels-v1
 * documents diff with a noise
 * model for wall-clock metrics: each --diff side may be a
 * comma-separated list of repeat files (same binary, same flags), and
 * every metric is the per-field median across the repeats. Host-time
 * metrics (events_per_sec, ns/event, coverage) use the looser
 * --time-rel-delta threshold (default 25%) with per-metric absolute
 * floors; deterministic metrics (sim ticks/events, deadline
 * fractions, critical-path buckets) keep the strict threshold. The
 * CI perf gate runs this twice: repeats of the same binary must exit
 * 0, and a run with an injected per-event slowdown
 * (relief_bench --inject-spin-ns) must exit 2.
 */

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/cli.hh"
#include "core/relief.hh"
#include "dag/workload_file.hh"
#include "sched/oracle.hh"
#include "stats/json_reader.hh"

using namespace relief;

namespace
{

std::vector<DagPtr>
buildWorkload(const ExperimentConfig &config,
              const std::string &workload_path)
{
    if (!workload_path.empty())
        return loadWorkloadFile(workload_path);
    std::vector<DagPtr> dags;
    for (AppId app : parseMix(config.mix))
        dags.push_back(buildApp(app, config.app));
    return dags;
}

/** Shared breach accounting for diff mode. */
struct DiffReport
{
    double maxRelPct = 10.0;  ///< Relative-delta breach threshold (%).
    double absFloor = 1.0;    ///< Both below this -> skipped as noise.
    double timeRelPct = 25.0; ///< Threshold for wall-clock metrics (%).
    bool breachesOnly = false;
    int breaches = 0;
    int compared = 0;
    Table table{"stats diff (A vs B)"};

    DiffReport()
    {
        table.setHeader({"metric", "A", "B", "delta %", "verdict"});
    }

    void
    row(const std::string &metric, double a, double b)
    {
        rowWith(metric, a, b, maxRelPct, absFloor);
    }

    void
    rowWith(const std::string &metric, double a, double b,
            double rel_pct, double floor)
    {
        if (std::fabs(a) < floor && std::fabs(b) < floor)
            return;
        double denom = std::max(std::fabs(a), std::fabs(b));
        double rel = std::fabs(a - b) / denom * 100.0;
        bool breach = rel > rel_pct;
        compared += 1;
        breaches += breach ? 1 : 0;
        if (breachesOnly && !breach)
            return;
        table.addRow({metric, Table::num(a, 3), Table::num(b, 3),
                      Table::num(rel, 1), breach ? "BREACH" : "ok"});
    }

    /** Compare every numeric member present in both objects. */
    void
    object(const std::string &prefix, const JsonValue &a,
           const JsonValue &b)
    {
        for (const std::string &key : a.keys()) {
            const JsonValue *vb = b.find(key);
            if (vb && a.at(key).isNumber() && vb->isNumber())
                row(prefix + key, a.at(key).asNumber(), vb->asNumber());
        }
    }
};

/**
 * The pressure block of a loaded document: the "pressure" member of a
 * relief-stats-v1 dump, or the document itself when it already is a
 * standalone relief-pressure-v1 artifact.
 */
const JsonValue *
pressureBlock(const JsonValue &doc)
{
    if (const JsonValue *block = doc.find("pressure"))
        return block;
    if (doc.find("totals") && doc.find("resources"))
        return &doc;
    return nullptr;
}

/** Identity of a contender row for cross-file matching. */
std::string
contenderKey(const JsonValue &row)
{
    return row.at("source").asString() + "/" + row.at("qos").asString() +
           "/" + row.at("traffic").asString();
}

void
diffPressure(DiffReport &diff, const JsonValue &a, const JsonValue &b)
{
    diff.object("pressure.totals.", a.at("totals"), b.at("totals"));

    const JsonValue &qos_b = b.at("qos");
    for (std::size_t i = 0; i < a.at("qos").size(); ++i) {
        const JsonValue &cls = a.at("qos").at(i);
        for (std::size_t j = 0; j < qos_b.size(); ++j) {
            if (qos_b.at(j).at("name").asString() !=
                cls.at("name").asString())
                continue;
            diff.object("pressure.qos." + cls.at("name").asString() + ".",
                        cls, qos_b.at(j));
            break;
        }
    }

    const JsonValue &res_b = b.at("resources");
    for (std::size_t i = 0; i < a.at("resources").size(); ++i) {
        const JsonValue &res = a.at("resources").at(i);
        const std::string &name = res.at("name").asString();
        const JsonValue *other = nullptr;
        for (std::size_t j = 0; j < res_b.size() && !other; ++j)
            if (res_b.at(j).at("name").asString() == name)
                other = &res_b.at(j);
        if (!other)
            continue;
        diff.object(name + ".", res, *other);
        const JsonValue &contenders = res.at("contenders");
        for (std::size_t c = 0; c < contenders.size(); ++c) {
            const JsonValue &mine = contenders.at(c);
            const JsonValue &theirs_all = other->at("contenders");
            for (std::size_t d = 0; d < theirs_all.size(); ++d) {
                if (contenderKey(theirs_all.at(d)) != contenderKey(mine))
                    continue;
                diff.object(name + "[" + contenderKey(mine) + "].", mine,
                            theirs_all.at(d));
                break;
            }
        }
    }
}

/**
 * Quantile of a serialized histogram stat, replicating
 * Histogram::quantile's linear in-bucket interpolation so the diff
 * agrees with what the live model would report.
 */
double
histQuantile(const JsonValue &hist, double q)
{
    double count = hist.at("count").asNumber();
    if (count <= 0.0)
        return 0.0;
    double target = q * count;
    double seen = hist.at("underflow").asNumber();
    double vmin = hist.at("min").asNumber();
    double vmax = hist.at("max").asNumber();
    if (target <= seen)
        return vmin;
    const JsonValue &buckets = hist.at("buckets");
    double lo = hist.at("range").at(0).asNumber();
    double hi = hist.at("range").at(1).asNumber();
    double width = (hi - lo) / double(buckets.size());
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        double in_bucket = buckets.at(i).asNumber();
        if (in_bucket > 0.0 && target <= seen + in_bucket) {
            double frac = (target - seen) / in_bucket;
            double v = lo + double(i) * width + frac * width;
            return std::min(std::max(v, vmin), vmax);
        }
        seen += in_bucket;
    }
    return vmax;
}

void
diffQuantiles(DiffReport &diff, const JsonValue &a, const JsonValue &b)
{
    const JsonValue *stats_a = a.find("stats");
    const JsonValue *stats_b = b.find("stats");
    if (!stats_a || !stats_b)
        return;
    const double quantiles[] = {0.50, 0.95, 0.99};
    const char *labels[] = {".p50", ".p95", ".p99"};
    for (const std::string &key : stats_a->keys()) {
        const JsonValue &stat = stats_a->at(key);
        const JsonValue *other = stats_b->find(key);
        if (!other || !stat.isObject() || !other->isObject())
            continue;
        const JsonValue *kind = stat.find("kind");
        if (!kind || kind->asString() != "histogram")
            continue;
        for (int i = 0; i < 3; ++i)
            diff.row(key + labels[i], histQuantile(stat, quantiles[i]),
                     histQuantile(*other, quantiles[i]));
    }
}

/**
 * One comparable metric extracted from a bench/hostprof document.
 * timeLike metrics are host wall-clock (noisy across runs) and diff
 * under --time-rel-delta with a per-metric absolute floor;
 * deterministic metrics keep the strict --max-rel-delta.
 */
struct Metric
{
    double value = 0.0;
    bool timeLike = false;
    double floor = -1.0; ///< Negative -> DiffReport's default floor.
};

using MetricMap = std::map<std::string, Metric>;

/** Per-metric absolute floors for the wall-clock fields. Values where
 *  both sides sit below the floor are run-to-run scheduling noise. */
constexpr double floorHostWallS = 1e-3;    // sub-ms cells: pure noise
constexpr double floorEventsPerSec = 1e4;
constexpr double floorWallNs = 1e5;        // < 0.1 ms of host time
constexpr double floorNsPerEvent = 25.0;   // clock-granularity noise
constexpr double floorCoverage = 0.05;
constexpr double floorThroughput = 1.0;    // < 1 M units/s: noise
constexpr double floorSpeedup = 0.25;

/** Flatten one hostprof profile object under @p prefix. */
void
flattenHostProf(const JsonValue &hp, const std::string &prefix,
                MetricMap &out)
{
    out[prefix + "total_wall_ns"] =
        {hp.at("total_wall_ns").asNumber(), true, floorWallNs};
    out[prefix + "coverage"] =
        {hp.at("coverage").asNumber(), true, floorCoverage};
    const JsonValue &cats = hp.at("categories");
    for (const std::string &cat : cats.keys()) {
        const JsonValue &c = cats.at(cat);
        double events = c.at("events").asNumber();
        out[prefix + cat + ".events"] = {events, false, -1.0};
        out[prefix + cat + ".heap_allocs"] =
            {c.at("heap_allocs").asNumber(), false, -1.0};
        if (events > 0.0) {
            out[prefix + cat + ".ns_per_event"] =
                {c.at("wall_ns").asNumber() / events, true,
                 floorNsPerEvent};
        }
    }
}

/** Flatten one run of a relief-kernels-v1 document: throughputs and
 *  speedups are wall-clock (noisy), bit-identity is deterministic. */
void
flattenKernels(const JsonValue &doc, MetricMap &out)
{
    const JsonValue &runs = doc.at("runs");
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const JsonValue &run = runs.at(i);
        std::string key = run.at("kernel").asString() + ".";
        out[key + "scalar"] =
            {run.at("scalar").asNumber(), true, floorThroughput};
        out[key + "simd"] =
            {run.at("simd").asNumber(), true, floorThroughput};
        out[key + "speedup"] =
            {run.at("speedup").asNumber(), true, floorSpeedup};
        out[key + "identical"] =
            {run.at("identical").asBool() ? 1.0 : 0.0, false, -1.0};
    }
    out["geomean_speedup"] =
        {doc.at("geomean_speedup").asNumber(), true, floorSpeedup};
}

/** Flatten a relief-hostprof-v1, relief-bench-v1, or
 *  relief-kernels-v1 document. */
MetricMap
flattenDoc(const JsonValue &doc, const std::string &schema)
{
    MetricMap out;
    if (schema == "relief-hostprof-v1") {
        flattenHostProf(doc, "", out);
        return out;
    }
    if (schema == "relief-kernels-v1") {
        flattenKernels(doc, out);
        return out;
    }
    const JsonValue &runs = doc.at("runs");
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const JsonValue &run = runs.at(i);
        std::string key = run.at("mix").asString() + "/" +
                          run.at("policy").asString() + ".";
        out[key + "host_wall_s"] =
            {run.at("host_wall_s").asNumber(), true, floorHostWallS};
        out[key + "events_per_sec"] =
            {run.at("events_per_sec").asNumber(), true,
             floorEventsPerSec};
        for (const char *field :
             {"sim_ticks", "sim_events", "dags_finished",
              "node_deadline_fraction", "dag_deadline_fraction"}) {
            if (const JsonValue *v = run.find(field))
                out[key + field] = {v->asNumber(), false, -1.0};
        }
        if (const JsonValue *cp = run.find("critical_path_us")) {
            for (const std::string &bucket : cp->keys())
                out[key + "critical_path_us." + bucket] =
                    {cp->at(bucket).asNumber(), false, -1.0};
        }
        if (const JsonValue *hp = run.find("hostprof"))
            flattenHostProf(*hp, key + "hostprof.", out);
    }
    return out;
}

/** Per-key median across repeat documents; a key must appear in
 *  every repeat to survive (partial repeats are not comparable). */
MetricMap
medianMap(const std::vector<MetricMap> &maps)
{
    MetricMap out;
    for (const auto &[key, first] : maps.front()) {
        std::vector<double> values;
        values.reserve(maps.size());
        for (const MetricMap &m : maps) {
            auto it = m.find(key);
            if (it == m.end())
                break;
            values.push_back(it->second.value);
        }
        if (values.size() != maps.size())
            continue;
        std::sort(values.begin(), values.end());
        std::size_t n = values.size();
        double med = n % 2 ? values[n / 2]
                           : 0.5 * (values[n / 2 - 1] + values[n / 2]);
        out[key] = {med, first.timeLike, first.floor};
    }
    return out;
}

std::string
docSchema(const JsonValue &doc)
{
    const JsonValue *schema = doc.find("schema");
    return schema && schema->isString() ? schema->asString() : "";
}

/** Noise-aware diff of bench/hostprof repeat sets. */
void
diffMetricMaps(DiffReport &diff, const std::vector<JsonValue> &as,
               const std::vector<JsonValue> &bs,
               const std::string &schema)
{
    std::vector<MetricMap> maps_a, maps_b;
    for (const JsonValue &doc : as)
        maps_a.push_back(flattenDoc(doc, schema));
    for (const JsonValue &doc : bs)
        maps_b.push_back(flattenDoc(doc, schema));
    MetricMap ma = medianMap(maps_a);
    MetricMap mb = medianMap(maps_b);
    for (const auto &[key, metric_a] : ma) {
        auto it = mb.find(key);
        if (it == mb.end())
            continue;
        double rel = metric_a.timeLike ? diff.timeRelPct
                                       : diff.maxRelPct;
        double floor =
            metric_a.floor >= 0.0 ? metric_a.floor : diff.absFloor;
        diff.rowWith(key, metric_a.value, it->second.value, rel, floor);
    }
}

std::vector<std::string>
splitPathList(const std::string &list)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= list.size()) {
        std::size_t comma = list.find(',', start);
        std::string item = list.substr(
            start, comma == std::string::npos ? comma : comma - start);
        if (!item.empty())
            out.push_back(item);
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

int
runDiff(const std::string &list_a, const std::string &list_b,
        DiffReport &diff)
{
    std::vector<JsonValue> as, bs;
    for (const std::string &path : splitPathList(list_a))
        as.push_back(JsonValue::parseFile(path));
    for (const std::string &path : splitPathList(list_b))
        bs.push_back(JsonValue::parseFile(path));
    if (as.empty() || bs.empty()) {
        std::cerr << "empty --diff file list\n";
        return 1;
    }

    std::string schema = docSchema(as.front());
    for (const JsonValue *doc :
         {&as.back(), &bs.front(), &bs.back()}) {
        if (docSchema(*doc) != schema) {
            std::cerr << "--diff documents disagree on schema ('"
                      << schema << "' vs '" << docSchema(*doc)
                      << "')\n";
            return 1;
        }
    }

    if (schema == "relief-bench-v1" || schema == "relief-hostprof-v1" ||
        schema == "relief-kernels-v1") {
        diffMetricMaps(diff, as, bs, schema);
    } else {
        if (as.size() > 1 || bs.size() > 1) {
            std::cerr << "repeat lists are only supported for "
                         "relief-bench-v1 / relief-hostprof-v1 / "
                         "relief-kernels-v1 documents\n";
            return 1;
        }
        const JsonValue &a = as.front();
        const JsonValue &b = bs.front();
        const JsonValue *pressure_a = pressureBlock(a);
        const JsonValue *pressure_b = pressureBlock(b);
        if (pressure_a && pressure_b)
            diffPressure(diff, *pressure_a, *pressure_b);
        else
            std::cout << "note: no pressure block in both documents — "
                         "skipping pressure diff\n";
        diffQuantiles(diff, a, b);
    }

    diff.table.print(std::cout);
    std::cout << "\n"
              << diff.compared << " metrics compared, " << diff.breaches
              << " above threshold (" << list_a << " vs " << list_b
              << ")\n";
    return diff.breaches > 0 ? 2 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload_path;
    std::vector<std::string> diff_paths;
    DiffReport diff;
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--workload" && i + 1 < argc) {
            workload_path = argv[++i];
        } else if (arg == "--diff" && i + 2 < argc) {
            diff_paths = {argv[i + 1], argv[i + 2]};
            i += 2;
        } else if (arg == "--max-rel-delta" && i + 1 < argc) {
            diff.maxRelPct = std::atof(argv[++i]);
        } else if (arg == "--abs-floor" && i + 1 < argc) {
            diff.absFloor = std::atof(argv[++i]);
        } else if (arg == "--time-rel-delta" && i + 1 < argc) {
            diff.timeRelPct = std::atof(argv[++i]);
        } else if (arg == "--breaches-only") {
            diff.breachesOnly = true;
        } else if (arg == "--help" || arg == "-h") {
            std::cout << cliUsage()
                      << " [--workload FILE]\n"
                         "   or: relief_compare --diff A.json[,A2...]"
                         " B.json[,B2...]"
                         " [--max-rel-delta PCT] [--abs-floor X]"
                         " [--time-rel-delta PCT] [--breaches-only]\n";
            return 0;
        } else {
            args.push_back(arg);
        }
    }

    if (!diff_paths.empty()) {
        try {
            return runDiff(diff_paths[0], diff_paths[1], diff);
        } catch (const FatalError &err) {
            std::cerr << err.what() << "\n";
            return 1;
        }
    }

    ExperimentConfig config;
    try {
        config = parseCliOptions(args);
    } catch (const FatalError &err) {
        std::cerr << err.what() << "\n";
        return 1;
    }

    Table table("policy comparison — " +
                (workload_path.empty() ? "mix " + config.mix
                                       : "workload " + workload_path));
    table.setHeader({"policy", "fwd", "coloc", "DRAM KiB",
                     "node deadlines %", "DAG deadlines",
                     "makespan (ms)"});

    std::vector<PolicyKind> policies = allPolicies;
    policies.push_back(PolicyKind::ReliefHetSched);
    for (PolicyKind policy : policies) {
        SocConfig soc_config = config.soc;
        soc_config.policy = policy;
        Soc soc(soc_config);
        std::vector<DagPtr> dags;
        try {
            dags = buildWorkload(config, workload_path);
        } catch (const FatalError &err) {
            std::cerr << err.what() << "\n";
            return 1;
        }
        for (DagPtr &dag : dags)
            soc.submit(dag, 0, config.continuous);
        soc.run(config.timeLimit);
        MetricsReport r = soc.report();
        if (!config.statsJsonPath.empty()) {
            std::string path = config.statsJsonPath;
            std::size_t dot = path.rfind('.');
            std::string tag = std::string(".") + policyName(policy);
            path = dot == std::string::npos
                       ? path + tag
                       : path.substr(0, dot) + tag + path.substr(dot);
            std::ofstream out(path);
            if (!out) {
                std::cerr << "cannot write stats to " << path << "\n";
                return 1;
            }
            soc.writeStatsJson(out);
            std::cout << "JSON stats written to " << path << "\n";
        }
        table.addRow(
            {policyName(policy), std::to_string(r.run.forwards),
             std::to_string(r.run.colocations),
             std::to_string(r.dramBytes / 1024),
             Table::pct(r.run.nodeDeadlineFraction()),
             std::to_string(r.run.dagDeadlinesMet) + "/" +
                 std::to_string(r.run.dagsFinished),
             Table::num(toMs(r.execTime), 3)});
    }

    // Oracle bound, when the search is tractable.
    try {
        std::vector<DagPtr> dags = buildWorkload(config, workload_path);
        int total_nodes = 0;
        std::vector<Dag *> raw;
        for (DagPtr &dag : dags) {
            total_nodes += dag->numNodes();
            raw.push_back(dag.get());
        }
        if (total_nodes <= 24 && !config.continuous) {
            OracleResult ideal =
                findIdealSchedule(raw, config.soc.instances);
            table.addRow(
                {std::string("Ideal (oracle") +
                     (ideal.exhaustive ? ")" : ", state-capped)"),
                 std::to_string(ideal.forwards),
                 std::to_string(ideal.colocations), "-", "-",
                 std::to_string(ideal.dagDeadlinesMet) + "/" +
                     std::to_string(ideal.dagCount),
                 Table::num(toMs(ideal.makespan), 3)});
        }
    } catch (const PanicError &) {
        // Too large for the oracle: no bound row.
    }

    table.print(std::cout);
    return 0;
}
