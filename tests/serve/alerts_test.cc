/**
 * @file
 * Tests for SLO burn-rate alerts (serve/alerts.hh): dual-window
 * open/close thresholds, hysteresis (no churn between the close and
 * open burns), end-of-run close-out, JSON export, and an integration
 * run where an overloaded ServeDriver opens an alert.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "serve/alerts.hh"
#include "serve/server.hh"
#include "sim/simulator.hh"

using namespace relief;

namespace
{

BurnRateConfig
testConfig()
{
    BurnRateConfig config;
    config.sloTarget = 0.9; // Budget 0.1: burn = miss fraction / 0.1.
    config.fastWindow = fromMs(5.0);
    config.slowWindow = fromMs(10.0);
    config.evalPeriod = fromMs(1.0);
    config.openBurn = 2.0;  // Opens at windowed miss fraction >= 0.2.
    config.closeBurn = 1.0; // Closes below 0.1.
    return config;
}

} // namespace

TEST(BurnRateAlertsTest, OpensClosesWithHysteresis)
{
    Simulator sim;
    std::vector<ClassSlo> classes(1);
    classes[0].name = "rt";
    BurnRateAlerts alerts(sim, testConfig(), &classes);

    auto evalAt = [&](double ms, std::uint64_t completed,
                      std::uint64_t missed) {
        sim.at(fromMs(ms),
               [&, completed, missed] {
                   classes[0].completed = completed;
                   classes[0].missed = missed;
                   alerts.evaluateNow();
               },
               "test.eval");
    };

    evalAt(1.0, 10, 0);  // First sample: burns undefined, 0.
    evalAt(2.0, 20, 0);  // Healthy.
    evalAt(3.0, 30, 5);  // Windowed miss fraction 0.25 -> burn 2.5:
                         // both windows above openBurn -> OPEN.
    evalAt(4.0, 40, 5);  // Fast burn ~1.67: inside the hysteresis band
                         // (close 1 <= burn < open 2) -> stays open.
    evalAt(8.0, 100, 5); // Fresh window all-hit: burns < 1 -> CLOSE.
    sim.run();
    alerts.finish(sim.now());

    ASSERT_EQ(alerts.events().size(), 2u);
    EXPECT_TRUE(alerts.events()[0].open);
    EXPECT_EQ(alerts.events()[0].when, fromMs(3.0));
    EXPECT_EQ(alerts.events()[0].qosClass, "rt");
    EXPECT_GE(alerts.events()[0].fastBurn, 2.0);
    EXPECT_FALSE(alerts.events()[1].open);
    EXPECT_EQ(alerts.events()[1].when, fromMs(8.0));

    auto summary = alerts.summary();
    ASSERT_EQ(summary.size(), 1u);
    EXPECT_EQ(summary[0].opens, 1u);
    EXPECT_EQ(summary[0].closes, 1u);
    EXPECT_FALSE(summary[0].active);
    EXPECT_EQ(summary[0].activeTicks, fromMs(5.0)); // Open 3 ms -> 8 ms.
}

TEST(BurnRateAlertsTest, StillOpenAlertAccumulatesAtFinish)
{
    Simulator sim;
    std::vector<ClassSlo> classes(1);
    classes[0].name = "rt";
    BurnRateAlerts alerts(sim, testConfig(), &classes);

    sim.at(fromMs(1.0),
           [&] {
               classes[0].completed = 10;
               alerts.evaluateNow();
           },
           "test.eval");
    sim.at(fromMs(2.0),
           [&] {
               classes[0].completed = 20;
               classes[0].missed = 8;
               alerts.evaluateNow();
           },
           "test.eval");
    sim.run();
    alerts.finish(fromMs(6.0));

    auto summary = alerts.summary();
    ASSERT_EQ(summary.size(), 1u);
    EXPECT_EQ(summary[0].opens, 1u);
    EXPECT_EQ(summary[0].closes, 0u);
    EXPECT_TRUE(summary[0].active);
    EXPECT_EQ(summary[0].activeTicks, fromMs(4.0)); // 2 ms -> 6 ms.
    EXPECT_GT(summary[0].finalFastBurn, 2.0);
}

TEST(BurnRateAlertsTest, NoAlertWhileHealthy)
{
    Simulator sim;
    std::vector<ClassSlo> classes(2);
    classes[0].name = "rt";
    classes[1].name = "batch";
    BurnRateAlerts alerts(sim, testConfig(), &classes);

    for (int ms = 1; ms <= 20; ++ms) {
        sim.at(fromMs(double(ms)),
               [&, ms] {
                   classes[0].completed = std::uint64_t(10 * ms);
                   // One early miss: fraction stays well below 0.2.
                   classes[0].missed = 1;
                   classes[1].completed = std::uint64_t(5 * ms);
                   alerts.evaluateNow();
               },
               "test.eval");
    }
    sim.run();
    alerts.finish(sim.now());

    EXPECT_TRUE(alerts.events().empty());
    for (const ClassAlertSummary &s : alerts.summary()) {
        EXPECT_EQ(s.opens, 0u);
        EXPECT_FALSE(s.active);
        EXPECT_EQ(s.activeTicks, 0u);
    }
}

TEST(BurnRateAlertsTest, JsonExport)
{
    std::vector<ClassAlertSummary> summaries(1);
    summaries[0].name = "rt";
    summaries[0].opens = 1;
    summaries[0].active = true;
    summaries[0].activeTicks = fromMs(2.0);
    summaries[0].finalFastBurn = 3.0;
    summaries[0].finalSlowBurn = 2.5;
    std::vector<AlertEvent> events = {
        {fromMs(1.0), "rt", true, 3.0, 2.5},
        {fromMs(1.5), "other", true, 9.0, 9.0}, // Filtered out.
    };

    std::ostringstream os;
    writeAlertsJson(os, summaries, events, 0);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"class\": \"rt\""), std::string::npos);
    EXPECT_NE(json.find("\"opens\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"active\": true"), std::string::npos);
    EXPECT_NE(json.find("\"active_ms\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"t_ms\": 1,"), std::string::npos);
    EXPECT_EQ(json.find("other"), std::string::npos);

    std::ostringstream empty;
    writeAlertsJson(empty, {}, {}, 0);
    EXPECT_EQ(empty.str(), "[]");
}

TEST(BurnRateAlertsTest, OverloadedDriverOpensAlert)
{
    // An impossible deadline scale forces every completion to miss, so
    // the burn rate saturates and the alert opens for some class.
    ServeConfig config;
    config.arrival.ratePerSec = 1500.0;
    config.horizon = fromMs(15.0);
    config.telemetry.alerts = true;
    config.telemetry.burnRate.fastWindow = fromMs(2.0);
    config.telemetry.burnRate.slowWindow = fromMs(6.0);
    config.telemetry.burnRate.evalPeriod = fromMs(0.5);
    for (QosClassConfig &cls : config.classes)
        cls.deadlineScale = 0.01;

    ServeDriver driver(config);
    ServeReport report = driver.run();

    ASSERT_EQ(report.alerts.size(), config.classes.size());
    std::uint64_t opens = 0;
    for (const ClassAlertSummary &s : report.alerts)
        opens += s.opens;
    EXPECT_GT(opens, 0u);
    EXPECT_FALSE(report.alertEvents.empty());
    EXPECT_TRUE(report.alertEvents[0].open);

    // The summary is consistent with the event log.
    for (const ClassAlertSummary &s : report.alerts) {
        std::uint64_t open_events = 0, close_events = 0;
        for (const AlertEvent &e : report.alertEvents) {
            if (e.qosClass != s.name)
                continue;
            (e.open ? open_events : close_events) += 1;
        }
        EXPECT_EQ(s.opens, open_events);
        EXPECT_EQ(s.closes, close_events);
        EXPECT_EQ(s.opens, s.closes + (s.active ? 1u : 0u));
    }
}
