/**
 * @file
 * Tests for the serving driver: request-count conservation, the
 * determinism contract (a report is a pure function of config and
 * seed), deadline-miss and shedding accounting, stat registration,
 * and the relief-serve-v1 run serialization.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "serve/server.hh"
#include "sim/logging.hh"

namespace relief
{
namespace
{

ServeConfig
smallConfig()
{
    ServeConfig config;
    config.arrival.ratePerSec = 2000.0;
    config.horizon = fromMs(10.0);
    config.seed = 5;
    return config;
}

std::string
runJson(const ServeReport &report)
{
    std::ostringstream out;
    writeServeRunJson(out, report, "FCFS", "admit-all", "poisson", 1.0,
                      2000.0);
    return out.str();
}

TEST(ServeDriverTest, ConservesRequestCounts)
{
    ServeDriver driver(smallConfig());
    ServeReport report = driver.run();

    EXPECT_EQ(report.total.offered, driver.schedule().size());
    EXPECT_GT(report.total.offered, 0u);
    EXPECT_EQ(report.total.offered, report.total.admitted +
                                        report.total.shed +
                                        report.total.rejected);
    EXPECT_EQ(report.total.admitted,
              report.total.completed + report.total.inFlight);

    // Per-class counters must sum to the totals.
    std::uint64_t offered = 0, completed = 0, missed = 0;
    for (const ClassSlo &cls : report.classes) {
        offered += cls.offered;
        completed += cls.completed;
        missed += cls.missed;
    }
    EXPECT_EQ(offered, report.total.offered);
    EXPECT_EQ(completed, report.total.completed);
    EXPECT_EQ(missed, report.total.missed);

    // Request records agree with the aggregate counters.
    std::uint64_t finished = 0;
    for (const ServeRequest &request : driver.requests())
        if (request.finished) {
            ++finished;
            EXPECT_GE(request.finish, request.arrival);
        }
    EXPECT_EQ(finished, report.total.completed);
}

TEST(ServeDriverTest, ReportIsPureFunctionOfConfigAndSeed)
{
    ServeConfig config = smallConfig();
    ServeDriver first(config);
    ServeDriver second(config);
    std::string a = runJson(first.run());
    std::string b = runJson(second.run());
    EXPECT_EQ(a, b);

    config.seed = 6;
    ServeDriver third(config);
    EXPECT_NE(a, runJson(third.run()));
}

TEST(ServeDriverTest, ImpossibleDeadlinesAreAllMisses)
{
    ServeConfig config = smallConfig();
    // Deadlines ~100x tighter than the service time: every completion
    // must be a miss, and goodput must be zero.
    for (QosClassConfig &cls : config.classes)
        cls.deadlineScale = 0.01;
    ServeDriver driver(config);
    ServeReport report = driver.run();
    ASSERT_GT(report.total.completed, 0u);
    EXPECT_EQ(report.total.missed, report.total.completed);
    EXPECT_EQ(report.total.goodputRps(report.horizon), 0.0);
    EXPECT_EQ(report.total.missRate(), 1.0);
}

TEST(ServeDriverTest, QueueCapSheds)
{
    ServeConfig config = smallConfig();
    config.admission.kind = AdmissionKind::QueueCap;
    config.admission.queueCap = 1;
    ServeDriver driver(config);
    ServeReport report = driver.run();
    EXPECT_GT(report.total.shed, 0u);
    EXPECT_EQ(report.total.rejected, 0u);
    EXPECT_GT(report.total.shedRate(), 0.0);
}

TEST(ServeDriverTest, LaxityRejects)
{
    ServeConfig config = smallConfig();
    config.arrival.ratePerSec = 20000.0; // deep overload
    config.admission.kind = AdmissionKind::Laxity;
    ServeDriver driver(config);
    ServeReport report = driver.run();
    EXPECT_GT(report.total.rejected, 0u);
    EXPECT_EQ(report.total.shed, 0u);
}

TEST(ServeDriverTest, RegistersServeStats)
{
    ServeDriver driver(smallConfig());
    driver.run();
    std::ostringstream out;
    driver.soc().writeStatsJson(out);
    std::string json = out.str();
    EXPECT_NE(json.find("serve.offered"), std::string::npos);
    EXPECT_NE(json.find("serve.goodput_rps"), std::string::npos);
    EXPECT_NE(json.find("serve.realtime.latency_ms"), std::string::npos);
}

TEST(ServeDriverTest, RunJsonHasSloFields)
{
    ServeDriver driver(smallConfig());
    std::string json = runJson(driver.run());
    for (const char *field :
         {"\"policy\"", "\"admission\"", "\"arrival\"", "\"offered_load\"",
          "\"rate_rps\"", "\"total\"", "\"classes\"", "\"goodput_rps\"",
          "\"miss_rate\"", "\"shed_rate\"", "\"latency_ms\"", "\"p50\"",
          "\"p95\"", "\"p99\"", "\"time_in_system_ms\"", "\"realtime\"",
          "\"interactive\"", "\"batch\""})
        EXPECT_NE(json.find(field), std::string::npos) << field;
}

TEST(ServeDriverTest, SloTablePrintsEveryClass)
{
    ServeDriver driver(smallConfig());
    ServeReport report = driver.run();
    std::ostringstream out;
    printSloTable(out, report, "test run");
    std::string table = out.str();
    EXPECT_NE(table.find("realtime"), std::string::npos);
    EXPECT_NE(table.find("interactive"), std::string::npos);
    EXPECT_NE(table.find("batch"), std::string::npos);
    EXPECT_NE(table.find("total"), std::string::npos);
}

TEST(ServeDriverTest, RejectsInvalidConfig)
{
    ServeConfig config = smallConfig();
    config.horizon = 0;
    EXPECT_THROW(ServeDriver{config}, FatalError);

    config = smallConfig();
    config.classes.clear();
    EXPECT_THROW(ServeDriver{config}, FatalError);
}

TEST(ServeDriverTest, RunIsSingleShot)
{
    ServeDriver driver(smallConfig());
    driver.run();
    EXPECT_THROW(driver.run(), PanicError);
}

} // namespace
} // namespace relief
