/**
 * @file
 * Tests for the serving driver: request-count conservation, the
 * determinism contract (a report is a pure function of config and
 * seed), deadline-miss and shedding accounting, stat registration,
 * and the relief-serve-v1 run serialization.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <vector>

#include "core/parallel.hh"
#include "serve/server.hh"
#include "sim/logging.hh"
#include "trace/sampler.hh"

namespace relief
{
namespace
{

ServeConfig
smallConfig()
{
    ServeConfig config;
    config.arrival.ratePerSec = 2000.0;
    config.horizon = fromMs(10.0);
    config.seed = 5;
    return config;
}

std::string
runJson(const ServeReport &report)
{
    std::ostringstream out;
    writeServeRunJson(out, report, "FCFS", "admit-all", "poisson", 1.0,
                      2000.0);
    return out.str();
}

TEST(ServeDriverTest, ConservesRequestCounts)
{
    ServeDriver driver(smallConfig());
    ServeReport report = driver.run();

    EXPECT_EQ(report.total.offered, driver.schedule().size());
    EXPECT_GT(report.total.offered, 0u);
    EXPECT_EQ(report.total.offered, report.total.admitted +
                                        report.total.shed +
                                        report.total.rejected);
    EXPECT_EQ(report.total.admitted,
              report.total.completed + report.total.inFlight);

    // Per-class counters must sum to the totals.
    std::uint64_t offered = 0, completed = 0, missed = 0;
    for (const ClassSlo &cls : report.classes) {
        offered += cls.offered;
        completed += cls.completed;
        missed += cls.missed;
    }
    EXPECT_EQ(offered, report.total.offered);
    EXPECT_EQ(completed, report.total.completed);
    EXPECT_EQ(missed, report.total.missed);

    // Request records agree with the aggregate counters.
    std::uint64_t finished = 0;
    for (const ServeRequest &request : driver.requests())
        if (request.finished) {
            ++finished;
            EXPECT_GE(request.finish, request.arrival);
        }
    EXPECT_EQ(finished, report.total.completed);
}

TEST(ServeDriverTest, ReportIsPureFunctionOfConfigAndSeed)
{
    ServeConfig config = smallConfig();
    ServeDriver first(config);
    ServeDriver second(config);
    std::string a = runJson(first.run());
    std::string b = runJson(second.run());
    EXPECT_EQ(a, b);

    config.seed = 6;
    ServeDriver third(config);
    EXPECT_NE(a, runJson(third.run()));
}

TEST(ServeDriverTest, ImpossibleDeadlinesAreAllMisses)
{
    ServeConfig config = smallConfig();
    // Deadlines ~100x tighter than the service time: every completion
    // must be a miss, and goodput must be zero.
    for (QosClassConfig &cls : config.classes)
        cls.deadlineScale = 0.01;
    ServeDriver driver(config);
    ServeReport report = driver.run();
    ASSERT_GT(report.total.completed, 0u);
    EXPECT_EQ(report.total.missed, report.total.completed);
    EXPECT_EQ(report.total.goodputRps(report.horizon), 0.0);
    EXPECT_EQ(report.total.missRate(), 1.0);
}

TEST(ServeDriverTest, QueueCapSheds)
{
    ServeConfig config = smallConfig();
    config.admission.kind = AdmissionKind::QueueCap;
    config.admission.queueCap = 1;
    ServeDriver driver(config);
    ServeReport report = driver.run();
    EXPECT_GT(report.total.shed, 0u);
    EXPECT_EQ(report.total.rejected, 0u);
    EXPECT_GT(report.total.shedRate(), 0.0);
}

TEST(ServeDriverTest, LaxityRejects)
{
    ServeConfig config = smallConfig();
    config.arrival.ratePerSec = 20000.0; // deep overload
    config.admission.kind = AdmissionKind::Laxity;
    ServeDriver driver(config);
    ServeReport report = driver.run();
    EXPECT_GT(report.total.rejected, 0u);
    EXPECT_EQ(report.total.shed, 0u);
}

TEST(ServeDriverTest, RegistersServeStats)
{
    ServeDriver driver(smallConfig());
    driver.run();
    std::ostringstream out;
    driver.soc().writeStatsJson(out);
    std::string json = out.str();
    EXPECT_NE(json.find("serve.offered"), std::string::npos);
    EXPECT_NE(json.find("serve.goodput_rps"), std::string::npos);
    EXPECT_NE(json.find("serve.realtime.latency_ms"), std::string::npos);
}

TEST(ServeDriverTest, RunJsonHasSloFields)
{
    ServeDriver driver(smallConfig());
    std::string json = runJson(driver.run());
    for (const char *field :
         {"\"policy\"", "\"admission\"", "\"arrival\"", "\"offered_load\"",
          "\"rate_rps\"", "\"total\"", "\"classes\"", "\"goodput_rps\"",
          "\"miss_rate\"", "\"shed_rate\"", "\"latency_ms\"", "\"p50\"",
          "\"p95\"", "\"p99\"", "\"time_in_system_ms\"", "\"realtime\"",
          "\"interactive\"", "\"batch\""})
        EXPECT_NE(json.find(field), std::string::npos) << field;
}

TEST(ServeDriverTest, PressureRollupAttributesPerQosClass)
{
    ServeDriver driver(smallConfig());
    ServeReport report = driver.run();

    // One rollup per serving class plus the ledger's implicit
    // "default" bucket (spill evictions and untagged traffic).
    ASSERT_EQ(report.pressure.size(), report.classes.size() + 1);
    EXPECT_EQ(report.pressure[0].name, "default");
    std::uint64_t tagged = 0;
    for (std::size_t i = 0; i < report.classes.size(); ++i) {
        EXPECT_EQ(report.pressure[i + 1].name, report.classes[i].name);
        tagged += report.pressure[i + 1].slot.bytes;
        // A class that completed work must have moved bytes.
        if (report.classes[i].completed > 0)
            EXPECT_GT(report.pressure[i + 1].slot.bytes, 0u) << i;
    }
    EXPECT_GT(tagged, 0u);

    // The run JSON carries the block with a row per class.
    std::string json = runJson(report);
    EXPECT_NE(json.find("\"pressure\""), std::string::npos);
    EXPECT_NE(json.find("\"wait_suffered_us\""), std::string::npos);
    EXPECT_NE(json.find("\"wait_caused_us\""), std::string::npos);
}

TEST(ServeDriverTest, SloTablePrintsEveryClass)
{
    ServeDriver driver(smallConfig());
    ServeReport report = driver.run();
    std::ostringstream out;
    printSloTable(out, report, "test run");
    std::string table = out.str();
    EXPECT_NE(table.find("realtime"), std::string::npos);
    EXPECT_NE(table.find("interactive"), std::string::npos);
    EXPECT_NE(table.find("batch"), std::string::npos);
    EXPECT_NE(table.find("total"), std::string::npos);
}

TEST(ServeDriverTest, RejectsInvalidConfig)
{
    ServeConfig config = smallConfig();
    config.horizon = 0;
    EXPECT_THROW(ServeDriver{config}, FatalError);

    config = smallConfig();
    config.classes.clear();
    EXPECT_THROW(ServeDriver{config}, FatalError);
}

TEST(ServeDriverTest, RunIsSingleShot)
{
    ServeDriver driver(smallConfig());
    driver.run();
    EXPECT_THROW(driver.run(), PanicError);
}

/** Overloaded config that produces misses, sheds, and kept traces. */
ServeConfig
tracedConfig()
{
    ServeConfig config = smallConfig();
    config.admission.kind = AdmissionKind::QueueCap;
    config.admission.queueCap = 4;
    for (QosClassConfig &cls : config.classes)
        cls.deadlineScale = 0.05;
    config.telemetry.traceRequests = true;
    config.telemetry.okFraction = 0.25;
    return config;
}

std::string
traceJson(ServeDriver &driver, const ServeConfig &config)
{
    std::ostringstream out;
    writeTraceDocJson(out, driver.keptTraces(),
                      driver.tailSampler()->summary(),
                      config.telemetry.okFraction, config.seed,
                      toMs(config.horizon));
    return out.str();
}

TEST(ServeDriverTest, TailSamplingKeepsEveryAnomalousRequest)
{
    ServeConfig config = tracedConfig();
    ServeDriver driver(config);
    ServeReport report = driver.run();

    const TailSampleSummary &s = report.sampling;
    EXPECT_EQ(s.offered, report.total.offered);
    // Conservation: every request is counted exactly once.
    EXPECT_EQ(s.keptOk + s.keptMiss + s.dropped, s.admitted);
    EXPECT_EQ(s.admitted + s.keptShed + s.keptRejected, s.offered);
    EXPECT_EQ(driver.keptTraces().size(), s.kept());
    EXPECT_GT(s.keptMiss + s.keptShed, 0u);

    // 100% tail coverage: every deadline-missing completion has a
    // kept trace, whatever the OK sampling fraction.
    std::set<std::uint64_t> kept_ids;
    for (const RequestTrace &trace : driver.keptTraces()) {
        kept_ids.insert(trace.id);
        ASSERT_FALSE(trace.spans.empty());
        EXPECT_EQ(trace.spans[0].kind, SpanKind::Request);
        EXPECT_GE(trace.finish, trace.arrival);
    }
    for (const ServeRequest &request : driver.requests()) {
        if (!request.finished ||
            request.finish <= request.absoluteDeadline())
            continue;
        EXPECT_TRUE(kept_ids.count(request.id))
            << "missed request " << request.id << " was dropped";
    }
}

TEST(ServeDriverTest, TraceDocIsBitIdenticalAcrossWorkerCounts)
{
    // Four independent runs, serial vs. four workers: the exported
    // relief-trace-v1 strings must match byte-for-byte (the sampler
    // keep decision is a pure function of seed and request id).
    constexpr std::size_t kRuns = 4;
    std::vector<std::string> serial(kRuns), threaded(kRuns);
    auto runPoint = [](std::size_t i) {
        ServeConfig config = tracedConfig();
        config.seed = 10 + std::uint64_t(i);
        ServeDriver driver(config);
        driver.run();
        return traceJson(driver, config);
    };
    parallelFor(kRuns, 1, [&](std::size_t i) { serial[i] = runPoint(i); });
    parallelFor(kRuns, 4,
                [&](std::size_t i) { threaded[i] = runPoint(i); });
    for (std::size_t i = 0; i < kRuns; ++i) {
        EXPECT_EQ(serial[i], threaded[i]) << "run " << i;
        EXPECT_NE(serial[i].find("\"relief-trace-v1\""),
                  std::string::npos);
    }
}

TEST(ServeDriverTest, RegistersTraceAndAlertStats)
{
    ServeConfig config = tracedConfig();
    config.telemetry.alerts = true;
    ServeDriver driver(config);
    driver.run();
    std::ostringstream out;
    driver.soc().writeStatsJson(out);
    std::string json = out.str();
    for (const char *stat :
         {"serve.trace.kept_ok", "serve.trace.kept_miss",
          "serve.trace.kept_shed", "serve.trace.kept_rejected",
          "serve.trace.dropped", "serve.realtime.alert_opens",
          "serve.realtime.alert_active"})
        EXPECT_NE(json.find(stat), std::string::npos) << stat;
}

TEST(ServeDriverTest, ExpositionPublishesPeriodicSnapshots)
{
    ServeConfig config = smallConfig();
    config.telemetry.exposition.path =
        ::testing::TempDir() + "relief_serve_expo_test.prom";
    config.telemetry.exposition.period = fromMs(1.0);
    std::remove(config.telemetry.exposition.path.c_str());

    ServeDriver driver(config);
    driver.run();
    ASSERT_NE(driver.exposition(), nullptr);
    // t=0, one per elapsed millisecond, plus the end-of-run snapshot.
    EXPECT_GE(driver.exposition()->numSnapshots(), 2u);

    // The scrape file exists and carries serve counters.
    std::ifstream in(config.telemetry.exposition.path);
    ASSERT_TRUE(bool(in));
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(text.find("relief_serve_offered"), std::string::npos);
    std::remove(config.telemetry.exposition.path.c_str());
}

} // namespace
} // namespace relief
