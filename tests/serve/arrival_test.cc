/**
 * @file
 * Tests for the serving layer's arrival generators: determinism,
 * schedule well-formedness, rate calibration of the Poisson and MMPP
 * processes, and the trace-file grammar.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "serve/arrival.hh"
#include "sim/logging.hh"

namespace relief
{
namespace
{

std::vector<QosClassConfig>
twoClasses()
{
    return {
        {"rnn", {AppId::Gru, AppId::Lstm}, 3.0, 1.0, 0},
        {"vision", {AppId::Canny}, 1.0, 2.0, 1},
    };
}

TEST(ArrivalNamesTest, RoundTrip)
{
    EXPECT_EQ(arrivalFromName("poisson"), ArrivalKind::Poisson);
    EXPECT_EQ(arrivalFromName("bursty"), ArrivalKind::Bursty);
    EXPECT_EQ(arrivalFromName("mmpp"), ArrivalKind::Bursty);
    EXPECT_EQ(arrivalFromName("trace"), ArrivalKind::Trace);
    EXPECT_STREQ(arrivalKindName(ArrivalKind::Poisson), "poisson");
    EXPECT_STREQ(arrivalKindName(ArrivalKind::Bursty), "bursty");
    EXPECT_THROW(arrivalFromName("nope"), FatalError);
}

TEST(PoissonArrivalTest, DeterministicPerSeed)
{
    ArrivalConfig config;
    config.ratePerSec = 2000.0;
    auto classes = twoClasses();
    auto a = generateArrivals(config, classes, fromMs(100.0), 7);
    auto b = generateArrivals(config, classes, fromMs(100.0), 7);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].time, b[i].time);
        EXPECT_EQ(a[i].qosClass, b[i].qosClass);
        EXPECT_EQ(a[i].app, b[i].app);
    }
    auto c = generateArrivals(config, classes, fromMs(100.0), 8);
    EXPECT_TRUE(a.size() != c.size() ||
                !std::equal(a.begin(), a.end(), c.begin(),
                            [](const ArrivalEvent &x, const ArrivalEvent &y) {
                                return x.time == y.time;
                            }));
}

TEST(PoissonArrivalTest, WellFormedSchedule)
{
    ArrivalConfig config;
    config.ratePerSec = 5000.0;
    auto classes = twoClasses();
    const Tick horizon = fromMs(200.0);
    auto events = generateArrivals(config, classes, horizon, 1);
    ASSERT_FALSE(events.empty());
    Tick prev = 0;
    for (const ArrivalEvent &event : events) {
        EXPECT_GE(event.time, prev);
        EXPECT_LT(event.time, horizon);
        prev = event.time;
        ASSERT_GE(event.qosClass, 0);
        ASSERT_LT(std::size_t(event.qosClass), classes.size());
        const auto &apps = classes[event.qosClass].apps;
        EXPECT_TRUE(std::find(apps.begin(), apps.end(), event.app) !=
                    apps.end());
    }
}

TEST(PoissonArrivalTest, HitsConfiguredRate)
{
    ArrivalConfig config;
    config.ratePerSec = 10000.0;
    // 1 second: expect 10000 arrivals, sigma = 100; allow 5 sigma.
    auto events =
        generateArrivals(config, twoClasses(), fromMs(1000.0), 3);
    EXPECT_NEAR(double(events.size()), 10000.0, 500.0);
}

TEST(PoissonArrivalTest, RespectsClassWeights)
{
    ArrivalConfig config;
    config.ratePerSec = 10000.0;
    auto classes = twoClasses(); // weights 3:1
    auto events =
        generateArrivals(config, classes, fromMs(1000.0), 5);
    ASSERT_GT(events.size(), 1000u);
    double rnn = 0;
    for (const ArrivalEvent &event : events)
        if (event.qosClass == 0)
            ++rnn;
    // P(rnn) = 0.75; sigma ~ 0.0043 at n=10000, allow 5 sigma.
    EXPECT_NEAR(rnn / double(events.size()), 0.75, 0.025);
}

TEST(PoissonArrivalTest, RejectsBadConfig)
{
    ArrivalConfig config;
    config.ratePerSec = 0.0;
    EXPECT_THROW(generateArrivals(config, twoClasses(), fromMs(1.0), 1),
                 FatalError);
}

TEST(BurstyArrivalTest, LongRunRateMatchesConfigured)
{
    ArrivalConfig config;
    config.kind = ArrivalKind::Bursty;
    config.ratePerSec = 10000.0;
    config.burstRateMultiplier = 8.0;
    config.burstFraction = 0.2;
    config.meanBurstDwell = fromMs(2.0);
    // MMPP counts are over-dispersed relative to Poisson; a 10 s
    // window with ~5000 state switches keeps the sample mean within a
    // few percent of the configured rate.
    auto events =
        generateArrivals(config, twoClasses(), fromMs(10000.0), 11);
    EXPECT_NEAR(double(events.size()) / 10.0, 10000.0, 1000.0);
}

TEST(BurstyArrivalTest, BurstsAreDenserThanCalm)
{
    ArrivalConfig config;
    config.kind = ArrivalKind::Bursty;
    config.ratePerSec = 5000.0;
    config.burstRateMultiplier = 10.0;
    config.burstFraction = 0.1;
    auto events =
        generateArrivals(config, twoClasses(), fromMs(1000.0), 2);
    ASSERT_GT(events.size(), 100u);
    // Count arrivals in 1 ms bins; a bursty stream must have a much
    // heavier tail (max bin) than its mean bin.
    std::vector<int> bins(1000, 0);
    for (const ArrivalEvent &event : events)
        ++bins[std::size_t(toMs(event.time))];
    double mean = double(events.size()) / bins.size();
    int peak = 0;
    for (int bin : bins)
        peak = std::max(peak, bin);
    EXPECT_GT(double(peak), 3.0 * mean);
}

TEST(BurstyArrivalTest, RejectsBadConfig)
{
    ArrivalConfig config;
    config.kind = ArrivalKind::Bursty;
    config.burstFraction = 1.5;
    EXPECT_THROW(generateArrivals(config, twoClasses(), fromMs(1.0), 1),
                 FatalError);
    config.burstFraction = 0.25;
    config.burstRateMultiplier = 0.5;
    EXPECT_THROW(generateArrivals(config, twoClasses(), fromMs(1.0), 1),
                 FatalError);
}

TEST(TraceArrivalTest, ParsesAndSorts)
{
    std::istringstream in("# comment line\n"
                          "2.5 vision C\n"
                          "\n"
                          "0.5 rnn G   # trailing comment\n"
                          "1.0 rnn L\n"
                          "99.0 vision C\n");
    auto events = parseArrivalTrace(in, twoClasses(), fromMs(10.0));
    ASSERT_EQ(events.size(), 3u); // 99 ms is past the horizon
    EXPECT_EQ(events[0].time, fromMs(0.5));
    EXPECT_EQ(events[0].qosClass, 0);
    EXPECT_EQ(events[0].app, AppId::Gru);
    EXPECT_EQ(events[1].app, AppId::Lstm);
    EXPECT_EQ(events[2].time, fromMs(2.5));
    EXPECT_EQ(events[2].qosClass, 1);
}

TEST(TraceArrivalTest, RejectsMalformedInput)
{
    auto classes = twoClasses();
    {
        std::istringstream in("1.0 nosuch C\n");
        EXPECT_THROW(parseArrivalTrace(in, classes, fromMs(10.0)),
                     FatalError);
    }
    {
        std::istringstream in("1.0 rnn C\n"); // Canny not in rnn class
        EXPECT_THROW(parseArrivalTrace(in, classes, fromMs(10.0)),
                     FatalError);
    }
    {
        std::istringstream in("not-a-number rnn G\n");
        EXPECT_THROW(parseArrivalTrace(in, classes, fromMs(10.0)),
                     FatalError);
    }
    {
        std::istringstream in("1.0 rnn\n"); // missing app column
        EXPECT_THROW(parseArrivalTrace(in, classes, fromMs(10.0)),
                     FatalError);
    }
}

TEST(TraceArrivalTest, GenerateArrivalsReadsTraceFile)
{
    ArrivalConfig config;
    config.kind = ArrivalKind::Trace;
    config.tracePath = "/nonexistent/arrivals.txt";
    EXPECT_THROW(generateArrivals(config, twoClasses(), fromMs(1.0), 1),
                 FatalError);
}

} // namespace
} // namespace relief
