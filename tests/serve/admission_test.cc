/**
 * @file
 * Tests for the admission-control policies: admit-all never drops,
 * queue-cap sheds exactly at the cap, and laxity rejects exactly the
 * requests whose predicted completion blows the deadline.
 */

#include <gtest/gtest.h>

#include "dag/apps/apps.hh"
#include "serve/admission.hh"
#include "sim/logging.hh"

namespace relief
{
namespace
{

class AdmissionTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dag_ = buildApp(AppId::Gru);
        request_.app = AppId::Gru;
        request_.arrival = fromMs(1.0);
        request_.relDeadline = appDeadline(AppId::Gru);
    }

    static AdmissionVerdict
    decide(const AdmissionConfig &config, const ServeRequest &request,
           const Dag &dag, const AdmissionContext &ctx)
    {
        return makeAdmissionPolicy(config)->decide(request, dag, ctx);
    }

    DagPtr dag_;
    ServeRequest request_;
};

TEST_F(AdmissionTest, NamesRoundTrip)
{
    EXPECT_EQ(admissionFromName("admit-all"), AdmissionKind::AdmitAll);
    EXPECT_EQ(admissionFromName("queue-cap"), AdmissionKind::QueueCap);
    EXPECT_EQ(admissionFromName("laxity"), AdmissionKind::Laxity);
    EXPECT_STREQ(admissionKindName(AdmissionKind::QueueCap), "queue-cap");
    EXPECT_THROW(admissionFromName("drop-everything"), FatalError);
}

TEST_F(AdmissionTest, AdmitAllAdmitsUnderAnyLoad)
{
    AdmissionConfig config; // kind defaults to AdmitAll
    AdmissionContext ctx;
    ctx.inSystem = 1000000;
    ctx.backlog = maxTick / 2;
    EXPECT_EQ(decide(config, request_, *dag_, ctx),
              AdmissionVerdict::Admitted);
}

TEST_F(AdmissionTest, QueueCapShedsAtCap)
{
    AdmissionConfig config;
    config.kind = AdmissionKind::QueueCap;
    config.queueCap = 4;
    AdmissionContext ctx;

    ctx.inSystem = 3;
    EXPECT_EQ(decide(config, request_, *dag_, ctx),
              AdmissionVerdict::Admitted);
    ctx.inSystem = 4;
    EXPECT_EQ(decide(config, request_, *dag_, ctx),
              AdmissionVerdict::Shed);
    ctx.inSystem = 5;
    EXPECT_EQ(decide(config, request_, *dag_, ctx),
              AdmissionVerdict::Shed);
}

TEST_F(AdmissionTest, QueueCapRejectsBadCap)
{
    AdmissionConfig config;
    config.kind = AdmissionKind::QueueCap;
    config.queueCap = 0;
    EXPECT_THROW(makeAdmissionPolicy(config), FatalError);
}

TEST_F(AdmissionTest, LaxityAdmitsFeasibleRejectsInfeasible)
{
    AdmissionConfig config;
    config.kind = AdmissionKind::Laxity;
    AdmissionContext ctx;
    ctx.parallelism = 1;

    // Empty system: the request's own critical path fits the deadline
    // (the apps are schedulable in isolation by construction).
    ctx.backlog = 0;
    ASSERT_LE(dag_->criticalPathRuntime(), request_.relDeadline);
    EXPECT_EQ(decide(config, request_, *dag_, ctx),
              AdmissionVerdict::Admitted);

    // Backlog so deep the predicted completion blows the deadline.
    ctx.backlog = 2 * request_.relDeadline;
    EXPECT_EQ(decide(config, request_, *dag_, ctx),
              AdmissionVerdict::Rejected);
}

TEST_F(AdmissionTest, LaxityScalesBacklogByParallelism)
{
    AdmissionConfig config;
    config.kind = AdmissionKind::Laxity;
    AdmissionContext ctx;

    // A backlog that is infeasible on one lane but fine spread over 8.
    ctx.backlog = 2 * request_.relDeadline;
    ctx.parallelism = 1;
    EXPECT_EQ(decide(config, request_, *dag_, ctx),
              AdmissionVerdict::Rejected);
    ctx.parallelism = 8;
    EXPECT_EQ(decide(config, request_, *dag_, ctx),
              AdmissionVerdict::Admitted);
}

TEST_F(AdmissionTest, LaxityMarginTightensTheBound)
{
    AdmissionContext ctx;
    ctx.parallelism = 1;
    // Pick a backlog right at the feasibility edge with margin 1.
    Tick slack = request_.relDeadline - dag_->criticalPathRuntime();
    ASSERT_GT(slack, 0u);
    ctx.backlog = slack; // predicted completion == deadline: admitted

    AdmissionConfig config;
    config.kind = AdmissionKind::Laxity;
    config.laxityMargin = 1.0;
    EXPECT_EQ(decide(config, request_, *dag_, ctx),
              AdmissionVerdict::Admitted);

    config.laxityMargin = 2.0; // same backlog now predicted too slow
    EXPECT_EQ(decide(config, request_, *dag_, ctx),
              AdmissionVerdict::Rejected);

    config.laxityMargin = 0.0;
    EXPECT_THROW(makeAdmissionPolicy(config), FatalError);
}

} // namespace
} // namespace relief
