/**
 * @file
 * End-to-end functional validation: every application DAG, executed
 * through the full SoC simulation (scheduler, DMA, forwarding,
 * colocation), must produce the same result as the reference kernel
 * pipelines — proving the scheduling machinery never corrupts
 * dataflow, no matter which policy ran it.
 */

#include <gtest/gtest.h>

#include "core/soc.hh"
#include "dag/apps/apps.hh"
#include "kernels/vision.hh"

namespace relief
{
namespace
{

DagPtr
runFunctional(AppId app, PolicyKind policy)
{
    SocConfig config;
    config.policy = policy;
    Soc soc(config);
    AppConfig app_config;
    app_config.functional = true;
    DagPtr dag = buildApp(app, app_config);
    soc.submit(dag);
    soc.run(fromMs(50.0));
    EXPECT_TRUE(dag->complete()) << appName(app);
    return dag;
}

void
expectExactly(const std::vector<float> &got, const Plane &want)
{
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        ASSERT_FLOAT_EQ(got[i], want.data()[i]) << "element " << i;
}

TEST(FunctionalPipelineTest, CannyMatchesReference)
{
    DagPtr dag = runFunctional(AppId::Canny, PolicyKind::Relief);
    BayerImage raw = makeSyntheticScene(128, 128, 1);
    expectExactly(dag->leaves().front()->outputData, cannyReference(raw));
}

TEST(FunctionalPipelineTest, HarrisMatchesReference)
{
    DagPtr dag = runFunctional(AppId::Harris, PolicyKind::Relief);
    BayerImage raw = makeSyntheticScene(128, 128, 1);
    expectExactly(dag->leaves().front()->outputData,
                  harrisReference(raw));
}

TEST(FunctionalPipelineTest, DeblurMatchesReference)
{
    DagPtr dag = runFunctional(AppId::Deblur, PolicyKind::Relief);
    BayerImage raw = makeSyntheticScene(128, 128, 1);
    Plane observed = grayscale(isp(raw));
    Filter2D psf = gaussianFilter(5, 1.2f);
    Plane expected = richardsonLucy(observed, psf, 5);
    expectExactly(dag->leaves().front()->outputData, expected);
}

TEST(FunctionalPipelineTest, GruMatchesKernelCell)
{
    AppConfig app_config;
    app_config.functional = true;
    DagPtr dag = runFunctional(AppId::Gru, PolicyKind::Relief);
    std::vector<float> expected = gruReferenceOutput(app_config);
    const auto &got = dag->leaves().front()->outputData;
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        ASSERT_NEAR(got[i], expected[i], 1e-5) << "element " << i;
}

TEST(FunctionalPipelineTest, LstmMatchesKernelCell)
{
    AppConfig app_config;
    app_config.functional = true;
    DagPtr dag = runFunctional(AppId::Lstm, PolicyKind::Relief);
    std::vector<float> expected = lstmReferenceOutput(app_config);
    const auto &got = dag->leaves().front()->outputData;
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        ASSERT_NEAR(got[i], expected[i], 1e-5) << "element " << i;
}

TEST(FunctionalPipelineTest, ResultIndependentOfPolicy)
{
    // Scheduling decides *when* and *where*, never *what*: every
    // policy must produce identical Canny output.
    DagPtr reference = runFunctional(AppId::Canny, PolicyKind::Fcfs);
    for (PolicyKind policy :
         {PolicyKind::GedfD, PolicyKind::Lax, PolicyKind::HetSched,
          PolicyKind::Relief, PolicyKind::ReliefLax}) {
        DagPtr dag = runFunctional(AppId::Canny, policy);
        EXPECT_EQ(dag->leaves().front()->outputData,
                  reference->leaves().front()->outputData)
            << policyName(policy);
    }
}

TEST(FunctionalPipelineTest, ContentionDoesNotCorruptResults)
{
    // Run Canny together with competing applications; its output must
    // match the standalone reference bit for bit.
    SocConfig config;
    config.policy = PolicyKind::Relief;
    Soc soc(config);
    AppConfig app_config;
    app_config.functional = true;
    DagPtr canny = buildApp(AppId::Canny, app_config);
    DagPtr gru = buildApp(AppId::Gru, app_config);
    DagPtr harris = buildApp(AppId::Harris, app_config);
    soc.submit(canny);
    soc.submit(gru);
    soc.submit(harris);
    soc.run(fromMs(50.0));
    ASSERT_TRUE(canny->complete());
    BayerImage raw = makeSyntheticScene(128, 128, 1);
    expectExactly(canny->leaves().front()->outputData,
                  cannyReference(raw));
}

} // namespace
} // namespace relief
