/**
 * @file
 * Integration tests for the memory-pressure attribution ledger: the
 * conservation laws the ledger promises against each resource's own
 * counters, bit-identical reports across parallelFor worker counts,
 * and the zero-allocation contract on the event hot path.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/relief.hh"

namespace relief
{
namespace
{

/** Run one mix to completion and hand back the live Soc. */
std::unique_ptr<Soc>
runMix(const std::string &mix, const SocConfig &soc_config)
{
    auto soc = std::make_unique<Soc>(soc_config);
    for (AppId app : parseMix(mix))
        soc->submit(buildApp(app, {}), 0, false);
    soc->run();
    return soc;
}

void
expectBooksBalance(const Soc &soc)
{
    const PressureLedger &ledger = soc.pressureLedger();
    ASSERT_TRUE(ledger.sealed());
    std::uint64_t transfers = 0;
    for (int id = 0; id < ledger.numResources(); ++id) {
        const BandwidthResource &res = ledger.resource(id);
        PressureLedger::Slot total = ledger.resourceTotal(id);
        // Per resource, the per-key ledger sums to exactly the
        // resource's own aggregate counters...
        EXPECT_EQ(total.bytes, res.totalBytes()) << res.name();
        EXPECT_EQ(total.transfers, res.numTransfers()) << res.name();
        // ...and the delay books balance: every tick of queueing
        // suffered is attributed to some contender (1-tick slack for
        // the acceptance criterion; the model is exact).
        EXPECT_EQ(total.waitSuffered, res.waitTime()) << res.name();
        EXPECT_NEAR(double(total.waitCaused), double(total.waitSuffered),
                    1.0)
            << res.name();
        transfers += total.transfers;
    }
    EXPECT_GT(transfers, 0u);
}

TEST(PressureIntegrationTest, LedgerBalancesOnTier1Mixes)
{
    for (const std::string mix : {"C", "CDL", "CDGHL"}) {
        SCOPED_TRACE(mix);
        SocConfig config;
        config.policy = PolicyKind::Relief;
        expectBooksBalance(*runMix(mix, config));
    }
}

TEST(PressureIntegrationTest, LedgerBalancesWithBankedMemoryAndXbar)
{
    SocConfig config;
    config.policy = PolicyKind::Relief;
    config.bankedMemory = true;
    config.fabric = FabricKind::Crossbar;
    auto soc = runMix("CDGHL", config);
    expectBooksBalance(*soc);
    // The banked model registers channel + every bank; contention on
    // at least one DRAM-plane resource must have been observed.
    EXPECT_GT(soc->pressureLedger().resourceTotal(0).waitSuffered, 0u);
}

TEST(PressureIntegrationTest, EveryTrafficTypeShowsUpUnderPressure)
{
    SocConfig config;
    config.policy = PolicyKind::Relief;
    config.bankedMemory = true;
    auto soc = runMix("CDGHL", config);
    const PressureLedger &ledger = soc->pressureLedger();
    bool seen[numPressureTraffic] = {};
    for (int id = 0; id < ledger.numResources(); ++id) {
        for (int key = 1; key < ledger.numKeys(); ++key) {
            if (ledger.slot(id, key).transfers > 0)
                seen[int(ledger.keyTraffic(key))] = true;
        }
    }
    EXPECT_TRUE(seen[int(PressureTraffic::DramFetch)]);
    EXPECT_TRUE(seen[int(PressureTraffic::Writeback)]);
    EXPECT_TRUE(seen[int(PressureTraffic::Forward)]);
    // SPM spills only occur under partition eviction, which CDGHL
    // with default sizing does trigger under RELIEF.
    EXPECT_TRUE(seen[int(PressureTraffic::SpmSpill)]);
}

TEST(PressureIntegrationTest, UntaggedBucketStaysEmptyInBatchRuns)
{
    // Every batch-mode transfer flows through the manager, which tags
    // all four traffic types; nothing should land in key 0.
    SocConfig config;
    config.policy = PolicyKind::Relief;
    auto soc = runMix("CDL", config);
    const PressureLedger &ledger = soc->pressureLedger();
    for (int id = 0; id < ledger.numResources(); ++id)
        EXPECT_EQ(ledger.slot(id, 0).transfers, 0u)
            << ledger.resource(id).name();
}

TEST(PressureIntegrationTest, PressureReportIsBitIdenticalAcrossJobs)
{
    auto render = [](int jobs) {
        std::vector<std::string> docs(3);
        parallelFor(docs.size(), jobs, [&](std::size_t i) {
            // Node ids come from a thread-local allocator and seed the
            // bank-mapping stream hints: reset per run, exactly like
            // the serving driver, so the report is a pure function of
            // the config regardless of which worker renders it.
            resetNodeIds();
            SocConfig config;
            config.policy = PolicyKind::Relief;
            config.bankedMemory = i == 1;
            auto soc = runMix(i == 2 ? "CDGHL" : "CDL", config);
            std::ostringstream out;
            soc->writePressureJson(out);
            docs[i] = out.str();
        });
        return docs;
    };
    std::vector<std::string> serial = render(1);
    std::vector<std::string> parallel = render(4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_FALSE(serial[i].empty());
        EXPECT_EQ(serial[i], parallel[i]) << "doc " << i;
    }
}

TEST(PressureIntegrationTest, LedgerKeepsEventHotPathAllocationFree)
{
    // The acceptance bar from the zero-allocation PR: recording
    // pressure must not push any event capture past the inline
    // buffer, over a continuous contention microloop.
    SocConfig config;
    config.policy = PolicyKind::Relief;
    config.bankedMemory = true;
    Soc soc(config);
    for (AppId app : parseMix("CDGHL"))
        soc.submit(buildApp(app, {}), 0, true);
    soc.run(fromMs(20.0));
    EXPECT_GT(soc.pressureLedger().resourceTotal(0).transfers, 0u);
    EXPECT_EQ(soc.sim().events().numHeapCallables(), 0u);
}

TEST(PressureIntegrationTest, StatsJsonEmbedsPressureBlock)
{
    SocConfig config;
    auto soc = runMix("CDL", config);
    std::ostringstream out;
    soc->writeStatsJson(out);
    const std::string doc = out.str();
    EXPECT_NE(doc.find("\"pressure\": {"), std::string::npos);
    EXPECT_NE(doc.find("\"contenders\""), std::string::npos);
    // Embedded form carries no schema tag of its own; the standalone
    // artifact does.
    std::ostringstream standalone;
    soc->writePressureJson(standalone);
    EXPECT_NE(standalone.str().find("relief-pressure-v1"),
              std::string::npos);
    EXPECT_EQ(doc.find("relief-pressure-v1"), std::string::npos);
}

} // namespace
} // namespace relief
