/**
 * @file
 * Parameterized sweeps: the reproduction must hold across input sizes,
 * sequence lengths, fabric kinds, and memory models — not just the
 * paper's exact configuration. Each sweep checks a structural
 * invariant or a functional equivalence at every point.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/experiment.hh"
#include "kernels/vision.hh"

namespace relief
{
namespace
{

// --- Functional correctness across image sizes ------------------------

class ImageSizeSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(ImageSizeSweep, CannyDagMatchesReferenceAtEverySize)
{
    const int size = GetParam();
    AppConfig app_config;
    app_config.functional = true;
    app_config.width = size;
    app_config.height = size;

    Soc soc;
    DagPtr dag = buildApp(AppId::Canny, app_config);
    soc.submit(dag);
    soc.run(fromMs(50.0));
    ASSERT_TRUE(dag->complete());

    BayerImage raw = makeSyntheticScene(size, size, app_config.seed);
    Plane expected = cannyReference(raw);
    EXPECT_EQ(dag->leaves().front()->outputData, expected.data());
}

TEST_P(ImageSizeSweep, ComputeTimeScalesWithArea)
{
    const int size = GetParam();
    TaskParams p;
    p.type = AccType::ElemMatrix;
    p.elems = std::uint32_t(size) * std::uint32_t(size);
    double expected_us =
        10.94 * double(p.elems) / double(referenceElems);
    EXPECT_NEAR(toUs(computeTime(p)), expected_us, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ImageSizeSweep,
                         ::testing::Values(32, 64, 96, 128));

// --- RNN sequence-length sweep ----------------------------------------

class SeqLenSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(SeqLenSweep, GruDagMatchesCellAtEveryLength)
{
    AppConfig app_config;
    app_config.functional = true;
    app_config.seqLen = GetParam();

    Soc soc;
    DagPtr dag = buildApp(AppId::Gru, app_config);
    soc.submit(dag);
    soc.run(fromMs(200.0));
    ASSERT_TRUE(dag->complete());

    auto expected = gruReferenceOutput(app_config);
    const auto &got = dag->leaves().front()->outputData;
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); i += 997)
        EXPECT_NEAR(got[i], expected[i], 1e-5) << i;
}

TEST_P(SeqLenSweep, NodeCountIsFourteenPerStep)
{
    AppConfig app_config;
    app_config.seqLen = GetParam();
    EXPECT_EQ(buildApp(AppId::Gru, app_config)->numNodes(),
              14 * GetParam());
}

INSTANTIATE_TEST_SUITE_P(Lengths, SeqLenSweep,
                         ::testing::Values(1, 2, 4, 8));

// --- Platform sweep: fabric x memory model ----------------------------

class PlatformSweep
    : public ::testing::TestWithParam<std::tuple<FabricKind, bool>>
{
};

TEST_P(PlatformSweep, MixCompletesWithConsistentAccounting)
{
    auto [fabric, banked] = GetParam();
    ExperimentConfig config;
    config.soc.policy = PolicyKind::Relief;
    config.soc.fabric = fabric;
    config.soc.bankedMemory = banked;
    config.mix = "CGL";
    MetricsReport r = runExperiment(config);
    EXPECT_EQ(r.run.forwards + r.run.colocations + r.run.dramEdges,
              r.run.edgesConsumed);
    EXPECT_GT(r.run.nodesFinished, 0u);
    EXPECT_LE(r.dramBytes, r.run.baselineBytes);
}

TEST_P(PlatformSweep, ReliefStillBeatsLaxOnForwards)
{
    auto [fabric, banked] = GetParam();
    auto run_policy = [&](PolicyKind policy) {
        ExperimentConfig config;
        config.soc.policy = policy;
        config.soc.fabric = std::get<0>(GetParam());
        config.soc.bankedMemory = std::get<1>(GetParam());
        config.mix = "GHL";
        return runExperiment(config).forwardFraction();
    };
    (void)fabric;
    (void)banked;
    EXPECT_GT(run_policy(PolicyKind::Relief),
              run_policy(PolicyKind::Lax) * 2.0);
}

INSTANTIATE_TEST_SUITE_P(
    Platforms, PlatformSweep,
    ::testing::Combine(::testing::Values(FabricKind::Bus,
                                         FabricKind::Crossbar),
                       ::testing::Bool()),
    [](const auto &info) {
        std::string name = std::get<0>(info.param) == FabricKind::Bus
                               ? "bus"
                               : "xbar";
        name += std::get<1>(info.param) ? "_banked" : "_flat";
        return name;
    });

// --- Deblur iteration sweep -------------------------------------------

class DeblurIterSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(DeblurIterSweep, StructureAndRuntimeScaleLinearly)
{
    AppConfig app_config;
    app_config.deblurIters = GetParam();
    DagPtr dag = buildApp(AppId::Deblur, app_config);
    EXPECT_EQ(dag->numNodes(), 2 + 4 * GetParam());
    // Compute time: I + G + k * (2C + 2EM).
    double expected_us =
        34.88 + 10.26 + double(GetParam()) * (2 * 1545.61 + 2 * 10.94);
    EXPECT_NEAR(toUs(dag->totalComputeTime()), expected_us, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Iterations, DeblurIterSweep,
                         ::testing::Values(1, 2, 5, 8));

} // namespace
} // namespace relief
