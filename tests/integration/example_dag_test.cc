/**
 * @file
 * Motivating-example tests in the spirit of the paper's Fig. 2: small
 * hand-built DAGs with fixed runtimes where the ideal schedule is known.
 * RELIEF must realize the forwarding/colocation opportunities that
 * deadline- and laxity-driven baselines forfeit, while its feasibility
 * check must refuse promotions that would break a tight deadline.
 */

#include <gtest/gtest.h>

#include "core/soc.hh"
#include "dag/dag.hh"
#include "sched/oracle.hh"
#include "sched/relief.hh"

namespace relief
{
namespace
{

TaskParams
unitTask(AccType type)
{
    TaskParams p;
    p.type = type;
    p.numInputs = 1;
    p.elems = 256; // 1 KiB operands: transfers are negligible
    return p;
}

/** Linear chain of @p length nodes, all on @p type, 100 us each. */
DagPtr
chain(const std::string &name, AccType type, int length, Tick deadline)
{
    auto dag = std::make_shared<Dag>(name, name[0]);
    Node *prev = nullptr;
    for (int i = 0; i < length; ++i) {
        Node *n = dag->addNode(unitTask(type),
                               name + "." + std::to_string(i));
        n->fixedRuntime = fromUs(100.0);
        if (prev)
            dag->addEdge(prev, n);
        prev = n;
    }
    dag->setRelativeDeadline(deadline);
    dag->finalize();
    return dag;
}

struct Outcome
{
    std::uint64_t forwardsPlusColocations = 0;
    std::uint64_t dagDeadlinesMet = 0;
    std::uint64_t nodeDeadlinesMet = 0;
    std::uint64_t nodesFinished = 0;
};

Outcome
runTwoChains(PolicyKind policy, Tick deadline = fromMs(10.0))
{
    SocConfig config;
    config.policy = policy;
    config.manager.computeJitter = 0.0;
    Soc soc(config);
    soc.submit(chain("a", AccType::ElemMatrix, 4, deadline));
    soc.submit(chain("b", AccType::ElemMatrix, 4, deadline));
    soc.run(fromMs(50.0));
    MetricsReport report = soc.report();
    Outcome out;
    out.forwardsPlusColocations =
        report.run.forwards + report.run.colocations;
    out.dagDeadlinesMet = report.run.dagDeadlinesMet;
    out.nodeDeadlinesMet = report.run.nodeDeadlinesMet;
    out.nodesFinished = report.run.nodesFinished;
    return out;
}

TEST(ExampleDagTest, EqualDeadlineChainsInterleaveUnderBaselines)
{
    // Two identical chains on one accelerator: laxity/deadline ties
    // make LL-style policies round-robin between the DAGs, forfeiting
    // every colocation (the paper's explanation for RNN behaviour,
    // Section V-A).
    for (PolicyKind policy : {PolicyKind::GedfN, PolicyKind::Lax,
                              PolicyKind::HetSched}) {
        Outcome out = runTwoChains(policy);
        EXPECT_EQ(out.forwardsPlusColocations, 0u) << policyName(policy);
        EXPECT_EQ(out.dagDeadlinesMet, 2u) << policyName(policy);
    }
}

TEST(ExampleDagTest, ReliefRecoversEveryColocation)
{
    Outcome out = runTwoChains(PolicyKind::Relief);
    // 3 edges per chain, all colocated by child promotion.
    EXPECT_EQ(out.forwardsPlusColocations, 6u);
    EXPECT_EQ(out.dagDeadlinesMet, 2u);
    EXPECT_EQ(out.nodeDeadlinesMet, out.nodesFinished);
}

TEST(ExampleDagTest, FcfsAlsoInterleavesArrivalTies)
{
    Outcome out = runTwoChains(PolicyKind::Fcfs);
    EXPECT_EQ(out.forwardsPlusColocations, 0u);
}

TEST(ExampleDagTest, ReliefBeatsEveryBaselineOnMixedExample)
{
    // A cross-type example: two producer/consumer pipelines sharing
    // three accelerator types.
    auto build = [](const std::string &name, Tick deadline) {
        auto dag = std::make_shared<Dag>(name, name[0]);
        Node *a = dag->addNode(unitTask(AccType::ElemMatrix), name + ".a");
        Node *b = dag->addNode(unitTask(AccType::Convolution),
                               name + ".b");
        Node *c = dag->addNode(unitTask(AccType::ElemMatrix), name + ".c");
        Node *d = dag->addNode(unitTask(AccType::Grayscale), name + ".d");
        for (Node *n : {a, b, c, d})
            n->fixedRuntime = fromUs(100.0);
        dag->addEdge(a, b);
        dag->addEdge(b, c);
        dag->addEdge(c, d);
        dag->setRelativeDeadline(deadline);
        dag->finalize();
        return dag;
    };

    auto run = [&](PolicyKind policy) {
        SocConfig config;
        config.policy = policy;
        config.manager.computeJitter = 0.0;
        Soc soc(config);
        soc.submit(build("x", fromMs(8.0)));
        soc.submit(build("y", fromMs(8.0)));
        soc.run(fromMs(50.0));
        MetricsReport report = soc.report();
        return report.run.forwards + report.run.colocations;
    };

    std::uint64_t relief = run(PolicyKind::Relief);
    for (PolicyKind policy :
         {PolicyKind::Fcfs, PolicyKind::GedfD, PolicyKind::GedfN,
          PolicyKind::Lax, PolicyKind::HetSched}) {
        EXPECT_GE(relief, run(policy)) << policyName(policy);
    }
    EXPECT_EQ(relief, 6u); // all edges of both DAGs
}

TEST(ExampleDagTest, FeasibilityCheckProtectsTightDeadline)
{
    // An urgent single-node DAG waits on the elem-matrix accelerator
    // while a loose chain generates forwarding candidates. RELIEF may
    // promote only while the urgent node's laxity tolerates it — the
    // urgent deadline must survive.
    SocConfig config;
    config.policy = PolicyKind::Relief;
    config.manager.computeJitter = 0.0;
    Soc soc(config);

    DagPtr loose = chain("loose", AccType::ElemMatrix, 8, fromMs(20.0));
    // Urgent: one 100 us task with only ~350 us of slack.
    DagPtr urgent = chain("urgent", AccType::ElemMatrix, 1, fromUs(450.0));
    soc.submit(loose);
    soc.submit(urgent);
    soc.run(fromMs(50.0));

    MetricsReport report = soc.report();
    ASSERT_EQ(report.run.dagsFinished, 2u);
    for (const AppOutcome &app : report.apps) {
        if (app.name == "urgent") {
            EXPECT_EQ(app.deadlinesMet, 1) << "urgent DAG missed its "
                                              "deadline: promotions were "
                                              "not throttled";
        }
    }
    // The loose chain still gets some colocations before/after the
    // urgent node runs.
    EXPECT_GT(report.run.colocations, 0u);
}

TEST(ExampleDagTest, ReliefMatchesTheOracleOnTheMotivatingExample)
{
    // The paper's claim for Fig. 2: "RELIEF achieves the ideal
    // schedule." Compare against the exhaustive search.
    DagPtr a = chain("a", AccType::ElemMatrix, 4, fromMs(10.0));
    DagPtr b = chain("b", AccType::ElemMatrix, 4, fromMs(10.0));
    std::array<int, std::size_t(numAccTypes)> instances = {1, 1, 1, 1,
                                                           1, 1, 1};
    OracleResult ideal =
        findIdealSchedule({a.get(), b.get()}, instances);
    ASSERT_TRUE(ideal.exhaustive);

    Outcome relief = runTwoChains(PolicyKind::Relief);
    EXPECT_EQ(int(relief.forwardsPlusColocations),
              ideal.totalRealized());
    EXPECT_EQ(int(relief.dagDeadlinesMet), ideal.dagDeadlinesMet);
}

TEST(ExampleDagTest, PromotionThrottleCountsAreExposed)
{
    SocConfig config;
    config.policy = PolicyKind::Relief;
    config.manager.computeJitter = 0.0;
    Soc soc(config);
    soc.submit(chain("a", AccType::ElemMatrix, 4, fromMs(10.0)));
    soc.submit(chain("b", AccType::ElemMatrix, 4, fromMs(10.0)));
    soc.run(fromMs(50.0));
    auto &relief = dynamic_cast<ReliefPolicy &>(soc.manager().policy());
    EXPECT_GT(relief.numPromotions(), 0u);
}

} // namespace
} // namespace relief
