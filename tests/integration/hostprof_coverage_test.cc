/**
 * @file
 * End-to-end HostProf attribution over full mix runs: the acceptance
 * bar is that at least 90% of the measured host wall time is
 * attributed to a category on every tier-1 mix (the rest is clock
 * granularity and unscoped glue).
 */

#include <gtest/gtest.h>

#include <string>

#include "core/experiment.hh"
#include "sim/hostprof.hh"

namespace relief
{
namespace
{

TEST(HostProfCoverageTest, TierOneMixesAttributeMostOfTheWall)
{
    for (const std::string mix : {"CDL", "GHL", "CG"}) {
        setHostProfEnabled(true);
        MetricsReport report =
            runMixPolicy(mix, PolicyKind::Relief, false);
        setHostProfEnabled(false);
        HostProfSnapshot snap = hostProfSnapshot();

        EXPECT_GT(report.run.dagsFinished, 0) << mix;
        EXPECT_GT(snap.totalWallNs, 0u) << mix;
        EXPECT_GE(snap.coverage(), 0.9) << mix;
        EXPECT_LE(snap.coverage(), 1.0) << mix;

        // The run went through the event loop, so the model
        // categories must all have been exercised.
        std::uint64_t tagged = 0;
        for (HostCat cat : {HostCat::Sched, HostCat::Dma, HostCat::Mem,
                            HostCat::Kernels})
            tagged +=
                snap.cats[static_cast<std::size_t>(cat)].wallNs;
        EXPECT_GT(tagged, 0u) << mix;
    }
}

TEST(HostProfCoverageTest, ProfilingOffLeavesNoResidue)
{
    // A plain run with profiling off must not disturb a later
    // profiled run's books (thread-local state fully resets).
    runMixPolicy("CG", PolicyKind::Relief, false);
    setHostProfEnabled(true);
    runMixPolicy("CG", PolicyKind::Relief, false);
    setHostProfEnabled(false);
    HostProfSnapshot snap = hostProfSnapshot();
    EXPECT_GE(snap.coverage(), 0.9);
}

} // namespace
} // namespace relief
