/**
 * @file
 * System-level integration tests: whole-application runs, cross-policy
 * behaviour (the paper's headline claims in miniature), interconnect
 * sensitivity, and continuous contention.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"

namespace relief
{
namespace
{

TEST(SocIntegrationTest, EveryAppAloneMeetsItsDeadline)
{
    // Table V: positive laxity for every application run alone.
    for (const std::string mix : {"C", "D", "G", "H", "L"}) {
        MetricsReport report =
            runMixPolicy(mix, PolicyKind::Relief, false);
        ASSERT_EQ(report.apps.size(), 1u);
        EXPECT_EQ(report.apps[0].iterations, 1) << mix;
        EXPECT_EQ(report.apps[0].deadlinesMet, 1) << mix;
        EXPECT_LT(report.apps[0].meanSlowdown(), 1.0) << mix;
    }
}

TEST(SocIntegrationTest, StandaloneRuntimesTrackTableV)
{
    // Deadline minus Table V laxity gives each app's standalone
    // runtime; ours should land in the same ballpark (+-35%).
    const std::map<std::string, double> expected_ms = {
        {"C", 3.0}, {"D", 16.4}, {"G", 4.7}, {"L", 3.4},
    };
    for (const auto &[mix, ms] : expected_ms) {
        MetricsReport report =
            runMixPolicy(mix, PolicyKind::Relief, false);
        double runtime_ms =
            report.apps[0].meanSlowdown() *
            toMs(report.apps[0].relDeadline);
        EXPECT_NEAR(runtime_ms, ms, ms * 0.35) << mix;
    }
}

TEST(SocIntegrationTest, ReliefForwardsMoreThanEveryBaseline)
{
    // The paper's headline claim (Fig. 4) on one high-contention mix.
    double relief =
        runMixPolicy("GHL", PolicyKind::Relief).forwardFraction();
    for (PolicyKind policy :
         {PolicyKind::Fcfs, PolicyKind::GedfD, PolicyKind::GedfN,
          PolicyKind::Lax, PolicyKind::HetSched}) {
        double baseline =
            runMixPolicy("GHL", policy).forwardFraction();
        EXPECT_GT(relief, baseline) << policyName(policy);
    }
}

TEST(SocIntegrationTest, ReliefReducesDramTraffic)
{
    // Observation 2: lower main-memory traffic than the baselines.
    std::uint64_t relief = runMixPolicy("GHL", PolicyKind::Relief)
                               .dramBytes;
    std::uint64_t lax = runMixPolicy("GHL", PolicyKind::Lax).dramBytes;
    std::uint64_t hetsched =
        runMixPolicy("GHL", PolicyKind::HetSched).dramBytes;
    EXPECT_LT(relief, lax);
    EXPECT_LT(relief, hetsched);
}

TEST(SocIntegrationTest, ReliefReducesMemoryEnergy)
{
    // Observation 3, same mechanism as traffic.
    double relief = runMixPolicy("CGL", PolicyKind::Relief).dramEnergyPJ;
    double lax = runMixPolicy("CGL", PolicyKind::Lax).dramEnergyPJ;
    EXPECT_LT(relief, lax);
}

TEST(SocIntegrationTest, TrafficBreakdownIsConsistent)
{
    MetricsReport report = runMixPolicy("CDH", PolicyKind::Relief);
    // Fractions of the all-DRAM baseline are sane.
    EXPECT_GT(report.dramTrafficFraction(), 0.0);
    EXPECT_LE(report.dramTrafficFraction(), 1.0001);
    EXPECT_GE(report.spmTrafficFraction(), 0.0);
    EXPECT_LT(report.spmTrafficFraction(), 1.0);
}

TEST(SocIntegrationTest, ForwardingOffMatchesBaselineBytes)
{
    ExperimentConfig config;
    config.soc.policy = PolicyKind::Fcfs;
    config.soc.manager.forwardingEnabled = false;
    config.mix = "CH";
    MetricsReport report = runExperiment(config);
    EXPECT_EQ(report.dramBytes, report.run.baselineBytes);
    EXPECT_EQ(report.spmForwardBytes, 0u);
}

TEST(SocIntegrationTest, ContinuousContentionIteratesWithinWindow)
{
    MetricsReport report =
        runMixPolicy("CGH", PolicyKind::Relief, /* continuous */ true);
    for (const AppOutcome &app : report.apps) {
        EXPECT_GT(app.iterations, 0) << app.name;
    }
    // GRU iterates many times within 50 ms (runtime ~5 ms).
    for (const AppOutcome &app : report.apps) {
        if (app.name == "gru") {
            EXPECT_GE(app.iterations, 5);
        }
    }
    EXPECT_LE(report.execTime, fromMs(50.0) + fromMs(1.0));
}

TEST(SocIntegrationTest, CrossbarIsNoWorseThanBus)
{
    // Observation 10: these workloads are not interconnect-bound, so
    // the crossbar changes little — but it must never be slower.
    ExperimentConfig bus;
    bus.mix = "CGH";
    bus.soc.fabric = FabricKind::Bus;
    ExperimentConfig xbar = bus;
    xbar.soc.fabric = FabricKind::Crossbar;
    Tick bus_time = runExperiment(bus).execTime;
    Tick xbar_time = runExperiment(xbar).execTime;
    EXPECT_LE(xbar_time, bus_time + bus_time / 10);
}

TEST(SocIntegrationTest, FabricOccupancyIsReported)
{
    MetricsReport report = runMixPolicy("CGH", PolicyKind::Relief);
    EXPECT_GT(report.fabricOccupancy, 0.0);
    EXPECT_LT(report.fabricOccupancy, 1.0);
}

TEST(SocIntegrationTest, AcceleratorOccupancyIsPositive)
{
    MetricsReport report = runMixPolicy("CDG", PolicyKind::Relief);
    EXPECT_GT(report.accOccupancy, 0.0);
    // Seven accelerators: occupancy sum is bounded by 7.
    EXPECT_LT(report.accOccupancy, 7.0);
}

TEST(SocIntegrationTest, DeterministicAcrossRuns)
{
    MetricsReport a = runMixPolicy("CDL", PolicyKind::Relief);
    MetricsReport b = runMixPolicy("CDL", PolicyKind::Relief);
    EXPECT_EQ(a.run.forwards, b.run.forwards);
    EXPECT_EQ(a.run.colocations, b.run.colocations);
    EXPECT_EQ(a.dramBytes, b.dramBytes);
    EXPECT_EQ(a.execTime, b.execTime);
}

TEST(SocIntegrationTest, RnnMixesAreColocationHeavy)
{
    // Observation after Fig. 4: all GRU/LSTM forwards are colocations
    // (single accelerator type).
    MetricsReport report = runMixPolicy("G", PolicyKind::Relief);
    EXPECT_GT(report.run.colocations, 0u);
    EXPECT_EQ(report.run.forwards, 0u);
}

TEST(SocIntegrationTest, VisionAppsUseSpmToSpmForwards)
{
    MetricsReport report = runMixPolicy("C", PolicyKind::Relief);
    EXPECT_GT(report.run.forwards, 0u);
}

TEST(SocIntegrationTest, PredictorChoiceBarelyMatters)
{
    // Observation 8: bandwidth/data-movement predictors have little
    // performance impact.
    ExperimentConfig base;
    base.mix = "CGH";
    base.soc.policy = PolicyKind::Relief;
    MetricsReport max_pred = runExperiment(base);

    ExperimentConfig smart = base;
    smart.soc.bwPredictor = BwPredictorKind::Average;
    smart.soc.dmPredictor = DmPredictorKind::Graph;
    MetricsReport smart_pred = runExperiment(smart);

    double max_met = max_pred.run.nodeDeadlineFraction();
    double smart_met = smart_pred.run.nodeDeadlineFraction();
    EXPECT_NEAR(max_met, smart_met, 0.15);
    std::uint64_t f1 = max_pred.run.forwards + max_pred.run.colocations;
    std::uint64_t f2 =
        smart_pred.run.forwards + smart_pred.run.colocations;
    EXPECT_NEAR(double(f1), double(f2), 0.15 * double(f1));
}

} // namespace
} // namespace relief
