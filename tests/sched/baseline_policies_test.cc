/** @file Unit tests for the baseline policies (Section II-C). */

#include <gtest/gtest.h>

#include "sched/baseline_policies.hh"
#include "sched/policy.hh"

namespace relief
{
namespace
{

class PolicyTest : public ::testing::Test
{
  protected:
    Node *
    makeNode(Tick deadline, Tick runtime,
             AccType type = AccType::ElemMatrix)
    {
        TaskParams p;
        p.type = type;
        Node *n = dag.addNode(p, "n" + std::to_string(dag.numNodes()));
        n->deadline = deadline;
        n->predictedRuntime = runtime;
        n->laxityKey = STick(deadline) - STick(runtime);
        return n;
    }

    void
    enqueue(Policy &policy, std::vector<Node *> nodes, Tick now = 0)
    {
        SchedContext ctx;
        ctx.now = now;
        policy.onNodesReady(nodes, ctx, queues);
    }

    ReadyQueue &
    emQueue()
    {
        return queues[accIndex(AccType::ElemMatrix)];
    }

    Dag dag{"t", 'T'};
    ReadyQueues queues;
};

TEST_F(PolicyTest, FactoryProducesAllKinds)
{
    for (PolicyKind kind : allPolicies) {
        auto policy = makePolicy(kind);
        ASSERT_NE(policy, nullptr);
        EXPECT_EQ(policy->kind(), kind);
        EXPECT_EQ(policy->name(), policyName(kind));
    }
}

TEST_F(PolicyTest, DeadlineSchemesPerPolicy)
{
    EXPECT_EQ(makePolicy(PolicyKind::GedfD)->deadlineScheme(),
              DeadlineScheme::DagDeadline);
    EXPECT_EQ(makePolicy(PolicyKind::GedfN)->deadlineScheme(),
              DeadlineScheme::CriticalPath);
    EXPECT_EQ(makePolicy(PolicyKind::LL)->deadlineScheme(),
              DeadlineScheme::CriticalPath);
    EXPECT_EQ(makePolicy(PolicyKind::HetSched)->deadlineScheme(),
              DeadlineScheme::Sdr);
    EXPECT_EQ(makePolicy(PolicyKind::Relief)->deadlineScheme(),
              DeadlineScheme::CriticalPath);
}

TEST_F(PolicyTest, FcfsKeepsArrivalOrder)
{
    auto policy = makePolicy(PolicyKind::Fcfs);
    Node *late = makeNode(100, 10);
    Node *early = makeNode(10, 10);
    enqueue(*policy, {late});
    enqueue(*policy, {early});
    EXPECT_EQ(policy->selectNext(AccType::ElemMatrix, queues, 0), late);
    EXPECT_EQ(policy->selectNext(AccType::ElemMatrix, queues, 0), early);
}

TEST_F(PolicyTest, GedfSortsByDeadline)
{
    auto policy = makePolicy(PolicyKind::GedfN);
    Node *late = makeNode(300, 10);
    Node *early = makeNode(100, 10);
    Node *mid = makeNode(200, 10);
    enqueue(*policy, {late});
    enqueue(*policy, {early, mid});
    EXPECT_EQ(emQueue().at(0), early);
    EXPECT_EQ(emQueue().at(1), mid);
    EXPECT_EQ(emQueue().at(2), late);
}

TEST_F(PolicyTest, LlSortsByLaxityNotDeadline)
{
    auto policy = makePolicy(PolicyKind::LL);
    // a: deadline 300, runtime 290 -> laxity 10.
    // b: deadline 100, runtime 10  -> laxity 90.
    Node *a = makeNode(300, 290);
    Node *b = makeNode(100, 10);
    enqueue(*policy, {a, b});
    EXPECT_EQ(emQueue().at(0), a); // lower laxity first
    EXPECT_EQ(emQueue().at(1), b);
}

TEST_F(PolicyTest, LlDispatchIgnoresNegativeLaxity)
{
    auto policy = makePolicy(PolicyKind::LL);
    Node *negative = makeNode(10, 50); // laxity -40
    Node *positive = makeNode(100, 10);
    enqueue(*policy, {negative, positive});
    // Vanilla LL pops the head even when its laxity is negative.
    EXPECT_EQ(policy->selectNext(AccType::ElemMatrix, queues, 0),
              negative);
}

TEST_F(PolicyTest, LaxDeprioritizesNegativeLaxity)
{
    auto policy = makePolicy(PolicyKind::Lax);
    Node *negative = makeNode(10, 50); // laxity -40
    Node *positive = makeNode(100, 10); // laxity 90
    enqueue(*policy, {negative, positive});
    EXPECT_EQ(emQueue().at(0), negative);
    // LAX bypasses the negative-laxity head in favor of 'positive'.
    EXPECT_EQ(policy->selectNext(AccType::ElemMatrix, queues, 0),
              positive);
    // Only late nodes left: head runs.
    EXPECT_EQ(policy->selectNext(AccType::ElemMatrix, queues, 0),
              negative);
}

TEST_F(PolicyTest, LaxLaxityIsEvaluatedAtDispatchTime)
{
    auto policy = makePolicy(PolicyKind::Lax);
    Node *a = makeNode(100, 50); // laxity 50 at t=0, -10 at t=60
    Node *b = makeNode(200, 50); // laxity 150 at t=0, 90 at t=60
    enqueue(*policy, {a, b});
    EXPECT_EQ(policy->selectNext(AccType::ElemMatrix, queues, 60), b);
}

TEST_F(PolicyTest, PoliciesRouteNodesToTheirTypeQueue)
{
    auto policy = makePolicy(PolicyKind::Fcfs);
    Node *conv = makeNode(100, 10, AccType::Convolution);
    Node *em = makeNode(100, 10, AccType::ElemMatrix);
    enqueue(*policy, {conv, em});
    EXPECT_EQ(queues[accIndex(AccType::Convolution)].size(), 1u);
    EXPECT_EQ(queues[accIndex(AccType::ElemMatrix)].size(), 1u);
    EXPECT_EQ(policy->selectNext(AccType::Convolution, queues, 0), conv);
}

TEST_F(PolicyTest, SelectNextOnEmptyQueueIsNull)
{
    auto policy = makePolicy(PolicyKind::LL);
    EXPECT_EQ(policy->selectNext(AccType::ISP, queues, 0), nullptr);
}

TEST_F(PolicyTest, PushCostsOrderedByPolicyComplexity)
{
    // Fig. 12: FCFS is cheapest, laxity policies cost more, RELIEF the
    // most (feasibility scan).
    auto fcfs = makePolicy(PolicyKind::Fcfs);
    auto gedf = makePolicy(PolicyKind::GedfN);
    auto lax = makePolicy(PolicyKind::Lax);
    auto relief = makePolicy(PolicyKind::Relief);
    for (std::size_t len : {0u, 8u, 32u}) {
        EXPECT_LT(fcfs->pushCost(len), gedf->pushCost(len));
        EXPECT_LE(gedf->pushCost(len), lax->pushCost(len));
        EXPECT_LT(lax->pushCost(len), relief->pushCost(len));
    }
    // Costs grow with queue length for scanning policies.
    EXPECT_GT(relief->pushCost(32), relief->pushCost(0));
    EXPECT_EQ(fcfs->pushCost(32), fcfs->pushCost(0));
}

TEST_F(PolicyTest, HetSchedUsesLaxityOrder)
{
    auto policy = makePolicy(PolicyKind::HetSched);
    Node *tight = makeNode(100, 90);
    Node *slack = makeNode(100, 10);
    enqueue(*policy, {slack, tight});
    EXPECT_EQ(emQueue().at(0), tight);
}

} // namespace
} // namespace relief
