/** @file Unit tests for the RELIEF promotion decision log. */

#include <gtest/gtest.h>

#include <sstream>

#include "sched/relief.hh"
#include "sim/logging.hh"
#include "support/mini_json.hh"

namespace relief
{
namespace
{

/** Same scaffolding as ReliefTest: hand-built nodes and queues. */
class DecisionLogTest : public ::testing::Test
{
  protected:
    Node *
    makeNode(Tick deadline, Tick runtime,
             AccType type = AccType::ElemMatrix)
    {
        TaskParams p;
        p.type = type;
        Node *n = dag.addNode(p, "n" + std::to_string(dag.numNodes()));
        n->deadline = deadline;
        n->predictedRuntime = runtime;
        n->laxityKey = STick(deadline) - STick(runtime);
        return n;
    }

    SchedContext
    ctxWithIdle(int em_idle, Tick now = 0)
    {
        SchedContext ctx;
        ctx.now = now;
        ctx.idleCount[accIndex(AccType::ElemMatrix)] = em_idle;
        return ctx;
    }

    ReadyQueue &
    emQueue()
    {
        return queues[accIndex(AccType::ElemMatrix)];
    }

    Dag dag{"t", 'T'};
    ReadyQueues queues;
    ReliefPolicy policy;
};

TEST_F(DecisionLogTest, GrantedPromotionRecorded)
{
    Node *producer = makeNode(50, 10);
    Node *child = makeNode(100, 10); // laxity 90
    dag.addEdge(producer, child);
    policy.onNodesReady({child}, ctxWithIdle(1), queues);

    const DecisionLog &log = policy.decisionLog();
    ASSERT_EQ(log.size(), 1u);
    const PromotionDecision &d = log.at(0);
    EXPECT_TRUE(d.granted);
    EXPECT_EQ(d.reason, PromotionReason::Feasible);
    EXPECT_EQ(d.node, child->id);
    EXPECT_EQ(d.label, "n1");
    EXPECT_EQ(d.type, AccType::ElemMatrix);
    EXPECT_EQ(d.laxity, STick(90));
    EXPECT_EQ(d.queueDepth, 0u);
    EXPECT_TRUE(d.victim.empty()); // empty queue: nobody bypassed
    EXPECT_EQ(log.numGranted(), 1u);
    EXPECT_EQ(log.numDenied(), 0u);
}

TEST_F(DecisionLogTest, GrantedDecisionNamesBypassedNode)
{
    Node *waiting = makeNode(110, 10); // "n0", laxity 100
    emQueue().pushBack(waiting);
    Node *producer = makeNode(50, 10);
    Node *child = makeNode(600, 50); // laxity 550, runtime 50 < 100
    dag.addEdge(producer, child);
    policy.onNodesReady({child}, ctxWithIdle(1), queues);

    const PromotionDecision &d = policy.decisionLog().at(0);
    EXPECT_TRUE(d.granted);
    EXPECT_EQ(d.victim, "n0");
    EXPECT_EQ(d.victimSlack, STick(50)); // 100 laxity - 50 runtime
    // The bypassed node really was charged.
    EXPECT_EQ(waiting->laxityKey, STick(50));
}

TEST_F(DecisionLogTest, DeniedPromotionRecordsBlockingVictim)
{
    Node *a = makeNode(50, 10);  // "n0", laxity 40
    Node *b = makeNode(500, 10); // "n1", laxity 490
    emQueue().pushBack(a);
    emQueue().pushBack(b);
    Node *producer = makeNode(10, 5);
    Node *child = makeNode(300, 200); // laxity 100, runtime 200 > 40
    dag.addEdge(producer, child);
    policy.onNodesReady({child}, ctxWithIdle(1), queues);

    const DecisionLog &log = policy.decisionLog();
    ASSERT_EQ(log.size(), 1u);
    const PromotionDecision &d = log.at(0);
    EXPECT_FALSE(d.granted);
    EXPECT_EQ(d.reason, PromotionReason::VictimWouldMiss);
    EXPECT_EQ(d.victim, "n0");
    EXPECT_EQ(d.victimSlack, STick(-160)); // 40 laxity - 200 runtime
    EXPECT_EQ(d.laxity, STick(100));
    EXPECT_EQ(d.queueDepth, 2u);
    EXPECT_EQ(log.numDenied(), 1u);
}

TEST_F(DecisionLogTest, NoIdleInstanceDenialHasNoVictim)
{
    Node *producer = makeNode(50, 10);
    Node *child = makeNode(100, 10);
    dag.addEdge(producer, child);
    policy.onNodesReady({child}, ctxWithIdle(0), queues);

    const PromotionDecision &d = policy.decisionLog().at(0);
    EXPECT_FALSE(d.granted);
    EXPECT_EQ(d.reason, PromotionReason::NoIdleInstance);
    EXPECT_TRUE(d.victim.empty());
}

TEST_F(DecisionLogTest, DisabledFeasibilityCheckRecordsGreedyGrant)
{
    ReliefOptions options;
    options.feasibilityCheck = false;
    ReliefPolicy greedy(options);

    Node *a = makeNode(50, 10); // would veto under the check
    emQueue().pushBack(a);
    Node *producer = makeNode(10, 5);
    Node *child = makeNode(300, 200);
    dag.addEdge(producer, child);
    greedy.onNodesReady({child}, ctxWithIdle(1), queues);

    const PromotionDecision &d = greedy.decisionLog().at(0);
    EXPECT_TRUE(d.granted);
    EXPECT_EQ(d.reason, PromotionReason::CheckDisabled);
    EXPECT_TRUE(child->isFwd);
}

TEST_F(DecisionLogTest, RootNodesProduceNoDecisions)
{
    Node *root = makeNode(100, 10);
    policy.onNodesReady({root}, ctxWithIdle(5), queues);
    EXPECT_EQ(policy.decisionLog().size(), 0u);
}

TEST_F(DecisionLogTest, SummaryMentionsVictimOnDenial)
{
    Node *a = makeNode(50, 10);
    emQueue().pushBack(a);
    Node *producer = makeNode(10, 5);
    Node *child = makeNode(300, 200);
    dag.addEdge(producer, child);
    policy.onNodesReady({child}, ctxWithIdle(1), queues);

    std::string line = policy.decisionLog().at(0).summary();
    EXPECT_NE(line.find("deny "), std::string::npos);
    EXPECT_NE(line.find("reason=victim-would-miss"), std::string::npos);
    EXPECT_NE(line.find("victim=n0"), std::string::npos);
    EXPECT_NE(line.find("victim_slack=-160"), std::string::npos);
}

TEST_F(DecisionLogTest, PromotionReasonHelpers)
{
    EXPECT_TRUE(promotionGranted(PromotionReason::Feasible));
    EXPECT_TRUE(promotionGranted(PromotionReason::CheckDisabled));
    EXPECT_FALSE(promotionGranted(PromotionReason::NoIdleInstance));
    EXPECT_FALSE(promotionGranted(PromotionReason::VictimWouldMiss));
    EXPECT_STREQ(promotionReasonName(PromotionReason::Feasible),
                 "feasible");
    EXPECT_STREQ(promotionReasonName(PromotionReason::VictimWouldMiss),
                 "victim-would-miss");
}

TEST_F(DecisionLogTest, JsonExportIsValidAndComplete)
{
    // One granted decision (empty queue) and one denied (victim "n0"
    // still waiting after the charge-free denial).
    Node *producer = makeNode(10, 5);
    Node *fast = makeNode(600, 10);
    dag.addEdge(producer, fast);
    policy.onNodesReady({fast}, ctxWithIdle(1), queues);

    Node *a = makeNode(50, 10); // "n2", laxity 40
    emQueue().pushBack(a);
    Node *slow = makeNode(300, 200);
    dag.addEdge(producer, slow);
    policy.onNodesReady({slow}, ctxWithIdle(1), queues);

    ASSERT_EQ(policy.decisionLog().size(), 2u);
    std::ostringstream os;
    policy.decisionLog().writeJson(os);
    std::string json = os.str();
    EXPECT_TRUE(test::miniJsonValid(json)) << json;
    EXPECT_NE(json.find("\"granted\": true"), std::string::npos);
    EXPECT_NE(json.find("\"granted\": false"), std::string::npos);
    EXPECT_NE(json.find("\"reason\": \"victim-would-miss\""),
              std::string::npos);
    EXPECT_NE(json.find("\"victim\": \"n2\""), std::string::npos);
}

TEST_F(DecisionLogTest, EmptyLogExportsEmptyJsonArray)
{
    std::ostringstream os;
    policy.decisionLog().writeJson(os);
    EXPECT_TRUE(test::miniJsonValid(os.str())) << os.str();
}

TEST_F(DecisionLogTest, ClearEmptiesTheLog)
{
    Node *producer = makeNode(50, 10);
    Node *child = makeNode(100, 10);
    dag.addEdge(producer, child);
    policy.onNodesReady({child}, ctxWithIdle(1), queues);
    ASSERT_EQ(policy.decisionLog().size(), 1u);

    policy.decisionLog().clear();
    EXPECT_EQ(policy.decisionLog().size(), 0u);
    EXPECT_EQ(policy.decisionLog().numGranted(), 0u);
}

TEST_F(DecisionLogTest, OutOfRangeAccessPanics)
{
    EXPECT_THROW(policy.decisionLog().at(0), PanicError);
}

} // namespace
} // namespace relief
