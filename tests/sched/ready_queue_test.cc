/** @file Unit tests for the ready queue. */

#include <gtest/gtest.h>

#include "dag/dag.hh"
#include "sched/ready_queue.hh"
#include "sim/logging.hh"

namespace relief
{
namespace
{

class ReadyQueueTest : public ::testing::Test
{
  protected:
    Node *
    makeNode(STick laxity, Tick deadline = 0, bool is_fwd = false)
    {
        TaskParams p;
        p.type = AccType::ElemMatrix;
        Node *n = dag.addNode(p, "n" + std::to_string(dag.numNodes()));
        n->laxityKey = laxity;
        n->deadline = deadline;
        n->isFwd = is_fwd;
        return n;
    }

    Dag dag{"t", 'T'};
    ReadyQueue q;
};

TEST_F(ReadyQueueTest, StartsEmpty)
{
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
}

TEST_F(ReadyQueueTest, PushPopFifo)
{
    Node *a = makeNode(1);
    Node *b = makeNode(2);
    q.pushBack(a);
    q.pushBack(b);
    EXPECT_EQ(q.popFront(), a);
    EXPECT_EQ(q.popFront(), b);
    EXPECT_TRUE(q.empty());
}

TEST_F(ReadyQueueTest, PeakSizeTracksHighWaterMark)
{
    EXPECT_EQ(q.peakSize(), 0u);
    q.pushBack(makeNode(1));
    q.pushBack(makeNode(2));
    q.pushBack(makeNode(3));
    EXPECT_EQ(q.peakSize(), 3u);
    q.popFront();
    q.popFront();
    // Draining never lowers the high-water mark.
    EXPECT_EQ(q.peakSize(), 3u);
    q.pushBack(makeNode(4));
    EXPECT_EQ(q.peakSize(), 3u);
}

TEST_F(ReadyQueueTest, PushFrontJumpsQueue)
{
    Node *a = makeNode(1);
    Node *b = makeNode(2);
    q.pushBack(a);
    q.pushFront(b);
    EXPECT_EQ(q.at(0), b);
    EXPECT_EQ(q.at(1), a);
}

TEST_F(ReadyQueueTest, PopAtRemovesMiddle)
{
    Node *a = makeNode(1);
    Node *b = makeNode(2);
    Node *c = makeNode(3);
    q.pushBack(a);
    q.pushBack(b);
    q.pushBack(c);
    EXPECT_EQ(q.popAt(1), b);
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.at(1), c);
}

TEST_F(ReadyQueueTest, LaxityPosIsAscendingWithFifoTies)
{
    Node *a = makeNode(10);
    Node *b = makeNode(30);
    q.insertAt(q.findLaxityPos(a), a);
    q.insertAt(q.findLaxityPos(b), b);
    Node *mid = makeNode(20);
    EXPECT_EQ(q.findLaxityPos(mid), 1u);
    Node *tie = makeNode(10); // equal laxity goes after (FIFO)
    EXPECT_EQ(q.findLaxityPos(tie), 1u);
    Node *front = makeNode(-5);
    EXPECT_EQ(q.findLaxityPos(front), 0u);
}

TEST_F(ReadyQueueTest, LaxityPosSkipsPromotedPrefix)
{
    Node *fwd = makeNode(100, 0, true); // promoted, high laxity
    q.pushFront(fwd);
    Node *urgent = makeNode(-50);
    // Even with lower laxity, insertion lands after the fwd prefix.
    EXPECT_EQ(q.findLaxityPos(urgent), 1u);
}

TEST_F(ReadyQueueTest, DeadlinePosAscendingWithFifoTies)
{
    Node *a = makeNode(0, 100);
    Node *b = makeNode(0, 300);
    q.insertAt(q.findDeadlinePos(a), a);
    q.insertAt(q.findDeadlinePos(b), b);
    Node *mid = makeNode(0, 200);
    EXPECT_EQ(q.findDeadlinePos(mid), 1u);
    Node *tie = makeNode(0, 100);
    EXPECT_EQ(q.findDeadlinePos(tie), 1u);
}

TEST_F(ReadyQueueTest, OutOfRangeOpsPanic)
{
    EXPECT_THROW(q.popAt(0), PanicError);
    Node *a = makeNode(1);
    EXPECT_THROW(q.insertAt(5, a), PanicError);
    EXPECT_THROW(q.insertAt(0, nullptr), PanicError);
}

} // namespace
} // namespace relief
