/** @file Tests for the exhaustive ideal-schedule search. */

#include <gtest/gtest.h>

#include "sched/oracle.hh"
#include "sim/logging.hh"

namespace relief
{
namespace
{

constexpr std::array<int, std::size_t(numAccTypes)> oneOfEach = {
    1, 1, 1, 1, 1, 1, 1};

TaskParams
unitTask(AccType type)
{
    TaskParams p;
    p.type = type;
    p.numInputs = 1;
    p.elems = 1;
    return p;
}

DagPtr
chain(const std::string &name, AccType type, int length, Tick deadline,
      std::vector<double> runtimes_us = {})
{
    auto dag = std::make_shared<Dag>(name, name[0]);
    Node *prev = nullptr;
    for (int i = 0; i < length; ++i) {
        Node *n = dag->addNode(unitTask(type),
                               name + "." + std::to_string(i));
        n->fixedRuntime =
            runtimes_us.empty()
                ? fromUs(100.0)
                : fromUs(runtimes_us[std::size_t(i)] * 100.0);
        if (prev)
            dag->addEdge(prev, n);
        prev = n;
    }
    dag->setRelativeDeadline(deadline);
    dag->finalize();
    return dag;
}

TEST(OracleTest, SingleChainIsAllColocations)
{
    DagPtr dag = chain("a", AccType::ElemMatrix, 4, fromMs(10.0));
    OracleResult r = findIdealSchedule({dag.get()}, oneOfEach);
    EXPECT_TRUE(r.exhaustive);
    EXPECT_EQ(r.colocations, 3);
    EXPECT_EQ(r.forwards, 0);
    EXPECT_EQ(r.dagDeadlinesMet, 1);
    EXPECT_EQ(r.makespan, fromUs(400.0));
    EXPECT_EQ(r.schedule.size(), 4u);
}

TEST(OracleTest, CrossTypeChainIsAllForwards)
{
    auto dag = std::make_shared<Dag>("x", 'X');
    Node *a = dag->addNode(unitTask(AccType::ElemMatrix), "a");
    Node *b = dag->addNode(unitTask(AccType::Convolution), "b");
    Node *c = dag->addNode(unitTask(AccType::Grayscale), "c");
    for (Node *n : {a, b, c})
        n->fixedRuntime = fromUs(100.0);
    dag->addEdge(a, b);
    dag->addEdge(b, c);
    dag->setRelativeDeadline(fromMs(10.0));
    dag->finalize();
    OracleResult r = findIdealSchedule({dag.get()}, oneOfEach);
    EXPECT_EQ(r.forwards, 2);
    EXPECT_EQ(r.colocations, 0);
}

TEST(OracleTest, TwoChainsOnOneAcceleratorRealizeEverything)
{
    // The ideal schedule runs each chain contiguously: 6 colocations
    // and both deadlines, exactly what RELIEF achieves in the
    // integration suite — and what laxity-tie baselines forfeit.
    DagPtr a = chain("a", AccType::ElemMatrix, 4, fromMs(10.0));
    DagPtr b = chain("b", AccType::ElemMatrix, 4, fromMs(10.0));
    OracleResult r = findIdealSchedule({a.get(), b.get()}, oneOfEach);
    EXPECT_TRUE(r.exhaustive);
    EXPECT_EQ(r.totalRealized(), 6);
    EXPECT_EQ(r.dagDeadlinesMet, 2);
    EXPECT_EQ(r.makespan, fromUs(800.0));
}

TEST(OracleTest, DeadlinesDominateForwards)
{
    // A tight-deadline chain plus a loose one: the oracle must not
    // sacrifice the tight DAG's deadline for extra colocations.
    DagPtr tight = chain("t", AccType::ElemMatrix, 2, fromUs(250.0));
    DagPtr loose = chain("l", AccType::ElemMatrix, 2, fromMs(10.0));
    OracleResult r =
        findIdealSchedule({tight.get(), loose.get()}, oneOfEach);
    EXPECT_EQ(r.dagDeadlinesMet, 2);
    // Running tight first back-to-back then loose realizes all edges.
    EXPECT_EQ(r.totalRealized(), 2);
}

TEST(OracleTest, MultipleInstancesEnableParallelism)
{
    DagPtr a = chain("a", AccType::ElemMatrix, 2, fromMs(10.0));
    DagPtr b = chain("b", AccType::ElemMatrix, 2, fromMs(10.0));
    std::array<int, std::size_t(numAccTypes)> two = oneOfEach;
    two[accIndex(AccType::ElemMatrix)] = 2;
    OracleResult r = findIdealSchedule({a.get(), b.get()}, two);
    EXPECT_EQ(r.makespan, fromUs(200.0)); // chains run in parallel
    EXPECT_EQ(r.totalRealized(), 2);
}

TEST(OracleTest, IdlingIsWorthIt)
{
    // Fig. 2's key insight: an accelerator may wait for a forwarding
    // consumer. DAG x: EM(1) -> C(1) -> EM(1); an independent EM task
    // of length 3 is also ready at t=0. Greedy work-conserving order
    // starts the long task at t=1 on EM, delaying x's final node past
    // its deadline; the ideal schedule holds EM idle at t=1.
    auto x = std::make_shared<Dag>("x", 'X');
    Node *a = x->addNode(unitTask(AccType::ElemMatrix), "a");
    Node *b = x->addNode(unitTask(AccType::Convolution), "b");
    Node *c = x->addNode(unitTask(AccType::ElemMatrix), "c");
    a->fixedRuntime = fromUs(100.0);
    b->fixedRuntime = fromUs(100.0);
    c->fixedRuntime = fromUs(100.0);
    x->addEdge(a, b);
    x->addEdge(b, c);
    x->setRelativeDeadline(fromUs(320.0));
    x->finalize();

    auto y = std::make_shared<Dag>("y", 'Y');
    Node *long_task = y->addNode(unitTask(AccType::ElemMatrix), "long");
    long_task->fixedRuntime = fromUs(300.0);
    y->setRelativeDeadline(fromMs(10.0));
    y->finalize();

    OracleResult r = findIdealSchedule({x.get(), y.get()}, oneOfEach);
    EXPECT_EQ(r.dagDeadlinesMet, 2);
    // c must start exactly at b's finish (t=200us): x completes at 300.
    for (const OracleEntry &entry : r.schedule) {
        if (entry.node->label == "c") {
            EXPECT_EQ(entry.start, fromUs(200.0));
        }
    }
}

TEST(OracleTest, StateCapReportsNonExhaustive)
{
    DagPtr a = chain("a", AccType::ElemMatrix, 4, fromMs(10.0));
    DagPtr b = chain("b", AccType::ElemMatrix, 4, fromMs(10.0));
    OracleLimits limits;
    limits.maxStates = 10;
    OracleResult r =
        findIdealSchedule({a.get(), b.get()}, oneOfEach, limits);
    EXPECT_FALSE(r.exhaustive);
    EXPECT_LE(r.statesExplored, 10u);
}

TEST(OracleTest, RejectsOversizedProblems)
{
    DagPtr a = chain("a", AccType::ElemMatrix, 13, fromMs(50.0));
    DagPtr b = chain("b", AccType::ElemMatrix, 13, fromMs(50.0));
    EXPECT_THROW(findIdealSchedule({a.get(), b.get()}, oneOfEach),
                 PanicError);
}

TEST(OracleTest, ForwardLivenessWindowIsDoubleBuffered)
{
    // p -> c across types, but two unrelated tasks start on p's
    // accelerator before c can run: p's data is overwritten and the
    // edge cannot be realized. With only one intervening task it can.
    auto dag = std::make_shared<Dag>("w", 'W');
    Node *p = dag->addNode(unitTask(AccType::ElemMatrix), "p");
    Node *gate = dag->addNode(unitTask(AccType::Convolution), "gate");
    Node *c = dag->addNode(unitTask(AccType::Grayscale), "c");
    p->fixedRuntime = fromUs(100.0);
    gate->fixedRuntime = fromUs(500.0);
    c->fixedRuntime = fromUs(100.0);
    dag->addEdge(p, gate);
    dag->addEdge(gate, c);
    dag->addEdge(p, c);
    dag->setRelativeDeadline(fromMs(10.0));
    dag->finalize();

    // Competing EM work that the oracle would like to run during the
    // 500 us gate: two independent tasks.
    auto filler = std::make_shared<Dag>("f", 'F');
    Node *f1 = filler->addNode(unitTask(AccType::ElemMatrix), "f1");
    Node *f2 = filler->addNode(unitTask(AccType::ElemMatrix), "f2");
    f1->fixedRuntime = fromUs(100.0);
    f2->fixedRuntime = fromUs(100.0);
    filler->setRelativeDeadline(fromMs(10.0));
    filler->finalize();

    OracleResult r =
        findIdealSchedule({dag.get(), filler.get()}, oneOfEach);
    ASSERT_TRUE(r.exhaustive);
    // All edges: p->gate, gate->c, p->c. The oracle can realize all
    // three by ordering the fillers around p's liveness window.
    EXPECT_GE(r.totalRealized(), 3);
}

} // namespace
} // namespace relief
