/** @file Unit tests for RELIEF's Algorithms 1 and 2. */

#include <gtest/gtest.h>

#include "sched/relief.hh"

namespace relief
{
namespace
{

class ReliefTest : public ::testing::Test
{
  protected:
    /** A ready node with the given timing (root until linked). */
    Node *
    makeNode(Tick deadline, Tick runtime, bool /* root */ = true,
             AccType type = AccType::ElemMatrix)
    {
        TaskParams p;
        p.type = type;
        Node *n = dag.addNode(p, "n" + std::to_string(dag.numNodes()));
        n->deadline = deadline;
        n->predictedRuntime = runtime;
        n->laxityKey = STick(deadline) - STick(runtime);
        return n;
    }

    /** Turn @p second into a forwarding candidate of @p first. */
    void
    makeChild(Node *first, Node *second)
    {
        dag.addEdge(first, second);
    }

    SchedContext
    ctxWithIdle(int em_idle, Tick now = 0)
    {
        SchedContext ctx;
        ctx.now = now;
        ctx.idleCount[accIndex(AccType::ElemMatrix)] = em_idle;
        return ctx;
    }

    ReadyQueue &
    emQueue()
    {
        return queues[accIndex(AccType::ElemMatrix)];
    }

    Dag dag{"t", 'T'};
    ReadyQueues queues;
    ReliefPolicy policy;
};

TEST_F(ReliefTest, RootNodesAreNeverPromoted)
{
    Node *root = makeNode(100, 10, true);
    policy.onNodesReady({root}, ctxWithIdle(5), queues);
    EXPECT_FALSE(root->isFwd);
    EXPECT_EQ(policy.numPromotions(), 0u);
}

TEST_F(ReliefTest, ForwardingChildPromotedWhenQueueEmpty)
{
    Node *producer = makeNode(50, 10, true);
    Node *child = makeNode(100, 10, true);
    makeChild(producer, child);
    policy.onNodesReady({child}, ctxWithIdle(1), queues);
    EXPECT_TRUE(child->isFwd);
    EXPECT_EQ(emQueue().at(0), child);
    EXPECT_EQ(policy.numPromotions(), 1u);
}

TEST_F(ReliefTest, NoIdleAcceleratorNoPromotion)
{
    Node *producer = makeNode(50, 10, true);
    Node *child = makeNode(100, 10, true);
    makeChild(producer, child);
    policy.onNodesReady({child}, ctxWithIdle(0), queues);
    EXPECT_FALSE(child->isFwd);
    EXPECT_EQ(policy.numThrottled(), 1u);
}

TEST_F(ReliefTest, FeasibleWhenHeadLaxityExceedsCandidateRuntime)
{
    // Waiting node with laxity 100 can absorb a 50-runtime promotion.
    Node *waiting = makeNode(110, 10, true); // laxityKey 100
    emQueue().pushBack(waiting);
    Node *fnode = makeNode(500, 50, true);
    EXPECT_TRUE(ReliefPolicy::isFeasible(emQueue(), fnode, 1, 0));
    // The bypassed node was charged the candidate's runtime.
    EXPECT_EQ(waiting->laxityKey, STick(50));
}

TEST_F(ReliefTest, InfeasibleWhenHeadWouldMissDeadline)
{
    Node *waiting = makeNode(40, 10, true); // laxityKey 30
    emQueue().pushBack(waiting);
    Node *fnode = makeNode(500, 50, true); // runtime 50 > laxity 30
    EXPECT_FALSE(ReliefPolicy::isFeasible(emQueue(), fnode, 1, 0));
    // No charge on failure.
    EXPECT_EQ(waiting->laxityKey, STick(30));
}

TEST_F(ReliefTest, FeasibilityUsesCurrentLaxity)
{
    Node *waiting = makeNode(110, 10, true); // laxityKey 100
    emQueue().pushBack(waiting);
    Node *fnode = makeNode(500, 50, true);
    // At t=80 the waiting node's current laxity is 20 < 50.
    EXPECT_FALSE(ReliefPolicy::isFeasible(emQueue(), fnode, 1, 80));
}

TEST_F(ReliefTest, NegativeLaxityNodesAreBypassed)
{
    // A node that is already late cannot veto promotions.
    Node *late = makeNode(5, 50, true); // laxityKey -45
    emQueue().pushBack(late);
    Node *fnode = makeNode(500, 50, true);
    EXPECT_TRUE(ReliefPolicy::isFeasible(emQueue(), fnode, 1, 0));
}

TEST_F(ReliefTest, ExistingForwardingNodesDoNotVeto)
{
    Node *fwd = makeNode(60, 10, true); // would fail the laxity test
    fwd->isFwd = true;
    emQueue().pushFront(fwd);
    Node *ok = makeNode(200, 10, true); // laxity 190: passes
    emQueue().pushBack(ok);
    Node *fnode = makeNode(500, 50, true);
    EXPECT_TRUE(ReliefPolicy::isFeasible(emQueue(), fnode, 2, 0));
}

TEST_F(ReliefTest, ThrottledCandidateInsertsAtLaxityPosition)
{
    Node *a = makeNode(50, 10, true);  // laxity 40
    Node *b = makeNode(500, 10, true); // laxity 490
    emQueue().pushBack(a);
    emQueue().pushBack(b);

    Node *producer = makeNode(10, 5, true);
    Node *child = makeNode(300, 200, true); // laxity 100
    makeChild(producer, child);
    // Feasibility fails: a's laxity 40 < child's runtime 200.
    policy.onNodesReady({child}, ctxWithIdle(1), queues);
    EXPECT_FALSE(child->isFwd);
    EXPECT_EQ(emQueue().at(0), a);
    EXPECT_EQ(emQueue().at(1), child);
    EXPECT_EQ(emQueue().at(2), b);
}

TEST_F(ReliefTest, PromotionsLimitedByIdleCount)
{
    Node *producer = makeNode(10, 5, true);
    Node *c1 = makeNode(300, 10, true);
    Node *c2 = makeNode(400, 10, true);
    Node *c3 = makeNode(500, 10, true);
    makeChild(producer, c1);
    makeChild(producer, c2);
    makeChild(producer, c3);
    policy.onNodesReady({c1, c2, c3}, ctxWithIdle(2), queues);
    int promoted = int(c1->isFwd) + int(c2->isFwd) + int(c3->isFwd);
    EXPECT_EQ(promoted, 2);
    EXPECT_EQ(policy.numPromotions(), 2u);
    EXPECT_EQ(policy.numThrottled(), 1u);
}

TEST_F(ReliefTest, CandidatesProcessedInLaxityOrder)
{
    Node *producer = makeNode(10, 5, true);
    Node *slack = makeNode(900, 10, true); // laxity 890
    Node *tight = makeNode(100, 80, true); // laxity 20
    makeChild(producer, slack);
    makeChild(producer, tight);
    // Only one promotion slot: the tighter candidate gets it.
    policy.onNodesReady({slack, tight}, ctxWithIdle(1), queues);
    EXPECT_TRUE(tight->isFwd);
    EXPECT_FALSE(slack->isFwd);
}

TEST_F(ReliefTest, SelectNextPopsPromotedHeadFirst)
{
    Node *waiting = makeNode(1000, 10, true);
    emQueue().pushBack(waiting);
    Node *producer = makeNode(10, 5, true);
    Node *child = makeNode(600, 10, true);
    makeChild(producer, child);
    policy.onNodesReady({child}, ctxWithIdle(1), queues);
    EXPECT_EQ(policy.selectNext(AccType::ElemMatrix, queues, 0), child);
    EXPECT_EQ(policy.selectNext(AccType::ElemMatrix, queues, 0), waiting);
}

TEST_F(ReliefTest, ReliefLaxSkipsNegativeLaxityAtDispatch)
{
    ReliefPolicy lax_variant(true);
    EXPECT_EQ(lax_variant.kind(), PolicyKind::ReliefLax);
    Node *negative = makeNode(10, 100, true); // laxity -90
    Node *positive = makeNode(500, 10, true);
    emQueue().pushBack(negative);
    emQueue().pushBack(positive);
    EXPECT_EQ(lax_variant.selectNext(AccType::ElemMatrix, queues, 0),
              positive);
}

TEST_F(ReliefTest, ReliefLaxStillRunsPromotedHead)
{
    ReliefPolicy lax_variant(true);
    Node *negative = makeNode(10, 100, true);
    negative->isFwd = true; // promoted forwarding node at the head
    emQueue().pushFront(negative);
    Node *positive = makeNode(500, 10, true);
    emQueue().pushBack(positive);
    // Forwarding head bypasses the de-prioritization.
    EXPECT_EQ(lax_variant.selectNext(AccType::ElemMatrix, queues, 0),
              negative);
}

TEST_F(ReliefTest, LaxityChargeAppliesToBypassedPrefixOnly)
{
    Node *first = makeNode(210, 10, true);  // laxity 200
    Node *second = makeNode(310, 10, true); // laxity 300
    Node *third = makeNode(410, 10, true);  // laxity 400
    emQueue().pushBack(first);
    emQueue().pushBack(second);
    emQueue().pushBack(third);
    Node *fnode = makeNode(300, 50, true); // laxity 250: index 1
    std::size_t index = emQueue().findLaxityPos(fnode);
    EXPECT_EQ(index, 1u);
    EXPECT_TRUE(ReliefPolicy::isFeasible(emQueue(), fnode, index, 0));
    EXPECT_EQ(first->laxityKey, STick(150)); // charged
    EXPECT_EQ(second->laxityKey, STick(300)); // untouched
    EXPECT_EQ(third->laxityKey, STick(400));
}

} // namespace
} // namespace relief
