/** @file Unit tests for the accelerator model. */

#include <gtest/gtest.h>

#include "acc/accelerator.hh"
#include "interconnect/bus.hh"
#include "sim/logging.hh"

namespace relief
{
namespace
{

class AcceleratorTest : public ::testing::Test
{
  protected:
    AcceleratorTest()
        : bus(sim, "bus"), dram(sim, "dram"),
          dram_port(bus.registerPort("dram")),
          acc(sim, "conv0", AccType::Convolution, 0, bus, dram_port, dram,
              ScratchpadConfig{})
    {
    }

    Simulator sim;
    Bus bus;
    MainMemory dram;
    PortId dram_port;
    Accelerator acc;
};

TEST_F(AcceleratorTest, ExposesTypeAndInstance)
{
    EXPECT_EQ(acc.type(), AccType::Convolution);
    EXPECT_EQ(acc.instance(), 0);
    EXPECT_FALSE(acc.busy());
}

TEST_F(AcceleratorTest, AcquireComputeRelease)
{
    acc.acquire();
    EXPECT_TRUE(acc.busy());
    bool done = false;
    acc.startCompute(fromUs(10.0), [&] { done = true; });
    EXPECT_TRUE(acc.busy());
    sim.run();
    EXPECT_TRUE(done);
    EXPECT_FALSE(acc.busy());
    EXPECT_EQ(acc.tasksExecuted(), 1u);
}

TEST_F(AcceleratorTest, ComputeBusyTimeAccumulates)
{
    acc.acquire();
    acc.startCompute(fromUs(10.0), nullptr);
    sim.run();
    acc.acquire();
    acc.startCompute(fromUs(5.0), nullptr);
    sim.run();
    EXPECT_EQ(acc.computeBusyTime(), fromUs(15.0));
}

TEST_F(AcceleratorTest, DoubleAcquirePanics)
{
    acc.acquire();
    EXPECT_THROW(acc.acquire(), PanicError);
}

TEST_F(AcceleratorTest, ComputeWithoutAcquirePanics)
{
    EXPECT_THROW(acc.startCompute(fromUs(1.0), nullptr), PanicError);
}

TEST_F(AcceleratorTest, ReleaseWithoutAcquirePanics)
{
    EXPECT_THROW(acc.release(), PanicError);
}

TEST_F(AcceleratorTest, ReleaseFreesWithoutCompute)
{
    acc.acquire();
    acc.release();
    EXPECT_FALSE(acc.busy());
    EXPECT_EQ(acc.tasksExecuted(), 0u);
}

TEST_F(AcceleratorTest, OwnsSpmAndDma)
{
    EXPECT_EQ(acc.spm().numPartitions(), 3);
    // The DMA engine registered itself on the fabric after DRAM.
    EXPECT_EQ(acc.dma().port(), 1);
}

TEST_F(AcceleratorTest, ResetStatsClearsEverything)
{
    acc.acquire();
    acc.startCompute(fromUs(10.0), nullptr);
    sim.run();
    acc.resetStats();
    EXPECT_EQ(acc.computeBusyTime(), 0u);
    EXPECT_EQ(acc.tasksExecuted(), 0u);
}

} // namespace
} // namespace relief
