/** @file Unit tests for the calibrated compute-time model. */

#include <gtest/gtest.h>

#include "acc/compute_model.hh"
#include "sim/logging.hh"

namespace relief
{
namespace
{

TEST(ComputeModelTest, ReferenceTimesMatchTableI)
{
    EXPECT_DOUBLE_EQ(referenceComputeUs(AccType::ISP), 34.88);
    EXPECT_DOUBLE_EQ(referenceComputeUs(AccType::Grayscale), 10.26);
    EXPECT_DOUBLE_EQ(referenceComputeUs(AccType::Convolution), 1545.61);
    EXPECT_DOUBLE_EQ(referenceComputeUs(AccType::ElemMatrix), 10.94);
    EXPECT_DOUBLE_EQ(referenceComputeUs(AccType::CannyNonMax), 443.02);
    EXPECT_DOUBLE_EQ(referenceComputeUs(AccType::HarrisNonMax), 105.01);
    EXPECT_DOUBLE_EQ(referenceComputeUs(AccType::EdgeTracking), 324.73);
}

TEST(ComputeModelTest, TimeScalesLinearlyWithElements)
{
    TaskParams full;
    full.type = AccType::ElemMatrix;
    full.elems = 16384;
    TaskParams half = full;
    half.elems = 8192;
    EXPECT_NEAR(double(computeTime(full)) / double(computeTime(half)), 2.0,
                0.001);
}

TEST(ComputeModelTest, ConvolutionScalesWithFilterArea)
{
    TaskParams conv5;
    conv5.type = AccType::Convolution;
    conv5.filterSize = 5;
    TaskParams conv3 = conv5;
    conv3.filterSize = 3;
    double ratio = double(computeTime(conv5)) / double(computeTime(conv3));
    EXPECT_NEAR(ratio, 25.0 / 9.0, 0.01);
}

TEST(ComputeModelTest, OversizeFilterPanics)
{
    TaskParams conv;
    conv.type = AccType::Convolution;
    conv.filterSize = 7;
    EXPECT_THROW(computeTime(conv), PanicError);
}

TEST(ComputeModelTest, ZeroElementsPanics)
{
    TaskParams p;
    p.elems = 0;
    EXPECT_THROW(computeTime(p), PanicError);
}

TEST(ComputeModelTest, OperandBytesAre32BitExceptIsp)
{
    TaskParams em;
    em.type = AccType::ElemMatrix;
    em.elems = 16384;
    EXPECT_EQ(inputBytesPerOperand(em), 65536u);
    EXPECT_EQ(outputBytes(em), 65536u);

    TaskParams isp;
    isp.type = AccType::ISP;
    isp.elems = 16384;
    EXPECT_EQ(inputBytesPerOperand(isp), 32768u); // 16-bit Bayer
    EXPECT_EQ(outputBytes(isp), 65536u);
}

TEST(ComputeModelTest, SpmSizesMatchTableI)
{
    EXPECT_EQ(defaultSpmBytes(AccType::CannyNonMax), 262144u);
    EXPECT_EQ(defaultSpmBytes(AccType::Convolution), 196708u);
    EXPECT_EQ(defaultSpmBytes(AccType::EdgeTracking), 98432u);
    EXPECT_EQ(defaultSpmBytes(AccType::ElemMatrix), 262144u);
    EXPECT_EQ(defaultSpmBytes(AccType::Grayscale), 180224u);
    EXPECT_EQ(defaultSpmBytes(AccType::HarrisNonMax), 196608u);
    EXPECT_EQ(defaultSpmBytes(AccType::ISP), 115204u);
}

TEST(AccTypesTest, SymbolsAndNames)
{
    EXPECT_STREQ(accTypeSymbol(AccType::Convolution), "C");
    EXPECT_STREQ(accTypeSymbol(AccType::ElemMatrix), "EM");
    EXPECT_STREQ(accTypeName(AccType::ISP), "ISP");
    EXPECT_STREQ(elemOpName(ElemOp::Sigmoid), "sigmoid");
    EXPECT_EQ(int(allAccTypes.size()), numAccTypes);
}

} // namespace
} // namespace relief
