/**
 * @file
 * Property-based invariant tests: randomly generated DAGs are executed
 * under every policy, and structural invariants of the runtime must
 * hold regardless of shape, policy, or contention:
 *
 *  - every node completes, after all of its parents;
 *  - edge accounting is conserved (forward + colocation + DRAM);
 *  - colocations only on same-type edges;
 *  - DRAM traffic never exceeds the all-DRAM baseline, and equals it
 *    when forwarding is disabled;
 *  - simulations are deterministic.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/soc.hh"
#include "dag/dag.hh"
#include "sched/oracle.hh"

namespace relief
{
namespace
{

/** xorshift PRNG for reproducible random DAGs. */
struct Rng
{
    std::uint32_t state;
    explicit Rng(std::uint32_t seed) : state(seed ? seed : 1u) {}
    std::uint32_t
    next()
    {
        state ^= state << 13;
        state ^= state >> 17;
        state ^= state << 5;
        return state;
    }
    int
    range(int lo, int hi) // inclusive
    {
        return lo + int(next() % std::uint32_t(hi - lo + 1));
    }
};

/** Random DAG: layered, mixed accelerator types, tiny fixed runtimes. */
DagPtr
randomDag(std::uint32_t seed)
{
    Rng rng(seed);
    auto dag = std::make_shared<Dag>("rand" + std::to_string(seed), 'R');
    int layers = rng.range(2, 5);
    std::vector<Node *> prev_layer;
    int counter = 0;
    for (int layer = 0; layer < layers; ++layer) {
        int width = rng.range(1, 4);
        std::vector<Node *> this_layer;
        for (int i = 0; i < width; ++i) {
            TaskParams p;
            p.type = allAccTypes[std::size_t(rng.range(0, 6))];
            p.elems = 256;
            int max_parents = int(prev_layer.size());
            int parents = layer == 0 ? 0 : rng.range(1,
                                                     std::min(2,
                                                              max_parents));
            p.numInputs = std::max(1, parents);
            Node *n = dag->addNode(p, "n" + std::to_string(counter++));
            n->fixedRuntime = fromUs(double(rng.range(20, 200)));
            // Pick distinct parents from the previous layer.
            std::vector<Node *> pool = prev_layer;
            for (int e = 0; e < parents && !pool.empty(); ++e) {
                std::size_t idx =
                    std::size_t(rng.range(0, int(pool.size()) - 1));
                dag->addEdge(pool[idx], n);
                pool.erase(pool.begin() + long(idx));
            }
            this_layer.push_back(n);
        }
        prev_layer = this_layer;
    }
    dag->setRelativeDeadline(fromMs(double(rng.range(2, 20))));
    dag->finalize();
    return dag;
}

struct RunResult
{
    MetricsReport report;
    std::vector<DagPtr> dags;
};

RunResult
runRandom(std::uint32_t seed, PolicyKind policy, bool forwarding = true)
{
    SocConfig config;
    config.policy = policy;
    config.manager.computeJitter = 0.0;
    config.manager.forwardingEnabled = forwarding;
    Soc soc(config);
    RunResult result;
    Rng rng(seed * 977u);
    int num_dags = rng.range(1, 3);
    for (int i = 0; i < num_dags; ++i) {
        DagPtr dag = randomDag(seed + std::uint32_t(i) * 101u);
        soc.submit(dag);
        result.dags.push_back(dag);
    }
    soc.run(fromMs(200.0));
    result.report = soc.report();
    return result;
}

class InvariantTest
    : public ::testing::TestWithParam<std::tuple<std::uint32_t,
                                                 PolicyKind>>
{
};

TEST_P(InvariantTest, AllNodesCompleteAfterTheirParents)
{
    auto [seed, policy] = GetParam();
    RunResult result = runRandom(seed, policy);
    for (const DagPtr &dag : result.dags) {
        ASSERT_TRUE(dag->complete()) << dag->name();
        for (Node *node : dag->allNodes()) {
            EXPECT_EQ(node->status, NodeStatus::Finished);
            EXPECT_GT(node->finishedAt, node->launchedAt);
            EXPECT_GE(node->launchedAt, node->readyAt);
            for (Node *parent : node->parents)
                EXPECT_GE(node->launchedAt, parent->finishedAt);
        }
    }
}

TEST_P(InvariantTest, EdgeAccountingConserved)
{
    auto [seed, policy] = GetParam();
    RunResult result = runRandom(seed, policy);
    std::uint64_t edges = 0;
    for (const DagPtr &dag : result.dags)
        edges += std::uint64_t(dag->numEdges());
    const RunMetrics &m = result.report.run;
    EXPECT_EQ(m.edgesConsumed, edges);
    EXPECT_EQ(m.forwards + m.colocations + m.dramEdges, edges);
}

TEST_P(InvariantTest, ColocationsOnlyOnSameTypeEdges)
{
    auto [seed, policy] = GetParam();
    RunResult result = runRandom(seed, policy);
    for (const DagPtr &dag : result.dags) {
        for (Node *node : dag->allNodes()) {
            for (std::size_t i = 0; i < node->parents.size(); ++i) {
                if (node->inputSources[i] == InputSource::Colocated) {
                    EXPECT_EQ(node->parents[i]->params.type,
                              node->params.type)
                        << node->label;
                }
            }
        }
    }
}

TEST_P(InvariantTest, DramTrafficBoundedByBaseline)
{
    auto [seed, policy] = GetParam();
    RunResult result = runRandom(seed, policy);
    EXPECT_LE(result.report.dramBytes, result.report.run.baselineBytes);
}

TEST_P(InvariantTest, ForwardingOffMovesEverythingThroughDram)
{
    auto [seed, policy] = GetParam();
    RunResult result = runRandom(seed, policy, /* forwarding */ false);
    EXPECT_EQ(result.report.dramBytes, result.report.run.baselineBytes);
    EXPECT_EQ(result.report.run.forwards, 0u);
    EXPECT_EQ(result.report.run.colocations, 0u);
    EXPECT_EQ(result.report.spmForwardBytes, 0u);
}

TEST_P(InvariantTest, DeterministicReplay)
{
    auto [seed, policy] = GetParam();
    RunResult a = runRandom(seed, policy);
    RunResult b = runRandom(seed, policy);
    EXPECT_EQ(a.report.execTime, b.report.execTime);
    EXPECT_EQ(a.report.dramBytes, b.report.dramBytes);
    EXPECT_EQ(a.report.run.forwards, b.report.run.forwards);
    EXPECT_EQ(a.report.run.colocations, b.report.run.colocations);
    EXPECT_EQ(a.report.run.nodeDeadlinesMet, b.report.run.nodeDeadlinesMet);
}

TEST_P(InvariantTest, BankedMemoryPreservesInvariants)
{
    auto [seed, policy] = GetParam();
    SocConfig config;
    config.policy = policy;
    config.manager.computeJitter = 0.0;
    config.bankedMemory = true;
    Soc soc(config);
    std::vector<DagPtr> dags;
    for (int i = 0; i < 2; ++i) {
        DagPtr dag = randomDag(seed + std::uint32_t(i) * 313u);
        soc.submit(dag);
        dags.push_back(dag);
    }
    soc.run(fromMs(200.0));
    MetricsReport r = soc.report();
    std::uint64_t edges = 0;
    for (const DagPtr &dag : dags) {
        EXPECT_TRUE(dag->complete());
        edges += std::uint64_t(dag->numEdges());
    }
    EXPECT_EQ(r.run.forwards + r.run.colocations + r.run.dramEdges,
              edges);
    EXPECT_LE(r.dramBytes, r.run.baselineBytes);
}

TEST_P(InvariantTest, ContinuousModeConservesPerIterationEdges)
{
    auto [seed, policy] = GetParam();
    SocConfig config;
    config.policy = policy;
    config.manager.computeJitter = 0.0;
    Soc soc(config);
    DagPtr dag = randomDag(seed);
    soc.submit(dag, 0, /* continuous */ true);
    soc.run(fromMs(20.0));
    MetricsReport r = soc.report();
    const AppOutcome &app = r.apps[0];
    EXPECT_GT(app.iterations, 0);
    // Edges consumed count whole plus possibly one partial iteration.
    std::uint64_t per_iter = std::uint64_t(dag->numEdges());
    EXPECT_GE(r.run.edgesConsumed,
              per_iter * std::uint64_t(app.iterations));
    EXPECT_LE(r.run.edgesConsumed,
              per_iter * std::uint64_t(app.iterations + 1));
    EXPECT_EQ(r.run.forwards + r.run.colocations + r.run.dramEdges,
              r.run.edgesConsumed);
}

/** Small random DAG (<= 7 nodes) the oracle can search exhaustively. */
DagPtr
smallRandomDag(std::uint32_t seed)
{
    Rng rng(seed * 31 + 7);
    auto dag =
        std::make_shared<Dag>("small" + std::to_string(seed), 'S');
    int n = rng.range(3, 7);
    std::vector<Node *> nodes;
    for (int i = 0; i < n; ++i) {
        TaskParams p;
        p.type = allAccTypes[std::size_t(rng.range(0, 6))];
        p.elems = 256;
        Node *node = dag->addNode(p, "s" + std::to_string(i));
        node->fixedRuntime = fromUs(double(rng.range(50, 200)));
        // Link to a random earlier node (keeps it connected-ish).
        if (i > 0) {
            Node *parent = nodes[std::size_t(rng.range(0, i - 1))];
            p.numInputs = 1;
            dag->addEdge(parent, node);
        }
        nodes.push_back(node);
    }
    dag->setRelativeDeadline(fromMs(double(rng.range(5, 20))));
    dag->finalize();
    return dag;
}

TEST_P(InvariantTest, OracleUpperBoundsRealizedEdges)
{
    // The exhaustive ideal-schedule search bounds what any online
    // policy can realize on small problems.
    auto [seed, policy] = GetParam();
    SocConfig config;
    config.policy = policy;
    config.manager.computeJitter = 0.0;
    Soc soc(config);
    DagPtr dag = smallRandomDag(seed);
    soc.submit(dag);
    soc.run(fromMs(200.0));
    MetricsReport r = soc.report();

    OracleResult ideal =
        findIdealSchedule({dag.get()}, config.instances);
    ASSERT_TRUE(ideal.exhaustive);
    EXPECT_LE(r.run.forwards + r.run.colocations,
              std::uint64_t(ideal.totalRealized()))
        << policyName(policy);
}

TEST_P(InvariantTest, MetricsWithinPhysicalBounds)
{
    auto [seed, policy] = GetParam();
    RunResult result = runRandom(seed, policy);
    const MetricsReport &r = result.report;
    EXPECT_LE(r.run.nodeDeadlinesMet, r.run.nodesFinished);
    EXPECT_LE(r.run.dagDeadlinesMet, r.run.dagsFinished);
    EXPECT_GE(r.accOccupancy, 0.0);
    EXPECT_LE(r.fabricOccupancy, 1.0);
    EXPECT_GE(r.forwardFraction(), 0.0);
    EXPECT_LE(r.forwardFraction(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    RandomDagsTimesPolicies, InvariantTest,
    ::testing::Combine(::testing::Values(1u, 7u, 23u, 99u, 1234u),
                       ::testing::Values(PolicyKind::Fcfs,
                                         PolicyKind::GedfD,
                                         PolicyKind::GedfN,
                                         PolicyKind::LL,
                                         PolicyKind::Lax,
                                         PolicyKind::HetSched,
                                         PolicyKind::ReliefLax,
                                         PolicyKind::Relief)),
    [](const auto &info) {
        std::string name = policyName(std::get<1>(info.param));
        std::erase(name, '-'); // gtest names must be alphanumeric
        return name + "_s" + std::to_string(std::get<0>(info.param));
    });

} // namespace
} // namespace relief
