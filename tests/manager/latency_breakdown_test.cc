/**
 * @file
 * Tests for per-node lifecycle stamps and critical-path latency
 * attribution (manager/critical_path.hh). The core invariant under
 * test: the six buckets partition the end-to-end DAG latency exactly —
 * on a hand-computed diamond and on every tier-1 workload mix.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "core/soc.hh"
#include "dag/dag.hh"
#include "manager/critical_path.hh"
#include "workload/scenario.hh"

namespace relief
{
namespace
{

/** Small deterministic tasks: 1 KiB operands, fixed 100 us runtime. */
TaskParams
tiny(AccType type, int inputs = 1)
{
    TaskParams p;
    p.type = type;
    p.numInputs = inputs;
    p.elems = 256;
    return p;
}

constexpr Tick kFixed = fromUs(100.0);

/** a -> {b, c} -> d with fixed 100 us nodes on four distinct types. */
DagPtr
diamondDag()
{
    auto dag = std::make_shared<Dag>("diamond", 'X');
    Node *a = dag->addNode(tiny(AccType::ElemMatrix), "diamond.a");
    Node *b = dag->addNode(tiny(AccType::Convolution), "diamond.b");
    Node *c = dag->addNode(tiny(AccType::Grayscale), "diamond.c");
    Node *d = dag->addNode(tiny(AccType::ElemMatrix, 2), "diamond.d");
    for (Node *n : {a, b, c, d})
        n->fixedRuntime = kFixed;
    dag->addEdge(a, b);
    dag->addEdge(a, c);
    dag->addEdge(b, d);
    dag->addEdge(c, d);
    dag->setRelativeDeadline(fromMs(10.0));
    dag->finalize();
    return dag;
}

SocConfig
quietConfig(PolicyKind policy = PolicyKind::Relief)
{
    SocConfig config;
    config.policy = policy;
    config.manager.computeJitter = 0.0;
    return config;
}

Tick
absDiff(Tick a, Tick b)
{
    return a > b ? a - b : b - a;
}

TEST(LatencyBreakdownTest, DiamondBucketsSumToLatency)
{
    Soc soc(quietConfig());
    DagPtr dag = diamondDag();
    soc.submit(dag);
    soc.run(fromMs(50.0));
    ASSERT_TRUE(dag->complete());

    DagLatencyRecord rec = CriticalPath::analyze(*dag);
    EXPECT_EQ(rec.dag, "diamond");
    EXPECT_EQ(rec.arrival, dag->arrivalTick());
    EXPECT_EQ(rec.finish, dag->finishTick());
    // The partition invariant: every tick of latency lands in exactly
    // one bucket (acceptance criterion: within one tick).
    EXPECT_LE(absDiff(rec.buckets.total(), rec.latency()), 1u);

    // The walked path is sink -> gating middle node -> root.
    ASSERT_EQ(rec.pathLength, 3);
    ASSERT_EQ(rec.path.size(), 3u);
    EXPECT_EQ(rec.path.front()->label, "diamond.d");
    EXPECT_TRUE(rec.path.back()->parents.empty());
    EXPECT_EQ(rec.path.back()->label, "diamond.a");

    // Three fixed-runtime nodes on the path, no jitter: the compute
    // bucket is exactly 300 us.
    EXPECT_EQ(rec.buckets.compute, 3 * kFixed);
    // Write-backs are asynchronous in this model, so they never gate
    // the path (the bucket exists as a regression detector).
    EXPECT_EQ(rec.buckets.dmaOut, 0u);
}

TEST(LatencyBreakdownTest, ManagerStoresOneRecordPerFinishedDag)
{
    Soc soc(quietConfig());
    DagPtr dag = diamondDag();
    soc.submit(dag);
    soc.run(fromMs(50.0));
    ASSERT_TRUE(dag->complete());

    const auto &records = soc.manager().latencyRecords();
    ASSERT_EQ(records.size(), 1u);
    const DagLatencyRecord &rec = records.front();
    EXPECT_EQ(rec.dag, "diamond");
    EXPECT_LE(absDiff(rec.buckets.total(), rec.latency()), 1u);
    EXPECT_EQ(rec.pathLength, 3);
    // Stored records drop node pointers (continuous resubmission
    // recycles Node objects); only the attribution is kept.
    EXPECT_TRUE(rec.path.empty());

    // The attribution also lands in the RunMetrics histograms.
    const RunMetrics &m = soc.manager().metrics();
    EXPECT_EQ(m.cpTotalUs.count(), 1u);
    EXPECT_DOUBLE_EQ(m.cpComputeUs.mean(), toUs(rec.buckets.compute));
}

TEST(LatencyBreakdownTest, LifecycleStampsAreMonotonic)
{
    Soc soc(quietConfig());
    DagPtr dag = diamondDag();
    soc.submit(dag);
    soc.run(fromMs(50.0));
    ASSERT_TRUE(dag->complete());

    for (Node *node : dag->allNodes()) {
        const NodeLifecycle &lc = node->lifecycle;
        EXPECT_LE(lc.submitted, lc.depsReady) << node->label;
        EXPECT_LE(lc.depsReady, lc.queued) << node->label;
        EXPECT_LE(lc.queued, lc.dispatched) << node->label;
        EXPECT_LE(lc.dispatched, lc.loadStart) << node->label;
        EXPECT_LE(lc.loadStart, lc.loadEnd) << node->label;
        EXPECT_LT(lc.loadEnd, lc.computeEnd) << node->label;
        EXPECT_EQ(lc.computeEnd, node->finishedAt) << node->label;
        EXPECT_LE(lc.wbStart, lc.wbEnd) << node->label;
    }
}

TEST(LatencyBreakdownTest, SingleNodeDagAttribution)
{
    Soc soc(quietConfig());
    auto dag = std::make_shared<Dag>("solo", 'S');
    Node *n = dag->addNode(tiny(AccType::Convolution), "solo.n");
    n->fixedRuntime = kFixed;
    dag->setRelativeDeadline(fromMs(10.0));
    dag->finalize();
    soc.submit(dag);
    soc.run(fromMs(50.0));
    ASSERT_TRUE(dag->complete());

    DagLatencyRecord rec = CriticalPath::analyze(*dag);
    EXPECT_EQ(rec.pathLength, 1);
    EXPECT_EQ(rec.buckets.compute, kFixed);
    EXPECT_LE(absDiff(rec.buckets.total(), rec.latency()), 1u);
}

/**
 * Acceptance criterion: on every tier-1 workload (each application
 * alone and the paper's three-app mixes, under both the baseline and
 * RELIEF schedulers, with the default compute jitter), every finished
 * DAG's bucket sums equal its measured end-to-end latency within one
 * tick.
 */
TEST(LatencyBreakdownTest, BucketsSumToLatencyOnTier1Workloads)
{
    std::vector<std::string> mixes = {"C", "D", "G", "H", "L"};
    for (const std::string &mix : mixesFor(Contention::High))
        mixes.push_back(mix);
    for (PolicyKind policy : {PolicyKind::Fcfs, PolicyKind::Relief}) {
        for (const std::string &mix : mixes) {
            SocConfig config;
            config.policy = policy;
            Soc soc(config);
            std::vector<DagPtr> dags;
            for (AppId app : parseMix(mix))
                dags.push_back(buildApp(app));
            for (DagPtr &dag : dags)
                soc.submit(dag);
            soc.run(fromMs(50.0));

            const auto &records = soc.manager().latencyRecords();
            ASSERT_EQ(records.size(), dags.size())
                << mix << " under " << policyName(policy);
            for (const DagLatencyRecord &rec : records) {
                EXPECT_LE(absDiff(rec.buckets.total(), rec.latency()), 1u)
                    << rec.dag << " in " << mix << " under "
                    << policyName(policy);
                EXPECT_GT(rec.buckets.compute, 0u) << rec.dag;
                EXPECT_EQ(rec.buckets.dmaOut, 0u) << rec.dag;
            }
        }
    }
}

/** Continuous resubmission: one record per execution, not per DAG. */
TEST(LatencyBreakdownTest, ContinuousRunsAccumulateRecords)
{
    Soc soc(quietConfig());
    DagPtr dag = diamondDag();
    soc.submit(dag, 0, true);
    soc.run(fromMs(5.0));

    const auto &records = soc.manager().latencyRecords();
    const RunMetrics &m = soc.manager().metrics();
    EXPECT_EQ(records.size(), m.dagsFinished);
    ASSERT_GT(records.size(), 1u);
    for (const DagLatencyRecord &rec : records)
        EXPECT_LE(absDiff(rec.buckets.total(), rec.latency()), 1u);
}

} // namespace
} // namespace relief
