/** @file Behavioural tests for the hardware manager runtime. */

#include <gtest/gtest.h>

#include "core/soc.hh"
#include "dag/dag.hh"

namespace relief
{
namespace
{

/** Small deterministic tasks: 1 KiB operands, fixed 100 us runtime. */
TaskParams
tiny(AccType type, int inputs = 1)
{
    TaskParams p;
    p.type = type;
    p.numInputs = inputs;
    p.elems = 256;
    return p;
}

DagPtr
chainDag(std::vector<AccType> types, Tick deadline = fromMs(10.0))
{
    auto dag = std::make_shared<Dag>("chain", 'X');
    Node *prev = nullptr;
    int i = 0;
    for (AccType type : types) {
        Node *n = dag->addNode(tiny(type, prev ? 1 : 1),
                               "chain." + std::to_string(i++));
        n->fixedRuntime = fromUs(100.0);
        if (prev)
            dag->addEdge(prev, n);
        prev = n;
    }
    dag->setRelativeDeadline(deadline);
    dag->finalize();
    return dag;
}

SocConfig
quietConfig(PolicyKind policy = PolicyKind::Relief)
{
    SocConfig config;
    config.policy = policy;
    config.manager.computeJitter = 0.0;
    return config;
}

TEST(ManagerTest, SingleNodeDagRunsToCompletion)
{
    Soc soc(quietConfig());
    DagPtr dag = chainDag({AccType::ElemMatrix});
    soc.submit(dag);
    soc.run(fromMs(50.0));
    EXPECT_TRUE(dag->complete());
    MetricsReport report = soc.report();
    EXPECT_EQ(report.run.nodesFinished, 1u);
    EXPECT_EQ(report.run.dagsFinished, 1u);
    EXPECT_EQ(report.run.dagDeadlinesMet, 1u);
}

TEST(ManagerTest, NodesRespectDependencies)
{
    Soc soc(quietConfig());
    DagPtr dag = chainDag({AccType::ElemMatrix, AccType::Convolution,
                           AccType::Grayscale});
    soc.submit(dag);
    soc.run(fromMs(50.0));
    ASSERT_TRUE(dag->complete());
    for (Node *node : dag->allNodes()) {
        for (Node *parent : node->parents) {
            EXPECT_GE(node->launchedAt, parent->finishedAt)
                << node->label;
        }
        EXPECT_GT(node->finishedAt, node->launchedAt);
    }
}

TEST(ManagerTest, CrossAcceleratorEdgeForwardsWhenNextInLine)
{
    Soc soc(quietConfig());
    DagPtr dag = chainDag({AccType::ElemMatrix, AccType::Convolution});
    soc.submit(dag);
    soc.run(fromMs(50.0));
    ASSERT_TRUE(dag->complete());
    // The child was the only queued work: it launched right after its
    // parent and pulled from the parent's scratchpad.
    EXPECT_EQ(dag->node(1)->inputSources[0], InputSource::Forwarded);
    MetricsReport report = soc.report();
    EXPECT_EQ(report.run.forwards, 1u);
    EXPECT_EQ(report.run.colocations, 0u);
    EXPECT_GT(report.spmForwardBytes, 0u);
}

TEST(ManagerTest, SameAcceleratorEdgeColocates)
{
    Soc soc(quietConfig());
    DagPtr dag = chainDag({AccType::ElemMatrix, AccType::ElemMatrix});
    soc.submit(dag);
    soc.run(fromMs(50.0));
    ASSERT_TRUE(dag->complete());
    EXPECT_EQ(dag->node(1)->inputSources[0], InputSource::Colocated);
    MetricsReport report = soc.report();
    EXPECT_EQ(report.run.colocations, 1u);
    EXPECT_EQ(report.run.forwards, 0u);
}

TEST(ManagerTest, ForwardingDisabledGoesThroughDram)
{
    SocConfig config = quietConfig();
    config.manager.forwardingEnabled = false;
    Soc soc(config);
    DagPtr dag = chainDag({AccType::ElemMatrix, AccType::ElemMatrix,
                           AccType::Convolution});
    soc.submit(dag);
    soc.run(fromMs(50.0));
    ASSERT_TRUE(dag->complete());
    MetricsReport report = soc.report();
    EXPECT_EQ(report.run.forwards, 0u);
    EXPECT_EQ(report.run.colocations, 0u);
    EXPECT_EQ(report.run.dramEdges, 2u);
    // Every operand and output moved through DRAM.
    EXPECT_EQ(report.dramBytes, report.run.baselineBytes);
}

TEST(ManagerTest, WriteBackSkippedWhenChildForwards)
{
    Soc soc(quietConfig());
    DagPtr dag = chainDag({AccType::ElemMatrix, AccType::Convolution});
    soc.submit(dag);
    soc.run(fromMs(50.0));
    MetricsReport report = soc.report();
    EXPECT_GE(report.run.writebacksAvoided, 1u);
}

TEST(ManagerTest, LeafOutputIsAlwaysWrittenBack)
{
    Soc soc(quietConfig());
    DagPtr dag = chainDag({AccType::ElemMatrix});
    soc.submit(dag);
    soc.run(fromMs(50.0));
    MetricsReport report = soc.report();
    // 1 external input read + 1 output write.
    EXPECT_EQ(report.dramBytes, 2u * 1024u);
    EXPECT_EQ(report.run.writebacksAvoided, 0u);
}

TEST(ManagerTest, DeadlineMissIsRecorded)
{
    Soc soc(quietConfig());
    // Two sequential 100 us tasks cannot meet a 50 us deadline.
    DagPtr dag = chainDag({AccType::ElemMatrix, AccType::Convolution},
                          fromUs(50.0));
    soc.submit(dag);
    soc.run(fromMs(50.0));
    ASSERT_TRUE(dag->complete());
    MetricsReport report = soc.report();
    EXPECT_EQ(report.run.dagsFinished, 1u);
    EXPECT_EQ(report.run.dagDeadlinesMet, 0u);
    EXPECT_LT(report.run.nodeDeadlinesMet, report.run.nodesFinished);
    EXPECT_GT(report.apps[0].meanSlowdown(), 1.0);
}

TEST(ManagerTest, TwoDagsShareTheAccelerator)
{
    Soc soc(quietConfig());
    DagPtr d1 = chainDag({AccType::ElemMatrix, AccType::ElemMatrix});
    DagPtr d2 = chainDag({AccType::ElemMatrix, AccType::ElemMatrix});
    soc.submit(d1);
    soc.submit(d2);
    soc.run(fromMs(50.0));
    EXPECT_TRUE(d1->complete());
    EXPECT_TRUE(d2->complete());
    // Serialized on the single elem-matrix instance: total busy time
    // equals four tasks.
    auto accs = soc.accelerators();
    Tick em_busy = 0;
    for (Accelerator *acc : accs)
        if (acc->type() == AccType::ElemMatrix)
            em_busy = acc->computeBusyTime();
    EXPECT_EQ(em_busy, fromUs(400.0));
}

TEST(ManagerTest, ContinuousModeResubmits)
{
    Soc soc(quietConfig());
    DagPtr dag = chainDag({AccType::ElemMatrix});
    soc.submit(dag, 0, /* continuous */ true);
    soc.run(fromMs(5.0));
    MetricsReport report = soc.report();
    EXPECT_GT(report.apps[0].iterations, 5);
    EXPECT_EQ(report.run.dagsFinished,
              std::uint64_t(report.apps[0].iterations));
}

TEST(ManagerTest, ManagerLatencyDelaysChildLaunch)
{
    SocConfig with_latency = quietConfig();
    with_latency.manager.isrLatency = fromUs(5.0);
    SocConfig no_latency = quietConfig();
    no_latency.manager.modelSchedulingLatency = false;

    auto run_one = [](const SocConfig &config) {
        Soc soc(config);
        DagPtr dag = chainDag({AccType::ElemMatrix, AccType::Convolution});
        soc.submit(dag);
        soc.run(fromMs(50.0));
        return dag->finishTick();
    };
    EXPECT_GT(run_one(with_latency), run_one(no_latency));
}

TEST(ManagerTest, ManagerBusyTimeAccumulates)
{
    Soc soc(quietConfig());
    DagPtr dag = chainDag({AccType::ElemMatrix, AccType::Convolution});
    soc.submit(dag);
    soc.run(fromMs(50.0));
    MetricsReport report = soc.report();
    EXPECT_GT(report.run.managerBusyTime, 0u);
    EXPECT_GT(report.run.pushLatency.count(), 0u);
}

TEST(ManagerTest, FanOutToDistinctTypesRunsInParallel)
{
    Soc soc(quietConfig());
    auto dag = std::make_shared<Dag>("fan", 'X');
    Node *a = dag->addNode(tiny(AccType::ElemMatrix), "a");
    Node *b = dag->addNode(tiny(AccType::Convolution), "b");
    Node *c = dag->addNode(tiny(AccType::Grayscale), "c");
    a->fixedRuntime = fromUs(100.0);
    b->fixedRuntime = fromUs(100.0);
    c->fixedRuntime = fromUs(100.0);
    dag->addEdge(a, b);
    dag->addEdge(a, c);
    dag->setRelativeDeadline(fromMs(10.0));
    dag->finalize();
    soc.submit(dag);
    soc.run(fromMs(50.0));
    ASSERT_TRUE(dag->complete());
    // b and c overlap: they launch within each other's execution.
    EXPECT_LT(std::max(b->launchedAt, c->launchedAt),
              std::min(b->finishedAt, c->finishedAt));
}

TEST(ManagerTest, EdgeAccountingIsConserved)
{
    Soc soc(quietConfig());
    DagPtr dag = chainDag({AccType::ElemMatrix, AccType::Convolution,
                           AccType::ElemMatrix, AccType::ElemMatrix});
    soc.submit(dag);
    soc.run(fromMs(50.0));
    MetricsReport report = soc.report();
    EXPECT_EQ(report.run.edgesConsumed, std::uint64_t(dag->numEdges()));
    EXPECT_EQ(report.run.forwards + report.run.colocations +
                  report.run.dramEdges,
              report.run.edgesConsumed);
}

TEST(ManagerTest, SinglePartitionForcesEvictionButStaysCorrect)
{
    // With one output partition, a same-accelerator consumer's
    // colocation input occupies the only partition its own output
    // needs: the manager must demote the colocation (evicting the
    // producer's data to DRAM first) rather than deadlock.
    SocConfig config = quietConfig();
    config.spmPartitions = 1;
    Soc soc(config);
    DagPtr dag = chainDag({AccType::ElemMatrix, AccType::ElemMatrix,
                           AccType::ElemMatrix});
    soc.submit(dag);
    soc.run(fromMs(50.0));
    ASSERT_TRUE(dag->complete());
    MetricsReport report = soc.report();
    // All edges fall back to DRAM, and the data is never lost.
    EXPECT_EQ(report.run.colocations, 0u);
    EXPECT_EQ(report.run.dramEdges, 2u);
}

TEST(ManagerTest, SinglePartitionCrossTypeChainStillRuns)
{
    SocConfig config = quietConfig();
    config.spmPartitions = 1;
    Soc soc(config);
    DagPtr dag = chainDag({AccType::ISP, AccType::Grayscale,
                           AccType::Convolution, AccType::ElemMatrix,
                           AccType::CannyNonMax});
    soc.submit(dag);
    soc.run(fromMs(50.0));
    EXPECT_TRUE(dag->complete());
}

TEST(ManagerTest, FullBenchmarksRunWithTwoPartitions)
{
    SocConfig config = quietConfig();
    config.spmPartitions = 2;
    Soc soc(config);
    for (AppId app : {AppId::Canny, AppId::Gru}) {
        soc.submit(buildApp(app));
    }
    soc.run(fromMs(50.0));
    MetricsReport report = soc.report();
    EXPECT_EQ(report.run.dagsFinished, 2u);
}

TEST(ManagerTest, EvictedDataIsReadableFromDram)
{
    // Fan-out where the second consumer is delayed past the producer's
    // partition reuse: it must read the evicted/written-back copy.
    SocConfig config = quietConfig();
    config.spmPartitions = 2;
    Soc soc(config);
    auto dag = std::make_shared<Dag>("fan", 'X');
    Node *a = dag->addNode(tiny(AccType::ElemMatrix), "a");
    // A long chain keeps the EM accelerator busy, delaying 'late'.
    Node *prev = a;
    for (int i = 0; i < 4; ++i) {
        Node *n = dag->addNode(tiny(AccType::ElemMatrix),
                               "chain" + std::to_string(i));
        n->fixedRuntime = fromUs(100.0);
        dag->addEdge(prev, n);
        prev = n;
    }
    Node *late = dag->addNode(tiny(AccType::ElemMatrix, 2), "late");
    late->fixedRuntime = fromUs(100.0);
    dag->addEdge(a, late);
    dag->addEdge(prev, late);
    a->fixedRuntime = fromUs(100.0);
    dag->setRelativeDeadline(fromMs(10.0));
    dag->finalize();
    soc.submit(dag);
    soc.run(fromMs(50.0));
    ASSERT_TRUE(dag->complete());
    // 'late' consumed a's output one way or another.
    EXPECT_EQ(late->status, NodeStatus::Finished);
}

TEST(ManagerTest, StreamForwardingMechanismWorksEndToEnd)
{
    SocConfig config = quietConfig();
    config.manager.forwardMechanism = ForwardMechanism::StreamBuffer;
    Soc soc(config);
    DagPtr dag = chainDag({AccType::ElemMatrix, AccType::Convolution,
                           AccType::Grayscale});
    soc.submit(dag);
    soc.run(fromMs(50.0));
    ASSERT_TRUE(dag->complete());
    MetricsReport report = soc.report();
    EXPECT_EQ(report.run.forwards, 2u);
    EXPECT_GT(report.spmForwardBytes, 0u);
}

TEST(ManagerTest, StreamForwardingIsAtLeastAsFast)
{
    auto run_with = [](ForwardMechanism mechanism) {
        SocConfig config = quietConfig();
        config.manager.forwardMechanism = mechanism;
        Soc soc(config);
        DagPtr dag = chainDag({AccType::ElemMatrix, AccType::Convolution,
                               AccType::Grayscale, AccType::ISP});
        soc.submit(dag);
        soc.run(fromMs(50.0));
        return dag->finishTick();
    };
    EXPECT_LE(run_with(ForwardMechanism::StreamBuffer),
              run_with(ForwardMechanism::SpmDma));
}

TEST(ManagerTest, SubmitLatencyDelaysArrival)
{
    SocConfig config = quietConfig();
    config.manager.submitLatency = fromUs(2.0);
    Soc soc(config);
    DagPtr dag = chainDag({AccType::ElemMatrix});
    soc.submit(dag, fromMs(1.0));
    soc.run(fromMs(50.0));
    ASSERT_TRUE(dag->complete());
    EXPECT_EQ(dag->arrivalTick(), fromMs(1.0) + fromUs(2.0));
}

TEST(ManagerTest, SubmitLatencyDefaultsToZero)
{
    Soc soc(quietConfig());
    DagPtr dag = chainDag({AccType::ElemMatrix});
    soc.submit(dag, fromMs(1.0));
    soc.run(fromMs(50.0));
    EXPECT_EQ(dag->arrivalTick(), fromMs(1.0));
}

TEST(ManagerTest, IdleCountTracksOccupancy)
{
    Soc soc(quietConfig());
    EXPECT_EQ(soc.manager().idleCount(AccType::ElemMatrix), 1);
    EXPECT_EQ(soc.manager().instanceCount(AccType::ElemMatrix), 1);
}

TEST(ManagerTest, MultiInstanceTypeRunsConcurrently)
{
    SocConfig config = quietConfig();
    config.instances[accIndex(AccType::ElemMatrix)] = 2;
    Soc soc(config);
    EXPECT_EQ(soc.manager().instanceCount(AccType::ElemMatrix), 2);

    auto dag = std::make_shared<Dag>("par", 'X');
    Node *a = dag->addNode(tiny(AccType::ElemMatrix), "a");
    Node *b = dag->addNode(tiny(AccType::ElemMatrix), "b");
    a->fixedRuntime = fromUs(100.0);
    b->fixedRuntime = fromUs(100.0);
    dag->setRelativeDeadline(fromMs(10.0));
    dag->finalize();
    soc.submit(dag);
    soc.run(fromMs(50.0));
    ASSERT_TRUE(dag->complete());
    EXPECT_LT(std::max(a->launchedAt, b->launchedAt),
              std::min(a->finishedAt, b->finishedAt));
}

} // namespace
} // namespace relief
