/**
 * @file
 * Tests for the parallel experiment runner (core/parallel.hh) and the
 * determinism contract it rests on: one simulation's results are a
 * pure function of its configuration — identical across repeated runs
 * and across job counts.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/parallel.hh"
#include "core/relief.hh"

namespace relief
{
namespace
{

TEST(ParallelForTest, RunsEveryIndexExactlyOnce)
{
    constexpr std::size_t kCount = 64;
    std::vector<std::atomic<int>> hits(kCount);
    parallelFor(kCount, 4, [&](std::size_t i) { hits[i]++; });
    for (std::size_t i = 0; i < kCount; ++i)
        EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForTest, OneJobRunsSeriallyOnTheCallingThread)
{
    std::set<std::thread::id> ids;
    parallelFor(8, 1, [&](std::size_t) {
        ids.insert(std::this_thread::get_id());
    });
    ASSERT_EQ(ids.size(), 1u);
    EXPECT_EQ(*ids.begin(), std::this_thread::get_id());
}

TEST(ParallelForTest, ZeroCountIsANoOp)
{
    bool called = false;
    parallelFor(0, 4, [&](std::size_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(ParallelForTest, RethrowsTheFirstBodyException)
{
    EXPECT_THROW(
        parallelFor(16, 4,
                    [&](std::size_t i) {
                        if (i == 3)
                            throw std::runtime_error("boom");
                    }),
        std::runtime_error);
}

TEST(ParallelForTest, WorkersInheritTheLaunchingThreadsDebugFlags)
{
    clearDebugFlags();
    setDebugFlag(DebugFlag::Sched);
    std::atomic<int> enabled{0};
    parallelFor(8, 4, [&](std::size_t) {
        if (debugFlagEnabled(DebugFlag::Sched) &&
            !debugFlagEnabled(DebugFlag::Dma))
            enabled++;
    });
    clearDebugFlags();
    EXPECT_EQ(enabled.load(), 8);
}

/** Final tick, event counts, and the full stats JSON of one run. */
struct RunFingerprint
{
    Tick finalTick = 0;
    std::uint64_t executed = 0;
    std::uint64_t scheduled = 0;
    std::string statsJson;

    bool
    operator==(const RunFingerprint &other) const
    {
        return finalTick == other.finalTick &&
               executed == other.executed &&
               scheduled == other.scheduled &&
               statsJson == other.statsJson;
    }
};

RunFingerprint
fingerprint(const std::string &mix, PolicyKind policy)
{
    resetNodeIds();
    ExperimentConfig config;
    config.soc.policy = policy;
    config.mix = mix;

    Soc soc(config.soc);
    for (AppId app : parseMix(config.mix))
        soc.submit(buildApp(app, config.app), 0, false);
    soc.run(config.timeLimit);

    RunFingerprint fp;
    fp.finalTick = soc.sim().events().curTick();
    fp.executed = soc.sim().events().numExecuted();
    fp.scheduled = soc.sim().events().numScheduled();
    std::ostringstream os;
    soc.writeStatsJson(os);
    fp.statsJson = os.str();
    return fp;
}

TEST(DeterminismTest, SameConfigTwiceProducesIdenticalResults)
{
    RunFingerprint first = fingerprint("CDL", PolicyKind::Relief);
    RunFingerprint second = fingerprint("CDL", PolicyKind::Relief);
    EXPECT_EQ(first.finalTick, second.finalTick);
    EXPECT_EQ(first.executed, second.executed);
    EXPECT_EQ(first.scheduled, second.scheduled);
    EXPECT_EQ(first.statsJson, second.statsJson);
}

TEST(DeterminismTest, ResultsAreIdenticalAcrossJobCounts)
{
    // The same four (mix, policy) points, serially and on 8 workers:
    // every fingerprint — including the full stats JSON — must match.
    const std::vector<std::pair<std::string, PolicyKind>> matrix = {
        {"CDL", PolicyKind::Relief},
        {"CDL", PolicyKind::Fcfs},
        {"CG", PolicyKind::Relief},
        {"GHL", PolicyKind::GedfN},
    };

    std::vector<RunFingerprint> serial(matrix.size());
    parallelFor(matrix.size(), 1, [&](std::size_t i) {
        serial[i] = fingerprint(matrix[i].first, matrix[i].second);
    });

    std::vector<RunFingerprint> parallel(matrix.size());
    parallelFor(matrix.size(), 8, [&](std::size_t i) {
        parallel[i] = fingerprint(matrix[i].first, matrix[i].second);
    });

    for (std::size_t i = 0; i < matrix.size(); ++i) {
        EXPECT_TRUE(serial[i] == parallel[i])
            << matrix[i].first << " under "
            << policyName(matrix[i].second)
            << " diverged between --jobs 1 and --jobs 8";
        EXPECT_GT(serial[i].executed, 0u);
    }
}

} // namespace
} // namespace relief
