/** @file Unit tests for the CLI option parser. */

#include <gtest/gtest.h>

#include <fstream>

#include "core/cli.hh"
#include "kernels/simd/simd.hh"
#include "sim/debug.hh"
#include "sim/logging.hh"

namespace relief
{
namespace
{

TEST(CliTest, DefaultsWhenNoFlags)
{
    ExperimentConfig config = parseCliOptions({});
    EXPECT_EQ(config.mix, "C");
    EXPECT_EQ(config.soc.policy, PolicyKind::Relief);
    EXPECT_FALSE(config.continuous);
    EXPECT_EQ(config.timeLimit, fromMs(50.0));
}

TEST(CliTest, ParsesMixAndPolicy)
{
    auto config = parseCliOptions({"--mix", "GHL", "--policy", "LAX"});
    EXPECT_EQ(config.mix, "GHL");
    EXPECT_EQ(config.soc.policy, PolicyKind::Lax);
}

TEST(CliTest, ParsesEveryPolicyName)
{
    for (PolicyKind kind : allPolicies)
        EXPECT_EQ(policyFromName(policyName(kind)), kind);
    EXPECT_EQ(policyFromName("RELIEF-HS"), PolicyKind::ReliefHetSched);
    EXPECT_THROW(policyFromName("NOPE"), FatalError);
}

TEST(CliTest, ParsesKernelIsa)
{
    // Applied immediately, like --debug-flags: the active backend is
    // forced as a side effect of parsing.
    parseCliOptions({"--kernel-isa", "scalar"});
    EXPECT_EQ(activeKernelIsa(), KernelIsa::Scalar);
    EXPECT_THROW(parseCliOptions({"--kernel-isa", "mmx"}), FatalError);
    EXPECT_THROW(parseCliOptions({"--kernel-isa"}), FatalError);
    resetKernelIsaForTesting();
}

TEST(CliTest, ParsesContinuousAndLimit)
{
    auto config =
        parseCliOptions({"--continuous", "--limit-ms", "12.5"});
    EXPECT_TRUE(config.continuous);
    EXPECT_EQ(config.timeLimit, fromMs(12.5));
}

TEST(CliTest, ParsesFabric)
{
    EXPECT_EQ(parseCliOptions({"--fabric", "xbar"}).soc.fabric,
              FabricKind::Crossbar);
    EXPECT_EQ(parseCliOptions({"--fabric", "bus"}).soc.fabric,
              FabricKind::Bus);
    EXPECT_THROW(parseCliOptions({"--fabric", "mesh"}), FatalError);
}

TEST(CliTest, ParsesInstanceSpecs)
{
    auto config = parseCliOptions({"--instances", "EM=3,C=2"});
    EXPECT_EQ(config.soc.instances[accIndex(AccType::ElemMatrix)], 3);
    EXPECT_EQ(config.soc.instances[accIndex(AccType::Convolution)], 2);
    EXPECT_EQ(config.soc.instances[accIndex(AccType::ISP)], 1);
    EXPECT_THROW(parseCliOptions({"--instances", "EM"}), FatalError);
    EXPECT_THROW(parseCliOptions({"--instances", "XX=2"}), FatalError);
    EXPECT_THROW(parseCliOptions({"--instances", "EM=0"}), FatalError);
}

TEST(CliTest, ParsesMemoryKnobs)
{
    auto config = parseCliOptions(
        {"--banked-memory", "--mem-efficiency", "0.7"});
    EXPECT_TRUE(config.soc.bankedMemory);
    EXPECT_DOUBLE_EQ(config.soc.mem.efficiency, 0.7);
    EXPECT_THROW(parseCliOptions({"--mem-efficiency", "1.5"}),
                 FatalError);
}

TEST(CliTest, ParsesPredictors)
{
    auto config = parseCliOptions(
        {"--bw-predictor", "ewma", "--dm-predictor", "graph"});
    EXPECT_EQ(config.soc.bwPredictor, BwPredictorKind::Ewma);
    EXPECT_EQ(config.soc.dmPredictor, DmPredictorKind::Graph);
    EXPECT_THROW(parseCliOptions({"--bw-predictor", "oracle"}),
                 FatalError);
}

TEST(CliTest, ParsesToggles)
{
    auto config = parseCliOptions({"--no-feasibility", "--no-forwarding",
                                   "--functional", "--seed", "9",
                                   "--spm-partitions", "2"});
    EXPECT_FALSE(config.soc.reliefFeasibilityCheck);
    EXPECT_FALSE(config.soc.manager.forwardingEnabled);
    EXPECT_TRUE(config.app.functional);
    EXPECT_EQ(config.app.seed, 9u);
    EXPECT_EQ(config.soc.spmPartitions, 2);
}

TEST(CliTest, RejectsUnknownFlagsAndBadMixes)
{
    EXPECT_THROW(parseCliOptions({"--bogus"}), FatalError);
    EXPECT_THROW(parseCliOptions({"--mix", "XYZ"}), FatalError);
    EXPECT_THROW(parseCliOptions({"--mix"}), FatalError);
}

TEST(CliTest, AccTypeSymbols)
{
    EXPECT_EQ(accTypeFromSymbol("EM"), AccType::ElemMatrix);
    EXPECT_EQ(accTypeFromSymbol("CNM"), AccType::CannyNonMax);
    EXPECT_THROW(accTypeFromSymbol("Q"), FatalError);
}

TEST(CliTest, ConfigFileSplicesFlags)
{
    std::string path = ::testing::TempDir() + "/relief_cli_test.cfg";
    {
        std::ofstream out(path);
        out << "# experiment setup\n";
        out << "--mix GHL   # the forwarding-heavy triple\n";
        out << "--policy LAX\n";
        out << "--spm-partitions 2 --continuous\n";
    }
    auto config = parseCliOptions({"--config", path});
    EXPECT_EQ(config.mix, "GHL");
    EXPECT_EQ(config.soc.policy, PolicyKind::Lax);
    EXPECT_EQ(config.soc.spmPartitions, 2);
    EXPECT_TRUE(config.continuous);
}

TEST(CliTest, CommandLineOverridesConfigFileWhenLater)
{
    std::string path = ::testing::TempDir() + "/relief_cli_test2.cfg";
    {
        std::ofstream out(path);
        out << "--policy LAX\n";
    }
    auto config =
        parseCliOptions({"--config", path, "--policy", "RELIEF"});
    EXPECT_EQ(config.soc.policy, PolicyKind::Relief);
}

TEST(CliTest, MissingOrNestedConfigRejected)
{
    EXPECT_THROW(parseCliOptions({"--config"}), FatalError);
    EXPECT_THROW(parseCliOptions({"--config", "/no/such/file.cfg"}),
                 FatalError);
    std::string path = ::testing::TempDir() + "/relief_cli_nested.cfg";
    {
        std::ofstream out(path);
        out << "--config other.cfg\n";
    }
    EXPECT_THROW(parseCliOptions({"--config", path}), FatalError);
}

TEST(CliTest, ParsesDmaBurst)
{
    auto config = parseCliOptions({"--dma-burst", "4096"});
    EXPECT_EQ(config.soc.dma.burstBytes, 4096u);
    EXPECT_THROW(parseCliOptions({"--dma-burst", "-4"}), FatalError);
}

TEST(CliTest, ParsesStreamForwarding)
{
    auto config = parseCliOptions({"--stream-forwarding"});
    EXPECT_EQ(config.soc.manager.forwardMechanism,
              ForwardMechanism::StreamBuffer);
}

TEST(CliTest, ParsesStatsJsonPath)
{
    EXPECT_EQ(parseCliOptions({}).statsJsonPath, "");
    auto config = parseCliOptions({"--stats-json", "out.json"});
    EXPECT_EQ(config.statsJsonPath, "out.json");
    EXPECT_THROW(parseCliOptions({"--stats-json"}), FatalError);
}

TEST(CliTest, ParsesLatencyBreakdown)
{
    EXPECT_FALSE(parseCliOptions({}).latencyBreakdown);
    EXPECT_TRUE(
        parseCliOptions({"--latency-breakdown"}).latencyBreakdown);
}

TEST(CliTest, DebugFlagsAreAppliedImmediately)
{
    clearDebugFlags();
    auto config = parseCliOptions({"--debug-flags", "Sched,Dma"});
    EXPECT_EQ(config.debugFlags, "Sched,Dma");
    EXPECT_TRUE(debugFlagEnabled(DebugFlag::Sched));
    EXPECT_TRUE(debugFlagEnabled(DebugFlag::Dma));
    EXPECT_FALSE(debugFlagEnabled(DebugFlag::Mem));
    clearDebugFlags();
}

TEST(CliTest, UnknownDebugFlagIsFatal)
{
    clearDebugFlags();
    EXPECT_THROW(parseCliOptions({"--debug-flags", "Sched,Typo"}),
                 FatalError);
    clearDebugFlags();
}

TEST(CliTest, ParsedConfigActuallyRuns)
{
    auto config = parseCliOptions({"--mix", "G", "--policy", "RELIEF-HS",
                                   "--banked-memory", "--limit-ms",
                                   "50"});
    MetricsReport report = runExperiment(config);
    EXPECT_GT(report.run.nodesFinished, 0u);
}

} // namespace
} // namespace relief
