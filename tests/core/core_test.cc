/** @file Tests for the Soc facade, configuration knobs, and the
 *  Section VII / ablation extensions. */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/experiment.hh"
#include "core/periodic.hh"
#include "sched/relief.hh"
#include "support/mini_json.hh"

namespace relief
{
namespace
{

TEST(SocConfigTest, DefaultsMatchTableVI)
{
    SocConfig config;
    EXPECT_EQ(config.policy, PolicyKind::Relief);
    EXPECT_EQ(config.fabric, FabricKind::Bus);
    for (int count : config.instances)
        EXPECT_EQ(count, 1);
    EXPECT_DOUBLE_EQ(config.mem.peakGBs, 12.8);
    EXPECT_DOUBLE_EQ(config.bus.bandwidthGBs, 14.9);
    EXPECT_EQ(config.spmPartitions, 3);
    EXPECT_TRUE(config.reliefFeasibilityCheck);
}

TEST(SocTest, BuildsSevenAcceleratorsByDefault)
{
    Soc soc;
    EXPECT_EQ(soc.accelerators().size(), 7u);
    for (AccType type : allAccTypes)
        EXPECT_EQ(soc.manager().instanceCount(type), 1);
}

TEST(SocTest, InstanceCountsAreHonored)
{
    SocConfig config;
    config.instances[accIndex(AccType::ElemMatrix)] = 3;
    Soc soc(config);
    EXPECT_EQ(soc.accelerators().size(), 9u);
    EXPECT_EQ(soc.manager().instanceCount(AccType::ElemMatrix), 3);
}

TEST(SocTest, SpmPartitionKnobApplies)
{
    SocConfig config;
    config.spmPartitions = 2;
    Soc soc(config);
    for (Accelerator *acc : soc.accelerators())
        EXPECT_EQ(acc->spm().numPartitions(), 2);
}

TEST(SocTest, SpmSizesFollowTableI)
{
    Soc soc;
    for (Accelerator *acc : soc.accelerators()) {
        EXPECT_EQ(acc->spm().config().sizeBytes,
                  defaultSpmBytes(acc->type()))
            << accTypeName(acc->type());
    }
}

TEST(SocTest, ReportBeforeRunIsEmpty)
{
    Soc soc;
    MetricsReport report = soc.report();
    EXPECT_EQ(report.run.nodesFinished, 0u);
    EXPECT_EQ(report.dramBytes, 0u);
    EXPECT_TRUE(report.apps.empty());
}

TEST(ReliefHetSchedTest, FactoryAndScheme)
{
    auto policy = makePolicy(PolicyKind::ReliefHetSched);
    EXPECT_EQ(policy->kind(), PolicyKind::ReliefHetSched);
    EXPECT_EQ(policy->name(), "RELIEF-HS");
    EXPECT_EQ(policy->deadlineScheme(), DeadlineScheme::Sdr);
}

TEST(ReliefHetSchedTest, RunsMixesAndKeepsForwardingAdvantage)
{
    // Section VII: RELIEF over SDR laxity should keep most of the data
    // movement advantage over plain HetSched.
    MetricsReport hs = runMixPolicy("GHL", PolicyKind::ReliefHetSched);
    MetricsReport hetsched = runMixPolicy("GHL", PolicyKind::HetSched);
    EXPECT_GT(hs.forwardFraction(), hetsched.forwardFraction() * 1.5);
    EXPECT_EQ(hs.run.forwards + hs.run.colocations + hs.run.dramEdges,
              hs.run.edgesConsumed);
}

TEST(ReliefGreedyTest, DisablingFeasibilityStillCompletes)
{
    ExperimentConfig config;
    config.soc.policy = PolicyKind::Relief;
    config.soc.reliefFeasibilityCheck = false;
    config.mix = "CGL";
    MetricsReport greedy = runExperiment(config);
    EXPECT_EQ(greedy.run.forwards + greedy.run.colocations +
                  greedy.run.dramEdges,
              greedy.run.edgesConsumed);
    // Greedy promotion never yields fewer forwards than throttled
    // RELIEF — the check only ever suppresses promotions.
    config.soc.reliefFeasibilityCheck = true;
    MetricsReport throttled = runExperiment(config);
    EXPECT_GE(greedy.run.forwards + greedy.run.colocations + 1,
              throttled.run.forwards + throttled.run.colocations);
}

TEST(ReliefGreedyTest, FeasibilityCheckProtectsDeadlinesUnderPressure)
{
    // The motivating scenario from the integration suite: an urgent
    // single-node DAG vs a loose chain of forwarding candidates. With
    // the check disabled the urgent deadline is at risk; with it
    // enabled it must hold.
    auto run_urgent = [](bool check) {
        SocConfig config;
        config.policy = PolicyKind::Relief;
        config.reliefFeasibilityCheck = check;
        config.manager.computeJitter = 0.0;
        Soc soc(config);

        auto chain = std::make_shared<Dag>("loose", 'X');
        Node *prev = nullptr;
        for (int i = 0; i < 8; ++i) {
            TaskParams p;
            p.type = AccType::ElemMatrix;
            p.elems = 256;
            Node *n = chain->addNode(p, "loose." + std::to_string(i));
            n->fixedRuntime = fromUs(100.0);
            if (prev)
                chain->addEdge(prev, n);
            prev = n;
        }
        chain->setRelativeDeadline(fromMs(20.0));
        chain->finalize();

        auto urgent = std::make_shared<Dag>("urgent", 'U');
        TaskParams p;
        p.type = AccType::ElemMatrix;
        p.elems = 256;
        Node *n = urgent->addNode(p, "urgent.0");
        n->fixedRuntime = fromUs(100.0);
        urgent->setRelativeDeadline(fromUs(450.0));
        urgent->finalize();

        soc.submit(chain);
        soc.submit(urgent);
        soc.run(fromMs(50.0));
        for (const AppOutcome &app : soc.report().apps)
            if (app.name == "urgent")
                return app.deadlinesMet == 1;
        return false;
    };
    EXPECT_TRUE(run_urgent(true));
    EXPECT_FALSE(run_urgent(false));
}

TEST(StatsDumpTest, ContainsEverySection)
{
    Soc soc;
    DagPtr dag = buildApp(AppId::Canny);
    soc.submit(dag);
    soc.run(fromMs(50.0));
    std::ostringstream os;
    soc.dumpStats(os);
    std::string stats = os.str();
    for (const char *key :
         {"sim.ticks", "dram.read_bytes", "fabric.occupancy",
          "soc.convolution0.tasks", "soc.elem-matrix0.spm.read_bytes",
          "manager.forwards", "manager.node_deadlines_met",
          "app.canny.iterations", "app.canny.gmean_slowdown"}) {
        EXPECT_NE(stats.find(key), std::string::npos) << key;
    }
    EXPECT_NE(stats.find("Begin Simulation Statistics"),
              std::string::npos);
}

TEST(StatsDumpTest, ValuesMatchReport)
{
    Soc soc;
    soc.submit(buildApp(AppId::Gru));
    soc.run(fromMs(50.0));
    MetricsReport report = soc.report();
    std::ostringstream os;
    soc.dumpStats(os);
    std::string stats = os.str();
    EXPECT_NE(stats.find("manager.colocations"), std::string::npos);
    // The colocation count printed matches the report.
    auto pos = stats.find("manager.colocations");
    auto value_str = stats.substr(pos + 44, 17);
    EXPECT_NE(value_str.find(std::to_string(report.run.colocations)),
              std::string::npos);
}

TEST(StatsDumpTest, RegistryMirrorsTheReport)
{
    Soc soc;
    soc.submit(buildApp(AppId::Gru));
    soc.run(fromMs(50.0));
    MetricsReport report = soc.report();

    const StatRegistry &stats = soc.stats();
    EXPECT_TRUE(stats.contains("sim.ticks"));
    EXPECT_EQ(stats.kind("dram.read_bytes"), StatKind::Counter);
    EXPECT_EQ(stats.kind("fabric.occupancy"), StatKind::Formula);
    EXPECT_EQ(stats.kind("manager.queue_wait_us"), StatKind::Histogram);
    EXPECT_EQ(stats.value("manager.colocations"),
              double(report.run.colocations));
    EXPECT_EQ(stats.value("dram.read_bytes") +
                  stats.value("dram.write_bytes"),
              double(report.dramBytes));
    // Every launch left one queue-wait sample.
    EXPECT_GE(stats.histogram("manager.queue_wait_us").count(),
              report.run.nodesFinished);
    EXPECT_GT(stats.histogram("manager.queue_wait_us").count(), 0u);
}

TEST(StatsDumpTest, JsonExportIsValid)
{
    Soc soc;
    soc.submit(buildApp(AppId::Canny));
    soc.run(fromMs(50.0));
    std::ostringstream os;
    soc.writeStatsJson(os);
    std::string json = os.str();
    EXPECT_TRUE(test::miniJsonValid(json)) << json.substr(0, 400);
    EXPECT_NE(json.find("\"schema\": \"relief-stats-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"dram.read_bytes\""), std::string::npos);
    EXPECT_NE(json.find("\"apps\""), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"canny\""), std::string::npos);
}

TEST(ExperimentTest, RunMixPolicyIsAThinWrapper)
{
    MetricsReport a = runMixPolicy("C", PolicyKind::Fcfs);
    ExperimentConfig config;
    config.soc.policy = PolicyKind::Fcfs;
    config.mix = "C";
    MetricsReport b = runExperiment(config);
    EXPECT_EQ(a.dramBytes, b.dramBytes);
    EXPECT_EQ(a.execTime, b.execTime);
}

TEST(AppOutcomeTest, SlowdownStatistics)
{
    AppOutcome outcome;
    EXPECT_TRUE(outcome.starved());
    EXPECT_TRUE(std::isinf(outcome.meanSlowdown()));
    outcome.iterations = 2;
    outcome.slowdowns = {0.5, 2.0};
    EXPECT_FALSE(outcome.starved());
    EXPECT_NEAR(outcome.meanSlowdown(), 1.0, 1e-9);
    EXPECT_DOUBLE_EQ(outcome.maxSlowdown(), 2.0);
}

TEST(PeriodicTest, SubmitsOneInstancePerPeriod)
{
    Soc soc;
    PeriodicConfig config;
    config.app = AppId::Canny;
    config.period = fromMs(5.0);
    config.count = 3;
    auto dags = submitPeriodic(soc, config);
    ASSERT_EQ(dags.size(), 3u);
    soc.run(fromMs(60.0));
    for (std::size_t i = 0; i < dags.size(); ++i) {
        EXPECT_TRUE(dags[i]->complete());
        EXPECT_EQ(dags[i]->arrivalTick(), Tick(i) * fromMs(5.0));
    }
}

TEST(PeriodicTest, OffsetShiftsArrivals)
{
    Soc soc;
    PeriodicConfig config;
    config.app = AppId::Gru;
    config.count = 1;
    config.offset = fromMs(2.0);
    auto dags = submitPeriodic(soc, config);
    soc.run(fromMs(60.0));
    EXPECT_EQ(dags[0]->arrivalTick(), fromMs(2.0));
}

TEST(PeriodicTest, AggregateMergesInstancesByName)
{
    Soc soc;
    PeriodicConfig config;
    config.app = AppId::Canny;
    config.period = fromMs(17.0);
    config.count = 2;
    submitPeriodic(soc, config);
    soc.run(fromMs(60.0));
    auto apps = aggregateApps(soc.report());
    ASSERT_EQ(apps.size(), 1u);
    const AppOutcome &canny = apps.at("canny");
    EXPECT_EQ(canny.iterations, 2);
    EXPECT_EQ(canny.slowdowns.size(), 2u);
    EXPECT_EQ(canny.deadlinesMet, 2);
}

TEST(PeriodicTest, InstancesGetDistinctSeeds)
{
    Soc soc;
    PeriodicConfig config;
    config.app = AppId::Canny;
    config.count = 2;
    config.appConfig.functional = true;
    auto dags = submitPeriodic(soc, config);
    soc.run(fromMs(60.0));
    ASSERT_TRUE(dags[0]->complete() && dags[1]->complete());
    EXPECT_NE(dags[0]->leaves().front()->outputData,
              dags[1]->leaves().front()->outputData);
}

TEST(MetricsReportTest, TrafficFractionsGuardDivisionByZero)
{
    MetricsReport report;
    EXPECT_DOUBLE_EQ(report.dramTrafficFraction(), 0.0);
    EXPECT_DOUBLE_EQ(report.spmTrafficFraction(), 0.0);
    EXPECT_DOUBLE_EQ(report.forwardFraction(), 0.0);
}

} // namespace
} // namespace relief
