/**
 * @file
 * Tests for the deterministic RNG (core/rng.hh). The golden values pin
 * the exact output streams: arrival schedules in src/serve must be
 * bit-identical across platforms and releases, so any change to these
 * constants is a breaking change to every seeded experiment.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/rng.hh"

namespace relief
{
namespace
{

TEST(SplitMix64Test, MatchesReferenceStream)
{
    // Canonical splitmix64 test vector for seed 0 (Steele et al.).
    SplitMix64 mix(0);
    EXPECT_EQ(mix.next(), 0xe220a8397b1dcdafULL);
    EXPECT_EQ(mix.next(), 0x6e789e6aa1b965f4ULL);
    EXPECT_EQ(mix.next(), 0x06c45d188009454fULL);
}

TEST(SplitMix64Test, DistinctSeedsDistinctStreams)
{
    SplitMix64 a(1);
    SplitMix64 b(2);
    EXPECT_NE(a.next(), b.next());
}

TEST(DeriveSeedTest, GoldenValues)
{
    EXPECT_EQ(deriveSeed(1, 0), 17405687883870564846ULL);
    EXPECT_EQ(deriveSeed(1, 1), 14203960287698257547ULL);
    EXPECT_EQ(deriveSeed(2, 0), 1562650993378815500ULL);
}

TEST(DeriveSeedTest, IsPureFunction)
{
    EXPECT_EQ(deriveSeed(7, 3), deriveSeed(7, 3));
}

TEST(DeriveSeedTest, NoCollisionsOnSmallGrid)
{
    // The combiner must not alias nearby (base, index) pairs — the
    // original base ^ (C + index) form collided at (1, 1) vs (2, 0).
    std::set<std::uint64_t> seen;
    for (std::uint64_t base = 0; base < 32; ++base)
        for (std::uint64_t index = 0; index < 32; ++index)
            seen.insert(deriveSeed(base, index));
    EXPECT_EQ(seen.size(), 32u * 32u);
}

TEST(Xoshiro256ppTest, MatchesReferenceStream)
{
    Xoshiro256pp rng(42);
    EXPECT_EQ(rng.next(), 15021278609987233951ULL);
    EXPECT_EQ(rng.next(), 5881210131331364753ULL);
    EXPECT_EQ(rng.next(), 18149643915985481100ULL);
}

TEST(Xoshiro256ppTest, SameSeedSameStream)
{
    Xoshiro256pp a(123);
    Xoshiro256pp b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256ppTest, UniformInHalfOpenUnitInterval)
{
    Xoshiro256pp rng(1);
    double lo = 1.0, hi = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        lo = std::min(lo, u);
        hi = std::max(hi, u);
    }
    // 10k draws should cover most of the interval.
    EXPECT_LT(lo, 0.01);
    EXPECT_GT(hi, 0.99);
}

TEST(Xoshiro256ppTest, ExponentialHasConfiguredMean)
{
    Xoshiro256pp rng(7);
    const double mean = 5.0;
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        double x = rng.exponential(mean);
        EXPECT_GE(x, 0.0);
        EXPECT_TRUE(std::isfinite(x));
        sum += x;
    }
    // Standard error of the sample mean is mean/sqrt(n) ~ 0.016; a
    // 5-sigma band keeps this deterministic test far from flaky.
    EXPECT_NEAR(sum / n, mean, 5.0 * mean / std::sqrt(double(n)));
}

TEST(Xoshiro256ppTest, UniformIntStaysInBoundAndHitsAll)
{
    Xoshiro256pp rng(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        std::uint64_t v = rng.uniformInt(7);
        EXPECT_LT(v, 7u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u);
    EXPECT_EQ(rng.uniformInt(0), 0u);
    EXPECT_EQ(rng.uniformInt(1), 0u);
}

TEST(Xoshiro256ppTest, PickWeightedRespectsWeights)
{
    Xoshiro256pp rng(11);
    // Zero-weight entries must never be picked.
    std::vector<double> weights = {0.0, 1.0, 0.0, 3.0};
    int counts[4] = {0, 0, 0, 0};
    const int n = 40000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.pickWeighted(weights)];
    EXPECT_EQ(counts[0], 0);
    EXPECT_EQ(counts[2], 0);
    EXPECT_EQ(counts[1] + counts[3], n);
    // P(3) = 0.75; binomial sigma ~ 0.0022, allow 5 sigma.
    EXPECT_NEAR(double(counts[3]) / n, 0.75, 0.011);
}

TEST(Xoshiro256ppTest, PickWeightedDegenerateInputs)
{
    Xoshiro256pp rng(13);
    EXPECT_EQ(rng.pickWeighted({}), 0u);
    EXPECT_EQ(rng.pickWeighted({0.0, 0.0}), 0u);
    EXPECT_EQ(rng.pickWeighted({-1.0, 2.0}), 1u);
}

} // namespace
} // namespace relief
