/** @file Unit tests for convolution and filter factories. */

#include <gtest/gtest.h>

#include "kernels/filters.hh"
#include "sim/logging.hh"

namespace relief
{
namespace
{

Plane
ramp(int w, int h)
{
    Plane p(w, h);
    for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x)
            p.at(x, y) = float(x + 2 * y);
    return p;
}

TEST(FilterTest, SizeLimitsEnforced)
{
    EXPECT_THROW(Filter2D(0), PanicError);
    EXPECT_THROW(Filter2D(6), PanicError);
    EXPECT_NO_THROW(Filter2D(5));
}

TEST(FilterTest, GaussianIsNormalizedAndPeaked)
{
    for (int size : {3, 5}) {
        Filter2D g = gaussianFilter(size);
        EXPECT_NEAR(g.tapSum(), 1.0f, 1e-5);
        int c = size / 2;
        for (int y = 0; y < size; ++y)
            for (int x = 0; x < size; ++x)
                EXPECT_LE(g.at(x, y), g.at(c, c));
    }
}

TEST(FilterTest, BoxIsUniform)
{
    Filter2D box = boxFilter(3);
    EXPECT_NEAR(box.tapSum(), 1.0f, 1e-6);
    EXPECT_FLOAT_EQ(box.at(0, 0), box.at(2, 2));
}

TEST(FilterTest, SobelTapsSumToZero)
{
    EXPECT_FLOAT_EQ(sobelX().tapSum(), 0.0f);
    EXPECT_FLOAT_EQ(sobelY().tapSum(), 0.0f);
}

TEST(FilterTest, FlippedRotates180)
{
    Filter2D f(3);
    f.at(0, 0) = 1.0f;
    f.at(2, 1) = 5.0f;
    Filter2D g = f.flipped();
    EXPECT_FLOAT_EQ(g.at(2, 2), 1.0f);
    EXPECT_FLOAT_EQ(g.at(0, 1), 5.0f);
    // Double flip is identity.
    Filter2D h = g.flipped();
    EXPECT_FLOAT_EQ(h.at(0, 0), 1.0f);
    EXPECT_FLOAT_EQ(h.at(2, 1), 5.0f);
}

TEST(ConvolveTest, IdentityFilterPreservesImage)
{
    Plane img = ramp(8, 8);
    Plane out = convolve(img, identityFilter(3));
    for (int y = 0; y < 8; ++y)
        for (int x = 0; x < 8; ++x)
            EXPECT_FLOAT_EQ(out.at(x, y), img.at(x, y));
}

TEST(ConvolveTest, BoxFilterOnConstantIsConstant)
{
    Plane img(8, 8, 3.5f);
    Plane out = convolve(img, boxFilter(5));
    for (int y = 0; y < 8; ++y)
        for (int x = 0; x < 8; ++x)
            EXPECT_NEAR(out.at(x, y), 3.5f, 1e-5);
}

TEST(ConvolveTest, SobelXDetectsHorizontalGradient)
{
    // f(x, y) = x has constant d/dx; Sobel-X responds with 8 (sum of
    // positive taps times unit step, doubled across two columns).
    Plane img(8, 8);
    for (int y = 0; y < 8; ++y)
        for (int x = 0; x < 8; ++x)
            img.at(x, y) = float(x);
    Plane gx = convolve(img, sobelX());
    Plane gy = convolve(img, sobelY());
    EXPECT_NEAR(gx.at(4, 4), 8.0f, 1e-4);
    EXPECT_NEAR(gy.at(4, 4), 0.0f, 1e-4);
}

TEST(ConvolveTest, GaussianSmoothsAnImpulse)
{
    Plane img(9, 9, 0.0f);
    img.at(4, 4) = 1.0f;
    Plane out = convolve(img, gaussianFilter(5));
    EXPECT_GT(out.at(4, 4), out.at(3, 4));
    EXPECT_GT(out.at(3, 4), out.at(2, 4));
    EXPECT_NEAR(out.sum(), 1.0, 1e-4); // energy preserved
}

TEST(ConvolveTest, BorderClampingKeepsRange)
{
    Plane img = ramp(8, 8);
    Plane out = convolve(img, boxFilter(5));
    EXPECT_GE(out.minValue(), img.minValue());
    EXPECT_LE(out.maxValue(), img.maxValue());
}

} // namespace
} // namespace relief
