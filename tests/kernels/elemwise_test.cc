/** @file Unit tests for elementwise operations. */

#include <gtest/gtest.h>

#include <cmath>

#include "kernels/elemwise.hh"
#include "sim/logging.hh"

namespace relief
{
namespace
{

const std::vector<float> a = {1.0f, 4.0f, -2.0f, 0.25f};
const std::vector<float> b = {2.0f, 0.5f, -1.0f, 4.0f};

TEST(ElemwiseTest, BinaryClassification)
{
    EXPECT_TRUE(elemOpIsBinary(ElemOp::Add));
    EXPECT_TRUE(elemOpIsBinary(ElemOp::Atan2));
    EXPECT_FALSE(elemOpIsBinary(ElemOp::Tanh));
    EXPECT_FALSE(elemOpIsBinary(ElemOp::Scale));
}

TEST(ElemwiseTest, AddSubMulDiv)
{
    auto add = elemwise(ElemOp::Add, a, &b);
    auto sub = elemwise(ElemOp::Sub, a, &b);
    auto mul = elemwise(ElemOp::Mul, a, &b);
    auto div = elemwise(ElemOp::Div, a, &b);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_FLOAT_EQ(add[i], a[i] + b[i]);
        EXPECT_FLOAT_EQ(sub[i], a[i] - b[i]);
        EXPECT_FLOAT_EQ(mul[i], a[i] * b[i]);
        EXPECT_FLOAT_EQ(div[i], a[i] / b[i]);
    }
}

TEST(ElemwiseTest, DivByZeroIsGuarded)
{
    std::vector<float> zero = {0.0f};
    std::vector<float> one = {1.0f};
    auto out = elemwise(ElemOp::Div, one, &zero);
    EXPECT_FLOAT_EQ(out[0], 0.0f);
}

TEST(ElemwiseTest, SqrAndSqrt)
{
    auto sqr = elemwise(ElemOp::Sqr, a);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_FLOAT_EQ(sqr[i], a[i] * a[i]);
    auto root = elemwise(ElemOp::Sqrt, sqr);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_NEAR(root[i], std::abs(a[i]), 1e-5);
}

TEST(ElemwiseTest, SqrtOfNegativeIsZero)
{
    std::vector<float> neg = {-4.0f};
    EXPECT_FLOAT_EQ(elemwise(ElemOp::Sqrt, neg)[0], 0.0f);
}

TEST(ElemwiseTest, Atan2MatchesStdlib)
{
    auto out = elemwise(ElemOp::Atan2, a, &b);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_FLOAT_EQ(out[i], std::atan2(a[i], b[i]));
}

TEST(ElemwiseTest, TanhAndSigmoid)
{
    auto t = elemwise(ElemOp::Tanh, a);
    auto s = elemwise(ElemOp::Sigmoid, a);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_FLOAT_EQ(t[i], std::tanh(a[i]));
        EXPECT_FLOAT_EQ(s[i], 1.0f / (1.0f + std::exp(-a[i])));
        EXPECT_GT(s[i], 0.0f);
        EXPECT_LT(s[i], 1.0f);
    }
}

TEST(ElemwiseTest, ScaleAndOneMinus)
{
    auto scaled = elemwise(ElemOp::Scale, a, nullptr, 2.5f);
    auto omz = elemwise(ElemOp::OneMinus, a);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_FLOAT_EQ(scaled[i], a[i] * 2.5f);
        EXPECT_FLOAT_EQ(omz[i], 1.0f - a[i]);
    }
}

TEST(ElemwiseTest, BinaryWithoutSecondOperandPanics)
{
    EXPECT_THROW(elemwise(ElemOp::Add, a, nullptr), PanicError);
}

TEST(ElemwiseTest, SizeMismatchPanics)
{
    std::vector<float> small = {1.0f};
    EXPECT_THROW(elemwise(ElemOp::Add, a, &small), PanicError);
}

TEST(ElemwiseTest, PlaneOverloadMatchesVectorForm)
{
    Plane p(2, 2);
    p.data() = {1.0f, 2.0f, 3.0f, 4.0f};
    Plane q = elemwise(ElemOp::Sqr, p);
    EXPECT_FLOAT_EQ(q.at(1, 1), 16.0f);
    EXPECT_EQ(q.width(), 2);
    EXPECT_EQ(q.height(), 2);
}

TEST(ElemwiseTest, PlaneShapeMismatchPanics)
{
    Plane p(2, 2), q(3, 2);
    EXPECT_THROW(elemwise(ElemOp::Add, p, &q), PanicError);
}

} // namespace
} // namespace relief
