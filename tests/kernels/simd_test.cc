/**
 * @file
 * Golden bit-identity suite for the SIMD kernel engine: every row
 * primitive of every compiled-in backend must produce *bit-identical*
 * output to the scalar backend (kernels/simd/simd.hh's contract), on
 * shapes chosen to exercise the vector body, the scalar tails, and
 * the degenerate widths below one vector (1x1, prime widths, width <
 * lane count). Plus coverage of the dispatch surface itself: name
 * round-trips, RELIEF_KERNEL_ISA, setKernelIsa forcing.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <random>
#include <vector>

#include "kernels/filters.hh"
#include "kernels/simd/simd.hh"
#include "sim/logging.hh"

using namespace relief;

namespace
{

struct Shape
{
    int w;
    int h;
};

/** Ragged shapes: vector body + tail, width < any lane count, single
 *  pixel, prime dimensions, single row/column. */
const Shape shapes[] = {{1, 1},  {2, 2},  {3, 3},  {5, 5},
                        {7, 3},  {3, 7},  {17, 9}, {31, 7},
                        {64, 33}, {3, 1},  {1, 7}};

/** ISAs we can actually run here: compiled in and CPU-supported. */
std::vector<KernelIsa>
runnableIsas()
{
    std::vector<KernelIsa> out;
    for (KernelIsa isa : compiledKernelIsas())
        if (kernelIsaSupported(isa))
            out.push_back(isa);
    return out;
}

/** Deterministic input with exact zeros and negatives sprinkled in so
 *  the guarded ops (Div, Sqrt, NMS early-outs) take both paths. */
std::vector<float>
makeInput(std::size_t n, std::uint32_t seed)
{
    std::mt19937 rng(seed);
    std::uniform_real_distribution<float> dist(-0.5f, 1.0f);
    std::vector<float> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = dist(rng);
    for (std::size_t i = 0; i < n; i += 7)
        v[i] = 0.0f;
    return v;
}

/** Direction plane spanning all four Canny quantization classes,
 *  positive and negative angles. */
std::vector<float>
makeDirections(std::size_t n)
{
    std::vector<float> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = float(M_PI) * (float(i % 73) / 36.0f - 1.0f);
    return v;
}

void
expectSamePlane(const std::vector<float> &a, const std::vector<float> &b,
                const char *what, KernelIsa isa, Shape s)
{
    ASSERT_EQ(a.size(), b.size());
    bool same = std::memcmp(a.data(), b.data(),
                            a.size() * sizeof(float)) == 0;
    EXPECT_TRUE(same) << what << " not bit-identical under "
                      << kernelIsaName(isa) << " at " << s.w << "x"
                      << s.h;
}

/** Clamped row-pointer window for conv/NMS drivers. */
void
clampedRows(const float *base, int w, int h, int y, int half,
            const float **rows)
{
    for (int fy = -half; fy <= half; ++fy) {
        int yy = std::min(std::max(y + fy, 0), h - 1);
        rows[fy + half] = base + std::size_t(yy) * w;
    }
}

void
runConvPlane(const KernelOps &ops, const std::vector<float> &in,
             const Filter2D &filter, int w, int h,
             std::vector<float> &out)
{
    int half = filter.size() / 2;
    const float *rows[7];
    for (int y = 0; y < h; ++y) {
        clampedRows(in.data(), w, h, y, half, rows);
        ops.convRow(rows, w, filter.taps(), filter.size(),
                    out.data() + std::size_t(y) * w);
    }
}

} // namespace

TEST(SimdDispatchTest, NamesRoundTrip)
{
    for (KernelIsa isa :
         {KernelIsa::Scalar, KernelIsa::Sse42, KernelIsa::Avx2,
          KernelIsa::Neon})
        EXPECT_EQ(kernelIsaFromName(kernelIsaName(isa)), isa);
    EXPECT_THROW(kernelIsaFromName("mmx"), FatalError);
}

TEST(SimdDispatchTest, ScalarAlwaysCompiledAndSupported)
{
    auto compiled = compiledKernelIsas();
    ASSERT_FALSE(compiled.empty());
    EXPECT_EQ(compiled.front(), KernelIsa::Scalar);
    EXPECT_TRUE(kernelIsaSupported(KernelIsa::Scalar));
}

TEST(SimdDispatchTest, SetKernelIsaForcesTheActiveBackend)
{
    for (KernelIsa isa : runnableIsas()) {
        setKernelIsa(isa);
        EXPECT_EQ(activeKernelIsa(), isa);
        EXPECT_EQ(kernelOps().isa, isa);
    }
    resetKernelIsaForTesting();
}

TEST(SimdDispatchTest, EnvironmentOverrideWins)
{
    // gtest_discover_tests runs each test in its own process, so the
    // env mutation cannot leak into other tests.
    ASSERT_EQ(setenv("RELIEF_KERNEL_ISA", "scalar", 1), 0);
    resetKernelIsaForTesting();
    EXPECT_EQ(activeKernelIsa(), KernelIsa::Scalar);
    ASSERT_EQ(unsetenv("RELIEF_KERNEL_ISA"), 0);
    resetKernelIsaForTesting();
}

TEST(SimdDispatchTest, ActiveIsaIsRunnable)
{
    resetKernelIsaForTesting();
    // Whatever the probe picked must be supported here, and its ops
    // table must agree on identity and lane width.
    KernelIsa isa = activeKernelIsa();
    EXPECT_TRUE(kernelIsaSupported(isa));
    const KernelOps &ops = kernelOpsFor(isa);
    EXPECT_EQ(ops.isa, isa);
    EXPECT_GE(ops.laneWidth, 1);
}

TEST(SimdDispatchTest, ElemOpVectorizedClassification)
{
    // Transcendentals are scalar by contract (libm bit-identity).
    EXPECT_FALSE(elemOpVectorized(ElemOp::Atan2));
    EXPECT_FALSE(elemOpVectorized(ElemOp::Tanh));
    EXPECT_FALSE(elemOpVectorized(ElemOp::Sigmoid));
    for (ElemOp op : {ElemOp::Add, ElemOp::Sub, ElemOp::Mul,
                      ElemOp::Div, ElemOp::Sqr, ElemOp::Sqrt,
                      ElemOp::Scale, ElemOp::OneMinus})
        EXPECT_TRUE(elemOpVectorized(op));
}

TEST(SimdGoldenTest, ConvRowsMatchScalarBitwise)
{
    const KernelOps &scalar = kernelOpsFor(KernelIsa::Scalar);
    for (KernelIsa isa : runnableIsas()) {
        const KernelOps &ops = kernelOpsFor(isa);
        for (Shape s : shapes) {
            std::size_t n = std::size_t(s.w) * s.h;
            auto in = makeInput(n, 11);
            std::vector<float> ref(n), got(n);
            for (const Filter2D &filter :
                 {sobelX(), sobelY(), gaussianFilter(3),
                  gaussianFilter(5), boxFilter(5)}) {
                runConvPlane(scalar, in, filter, s.w, s.h, ref);
                runConvPlane(ops, in, filter, s.w, s.h, got);
                expectSamePlane(ref, got, "convRow", isa, s);
            }
        }
    }
}

TEST(SimdGoldenTest, SeparableConvMatchesScalarBitwise)
{
    const KernelOps &scalar = kernelOpsFor(KernelIsa::Scalar);
    std::vector<float> taps = gaussianTaps1d(5);
    for (KernelIsa isa : runnableIsas()) {
        const KernelOps &ops = kernelOpsFor(isa);
        for (Shape s : shapes) {
            std::size_t n = std::size_t(s.w) * s.h;
            auto in = makeInput(n, 12);
            std::vector<float> ref(n), got(n);
            for (int y = 0; y < s.h; ++y) {
                scalar.sepConvRowH(in.data() + std::size_t(y) * s.w,
                                   s.w, taps.data(), int(taps.size()),
                                   ref.data() + std::size_t(y) * s.w);
                ops.sepConvRowH(in.data() + std::size_t(y) * s.w, s.w,
                                taps.data(), int(taps.size()),
                                got.data() + std::size_t(y) * s.w);
            }
            expectSamePlane(ref, got, "sepConvRowH", isa, s);

            std::vector<float> vref(n), vgot(n);
            const float *rows[5];
            for (int y = 0; y < s.h; ++y) {
                clampedRows(in.data(), s.w, s.h, y, 2, rows);
                scalar.sepConvRowV(rows, s.w, taps.data(),
                                   int(taps.size()),
                                   vref.data() + std::size_t(y) * s.w);
                ops.sepConvRowV(rows, s.w, taps.data(),
                                int(taps.size()),
                                vgot.data() + std::size_t(y) * s.w);
            }
            expectSamePlane(vref, vgot, "sepConvRowV", isa, s);
        }
    }
}

TEST(SimdGoldenTest, CannyNmsMatchesScalarBitwise)
{
    const KernelOps &scalar = kernelOpsFor(KernelIsa::Scalar);
    for (KernelIsa isa : runnableIsas()) {
        const KernelOps &ops = kernelOpsFor(isa);
        for (Shape s : shapes) {
            std::size_t n = std::size_t(s.w) * s.h;
            auto mag = makeInput(n, 13);
            // Magnitudes are non-negative in the real pipeline; keep
            // ties in the data so >= vs > asymmetries would show.
            for (float &m : mag)
                m = std::fabs(m);
            auto dir = makeDirections(n);
            std::vector<float> ref(n), got(n);
            const float *rows[3];
            for (int y = 0; y < s.h; ++y) {
                clampedRows(mag.data(), s.w, s.h, y, 1, rows);
                scalar.cannyNmsRow(rows,
                                   dir.data() + std::size_t(y) * s.w,
                                   s.w,
                                   ref.data() + std::size_t(y) * s.w);
                ops.cannyNmsRow(rows,
                                dir.data() + std::size_t(y) * s.w, s.w,
                                got.data() + std::size_t(y) * s.w);
            }
            expectSamePlane(ref, got, "cannyNmsRow", isa, s);
        }
    }
}

TEST(SimdGoldenTest, HarrisNmsMatchesScalarBitwise)
{
    const KernelOps &scalar = kernelOpsFor(KernelIsa::Scalar);
    for (KernelIsa isa : runnableIsas()) {
        const KernelOps &ops = kernelOpsFor(isa);
        for (Shape s : shapes) {
            std::size_t n = std::size_t(s.w) * s.h;
            auto in = makeInput(n, 14); // mixed signs: the <= 0 gate
            std::vector<float> ref(n), got(n);
            const float *rows[3];
            for (int y = 0; y < s.h; ++y) {
                clampedRows(in.data(), s.w, s.h, y, 1, rows);
                scalar.harrisNmsRow(rows, s.w,
                                    ref.data() + std::size_t(y) * s.w);
                ops.harrisNmsRow(rows, s.w,
                                 got.data() + std::size_t(y) * s.w);
            }
            expectSamePlane(ref, got, "harrisNmsRow", isa, s);
        }
    }
}

TEST(SimdGoldenTest, Bt601AndCcmClampMatchScalarBitwise)
{
    const KernelOps &scalar = kernelOpsFor(KernelIsa::Scalar);
    const float ccm[3][3] = {{1.7f, -0.5f, -0.2f},
                             {-0.3f, 1.6f, -0.3f},
                             {-0.2f, -0.5f, 1.7f}};
    for (KernelIsa isa : runnableIsas()) {
        const KernelOps &ops = kernelOpsFor(isa);
        for (Shape s : shapes) {
            std::size_t n = std::size_t(s.w) * s.h;
            auto r = makeInput(n, 15);
            auto g = makeInput(n, 16);
            auto b = makeInput(n, 17);

            std::vector<float> ref(n), got(n);
            scalar.bt601(r.data(), g.data(), b.data(), ref.data(), n);
            ops.bt601(r.data(), g.data(), b.data(), got.data(), n);
            expectSamePlane(ref, got, "bt601", isa, s);

            auto r2 = r, g2 = g, b2 = b;
            auto r3 = r, g3 = g, b3 = b;
            scalar.ccmClamp(r2.data(), g2.data(), b2.data(), n, ccm);
            ops.ccmClamp(r3.data(), g3.data(), b3.data(), n, ccm);
            expectSamePlane(r2, r3, "ccmClamp (r)", isa, s);
            expectSamePlane(g2, g3, "ccmClamp (g)", isa, s);
            expectSamePlane(b2, b3, "ccmClamp (b)", isa, s);
        }
    }
}

TEST(SimdGoldenTest, ElemwiseOpsMatchScalarBitwise)
{
    const KernelOps &scalar = kernelOpsFor(KernelIsa::Scalar);
    for (KernelIsa isa : runnableIsas()) {
        const KernelOps &ops = kernelOpsFor(isa);
        for (Shape s : shapes) {
            std::size_t n = std::size_t(s.w) * s.h;
            auto a = makeInput(n, 18); // has exact zeros: Div guard
            auto b = makeInput(n, 19);
            std::vector<float> ref(n), got(n);
            for (ElemOp op :
                 {ElemOp::Add, ElemOp::Sub, ElemOp::Mul, ElemOp::Div,
                  ElemOp::Sqr, ElemOp::Sqrt, ElemOp::Scale,
                  ElemOp::OneMinus}) {
                scalar.elemRow(op, a.data(), b.data(), 0.75f,
                               ref.data(), n);
                ops.elemRow(op, a.data(), b.data(), 0.75f, got.data(),
                            n);
                expectSamePlane(ref, got, "elemRow", isa, s);
                // Both must also agree with the shared scalar
                // reference loop (the pre-SIMD semantics).
                std::vector<float> pre(n);
                elemScalarRow(op, a.data(), b.data(), 0.75f,
                              pre.data(), n);
                expectSamePlane(pre, got, "elemRow vs elemScalarRow",
                                isa, s);
            }
        }
    }
}

TEST(SimdGoldenTest, GradMagAndRnnGateMatchScalarBitwise)
{
    const KernelOps &scalar = kernelOpsFor(KernelIsa::Scalar);
    for (KernelIsa isa : runnableIsas()) {
        const KernelOps &ops = kernelOpsFor(isa);
        for (Shape s : shapes) {
            std::size_t n = std::size_t(s.w) * s.h;
            auto gx = makeInput(n, 20);
            auto gy = makeInput(n, 21);
            std::vector<float> ref(n), got(n);
            scalar.gradMag(gx.data(), gy.data(), ref.data(), n);
            ops.gradMag(gx.data(), gy.data(), got.data(), n);
            expectSamePlane(ref, got, "gradMag", isa, s);
            // gradMag must also equal the unfused Sqr/Sqr/Add/Sqrt
            // elemwise chain it replaces.
            std::vector<float> x2(n), y2(n), sum(n), chain(n);
            elemScalarRow(ElemOp::Sqr, gx.data(), nullptr, 1.0f,
                          x2.data(), n);
            elemScalarRow(ElemOp::Sqr, gy.data(), nullptr, 1.0f,
                          y2.data(), n);
            elemScalarRow(ElemOp::Add, x2.data(), y2.data(), 1.0f,
                          sum.data(), n);
            elemScalarRow(ElemOp::Sqrt, sum.data(), nullptr, 1.0f,
                          chain.data(), n);
            expectSamePlane(chain, got, "gradMag vs elemwise chain",
                            isa, s);

            auto w = makeInput(n, 22);
            auto x = makeInput(n, 23);
            auto u = makeInput(n, 24);
            auto h = makeInput(n, 25);
            auto bias = makeInput(n, 26);
            scalar.rnnGatePre(w.data(), x.data(), u.data(), h.data(),
                              bias.data(), ref.data(), n);
            ops.rnnGatePre(w.data(), x.data(), u.data(), h.data(),
                           bias.data(), got.data(), n);
            expectSamePlane(ref, got, "rnnGatePre", isa, s);
        }
    }
}
