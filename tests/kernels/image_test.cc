/** @file Unit tests for image containers and the synthetic scene. */

#include <gtest/gtest.h>

#include "kernels/image.hh"

namespace relief
{
namespace
{

TEST(PlaneTest, ConstructsWithFill)
{
    Plane p(4, 3, 2.0f);
    EXPECT_EQ(p.width(), 4);
    EXPECT_EQ(p.height(), 3);
    EXPECT_EQ(p.size(), 12u);
    EXPECT_FLOAT_EQ(p.at(3, 2), 2.0f);
}

TEST(PlaneTest, RowMajorAddressing)
{
    Plane p(3, 2);
    p.data() = {0, 1, 2, 3, 4, 5};
    EXPECT_FLOAT_EQ(p.at(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(p.at(2, 0), 2.0f);
    EXPECT_FLOAT_EQ(p.at(0, 1), 3.0f);
    EXPECT_FLOAT_EQ(p.at(2, 1), 5.0f);
}

TEST(PlaneTest, ClampedAccessAtBorders)
{
    Plane p(2, 2);
    p.data() = {1, 2, 3, 4};
    EXPECT_FLOAT_EQ(p.clampedAt(-5, -5), 1.0f);
    EXPECT_FLOAT_EQ(p.clampedAt(10, 0), 2.0f);
    EXPECT_FLOAT_EQ(p.clampedAt(0, 10), 3.0f);
    EXPECT_FLOAT_EQ(p.clampedAt(10, 10), 4.0f);
}

TEST(PlaneTest, Statistics)
{
    Plane p(2, 2);
    p.data() = {-1.0f, 2.0f, 3.0f, 4.0f};
    EXPECT_FLOAT_EQ(p.minValue(), -1.0f);
    EXPECT_FLOAT_EQ(p.maxValue(), 4.0f);
    EXPECT_DOUBLE_EQ(p.sum(), 8.0);
}

TEST(PlaneTest, SameShape)
{
    EXPECT_TRUE(Plane(3, 4).sameShape(Plane(3, 4)));
    EXPECT_FALSE(Plane(3, 4).sameShape(Plane(4, 3)));
}

TEST(RgbImageTest, AllPlanesShareShape)
{
    RgbImage img(5, 7);
    EXPECT_EQ(img.width(), 5);
    EXPECT_EQ(img.height(), 7);
    EXPECT_TRUE(img.r.sameShape(img.g));
    EXPECT_TRUE(img.g.sameShape(img.b));
}

TEST(SyntheticSceneTest, DeterministicForSameSeed)
{
    BayerImage a = makeSyntheticScene(64, 64, 42);
    BayerImage b = makeSyntheticScene(64, 64, 42);
    EXPECT_EQ(a.data, b.data);
}

TEST(SyntheticSceneTest, DifferentSeedsDiffer)
{
    BayerImage a = makeSyntheticScene(64, 64, 1);
    BayerImage b = makeSyntheticScene(64, 64, 2);
    EXPECT_NE(a.data, b.data);
}

TEST(SyntheticSceneTest, SamplesWithinSensorRange)
{
    BayerImage img = makeSyntheticScene(128, 128, 7);
    for (auto v : img.data)
        EXPECT_LE(v, 4095);
}

TEST(SyntheticSceneTest, ContainsBrightAndDarkRegions)
{
    BayerImage img = makeSyntheticScene(128, 128, 7);
    // Inside the bright rectangle vs inside the dark disc.
    EXPECT_GT(img.at(30, 30), img.at(96, 96));
}

} // namespace
} // namespace relief
