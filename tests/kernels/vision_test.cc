/** @file Unit tests for the vision kernels and reference pipelines. */

#include <gtest/gtest.h>

#include <cmath>

#include "kernels/elemwise.hh"
#include "kernels/vision.hh"
#include "sim/logging.hh"

namespace relief
{
namespace
{

TEST(IspTest, OutputsNormalizedRgb)
{
    BayerImage raw = makeSyntheticScene(64, 64, 3);
    RgbImage rgb = isp(raw);
    EXPECT_EQ(rgb.width(), 64);
    EXPECT_EQ(rgb.height(), 64);
    for (const Plane *p : {&rgb.r, &rgb.g, &rgb.b}) {
        EXPECT_GE(p->minValue(), 0.0f);
        EXPECT_LE(p->maxValue(), 1.0f);
    }
}

TEST(IspTest, BrightRegionStaysBright)
{
    BayerImage raw = makeSyntheticScene(128, 128, 3);
    RgbImage rgb = isp(raw);
    // Rectangle (bright yellow-ish) vs disc (dark blue-ish).
    EXPECT_GT(rgb.r.at(30, 30), rgb.r.at(96, 96));
    EXPECT_GT(rgb.g.at(30, 30), rgb.g.at(96, 96));
}

TEST(GrayscaleTest, MatchesLumaFormula)
{
    RgbImage rgb(2, 1);
    rgb.r.at(0, 0) = 1.0f;
    rgb.g.at(1, 0) = 1.0f;
    Plane gray = grayscale(rgb);
    EXPECT_NEAR(gray.at(0, 0), 0.299f, 1e-5);
    EXPECT_NEAR(gray.at(1, 0), 0.587f, 1e-5);
}

TEST(GrayscaleTest, GrayInputIsIdentity)
{
    RgbImage rgb(4, 4);
    for (int y = 0; y < 4; ++y)
        for (int x = 0; x < 4; ++x) {
            rgb.r.at(x, y) = 0.5f;
            rgb.g.at(x, y) = 0.5f;
            rgb.b.at(x, y) = 0.5f;
        }
    Plane gray = grayscale(rgb);
    for (int y = 0; y < 4; ++y)
        for (int x = 0; x < 4; ++x)
            EXPECT_NEAR(gray.at(x, y), 0.5f, 1e-5);
}

TEST(CannyNonMaxTest, SuppressesNonPeaks)
{
    // Vertical edge: magnitude ridge along x = 2, gradient pointing in
    // +x (direction 0) — neighbors across the ridge must be removed.
    Plane mag(5, 5, 0.0f);
    for (int y = 0; y < 5; ++y) {
        mag.at(1, y) = 0.5f;
        mag.at(2, y) = 1.0f;
        mag.at(3, y) = 0.5f;
    }
    Plane dir(5, 5, 0.0f); // atan2(0, positive) = 0 -> horizontal check
    Plane out = cannyNonMax(mag, dir);
    for (int y = 1; y < 4; ++y) {
        EXPECT_FLOAT_EQ(out.at(2, y), 1.0f);
        EXPECT_FLOAT_EQ(out.at(1, y), 0.0f);
        EXPECT_FLOAT_EQ(out.at(3, y), 0.0f);
    }
}

TEST(CannyNonMaxTest, DirectionQuantizationUsesPerpendicularAxis)
{
    // Gradient pointing in +y (angle pi/2): compare along y.
    Plane mag(3, 5, 0.0f);
    mag.at(1, 1) = 0.5f;
    mag.at(1, 2) = 1.0f;
    mag.at(1, 3) = 0.5f;
    Plane dir(3, 5, float(M_PI / 2.0));
    Plane out = cannyNonMax(mag, dir);
    EXPECT_FLOAT_EQ(out.at(1, 2), 1.0f);
    EXPECT_FLOAT_EQ(out.at(1, 1), 0.0f);
}

TEST(EdgeTrackingTest, HysteresisConnectsWeakToStrong)
{
    Plane nms(7, 1, 0.0f);
    nms.at(0, 0) = 1.0f;  // strong
    nms.at(1, 0) = 0.08f; // weak, connected to strong
    nms.at(2, 0) = 0.08f; // weak, connected transitively
    nms.at(5, 0) = 0.08f; // weak, isolated
    Plane out = edgeTracking(nms, 0.05f, 0.15f);
    EXPECT_FLOAT_EQ(out.at(0, 0), 1.0f);
    EXPECT_FLOAT_EQ(out.at(1, 0), 1.0f);
    EXPECT_FLOAT_EQ(out.at(2, 0), 1.0f);
    EXPECT_FLOAT_EQ(out.at(5, 0), 0.0f);
}

TEST(EdgeTrackingTest, BadThresholdsPanic)
{
    Plane nms(4, 4, 0.0f);
    EXPECT_THROW(edgeTracking(nms, 0.5f, 0.1f), PanicError);
}

TEST(EdgeTrackingTest, OutputIsBinary)
{
    BayerImage raw = makeSyntheticScene(64, 64, 5);
    Plane gray = grayscale(isp(raw));
    Plane out = edgeTracking(gray, 0.3f, 0.6f);
    for (float v : out.data())
        EXPECT_TRUE(v == 0.0f || v == 1.0f);
}

TEST(HarrisNonMaxTest, KeepsOnlyLocalMaxima)
{
    Plane resp(5, 5, 0.1f);
    resp.at(2, 2) = 1.0f;
    Plane out = harrisNonMax(resp);
    EXPECT_FLOAT_EQ(out.at(2, 2), 1.0f);
    EXPECT_FLOAT_EQ(out.at(1, 2), 0.0f);
    // A plateau of equal values survives (>=, not >): corners of the
    // uniform border region away from the peak are their own maxima.
    EXPECT_FLOAT_EQ(out.at(0, 4), 0.1f);
}

TEST(HarrisNonMaxTest, NegativeResponsesSuppressed)
{
    Plane resp(3, 3, -1.0f);
    Plane out = harrisNonMax(resp);
    for (float v : out.data())
        EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(CannyReferenceTest, FindsEdgesOfSyntheticScene)
{
    BayerImage raw = makeSyntheticScene(128, 128, 1);
    Plane edges = cannyReference(raw);
    int active = 0;
    for (float v : edges.data())
        active += v != 0.0f;
    // The scene has a rectangle and a disc: a few hundred edge pixels,
    // far fewer than half the image.
    EXPECT_GT(active, 100);
    EXPECT_LT(active, 16384 / 2);
}

TEST(CannyReferenceTest, EdgePixelsLieNearShapeBoundaries)
{
    BayerImage raw = makeSyntheticScene(128, 128, 1);
    Plane edges = cannyReference(raw);
    // The rectangle's left boundary at x = 16 spans y in [16, 64).
    int near_boundary = 0;
    for (int y = 20; y < 60; ++y)
        for (int x = 14; x <= 18; ++x)
            near_boundary += edges.at(x, y) != 0.0f;
    EXPECT_GT(near_boundary, 20);
}

TEST(HarrisReferenceTest, RespondsNearRectangleCorners)
{
    BayerImage raw = makeSyntheticScene(128, 128, 1);
    Plane corners = harrisReference(raw);
    auto region_max = [&](int cx, int cy) {
        float best = 0.0f;
        for (int y = cy - 5; y <= cy + 5; ++y)
            for (int x = cx - 5; x <= cx + 5; ++x)
                best = std::max(best, corners.clampedAt(x, y));
        return best;
    };
    // Rectangle corners at (16,16), (64,16), (16,64), (64,64).
    EXPECT_GT(region_max(16, 16), 0.0f);
    EXPECT_GT(region_max(64, 64), 0.0f);
    // Flat interior has (numerically) negligible corner response —
    // orders of magnitude below the real corners.
    EXPECT_LT(region_max(40, 40), region_max(16, 16) * 1e-3f);
}

TEST(RichardsonLucyTest, SharpensABlurredImage)
{
    // Blur a synthetic scene, deconvolve, and check the result is
    // closer to the original than the blurred input was.
    BayerImage raw = makeSyntheticScene(64, 64, 9);
    Plane truth = grayscale(isp(raw));
    Filter2D psf = gaussianFilter(5, 1.2f);
    Plane blurred = convolve(truth, psf);
    Plane restored = richardsonLucy(blurred, psf, 10);

    auto mse = [&](const Plane &a) {
        double err = 0.0;
        for (std::size_t i = 0; i < a.size(); ++i) {
            double d = double(a.data()[i]) - double(truth.data()[i]);
            err += d * d;
        }
        return err / double(a.size());
    };
    EXPECT_LT(mse(restored), mse(blurred) * 0.8);
}

TEST(RichardsonLucyTest, MoreIterationsDoNotHurtEarly)
{
    BayerImage raw = makeSyntheticScene(64, 64, 9);
    Plane truth = grayscale(isp(raw));
    Filter2D psf = gaussianFilter(5, 1.2f);
    Plane blurred = convolve(truth, psf);
    auto mse = [&](const Plane &a) {
        double err = 0.0;
        for (std::size_t i = 0; i < a.size(); ++i) {
            double d = double(a.data()[i]) - double(truth.data()[i]);
            err += d * d;
        }
        return err / double(a.size());
    };
    double e1 = mse(richardsonLucy(blurred, psf, 1));
    double e5 = mse(richardsonLucy(blurred, psf, 5));
    EXPECT_LT(e5, e1);
}

TEST(RichardsonLucyTest, ZeroIterationsPanics)
{
    Plane img(4, 4, 0.5f);
    EXPECT_THROW(richardsonLucy(img, gaussianFilter(3), 0), PanicError);
}

} // namespace
} // namespace relief
