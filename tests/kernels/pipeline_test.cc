/**
 * @file
 * Row-tiled pipeline (kernels/pipeline.hh) and scratch-pool
 * (kernels/scratch.hh) tests: fused pipelines must be bit-identical
 * to the unfused whole-plane chains they replace, and the pool must
 * recycle deterministically under reset.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <random>

#include "kernels/elemwise.hh"
#include "kernels/filters.hh"
#include "kernels/pipeline.hh"
#include "kernels/scratch.hh"
#include "kernels/vision.hh"

using namespace relief;

namespace
{

Plane
makePlane(int w, int h, std::uint32_t seed)
{
    std::mt19937 rng(seed);
    std::uniform_real_distribution<float> dist(0.0f, 1.0f);
    Plane p(w, h);
    for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x)
            p.at(x, y) = dist(rng);
    return p;
}

void
expectSamePlane(const Plane &a, const Plane &b, const char *what)
{
    ASSERT_TRUE(a.sameShape(b));
    bool same = std::memcmp(a.data().data(), b.data().data(),
                            a.size() * sizeof(float)) == 0;
    EXPECT_TRUE(same) << what << " not bit-identical at " << a.width()
                      << "x" << a.height();
}

const int shapes[][2] = {{1, 1}, {3, 3}, {17, 9}, {31, 7}, {40, 24}};

} // namespace

TEST(RowPipelineTest, SingleConvStageMatchesConvolve)
{
    for (auto [w, h] : shapes) {
        Plane in = makePlane(w, h, 31);
        Plane fused = runRowPipeline(in, {convStage(gaussianFilter(5))});
        Plane ref = convolve(in, gaussianFilter(5));
        expectSamePlane(ref, fused, "conv stage");
    }
}

TEST(RowPipelineTest, ChainedStagesMatchUnfusedChain)
{
    for (auto [w, h] : shapes) {
        Plane in = makePlane(w, h, 32);
        Plane ext = makePlane(w, h, 33);
        // blur -> sobel -> Sqr -> Mul by ext: mixes conv, map, and
        // zip stages with different radii.
        Plane fused = runRowPipeline(
            in, {convStage(gaussianFilter(3)), convStage(sobelX()),
                 mapStage(ElemOp::Sqr),
                 zipStage(ElemOp::Mul, &ext, /*ext_first=*/false)});
        Plane blur = convolve(in, gaussianFilter(3));
        Plane gx = convolve(blur, sobelX());
        Plane sq = elemwise(ElemOp::Sqr, gx);
        Plane ref = elemwise(ElemOp::Mul, sq, &ext);
        expectSamePlane(ref, fused, "conv/map/zip chain");
    }
}

TEST(RowPipelineTest, ZipStageOperandOrderMatters)
{
    Plane in = makePlane(13, 11, 34);
    Plane ext = makePlane(13, 11, 35);
    // Sub is not commutative: ext_first selects ext - in.
    Plane a = runRowPipeline(in, {zipStage(ElemOp::Sub, &ext, true)});
    Plane ref_a = elemwise(ElemOp::Sub, ext, &in);
    expectSamePlane(ref_a, a, "zip ext_first");
    Plane b = runRowPipeline(in, {zipStage(ElemOp::Sub, &ext, false)});
    Plane ref_b = elemwise(ElemOp::Sub, in, &ext);
    expectSamePlane(ref_b, b, "zip ext second");
}

TEST(RowPipelineTest, CannyNmsFromGrayMatchesUnfusedChain)
{
    for (auto [w, h] : shapes) {
        Plane gray = makePlane(w, h, 36);
        Plane fused = cannyNmsFromGray(gray, gaussianFilter(5));

        Plane smooth = convolve(gray, gaussianFilter(5));
        Plane gx = convolve(smooth, sobelX());
        Plane gy = convolve(smooth, sobelY());
        Plane gx2 = elemwise(ElemOp::Sqr, gx);
        Plane gy2 = elemwise(ElemOp::Sqr, gy);
        Plane sum = elemwise(ElemOp::Add, gx2, &gy2);
        Plane mag = elemwise(ElemOp::Sqrt, sum);
        Plane dir = elemwise(ElemOp::Atan2, gy, &gx);
        Plane ref = cannyNonMax(mag, dir);
        expectSamePlane(ref, fused, "cannyNmsFromGray");
    }
}

TEST(RowPipelineTest, RichardsonLucyStaysDeterministic)
{
    // richardsonLucy now runs per-iteration row pipelines; two calls
    // with the same inputs must agree bitwise (pooled scratch reuse
    // must not leak state between runs).
    Plane blurred = makePlane(21, 17, 37);
    Filter2D psf = gaussianFilter(5);
    Plane a = richardsonLucy(blurred, psf, 4);
    Plane b = richardsonLucy(blurred, psf, 4);
    expectSamePlane(a, b, "richardsonLucy repeat");
}

TEST(ScratchPoolTest, RecyclesBuffersAndCounts)
{
    resetKernelScratch();
    ScratchPool &pool = ScratchPool::forThread();
    EXPECT_EQ(pool.reuses(), 0u);
    EXPECT_EQ(pool.allocs(), 0u);
    {
        ScratchVec v(64);
        EXPECT_EQ(v.size(), 64u);
    }
    EXPECT_EQ(pool.allocs(), 1u);
    EXPECT_EQ(pool.reuses(), 0u);
    {
        // Released storage is served back out, zero-filled.
        ScratchVec v(32);
        for (std::size_t i = 0; i < v.size(); ++i)
            EXPECT_EQ(v.data()[i], 0.0f);
    }
    EXPECT_EQ(pool.reuses(), 1u);
    EXPECT_EQ(pool.allocs(), 1u);
    resetKernelScratch();
    EXPECT_EQ(pool.reuses(), 0u);
    EXPECT_EQ(pool.allocs(), 0u);
}

TEST(ScratchPoolTest, ScratchPlaneIsZeroFilledLikeAFreshPlane)
{
    resetKernelScratch();
    {
        // Dirty a pooled buffer first...
        ScratchVec v(100);
        for (std::size_t i = 0; i < v.size(); ++i)
            v.data()[i] = 7.0f;
    }
    ScratchPlane p(10, 10);
    for (int y = 0; y < 10; ++y)
        for (int x = 0; x < 10; ++x)
            EXPECT_EQ(p->at(x, y), 0.0f);
}

TEST(ScratchPoolTest, PipelinesReuseAcrossCalls)
{
    resetKernelScratch();
    ScratchPool &pool = ScratchPool::forThread();
    Plane gray = makePlane(24, 18, 38);
    cannyNmsFromGray(gray, gaussianFilter(5));
    std::uint64_t allocs_first = pool.allocs();
    EXPECT_GT(allocs_first, 0u);
    cannyNmsFromGray(gray, gaussianFilter(5));
    // The second run draws its rings from the pool: reuses grew, and
    // fresh allocations did not.
    EXPECT_EQ(pool.allocs(), allocs_first);
    EXPECT_GT(pool.reuses(), 0u);
}
