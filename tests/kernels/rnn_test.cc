/** @file Unit tests for the elementwise GRU/LSTM cells. */

#include <gtest/gtest.h>

#include <cmath>

#include "kernels/rnn.hh"
#include "sim/logging.hh"

namespace relief
{
namespace
{

std::vector<Vec>
makeSequence(int len, int hidden, std::uint32_t seed)
{
    std::uint32_t rng = seed;
    std::vector<Vec> xs;
    for (int t = 0; t < len; ++t) {
        Vec x(std::size_t(hidden), 0.0f);
        for (auto &v : x) {
            rng = rng * 1664525u + 1013904223u;
            v = float(rng % 1000) / 1000.0f - 0.5f;
        }
        xs.push_back(x);
    }
    return xs;
}

TEST(RnnWeightsTest, DeterministicAndBounded)
{
    GruWeights a = makeGruWeights(16, 9);
    GruWeights b = makeGruWeights(16, 9);
    EXPECT_EQ(a.wz, b.wz);
    EXPECT_EQ(a.uc, b.uc);
    for (float v : a.wz) {
        EXPECT_GE(v, -0.5f);
        EXPECT_LE(v, 0.5f);
    }
    EXPECT_EQ(a.wz.size(), 16u);
}

TEST(GruTest, StepKeepsStateBounded)
{
    GruWeights w = makeGruWeights(32, 3);
    Vec h(32, 0.0f);
    for (const Vec &x : makeSequence(10, 32, 11)) {
        h = gruStep(x, h, w);
        for (float v : h) {
            EXPECT_GE(v, -1.0f);
            EXPECT_LE(v, 1.0f);
        }
    }
}

TEST(GruTest, ZeroStateStepUsesOnlyInputPath)
{
    // With h = 0: z = sigmoid(wz*x + bz), c = tanh(wc*x + bc),
    // h' = z * c — verify one element by hand.
    GruWeights w = makeGruWeights(4, 5);
    Vec x = {0.3f, -0.2f, 0.8f, 0.0f};
    Vec h(4, 0.0f);
    Vec out = gruStep(x, h, w);
    for (int i = 0; i < 4; ++i) {
        float z = 1.0f / (1.0f + std::exp(-(w.wz[std::size_t(i)] *
                                                x[std::size_t(i)] +
                                            w.bz[std::size_t(i)])));
        float c = std::tanh(w.wc[std::size_t(i)] * x[std::size_t(i)] +
                            w.bc[std::size_t(i)]);
        EXPECT_NEAR(out[std::size_t(i)], z * c, 1e-5);
    }
}

TEST(GruTest, SequenceEqualsManualStepping)
{
    GruWeights w = makeGruWeights(8, 21);
    auto xs = makeSequence(5, 8, 33);
    Vec manual(8, 0.0f);
    for (const Vec &x : xs)
        manual = gruStep(x, manual, w);
    EXPECT_EQ(gruSequence(xs, w), manual);
}

TEST(GruTest, SizeMismatchPanics)
{
    GruWeights w = makeGruWeights(8, 2);
    Vec x(8, 0.0f), h(4, 0.0f);
    EXPECT_THROW(gruStep(x, h, w), PanicError);
}

TEST(LstmTest, StepKeepsHiddenBounded)
{
    LstmWeights w = makeLstmWeights(32, 4);
    LstmState s;
    s.h.assign(32, 0.0f);
    s.c.assign(32, 0.0f);
    for (const Vec &x : makeSequence(10, 32, 12)) {
        s = lstmStep(x, s, w);
        for (float v : s.h) {
            EXPECT_GE(v, -1.0f);
            EXPECT_LE(v, 1.0f);
        }
    }
}

TEST(LstmTest, ZeroStateStepMatchesHandComputation)
{
    LstmWeights w = makeLstmWeights(4, 6);
    Vec x = {0.5f, -0.1f, 0.2f, 0.9f};
    LstmState s;
    s.h.assign(4, 0.0f);
    s.c.assign(4, 0.0f);
    LstmState out = lstmStep(x, s, w);
    for (int idx = 0; idx < 4; ++idx) {
        std::size_t i = std::size_t(idx);
        auto sig = [](float v) { return 1.0f / (1.0f + std::exp(-v)); };
        float ii = sig(w.wi[i] * x[i] + w.bi[i]);
        float oo = sig(w.wo[i] * x[i] + w.bo[i]);
        float gg = std::tanh(w.wc[i] * x[i] + w.bc[i]);
        float cc = ii * gg; // f * c_0 = 0
        EXPECT_NEAR(out.c[i], cc, 1e-5);
        EXPECT_NEAR(out.h[i], oo * std::tanh(cc), 1e-5);
    }
}

TEST(LstmTest, SequenceEqualsManualStepping)
{
    LstmWeights w = makeLstmWeights(8, 31);
    auto xs = makeSequence(6, 8, 44);
    LstmState manual;
    manual.h.assign(8, 0.0f);
    manual.c.assign(8, 0.0f);
    for (const Vec &x : xs)
        manual = lstmStep(x, manual, w);
    LstmState seq = lstmSequence(xs, w);
    EXPECT_EQ(seq.h, manual.h);
    EXPECT_EQ(seq.c, manual.c);
}

TEST(LstmTest, ForgetGateCarriesState)
{
    // Two different inputs must generally produce different cells.
    LstmWeights w = makeLstmWeights(8, 13);
    auto xs1 = makeSequence(4, 8, 1);
    auto xs2 = makeSequence(4, 8, 2);
    EXPECT_NE(lstmSequence(xs1, w).c, lstmSequence(xs2, w).c);
}

TEST(RnnTest, EmptySequencePanics)
{
    GruWeights gw = makeGruWeights(4, 1);
    LstmWeights lw = makeLstmWeights(4, 1);
    EXPECT_THROW(gruSequence({}, gw), PanicError);
    EXPECT_THROW(lstmSequence({}, lw), PanicError);
}

} // namespace
} // namespace relief
