/** @file Unit tests for the contention scenarios (Section IV-C). */

#include <gtest/gtest.h>

#include <set>

#include "workload/scenario.hh"

namespace relief
{
namespace
{

TEST(ScenarioTest, LowContentionIsEverySingleApp)
{
    auto mixes = mixesFor(Contention::Low);
    EXPECT_EQ(mixes, (std::vector<std::string>{"C", "D", "G", "H", "L"}));
}

TEST(ScenarioTest, MediumContentionIsAllPairs)
{
    auto mixes = mixesFor(Contention::Medium);
    EXPECT_EQ(mixes.size(), 10u);
    EXPECT_EQ(mixes.front(), "CD");
    EXPECT_EQ(mixes.back(), "HL");
    std::set<std::string> unique(mixes.begin(), mixes.end());
    EXPECT_EQ(unique.size(), mixes.size());
}

TEST(ScenarioTest, HighContentionIsAllTriples)
{
    auto mixes = mixesFor(Contention::High);
    EXPECT_EQ(mixes.size(), 10u); // C(5,3)
    EXPECT_EQ(mixes.front(), "CDG");
    EXPECT_EQ(mixes.back(), "GHL");
}

TEST(ScenarioTest, ContinuousUsesTheSameTriples)
{
    EXPECT_EQ(mixesFor(Contention::Continuous),
              mixesFor(Contention::High));
}

TEST(ScenarioTest, MixesAreValidApplicationSymbols)
{
    for (Contention level :
         {Contention::Low, Contention::Medium, Contention::High}) {
        for (const std::string &mix : mixesFor(level)) {
            EXPECT_NO_THROW(parseMix(mix)) << mix;
        }
    }
}

TEST(ScenarioTest, Names)
{
    EXPECT_STREQ(contentionName(Contention::Low), "low");
    EXPECT_STREQ(contentionName(Contention::Medium), "medium");
    EXPECT_STREQ(contentionName(Contention::High), "high");
    EXPECT_STREQ(contentionName(Contention::Continuous), "continuous");
}

TEST(ScenarioTest, WindowMatchesPaper)
{
    EXPECT_EQ(continuousWindow, fromMs(50.0));
}

} // namespace
} // namespace relief
