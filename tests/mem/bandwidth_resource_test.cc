/** @file Unit tests for the pipelined bandwidth-server model. */

#include <gtest/gtest.h>

#include "mem/bandwidth_resource.hh"
#include "sim/logging.hh"

namespace relief
{
namespace
{

TEST(BandwidthResourceTest, HoldTimeIsLatencyPlusBytesOverBandwidth)
{
    BandwidthResource res("r", 1.0, fromNs(10.0)); // 1 B/ns
    EXPECT_EQ(res.holdTime(100), fromNs(110.0));
}

TEST(BandwidthResourceTest, BackToBackClaimsQueueFifo)
{
    BandwidthResource res("r", 1.0, 0);
    Tick s1 = res.claim(0, 100);
    Tick s2 = res.claim(0, 50);
    EXPECT_EQ(s1, 0u);
    EXPECT_EQ(s2, fromNs(100.0)); // waits for the first transfer
    EXPECT_EQ(res.nextFree(), fromNs(150.0));
}

TEST(BandwidthResourceTest, IdleGapsAreRespected)
{
    BandwidthResource res("r", 1.0, 0);
    res.claim(0, 100);
    Tick s = res.claim(fromNs(500.0), 100);
    EXPECT_EQ(s, fromNs(500.0));
}

TEST(BandwidthResourceTest, TracksBytesAndTransfers)
{
    BandwidthResource res("r", 2.0, 0);
    res.claim(0, 100);
    res.claim(0, 200);
    EXPECT_EQ(res.totalBytes(), 300u);
    EXPECT_EQ(res.numTransfers(), 2u);
}

TEST(BandwidthResourceTest, OccupancyCountsBusyFraction)
{
    BandwidthResource res("r", 1.0, 0); // 1 B/ns
    res.claim(0, 100); // busy [0, 100ns)
    EXPECT_DOUBLE_EQ(res.occupancy(fromNs(200.0)), 0.5);
    EXPECT_DOUBLE_EQ(res.occupancy(fromNs(100.0)), 1.0);
}

TEST(BandwidthResourceTest, ZeroBandwidthIsRejected)
{
    EXPECT_THROW(BandwidthResource("bad", 0.0, 0), PanicError);
}

TEST(BandwidthResourceTest, ResetStatsKeepsTimeline)
{
    BandwidthResource res("r", 1.0, 0);
    res.claim(0, 100);
    res.resetStats();
    EXPECT_EQ(res.totalBytes(), 0u);
    // The reservation timeline is preserved: new claims still queue.
    EXPECT_EQ(res.claim(0, 10), fromNs(100.0));
}

TEST(ReserveTransferTest, BottleneckSetsDuration)
{
    BandwidthResource fast("fast", 10.0, 0);
    BandwidthResource slow("slow", 1.0, 0);
    auto timing = reserveTransfer({&fast, &slow}, 0, 100);
    EXPECT_EQ(timing.start, 0u);
    EXPECT_EQ(timing.end, fromNs(100.0)); // limited by 1 GB/s
}

TEST(ReserveTransferTest, LatenciesAccumulate)
{
    BandwidthResource a("a", 1.0, fromNs(10.0));
    BandwidthResource b("b", 1.0, fromNs(30.0));
    auto timing = reserveTransfer({&a, &b}, 0, 100);
    EXPECT_EQ(timing.end, fromNs(140.0));
}

TEST(ReserveTransferTest, StartWaitsForBusiestResource)
{
    BandwidthResource a("a", 1.0, 0);
    BandwidthResource b("b", 1.0, 0);
    a.claim(0, 500); // a busy until 500 ns
    auto timing = reserveTransfer({&a, &b}, 0, 100);
    EXPECT_EQ(timing.start, fromNs(500.0));
    EXPECT_EQ(timing.end, fromNs(600.0));
}

TEST(ReserveTransferTest, EachResourceChargedItsOwnRate)
{
    BandwidthResource fast("fast", 10.0, 0);
    BandwidthResource slow("slow", 1.0, 0);
    reserveTransfer({&fast, &slow}, 0, 100);
    // The fast resource frees up earlier than the slow one.
    EXPECT_EQ(fast.nextFree(), fromNs(10.0));
    EXPECT_EQ(slow.nextFree(), fromNs(100.0));
}

TEST(ReserveTransferTest, EmptyPathPanics)
{
    EXPECT_THROW(reserveTransfer({}, 0, 10), PanicError);
}

} // namespace
} // namespace relief
