/** @file Unit tests for the LPDDR5-like main-memory model. */

#include <gtest/gtest.h>

#include "mem/main_memory.hh"

namespace relief
{
namespace
{

TEST(MainMemoryTest, EffectiveBandwidthIsPeakTimesEfficiency)
{
    Simulator sim;
    MainMemoryConfig config;
    config.peakGBs = 12.8;
    config.efficiency = 0.5;
    MainMemory mem(sim, "dram", config);
    EXPECT_DOUBLE_EQ(mem.channel().bandwidth(), 6.4);
}

TEST(MainMemoryTest, DefaultsMatchTableVI)
{
    Simulator sim;
    MainMemory mem(sim, "dram");
    EXPECT_DOUBLE_EQ(mem.config().peakGBs, 12.8);
    EXPECT_GT(mem.channel().bandwidth(), 6.0);
    EXPECT_LT(mem.channel().bandwidth(), 8.0);
}

TEST(MainMemoryTest, TrafficAccounting)
{
    Simulator sim;
    MainMemory mem(sim, "dram");
    mem.recordRead(1000);
    mem.recordWrite(500);
    mem.recordRead(1000);
    EXPECT_EQ(mem.readBytes(), 2000u);
    EXPECT_EQ(mem.writeBytes(), 500u);
    EXPECT_EQ(mem.totalBytes(), 2500u);
}

TEST(MainMemoryTest, EnergyScalesWithBytes)
{
    Simulator sim;
    MainMemoryConfig config;
    config.readEnergyPJPerByte = 10.0;
    config.writeEnergyPJPerByte = 20.0;
    MainMemory mem(sim, "dram", config);
    mem.recordRead(100);
    mem.recordWrite(100);
    EXPECT_DOUBLE_EQ(mem.energyPJ(), 3000.0);
}

TEST(MainMemoryTest, ResetClearsCounters)
{
    Simulator sim;
    MainMemory mem(sim, "dram");
    mem.recordRead(100);
    mem.channel().claim(0, 64);
    mem.resetStats();
    EXPECT_EQ(mem.totalBytes(), 0u);
    EXPECT_EQ(mem.channel().totalBytes(), 0u);
}

TEST(MainMemoryTest, StreamingTimeMatchesTableICalibration)
{
    // A 192 KiB elem-matrix working set (two inputs + one output)
    // should take roughly Table I's 30.44 us at the default effective
    // bandwidth.
    Simulator sim;
    MainMemory mem(sim, "dram");
    Tick t = transferTime(3 * 65536, mem.channel().bandwidth());
    EXPECT_NEAR(toUs(t), 30.44, 4.0);
}

} // namespace
} // namespace relief
