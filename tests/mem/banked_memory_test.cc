/** @file Unit tests for the bank-aware DRAM model. */

#include <gtest/gtest.h>

#include <set>

#include "mem/banked_memory.hh"

namespace relief
{
namespace
{

BankedMemoryConfig
simpleConfig()
{
    BankedMemoryConfig config;
    config.peakGBs = 10.0;
    config.accessLatency = 0;
    config.numBanks = 4;
    config.bankEfficiency = 0.5;
    config.bankLatency = 0;
    return config;
}

TEST(BankedMemoryTest, ChannelRunsAtPeak)
{
    Simulator sim;
    BankedMemory mem(sim, "dram", simpleConfig());
    EXPECT_DOUBLE_EQ(mem.channel().bandwidth(), 10.0);
    EXPECT_EQ(mem.numBanks(), 4);
    EXPECT_DOUBLE_EQ(mem.bank(0).bandwidth(), 5.0);
}

TEST(BankedMemoryTest, PathContainsBankThenChannel)
{
    Simulator sim;
    BankedMemory mem(sim, "dram", simpleConfig());
    auto path = mem.path(1);
    ASSERT_EQ(path.size(), 2u);
    EXPECT_EQ(path[1], &mem.channel());
}

TEST(BankedMemoryTest, SameStreamHitsSameBank)
{
    Simulator sim;
    BankedMemory mem(sim, "dram", simpleConfig());
    EXPECT_EQ(mem.path(42)[0], mem.path(42)[0]);
}

TEST(BankedMemoryTest, StreamsSpreadAcrossBanks)
{
    Simulator sim;
    BankedMemory mem(sim, "dram", simpleConfig());
    std::set<BandwidthResource *> banks;
    for (std::uint64_t hint = 1; hint <= 32; ++hint)
        banks.insert(mem.path(hint)[0]);
    EXPECT_GT(banks.size(), 1u);
}

TEST(BankedMemoryTest, SingleStreamIsBankLimited)
{
    Simulator sim;
    BankedMemory mem(sim, "dram", simpleConfig());
    auto t = reserveTransfer(mem.path(7), 0, 1000);
    // 1000 B at the 5 GB/s bank rate = 200 ns.
    EXPECT_EQ(t.end, fromNs(200.0));
}

TEST(BankedMemoryTest, IndependentStreamsOverlapUntilChannelSaturates)
{
    Simulator sim;
    BankedMemoryConfig config = simpleConfig();
    BankedMemory mem(sim, "dram", config);

    // Find two hints mapping to different banks.
    std::uint64_t a = 1, b = 2;
    while (mem.path(a)[0] == mem.path(b)[0])
        ++b;
    auto t1 = reserveTransfer(mem.path(a), 0, 1000);
    auto t2 = reserveTransfer(mem.path(b), 0, 1000);
    // Different banks: the second transfer only waits on the shared
    // channel (100 ns of channel time claimed by the first).
    EXPECT_EQ(t1.end, fromNs(200.0));
    EXPECT_LT(t2.end, fromNs(400.0)); // would be 400 if serialized
}

TEST(BankedMemoryTest, SameBankStreamsSerialize)
{
    Simulator sim;
    BankedMemory mem(sim, "dram", simpleConfig());
    auto t1 = reserveTransfer(mem.path(7), 0, 1000);
    auto t2 = reserveTransfer(mem.path(7), 0, 1000);
    EXPECT_EQ(t1.end, fromNs(200.0));
    EXPECT_EQ(t2.end, fromNs(400.0));
}

TEST(BankedMemoryTest, ResetClearsBankStats)
{
    Simulator sim;
    BankedMemory mem(sim, "dram", simpleConfig());
    reserveTransfer(mem.path(3), 0, 1000);
    mem.resetStats();
    for (int i = 0; i < mem.numBanks(); ++i)
        EXPECT_EQ(mem.bank(i).totalBytes(), 0u);
    EXPECT_EQ(mem.channel().totalBytes(), 0u);
}

TEST(BankedMemoryTest, WorksAsSocBackend)
{
    // Compile/behaviour check through the polymorphic interface.
    Simulator sim;
    auto config = simpleConfig();
    std::unique_ptr<MainMemory> mem =
        std::make_unique<BankedMemory>(sim, "dram", config);
    EXPECT_EQ(mem->path(5).size(), 2u);
    mem->recordRead(128);
    EXPECT_EQ(mem->readBytes(), 128u);
}

} // namespace
} // namespace relief
