/** @file Unit tests for scratchpad partition management. */

#include <gtest/gtest.h>

#include "mem/scratchpad.hh"
#include "sim/logging.hh"

namespace relief
{
namespace
{

class ScratchpadTest : public ::testing::Test
{
  protected:
    Simulator sim;
    Scratchpad spm{sim, "spm", ScratchpadConfig{}};
};

TEST_F(ScratchpadTest, DefaultsToThreePartitions)
{
    EXPECT_EQ(spm.numPartitions(), 3);
    for (int i = 0; i < spm.numPartitions(); ++i) {
        EXPECT_EQ(spm.partition(i).owner, 0u);
        EXPECT_FALSE(spm.partition(i).dataValid);
    }
}

TEST_F(ScratchpadTest, AllocatePreferEmptyPartitions)
{
    EXPECT_EQ(spm.findFreeOutputPartition(), 0);
    spm.allocateOutput(0, 1, 100);
    EXPECT_EQ(spm.findFreeOutputPartition(), 1);
    spm.allocateOutput(1, 2, 100);
    EXPECT_EQ(spm.findFreeOutputPartition(), 2);
}

TEST_F(ScratchpadTest, OutputInvisibleUntilProduced)
{
    spm.allocateOutput(0, 7, 100);
    EXPECT_EQ(spm.findOutput(7), -1);
    spm.produceOutput(0);
    EXPECT_EQ(spm.findOutput(7), 0);
}

TEST_F(ScratchpadTest, OngoingReadsBlockReclaim)
{
    for (int i = 0; i < 3; ++i) {
        spm.allocateOutput(i, NodeId(i + 1), 100);
        spm.produceOutput(i);
    }
    spm.beginRead(0);
    spm.beginRead(1);
    spm.beginRead(2);
    EXPECT_EQ(spm.findFreeOutputPartition(), -1);
    spm.endRead(1);
    EXPECT_EQ(spm.findFreeOutputPartition(), 1);
}

TEST_F(ScratchpadTest, LruVictimAmongReclaimable)
{
    // Produce into 0 then 1 at increasing times; 0 is the older data.
    spm.allocateOutput(0, 1, 100);
    spm.produceOutput(0);
    sim.at(100, [&] {
        spm.allocateOutput(1, 2, 100);
        spm.produceOutput(1);
    });
    sim.run();
    spm.allocateOutput(2, 3, 100); // fill the empty one
    spm.produceOutput(2);
    spm.beginRead(2);
    EXPECT_EQ(spm.findFreeOutputPartition(), 0);
}

TEST_F(ScratchpadTest, ExclusionMaskSkipsPartitions)
{
    EXPECT_EQ(spm.findFreeOutputPartition(0b001), 1);
    EXPECT_EQ(spm.findFreeOutputPartition(0b011), 2);
    EXPECT_EQ(spm.findFreeOutputPartition(0b111), -1);
}

TEST_F(ScratchpadTest, ReadCountingIsBalanced)
{
    spm.allocateOutput(0, 5, 100);
    spm.produceOutput(0);
    spm.beginRead(0);
    spm.beginRead(0);
    EXPECT_EQ(spm.partition(0).ongoingReads, 2u);
    spm.endRead(0);
    spm.endRead(0);
    EXPECT_EQ(spm.partition(0).ongoingReads, 0u);
    EXPECT_THROW(spm.endRead(0), PanicError);
}

TEST_F(ScratchpadTest, ReleaseWithReadersPanics)
{
    spm.allocateOutput(0, 5, 100);
    spm.produceOutput(0);
    spm.beginRead(0);
    EXPECT_THROW(spm.release(0), PanicError);
    spm.endRead(0);
    spm.release(0);
    EXPECT_EQ(spm.partition(0).owner, 0u);
}

TEST_F(ScratchpadTest, AllocateOverReadersPanics)
{
    spm.allocateOutput(0, 5, 100);
    spm.produceOutput(0);
    spm.beginRead(0);
    EXPECT_THROW(spm.allocateOutput(0, 6, 100), PanicError);
}

TEST_F(ScratchpadTest, ReadingInvalidPartitionPanics)
{
    spm.allocateOutput(0, 5, 100);
    EXPECT_THROW(spm.beginRead(0), PanicError);
}

TEST_F(ScratchpadTest, WrittenBackFlag)
{
    spm.allocateOutput(0, 5, 100);
    spm.produceOutput(0);
    EXPECT_FALSE(spm.partition(0).writtenBack);
    spm.markWrittenBack(0);
    EXPECT_TRUE(spm.partition(0).writtenBack);
    // Reallocation clears the flag.
    spm.release(0);
    spm.allocateOutput(0, 6, 100);
    EXPECT_FALSE(spm.partition(0).writtenBack);
}

TEST_F(ScratchpadTest, EnergyTracksTraffic)
{
    ScratchpadConfig config;
    config.readEnergyPJPerByte = 1.0;
    config.writeEnergyPJPerByte = 2.0;
    Scratchpad s(sim, "s", config);
    s.recordRead(100);
    s.recordWrite(100);
    EXPECT_DOUBLE_EQ(s.energyPJ(), 300.0);
}

TEST_F(ScratchpadTest, FindOutputOnlyMatchesOwner)
{
    spm.allocateOutput(0, 5, 100);
    spm.produceOutput(0);
    EXPECT_EQ(spm.findOutput(6), -1);
    EXPECT_EQ(spm.findOutput(5), 0);
}

} // namespace
} // namespace relief
