/** @file Unit tests for the memory-pressure attribution ledger. */

#include <gtest/gtest.h>

#include <sstream>

#include "mem/banked_memory.hh"
#include "mem/bandwidth_resource.hh"
#include "mem/pressure_ledger.hh"
#include "sim/logging.hh"

namespace relief
{
namespace
{

RequestorTag
tag(int source, int qos = 0,
    PressureTraffic traffic = PressureTraffic::DramFetch)
{
    RequestorTag t;
    t.source = std::int16_t(source);
    t.qosClass = std::uint8_t(qos);
    t.traffic = traffic;
    return t;
}

TEST(PressureLedgerTest, KeyMappingRoundTrips)
{
    PressureLedger ledger;
    int a = ledger.addSource("accA");
    int b = ledger.addSource("accB");
    int rt = ledger.addQosClass("realtime");
    BandwidthResource res("r", 1.0, 0);
    ledger.addResource(res);
    ledger.seal();

    EXPECT_EQ(ledger.numSources(), 2);
    EXPECT_EQ(ledger.numQosClasses(), 2); // implicit "default" + one
    EXPECT_EQ(ledger.numKeys(), 1 + 2 * 2 * numPressureTraffic);

    for (int src : {a, b}) {
        for (int qos : {0, rt}) {
            for (int t = 0; t < numPressureTraffic; ++t) {
                int key =
                    ledger.keyFor(tag(src, qos, PressureTraffic(t)));
                EXPECT_GT(key, 0);
                EXPECT_LT(key, ledger.numKeys());
                EXPECT_EQ(ledger.keySource(key), src);
                EXPECT_EQ(ledger.keyQos(key), qos);
                EXPECT_EQ(int(ledger.keyTraffic(key)), t);
            }
        }
    }
}

TEST(PressureLedgerTest, UntaggedAndOutOfRangeMapToKeyZero)
{
    PressureLedger ledger;
    ledger.addSource("accA");
    BandwidthResource res("r", 1.0, 0);
    ledger.addResource(res);
    ledger.seal();

    EXPECT_EQ(ledger.keyFor(RequestorTag{}), 0);
    EXPECT_EQ(ledger.keyFor(tag(7)), 0);  // source never registered
    EXPECT_EQ(ledger.keyFor(tag(0, 9)), 0); // class never registered
    EXPECT_EQ(ledger.keySource(0), -1);
}

TEST(PressureLedgerTest, SufferedDelayMatchesResourceAggregate)
{
    PressureLedger ledger;
    ledger.addSource("accA");
    ledger.addSource("accB");
    BandwidthResource res("r", 1.0, 0); // 1 B/ns
    int id = ledger.addResource(res);
    ledger.seal();

    res.claim(0, 100, 0, tag(0));             // [0, 100ns), no wait
    res.claim(0, 50, 0, tag(1));              // waits 100 ns
    res.claim(fromNs(120.0), 50, fromNs(120.0), tag(0)); // waits 30 ns

    EXPECT_EQ(res.waitTime(), fromNs(130.0));
    PressureLedger::Slot total = ledger.resourceTotal(id);
    EXPECT_EQ(total.waitSuffered, res.waitTime());
    EXPECT_EQ(total.bytes, res.totalBytes());
    EXPECT_EQ(total.transfers, res.numTransfers());
    // Every picosecond suffered is attributed to somebody.
    EXPECT_EQ(total.waitCaused, total.waitSuffered);
}

TEST(PressureLedgerTest, WaiterBlamesTheHolder)
{
    PressureLedger ledger;
    ledger.addSource("holder");
    ledger.addSource("waiter");
    BandwidthResource res("r", 1.0, 0);
    int id = ledger.addResource(res);
    ledger.seal();

    res.claim(0, 100, 0, tag(0)); // holds [0, 100ns)
    res.claim(0, 10, 0, tag(1));  // requests at 0, starts at 100 ns

    const auto &holder = ledger.slot(id, ledger.keyFor(tag(0)));
    const auto &waiter = ledger.slot(id, ledger.keyFor(tag(1)));
    EXPECT_EQ(holder.waitSuffered, 0u);
    EXPECT_EQ(holder.waitCaused, fromNs(100.0));
    EXPECT_EQ(waiter.waitSuffered, fromNs(100.0));
    EXPECT_EQ(waiter.waitCaused, 0u);
}

TEST(PressureLedgerTest, IdleGapIsBlamedOnTheNextHolder)
{
    PressureLedger ledger;
    ledger.addSource("late");
    ledger.addSource("waiter");
    BandwidthResource res("r", 1.0, 0);
    int id = ledger.addResource(res);
    ledger.seal();

    // The pipe idles over [0, 50ns), then "late" holds [50, 150ns).
    res.claim(fromNs(50.0), 100, fromNs(50.0), tag(0));
    // "waiter" asked at 0 and is pushed to 150 ns; the idle gap it
    // sat through is charged to the reservation that spans past it.
    res.claim(0, 10, 0, tag(1));

    const auto &late = ledger.slot(id, ledger.keyFor(tag(0)));
    const auto &waiter = ledger.slot(id, ledger.keyFor(tag(1)));
    EXPECT_EQ(waiter.waitSuffered, fromNs(150.0));
    EXPECT_EQ(late.waitCaused, fromNs(150.0));
}

TEST(PressureLedgerTest, ConservationHoldsAcrossRingRecycling)
{
    PressureLedger ledger;
    ledger.addSource("a");
    ledger.addSource("b");
    BandwidthResource res("r", 1.0, 0);
    int id = ledger.addResource(res);
    ledger.seal();

    // Far more claims than the ring's initial capacity, alternating
    // sources, with request times advancing so old entries expire and
    // the ring recycles in place rather than growing.
    Tick ask = 0;
    for (int i = 0; i < 1000; ++i) {
        ask += fromNs(30.0);
        res.claim(ask, 100, ask, tag(i % 2));
    }
    PressureLedger::Slot total = ledger.resourceTotal(id);
    EXPECT_EQ(total.transfers, 1000u);
    EXPECT_EQ(total.bytes, res.totalBytes());
    EXPECT_EQ(total.waitSuffered, res.waitTime());
    EXPECT_EQ(total.waitCaused, total.waitSuffered);
    EXPECT_GT(total.waitSuffered, 0u);
}

TEST(PressureLedgerTest, QueueDepthCountsOutstandingReservations)
{
    PressureLedger ledger;
    ledger.addSource("a");
    BandwidthResource res("r", 1.0, 0);
    int id = ledger.addResource(res);
    ledger.seal();

    EXPECT_EQ(ledger.queueDepth(id, 0), 0);
    res.claim(0, 100, 0, tag(0)); // [0, 100ns)
    res.claim(0, 100, 0, tag(0)); // [100, 200ns)
    res.claim(0, 100, 0, tag(0)); // [200, 300ns)
    EXPECT_EQ(ledger.queueDepth(id, 0), 3);
    EXPECT_EQ(ledger.queueDepth(id, fromNs(150.0)), 2);
    EXPECT_EQ(ledger.queueDepth(id, fromNs(250.0)), 1);
    EXPECT_EQ(ledger.queueDepth(id, fromNs(300.0)), 0);
}

TEST(PressureLedgerTest, TopContendersSortByDelayCaused)
{
    PressureLedger ledger;
    ledger.addSource("big");
    ledger.addSource("small");
    BandwidthResource res("r", 1.0, 0);
    int id = ledger.addResource(res);
    ledger.seal();

    res.claim(0, 1000, 0, tag(0)); // holds 1000 ns
    res.claim(0, 10, 0, tag(1));   // waits 1000 ns behind "big"
    res.claim(0, 10, 0, tag(1));   // waits 1010 ns more

    auto rows = ledger.topContenders(id, 8);
    ASSERT_EQ(rows.size(), 2u);
    // "big" caused 1000 ns; "small"'s first claim caused the second
    // one 10 ns of the 1010 it waited — still far less than "big".
    EXPECT_EQ(ledger.keySource(rows[0].key), 0);
    EXPECT_GT(rows[0].slot.waitCaused, rows[1].slot.waitCaused);
    auto top1 = ledger.topContenders(id, 1);
    ASSERT_EQ(top1.size(), 1u);
    EXPECT_EQ(top1[0].key, rows[0].key);
}

TEST(PressureLedgerTest, ResetStatsClearsSlotsAndRings)
{
    PressureLedger ledger;
    ledger.addSource("a");
    BandwidthResource res("r", 1.0, 0);
    int id = ledger.addResource(res);
    ledger.seal();

    res.claim(0, 100, 0, tag(0));
    ledger.resetStats();
    EXPECT_EQ(ledger.resourceTotal(id).transfers, 0u);
    EXPECT_EQ(ledger.queueDepth(id, 0), 0);
}

TEST(PressureLedgerTest, TaggedReserveTransferChargesEveryResource)
{
    PressureLedger ledger;
    ledger.addSource("a");
    BandwidthResource first("first", 1.0, 0);
    BandwidthResource second("second", 2.0, 0);
    int f = ledger.addResource(first);
    int s = ledger.addResource(second);
    ledger.seal();

    reserveTransfer({&first, &second}, 0, 100, tag(0));
    EXPECT_EQ(ledger.resourceTotal(f).bytes, 100u);
    EXPECT_EQ(ledger.resourceTotal(s).bytes, 100u);
    // Each resource's hold reflects its own rate.
    EXPECT_EQ(ledger.resourceTotal(f).serviceTicks, fromNs(100.0));
    EXPECT_EQ(ledger.resourceTotal(s).serviceTicks, fromNs(50.0));
}

TEST(PressureLedgerTest, ChainWaitIsMeasuredAgainstRequestTime)
{
    PressureLedger ledger;
    ledger.addSource("a");
    BandwidthResource busy("busy", 1.0, 0);
    BandwidthResource idle("idle", 1.0, 0);
    int busy_id = ledger.addResource(busy);
    int idle_id = ledger.addResource(idle);
    ledger.seal();

    busy.claim(0, 500, 0, tag(0)); // busy until 500 ns
    reserveTransfer({&busy, &idle}, 0, 100, tag(0));
    // The whole chain started at 500 ns. The busy pipe's backlog
    // caused that wait; the idle pipe just started late and charged
    // nothing — matching each resource's own waitTime() counter.
    EXPECT_EQ(ledger.resourceTotal(busy_id).waitSuffered, fromNs(500.0));
    EXPECT_EQ(ledger.resourceTotal(idle_id).waitSuffered, 0u);
    EXPECT_EQ(busy.waitTime(), fromNs(500.0));
    EXPECT_EQ(idle.waitTime(), 0u);
}

TEST(PressureLedgerTest, WriteJsonEmitsSchemaAndBalancedBooks)
{
    PressureLedger ledger;
    ledger.addSource("accA");
    ledger.addQosClass("realtime");
    BandwidthResource res("r", 1.0, 0);
    ledger.addResource(res);
    ledger.seal();

    res.claim(0, 100, 0, tag(0, 1, PressureTraffic::Writeback));
    res.claim(0, 100, 0, tag(0, 1, PressureTraffic::DramFetch));

    std::ostringstream out;
    ledger.writeJson(out, fromNs(200.0), 8, {}, "relief-pressure-v1");
    std::string doc = out.str();
    EXPECT_NE(doc.find("\"schema\": \"relief-pressure-v1\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"realtime\""), std::string::npos);
    EXPECT_NE(doc.find("\"writeback\""), std::string::npos);
    EXPECT_NE(doc.find("\"contenders\""), std::string::npos);

    std::ostringstream embedded;
    ledger.writeJson(embedded, fromNs(200.0), 8, {}, nullptr);
    EXPECT_EQ(embedded.str().find("\"schema\""), std::string::npos);
}

// --- BankedMemory contention through the ledger ---

BankedMemoryConfig
bankedConfig()
{
    BankedMemoryConfig config;
    config.peakGBs = 10.0;
    config.accessLatency = 0;
    config.numBanks = 4;
    config.bankEfficiency = 0.5;
    config.bankLatency = 0;
    return config;
}

/** Hints mapping to distinct banks (probed via path identity). */
std::pair<std::uint64_t, std::uint64_t>
distinctBankHints(BankedMemory &mem)
{
    for (std::uint64_t h = 2; h < 64; ++h)
        if (mem.path(h)[0] != mem.path(1)[0])
            return {1, h};
    ADD_FAILURE() << "no distinct-bank hint found";
    return {1, 1};
}

TEST(BankedPressureTest, SameBankStreamsSerializeWithMutualBlame)
{
    Simulator sim;
    BankedMemory mem(sim, "dram", bankedConfig());
    PressureLedger ledger;
    ledger.addSource("accA");
    ledger.addSource("accB");
    for (BandwidthResource *res : mem.pressureResources())
        ledger.addResource(*res);
    ledger.seal();

    auto path = mem.path(1);
    int bank_id = path[0]->ledgerId();
    ASSERT_GE(bank_id, 0);

    // Two streams on the same bank: the second serializes behind the
    // first for the bank's full hold (1 MiB at 5 GB/s ~ 200 us).
    const std::uint64_t bytes = 1 << 20;
    auto t1 = reserveTransfer(path, 0, bytes, tag(0));
    auto t2 = reserveTransfer(mem.path(1), 0, bytes, tag(1));
    EXPECT_GE(t2.start, t1.end - mem.channel().holdTime(bytes));

    const auto &first = ledger.slot(bank_id, ledger.keyFor(tag(0)));
    const auto &second = ledger.slot(bank_id, ledger.keyFor(tag(1)));
    EXPECT_GT(second.waitSuffered, 0u);
    EXPECT_EQ(first.waitCaused, second.waitSuffered);
    EXPECT_EQ(second.waitCaused, first.waitSuffered);
}

TEST(BankedPressureTest, DistinctBanksOverlapAndAggregateOnChannel)
{
    Simulator sim;
    BankedMemory mem(sim, "dram", bankedConfig());
    PressureLedger ledger;
    ledger.addSource("accA");
    ledger.addSource("accB");
    for (BandwidthResource *res : mem.pressureResources())
        ledger.addResource(*res);
    ledger.seal();

    auto [h1, h2] = distinctBankHints(mem);
    const std::uint64_t bytes = 1 << 20;
    auto t1 = reserveTransfer(mem.path(h1), 0, bytes, tag(0));
    auto t2 = reserveTransfer(mem.path(h2), 0, bytes, tag(1));

    // Distinct banks overlap their row work: the pair finishes well
    // before the same-bank case (two full bank holds back to back).
    Tick bank_hold = mem.path(h1)[0]->holdTime(bytes);
    EXPECT_LT(std::max(t1.end, t2.end), 2 * bank_hold);

    // Both streams still serialize on the shared channel, and the
    // channel sees the aggregate byte count.
    int channel_id = mem.channel().ledgerId();
    PressureLedger::Slot channel = ledger.resourceTotal(channel_id);
    EXPECT_EQ(channel.bytes, 2 * bytes);
    EXPECT_EQ(channel.waitCaused, channel.waitSuffered);

    // No cross-stream blame on either bank — contention lives only
    // on the channel.
    int b1 = mem.path(h1)[0]->ledgerId();
    int b2 = mem.path(h2)[0]->ledgerId();
    EXPECT_EQ(ledger.resourceTotal(b1).waitSuffered, 0u);
    EXPECT_EQ(ledger.resourceTotal(b2).waitSuffered, 0u);
}

} // namespace
} // namespace relief
