/** @file Unit tests for the discrete-event queue. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace relief
{
namespace
{

TEST(EventQueueTest, StartsEmptyAtTickZero)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.curTick(), 0u);
    EXPECT_EQ(q.nextTick(), maxTick);
    EXPECT_FALSE(q.runOne());
}

TEST(EventQueueTest, RunsEventsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    while (q.runOne()) {
    }
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.curTick(), 30u);
}

TEST(EventQueueTest, SameTickFiresInScheduleOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        q.schedule(5, [&order, i] { order.push_back(i); });
    while (q.runOne()) {
    }
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[std::size_t(i)], i);
}

TEST(EventQueueTest, CurTickAdvancesToEventTime)
{
    EventQueue q;
    q.schedule(42, [] {});
    EXPECT_TRUE(q.runOne());
    EXPECT_EQ(q.curTick(), 42u);
}

TEST(EventQueueTest, SchedulingInPastPanics)
{
    EventQueue q;
    q.schedule(10, [] {});
    q.runOne();
    EXPECT_THROW(q.schedule(5, [] {}), PanicError);
}

TEST(EventQueueTest, SchedulingAtCurrentTickIsAllowed)
{
    EventQueue q;
    bool ran = false;
    q.schedule(10, [&] { q.schedule(10, [&] { ran = true; }); });
    while (q.runOne()) {
    }
    EXPECT_TRUE(ran);
}

TEST(EventQueueTest, CancelledEventDoesNotFire)
{
    EventQueue q;
    bool fired = false;
    EventHandle h = q.schedule(10, [&] { fired = true; });
    EXPECT_TRUE(h.pending());
    h.cancel();
    EXPECT_FALSE(h.pending());
    while (q.runOne()) {
    }
    EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelledEventsAreSkippedByEmptyAndNextTick)
{
    EventQueue q;
    EventHandle h = q.schedule(10, [] {});
    q.schedule(20, [] {});
    h.cancel();
    EXPECT_EQ(q.nextTick(), 20u);
    EXPECT_FALSE(q.empty());
    EXPECT_TRUE(q.runOne());
    EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, HandleReportsFiredState)
{
    EventQueue q;
    EventHandle h = q.schedule(10, [] {});
    EXPECT_TRUE(h.pending());
    q.runOne();
    EXPECT_FALSE(h.pending());
    // Cancelling after firing is a harmless no-op.
    h.cancel();
}

TEST(EventQueueTest, EventsScheduledFromEventsRun)
{
    EventQueue q;
    int depth = 0;
    std::function<void()> recurse = [&]() {
        if (++depth < 5)
            q.schedule(q.curTick() + 1, recurse);
    };
    q.schedule(0, recurse);
    while (q.runOne()) {
    }
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(q.curTick(), 4u);
}

TEST(EventQueueTest, CountsScheduledAndExecuted)
{
    EventQueue q;
    EventHandle h = q.schedule(1, [] {});
    q.schedule(2, [] {});
    h.cancel();
    while (q.runOne()) {
    }
    EXPECT_EQ(q.numScheduled(), 2u);
    EXPECT_EQ(q.numExecuted(), 1u);
}

TEST(EventQueueTest, ManyInterleavedEventsStaySorted)
{
    EventQueue q;
    Tick last = 0;
    bool monotonic = true;
    // Deterministic pseudo-random insertion order.
    std::uint32_t rng = 12345;
    for (int i = 0; i < 1000; ++i) {
        rng = rng * 1664525u + 1013904223u;
        Tick when = rng % 10000;
        q.schedule(when, [&, when] {
            monotonic = monotonic && when >= last;
            last = when;
        });
    }
    while (q.runOne()) {
    }
    EXPECT_TRUE(monotonic);
}

} // namespace
} // namespace relief
