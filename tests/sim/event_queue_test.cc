/** @file Unit tests for the discrete-event queue. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace relief
{
namespace
{

TEST(EventQueueTest, StartsEmptyAtTickZero)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.curTick(), 0u);
    EXPECT_EQ(q.nextTick(), maxTick);
    EXPECT_FALSE(q.runOne());
}

TEST(EventQueueTest, RunsEventsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    while (q.runOne()) {
    }
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.curTick(), 30u);
}

TEST(EventQueueTest, SameTickFiresInScheduleOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        q.schedule(5, [&order, i] { order.push_back(i); });
    while (q.runOne()) {
    }
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[std::size_t(i)], i);
}

TEST(EventQueueTest, CurTickAdvancesToEventTime)
{
    EventQueue q;
    q.schedule(42, [] {});
    EXPECT_TRUE(q.runOne());
    EXPECT_EQ(q.curTick(), 42u);
}

TEST(EventQueueTest, SchedulingInPastPanics)
{
    EventQueue q;
    q.schedule(10, [] {});
    q.runOne();
    EXPECT_THROW(q.schedule(5, [] {}), PanicError);
}

TEST(EventQueueTest, SchedulingAtCurrentTickIsAllowed)
{
    EventQueue q;
    bool ran = false;
    q.schedule(10, [&] { q.schedule(10, [&] { ran = true; }); });
    while (q.runOne()) {
    }
    EXPECT_TRUE(ran);
}

TEST(EventQueueTest, CancelledEventDoesNotFire)
{
    EventQueue q;
    bool fired = false;
    EventHandle h = q.schedule(10, [&] { fired = true; });
    EXPECT_TRUE(h.pending());
    h.cancel();
    EXPECT_FALSE(h.pending());
    while (q.runOne()) {
    }
    EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelledEventsAreSkippedByEmptyAndNextTick)
{
    EventQueue q;
    EventHandle h = q.schedule(10, [] {});
    q.schedule(20, [] {});
    h.cancel();
    EXPECT_EQ(q.nextTick(), 20u);
    EXPECT_FALSE(q.empty());
    EXPECT_TRUE(q.runOne());
    EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, HandleReportsFiredState)
{
    EventQueue q;
    EventHandle h = q.schedule(10, [] {});
    EXPECT_TRUE(h.pending());
    q.runOne();
    EXPECT_FALSE(h.pending());
    // Cancelling after firing is a harmless no-op.
    h.cancel();
}

TEST(EventQueueTest, EventsScheduledFromEventsRun)
{
    EventQueue q;
    int depth = 0;
    std::function<void()> recurse = [&]() {
        if (++depth < 5)
            q.schedule(q.curTick() + 1, recurse);
    };
    q.schedule(0, recurse);
    while (q.runOne()) {
    }
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(q.curTick(), 4u);
}

TEST(EventQueueTest, CountsScheduledAndExecuted)
{
    EventQueue q;
    EventHandle h = q.schedule(1, [] {});
    q.schedule(2, [] {});
    h.cancel();
    while (q.runOne()) {
    }
    EXPECT_EQ(q.numScheduled(), 2u);
    EXPECT_EQ(q.numExecuted(), 1u);
}

TEST(EventQueueTest, MillionTrivialEventsNeverTouchTheHeap)
{
    // The microbenchmark pin for the zero-allocation claim: a million
    // model-style events (small captures) all live in the slot's
    // inline buffer, the slab stays at its first chunk (slots are
    // recycled through the free list), and nothing falls back to a
    // heap-allocated callable.
    EventQueue q;
    std::uint64_t fired = 0;
    constexpr int kBatch = 64;
    constexpr int kRounds = 1000000 / kBatch;
    Tick when = 0;
    for (int round = 0; round < kRounds; ++round) {
        for (int i = 0; i < kBatch; ++i)
            q.schedule(when + 1 + Tick(i), [&fired] { ++fired; });
        while (q.runOne()) {
        }
        when = q.curTick();
    }
    EXPECT_EQ(fired, std::uint64_t(kBatch) * kRounds);
    EXPECT_EQ(q.numHeapCallables(), 0u);
    // At most kBatch slots are ever live at once; one chunk suffices.
    EXPECT_EQ(q.slabCapacity(), 256u);
}

TEST(EventQueueTest, OversizedCaptureFallsBackToHeapAndIsCounted)
{
    EventQueue q;
    char big[InlineCallable::capacity + 1] = {};
    big[0] = 42;
    char result = 0;
    q.schedule(1, [big, &result] { result = big[0]; });
    EXPECT_EQ(q.numHeapCallables(), 1u);
    EXPECT_TRUE(q.runOne());
    EXPECT_EQ(result, 42);
}

TEST(EventQueueTest, CancelledSkipsAreCounted)
{
    EventQueue q;
    EventHandle a = q.schedule(10, [] {});
    EventHandle b = q.schedule(20, [] {});
    q.schedule(30, [] {});
    a.cancel();
    b.cancel();
    while (q.runOne()) {
    }
    EXPECT_EQ(q.numCancelled(), 2u);
    EXPECT_EQ(q.numExecuted(), 1u);
}

TEST(EventQueueTest, CompactionPurgesCancelledEntries)
{
    EventQueue q;
    q.setCompactionMinimum(8);
    std::vector<EventHandle> handles;
    int fired = 0;
    for (int i = 0; i < 32; ++i)
        handles.push_back(
            q.schedule(Tick(100 + i), [&fired] { ++fired; }));
    // Cancel most of the heap; once cancelled entries are both >= the
    // minimum and the majority, the queue compacts in place.
    for (int i = 0; i < 24; ++i)
        handles[std::size_t(i)].cancel();
    EXPECT_GE(q.numCompactions(), 1u);
    EXPECT_EQ(q.numCancelled(), 24u);
    // Survivors still fire, in order.
    Tick last = 0;
    while (q.runOne())
        last = q.curTick();
    EXPECT_EQ(fired, 8);
    EXPECT_EQ(last, 131u);
    EXPECT_EQ(q.numExecuted(), 8u);
}

TEST(EventQueueTest, StaleHandleCannotTouchARecycledSlot)
{
    EventQueue q;
    bool first = false;
    bool second = false;
    EventHandle old = q.schedule(10, [&first] { first = true; });
    EXPECT_TRUE(q.runOne());
    // The slot is recycled for a new event; the old handle must
    // neither report it pending nor cancel it.
    EventHandle fresh = q.schedule(20, [&second] { second = true; });
    EXPECT_FALSE(old.pending());
    old.cancel();
    EXPECT_TRUE(fresh.pending());
    EXPECT_TRUE(q.runOne());
    EXPECT_TRUE(first);
    EXPECT_TRUE(second);
}

TEST(EventQueueTest, CancellingOwnEventWhileFiringIsANoOp)
{
    EventQueue q;
    EventHandle self;
    int runs = 0;
    self = q.schedule(10, [&] {
        ++runs;
        self.cancel(); // must not destroy the running callable
        EXPECT_FALSE(self.pending());
    });
    EXPECT_TRUE(q.runOne());
    EXPECT_EQ(runs, 1);
}

TEST(EventQueueTest, DynamicLabelsAreLazyUnderTheEventFlag)
{
    clearDebugFlags();
    EventQueue q;
    int evaluations = 0;
    auto label = [&evaluations] {
        ++evaluations;
        return std::string("expensive.label");
    };
    q.schedule(10, [] {}, label);
    EXPECT_EQ(evaluations, 0); // flag off: never materialized

    setDebugFlag(DebugFlag::Event);
    q.schedule(20, [] {}, label);
    EXPECT_EQ(evaluations, 1);
    clearDebugFlags();
    while (q.runOne()) {
    }
}

TEST(EventQueueTest, EventFlagTracesFiringEvents)
{
    clearDebugFlags();
    setDebugFlag(DebugFlag::Event);
    std::vector<std::string> lines;
    LogSink previous = setLogSink(
        [&lines](LogLevel, const std::string &msg) {
            lines.push_back(msg);
        });
    EventQueue q;
    q.schedule(10, [] {}, "acc.tick");
    q.schedule(20, [] {}, [] { return std::string("dma.done"); });
    q.schedule(30, [] {});
    while (q.runOne()) {
    }
    setLogSink(std::move(previous));
    clearDebugFlags();
    ASSERT_EQ(lines.size(), 3u);
    EXPECT_NE(lines[0].find("10: event: acc.tick"), std::string::npos);
    EXPECT_NE(lines[1].find("20: event: dma.done"), std::string::npos);
    EXPECT_NE(lines[2].find("30: event: (unlabeled)"),
              std::string::npos);
}

TEST(EventQueueTest, ManyInterleavedEventsStaySorted)
{
    EventQueue q;
    Tick last = 0;
    bool monotonic = true;
    // Deterministic pseudo-random insertion order.
    std::uint32_t rng = 12345;
    for (int i = 0; i < 1000; ++i) {
        rng = rng * 1664525u + 1013904223u;
        Tick when = rng % 10000;
        q.schedule(when, [&, when] {
            monotonic = monotonic && when >= last;
            last = when;
        });
    }
    while (q.runOne()) {
    }
    EXPECT_TRUE(monotonic);
}

} // namespace
} // namespace relief
