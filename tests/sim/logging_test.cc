/** @file Unit tests for the error-reporting helpers. */

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "sim/logging.hh"

namespace relief
{
namespace
{

TEST(LoggingTest, PanicThrowsWithMessage)
{
    try {
        panic("bad thing ", 42, " happened");
        FAIL() << "panic did not throw";
    } catch (const PanicError &err) {
        EXPECT_EQ(std::string(err.what()), "bad thing 42 happened");
    }
}

TEST(LoggingTest, FatalThrowsWithMessage)
{
    try {
        fatal("user error: ", 3.5);
        FAIL() << "fatal did not throw";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("user error"),
                  std::string::npos);
    }
}

TEST(LoggingTest, PanicAndFatalAreDistinctTypes)
{
    // A fatal (user) error must not be caught as a panic (bug) and
    // vice versa.
    EXPECT_THROW(fatal("x"), std::runtime_error);
    EXPECT_THROW(panic("x"), std::logic_error);
    bool caught_as_panic = false;
    try {
        fatal("x");
    } catch (const PanicError &) {
        caught_as_panic = true;
    } catch (...) {
    }
    EXPECT_FALSE(caught_as_panic);
}

TEST(LoggingTest, AssertPassesOnTrueCondition)
{
    EXPECT_NO_THROW(RELIEF_ASSERT(1 + 1 == 2, "math works"));
}

TEST(LoggingTest, AssertThrowsWithContext)
{
    int value = 7;
    try {
        RELIEF_ASSERT(value == 8, "value was ", value);
        FAIL() << "assert did not throw";
    } catch (const PanicError &err) {
        std::string msg = err.what();
        EXPECT_NE(msg.find("value == 8"), std::string::npos);
        EXPECT_NE(msg.find("value was 7"), std::string::npos);
    }
}

TEST(LoggingTest, WarnAndInformDoNotThrow)
{
    EXPECT_NO_THROW(warn("just a warning ", 1));
    EXPECT_NO_THROW(inform("status ", 2));
    setInformEnabled(false);
    EXPECT_NO_THROW(inform("suppressed"));
    setInformEnabled(true);
}

TEST(LoggingTest, SinkCapturesWarnAndInform)
{
    std::vector<std::pair<LogLevel, std::string>> captured;
    LogSink previous = setLogSink(
        [&captured](LogLevel level, const std::string &msg) {
            captured.emplace_back(level, msg);
        });
    warn("queue depth ", 9);
    inform("run complete");
    setLogSink(std::move(previous));

    ASSERT_EQ(captured.size(), 2u);
    EXPECT_EQ(captured[0].first, LogLevel::Warn);
    EXPECT_EQ(captured[0].second, "queue depth 9");
    EXPECT_EQ(captured[1].first, LogLevel::Info);
    EXPECT_EQ(captured[1].second, "run complete");
}

TEST(LoggingTest, SinkSeesFatalAndPanicBeforeTheThrow)
{
    std::vector<LogLevel> levels;
    LogSink previous = setLogSink(
        [&levels](LogLevel level, const std::string &) {
            levels.push_back(level);
        });
    EXPECT_THROW(fatal("boom"), FatalError);
    EXPECT_THROW(panic("bug"), PanicError);
    setLogSink(std::move(previous));

    ASSERT_EQ(levels.size(), 2u);
    EXPECT_EQ(levels[0], LogLevel::Fatal);
    EXPECT_EQ(levels[1], LogLevel::Panic);
}

TEST(LoggingTest, SinkRespectsInformSuppression)
{
    std::size_t count = 0;
    LogSink previous = setLogSink(
        [&count](LogLevel, const std::string &) { ++count; });
    setInformEnabled(false);
    inform("dropped before the sink");
    setInformEnabled(true);
    inform("delivered");
    setLogSink(std::move(previous));
    EXPECT_EQ(count, 1u);
}

TEST(LoggingTest, EmptySinkRestoresDefaultAndReturnsPrevious)
{
    std::size_t count = 0;
    setLogSink([&count](LogLevel, const std::string &) { ++count; });
    // Replacing hands back the active sink...
    LogSink captured = setLogSink(LogSink());
    ASSERT_TRUE(captured);
    captured(LogLevel::Warn, "direct call");
    EXPECT_EQ(count, 1u);
    // ...and the empty replacement means "default stderr sink", which
    // must not loop back into the counter.
    warn("to stderr");
    EXPECT_EQ(count, 1u);
}

TEST(LoggingTest, LevelNamesAreStable)
{
    EXPECT_STREQ(logLevelName(LogLevel::Debug), "debug");
    EXPECT_STREQ(logLevelName(LogLevel::Info), "info");
    EXPECT_STREQ(logLevelName(LogLevel::Warn), "warn");
    EXPECT_STREQ(logLevelName(LogLevel::Fatal), "fatal");
    EXPECT_STREQ(logLevelName(LogLevel::Panic), "panic");
}

TEST(LoggingTest, MessageConcatenationHandlesMixedTypes)
{
    try {
        panic("a=", 1, " b=", 2.5, " c=", std::string("str"), " d=",
              'x');
    } catch (const PanicError &err) {
        EXPECT_EQ(std::string(err.what()), "a=1 b=2.5 c=str d=x");
    }
}

} // namespace
} // namespace relief
