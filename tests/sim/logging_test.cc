/** @file Unit tests for the error-reporting helpers. */

#include <gtest/gtest.h>

#include <string>

#include "sim/logging.hh"

namespace relief
{
namespace
{

TEST(LoggingTest, PanicThrowsWithMessage)
{
    try {
        panic("bad thing ", 42, " happened");
        FAIL() << "panic did not throw";
    } catch (const PanicError &err) {
        EXPECT_EQ(std::string(err.what()), "bad thing 42 happened");
    }
}

TEST(LoggingTest, FatalThrowsWithMessage)
{
    try {
        fatal("user error: ", 3.5);
        FAIL() << "fatal did not throw";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("user error"),
                  std::string::npos);
    }
}

TEST(LoggingTest, PanicAndFatalAreDistinctTypes)
{
    // A fatal (user) error must not be caught as a panic (bug) and
    // vice versa.
    EXPECT_THROW(fatal("x"), std::runtime_error);
    EXPECT_THROW(panic("x"), std::logic_error);
    bool caught_as_panic = false;
    try {
        fatal("x");
    } catch (const PanicError &) {
        caught_as_panic = true;
    } catch (...) {
    }
    EXPECT_FALSE(caught_as_panic);
}

TEST(LoggingTest, AssertPassesOnTrueCondition)
{
    EXPECT_NO_THROW(RELIEF_ASSERT(1 + 1 == 2, "math works"));
}

TEST(LoggingTest, AssertThrowsWithContext)
{
    int value = 7;
    try {
        RELIEF_ASSERT(value == 8, "value was ", value);
        FAIL() << "assert did not throw";
    } catch (const PanicError &err) {
        std::string msg = err.what();
        EXPECT_NE(msg.find("value == 8"), std::string::npos);
        EXPECT_NE(msg.find("value was 7"), std::string::npos);
    }
}

TEST(LoggingTest, WarnAndInformDoNotThrow)
{
    EXPECT_NO_THROW(warn("just a warning ", 1));
    EXPECT_NO_THROW(inform("status ", 2));
    setInformEnabled(false);
    EXPECT_NO_THROW(inform("suppressed"));
    setInformEnabled(true);
}

TEST(LoggingTest, MessageConcatenationHandlesMixedTypes)
{
    try {
        panic("a=", 1, " b=", 2.5, " c=", std::string("str"), " d=",
              'x');
    } catch (const PanicError &err) {
        EXPECT_EQ(std::string(err.what()), "a=1 b=2.5 c=str d=x");
    }
}

} // namespace
} // namespace relief
