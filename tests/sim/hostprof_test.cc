/**
 * @file
 * Unit tests for the HostProf host-time attribution layer: exclusive
 * stack accounting, gap charging, freeze semantics, event histograms,
 * heap-allocation counters, snapshot merging, and the EventQueue
 * category plumbing.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>

#include "sim/event_queue.hh"
#include "sim/hostprof.hh"

namespace relief
{
namespace
{

/** Burn wall time so attribution has something to measure. */
void
busyWaitNs(std::uint64_t ns)
{
    using clock = std::chrono::steady_clock;
    auto until = clock::now() + std::chrono::nanoseconds(ns);
    while (clock::now() < until) {
    }
}

/** RAII enable/disable so a failing test cannot leak enabled state. */
struct ProfSession
{
    ProfSession() { setHostProfEnabled(true); }
    ~ProfSession() { setHostProfEnabled(false); }
};

std::uint64_t
catWall(const HostProfSnapshot &snap, HostCat cat)
{
    return snap.cats[static_cast<std::size_t>(cat)].wallNs;
}

TEST(HostProfTest, DisabledByDefaultAndTogglable)
{
    EXPECT_FALSE(hostProfEnabled());
    setHostProfEnabled(true);
    EXPECT_TRUE(hostProfEnabled());
    setHostProfEnabled(false);
    EXPECT_FALSE(hostProfEnabled());
}

TEST(HostProfTest, CategoryNamesAreStable)
{
    // The JSON schema and docs/observability.md §11 both spell these
    // out; a rename is a schema break.
    EXPECT_STREQ(hostCatName(HostCat::Other), "other");
    EXPECT_STREQ(hostCatName(HostCat::Sched), "sched");
    EXPECT_STREQ(hostCatName(HostCat::Dma), "dma");
    EXPECT_STREQ(hostCatName(HostCat::Mem), "mem");
    EXPECT_STREQ(hostCatName(HostCat::Interconnect), "interconnect");
    EXPECT_STREQ(hostCatName(HostCat::Kernels), "kernels");
    EXPECT_STREQ(hostCatName(HostCat::Stats), "stats");
    EXPECT_STREQ(hostCatName(HostCat::Serve), "serve");
}

TEST(HostProfTest, ScopeAttributesWallTime)
{
    ProfSession session;
    {
        HostProfScope scope(HostCat::Sched);
        busyWaitNs(200000);
    }
    setHostProfEnabled(false);
    HostProfSnapshot snap = hostProfSnapshot();
    EXPECT_GE(catWall(snap, HostCat::Sched), 150000u);
    EXPECT_GT(snap.totalWallNs, 0u);
    EXPECT_LE(snap.attributedNs(), snap.totalWallNs);
    EXPECT_GE(snap.coverage(), 0.9);
    EXPECT_LE(snap.coverage(), 1.0);
}

TEST(HostProfTest, GapBeforeScopeChargesIncomingCategory)
{
    // Time between scopes (queue pops, loop glue) is charged to the
    // next category entered, so nothing leaks out of coverage.
    ProfSession session;
    busyWaitNs(200000); // outside any scope
    {
        HostProfScope scope(HostCat::Dma);
    }
    setHostProfEnabled(false);
    HostProfSnapshot snap = hostProfSnapshot();
    EXPECT_GE(catWall(snap, HostCat::Dma), 150000u);
    EXPECT_GE(snap.coverage(), 0.9);
}

TEST(HostProfTest, NestedScopesUseExclusiveTime)
{
    // The inner span's time belongs to the inner category only; the
    // outer category keeps just its own exclusive share.
    ProfSession session;
    {
        HostProfScope outer(HostCat::Sched);
        busyWaitNs(150000);
        {
            HostProfScope inner(HostCat::Mem);
            busyWaitNs(150000);
        }
        busyWaitNs(150000);
    }
    setHostProfEnabled(false);
    HostProfSnapshot snap = hostProfSnapshot();
    std::uint64_t sched = catWall(snap, HostCat::Sched);
    std::uint64_t mem = catWall(snap, HostCat::Mem);
    EXPECT_GE(sched, 2 * 100000u);
    EXPECT_GE(mem, 100000u);
    EXPECT_LT(mem, 2 * 150000u); // exclusive, not inclusive
    EXPECT_LE(snap.attributedNs(), snap.totalWallNs);
}

TEST(HostProfTest, EventExitRecordsCountAndHistogram)
{
    ProfSession session;
    std::uint64_t t0 = hostProfEnter(HostCat::Kernels);
    busyWaitNs(50000);
    hostProfExitEvent(HostCat::Kernels, t0);
    setHostProfEnabled(false);
    HostProfSnapshot snap = hostProfSnapshot();
    const auto &cat =
        snap.cats[static_cast<std::size_t>(HostCat::Kernels)];
    EXPECT_EQ(cat.events, 1u);
    std::uint64_t hist_sum = 0;
    for (std::uint64_t bucket : cat.nsHist)
        hist_sum += bucket;
    EXPECT_EQ(hist_sum, cat.events);
}

TEST(HostProfTest, FreezeStopsTheClock)
{
    setHostProfEnabled(true);
    busyWaitNs(50000);
    setHostProfEnabled(false);
    HostProfSnapshot first = hostProfSnapshot();
    busyWaitNs(200000); // after the freeze: must not count
    HostProfSnapshot second = hostProfSnapshot();
    EXPECT_EQ(first.totalWallNs, second.totalWallNs);
    EXPECT_EQ(first.attributedNs(), second.attributedNs());
}

TEST(HostProfTest, ScopeClosingAfterFreezeIsANoOp)
{
    setHostProfEnabled(true);
    {
        HostProfScope scope(HostCat::Serve);
        busyWaitNs(50000);
        setHostProfEnabled(false);
        // The freeze charged the open span; the destructor running
        // now must not touch (or crash on) the frozen state.
    }
    HostProfSnapshot snap = hostProfSnapshot();
    EXPECT_GE(catWall(snap, HostCat::Serve), 30000u);
}

TEST(HostProfTest, HeapAllocCounterPerCategory)
{
    ProfSession session;
    hostProfCountHeapAlloc(HostCat::Sched);
    hostProfCountHeapAlloc(HostCat::Sched);
    hostProfCountHeapAlloc(HostCat::Dma);
    setHostProfEnabled(false);
    HostProfSnapshot snap = hostProfSnapshot();
    EXPECT_EQ(
        snap.cats[static_cast<std::size_t>(HostCat::Sched)].heapAllocs,
        2u);
    EXPECT_EQ(
        snap.cats[static_cast<std::size_t>(HostCat::Dma)].heapAllocs,
        1u);
}

TEST(HostProfTest, MergeSumsEveryCounter)
{
    HostProfSnapshot a;
    a.totalWallNs = 100;
    a.cats[1].wallNs = 40;
    a.cats[1].events = 2;
    a.cats[1].heapAllocs = 1;
    a.cats[1].nsHist[3] = 2;
    HostProfSnapshot b;
    b.totalWallNs = 50;
    b.cats[1].wallNs = 10;
    b.cats[1].events = 1;
    b.cats[1].nsHist[3] = 1;
    b.cats[2].wallNs = 25;
    a.merge(b);
    EXPECT_EQ(a.totalWallNs, 150u);
    EXPECT_EQ(a.cats[1].wallNs, 50u);
    EXPECT_EQ(a.cats[1].events, 3u);
    EXPECT_EQ(a.cats[1].heapAllocs, 1u);
    EXPECT_EQ(a.cats[1].nsHist[3], 3u);
    EXPECT_EQ(a.cats[2].wallNs, 25u);
    EXPECT_EQ(a.attributedNs(), 75u);
    EXPECT_DOUBLE_EQ(a.coverage(), 0.5);
}

TEST(HostProfTest, CoverageClampsToOne)
{
    HostProfSnapshot snap;
    snap.totalWallNs = 100;
    snap.cats[0].wallNs = 120; // clock jitter can overshoot
    EXPECT_DOUBLE_EQ(snap.coverage(), 1.0);
    HostProfSnapshot empty;
    EXPECT_DOUBLE_EQ(empty.coverage(), 0.0);
}

TEST(HostProfTest, WriteJsonEmitsEveryCategory)
{
    HostProfSnapshot snap;
    snap.totalWallNs = 1000;
    snap.cats[0].wallNs = 1000;
    std::ostringstream os;
    snap.writeJson(os, /*standalone=*/false);
    std::string doc = os.str();
    for (std::size_t i = 0; i < numHostCats; ++i) {
        std::string key =
            std::string("\"") + hostCatName(static_cast<HostCat>(i)) +
            "\"";
        EXPECT_NE(doc.find(key), std::string::npos) << key;
    }
    EXPECT_NE(doc.find("\"coverage\""), std::string::npos);
    // Embedded form: no schema / build_info header.
    EXPECT_EQ(doc.find("\"schema\""), std::string::npos);
}

TEST(HostProfTest, EventQueueChargesTaggedCategory)
{
    ProfSession session;
    EventQueue queue;
    bool ran = false;
    queue.schedule(5, HostCat::Dma, [&] {
        busyWaitNs(50000);
        ran = true;
    });
    queue.schedule(9, [] {}); // untagged events land in "other"
    while (queue.runOne()) {
    }
    setHostProfEnabled(false);
    HostProfSnapshot snap = hostProfSnapshot();
    EXPECT_TRUE(ran);
    EXPECT_EQ(snap.cats[static_cast<std::size_t>(HostCat::Dma)].events,
              1u);
    EXPECT_EQ(
        snap.cats[static_cast<std::size_t>(HostCat::Other)].events, 1u);
    EXPECT_GE(catWall(snap, HostCat::Dma), 30000u);
}

TEST(HostProfTest, DispatchSpinSlowsTaggedEvents)
{
    // The CI perf gate injects a busy-wait into dispatch; it must
    // land inside the measured event span so the hostprof books (and
    // the ns/event histogram) see the slowdown honestly.
    ProfSession session;
    EventQueue queue;
    queue.setDispatchSpin(100000);
    queue.schedule(1, HostCat::Mem, [] {});
    while (queue.runOne()) {
    }
    setHostProfEnabled(false);
    HostProfSnapshot snap = hostProfSnapshot();
    EXPECT_GE(catWall(snap, HostCat::Mem), 80000u);
}

} // namespace
} // namespace relief
