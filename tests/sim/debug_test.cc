/** @file Unit tests for the runtime debug-flag system. */

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "sim/debug.hh"

namespace relief
{
namespace
{

/** Captures log output and guarantees flag/sink isolation per test. */
class DebugTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        clearDebugFlags();
        previous_ = setLogSink(
            [this](LogLevel level, const std::string &msg) {
                levels.push_back(level);
                lines.push_back(msg);
            });
    }

    void
    TearDown() override
    {
        setLogSink(std::move(previous_));
        clearDebugFlags();
    }

    std::vector<LogLevel> levels;
    std::vector<std::string> lines;

  private:
    LogSink previous_;
};

TEST_F(DebugTest, AllFlagsStartDisabled)
{
    for (DebugFlag flag : allDebugFlags())
        EXPECT_FALSE(debugFlagEnabled(flag)) << debugFlagName(flag);
    EXPECT_EQ(allDebugFlags().size(), numDebugFlags);
}

TEST_F(DebugTest, SetAndClearSingleFlag)
{
    setDebugFlag(DebugFlag::Dma);
    EXPECT_TRUE(debugFlagEnabled(DebugFlag::Dma));
    EXPECT_FALSE(debugFlagEnabled(DebugFlag::Sched));
    setDebugFlag(DebugFlag::Dma, false);
    EXPECT_FALSE(debugFlagEnabled(DebugFlag::Dma));
}

TEST_F(DebugTest, NamesRoundTrip)
{
    for (DebugFlag flag : allDebugFlags()) {
        EXPECT_TRUE(setDebugFlagByName(debugFlagName(flag)));
        EXPECT_TRUE(debugFlagEnabled(flag));
    }
    EXPECT_FALSE(setDebugFlagByName("NoSuchFlag"));
}

TEST_F(DebugTest, CsvListEnablesSeveralFlags)
{
    setDebugFlags("Sched,Mem");
    EXPECT_TRUE(debugFlagEnabled(DebugFlag::Sched));
    EXPECT_TRUE(debugFlagEnabled(DebugFlag::Mem));
    EXPECT_FALSE(debugFlagEnabled(DebugFlag::Dma));
}

TEST_F(DebugTest, UnknownFlagInListIsFatal)
{
    try {
        setDebugFlags("Sched,Bogus");
        FAIL() << "setDebugFlags did not throw";
    } catch (const FatalError &err) {
        // The error names the typo and lists every valid flag.
        std::string msg = err.what();
        EXPECT_NE(msg.find("Bogus"), std::string::npos);
        EXPECT_NE(msg.find("Sched,Dma,Mem,Fabric,Stats"),
                  std::string::npos);
    }
}

TEST_F(DebugTest, ClearDisablesEverything)
{
    setDebugFlags("Sched,Dma,Mem,Fabric,Stats");
    clearDebugFlags();
    for (DebugFlag flag : allDebugFlags())
        EXPECT_FALSE(debugFlagEnabled(flag));
}

TEST_F(DebugTest, DebugPrintFormatsTickObjectMessage)
{
    debugPrint(DebugFlag::Sched, 123, "soc.manager", "hello");
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(levels[0], LogLevel::Debug);
    // gem5's layout: width-12 tick column, then "who: message".
    EXPECT_EQ(lines[0], "         123: soc.manager: hello");
}

TEST_F(DebugTest, DprintfnHonorsItsFlag)
{
    Tick now = 42;
    DPRINTFN(Dma, now, "dma0", "issue ", 4096, " bytes");
    EXPECT_TRUE(lines.empty()); // flag off: statement costs one test

    setDebugFlag(DebugFlag::Dma);
    DPRINTFN(Dma, now, "dma0", "issue ", 4096, " bytes");
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_NE(lines[0].find("dma0: issue 4096 bytes"),
              std::string::npos);
}

} // namespace
} // namespace relief
