/** @file Unit tests for the simulation driver and SimObject. */

#include <gtest/gtest.h>

#include "sim/simulator.hh"
#include "sim/ticks.hh"

namespace relief
{
namespace
{

TEST(TicksTest, UnitConversionsRoundTrip)
{
    EXPECT_EQ(fromNs(1.0), tickPerNs);
    EXPECT_EQ(fromUs(1.0), tickPerUs);
    EXPECT_EQ(fromMs(1.0), tickPerMs);
    EXPECT_DOUBLE_EQ(toUs(fromUs(123.5)), 123.5);
    EXPECT_DOUBLE_EQ(toMs(fromMs(16.6)), 16.6);
}

TEST(TicksTest, TransferTimeMatchesBandwidth)
{
    // 1 GB/s == 1 byte per ns.
    EXPECT_EQ(transferTime(1000, 1.0), fromNs(1000.0));
    // 12.8 GB/s moves 128 bytes in 10 ns.
    EXPECT_EQ(transferTime(128, 12.8), fromNs(10.0));
}

TEST(SimulatorTest, RunDrainsAllEvents)
{
    Simulator sim;
    int count = 0;
    sim.at(10, [&] { ++count; });
    sim.at(20, [&] { ++count; });
    Tick end = sim.run();
    EXPECT_EQ(count, 2);
    EXPECT_EQ(end, 20u);
}

TEST(SimulatorTest, RunHonorsLimit)
{
    Simulator sim;
    int count = 0;
    sim.at(10, [&] { ++count; });
    sim.at(100, [&] { ++count; });
    sim.run(50);
    EXPECT_EQ(count, 1);
    // The remaining event is still pending and runs on resume.
    sim.run();
    EXPECT_EQ(count, 2);
}

TEST(SimulatorTest, AfterSchedulesRelativeToNow)
{
    Simulator sim;
    Tick observed = 0;
    sim.at(10, [&] { sim.after(5, [&] { observed = sim.now(); }); });
    sim.run();
    EXPECT_EQ(observed, 15u);
}

TEST(SimulatorTest, StopEndsRunEarly)
{
    Simulator sim;
    int count = 0;
    sim.at(10, [&] {
        ++count;
        sim.stop();
    });
    sim.at(20, [&] { ++count; });
    sim.run();
    EXPECT_EQ(count, 1);
    sim.run();
    EXPECT_EQ(count, 2);
}

TEST(SimObjectTest, ExposesNameAndTime)
{
    Simulator sim;
    SimObject obj(sim, "soc.test");
    EXPECT_EQ(obj.name(), "soc.test");
    EXPECT_EQ(&obj.sim(), &sim);
    sim.at(33, [] {});
    sim.run();
    EXPECT_EQ(obj.now(), 33u);
}

} // namespace
} // namespace relief
