/**
 * @file
 * Minimal JSON syntax checker for tests.
 *
 * The simulator deliberately has no JSON library dependency, so tests
 * that assert "this export really is JSON" (stats registry, decision
 * log, Chrome traces) run the text through this small recursive-descent
 * parser. It validates the RFC 8259 grammar — objects, arrays, strings
 * with escapes, numbers, literals — but builds no value tree; tests
 * pair it with substring checks for the fields they care about.
 */

#ifndef RELIEF_TESTS_SUPPORT_MINI_JSON_HH
#define RELIEF_TESTS_SUPPORT_MINI_JSON_HH

#include <cctype>
#include <cstring>
#include <string>

namespace relief
{
namespace test
{

class MiniJsonParser
{
  public:
    explicit MiniJsonParser(const std::string &text) : text_(text) {}

    /** True when the whole input is exactly one JSON value. */
    bool
    parse()
    {
        pos_ = 0;
        skipWs();
        if (!parseValue())
            return false;
        skipWs();
        return pos_ == text_.size();
    }

    /** Offset of the first error (== size() on success). */
    std::size_t errorPos() const { return pos_; }

  private:
    bool
    parseValue()
    {
        if (pos_ >= text_.size())
            return false;
        switch (text_[pos_]) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"':
            return parseString();
          case 't':
            return parseLiteral("true");
          case 'f':
            return parseLiteral("false");
          case 'n':
            return parseLiteral("null");
          default:
            return parseNumber();
        }
    }

    bool
    parseObject()
    {
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!parseString())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            skipWs();
            if (!parseValue())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    parseArray()
    {
        ++pos_; // '['
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!parseValue())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    parseString()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return false; // raw control character
            if (c == '\\') {
                ++pos_;
                if (pos_ >= text_.size())
                    return false;
                char esc = text_[pos_];
                if (esc == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        ++pos_;
                        if (pos_ >= text_.size() ||
                            !std::isxdigit(
                                static_cast<unsigned char>(text_[pos_])))
                            return false;
                    }
                } else if (!std::strchr("\"\\/bfnrt", esc)) {
                    return false;
                }
            }
            ++pos_;
        }
        return false; // unterminated
    }

    bool
    parseNumber()
    {
        std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        if (!std::isdigit(static_cast<unsigned char>(peek())))
            return false;
        while (std::isdigit(static_cast<unsigned char>(peek())))
            ++pos_;
        if (peek() == '.') {
            ++pos_;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                return false;
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                return false;
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        return pos_ > start;
    }

    bool
    parseLiteral(const char *lit)
    {
        std::size_t len = std::strlen(lit);
        if (text_.compare(pos_, len, lit) != 0)
            return false;
        pos_ += len;
        return true;
    }

    char
    peek() const
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

/** Convenience wrapper: is @p text exactly one valid JSON value? */
inline bool
miniJsonValid(const std::string &text)
{
    return MiniJsonParser(text).parse();
}

} // namespace test
} // namespace relief

#endif // RELIEF_TESTS_SUPPORT_MINI_JSON_HH
