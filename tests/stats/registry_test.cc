/** @file Unit tests for the hierarchical stat registry. */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "stats/registry.hh"
#include "support/mini_json.hh"

namespace relief
{
namespace
{

TEST(StatRegistryTest, ValuesAreReadLazily)
{
    StatRegistry registry;
    std::uint64_t bytes = 0;
    registry.addCounter("dram.bytes", "bytes moved",
                        [&bytes] { return bytes; });
    EXPECT_EQ(registry.value("dram.bytes"), 0.0);
    bytes = 4096;
    // Registration stored a getter, not a snapshot.
    EXPECT_EQ(registry.value("dram.bytes"), 4096.0);
}

TEST(StatRegistryTest, NamesPreserveRegistrationOrder)
{
    StatRegistry registry;
    double energy = 1.5;
    registry.addScalar("b.second", "2", [&energy] { return energy; });
    registry.addCounter("a.first", "1", [] { return std::uint64_t(1); });
    registry.addFormula("c.third", "3", [] { return 0.25; });
    std::vector<std::string> expect = {"b.second", "a.first", "c.third"};
    EXPECT_EQ(registry.names(), expect);
    EXPECT_EQ(registry.size(), 3u);
}

TEST(StatRegistryTest, ContainsAndKind)
{
    StatRegistry registry;
    Histogram hist(0.0, 10.0, 5);
    registry.addCounter("c", "", [] { return std::uint64_t(0); });
    registry.addScalar("s", "", [] { return 0.0; });
    registry.addFormula("f", "", [] { return 0.0; });
    registry.addHistogram("h", "", &hist);
    EXPECT_TRUE(registry.contains("c"));
    EXPECT_FALSE(registry.contains("missing"));
    EXPECT_EQ(registry.kind("c"), StatKind::Counter);
    EXPECT_EQ(registry.kind("s"), StatKind::Scalar);
    EXPECT_EQ(registry.kind("f"), StatKind::Formula);
    EXPECT_EQ(registry.kind("h"), StatKind::Histogram);
    EXPECT_STREQ(statKindName(StatKind::Formula), "formula");
}

TEST(StatRegistryTest, MisusePanics)
{
    StatRegistry registry;
    Histogram hist(0.0, 10.0, 5);
    registry.addCounter("dup", "", [] { return std::uint64_t(0); });
    registry.addHistogram("h", "", &hist);
    // Duplicate and empty names are registration bugs.
    EXPECT_THROW(registry.addScalar("dup", "", [] { return 0.0; }),
                 PanicError);
    EXPECT_THROW(registry.addCounter("", "", [] { return std::uint64_t(0); }),
                 PanicError);
    // Unknown lookups and kind mismatches fail loudly too.
    EXPECT_THROW(registry.value("missing"), PanicError);
    EXPECT_THROW(registry.kind("missing"), PanicError);
    EXPECT_THROW(registry.value("h"), PanicError);
    EXPECT_THROW(registry.histogram("dup"), PanicError);
}

TEST(StatRegistryTest, FormulaTracksItsOperands)
{
    StatRegistry registry;
    std::uint64_t hits = 0, total = 0;
    registry.addFormula("cache.hit_rate", "hits / accesses",
                        [&hits, &total] {
                            return total ? double(hits) / double(total)
                                         : 0.0;
                        });
    EXPECT_EQ(registry.value("cache.hit_rate"), 0.0);
    hits = 3;
    total = 4;
    EXPECT_DOUBLE_EQ(registry.value("cache.hit_rate"), 0.75);
}

TEST(StatRegistryTest, HistogramBucketsRouteSamples)
{
    Histogram hist(0.0, 10.0, 5);
    hist.sample(-1.0);  // underflow
    hist.sample(0.0);   // bucket 0: [0, 2)
    hist.sample(3.5);   // bucket 1: [2, 4)
    hist.sample(9.99);  // bucket 4: [8, 10)
    hist.sample(10.0);  // overflow (upper edge is exclusive)
    hist.sample(42.0);  // overflow

    EXPECT_EQ(hist.numBuckets(), 5u);
    EXPECT_DOUBLE_EQ(hist.bucketLo(1), 2.0);
    EXPECT_DOUBLE_EQ(hist.bucketHi(1), 4.0);
    EXPECT_EQ(hist.bucketCount(0), 1u);
    EXPECT_EQ(hist.bucketCount(1), 1u);
    EXPECT_EQ(hist.bucketCount(4), 1u);
    EXPECT_EQ(hist.underflow(), 1u);
    EXPECT_EQ(hist.overflow(), 2u);
    EXPECT_EQ(hist.count(), 6u); // includes under/overflow
    EXPECT_DOUBLE_EQ(hist.min(), -1.0);
    EXPECT_DOUBLE_EQ(hist.max(), 42.0);
}

TEST(StatRegistryTest, DumpTextUsesGem5Columns)
{
    StatRegistry registry;
    registry.addCounter("dram.read_bytes", "bytes read from DRAM",
                        [] { return std::uint64_t(1024); });
    std::ostringstream os;
    registry.dumpText(os);
    std::string line = os.str();
    // "name" left-padded to 44 columns, then value, then "# comment".
    EXPECT_EQ(line.substr(0, 15), "dram.read_bytes");
    EXPECT_EQ(line[44], ' ');
    EXPECT_NE(line.find("1024"), std::string::npos);
    EXPECT_NE(line.find("# bytes read from DRAM"), std::string::npos);
}

TEST(StatRegistryTest, DumpTextExpandsHistograms)
{
    StatRegistry registry;
    Histogram hist(0.0, 10.0, 5);
    hist.sample(3.0);
    hist.sample(11.0);
    registry.addHistogram("manager.queue_wait_us", "queue wait", &hist);
    std::ostringstream os;
    registry.dumpText(os);
    std::string text = os.str();
    EXPECT_NE(text.find("manager.queue_wait_us.count"), std::string::npos);
    EXPECT_NE(text.find("manager.queue_wait_us.mean"), std::string::npos);
    EXPECT_NE(text.find("manager.queue_wait_us.underflow"),
              std::string::npos);
    EXPECT_NE(text.find("manager.queue_wait_us::2-4"), std::string::npos);
    EXPECT_NE(text.find("manager.queue_wait_us.overflow"),
              std::string::npos);
}

TEST(StatRegistryTest, DumpJsonRoundTrips)
{
    StatRegistry registry;
    Histogram hist(0.0, 10.0, 5);
    hist.sample(3.0);
    std::uint64_t count = 7;
    registry.addCounter("sim.events", "events", [&count] { return count; });
    registry.addScalar("sim.time_ms", "time", [] { return 12.5; });
    registry.addFormula("sim.rate", "events per ms",
                        [] { return 7.0 / 12.5; });
    registry.addHistogram("sim.hist", "a histogram", &hist);

    std::ostringstream os;
    registry.dumpJson(os);
    std::string json = os.str();
    EXPECT_TRUE(test::miniJsonValid(json)) << json;
    EXPECT_NE(json.find("\"schema\": \"relief-stats-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"kind\": \"counter\""), std::string::npos);
    EXPECT_NE(json.find("\"value\": 7"), std::string::npos);
    EXPECT_NE(json.find("\"kind\": \"histogram\""), std::string::npos);
    EXPECT_NE(json.find("\"buckets\": [0, 1, 0, 0, 0]"),
              std::string::npos);
}

TEST(StatRegistryTest, DumpJsonEscapesDescriptions)
{
    StatRegistry registry;
    registry.addScalar("weird", "has \"quotes\" and\nnewlines",
                       [] { return 1.0; });
    std::ostringstream os;
    registry.dumpJson(os);
    std::string json = os.str();
    EXPECT_TRUE(test::miniJsonValid(json)) << json;
    EXPECT_NE(json.find("\\\"quotes\\\""), std::string::npos);
    EXPECT_NE(json.find("\\n"), std::string::npos);
}

TEST(StatRegistryTest, DumpJsonStatsEmbeds)
{
    StatRegistry registry;
    registry.addCounter("n", "", [] { return std::uint64_t(1); });
    std::ostringstream os;
    os << "{\"stats\": ";
    registry.dumpJsonStats(os, 2);
    os << "}";
    // The fragment form plugs into a larger document (writeStatsJson).
    EXPECT_TRUE(test::miniJsonValid(os.str())) << os.str();
}

TEST(StatRegistryTest, NonFiniteScalarsExportAsNull)
{
    StatRegistry registry;
    registry.addFormula("bad.ratio", "0/0",
                        [] { return 0.0 / 0.0; });
    std::ostringstream os;
    registry.dumpJson(os);
    std::string json = os.str();
    EXPECT_TRUE(test::miniJsonValid(json)) << json;
    EXPECT_NE(json.find("\"value\": null"), std::string::npos);
}

} // namespace
} // namespace relief
