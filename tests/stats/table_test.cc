/** @file Unit tests for the table emitter. */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "sim/logging.hh"
#include "stats/table.hh"

namespace relief
{
namespace
{

TEST(TableTest, FormatsNumbers)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(3.0, 0), "3");
    EXPECT_EQ(Table::num(-1.5, 1), "-1.5");
}

TEST(TableTest, FormatsPercentages)
{
    EXPECT_EQ(Table::pct(0.5), "50.0");
    EXPECT_EQ(Table::pct(1.234, 0), "123");
}

TEST(TableTest, PrintsAlignedColumns)
{
    Table t("demo");
    t.setHeader({"mix", "value"});
    t.addRow({"CDG", "1.00"});
    t.addRow({"GHL", "123.45"});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("== demo =="), std::string::npos);
    EXPECT_NE(out.find("mix"), std::string::npos);
    EXPECT_NE(out.find("123.45"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(TableTest, PrintsCsv)
{
    Table t("csv");
    t.setHeader({"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "# csv\na,b\n1,2\n");
}

TEST(TableTest, RowWidthMismatchPanics)
{
    Table t;
    t.setHeader({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), PanicError);
}

TEST(TableTest, SlugifiesTitles)
{
    EXPECT_EQ(Table("Fig 4 (low) — forwards %").slug(),
              "fig_4_low_forwards");
    EXPECT_EQ(Table("already_clean").slug(), "already_clean");
    EXPECT_EQ(Table("").slug(), "table");
}

TEST(TableTest, EmitWritesCsvWhenEnvSet)
{
    std::string dir = ::testing::TempDir();
    setenv("RELIEF_CSV_DIR", dir.c_str(), 1);
    Table t("csv export check");
    t.setHeader({"a"});
    t.addRow({"42"});
    std::ostringstream os;
    t.emit(os);
    unsetenv("RELIEF_CSV_DIR");

    std::ifstream csv(dir + "/csv_export_check.csv");
    ASSERT_TRUE(csv.good());
    std::stringstream content;
    content << csv.rdbuf();
    EXPECT_NE(content.str().find("42"), std::string::npos);
    // Console output unaffected.
    EXPECT_NE(os.str().find("csv export check"), std::string::npos);
}

TEST(TableTest, EmitWithoutEnvOnlyPrints)
{
    unsetenv("RELIEF_CSV_DIR");
    Table t("no csv");
    t.setHeader({"a"});
    t.addRow({"1"});
    std::ostringstream os;
    EXPECT_NO_THROW(t.emit(os));
    EXPECT_FALSE(os.str().empty());
}

} // namespace
} // namespace relief
