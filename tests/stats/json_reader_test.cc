/** @file Unit tests for the DOM JSON reader behind diff tooling. */

#include <gtest/gtest.h>

#include "sim/logging.hh"
#include "stats/json_reader.hh"

namespace relief
{
namespace
{

TEST(JsonReaderTest, ParsesScalarsArraysAndObjects)
{
    JsonValue doc = JsonValue::parse(
        R"({"a": 1.5, "b": [1, 2, 3], "c": {"d": "text"},
            "t": true, "f": false, "n": null, "neg": -2e3})");
    EXPECT_DOUBLE_EQ(doc.at("a").asNumber(), 1.5);
    ASSERT_EQ(doc.at("b").size(), 3u);
    EXPECT_DOUBLE_EQ(doc.at("b").at(2).asNumber(), 3.0);
    EXPECT_EQ(doc.at("c").at("d").asString(), "text");
    EXPECT_TRUE(doc.at("t").asBool());
    EXPECT_FALSE(doc.at("f").asBool());
    EXPECT_TRUE(doc.at("n").isNull());
    EXPECT_DOUBLE_EQ(doc.at("neg").asNumber(), -2000.0);
}

TEST(JsonReaderTest, KeysPreserveDocumentOrder)
{
    JsonValue doc = JsonValue::parse(R"({"z": 1, "a": 2, "m": 3})");
    ASSERT_EQ(doc.keys().size(), 3u);
    EXPECT_EQ(doc.keys()[0], "z");
    EXPECT_EQ(doc.keys()[1], "a");
    EXPECT_EQ(doc.keys()[2], "m");
}

TEST(JsonReaderTest, FindToleratesMissingMembers)
{
    JsonValue doc = JsonValue::parse(R"({"here": 1})");
    EXPECT_NE(doc.find("here"), nullptr);
    EXPECT_EQ(doc.find("gone"), nullptr);
    EXPECT_THROW(doc.at("gone"), FatalError);
}

TEST(JsonReaderTest, DecodesStringEscapes)
{
    JsonValue doc =
        JsonValue::parse(R"({"s": "a\"b\\c\nd\teA"})");
    EXPECT_EQ(doc.at("s").asString(), "a\"b\\c\nd\teA");
}

TEST(JsonReaderTest, RejectsMalformedDocuments)
{
    EXPECT_THROW(JsonValue::parse("{"), FatalError);
    EXPECT_THROW(JsonValue::parse("[1, 2"), FatalError);
    EXPECT_THROW(JsonValue::parse("{\"a\" 1}"), FatalError);
    EXPECT_THROW(JsonValue::parse("12 34"), FatalError);
    EXPECT_THROW(JsonValue::parse("\"open"), FatalError);
    EXPECT_THROW(JsonValue::parse("nope"), FatalError);
}

TEST(JsonReaderTest, KindMismatchesAreFatal)
{
    JsonValue doc = JsonValue::parse(R"({"n": 1})");
    EXPECT_THROW(doc.at("n").asString(), FatalError);
    EXPECT_THROW(doc.at("n").at(0), FatalError);
    EXPECT_THROW(doc.at(0), FatalError);
}

TEST(JsonReaderTest, RejectsNonFiniteNumbers)
{
    // JSON has no NaN/Infinity literals, and strtod would otherwise
    // quietly return inf for out-of-range magnitudes like 1e999.
    EXPECT_THROW(JsonValue::parse("1e999"), FatalError);
    EXPECT_THROW(JsonValue::parse("-1e999"), FatalError);
    EXPECT_THROW(JsonValue::parse(R"({"x": 1e400})"), FatalError);
    EXPECT_THROW(JsonValue::parse("NaN"), FatalError);
    EXPECT_THROW(JsonValue::parse("Infinity"), FatalError);
    EXPECT_THROW(JsonValue::parse("-Infinity"), FatalError);
    // Large-but-representable values still parse.
    EXPECT_DOUBLE_EQ(JsonValue::parse("1e308").asNumber(), 1e308);
}

TEST(JsonReaderTest, ErrorsCarryLineAndColumn)
{
    try {
        JsonValue::parse("{\n  \"ok\": 1,\n  \"bad\": \"unterminated");
        FAIL() << "expected FatalError";
    } catch (const FatalError &err) {
        std::string what = err.what();
        EXPECT_NE(what.find("line 3"), std::string::npos) << what;
        EXPECT_NE(what.find("column"), std::string::npos) << what;
        EXPECT_NE(what.find("unterminated string"), std::string::npos)
            << what;
    }
}

TEST(JsonReaderTest, CapsNestingDepth)
{
    // 64 levels are fine; 100 must fail with a parse error rather
    // than a stack overflow.
    auto nested = [](int depth) {
        std::string doc(std::size_t(depth), '[');
        doc += "1";
        doc.append(std::size_t(depth), ']');
        return doc;
    };
    EXPECT_NO_THROW(JsonValue::parse(nested(60)));
    try {
        JsonValue::parse(nested(100));
        FAIL() << "expected FatalError";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("nesting depth"),
                  std::string::npos)
            << err.what();
    }
}

TEST(JsonReaderTest, DuplicateKeysKeepLastValue)
{
    // Defined behavior: last value wins, key keeps its first position.
    JsonValue doc =
        JsonValue::parse(R"({"a": 1, "b": 2, "a": 3})");
    ASSERT_EQ(doc.keys().size(), 2u);
    EXPECT_EQ(doc.keys()[0], "a");
    EXPECT_EQ(doc.keys()[1], "b");
    EXPECT_DOUBLE_EQ(doc.at("a").asNumber(), 3.0);
}

TEST(JsonReaderTest, RoundTripsAPressureDocument)
{
    // The shape relief_compare --diff consumes, in miniature.
    JsonValue doc = JsonValue::parse(R"({
        "schema": "relief-pressure-v1",
        "totals": {"bytes": 1024, "wait_us": 3.5},
        "resources": [
            {"name": "dram.channel", "bytes": 1024,
             "contenders": [
                 {"source": "accA", "qos": "default",
                  "traffic": "dram_fetch", "bytes": 1024}]}
        ]})");
    EXPECT_EQ(doc.at("schema").asString(), "relief-pressure-v1");
    const JsonValue &res = doc.at("resources").at(0);
    EXPECT_EQ(res.at("name").asString(), "dram.channel");
    EXPECT_DOUBLE_EQ(
        res.at("contenders").at(0).at("bytes").asNumber(), 1024.0);
}

} // namespace
} // namespace relief
