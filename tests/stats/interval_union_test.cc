/** @file Unit tests for busy-interval union accounting. */

#include <gtest/gtest.h>

#include "stats/interval_union.hh"

namespace relief
{
namespace
{

TEST(IntervalUnionTest, EmptyCoversNothing)
{
    IntervalUnion u;
    EXPECT_EQ(u.covered(), 0u);
    EXPECT_EQ(u.rawSum(), 0u);
}

TEST(IntervalUnionTest, DisjointIntervalsSum)
{
    IntervalUnion u;
    u.add(0, 10);
    u.add(20, 30);
    EXPECT_EQ(u.covered(), 20u);
    EXPECT_EQ(u.rawSum(), 20u);
}

TEST(IntervalUnionTest, OverlapCountedOnce)
{
    IntervalUnion u;
    u.add(0, 10);
    u.add(5, 15);
    EXPECT_EQ(u.covered(), 15u);
    EXPECT_EQ(u.rawSum(), 20u);
}

TEST(IntervalUnionTest, TouchingIntervalsMerge)
{
    IntervalUnion u;
    u.add(0, 10);
    u.add(10, 20);
    EXPECT_EQ(u.covered(), 20u);
}

TEST(IntervalUnionTest, OutOfOrderInsertion)
{
    IntervalUnion u;
    u.add(50, 60);
    u.add(0, 10);
    u.add(5, 55);
    EXPECT_EQ(u.covered(), 60u);
}

TEST(IntervalUnionTest, NestedIntervals)
{
    IntervalUnion u;
    u.add(0, 100);
    u.add(10, 20);
    u.add(30, 40);
    EXPECT_EQ(u.covered(), 100u);
}

TEST(IntervalUnionTest, EmptyIntervalIgnored)
{
    IntervalUnion u;
    u.add(10, 10);
    u.add(20, 15);
    EXPECT_EQ(u.covered(), 0u);
    EXPECT_EQ(u.numIntervals(), 0u);
}

TEST(IntervalUnionTest, ClipsToUpTo)
{
    IntervalUnion u;
    u.add(0, 10);
    u.add(20, 40);
    EXPECT_EQ(u.covered(30), 20u);
    EXPECT_EQ(u.covered(5), 5u);
    EXPECT_EQ(u.covered(0), 0u);
}

TEST(IntervalUnionTest, QueryThenAddThenQuery)
{
    IntervalUnion u;
    u.add(0, 10);
    EXPECT_EQ(u.covered(), 10u);
    u.add(5, 20); // insertion after a query must still work
    EXPECT_EQ(u.covered(), 20u);
}

TEST(IntervalUnionTest, ClearResets)
{
    IntervalUnion u;
    u.add(0, 10);
    u.clear();
    EXPECT_EQ(u.covered(), 0u);
    EXPECT_EQ(u.rawSum(), 0u);
}

} // namespace
} // namespace relief
