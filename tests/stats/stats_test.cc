/** @file Unit tests for counters, accumulators, and geomean. */

#include <gtest/gtest.h>

#include <cmath>

#include "stats/stats.hh"

namespace relief
{
namespace
{

TEST(CounterTest, AddsAndResets)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(AccumTest, EmptyIsZero)
{
    Accum a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.variance(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
    EXPECT_DOUBLE_EQ(a.max(), 0.0);
}

TEST(AccumTest, MeanMinMax)
{
    Accum a;
    a.sample(2.0);
    a.sample(4.0);
    a.sample(9.0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
}

TEST(AccumTest, VarianceAndStddev)
{
    Accum a;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        a.sample(v);
    EXPECT_NEAR(a.variance(), 4.0, 1e-9);
    EXPECT_NEAR(a.stddev(), 2.0, 1e-9);
}

TEST(AccumTest, NegativeSamples)
{
    Accum a;
    a.sample(-3.0);
    a.sample(3.0);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), -3.0);
    EXPECT_DOUBLE_EQ(a.max(), 3.0);
}

TEST(AccumTest, ResetClearsState)
{
    Accum a;
    a.sample(5.0);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(HistogramQuantileTest, EmptyIsZero)
{
    Histogram h(0.0, 10.0, 10);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(HistogramQuantileTest, InterpolatesWithinBucket)
{
    // 100 samples spread one per 0.1 across [0, 10): the quantile
    // curve is close to the identity q -> 10q.
    Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 100; ++i)
        h.sample(double(i) / 10.0);
    EXPECT_NEAR(h.quantile(0.5), 5.0, 0.2);
    EXPECT_NEAR(h.quantile(0.9), 9.0, 0.2);
    EXPECT_NEAR(h.quantile(0.25), 2.5, 0.2);
}

TEST(HistogramQuantileTest, ClampsToObservedRange)
{
    // One sample per edge bucket: no estimate may leave [min, max].
    Histogram h(0.0, 10.0, 10);
    h.sample(2.5);
    h.sample(7.5);
    EXPECT_GE(h.quantile(0.0), 2.5);
    EXPECT_LE(h.quantile(1.0), 7.5);
}

TEST(HistogramQuantileTest, UnderflowAndOverflowUseObservedExtremes)
{
    Histogram h(0.0, 10.0, 10);
    h.sample(-5.0); // underflow bin
    h.sample(5.0);
    h.sample(25.0); // overflow bin
    EXPECT_DOUBLE_EQ(h.quantile(0.0), -5.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 25.0);
}

TEST(HistogramQuantileTest, OutOfRangeQIsClamped)
{
    Histogram h(0.0, 10.0, 10);
    h.sample(5.0);
    EXPECT_DOUBLE_EQ(h.quantile(-1.0), h.quantile(0.0));
    EXPECT_DOUBLE_EQ(h.quantile(2.0), h.quantile(1.0));
}

TEST(HistogramQuantileTest, EmptyAtExtremeQ)
{
    Histogram h(0.0, 10.0, 10);
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);
}

TEST(HistogramQuantileTest, SingleSampleIsEveryQuantile)
{
    Histogram h(0.0, 10.0, 10);
    h.sample(3.7);
    for (double q : {0.0, 0.25, 0.5, 0.95, 0.99, 1.0})
        EXPECT_DOUBLE_EQ(h.quantile(q), 3.7) << "q=" << q;
}

TEST(HistogramQuantileTest, AllEqualSamplesCollapseToThatValue)
{
    Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 1000; ++i)
        h.sample(6.25);
    for (double q : {0.0, 0.5, 0.99, 1.0})
        EXPECT_DOUBLE_EQ(h.quantile(q), 6.25) << "q=" << q;
}

TEST(HistogramQuantileTest, SingleBucketInterpolatesLinearly)
{
    // Degenerate binning: every in-range sample lands in the one
    // bucket, so the estimate is a pure linear ramp across it,
    // clamped to the observed extremes.
    Histogram h(0.0, 10.0, 1);
    h.sample(2.0);
    h.sample(8.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 2.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 8.0);
    EXPECT_NEAR(h.quantile(0.5), 5.0, 2.0 + 1e-9);
}

TEST(HistogramQuantileTest, ZeroBucketRequestClampsToOne)
{
    // The constructor guards num_buckets == 0 by allocating a single
    // bucket instead of dividing by zero.
    Histogram h(0.0, 10.0, 0);
    EXPECT_EQ(h.numBuckets(), 1u);
    h.sample(4.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 4.0);
}

TEST(HistogramQuantileTest, WeightedSamplesMatchRepeatedSamples)
{
    // sample(v, w) must merge into the books exactly like w separate
    // observations of v.
    Histogram weighted(0.0, 10.0, 10);
    Histogram repeated(0.0, 10.0, 10);
    weighted.sample(3.0, 7);
    weighted.sample(6.0, 3);
    for (int i = 0; i < 7; ++i)
        repeated.sample(3.0);
    for (int i = 0; i < 3; ++i)
        repeated.sample(6.0);
    EXPECT_EQ(weighted.count(), repeated.count());
    for (double q : {0.1, 0.5, 0.7, 0.9})
        EXPECT_DOUBLE_EQ(weighted.quantile(q), repeated.quantile(q))
            << "q=" << q;
}

TEST(GeomeanTest, MatchesHandComputedValue)
{
    EXPECT_NEAR(geomean({1.0, 4.0, 16.0}), 4.0, 1e-9);
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-9);
}

TEST(GeomeanTest, SingleValueIsItself)
{
    EXPECT_DOUBLE_EQ(geomean({7.5}), 7.5);
}

TEST(GeomeanTest, EmptyIsZero)
{
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(GeomeanTest, ZeroEntriesAreFloored)
{
    // A zero entry is clamped to the floor rather than collapsing the
    // mean to zero (mirrors how the paper's gmean bars handle zeros).
    double g = geomean({0.0, 1.0}, 1e-4);
    EXPECT_NEAR(g, std::sqrt(1e-4), 1e-9);
}

} // namespace
} // namespace relief
