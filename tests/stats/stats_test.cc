/** @file Unit tests for counters, accumulators, and geomean. */

#include <gtest/gtest.h>

#include <cmath>

#include "stats/stats.hh"

namespace relief
{
namespace
{

TEST(CounterTest, AddsAndResets)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(AccumTest, EmptyIsZero)
{
    Accum a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.variance(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
    EXPECT_DOUBLE_EQ(a.max(), 0.0);
}

TEST(AccumTest, MeanMinMax)
{
    Accum a;
    a.sample(2.0);
    a.sample(4.0);
    a.sample(9.0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
}

TEST(AccumTest, VarianceAndStddev)
{
    Accum a;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        a.sample(v);
    EXPECT_NEAR(a.variance(), 4.0, 1e-9);
    EXPECT_NEAR(a.stddev(), 2.0, 1e-9);
}

TEST(AccumTest, NegativeSamples)
{
    Accum a;
    a.sample(-3.0);
    a.sample(3.0);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), -3.0);
    EXPECT_DOUBLE_EQ(a.max(), 3.0);
}

TEST(AccumTest, ResetClearsState)
{
    Accum a;
    a.sample(5.0);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(GeomeanTest, MatchesHandComputedValue)
{
    EXPECT_NEAR(geomean({1.0, 4.0, 16.0}), 4.0, 1e-9);
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-9);
}

TEST(GeomeanTest, SingleValueIsItself)
{
    EXPECT_DOUBLE_EQ(geomean({7.5}), 7.5);
}

TEST(GeomeanTest, EmptyIsZero)
{
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(GeomeanTest, ZeroEntriesAreFloored)
{
    // A zero entry is clamped to the floor rather than collapsing the
    // mean to zero (mirrors how the paper's gmean bars handle zeros).
    double g = geomean({0.0, 1.0}, 1e-4);
    EXPECT_NEAR(g, std::sqrt(1e-4), 1e-9);
}

} // namespace
} // namespace relief
