/** @file Unit tests for the DMA engine. */

#include <gtest/gtest.h>

#include "dma/dma_engine.hh"
#include "interconnect/bus.hh"
#include "sim/logging.hh"

namespace relief
{
namespace
{

class DmaEngineTest : public ::testing::Test
{
  protected:
    DmaEngineTest()
    {
        bus_config.arbitrationLatency = 0;
        bus_config.bandwidthGBs = 100.0; // not the bottleneck
        mem_config.accessLatency = 0;
        mem_config.peakGBs = 2.0;
        mem_config.efficiency = 1.0; // 2 B/ns effective
        spm_config.portLatency = 0;
        spm_config.portGBs = 100.0;
        dma_config.setupLatency = 0;
        dma_config.channelGBs = 100.0;
    }

    void
    build()
    {
        bus = std::make_unique<Bus>(sim, "bus", bus_config);
        dram = std::make_unique<MainMemory>(sim, "dram", mem_config);
        dram_port = bus->registerPort("dram");
        spm = std::make_unique<Scratchpad>(sim, "spm", spm_config);
        dma = std::make_unique<DmaEngine>(sim, "dma", *bus, dram_port,
                                          *dram, *spm, dma_config);
    }

    Simulator sim;
    BusConfig bus_config;
    MainMemoryConfig mem_config;
    ScratchpadConfig spm_config;
    DmaConfig dma_config;
    std::unique_ptr<Bus> bus;
    std::unique_ptr<MainMemory> dram;
    PortId dram_port = -1;
    std::unique_ptr<Scratchpad> spm;
    std::unique_ptr<DmaEngine> dma;
};

TEST_F(DmaEngineTest, DramReadTimingFollowsBottleneck)
{
    build();
    Tick end = dma->readFromDram(200, nullptr);
    EXPECT_EQ(end, fromNs(100.0)); // 200 B at 2 B/ns DRAM
}

TEST_F(DmaEngineTest, CallbackFiresAtCompletion)
{
    build();
    Tick fired_at = 0;
    dma->readFromDram(200, [&] { fired_at = sim.now(); });
    sim.run();
    EXPECT_EQ(fired_at, fromNs(100.0));
}

TEST_F(DmaEngineTest, ReadAccountsDramAndSpmTraffic)
{
    build();
    dma->readFromDram(128, nullptr);
    EXPECT_EQ(dram->readBytes(), 128u);
    EXPECT_EQ(spm->writeBytes(), 128u);
    EXPECT_EQ(dma->bytesMoved(TrafficClass::DramRead), 128u);
}

TEST_F(DmaEngineTest, WriteAccountsDramAndSpmTraffic)
{
    build();
    dma->writeToDram(128, nullptr);
    EXPECT_EQ(dram->writeBytes(), 128u);
    EXPECT_EQ(spm->readBytes(), 128u);
    EXPECT_EQ(dma->bytesMoved(TrafficClass::DramWrite), 128u);
}

TEST_F(DmaEngineTest, ReadAndWriteChannelsAreIndependent)
{
    build();
    Tick r = dma->readFromDram(200, nullptr);
    Tick w = dma->writeToDram(200, nullptr);
    // Both contend on DRAM, so the write queues there, but the read
    // channel itself never blocks the write channel.
    EXPECT_EQ(r, fromNs(100.0));
    EXPECT_EQ(w, fromNs(200.0));
    EXPECT_EQ(dma->readChannelFree(), fromNs(2.0));
    EXPECT_GT(dma->writeChannelFree(), dma->readChannelFree());
}

TEST_F(DmaEngineTest, BackToBackReadsQueueOnDram)
{
    build();
    Tick t1 = dma->readFromDram(200, nullptr);
    Tick t2 = dma->readFromDram(200, nullptr);
    EXPECT_EQ(t1, fromNs(100.0));
    EXPECT_EQ(t2, fromNs(200.0));
}

TEST_F(DmaEngineTest, ForwardMovesSpmToSpm)
{
    build();
    Scratchpad producer(sim, "producer", spm_config);
    PortId producer_port = bus->registerPort("producer");
    Tick end = dma->forwardFrom(producer, producer_port, 1000, nullptr);
    // DRAM untouched; bus at 100 GB/s is fastest path.
    EXPECT_EQ(dram->totalBytes(), 0u);
    EXPECT_EQ(producer.readBytes(), 1000u);
    EXPECT_EQ(spm->writeBytes(), 1000u);
    EXPECT_EQ(dma->bytesMoved(TrafficClass::SpmForward), 1000u);
    EXPECT_EQ(end, fromNs(10.0));
}

TEST_F(DmaEngineTest, ForwardFromSelfPanics)
{
    build();
    EXPECT_THROW(dma->forwardFrom(*spm, dma->port(), 100, nullptr),
                 PanicError);
}

TEST_F(DmaEngineTest, FabricOccupancyRecorded)
{
    build();
    dma->readFromDram(200, nullptr);
    EXPECT_GT(bus->busyTime(), 0u);
    EXPECT_EQ(bus->totalBytes(), 200u);
}

TEST_F(DmaEngineTest, StreamBypassesChannelsAndPorts)
{
    dma_config.streamSetupLatency = 0;
    spm_config.portGBs = 1.0; // would throttle a DMA forward hard
    build();
    Scratchpad producer(sim, "producer", spm_config);
    PortId producer_port = bus->registerPort("producer");
    Tick end = dma->streamFrom(producer, producer_port, 1000, nullptr);
    // Only the 100 GB/s bus is claimed: 10 ns, not the 1000 ns the
    // 1 GB/s SPM ports would impose.
    EXPECT_EQ(end, fromNs(10.0));
    EXPECT_EQ(dma->readChannelFree(), 0u);
    EXPECT_EQ(dma->bytesMoved(TrafficClass::SpmForward), 1000u);
    EXPECT_EQ(producer.readBytes(), 1000u);
    EXPECT_EQ(spm->writeBytes(), 1000u);
}

TEST_F(DmaEngineTest, StreamSetupLatencyApplies)
{
    dma_config.streamSetupLatency = fromNs(100.0);
    build();
    Scratchpad producer(sim, "producer", spm_config);
    PortId producer_port = bus->registerPort("producer");
    Tick end = dma->streamFrom(producer, producer_port, 1000, nullptr);
    EXPECT_EQ(end, fromNs(110.0));
}

TEST_F(DmaEngineTest, StreamCallbackFires)
{
    build();
    Scratchpad producer(sim, "producer", spm_config);
    PortId producer_port = bus->registerPort("producer");
    bool fired = false;
    dma->streamFrom(producer, producer_port, 100, [&] { fired = true; });
    sim.run();
    EXPECT_TRUE(fired);
}

TEST_F(DmaEngineTest, StreamFromSelfPanics)
{
    build();
    EXPECT_THROW(dma->streamFrom(*spm, dma->port(), 100, nullptr),
                 PanicError);
}

TEST_F(DmaEngineTest, SetupLatencyDelaysCompletion)
{
    dma_config.setupLatency = fromNs(500.0);
    build();
    Tick end = dma->readFromDram(200, nullptr);
    EXPECT_EQ(end, fromNs(600.0));
}

TEST_F(DmaEngineTest, ChunkedTransferCompletesWithCorrectAccounting)
{
    dma_config.burstBytes = 64;
    build();
    Tick done_at = 0;
    dma->readFromDram(256, [&] { done_at = sim.now(); });
    sim.run();
    // 4 bursts of 64 B at 2 B/ns DRAM = 128 ns total.
    EXPECT_EQ(done_at, fromNs(128.0));
    EXPECT_EQ(dram->readBytes(), 256u); // counted once, not per chunk
    EXPECT_EQ(dma->bytesMoved(TrafficClass::DramRead), 256u);
}

TEST_F(DmaEngineTest, ChunkingLetsConcurrentStreamsInterleave)
{
    dma_config.burstBytes = 64;
    build();
    // Second engine contending for the same DRAM.
    Scratchpad spm2(sim, "spm2", spm_config);
    DmaEngine dma2(sim, "dma2", *bus, dram_port, *dram, spm2,
                   dma_config);
    Tick done1 = 0, done2 = 0;
    dma->readFromDram(256, [&] { done1 = sim.now(); });
    dma2.readFromDram(256, [&] { done2 = sim.now(); });
    sim.run();
    // Serialized whole-buffer service would finish stream 1 at 128 ns
    // and stream 2 at 256 ns; with burst interleaving both finish near
    // the 256 ns aggregate point.
    EXPECT_GT(done1, fromNs(128.0));
    EXPECT_LE(done2, fromNs(260.0));
    EXPECT_LT(done2 - done1, fromNs(64.0));
}

TEST_F(DmaEngineTest, ChunkingDisabledByDefault)
{
    build();
    Tick end = dma->readFromDram(4096, nullptr);
    EXPECT_EQ(end, transferTime(4096, 2.0));
    // One reservation on the DRAM channel.
    EXPECT_EQ(dram->channel().numTransfers(), 1u);
}

TEST_F(DmaEngineTest, ChunkedForwardAlsoWorks)
{
    dma_config.burstBytes = 100;
    build();
    Scratchpad producer(sim, "producer", spm_config);
    PortId producer_port = bus->registerPort("producer");
    bool done = false;
    dma->forwardFrom(producer, producer_port, 250, [&] { done = true; });
    sim.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(dma->bytesMoved(TrafficClass::SpmForward), 250u);
    EXPECT_EQ(producer.readBytes(), 250u);
}

} // namespace
} // namespace relief
