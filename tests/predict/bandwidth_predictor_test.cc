/** @file Unit tests for the bandwidth predictors (Table VIII schemes). */

#include <gtest/gtest.h>

#include "predict/bandwidth_predictor.hh"

namespace relief
{
namespace
{

TEST(BwPredictorTest, MaxAlwaysPredictsMax)
{
    BandwidthPredictor p(BwPredictorKind::Max, 12.8);
    EXPECT_DOUBLE_EQ(p.predict(), 12.8);
    p.observe(3.0);
    p.observe(4.0);
    EXPECT_DOUBLE_EQ(p.predict(), 12.8);
}

TEST(BwPredictorTest, LastTracksMostRecent)
{
    BandwidthPredictor p(BwPredictorKind::Last, 12.8);
    EXPECT_DOUBLE_EQ(p.predict(), 12.8); // no samples yet
    p.observe(5.0);
    EXPECT_DOUBLE_EQ(p.predict(), 5.0);
    p.observe(7.5);
    EXPECT_DOUBLE_EQ(p.predict(), 7.5);
}

TEST(BwPredictorTest, AverageOverWindow)
{
    BandwidthPredictor p(BwPredictorKind::Average, 12.8, 3);
    p.observe(2.0);
    p.observe(4.0);
    EXPECT_DOUBLE_EQ(p.predict(), 3.0);
    p.observe(6.0);
    EXPECT_DOUBLE_EQ(p.predict(), 4.0);
    // Window slides: the 2.0 sample falls out.
    p.observe(8.0);
    EXPECT_DOUBLE_EQ(p.predict(), 6.0);
}

TEST(BwPredictorTest, AverageDefaultsToPaperWindow)
{
    BandwidthPredictor p(BwPredictorKind::Average, 12.8);
    for (int i = 0; i < 15; ++i)
        p.observe(4.0);
    p.observe(8.0); // evicts one 4.0 from the n=15 window
    EXPECT_NEAR(p.predict(), (14 * 4.0 + 8.0) / 15.0, 1e-12);
}

TEST(BwPredictorTest, EwmaFollowsPaperEquation)
{
    BandwidthPredictor p(BwPredictorKind::Ewma, 12.8, 15, 0.25);
    // pred starts at max; pred' = 0.25*bw + 0.75*pred.
    p.observe(4.0);
    EXPECT_DOUBLE_EQ(p.predict(), 0.25 * 4.0 + 0.75 * 12.8);
    double prev = p.predict();
    p.observe(6.0);
    EXPECT_DOUBLE_EQ(p.predict(), 0.25 * 6.0 + 0.75 * prev);
}

TEST(BwPredictorTest, IgnoresNonPositiveSamples)
{
    BandwidthPredictor p(BwPredictorKind::Last, 12.8);
    p.observe(5.0);
    p.observe(0.0);
    p.observe(-2.0);
    EXPECT_DOUBLE_EQ(p.predict(), 5.0);
    EXPECT_EQ(p.numObservations(), 1u);
}

TEST(BwPredictorTest, Names)
{
    EXPECT_STREQ(bwPredictorName(BwPredictorKind::Max), "Max");
    EXPECT_STREQ(bwPredictorName(BwPredictorKind::Last), "Last");
    EXPECT_STREQ(bwPredictorName(BwPredictorKind::Average), "Average");
    EXPECT_STREQ(bwPredictorName(BwPredictorKind::Ewma), "EWMA");
}

} // namespace
} // namespace relief
