/** @file Unit tests for runtime/data-movement prediction. */

#include <gtest/gtest.h>

#include "dag/dag.hh"
#include "predict/runtime_predictor.hh"

namespace relief
{
namespace
{

constexpr std::array<int, numAccTypes> oneOfEach = {1, 1, 1, 1, 1, 1, 1};

TaskParams
em(int inputs)
{
    TaskParams p;
    p.type = AccType::ElemMatrix;
    p.numInputs = inputs;
    return p;
}

TEST(RuntimePredictorTest, MaxDmCountsAllOperands)
{
    Dag dag("t", 'T');
    Node *a = dag.addNode(em(2), "a");
    RuntimePredictor pred(BwPredictorKind::Max, DmPredictorKind::Max,
                          12.8, oneOfEach);
    EXPECT_EQ(pred.predictBytes(*a), 3u * 65536u);
}

TEST(RuntimePredictorTest, PredictAddsComputeAndMemory)
{
    Dag dag("t", 'T');
    Node *a = dag.addNode(em(2), "a");
    RuntimePredictor pred(BwPredictorKind::Max, DmPredictorKind::Max,
                          12.8, oneOfEach);
    Tick expected_mem = transferTime(3 * 65536, 12.8);
    EXPECT_EQ(pred.predict(*a), computeTime(a->params) + expected_mem);
}

TEST(RuntimePredictorTest, FixedRuntimeShortCircuits)
{
    Dag dag("t", 'T');
    Node *a = dag.addNode(em(1), "a");
    a->fixedRuntime = fromUs(42.0);
    RuntimePredictor pred(BwPredictorKind::Max, DmPredictorKind::Max,
                          12.8, oneOfEach);
    EXPECT_EQ(pred.predict(*a), fromUs(42.0));
    EXPECT_EQ(pred.predictMemoryTime(*a), 0u);
}

TEST(RuntimePredictorTest, GraphDmPredictsColocationForSameTypeChild)
{
    // a(EM) -> b(EM): b is a's only child of the same type, so its
    // parent operand is predicted to colocate (no bytes).
    Dag dag("t", 'T');
    Node *a = dag.addNode(em(1), "a");
    Node *b = dag.addNode(em(2), "b");
    dag.addEdge(a, b);
    RuntimePredictor pred(BwPredictorKind::Max, DmPredictorKind::Graph,
                          12.8, oneOfEach);
    // b: one external operand + output (a's output is not written
    // back because b, its only child, can forward).
    EXPECT_EQ(pred.predictBytes(*b), 2u * 65536u);
}

TEST(RuntimePredictorTest, GraphDmOnlyEarliestDeadlineChildColocates)
{
    Dag dag("t", 'T');
    Node *a = dag.addNode(em(1), "a");
    Node *b = dag.addNode(em(2), "b");
    Node *c = dag.addNode(em(2), "c");
    dag.addEdge(a, b);
    dag.addEdge(a, c);
    b->relDeadlineCp = fromUs(10.0);
    c->relDeadlineCp = fromUs(20.0);
    RuntimePredictor pred(BwPredictorKind::Max, DmPredictorKind::Graph,
                          12.8, oneOfEach);
    // b colocates (earliest deadline), c does not.
    EXPECT_LT(pred.predictBytes(*b), pred.predictBytes(*c));
}

TEST(RuntimePredictorTest, GraphDmOutputKeptWhenChildrenOversubscribe)
{
    // Two same-type children on a single-instance type cannot both be
    // next in line: the output is predicted to be written back.
    Dag dag("t", 'T');
    Node *a = dag.addNode(em(1), "a");
    Node *b = dag.addNode(em(2), "b");
    Node *c = dag.addNode(em(2), "c");
    dag.addEdge(a, b);
    dag.addEdge(a, c);
    b->relDeadlineCp = fromUs(10.0);
    c->relDeadlineCp = fromUs(20.0);

    RuntimePredictor one(BwPredictorKind::Max, DmPredictorKind::Graph,
                         12.8, oneOfEach);
    std::array<int, numAccTypes> two = oneOfEach;
    two[accIndex(AccType::ElemMatrix)] = 2;
    RuntimePredictor more(BwPredictorKind::Max, DmPredictorKind::Graph,
                          12.8, two);
    EXPECT_GT(one.predictBytes(*a), more.predictBytes(*a));
}

TEST(RuntimePredictorTest, GraphDmOutputKeptWhenLaterParentGates)
{
    // a -> c and b -> c where b has the later deadline: a is not the
    // latest-finishing parent of c, so a's output cannot assume a
    // forward and is written back.
    Dag dag("t", 'T');
    Node *a = dag.addNode(em(1), "a");
    Node *b = dag.addNode(em(1), "b");
    Node *c = dag.addNode(em(2), "c");
    dag.addEdge(a, c);
    dag.addEdge(b, c);
    a->relDeadlineCp = fromUs(10.0);
    b->relDeadlineCp = fromUs(50.0);
    RuntimePredictor pred(BwPredictorKind::Max, DmPredictorKind::Graph,
                          12.8, oneOfEach);
    // a pays its output; b (latest parent, its child colocatable... b
    // and c share the EM type but c's other parent a is earlier) does
    // not.
    EXPECT_GT(pred.predictBytes(*a), pred.predictBytes(*b) - 65536u);
    std::uint64_t a_bytes = pred.predictBytes(*a);
    EXPECT_EQ(a_bytes, 1u * 65536u + 65536u); // ext input + output
}

TEST(RuntimePredictorTest, BandwidthFeedbackChangesPrediction)
{
    Dag dag("t", 'T');
    Node *a = dag.addNode(em(2), "a");
    RuntimePredictor pred(BwPredictorKind::Last, DmPredictorKind::Max,
                          12.8, oneOfEach);
    Tick before = pred.predict(*a);
    pred.observeBandwidth(3.2); // 4x slower than peak
    Tick after = pred.predict(*a);
    EXPECT_GT(after, before);
}

TEST(RuntimePredictorTest, ErrorAccountingSigned)
{
    RuntimePredictor pred(BwPredictorKind::Max, DmPredictorKind::Max,
                          12.8, oneOfEach);
    pred.recordComputeOutcome(110, 100); // +10 %
    pred.recordComputeOutcome(90, 100);  // -10 %
    EXPECT_NEAR(pred.computeErrorPct(), 0.0, 1e-9);
    pred.recordMemoryOutcome(50, 100); // -50 %
    EXPECT_NEAR(pred.memoryErrorPct(), -50.0, 1e-9);
}

} // namespace
} // namespace relief
