/** @file Unit tests for the crossbar interconnect. */

#include <gtest/gtest.h>

#include "interconnect/crossbar.hh"
#include "sim/logging.hh"

namespace relief
{
namespace
{

class CrossbarTest : public ::testing::Test
{
  protected:
    CrossbarTest()
    {
        config.routeLatency = 0;
        config.portBandwidthGBs = 1.0;
    }

    Simulator sim;
    CrossbarConfig config;
};

TEST_F(CrossbarTest, DisjointPairsProceedConcurrently)
{
    Crossbar xbar(sim, "xbar", config);
    PortId a = xbar.registerPort("a");
    PortId b = xbar.registerPort("b");
    PortId c = xbar.registerPort("c");
    PortId d = xbar.registerPort("d");
    auto t1 = reserveTransfer(xbar.path(a, b), 0, 100);
    auto t2 = reserveTransfer(xbar.path(c, d), 0, 100);
    // No shared resource: both run [0, 100ns).
    EXPECT_EQ(t1.start, 0u);
    EXPECT_EQ(t2.start, 0u);
    EXPECT_EQ(t1.end, t2.end);
}

TEST_F(CrossbarTest, SharedDestinationSerializes)
{
    Crossbar xbar(sim, "xbar", config);
    PortId a = xbar.registerPort("a");
    PortId b = xbar.registerPort("b");
    PortId c = xbar.registerPort("c");
    auto t1 = reserveTransfer(xbar.path(a, c), 0, 100);
    auto t2 = reserveTransfer(xbar.path(b, c), 0, 100);
    EXPECT_EQ(t1.end, fromNs(100.0));
    EXPECT_EQ(t2.start, fromNs(100.0)); // c's ingress is busy
}

TEST_F(CrossbarTest, SharedSourceSerializes)
{
    Crossbar xbar(sim, "xbar", config);
    PortId a = xbar.registerPort("a");
    PortId b = xbar.registerPort("b");
    PortId c = xbar.registerPort("c");
    auto t1 = reserveTransfer(xbar.path(a, b), 0, 100);
    auto t2 = reserveTransfer(xbar.path(a, c), 0, 100);
    EXPECT_EQ(t2.start, t1.end); // a's egress is busy
}

TEST_F(CrossbarTest, OppositeDirectionsDoNotConflict)
{
    Crossbar xbar(sim, "xbar", config);
    PortId a = xbar.registerPort("a");
    PortId b = xbar.registerPort("b");
    auto t1 = reserveTransfer(xbar.path(a, b), 0, 100);
    auto t2 = reserveTransfer(xbar.path(b, a), 0, 100);
    // a->b uses a.egress + b.ingress; b->a uses b.egress + a.ingress.
    EXPECT_EQ(t1.start, 0u);
    EXPECT_EQ(t2.start, 0u);
}

TEST_F(CrossbarTest, PathHasTwoHops)
{
    Crossbar xbar(sim, "xbar", config);
    PortId a = xbar.registerPort("a");
    PortId b = xbar.registerPort("b");
    EXPECT_EQ(xbar.path(a, b).size(), 2u);
}

TEST_F(CrossbarTest, RouteLatencyAccumulatesPerHop)
{
    config.routeLatency = fromNs(2.5);
    Crossbar xbar(sim, "xbar", config);
    PortId a = xbar.registerPort("a");
    PortId b = xbar.registerPort("b");
    auto t = reserveTransfer(xbar.path(a, b), 0, 100);
    EXPECT_EQ(t.end, fromNs(105.0)); // 2 x 2.5 ns + 100 ns payload
}

TEST_F(CrossbarTest, SelfTransferPanics)
{
    Crossbar xbar(sim, "xbar", config);
    PortId a = xbar.registerPort("a");
    EXPECT_THROW(xbar.path(a, a), PanicError);
}

} // namespace
} // namespace relief
