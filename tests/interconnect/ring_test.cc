/** @file Unit tests for the ring interconnect. */

#include <gtest/gtest.h>

#include <memory>

#include "core/soc.hh"
#include "interconnect/ring.hh"
#include "sim/logging.hh"

namespace relief
{
namespace
{

class RingTest : public ::testing::Test
{
  protected:
    RingTest()
    {
        config.hopLatency = fromNs(1.0);
        config.linkBandwidthGBs = 1.0;
    }

    std::unique_ptr<Ring>
    makeRing(int ports)
    {
        auto ring = std::make_unique<Ring>(sim, "ring", config);
        for (int i = 0; i < ports; ++i)
            ring->registerPort("p" + std::to_string(i));
        return ring;
    }

    Simulator sim;
    RingConfig config;
};

TEST_F(RingTest, ShortestDirectionIsChosen)
{
    auto ring_ptr = makeRing(6);
    EXPECT_EQ(ring_ptr->hopCount(0, 1), 1);
    EXPECT_EQ(ring_ptr->hopCount(0, 3), 3);
    EXPECT_EQ(ring_ptr->hopCount(0, 5), 1); // counter-clockwise
    EXPECT_EQ(ring_ptr->hopCount(1, 5), 2);
}

TEST_F(RingTest, PathLengthEqualsHopCount)
{
    auto ring_ptr = makeRing(6);
    EXPECT_EQ(ring_ptr->path(0, 1).size(), 1u);
    EXPECT_EQ(ring_ptr->path(0, 3).size(), 3u);
    EXPECT_EQ(ring_ptr->path(0, 5).size(), 1u);
    EXPECT_EQ(ring_ptr->path(4, 1).size(), 3u);
}

TEST_F(RingTest, HopLatencyAccumulates)
{
    auto ring_ptr = makeRing(6);
    auto t = reserveTransfer(ring_ptr->path(0, 3), 0, 100);
    // 3 hops x 1 ns + 100 B at 1 GB/s.
    EXPECT_EQ(t.end, fromNs(103.0));
}

TEST_F(RingTest, DisjointArcsProceedConcurrently)
{
    auto ring_ptr = makeRing(6);
    auto t1 = reserveTransfer(ring_ptr->path(0, 1), 0, 100);
    auto t2 = reserveTransfer(ring_ptr->path(3, 4), 0, 100);
    EXPECT_EQ(t1.start, 0u);
    EXPECT_EQ(t2.start, 0u);
}

TEST_F(RingTest, OverlappingArcsContend)
{
    auto ring_ptr = makeRing(6);
    auto t1 = reserveTransfer(ring_ptr->path(0, 2), 0, 100);
    auto t2 = reserveTransfer(ring_ptr->path(1, 2), 0, 100);
    // Both use the segment between ports 1 and 2 (clockwise).
    EXPECT_EQ(t1.start, 0u);
    EXPECT_GE(t2.start, t1.end - fromNs(2.0));
}

TEST_F(RingTest, OppositeDirectionsDoNotContend)
{
    auto ring_ptr = makeRing(4);
    auto t1 = reserveTransfer(ring_ptr->path(0, 1), 0, 100); // cw on seg 0
    auto t2 = reserveTransfer(ring_ptr->path(1, 0), 0, 100); // ccw on seg 0
    EXPECT_EQ(t1.start, 0u);
    EXPECT_EQ(t2.start, 0u);
}

TEST_F(RingTest, SelfAndBadPortsPanic)
{
    auto ring_ptr = makeRing(3);
    EXPECT_THROW(ring_ptr->path(0, 0), PanicError);
    EXPECT_THROW(ring_ptr->path(0, 9), PanicError);
}

TEST_F(RingTest, WorksAsSocFabric)
{
    SocConfig soc_config;
    soc_config.fabric = FabricKind::Ring;
    Soc soc(soc_config);
    DagPtr dag = buildApp(AppId::Canny);
    soc.submit(dag);
    soc.run(fromMs(50.0));
    EXPECT_TRUE(dag->complete());
    EXPECT_GT(soc.report().fabricOccupancy, 0.0);
}

} // namespace
} // namespace relief
