/** @file Unit tests for the shared-bus interconnect. */

#include <gtest/gtest.h>

#include "interconnect/bus.hh"
#include "sim/logging.hh"

namespace relief
{
namespace
{

class BusTest : public ::testing::Test
{
  protected:
    Simulator sim;
    BusConfig config;
    Bus makeBus()
    {
        return Bus(sim, "bus", config);
    }
};

TEST_F(BusTest, RegistersPortsSequentially)
{
    Bus bus = makeBus();
    EXPECT_EQ(bus.registerPort("a"), 0);
    EXPECT_EQ(bus.registerPort("b"), 1);
    EXPECT_EQ(bus.numPorts(), 2);
}

TEST_F(BusTest, AllPathsShareOneChannel)
{
    Bus bus = makeBus();
    PortId a = bus.registerPort("a");
    PortId b = bus.registerPort("b");
    PortId c = bus.registerPort("c");
    auto p1 = bus.path(a, b);
    auto p2 = bus.path(c, a);
    ASSERT_EQ(p1.size(), 1u);
    ASSERT_EQ(p2.size(), 1u);
    EXPECT_EQ(p1[0], p2[0]); // same resource: transfers serialize
}

TEST_F(BusTest, ConcurrentTransfersSerialize)
{
    config.arbitrationLatency = 0;
    config.bandwidthGBs = 1.0;
    Bus bus(sim, "bus", config);
    PortId a = bus.registerPort("a");
    PortId b = bus.registerPort("b");
    PortId c = bus.registerPort("c");
    auto t1 = reserveTransfer(bus.path(a, b), 0, 100);
    auto t2 = reserveTransfer(bus.path(c, b), 0, 100);
    EXPECT_EQ(t1.end, fromNs(100.0));
    EXPECT_EQ(t2.start, fromNs(100.0));
    EXPECT_EQ(t2.end, fromNs(200.0));
}

TEST_F(BusTest, SelfTransferPanics)
{
    Bus bus = makeBus();
    PortId a = bus.registerPort("a");
    bus.registerPort("b");
    EXPECT_THROW(bus.path(a, a), PanicError);
}

TEST_F(BusTest, BadPortPanics)
{
    Bus bus = makeBus();
    PortId a = bus.registerPort("a");
    EXPECT_THROW(bus.path(a, 7), PanicError);
    EXPECT_THROW(bus.path(-1, a), PanicError);
}

TEST_F(BusTest, OccupancyTracksRecordedTransfers)
{
    Bus bus = makeBus();
    bus.recordTransfer(0, fromNs(50.0), 1000);
    bus.recordTransfer(fromNs(25.0), fromNs(75.0), 500);
    EXPECT_EQ(bus.busyTime(), fromNs(75.0));
    EXPECT_DOUBLE_EQ(bus.occupancy(fromNs(150.0)), 0.5);
    EXPECT_EQ(bus.totalBytes(), 1500u);
    EXPECT_EQ(bus.numTransfers(), 2u);
}

TEST_F(BusTest, ResetStatsClearsOccupancy)
{
    Bus bus = makeBus();
    bus.recordTransfer(0, fromNs(50.0), 1000);
    bus.resetStats();
    EXPECT_EQ(bus.busyTime(), 0u);
    EXPECT_EQ(bus.totalBytes(), 0u);
}

TEST_F(BusTest, DefaultBandwidthMatchesTableVI)
{
    Bus bus = makeBus();
    EXPECT_DOUBLE_EQ(bus.channel().bandwidth(), 14.9);
}

} // namespace
} // namespace relief
