/** @file Tests for the additional composed applications. */

#include <gtest/gtest.h>

#include "core/soc.hh"
#include "dag/apps/extra_apps.hh"
#include "kernels/vision.hh"

namespace relief
{
namespace
{

AppConfig
functionalConfig()
{
    AppConfig config;
    config.functional = true;
    return config;
}

/** Run one extra-app DAG to completion under RELIEF. */
void
runDag(DagPtr dag)
{
    Soc soc;
    soc.submit(dag);
    soc.run(fromMs(50.0));
    ASSERT_TRUE(dag->complete()) << dag->name();
}

TEST(ExtraAppsTest, SharpenStructure)
{
    DagPtr dag = buildSharpen();
    EXPECT_EQ(dag->numNodes(), 6);
    EXPECT_EQ(dag->numEdges(), 7);
    EXPECT_EQ(dag->roots().size(), 1u);
    EXPECT_EQ(dag->leaves().size(), 1u);
    EXPECT_TRUE(dag->finalized());
}

TEST(ExtraAppsTest, SobelViewStructure)
{
    DagPtr dag = buildSobelView();
    EXPECT_EQ(dag->numNodes(), 8);
    EXPECT_EQ(dag->leaves().size(), 1u);
}

TEST(ExtraAppsTest, MotionHasTwoIndependentFrameChains)
{
    DagPtr dag = buildMotion();
    EXPECT_EQ(dag->numNodes(), 10);
    EXPECT_EQ(dag->roots().size(), 2u); // two ISP frames
    EXPECT_EQ(dag->leaves().size(), 1u);
}

TEST(ExtraAppsTest, AllMeetDeadlinesAlone)
{
    for (DagPtr dag :
         {buildSharpen(), buildSobelView(), buildMotion()}) {
        EXPECT_LT(dag->criticalPathRuntime(), dag->relativeDeadline())
            << dag->name();
        runDag(dag);
        EXPECT_LE(dag->finishTick(), dag->absoluteDeadline())
            << dag->name();
    }
}

TEST(ExtraAppsTest, SharpenMatchesReference)
{
    DagPtr dag = buildSharpen(functionalConfig());
    runDag(dag);
    BayerImage raw = makeSyntheticScene(128, 128, 1);
    Plane expected = sharpenReference(raw);
    EXPECT_EQ(dag->leaves().front()->outputData, expected.data());
}

TEST(ExtraAppsTest, SobelViewMatchesReference)
{
    DagPtr dag = buildSobelView(functionalConfig());
    runDag(dag);
    BayerImage raw = makeSyntheticScene(128, 128, 1);
    Plane expected = sobelViewReference(raw);
    EXPECT_EQ(dag->leaves().front()->outputData, expected.data());
}

TEST(ExtraAppsTest, MotionMatchesReference)
{
    DagPtr dag = buildMotion(functionalConfig());
    runDag(dag);
    BayerImage frame_a = makeSyntheticScene(128, 128, 1);
    BayerImage frame_b = makeSyntheticScene(128, 128, 2);
    Plane expected = motionReference(frame_a, frame_b);
    EXPECT_EQ(dag->leaves().front()->outputData, expected.data());
}

TEST(ExtraAppsTest, MotionDetectsChangedPixels)
{
    DagPtr dag = buildMotion(functionalConfig());
    runDag(dag);
    const auto &mask = dag->leaves().front()->outputData;
    int active = 0;
    for (float v : mask) {
        EXPECT_TRUE(v == 0.0f || v == 1.0f);
        active += v != 0.0f;
    }
    // The two synthetic frames differ only by sensor noise; a modest
    // number of pixels light up, not the whole frame.
    EXPECT_LT(active, int(mask.size()) / 2);
}

TEST(ExtraAppsTest, SharpenIncreasesLocalContrast)
{
    BayerImage raw = makeSyntheticScene(128, 128, 1);
    Plane gray = grayscale(isp(raw));
    Plane sharp = sharpenReference(raw);
    // Variance (contrast energy) must grow.
    auto variance = [](const Plane &p) {
        double mean = p.sum() / double(p.size());
        double var = 0.0;
        for (float v : p.data())
            var += (double(v) - mean) * (double(v) - mean);
        return var / double(p.size());
    };
    EXPECT_GT(variance(sharp), variance(gray));
}

} // namespace
} // namespace relief
