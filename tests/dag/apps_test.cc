/** @file Tests for the five application DAG builders (Table II/V). */

#include <gtest/gtest.h>

#include <map>

#include "dag/apps/apps.hh"
#include "sim/logging.hh"

namespace relief
{
namespace
{

std::map<AccType, int>
typeHistogram(Dag &dag)
{
    std::map<AccType, int> hist;
    for (Node *node : dag.allNodes())
        ++hist[node->params.type];
    return hist;
}

TEST(AppsTest, DeadlinesMatchTableV)
{
    EXPECT_EQ(appDeadline(AppId::Canny), fromMs(16.6));
    EXPECT_EQ(appDeadline(AppId::Deblur), fromMs(16.6));
    EXPECT_EQ(appDeadline(AppId::Harris), fromMs(16.6));
    EXPECT_EQ(appDeadline(AppId::Gru), fromMs(7.0));
    EXPECT_EQ(appDeadline(AppId::Lstm), fromMs(7.0));
}

TEST(AppsTest, ParseMixRoundTrip)
{
    auto mix = parseMix("CDL");
    ASSERT_EQ(mix.size(), 3u);
    EXPECT_EQ(mix[0], AppId::Canny);
    EXPECT_EQ(mix[1], AppId::Deblur);
    EXPECT_EQ(mix[2], AppId::Lstm);
    EXPECT_THROW(parseMix("CX"), FatalError);
}

TEST(AppsTest, CannyStructure)
{
    DagPtr dag = buildApp(AppId::Canny);
    EXPECT_EQ(dag->numNodes(), 13);
    EXPECT_EQ(dag->numEdges(), 15);
    auto hist = typeHistogram(*dag);
    EXPECT_EQ(hist[AccType::ISP], 1);
    EXPECT_EQ(hist[AccType::Grayscale], 1);
    EXPECT_EQ(hist[AccType::Convolution], 3);
    EXPECT_EQ(hist[AccType::ElemMatrix], 6);
    EXPECT_EQ(hist[AccType::CannyNonMax], 1);
    EXPECT_EQ(hist[AccType::EdgeTracking], 1);
    EXPECT_EQ(dag->roots().size(), 1u);
    EXPECT_EQ(dag->leaves().size(), 1u);
}

TEST(AppsTest, DeblurIsALinearPipelineOfIterations)
{
    DagPtr dag = buildApp(AppId::Deblur);
    EXPECT_EQ(dag->numNodes(), 22); // 2 + 5 iterations x 4
    auto hist = typeHistogram(*dag);
    EXPECT_EQ(hist[AccType::Convolution], 10);
    EXPECT_EQ(hist[AccType::ElemMatrix], 10);
    EXPECT_EQ(dag->leaves().size(), 1u);
}

TEST(AppsTest, DeblurIterationsConfigurable)
{
    AppConfig config;
    config.deblurIters = 2;
    DagPtr dag = buildApp(AppId::Deblur, config);
    EXPECT_EQ(dag->numNodes(), 10);
}

TEST(AppsTest, HarrisStructure)
{
    DagPtr dag = buildApp(AppId::Harris);
    EXPECT_EQ(dag->numNodes(), 16);
    auto hist = typeHistogram(*dag);
    EXPECT_EQ(hist[AccType::Convolution], 5);
    EXPECT_EQ(hist[AccType::ElemMatrix], 8);
    EXPECT_EQ(hist[AccType::HarrisNonMax], 1);
}

TEST(AppsTest, RnnAppsAreElemMatrixOnly)
{
    for (AppId app : {AppId::Gru, AppId::Lstm}) {
        DagPtr dag = buildApp(app);
        for (Node *node : dag->allNodes())
            EXPECT_EQ(node->params.type, AccType::ElemMatrix)
                << node->label;
    }
}

TEST(AppsTest, RnnTaskCountsMatchTableIIArithmetic)
{
    // GRU: 14 tasks/step, LSTM: 17 tasks/step, sequence length 8.
    EXPECT_EQ(buildApp(AppId::Gru)->numNodes(), 112);
    EXPECT_EQ(buildApp(AppId::Lstm)->numNodes(), 136);
}

TEST(AppsTest, RnnSequenceLengthScalesNodes)
{
    AppConfig config;
    config.seqLen = 2;
    EXPECT_EQ(buildApp(AppId::Gru, config)->numNodes(), 28);
    EXPECT_EQ(buildApp(AppId::Lstm, config)->numNodes(), 34);
}

TEST(AppsTest, ComputeTimesTrackTableII)
{
    // Total per-app compute time vs Table II (us). The DAG shapes are
    // reconstructed from Fig. 1, so allow a few percent of slack.
    const std::map<AppId, double> expected = {
        {AppId::Canny, 3539.37},  {AppId::Deblur, 15610.58},
        {AppId::Gru, 1249.31},    {AppId::Harris, 6157.30},
        {AppId::Lstm, 1470.02},
    };
    for (const auto &[app, us] : expected) {
        DagPtr dag = buildApp(app);
        double measured = toUs(dag->totalComputeTime());
        EXPECT_NEAR(measured, us, us * 0.05) << appName(app);
    }
}

TEST(AppsTest, DeblurComputeMatchesTableIIExactly)
{
    // The deblur decomposition reproduces Table II to within rounding:
    // I + G + 10 x C(5x5) + 10 x EM = 15610.6 us.
    DagPtr dag = buildApp(AppId::Deblur);
    EXPECT_NEAR(toUs(dag->totalComputeTime()), 15610.58, 0.5);
}

TEST(AppsTest, RnnChainsReachNineNodes)
{
    // Paper: RNN step graphs contain linear chains up to 9 nodes. The
    // longest per-step chain (through the candidate state) is 9.
    DagPtr dag = buildApp(AppId::Gru, AppConfig{.seqLen = 1});
    // Longest path in a single step, counted in nodes.
    int n = dag->numNodes();
    std::vector<int> depth(std::size_t(n), 1);
    int longest = 1;
    for (int i = 0; i < n; ++i) {
        Node *node = dag->node(i);
        for (Node *c : node->children) {
            auto &d = depth[std::size_t(c->indexInDag)];
            d = std::max(d, depth[std::size_t(i)] + 1);
            longest = std::max(longest, d);
        }
    }
    EXPECT_EQ(longest, 9);
}

TEST(AppsTest, LaxityWhenRunAloneIsPositive)
{
    // Table V: every application has positive laxity when run alone
    // (deadline minus critical-path runtime).
    for (AppId app : allApps) {
        DagPtr dag = buildApp(app);
        EXPECT_LT(dag->criticalPathRuntime(), dag->relativeDeadline())
            << appName(app);
    }
}

TEST(AppsTest, DeblurLaxityIsTightest)
{
    // Table V: deblur has by far the smallest standalone laxity.
    std::map<AppId, Tick> laxity;
    for (AppId app : allApps) {
        DagPtr dag = buildApp(app);
        laxity[app] = dag->relativeDeadline() - dag->criticalPathRuntime();
    }
    for (AppId app : {AppId::Canny, AppId::Gru, AppId::Harris,
                      AppId::Lstm}) {
        EXPECT_LT(laxity[AppId::Deblur], laxity[app]) << appName(app);
    }
}

TEST(AppsTest, FunctionalFlagAttachesPayloads)
{
    AppConfig config;
    config.functional = true;
    for (AppId app : allApps) {
        DagPtr dag = buildApp(app, config);
        for (Node *node : dag->allNodes())
            EXPECT_TRUE(bool(node->fn)) << node->label;
    }
}

TEST(AppsTest, NonFunctionalHasNoPayloads)
{
    DagPtr dag = buildApp(AppId::Canny);
    for (Node *node : dag->allNodes())
        EXPECT_FALSE(bool(node->fn));
}

} // namespace
} // namespace relief
