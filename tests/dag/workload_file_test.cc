/** @file Unit tests for the text workload format. */

#include <gtest/gtest.h>

#include <sstream>

#include "core/soc.hh"
#include "dag/workload_file.hh"
#include "sim/logging.hh"

namespace relief
{
namespace
{

std::vector<DagPtr>
parse(const std::string &text)
{
    std::istringstream in(text);
    return parseWorkload(in);
}

const char *const kPipeline = R"(
# a small pipeline
dag pipeline deadline_ms 5.0
node load I
node gray G
node blur C filter 3
node stats EM op add inputs 2
edge load gray
edge gray blur
edge gray stats
edge blur stats
end
)";

TEST(WorkloadFileTest, ParsesThePipelineExample)
{
    auto dags = parse(kPipeline);
    ASSERT_EQ(dags.size(), 1u);
    Dag &dag = *dags[0];
    EXPECT_EQ(dag.name(), "pipeline");
    EXPECT_EQ(dag.relativeDeadline(), fromMs(5.0));
    EXPECT_EQ(dag.numNodes(), 4);
    EXPECT_EQ(dag.numEdges(), 4);
    EXPECT_TRUE(dag.finalized());
    EXPECT_EQ(dag.node(2)->params.type, AccType::Convolution);
    EXPECT_EQ(dag.node(2)->params.filterSize, 3);
    EXPECT_EQ(dag.node(3)->params.op, ElemOp::Add);
    EXPECT_EQ(dag.node(3)->params.numInputs, 2);
}

TEST(WorkloadFileTest, ParsesMultipleDags)
{
    auto dags = parse(R"(
dag a deadline_ms 1
node x EM
end
dag b deadline_ms 2
node y C
end
)");
    ASSERT_EQ(dags.size(), 2u);
    EXPECT_EQ(dags[0]->name(), "a");
    EXPECT_EQ(dags[1]->name(), "b");
}

TEST(WorkloadFileTest, RuntimeOverrideAndElems)
{
    auto dags = parse(R"(
dag t deadline_ms 1
node x EM elems 256 runtime_us 42.5
end
)");
    Node *node = dags[0]->node(0);
    EXPECT_EQ(node->params.elems, 256u);
    EXPECT_EQ(node->fixedRuntime, fromUs(42.5));
}

TEST(WorkloadFileTest, RejectsMalformedInput)
{
    EXPECT_THROW(parse("node x EM\n"), FatalError);   // outside dag
    EXPECT_THROW(parse("edge a b\n"), FatalError);    // outside dag
    EXPECT_THROW(parse("end\n"), FatalError);         // outside dag
    EXPECT_THROW(parse("dag a deadline_ms 1\n"), FatalError); // no end
    EXPECT_THROW(parse(""), FatalError);              // no dags
    EXPECT_THROW(parse("bogus\n"), FatalError);
}

TEST(WorkloadFileTest, RejectsBadNodes)
{
    EXPECT_THROW(parse("dag a deadline_ms 1\nnode x QQ\nend\n"),
                 FatalError);
    EXPECT_THROW(parse("dag a deadline_ms 1\nnode x EM wat 3\nend\n"),
                 FatalError);
    EXPECT_THROW(
        parse("dag a deadline_ms 1\nnode x EM\nnode x EM\nend\n"),
        FatalError);
    EXPECT_THROW(parse("dag a deadline_ms 1\nnode x EM op nope\nend\n"),
                 FatalError);
}

TEST(WorkloadFileTest, RejectsBadEdgesAndDeadlines)
{
    EXPECT_THROW(
        parse("dag a deadline_ms 1\nnode x EM\nedge x y\nend\n"),
        FatalError);
    EXPECT_THROW(parse("dag a deadline_ms 0\nnode x EM\nend\n"),
                 FatalError);
    EXPECT_THROW(parse("dag a deadline_ms 1\ndag b deadline_ms 1\n"),
                 FatalError);
}

TEST(WorkloadFileTest, MissingFileIsFatal)
{
    EXPECT_THROW(loadWorkloadFile("/no/such/workload.txt"), FatalError);
}

TEST(WorkloadFileTest, ParsedDagRunsOnTheSoc)
{
    auto dags = parse(kPipeline);
    Soc soc;
    soc.submit(dags[0]);
    soc.run(fromMs(50.0));
    EXPECT_TRUE(dags[0]->complete());
}

} // namespace
} // namespace relief
