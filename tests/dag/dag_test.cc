/** @file Unit tests for DAG construction and bookkeeping. */

#include <gtest/gtest.h>

#include <sstream>

#include "dag/apps/apps.hh"
#include "dag/dag.hh"
#include "sim/logging.hh"

namespace relief
{
namespace
{

TaskParams
em(int inputs = 1)
{
    TaskParams p;
    p.type = AccType::ElemMatrix;
    p.numInputs = inputs;
    return p;
}

TEST(DagTest, NodesGetUniqueIdsAndIndices)
{
    Dag dag("t", 'T');
    Node *a = dag.addNode(em(), "a");
    Node *b = dag.addNode(em(), "b");
    EXPECT_NE(a->id, 0u);
    EXPECT_NE(a->id, b->id);
    EXPECT_EQ(a->indexInDag, 0);
    EXPECT_EQ(b->indexInDag, 1);
    EXPECT_EQ(a->dag, &dag);
}

TEST(DagTest, EdgesLinkBothDirections)
{
    Dag dag("t", 'T');
    Node *a = dag.addNode(em(), "a");
    Node *b = dag.addNode(em(2), "b");
    dag.addEdge(a, b);
    ASSERT_EQ(a->children.size(), 1u);
    ASSERT_EQ(b->parents.size(), 1u);
    EXPECT_EQ(a->children[0], b);
    EXPECT_EQ(b->parents[0], a);
    EXPECT_EQ(dag.numEdges(), 1);
}

TEST(DagTest, BackwardEdgePanics)
{
    Dag dag("t", 'T');
    Node *a = dag.addNode(em(), "a");
    Node *b = dag.addNode(em(), "b");
    EXPECT_THROW(dag.addEdge(b, a), PanicError);
    EXPECT_THROW(dag.addEdge(a, a), PanicError);
}

TEST(DagTest, RootsAndLeaves)
{
    Dag dag("t", 'T');
    Node *a = dag.addNode(em(), "a");
    Node *b = dag.addNode(em(), "b");
    Node *c = dag.addNode(em(2), "c");
    dag.addEdge(a, c);
    dag.addEdge(b, c);
    EXPECT_EQ(dag.roots(), (std::vector<Node *>{a, b}));
    EXPECT_EQ(dag.leaves(), (std::vector<Node *>{c}));
}

TEST(DagTest, FinalizeRequiresDeadline)
{
    Dag dag("t", 'T');
    dag.addNode(em(), "a");
    EXPECT_THROW(dag.finalize(), PanicError);
}

TEST(DagTest, MutationAfterFinalizePanics)
{
    Dag dag("t", 'T');
    Node *a = dag.addNode(em(), "a");
    Node *b = dag.addNode(em(), "b");
    dag.addEdge(a, b);
    dag.setRelativeDeadline(fromMs(1.0));
    dag.finalize();
    EXPECT_THROW(dag.addNode(em(), "c"), PanicError);
    EXPECT_THROW(dag.addEdge(a, b), PanicError);
    EXPECT_THROW(dag.finalize(), PanicError);
}

TEST(DagTest, ExternalInputCounting)
{
    Dag dag("t", 'T');
    Node *a = dag.addNode(em(1), "a"); // root: 1 external input
    Node *b = dag.addNode(em(2), "b"); // 1 parent + 1 external
    dag.addEdge(a, b);
    EXPECT_EQ(a->externalInputs(), 1);
    EXPECT_EQ(b->externalInputs(), 1);
}

TEST(DagTest, SubmitResetsRuntimeState)
{
    Dag dag("t", 'T');
    Node *a = dag.addNode(em(), "a");
    Node *b = dag.addNode(em(2), "b");
    dag.addEdge(a, b);
    dag.setRelativeDeadline(fromMs(1.0));
    dag.finalize();

    dag.submit(1000);
    a->status = NodeStatus::Finished;
    b->completedParents = 1;
    dag.noteNodeFinished();
    EXPECT_EQ(dag.numFinished(), 1);

    dag.submit(5000);
    EXPECT_EQ(dag.arrivalTick(), 5000u);
    EXPECT_EQ(dag.numFinished(), 0);
    EXPECT_EQ(a->status, NodeStatus::Waiting);
    EXPECT_EQ(b->completedParents, 0u);
    EXPECT_EQ(b->producerRefs.size(), b->parents.size());
}

TEST(DagTest, AbsoluteDeadlineFollowsArrival)
{
    Dag dag("t", 'T');
    dag.addNode(em(), "a");
    dag.setRelativeDeadline(fromMs(2.0));
    dag.finalize();
    dag.submit(fromMs(1.0));
    EXPECT_EQ(dag.absoluteDeadline(), fromMs(3.0));
}

TEST(DagTest, NominalRuntimeUsesFixedOverride)
{
    Dag dag("t", 'T');
    Node *a = dag.addNode(em(), "a");
    a->fixedRuntime = fromUs(3.0);
    EXPECT_EQ(nominalNodeRuntime(*a), fromUs(3.0));
}

TEST(DagTest, NominalRuntimeAddsMemoryTime)
{
    Dag dag("t", 'T');
    Node *a = dag.addNode(em(2), "a");
    Tick compute = computeTime(a->params);
    Tick runtime = nominalNodeRuntime(*a, 12.8);
    // 3 x 64 KiB at 12.8 GB/s ~ 15.36 us on top of compute.
    EXPECT_GT(runtime, compute);
    EXPECT_NEAR(toUs(runtime - compute), 15.36, 0.1);
}

TEST(DagTest, DotExportContainsNodesAndEdges)
{
    Dag dag("demo", 'D');
    Node *a = dag.addNode(em(), "demo.first");
    Node *b = dag.addNode(em(2), "demo.second");
    dag.addEdge(a, b);
    dag.setRelativeDeadline(fromMs(1.0));
    dag.finalize();

    std::ostringstream os;
    dag.writeDot(os);
    std::string dot = os.str();
    EXPECT_NE(dot.find("digraph \"demo\""), std::string::npos);
    EXPECT_NE(dot.find("demo.first"), std::string::npos);
    EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
    EXPECT_NE(dot.find("deadline 1 ms"), std::string::npos);
    EXPECT_NE(dot.find("fillcolor"), std::string::npos);
    EXPECT_EQ(dot.back(), '\n');
}

TEST(DagTest, DotExportOfEveryBenchmarkIsWellFormed)
{
    for (AppId app : allApps) {
        DagPtr dag = buildApp(app);
        std::ostringstream os;
        dag->writeDot(os);
        std::string dot = os.str();
        // Node and edge counts match the graph.
        std::size_t arrows = 0, pos = 0;
        while ((pos = dot.find(" -> ", pos)) != std::string::npos) {
            ++arrows;
            pos += 4;
        }
        EXPECT_EQ(arrows, std::size_t(dag->numEdges())) << appName(app);
    }
}

TEST(DagTest, CompleteLifecycle)
{
    Dag dag("t", 'T');
    dag.addNode(em(), "a");
    dag.setRelativeDeadline(fromMs(1.0));
    dag.finalize();
    dag.submit(0);
    EXPECT_FALSE(dag.complete());
    dag.noteNodeFinished();
    EXPECT_TRUE(dag.complete());
}

} // namespace
} // namespace relief
