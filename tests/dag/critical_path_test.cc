/** @file Tests for critical-path (ALAP) and SDR deadline assignment. */

#include <gtest/gtest.h>

#include "dag/dag.hh"

namespace relief
{
namespace
{

/** Build a chain a -> b -> c with fixed runtimes 10, 20, 30 us. */
struct Chain
{
    Dag dag{"chain", 'X'};
    Node *a;
    Node *b;
    Node *c;

    explicit Chain(Tick deadline = fromUs(100.0))
    {
        TaskParams p;
        p.type = AccType::ElemMatrix;
        a = dag.addNode(p, "a");
        b = dag.addNode(p, "b");
        c = dag.addNode(p, "c");
        a->fixedRuntime = fromUs(10.0);
        b->fixedRuntime = fromUs(20.0);
        c->fixedRuntime = fromUs(30.0);
        dag.addEdge(a, b);
        dag.addEdge(b, c);
        dag.setRelativeDeadline(deadline);
        dag.finalize();
    }
};

TEST(CriticalPathTest, ChainAlapDeadlines)
{
    Chain chain;
    // Latest finishes: a at 100-50=50, b at 100-30=70, c at 100.
    EXPECT_EQ(chain.a->relDeadlineCp, fromUs(50.0));
    EXPECT_EQ(chain.b->relDeadlineCp, fromUs(70.0));
    EXPECT_EQ(chain.c->relDeadlineCp, fromUs(100.0));
}

TEST(CriticalPathTest, ChainSdrDeadlines)
{
    Chain chain;
    // Path runtime 60: SDRs are 10/60, 30/60, 60/60.
    EXPECT_EQ(chain.a->relDeadlineSdr, Tick(fromUs(100.0) / 6));
    EXPECT_EQ(chain.b->relDeadlineSdr, fromUs(50.0));
    EXPECT_EQ(chain.c->relDeadlineSdr, fromUs(100.0));
}

TEST(CriticalPathTest, ChainCriticalPathRuntime)
{
    Chain chain;
    EXPECT_EQ(chain.dag.criticalPathRuntime(), fromUs(60.0));
}

TEST(CriticalPathTest, DeadlineSchemesSelectable)
{
    Chain chain;
    EXPECT_EQ(chain.dag.nodeRelativeDeadline(*chain.a,
                                             DeadlineScheme::DagDeadline),
              fromUs(100.0));
    EXPECT_EQ(chain.dag.nodeRelativeDeadline(*chain.a,
                                             DeadlineScheme::CriticalPath),
              fromUs(50.0));
    EXPECT_EQ(chain.dag.nodeRelativeDeadline(*chain.a,
                                             DeadlineScheme::Sdr),
              Tick(fromUs(100.0) / 6));
}

TEST(CriticalPathTest, DiamondTakesLongerBranch)
{
    // a -> {b(40), c(10)} -> d: ALAP of a must respect the 40 branch.
    Dag dag("diamond", 'X');
    TaskParams p;
    p.type = AccType::ElemMatrix;
    p.numInputs = 2;
    Node *a = dag.addNode(p, "a");
    Node *b = dag.addNode(p, "b");
    Node *c = dag.addNode(p, "c");
    Node *d = dag.addNode(p, "d");
    a->fixedRuntime = fromUs(10.0);
    b->fixedRuntime = fromUs(40.0);
    c->fixedRuntime = fromUs(10.0);
    d->fixedRuntime = fromUs(10.0);
    dag.addEdge(a, b);
    dag.addEdge(a, c);
    dag.addEdge(b, d);
    dag.addEdge(c, d);
    dag.setRelativeDeadline(fromUs(100.0));
    dag.finalize();

    EXPECT_EQ(dag.criticalPathRuntime(), fromUs(60.0));
    EXPECT_EQ(a->relDeadlineCp, fromUs(50.0));  // 100 - (40 + 10)
    EXPECT_EQ(b->relDeadlineCp, fromUs(90.0));
    EXPECT_EQ(c->relDeadlineCp, fromUs(90.0));
    EXPECT_EQ(d->relDeadlineCp, fromUs(100.0));
    // SDR: c sits on a 30-us path -> 20/30 of the deadline; b on the
    // 60-us critical path -> 50/60.
    EXPECT_EQ(c->relDeadlineSdr, Tick(fromUs(100.0) * 2 / 3));
    EXPECT_EQ(b->relDeadlineSdr, Tick(fromUs(100.0) * 5 / 6));
}

TEST(CriticalPathTest, TightDeadlineClampsToRuntime)
{
    // Deadline shorter than the chain: early nodes get at least their
    // own runtime as relative deadline (never zero/negative).
    Chain chain(fromUs(40.0));
    EXPECT_EQ(chain.a->relDeadlineCp, fromUs(10.0));
    EXPECT_EQ(chain.c->relDeadlineCp, fromUs(40.0));
}

TEST(CriticalPathTest, DeadlinesMonotonicAlongEveryPath)
{
    Chain chain;
    EXPECT_LT(chain.a->relDeadlineCp, chain.b->relDeadlineCp);
    EXPECT_LT(chain.b->relDeadlineCp, chain.c->relDeadlineCp);
    EXPECT_LE(chain.a->relDeadlineSdr, chain.b->relDeadlineSdr);
    EXPECT_LE(chain.b->relDeadlineSdr, chain.c->relDeadlineSdr);
}

TEST(CriticalPathTest, IndependentNodesGetFullDeadline)
{
    Dag dag("par", 'X');
    TaskParams p;
    p.type = AccType::ElemMatrix;
    Node *a = dag.addNode(p, "a");
    Node *b = dag.addNode(p, "b");
    a->fixedRuntime = fromUs(10.0);
    b->fixedRuntime = fromUs(20.0);
    dag.setRelativeDeadline(fromUs(100.0));
    dag.finalize();
    EXPECT_EQ(a->relDeadlineCp, fromUs(100.0));
    EXPECT_EQ(b->relDeadlineCp, fromUs(100.0));
    EXPECT_EQ(a->relDeadlineSdr, fromUs(100.0));
}

} // namespace
} // namespace relief
