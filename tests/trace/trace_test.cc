/** @file Unit + integration tests for the schedule tracer. */

#include <gtest/gtest.h>

#include <sstream>

#include "core/soc.hh"
#include "sim/logging.hh"
#include "trace/trace.hh"

namespace relief
{
namespace
{

TEST(TraceRecorderTest, LanesAreDeduplicatedAndOrdered)
{
    TraceRecorder trace;
    int a = trace.lane("acc0");
    int b = trace.lane("acc1");
    EXPECT_EQ(a, 0);
    EXPECT_EQ(b, 1);
    EXPECT_EQ(trace.lane("acc0"), 0);
    EXPECT_EQ(trace.numLanes(), 2);
    EXPECT_EQ(trace.laneName(1), "acc1");
}

TEST(TraceRecorderTest, SpansRecorded)
{
    TraceRecorder trace;
    int lane_id = trace.lane("acc");
    trace.span(lane_id, "task", 100, 200);
    ASSERT_EQ(trace.numSpans(), 1u);
    EXPECT_EQ(trace.spans()[0].name, "task");
    EXPECT_EQ(trace.horizon(), 200u);
}

TEST(TraceRecorderTest, EmptySpansDropped)
{
    TraceRecorder trace;
    int lane_id = trace.lane("acc");
    trace.span(lane_id, "zero", 100, 100);
    trace.span(lane_id, "backwards", 200, 100);
    EXPECT_EQ(trace.numSpans(), 0u);
}

TEST(TraceRecorderTest, UnknownLanePanics)
{
    TraceRecorder trace;
    EXPECT_THROW(trace.span(0, "x", 0, 1), PanicError);
}

TEST(TraceRecorderTest, ChromeJsonHasMetadataAndEvents)
{
    TraceRecorder trace;
    int lane_id = trace.lane("conv0");
    trace.span(lane_id, "canny.blur", fromUs(10.0), fromUs(25.0),
               "compute");
    std::ostringstream os;
    trace.writeChromeJson(os);
    std::string json = os.str();
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(json.find("\"conv0\""), std::string::npos);
    EXPECT_NE(json.find("\"canny.blur\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ts\":10"), std::string::npos);
    EXPECT_NE(json.find("\"dur\":15"), std::string::npos);
    EXPECT_EQ(json.front(), '[');
    EXPECT_EQ(json[json.size() - 2], ']');
}

TEST(TraceRecorderTest, JsonEscapesQuotes)
{
    TraceRecorder trace;
    int lane_id = trace.lane("acc");
    trace.span(lane_id, "weird\"name", 0, 10);
    std::ostringstream os;
    trace.writeChromeJson(os);
    EXPECT_NE(os.str().find("weird\\\"name"), std::string::npos);
}

TEST(TraceRecorderTest, GanttMarksBusyBuckets)
{
    TraceRecorder trace;
    int lane_id = trace.lane("acc");
    trace.span(lane_id, "task", 0, 50);
    std::ostringstream os;
    trace.writeGantt(os, 0, 100, 10);
    std::string out = os.str();
    // Lane row: first 5 buckets marked with 't', rest idle.
    EXPECT_NE(out.find("ttttt....."), std::string::npos);
}

TEST(TraceRecorderTest, GanttClipsToWindow)
{
    TraceRecorder trace;
    int lane_id = trace.lane("acc");
    trace.span(lane_id, "x", 0, 1000);
    std::ostringstream os;
    trace.writeGantt(os, 500, 600, 10);
    EXPECT_NE(os.str().find("xxxxxxxxxx"), std::string::npos);
}

TEST(TraceRecorderTest, ClearDropsSpansKeepsLanes)
{
    TraceRecorder trace;
    int lane_id = trace.lane("acc");
    trace.span(lane_id, "t", 0, 10);
    trace.clear();
    EXPECT_EQ(trace.numSpans(), 0u);
    EXPECT_EQ(trace.numLanes(), 1);
}

TEST(TraceIntegrationTest, SocEmitsSpansForEveryNode)
{
    SocConfig config;
    config.policy = PolicyKind::Relief;
    Soc soc(config);
    TraceRecorder &trace = soc.enableTracing();
    DagPtr dag = buildApp(AppId::Canny);
    soc.submit(dag);
    soc.run(fromMs(50.0));
    ASSERT_TRUE(dag->complete());

    // One compute span per node, named by its label.
    int compute_spans = 0;
    for (const TraceSpan &s : trace.spans())
        compute_spans += s.category == "compute";
    EXPECT_EQ(compute_spans, dag->numNodes());
    // Manager scheduling spans exist too.
    bool has_mgr = false;
    for (const TraceSpan &s : trace.spans())
        has_mgr = has_mgr || s.category == "mgr";
    EXPECT_TRUE(has_mgr);
}

TEST(TraceIntegrationTest, SpansNestWithinRun)
{
    Soc soc;
    TraceRecorder &trace = soc.enableTracing();
    DagPtr dag = buildApp(AppId::Gru);
    soc.submit(dag);
    Tick end = soc.run(fromMs(50.0));
    for (const TraceSpan &s : trace.spans()) {
        EXPECT_LT(s.start, s.end);
        EXPECT_LE(s.end, end + fromMs(1.0));
    }
}

} // namespace
} // namespace relief
