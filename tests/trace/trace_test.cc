/** @file Unit + integration tests for the schedule tracer. */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/soc.hh"
#include "sim/logging.hh"
#include "support/mini_json.hh"
#include "trace/interval_sampler.hh"
#include "trace/trace.hh"

namespace relief
{
namespace
{

TEST(TraceRecorderTest, LanesAreDeduplicatedAndOrdered)
{
    TraceRecorder trace;
    int a = trace.lane("acc0");
    int b = trace.lane("acc1");
    EXPECT_EQ(a, 0);
    EXPECT_EQ(b, 1);
    EXPECT_EQ(trace.lane("acc0"), 0);
    EXPECT_EQ(trace.numLanes(), 2);
    EXPECT_EQ(trace.laneName(1), "acc1");
}

TEST(TraceRecorderTest, SpansRecorded)
{
    TraceRecorder trace;
    int lane_id = trace.lane("acc");
    trace.span(lane_id, "task", 100, 200);
    ASSERT_EQ(trace.numSpans(), 1u);
    EXPECT_EQ(trace.spans()[0].name, "task");
    EXPECT_EQ(trace.horizon(), 200u);
}

TEST(TraceRecorderTest, EmptySpansDropped)
{
    TraceRecorder trace;
    int lane_id = trace.lane("acc");
    trace.span(lane_id, "zero", 100, 100);
    trace.span(lane_id, "backwards", 200, 100);
    EXPECT_EQ(trace.numSpans(), 0u);
}

TEST(TraceRecorderTest, UnknownLanePanics)
{
    TraceRecorder trace;
    EXPECT_THROW(trace.span(0, "x", 0, 1), PanicError);
}

TEST(TraceRecorderTest, ChromeJsonHasMetadataAndEvents)
{
    TraceRecorder trace;
    int lane_id = trace.lane("conv0");
    trace.span(lane_id, "canny.blur", fromUs(10.0), fromUs(25.0),
               "compute");
    std::ostringstream os;
    trace.writeChromeJson(os);
    std::string json = os.str();
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(json.find("\"conv0\""), std::string::npos);
    EXPECT_NE(json.find("\"canny.blur\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ts\":10"), std::string::npos);
    EXPECT_NE(json.find("\"dur\":15"), std::string::npos);
    EXPECT_EQ(json.front(), '[');
    EXPECT_EQ(json[json.size() - 2], ']');
}

TEST(TraceRecorderTest, JsonEscapesQuotes)
{
    TraceRecorder trace;
    int lane_id = trace.lane("acc");
    trace.span(lane_id, "weird\"name", 0, 10);
    std::ostringstream os;
    trace.writeChromeJson(os);
    EXPECT_NE(os.str().find("weird\\\"name"), std::string::npos);
}

TEST(TraceRecorderTest, GanttMarksBusyBuckets)
{
    TraceRecorder trace;
    int lane_id = trace.lane("acc");
    trace.span(lane_id, "task", 0, 50);
    std::ostringstream os;
    trace.writeGantt(os, 0, 100, 10);
    std::string out = os.str();
    // Lane row: first 5 buckets marked with 't', rest idle.
    EXPECT_NE(out.find("ttttt....."), std::string::npos);
}

TEST(TraceRecorderTest, GanttClipsToWindow)
{
    TraceRecorder trace;
    int lane_id = trace.lane("acc");
    trace.span(lane_id, "x", 0, 1000);
    std::ostringstream os;
    trace.writeGantt(os, 500, 600, 10);
    EXPECT_NE(os.str().find("xxxxxxxxxx"), std::string::npos);
}

TEST(TraceRecorderTest, ClearDropsSpansKeepsLanes)
{
    TraceRecorder trace;
    int lane_id = trace.lane("acc");
    trace.span(lane_id, "t", 0, 10);
    trace.clear();
    EXPECT_EQ(trace.numSpans(), 0u);
    EXPECT_EQ(trace.numLanes(), 1);
}

TEST(TraceRecorderTest, CounterTracksAreDeduplicatedAndOrdered)
{
    TraceRecorder trace;
    int a = trace.counterTrack("dram.bw");
    int b = trace.counterTrack("queue.depth");
    EXPECT_EQ(a, 0);
    EXPECT_EQ(b, 1);
    EXPECT_EQ(trace.counterTrack("dram.bw"), 0);
    EXPECT_EQ(trace.numCounterTracks(), 2);
    EXPECT_EQ(trace.counterTrackName(1), "queue.depth");
    // Track ids are independent of lane ids.
    EXPECT_EQ(trace.lane("acc0"), 0);
}

TEST(TraceRecorderTest, CounterSamplesRecorded)
{
    TraceRecorder trace;
    int track = trace.counterTrack("depth");
    trace.counter(track, 100, 3.0);
    trace.counter(track, 200, 5.5);
    ASSERT_EQ(trace.numCounterSamples(), 2u);
    EXPECT_EQ(trace.counterSamples()[0].track, track);
    EXPECT_EQ(trace.counterSamples()[0].when, 100u);
    EXPECT_DOUBLE_EQ(trace.counterSamples()[1].value, 5.5);
}

TEST(TraceRecorderTest, UnknownCounterTrackPanics)
{
    TraceRecorder trace;
    EXPECT_THROW(trace.counter(0, 0, 1.0), PanicError);
    EXPECT_THROW(trace.counterTrackName(0), PanicError);
}

TEST(TraceRecorderTest, ChromeJsonHasCounterEvents)
{
    TraceRecorder trace;
    int track = trace.counterTrack("dram.bandwidth_utilization");
    trace.counter(track, fromUs(10.0), 0.5);
    trace.counter(track, fromUs(20.0), 0.75);
    std::ostringstream os;
    trace.writeChromeJson(os);
    std::string json = os.str();
    EXPECT_TRUE(test::miniJsonValid(json)) << json;
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(json.find("\"dram.bandwidth_utilization\""),
              std::string::npos);
    EXPECT_NE(json.find("\"args\":{\"value\":0.5}"), std::string::npos);
    EXPECT_NE(json.find("\"ts\":20"), std::string::npos);
}

TEST(TraceRecorderTest, JsonEscapesControlCharacters)
{
    TraceRecorder trace;
    int lane_id = trace.lane("acc");
    trace.span(lane_id, "line\nbreak\tand\x01" "ctl", 0, 10);
    std::ostringstream os;
    trace.writeChromeJson(os);
    std::string json = os.str();
    // Raw control bytes would break every JSON consumer.
    EXPECT_TRUE(test::miniJsonValid(json)) << json;
    EXPECT_NE(json.find("line\\nbreak\\tand\\u0001ctl"),
              std::string::npos);
}

TEST(TraceRecorderTest, ClearDropsCounterSamplesKeepsTracks)
{
    TraceRecorder trace;
    int track = trace.counterTrack("depth");
    trace.counter(track, 10, 1.0);
    trace.clear();
    EXPECT_EQ(trace.numCounterSamples(), 0u);
    EXPECT_EQ(trace.numCounterTracks(), 1);
}

TEST(TraceRecorderTest, HorizonCoversCounterSamplesAndFlows)
{
    // Regression: horizon() used to look only at spans, so a
    // counter-only trace reported an empty window and writeGantt()
    // rendered nothing.
    TraceRecorder trace;
    int track = trace.counterTrack("depth");
    trace.counter(track, fromUs(40.0), 1.0);
    EXPECT_EQ(trace.horizon(), fromUs(40.0));

    int a = trace.lane("a");
    int b = trace.lane("b");
    trace.flow("edge", "dram", a, fromUs(50.0), b, fromUs(60.0));
    EXPECT_EQ(trace.horizon(), fromUs(60.0));

    trace.span(a, "late", fromUs(80.0), fromUs(90.0));
    EXPECT_EQ(trace.horizon(), fromUs(90.0));
}

TEST(TraceRecorderTest, FlowsRecordedAndBackwardsArrowsClamped)
{
    TraceRecorder trace;
    int a = trace.lane("a");
    int b = trace.lane("b");
    int id0 = trace.flow("x->y", "forward", a, 100, b, 200);
    int id1 = trace.flow("y->z", "dram", b, 300, a, 250);
    EXPECT_NE(id0, id1);
    ASSERT_EQ(trace.numFlows(), 2u);
    EXPECT_EQ(trace.flows()[0].srcTime, 100u);
    EXPECT_EQ(trace.flows()[0].dstTime, 200u);
    // A backwards arrow clamps to zero length at the destination.
    EXPECT_EQ(trace.flows()[1].dstTime, 300u);

    trace.clear();
    EXPECT_EQ(trace.numFlows(), 0u);
}

TEST(TraceRecorderTest, UnknownFlowLanePanics)
{
    TraceRecorder trace;
    EXPECT_THROW(trace.flow("x", "dram", 0, 0, 0, 1), PanicError);
}

TEST(TraceRecorderTest, ChromeJsonPairsFlowHalves)
{
    TraceRecorder trace;
    int a = trace.lane("conv0");
    int b = trace.lane("em0");
    trace.span(a, "produce", fromUs(10.0), fromUs(20.0), "compute");
    trace.span(b, "consume", fromUs(30.0), fromUs(40.0), "load");
    int id = trace.flow("produce -> consume", "forward", a,
                        fromUs(20.0), b, fromUs(30.0));
    std::ostringstream os;
    trace.writeChromeJson(os);
    std::string json = os.str();
    EXPECT_TRUE(test::miniJsonValid(json)) << json;

    // Both halves carry the same id and the edge category; the "f"
    // half binds to the enclosing slice ("bp":"e").
    std::string want_id = "\"id\":" + std::to_string(id);
    EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
    EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\":\"forward\""), std::string::npos);
    auto first = json.find(want_id);
    ASSERT_NE(first, std::string::npos);
    EXPECT_NE(json.find(want_id, first + 1), std::string::npos);
    // "s" must precede "f" for chrome://tracing.
    EXPECT_LT(json.find("\"ph\":\"s\""), json.find("\"ph\":\"f\""));
}

TEST(TraceRecorderTest, ChromeJsonEventsSortedByTimestamp)
{
    TraceRecorder trace;
    int lane = trace.lane("acc");
    int track = trace.counterTrack("depth");
    // Record deliberately out of order across all three primitives.
    trace.span(lane, "late", fromUs(50.0), fromUs(60.0));
    trace.counter(track, fromUs(5.0), 1.0);
    trace.flow("e", "dram", lane, fromUs(30.0), lane, fromUs(40.0));
    trace.span(lane, "early", fromUs(10.0), fromUs(20.0));

    std::ostringstream os;
    trace.writeChromeJson(os);
    std::string json = os.str();
    EXPECT_TRUE(test::miniJsonValid(json)) << json;

    // Walk the emitted "ts" fields: they must be non-decreasing.
    std::vector<long> stamps;
    std::size_t pos = 0;
    while ((pos = json.find("\"ts\":", pos)) != std::string::npos) {
        pos += 5;
        stamps.push_back(std::atol(json.c_str() + pos));
    }
    ASSERT_GE(stamps.size(), 5u);
    for (std::size_t i = 1; i < stamps.size(); ++i)
        EXPECT_LE(stamps[i - 1], stamps[i]) << "event " << i;
}

TEST(IntervalSamplerTest, SamplesEveryPeriodWhileEventsPend)
{
    Simulator sim;
    TraceRecorder trace;
    IntervalSampler sampler(sim, trace, fromUs(10.0));
    double depth = 2.0;
    sampler.addProbe("depth", [&depth] { return depth; });
    EXPECT_EQ(sampler.numProbes(), 1u);

    // One real event at 95 us; the sampler must not outlive it by more
    // than one period.
    sim.at(fromUs(95.0), [&depth] { depth = 7.0; }, "workload");
    sampler.start();
    sim.run();

    // Samples at 0, 10, ..., 100 us: the 90 us wakeup still saw the
    // pending event and re-armed once past it.
    ASSERT_EQ(trace.numCounterSamples(), 11u);
    EXPECT_EQ(trace.counterSamples().front().when, 0u);
    EXPECT_EQ(trace.counterSamples().back().when, fromUs(100.0));
    EXPECT_DOUBLE_EQ(trace.counterSamples()[9].value, 2.0);
    EXPECT_DOUBLE_EQ(trace.counterSamples().back().value, 7.0);
}

TEST(IntervalSamplerTest, StopCancelsPendingWakeup)
{
    Simulator sim;
    TraceRecorder trace;
    IntervalSampler sampler(sim, trace, fromUs(10.0));
    sampler.addProbe("depth", [] { return 1.0; });
    sim.at(fromUs(95.0), [] {}, "workload");
    sampler.start();
    sampler.stop();
    sim.run();
    // Only the immediate start() sample; the periodic chain is gone.
    EXPECT_EQ(trace.numCounterSamples(), 1u);
}

TEST(TraceIntegrationTest, SocEmitsSpansForEveryNode)
{
    SocConfig config;
    config.policy = PolicyKind::Relief;
    Soc soc(config);
    TraceRecorder &trace = soc.enableTracing();
    DagPtr dag = buildApp(AppId::Canny);
    soc.submit(dag);
    soc.run(fromMs(50.0));
    ASSERT_TRUE(dag->complete());

    // One compute span per node, named by its label.
    int compute_spans = 0;
    for (const TraceSpan &s : trace.spans())
        compute_spans += s.category == "compute";
    EXPECT_EQ(compute_spans, dag->numNodes());
    // Manager scheduling spans exist too.
    bool has_mgr = false;
    for (const TraceSpan &s : trace.spans())
        has_mgr = has_mgr || s.category == "mgr";
    EXPECT_TRUE(has_mgr);
}

TEST(TraceIntegrationTest, SpansNestWithinRun)
{
    Soc soc;
    TraceRecorder &trace = soc.enableTracing();
    DagPtr dag = buildApp(AppId::Gru);
    soc.submit(dag);
    Tick end = soc.run(fromMs(50.0));
    for (const TraceSpan &s : trace.spans()) {
        EXPECT_LT(s.start, s.end);
        EXPECT_LE(s.end, end + fromMs(1.0));
    }
}

TEST(TraceIntegrationTest, SocEmitsCounterTracks)
{
    Soc soc;
    TraceRecorder &trace = soc.enableTracing(fromUs(5.0));
    ASSERT_NE(soc.sampler(), nullptr);
    EXPECT_EQ(soc.sampler()->period(), fromUs(5.0));
    DagPtr dag = buildApp(AppId::Canny);
    soc.submit(dag);
    Tick end = soc.run(fromMs(50.0));
    ASSERT_TRUE(dag->complete());

    // Ready-queue depth, DRAM bandwidth, outstanding DMA bytes, and
    // per-accelerator occupancy (the paper's memory-pressure signals).
    EXPECT_GE(trace.numCounterTracks(), 4);
    auto has_track = [&trace](const std::string &name) {
        for (int t = 0; t < trace.numCounterTracks(); ++t)
            if (trace.counterTrackName(t) == name)
                return true;
        return false;
    };
    EXPECT_TRUE(has_track("manager.ready_queue_depth"));
    EXPECT_TRUE(has_track("dram.bandwidth_utilization"));
    EXPECT_TRUE(has_track("dma.outstanding_bytes"));

    EXPECT_GT(trace.numCounterSamples(), 0u);
    for (const CounterSample &s : trace.counterSamples()) {
        EXPECT_GE(s.value, 0.0);
        EXPECT_LE(s.when, end + soc.sampler()->period());
    }
}

TEST(TraceIntegrationTest, FlowsMatchEdgeOutcomes)
{
    // Every satisfied DAG edge must appear as exactly one flow arrow,
    // and the per-category arrow counts must equal the manager's edge
    // counters — the trace is a faithful picture of the data movement
    // the scheduler chose.
    SocConfig config;
    config.policy = PolicyKind::Relief;
    Soc soc(config);
    TraceRecorder &trace = soc.enableTracing(0);
    std::vector<DagPtr> dags;
    for (AppId app : parseMix("CDL"))
        dags.push_back(buildApp(app));
    for (DagPtr &dag : dags)
        soc.submit(dag);
    soc.run(fromMs(50.0));
    for (const DagPtr &dag : dags)
        ASSERT_TRUE(dag->complete());

    const RunMetrics &m = soc.manager().metrics();
    ASSERT_GT(m.edgesConsumed, 0u);
    EXPECT_EQ(trace.numFlows(), m.edgesConsumed);

    std::uint64_t forward = 0, colocation = 0, dram = 0;
    for (const TraceFlow &f : trace.flows()) {
        if (f.category == "forward")
            ++forward;
        else if (f.category == "colocation")
            ++colocation;
        else if (f.category == "dram")
            ++dram;
        else
            ADD_FAILURE() << "unknown flow category " << f.category;
        EXPECT_LE(f.srcTime, f.dstTime);
    }
    EXPECT_EQ(forward, m.forwards);
    EXPECT_EQ(colocation, m.colocations);
    EXPECT_EQ(dram, m.dramEdges);
    // RELIEF on CDL forwards at least one edge (acceptance criterion:
    // the trace carries "forward"-category arrows).
    EXPECT_GT(forward, 0u);
}

TEST(TraceIntegrationTest, ZeroSamplePeriodDisablesCounters)
{
    Soc soc;
    TraceRecorder &trace = soc.enableTracing(0);
    EXPECT_EQ(soc.sampler(), nullptr);
    DagPtr dag = buildApp(AppId::Gru);
    soc.submit(dag);
    soc.run(fromMs(50.0));
    EXPECT_EQ(trace.numCounterSamples(), 0u);
    EXPECT_GT(trace.numSpans(), 0u); // spans still work without sampling
}

} // namespace
} // namespace relief
