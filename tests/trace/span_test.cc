/**
 * @file
 * Tests for request span trees (trace/span.hh) and tail-based
 * sampling (trace/sampler.hh): builder invariants (nesting, phase
 * partition, root-sum), outcome classification, deterministic keep
 * decisions, counter conservation, and the Perfetto async export.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "trace/sampler.hh"
#include "trace/span.hh"
#include "trace/trace.hh"

using namespace relief;

namespace
{

/** A two-node critical path with an async write-back on node one. */
std::vector<SpanSource>
makePath()
{
    NodeLifecycle first;
    first.submitted = 100;
    first.depsReady = 100;
    first.queued = 120;
    first.dispatched = 200;
    first.loadStart = 210;
    first.loadEnd = 260;
    first.computeEnd = 400;
    first.wbStart = 400;
    first.wbEnd = 520;

    NodeLifecycle second;
    second.submitted = 100;
    second.depsReady = 400;
    second.queued = 420;
    second.dispatched = 430;
    second.loadStart = 440;
    second.loadEnd = 500;
    second.computeEnd = 900;

    return {{"app.first", first}, {"app.second", second}};
}

RequestTrace
makeTrace()
{
    RequestTrace trace =
        beginRequestTrace(7, 8, "realtime", "canny",
                          RequestOutcome::Miss, 100, 900, 800);
    addCriticalPathSpans(trace, makePath());
    return trace;
}

} // namespace

TEST(SpanTest, RootOnlyTraceHasSingleRequestSpan)
{
    RequestTrace trace =
        beginRequestTrace(3, 0, "batch", "lstm", RequestOutcome::Shed,
                          50, 50, 450);
    ASSERT_EQ(trace.spans.size(), 1u);
    EXPECT_EQ(trace.spans[0].kind, SpanKind::Request);
    EXPECT_EQ(trace.spans[0].parent, -1);
    EXPECT_EQ(trace.spans[0].start, 50u);
    EXPECT_EQ(trace.spans[0].end, 50u);
    EXPECT_EQ(trace.latency(), 0u);
}

TEST(SpanTest, TreeShape)
{
    RequestTrace trace = makeTrace();
    // Root + admission + 2 * (node + 4 phases) + 1 write-back.
    ASSERT_EQ(trace.spans.size(), 13u);
    EXPECT_EQ(trace.spans[0].kind, SpanKind::Request);
    EXPECT_EQ(trace.spans[1].kind, SpanKind::Admission);
    EXPECT_EQ(trace.spans[1].parent, 0);
    // Admission covers arrival to the first node's queue entry.
    EXPECT_EQ(trace.spans[1].start, 100u);
    EXPECT_EQ(trace.spans[1].end, 120u);

    int nodes = 0, writebacks = 0;
    for (const RequestSpan &span : trace.spans) {
        if (span.kind == SpanKind::Node) {
            ++nodes;
            EXPECT_EQ(span.parent, 0);
            EXPECT_FALSE(span.label.empty());
        }
        if (span.kind == SpanKind::DmaOut) {
            ++writebacks;
            EXPECT_EQ(span.parent, 0);
        }
    }
    EXPECT_EQ(nodes, 2);
    EXPECT_EQ(writebacks, 1);
}

TEST(SpanTest, EverySpanNestsWithinItsParent)
{
    RequestTrace trace = makeTrace();
    for (std::size_t i = 1; i < trace.spans.size(); ++i) {
        const RequestSpan &span = trace.spans[i];
        ASSERT_GE(span.parent, 0);
        ASSERT_LT(std::size_t(span.parent), i);
        const RequestSpan &parent = trace.spans[std::size_t(span.parent)];
        EXPECT_GE(span.start, parent.start) << "span " << i;
        EXPECT_LE(span.end, parent.end) << "span " << i;
        EXPECT_LE(span.start, span.end) << "span " << i;
    }
}

TEST(SpanTest, PhaseChildrenPartitionTheirNodeSpan)
{
    RequestTrace trace = makeTrace();
    for (std::size_t i = 0; i < trace.spans.size(); ++i) {
        if (trace.spans[i].kind != SpanKind::Node)
            continue;
        Tick sum = 0;
        Tick cursor = trace.spans[i].start;
        for (const RequestSpan &child : trace.spans) {
            if (child.parent != int(i))
                continue;
            // Phases are contiguous and in order.
            EXPECT_EQ(child.start, cursor);
            cursor = child.end;
            sum += child.duration();
        }
        EXPECT_EQ(cursor, trace.spans[i].end);
        EXPECT_EQ(sum, trace.spans[i].duration());
    }
}

TEST(SpanTest, SynchronousChildrenSumAtMostRoot)
{
    RequestTrace trace = makeTrace();
    Tick sum = 0;
    for (const RequestSpan &span : trace.spans) {
        if (span.parent == 0 && span.kind != SpanKind::DmaOut)
            sum += span.duration();
    }
    EXPECT_LE(sum, trace.spans[0].duration());
}

TEST(SpanTest, WritebackClampedToRequestWindow)
{
    // Write-back past the request finish tick is clamped.
    std::vector<SpanSource> path = makePath();
    RequestTrace trace =
        beginRequestTrace(1, 2, "realtime", "canny",
                          RequestOutcome::Ok, 100, 450, 800);
    path[1].lifecycle.computeEnd = 450;
    path[1].lifecycle.loadEnd = 445;
    addCriticalPathSpans(trace, path);
    for (const RequestSpan &span : trace.spans) {
        if (span.kind != SpanKind::DmaOut)
            continue;
        EXPECT_GE(span.start, trace.arrival);
        EXPECT_LE(span.end, trace.finish);
    }
}

TEST(SpanTest, OutcomeNamesAndAnomaly)
{
    EXPECT_STREQ(requestOutcomeName(RequestOutcome::Ok), "ok");
    EXPECT_STREQ(requestOutcomeName(RequestOutcome::Miss), "miss");
    EXPECT_STREQ(requestOutcomeName(RequestOutcome::Shed), "shed");
    EXPECT_STREQ(requestOutcomeName(RequestOutcome::Rejected),
                 "rejected");
    EXPECT_STREQ(requestOutcomeName(RequestOutcome::InFlight),
                 "in_flight");
    EXPECT_FALSE(requestOutcomeAnomalous(RequestOutcome::Ok));
    EXPECT_TRUE(requestOutcomeAnomalous(RequestOutcome::Miss));
    EXPECT_TRUE(requestOutcomeAnomalous(RequestOutcome::Shed));
    EXPECT_TRUE(requestOutcomeAnomalous(RequestOutcome::Rejected));
    EXPECT_TRUE(requestOutcomeAnomalous(RequestOutcome::InFlight));
}

TEST(TailSamplerTest, FractionZeroKeepsOnlyAnomalous)
{
    TailSamplerConfig config;
    config.okFraction = 0.0;
    TailSampler sampler(config);
    EXPECT_FALSE(sampler.keep(0, RequestOutcome::Ok));
    EXPECT_TRUE(sampler.keep(1, RequestOutcome::Miss));
    EXPECT_TRUE(sampler.keep(2, RequestOutcome::Shed));
    EXPECT_TRUE(sampler.keep(3, RequestOutcome::Rejected));
    EXPECT_TRUE(sampler.keep(4, RequestOutcome::InFlight));

    const TailSampleSummary &s = sampler.summary();
    EXPECT_EQ(s.offered, 5u);
    EXPECT_EQ(s.admitted, 3u); // ok + miss + in-flight
    EXPECT_EQ(s.keptOk, 0u);
    EXPECT_EQ(s.keptMiss, 2u);
    EXPECT_EQ(s.keptShed, 1u);
    EXPECT_EQ(s.keptRejected, 1u);
    EXPECT_EQ(s.dropped, 1u);
    EXPECT_EQ(s.kept(), 4u);
    // Conservation: the invariants the schema checker enforces.
    EXPECT_EQ(s.keptOk + s.keptMiss + s.dropped, s.admitted);
    EXPECT_EQ(s.admitted + s.keptShed + s.keptRejected, s.offered);
}

TEST(TailSamplerTest, FractionOneKeepsEverything)
{
    TailSamplerConfig config;
    config.okFraction = 1.0;
    TailSampler sampler(config);
    for (std::uint64_t id = 0; id < 100; ++id)
        EXPECT_TRUE(sampler.keep(id, RequestOutcome::Ok));
    EXPECT_EQ(sampler.summary().keptOk, 100u);
    EXPECT_EQ(sampler.summary().dropped, 0u);
}

TEST(TailSamplerTest, KeepDecisionIsPureAndOrderIndependent)
{
    // sampled() depends only on (seed, id, fraction) — never on call
    // order, so trace sets are bit-identical across worker counts.
    std::vector<bool> forward, backward;
    for (std::uint64_t id = 0; id < 1000; ++id)
        forward.push_back(TailSampler::sampled(42, id, 0.3));
    for (std::uint64_t id = 1000; id-- > 0;)
        backward.push_back(TailSampler::sampled(42, id, 0.3));
    for (std::size_t i = 0; i < 1000; ++i)
        EXPECT_EQ(forward[i], backward[999 - i]);

    // The empirical keep rate lands near the fraction.
    int kept = 0;
    for (std::uint64_t id = 0; id < 10000; ++id)
        kept += TailSampler::sampled(7, id, 0.25) ? 1 : 0;
    EXPECT_NEAR(double(kept) / 10000.0, 0.25, 0.03);

    // Different seeds give different (but still deterministic) sets.
    bool differs = false;
    for (std::uint64_t id = 0; id < 1000 && !differs; ++id)
        differs = TailSampler::sampled(1, id, 0.5) !=
                  TailSampler::sampled(2, id, 0.5);
    EXPECT_TRUE(differs);
}

TEST(SpanTest, AsyncSlicesAreBalancedAndNested)
{
    RequestTrace trace = makeTrace();
    TraceRecorder recorder;
    emitAsyncSlices(recorder, trace);

    // Write-backs land on their own async id so the synchronous tree
    // stays properly nested.
    std::size_t begins = 0, ends = 0;
    std::set<std::uint64_t> ids;
    for (const AsyncEvent &event : recorder.asyncEvents()) {
        ids.insert(event.id);
        EXPECT_EQ(event.category, "request");
        (event.begin ? begins : ends) += 1;
    }
    EXPECT_EQ(begins, ends);
    EXPECT_EQ(begins, trace.spans.size());
    EXPECT_EQ(ids, (std::set<std::uint64_t>{2 * trace.context,
                                            2 * trace.context + 1}));

    // The emission order is a properly nested b/e sequence per id.
    for (std::uint64_t id : ids) {
        int depth = 0;
        for (const AsyncEvent &event : recorder.asyncEvents()) {
            if (event.id != id)
                continue;
            depth += event.begin ? 1 : -1;
            EXPECT_GE(depth, 0);
        }
        EXPECT_EQ(depth, 0);
    }

    // And the Chrome JSON writer renders them as "b"/"e" halves.
    std::ostringstream os;
    recorder.writeChromeJson(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\":\"request\""), std::string::npos);
}

TEST(SpanTest, TraceDocJsonRoundTrips)
{
    std::vector<RequestTrace> traces = {makeTrace()};
    TailSamplerConfig config;
    config.okFraction = 0.5;
    TailSampler sampler(config);
    sampler.keep(7, RequestOutcome::Miss);

    std::ostringstream os;
    writeTraceDocJson(os, traces, sampler.summary(), 0.5, 1, 20.0);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"schema\": \"relief-trace-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"outcome\": \"miss\""), std::string::npos);
    EXPECT_NE(json.find("\"kept_miss\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"queue_wait\""), std::string::npos);
}
