/**
 * @file
 * Tests for the Prometheus text exposition publisher
 * (trace/exposition.hh): rendering, name sanitization, delta-window
 * rates, counter monotonicity across snapshots, atomic file
 * publication, and series retention.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>

#include "sim/simulator.hh"
#include "stats/registry.hh"
#include "stats/stats.hh"
#include "trace/exposition.hh"

using namespace relief;

namespace
{

/** A registry backed by mutable counters the test can advance. */
struct Fixture
{
    Simulator sim;
    StatRegistry stats;
    std::uint64_t events = 0;
    double occupancy = 0.0;
    Histogram latency{0.0, 10.0, 10};

    Fixture()
    {
        stats.addCounter("sim.events", "events executed",
                         [this] { return events; });
        stats.addScalar("acc.conv0.occupancy", "busy fraction",
                        [this] { return occupancy; });
        stats.addHistogram("serve.latency_ms", "latency", &latency);
    }
};

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(bool(in)) << path;
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    return text;
}

/** The sample value of @p metric in @p text — matched at line start
 *  so the `# TYPE` comment lines cannot shadow the sample. */
double
sampleValue(const std::string &text, const std::string &metric)
{
    const std::string needle = "\n" + metric + " ";
    auto pos = text.find(needle);
    EXPECT_NE(pos, std::string::npos) << metric;
    if (pos == std::string::npos)
        return -1.0;
    return std::strtod(text.c_str() + pos + needle.size(), nullptr);
}

} // namespace

TEST(ExpositionTest, SanitizeName)
{
    EXPECT_EQ(StatExposition::sanitizeName("serve.realtime.miss_rate"),
              "serve_realtime_miss_rate");
    EXPECT_EQ(StatExposition::sanitizeName("a-b c:d"), "a_b_c:d");
}

TEST(ExpositionTest, RendersTypedMetrics)
{
    Fixture f;
    f.events = 42;
    f.occupancy = 0.5;
    f.latency.sample(2.0);
    f.latency.sample(4.0);

    ExpositionConfig config;
    config.period = fromMs(1.0);
    StatExposition expo(f.sim, f.stats, config);
    expo.snapshotNow();

    ASSERT_EQ(expo.numSnapshots(), 1u);
    const std::string &text = expo.snapshots()[0];
    EXPECT_NE(text.find("# TYPE relief_sim_events_total counter"),
              std::string::npos);
    EXPECT_NE(text.find("relief_sim_events_total 42"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE relief_acc_conv0_occupancy gauge"),
              std::string::npos);
    EXPECT_NE(text.find("relief_acc_conv0_occupancy 0.5"),
              std::string::npos);
    // Histograms render as Prometheus summaries.
    EXPECT_NE(text.find("# TYPE relief_serve_latency_ms summary"),
              std::string::npos);
    EXPECT_NE(text.find(
                  "relief_serve_latency_ms{quantile=\"0.5\"}"),
              std::string::npos);
    EXPECT_NE(text.find("relief_serve_latency_ms_count 2"),
              std::string::npos);
    // Snapshot metadata.
    EXPECT_NE(text.find("relief_exposition_snapshots 1"),
              std::string::npos);
}

TEST(ExpositionTest, PeriodicSnapshotsAndDeltaRates)
{
    Fixture f;
    ExpositionConfig config;
    config.period = fromMs(1.0);
    StatExposition expo(f.sim, f.stats, config);

    // Advance the counter by 1000 per millisecond while keeping the
    // event queue alive for 3 ms of sim time.
    for (int ms = 1; ms <= 3; ++ms) {
        f.sim.at(fromMs(double(ms)) - 1,
                 [&f] { f.events += 1000; }, "test.bump");
    }
    expo.start();
    f.sim.run(fromMs(3.5));

    // t=0 plus one per period while events remained pending.
    ASSERT_GE(expo.numSnapshots(), 3u);

    // Counters are monotone across snapshots.
    double prev = 0.0;
    for (const std::string &snap : expo.snapshots()) {
        double value = sampleValue(snap, "relief_sim_events_total");
        EXPECT_GE(value, prev);
        prev = value;
    }

    // The second snapshot carries a finite positive delta rate:
    // 1000 events in 1 ms = 1e6 events/s.
    double rate =
        sampleValue(expo.snapshots()[1], "relief_sim_events_per_sec");
    EXPECT_NEAR(rate, 1.0e6, 1.0);
}

TEST(ExpositionTest, LivenessPredicateStopsRepublishing)
{
    Fixture f;
    ExpositionConfig config;
    config.period = fromMs(1.0);
    StatExposition expo(f.sim, f.stats, config);
    bool alive = true;
    expo.setLiveness([&alive] { return alive; });

    f.sim.at(fromMs(1.5), [&alive] { alive = false; }, "test.kill");
    expo.start();
    f.sim.run(fromMs(100.0));

    // t=0, t=1ms, t=2ms (evaluates the dead predicate, stops) — the
    // run never reaches 100 ms because nothing re-arms.
    EXPECT_EQ(expo.numSnapshots(), 3u);
    EXPECT_LT(f.sim.now(), fromMs(3.0));
}

TEST(ExpositionTest, AtomicFilePublicationAndSeries)
{
    Fixture f;
    ExpositionConfig config;
    config.path = ::testing::TempDir() + "relief_expo_test.prom";
    config.period = fromMs(1.0);
    config.series = true;
    std::remove(config.path.c_str());
    std::remove((config.path + ".tmp").c_str());
    std::remove((config.path + ".0").c_str());
    std::remove((config.path + ".1").c_str());

    StatExposition expo(f.sim, f.stats, config);
    f.events = 7;
    expo.snapshotNow();
    f.events = 9;
    expo.snapshotNow();

    // The scrape file holds the latest snapshot, no .tmp remains.
    const std::string latest = readFile(config.path);
    EXPECT_NE(latest.find("relief_sim_events_total 9"),
              std::string::npos);
    EXPECT_FALSE(bool(std::ifstream(config.path + ".tmp")));

    // Both snapshots were retained as series files.
    EXPECT_NE(readFile(config.path + ".0")
                  .find("relief_sim_events_total 7"),
              std::string::npos);
    EXPECT_NE(readFile(config.path + ".1")
                  .find("relief_sim_events_total 9"),
              std::string::npos);

    std::remove(config.path.c_str());
    std::remove((config.path + ".0").c_str());
    std::remove((config.path + ".1").c_str());
}
