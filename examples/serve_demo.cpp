/**
 * @file
 * Online serving demo: a mixed-QoS Poisson request stream at roughly
 * 3x the platform's capacity, with queue-cap load shedding enabled,
 * served by RELIEF. Prints the arrival schedule summary and the
 * per-class SLO table (goodput, miss rate, shed rate, tail latency).
 *
 * Build and run:
 *   cmake --build build --target serve_demo && ./build/examples/serve_demo
 */

#include <iostream>

#include "core/relief.hh"
#include "serve/server.hh"

using namespace relief;

int
main()
{
    // Find the platform's closed-loop capacity first so the demo
    // overloads it by a fixed margin regardless of timing-model tweaks.
    SocConfig soc;
    AppConfig app;
    double capacity = measureCapacityRps(soc, app);
    std::cout << "measured capacity: " << Table::num(capacity, 1)
              << " requests/s\n";

    ServeConfig config;
    config.soc = soc;
    config.soc.policy = PolicyKind::Relief;
    config.app = app;
    config.arrival.kind = ArrivalKind::Poisson;
    config.arrival.ratePerSec = 3.0 * capacity; // far past the knee
    config.admission.kind = AdmissionKind::QueueCap;
    config.admission.queueCap = 8;
    config.horizon = continuousWindow;
    config.seed = 42;

    ServeDriver driver(config);
    ServeReport report = driver.run();

    std::cout << "offered " << report.total.offered
              << " requests over " << Table::num(toMs(report.horizon), 0)
              << " ms (" << Table::num(config.arrival.ratePerSec, 1)
              << " rps, 3x capacity), queue cap "
              << config.admission.queueCap << "\n\n";
    printSloTable(std::cout, report,
                  "Mixed-QoS Poisson serving under RELIEF");

    std::cout << "\nQueue-cap admission shed "
              << Table::num(report.total.shedRate() * 100.0, 1)
              << "% of offered requests; "
              << Table::num(report.total.missRate() * 100.0, 1)
              << "% of the completions that got through still missed "
                 "their deadline.\n";
    return 0;
}
