/**
 * @file
 * Building a custom workload with the public API: construct your own
 * task DAG node by node (a synthetic AR overlay pipeline mixing image
 * processing and elementwise stages), pick deadline and platform
 * knobs (accelerator instance counts, crossbar vs bus, predictors),
 * and inspect the schedule the policy produced.
 *
 * This is the template to start from when mapping a new application
 * onto the simulated SoC.
 */

#include <iostream>

#include "core/relief.hh"

using namespace relief;

namespace
{

/** AR overlay: ISP -> grayscale -> {blur -> edges..., features...}
 *  merged by elementwise blending stages. */
DagPtr
buildArOverlay()
{
    auto dag = std::make_shared<Dag>("ar-overlay", 'A');
    auto add = [&](AccType type, int inputs, const char *label) {
        TaskParams p;
        p.type = type;
        p.numInputs = inputs;
        p.elems = 16384; // 128x128 frame
        if (type == AccType::Convolution)
            p.filterSize = 3;
        return dag->addNode(p, std::string("ar.") + label);
    };

    Node *ispn = add(AccType::ISP, 1, "isp");
    Node *gray = add(AccType::Grayscale, 1, "gray");
    Node *blur = add(AccType::Convolution, 1, "blur");
    Node *gx = add(AccType::Convolution, 1, "gx");
    Node *gy = add(AccType::Convolution, 1, "gy");
    Node *mag = add(AccType::ElemMatrix, 2, "mag");
    Node *nms = add(AccType::CannyNonMax, 2, "nms");
    Node *feat = add(AccType::HarrisNonMax, 1, "features");
    Node *blend = add(AccType::ElemMatrix, 2, "blend");
    Node *tone = add(AccType::ElemMatrix, 1, "tonemap");

    dag->addEdge(ispn, gray);
    dag->addEdge(gray, blur);
    dag->addEdge(blur, gx);
    dag->addEdge(blur, gy);
    dag->addEdge(gx, mag);
    dag->addEdge(gy, mag);
    dag->addEdge(mag, nms);
    dag->addEdge(gy, nms);
    dag->addEdge(blur, feat);
    dag->addEdge(nms, blend);
    dag->addEdge(feat, blend);
    dag->addEdge(blend, tone);

    dag->setRelativeDeadline(fromMs(8.0)); // 120 FPS AR budget
    dag->finalize();
    return dag;
}

} // namespace

int
main()
{
    // Platform: beefier than the paper default — two convolution and
    // two elem-matrix instances, crossbar fabric, graph DM predictor.
    SocConfig config;
    config.policy = PolicyKind::Relief;
    config.fabric = FabricKind::Crossbar;
    config.instances[accIndex(AccType::Convolution)] = 2;
    config.instances[accIndex(AccType::ElemMatrix)] = 2;
    config.dmPredictor = DmPredictorKind::Graph;
    Soc soc(config);

    DagPtr dag = buildArOverlay();
    std::cout << "custom DAG '" << dag->name() << "': "
              << dag->numNodes() << " nodes, " << dag->numEdges()
              << " edges, critical path "
              << Table::num(toMs(dag->criticalPathRuntime()), 2)
              << " ms, deadline " << toMs(dag->relativeDeadline())
              << " ms\n\n";

    soc.submit(dag);
    soc.run(continuousWindow);

    Table sched("schedule (RELIEF on 2xC / 2xEM crossbar platform)");
    sched.setHeader({"node", "acc", "ready (us)", "launch (us)",
                     "finish (us)", "deadline met"});
    for (Node *node : dag->allNodes()) {
        sched.addRow({node->label, accTypeSymbol(node->params.type),
                      Table::num(toUs(node->readyAt), 1),
                      Table::num(toUs(node->launchedAt), 1),
                      Table::num(toUs(node->finishedAt), 1),
                      node->deadlineMet() ? "yes" : "NO"});
    }
    sched.print(std::cout);

    MetricsReport report = soc.report();
    std::cout << "\nDAG " << (dag->complete() ? "completed" : "did not "
                                                              "complete")
              << " in " << Table::num(toMs(report.execTime), 2)
              << " ms; forwards " << report.run.forwards
              << ", colocations " << report.run.colocations
              << ", DRAM " << report.dramBytes / 1024 << " KiB\n";
    return 0;
}
