/**
 * @file
 * Schedule visualization example: run an application mix with tracing
 * enabled, print an ASCII Gantt chart of the accelerators (watch how
 * the policy packs producer/consumer tasks), and write a Chrome
 * trace-event JSON loadable into chrome://tracing or Perfetto.
 *
 * Usage: trace_schedule [--mix SYMBOLS] [--policy NAME] [--out FILE]
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "core/relief.hh"

using namespace relief;

int
main(int argc, char **argv)
{
    std::string mix = "CG";
    std::string policy_name = "RELIEF";
    std::string out_path = "schedule_trace.json";
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--mix") && i + 1 < argc) {
            mix = argv[++i];
        } else if (!std::strcmp(argv[i], "--policy") && i + 1 < argc) {
            policy_name = argv[++i];
        } else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::cerr << "usage: trace_schedule [--mix SYMBOLS] "
                         "[--policy NAME] [--out FILE]\n";
            return 1;
        }
    }

    SocConfig config;
    config.policy = policyFromName(policy_name);
    Soc soc(config);
    TraceRecorder &trace = soc.enableTracing();

    for (AppId app : parseMix(mix))
        soc.submit(buildApp(app));
    soc.run(continuousWindow);

    std::cout << "mix " << mix << " under " << policy_name << ": "
              << trace.numSpans() << " spans across "
              << trace.numLanes() << " lanes\n\n";

    // Zoom the Gantt on the first quarter of the run so individual
    // tasks stay visible.
    Tick horizon = trace.horizon();
    trace.writeGantt(std::cout, 0, horizon, 110);
    std::cout << "\n(legend: each char is one time bucket; letters are "
                 "task initials, '~' input DMA, 'w' write-back, 's' "
                 "scheduler)\n";

    std::ofstream out(out_path);
    if (!out) {
        std::cerr << "cannot write " << out_path << "\n";
        return 1;
    }
    trace.writeChromeJson(out);
    std::cout << "\nChrome trace written to " << out_path
              << " (open in chrome://tracing)\n";
    return 0;
}
