/**
 * @file
 * RNN inference service example: speech recognition (LSTM) and
 * translation (GRU) requests arrive continuously with 7 ms latency
 * budgets — the workload class where the paper measures ~75% of
 * execution time going to data movement. The example loops both
 * applications for a fixed window under every policy and reports
 * completed inferences, deadline misses, colocations, and memory
 * traffic — showing how RELIEF's promotions keep producer/consumer
 * elem-matrix tasks glued together.
 *
 * Usage: rnn_service [--window-ms N]
 */

#include <cstring>
#include <iostream>
#include <string>

#include "core/relief.hh"

using namespace relief;

int
main(int argc, char **argv)
{
    double window_ms = 50.0;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--window-ms") && i + 1 < argc) {
            window_ms = std::atof(argv[++i]);
        } else {
            std::cerr << "usage: rnn_service [--window-ms N]\n";
            return 1;
        }
    }

    std::cout << "RNN inference service: GRU + LSTM looping for "
              << window_ms << " ms per policy\n\n";

    Table table("policy comparison");
    table.setHeader({"policy", "GRU done", "LSTM done", "deadlines met %",
                     "colocations", "DRAM KiB", "gmean slowdown"});

    for (PolicyKind policy : allPolicies) {
        SocConfig config;
        config.policy = policy;
        Soc soc(config);
        DagPtr gru = buildApp(AppId::Gru);
        DagPtr lstm = buildApp(AppId::Lstm);
        soc.submit(gru, 0, /* continuous */ true);
        soc.submit(lstm, 0, /* continuous */ true);
        soc.run(fromMs(window_ms));
        MetricsReport report = soc.report();

        int met = 0, total = 0;
        std::vector<double> slowdowns;
        for (const AppOutcome &app : report.apps) {
            met += app.deadlinesMet;
            total += app.iterations;
            if (!app.starved())
                slowdowns.push_back(app.meanSlowdown());
        }
        table.addRow(
            {policyName(policy),
             std::to_string(report.apps[0].iterations),
             std::to_string(report.apps[1].iterations),
             total ? Table::num(100.0 * met / total, 1) : "0",
             std::to_string(report.run.colocations),
             std::to_string(report.dramBytes / 1024),
             slowdowns.empty() ? "inf"
                               : Table::num(geomean(slowdowns), 2)});
    }
    table.print(std::cout);

    std::cout << "\nNote how RELIEF completes more inferences with far "
                 "more colocations and less DRAM traffic — the paper's "
                 "headline mechanism on its most memory-bound "
                 "workloads.\n";
    return 0;
}
