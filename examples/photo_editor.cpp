/**
 * @file
 * Photo-editor burst example: when the user hits the shutter, a burst
 * of post-processing applications lands on the SoC at once — sharpen
 * (unsharp mask), sobel-view (edge overlay for the UI), motion
 * (ghosting detection between consecutive frames), and a full
 * Richardson-Lucy deblur of the keeper frame. All four are composed
 * from the same seven elementary accelerators (the extra applications
 * from src/dag/apps/extra_apps).
 *
 * The example runs the burst functionally under a baseline and under
 * RELIEF, verifies the pixel outputs are identical, and shows where
 * the data-movement savings come from.
 *
 * Usage: photo_editor [--policy NAME]
 */

#include <cstring>
#include <iostream>
#include <string>

#include "core/relief.hh"

using namespace relief;

namespace
{

struct BurstResult
{
    MetricsReport report;
    std::vector<float> sharpened;
    std::vector<float> edges;
    std::vector<float> motionMask;
};

BurstResult
runBurst(PolicyKind policy)
{
    SocConfig config;
    config.policy = policy;
    Soc soc(config);

    AppConfig app_config;
    app_config.functional = true;

    DagPtr sharpen = buildSharpen(app_config);
    DagPtr sobel = buildSobelView(app_config);
    DagPtr motion = buildMotion(app_config);
    DagPtr deblur = buildApp(AppId::Deblur, app_config);
    for (DagPtr dag : {sharpen, sobel, motion, deblur})
        soc.submit(dag);
    soc.run(continuousWindow);

    BurstResult result;
    result.report = soc.report();
    if (sharpen->complete())
        result.sharpened = sharpen->leaves().front()->outputData;
    if (sobel->complete())
        result.edges = sobel->leaves().front()->outputData;
    if (motion->complete())
        result.motionMask = motion->leaves().front()->outputData;
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string baseline = "GEDF-N";
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--policy") && i + 1 < argc) {
            baseline = argv[++i];
        } else {
            std::cerr << "usage: photo_editor [--policy NAME]\n";
            return 1;
        }
    }

    std::cout << "shutter burst: sharpen + sobel-view + motion + "
                 "deblur\n\n";
    BurstResult base = runBurst(policyFromName(baseline));
    BurstResult relief = runBurst(PolicyKind::Relief);

    Table table("burst comparison");
    table.setHeader({"metric", baseline, "RELIEF"});
    table.addRow({"burst latency (ms)",
                  Table::num(toMs(base.report.execTime), 2),
                  Table::num(toMs(relief.report.execTime), 2)});
    table.addRow({"forwards + colocations",
                  std::to_string(base.report.run.forwards +
                                 base.report.run.colocations),
                  std::to_string(relief.report.run.forwards +
                                 relief.report.run.colocations)});
    table.addRow({"DRAM traffic (KiB)",
                  std::to_string(base.report.dramBytes / 1024),
                  std::to_string(relief.report.dramBytes / 1024)});
    table.addRow({"node deadlines met %",
                  Table::pct(base.report.run.nodeDeadlineFraction()),
                  Table::pct(relief.report.run.nodeDeadlineFraction())});
    table.print(std::cout);

    // Scheduling must never change pixels.
    bool identical = base.sharpened == relief.sharpened &&
                     base.edges == relief.edges &&
                     base.motionMask == relief.motionMask;
    std::cout << "\npixel outputs identical across policies: "
              << (identical ? "yes" : "NO (bug!)") << "\n";

    int edge_pixels = 0;
    for (float v : relief.edges)
        edge_pixels += v > 0.2f;
    int motion_pixels = 0;
    for (float v : relief.motionMask)
        motion_pixels += v != 0.0f;
    std::cout << "edge-overlay pixels: " << edge_pixels
              << ", ghosting pixels flagged: " << motion_pixels << "\n";
    return identical ? 0 : 1;
}
