/**
 * @file
 * Quickstart: build the Table VI platform, run one Canny DAG under
 * RELIEF, and print what happened — forwards, colocations, traffic,
 * deadline outcome. With --functional the DAG computes real pixels and
 * the example reports how many edge pixels Canny found.
 *
 * Usage: quickstart [--policy NAME] [--mix SYMBOLS] [--functional]
 */

#include <cstring>
#include <iostream>
#include <string>

#include "core/relief.hh"

using namespace relief;

int
main(int argc, char **argv)
{
    std::string policy_name = "RELIEF";
    std::string mix = "C";
    bool functional = false;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--policy") && i + 1 < argc) {
            policy_name = argv[++i];
        } else if (!std::strcmp(argv[i], "--mix") && i + 1 < argc) {
            mix = argv[++i];
        } else if (!std::strcmp(argv[i], "--functional")) {
            functional = true;
        } else {
            std::cerr << "usage: quickstart [--policy NAME] "
                         "[--mix SYMBOLS] [--functional]\n";
            return 1;
        }
    }

    SocConfig config;
    config.policy = policyFromName(policy_name);
    Soc soc(config);

    AppConfig app_config;
    app_config.functional = functional;

    std::vector<DagPtr> dags;
    for (AppId app : parseMix(mix)) {
        DagPtr dag = buildApp(app, app_config);
        std::cout << "submitting " << dag->name() << ": "
                  << dag->numNodes() << " nodes, " << dag->numEdges()
                  << " edges, deadline "
                  << toMs(dag->relativeDeadline()) << " ms\n";
        soc.submit(dag);
        dags.push_back(dag);
    }

    soc.run(continuousWindow);
    MetricsReport report = soc.report();

    std::cout << "\npolicy: " << policy_name << "\n";
    std::cout << "execution time: " << toMs(report.execTime) << " ms\n";
    std::cout << "edges consumed: " << report.run.edgesConsumed
              << " (forwards " << report.run.forwards << ", colocations "
              << report.run.colocations << ", DRAM "
              << report.run.dramEdges << ")\n";
    std::cout << "forward+colocation share: "
              << Table::pct(report.forwardFraction()) << " %\n";
    std::cout << "DRAM traffic: " << report.dramBytes / 1024 << " KiB ("
              << Table::pct(report.dramTrafficFraction())
              << " % of all-DRAM baseline)\n";
    std::cout << "SPM-to-SPM traffic: "
              << report.spmForwardBytes / 1024 << " KiB\n";
    std::cout << "node deadlines met: "
              << Table::pct(report.run.nodeDeadlineFraction()) << " %\n";

    for (const AppOutcome &app : report.apps) {
        std::cout << app.name << ": " << app.iterations
                  << " run(s) finished, slowdown "
                  << (app.starved() ? std::string("inf")
                                    : Table::num(app.meanSlowdown()))
                  << "\n";
    }

    if (functional) {
        for (DagPtr &dag : dags) {
            Node *leaf = dag->leaves().front();
            if (leaf->outputData.empty())
                continue;
            int nonzero = 0;
            for (float v : leaf->outputData)
                nonzero += v != 0.0f;
            std::cout << dag->name() << " functional output: " << nonzero
                      << " / " << leaf->outputData.size()
                      << " active elements\n";
        }
    }
    return 0;
}
