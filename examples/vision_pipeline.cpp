/**
 * @file
 * Camera vision pipeline example: a phone camera produces frames at
 * 60 FPS and three vision applications (Canny edges for face
 * detection, Harris corners for panorama stitching, Richardson-Lucy
 * deblur) process every frame under a deadline. The example runs the
 * pipeline in functional mode — real pixels flow through the simulated
 * SoC — and compares a baseline policy with RELIEF on deadline
 * behaviour and memory traffic.
 *
 * Usage: vision_pipeline [--frames N] [--baseline POLICY]
 */

#include <cstring>
#include <iostream>
#include <string>

#include "core/relief.hh"

using namespace relief;

namespace
{

struct PipelineResult
{
    MetricsReport report;
    int edgePixels = 0;
    int cornerPixels = 0;
};

PipelineResult
runPipeline(PolicyKind policy, int frames)
{
    SocConfig config;
    config.policy = policy;
    Soc soc(config);

    AppConfig app_config;
    app_config.functional = true;

    const Tick frame_period = fromMs(1000.0 / 60.0);
    app_config.seed = 1;

    PeriodicConfig canny_stream;
    canny_stream.app = AppId::Canny;
    canny_stream.period = frame_period;
    canny_stream.count = frames;
    canny_stream.appConfig = app_config;
    PeriodicConfig harris_stream = canny_stream;
    harris_stream.app = AppId::Harris;
    // A full-quality deblur runs on every fourth frame (capture),
    // while edge/corner preview analyses run on every frame.
    PeriodicConfig deblur_stream = canny_stream;
    deblur_stream.app = AppId::Deblur;
    deblur_stream.period = 4 * frame_period;
    deblur_stream.count = (frames + 3) / 4;

    std::vector<DagPtr> canny_frames = submitPeriodic(soc, canny_stream);
    std::vector<DagPtr> harris_frames =
        submitPeriodic(soc, harris_stream);
    submitPeriodic(soc, deblur_stream);

    soc.run(Tick(frames + 2) * frame_period);

    PipelineResult result;
    result.report = soc.report();
    for (DagPtr &dag : canny_frames) {
        if (!dag->complete())
            continue;
        for (float v : dag->leaves().front()->outputData)
            result.edgePixels += v != 0.0f;
    }
    for (DagPtr &dag : harris_frames) {
        if (!dag->complete())
            continue;
        for (float v : dag->leaves().front()->outputData)
            result.cornerPixels += v != 0.0f;
    }
    return result;
}


} // namespace

int
main(int argc, char **argv)
{
    int frames = 3;
    std::string baseline = "LAX";
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--frames") && i + 1 < argc) {
            frames = std::atoi(argv[++i]);
        } else if (!std::strcmp(argv[i], "--baseline") && i + 1 < argc) {
            baseline = argv[++i];
        } else {
            std::cerr << "usage: vision_pipeline [--frames N] "
                         "[--baseline POLICY]\n";
            return 1;
        }
    }

    std::cout << "60 FPS camera pipeline: Canny + Harris + Deblur on "
              << frames << " frame(s)\n\n";

    Table table("pipeline comparison");
    table.setHeader({"metric", baseline, "RELIEF"});
    PipelineResult base = runPipeline(policyFromName(baseline), frames);
    PipelineResult relief = runPipeline(PolicyKind::Relief, frames);

    auto add = [&](const std::string &metric, const std::string &a,
                   const std::string &b) {
        table.addRow({metric, a, b});
    };
    add("node deadlines met %",
        Table::pct(base.report.run.nodeDeadlineFraction()),
        Table::pct(relief.report.run.nodeDeadlineFraction()));
    add("DAG deadlines met",
        std::to_string(base.report.run.dagDeadlinesMet) + "/" +
            std::to_string(base.report.run.dagsFinished),
        std::to_string(relief.report.run.dagDeadlinesMet) + "/" +
            std::to_string(relief.report.run.dagsFinished));
    add("forwards + colocations",
        std::to_string(base.report.run.forwards +
                       base.report.run.colocations),
        std::to_string(relief.report.run.forwards +
                       relief.report.run.colocations));
    add("DRAM traffic (KiB)",
        std::to_string(base.report.dramBytes / 1024),
        std::to_string(relief.report.dramBytes / 1024));
    add("DRAM energy (uJ)",
        Table::num(base.report.dramEnergyPJ / 1e6, 1),
        Table::num(relief.report.dramEnergyPJ / 1e6, 1));

    // Per-application view: deadline-driven baselines tend to trade
    // one application's latency for another's (the paper's fairness
    // discussion, Section V-E); the worst per-app slowdown shows it.
    auto worst = [](const MetricsReport &r) {
        double w = 0.0;
        for (const AppOutcome &app : r.apps)
            w = std::max(w, app.starved() ? 99.0 : app.maxSlowdown());
        return w;
    };
    add("worst-case app slowdown", Table::num(worst(base.report), 2),
        Table::num(worst(relief.report), 2));
    table.print(std::cout);

    std::cout << "\nfunctional results (RELIEF run): "
              << relief.edgePixels << " edge pixels, "
              << relief.cornerPixels
              << " corner peaks across completed frames\n";
    return 0;
}
