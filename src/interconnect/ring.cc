#include "interconnect/ring.hh"

#include "sim/hostprof.hh"

#include <utility>

#include "sim/logging.hh"

namespace relief
{

Ring::Ring(Simulator &sim, std::string name, const RingConfig &config)
    : Interconnect(sim, std::move(name)), config_(config)
{
}

PortId
Ring::registerPort(const std::string &port_name)
{
    Link link;
    link.clockwise = std::make_unique<BandwidthResource>(
        name() + "." + port_name + ".cw", config_.linkBandwidthGBs,
        config_.hopLatency);
    link.counterClockwise = std::make_unique<BandwidthResource>(
        name() + "." + port_name + ".ccw", config_.linkBandwidthGBs,
        config_.hopLatency);
    links_.push_back(std::move(link));
    return PortId(links_.size()) - 1;
}

int
Ring::hopCount(PortId src, PortId dst) const
{
    int n = numPorts();
    RELIEF_ASSERT(n >= 2, name(), ": ring needs >= 2 ports");
    int cw = (dst - src + n) % n;
    int ccw = n - cw;
    return std::min(cw, ccw);
}

std::vector<BandwidthResource *>
Ring::path(PortId src, PortId dst)
{
    HostProfScope prof(HostCat::Interconnect);
    int n = numPorts();
    RELIEF_ASSERT(src >= 0 && src < n, name(), ": bad src port ", src);
    RELIEF_ASSERT(dst >= 0 && dst < n, name(), ": bad dst port ", dst);
    RELIEF_ASSERT(src != dst, name(), ": transfer to self on port ", src);

    int cw = (dst - src + n) % n;
    int ccw = n - cw;
    std::vector<BandwidthResource *> out;
    if (cw <= ccw) {
        // Clockwise: segment i joins port i and i+1.
        for (int hop = 0; hop < cw; ++hop) {
            int seg = (src + hop) % n;
            out.push_back(links_[std::size_t(seg)].clockwise.get());
        }
    } else {
        for (int hop = 0; hop < ccw; ++hop) {
            int seg = (src - 1 - hop + 2 * n) % n;
            out.push_back(
                links_[std::size_t(seg)].counterClockwise.get());
        }
    }
    return out;
}

void
Ring::resetStats()
{
    Interconnect::resetStats();
    for (auto &link : links_) {
        link.clockwise->resetStats();
        link.counterClockwise->resetStats();
    }
}

} // namespace relief
