/**
 * @file
 * Interconnect abstraction on the SoC's DMA plane.
 *
 * Accelerator DMA engines and the main-memory channel attach to the
 * interconnect through numbered ports. A concrete topology (Bus or
 * Crossbar, the two ends of the cost/performance spectrum evaluated in
 * the paper's Section V-H) maps a (source, destination) port pair to the
 * chain of bandwidth resources a transfer must claim.
 */

#ifndef RELIEF_INTERCONNECT_INTERCONNECT_HH
#define RELIEF_INTERCONNECT_INTERCONNECT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "mem/bandwidth_resource.hh"
#include "sim/debug.hh"
#include "sim/simulator.hh"
#include "stats/interval_union.hh"
#include "stats/stats.hh"

namespace relief
{

/** Interconnect attachment point. */
using PortId = int;

class Interconnect : public SimObject
{
  public:
    using SimObject::SimObject;

    /** Attach a device; returns its port id. */
    virtual PortId registerPort(const std::string &port_name) = 0;

    /** Resources a transfer from @p src to @p dst must claim, in order. */
    virtual std::vector<BandwidthResource *> path(PortId src, PortId dst) = 0;

    /** Record a completed reservation for occupancy accounting. */
    void
    recordTransfer(Tick start, Tick end, std::uint64_t bytes)
    {
        busy_.add(start, end);
        bytes_.add(bytes);
        transfers_.add(1);
        DPRINTF(Fabric, bytes, " bytes reserved [", start, ", ", end,
                ")");
    }

    /** Time during which at least one transaction was in flight. */
    Tick busyTime(Tick upTo = maxTick) const { return busy_.covered(upTo); }

    /** Fraction of [0, upTo) with at least one transaction in flight. */
    double
    occupancy(Tick upTo) const
    {
        return upTo ? double(busyTime(upTo)) / double(upTo) : 0.0;
    }

    std::uint64_t totalBytes() const { return bytes_.value(); }
    std::uint64_t numTransfers() const { return transfers_.value(); }

    virtual void resetStats();

    /** Number of registered ports. */
    virtual int numPorts() const = 0;

    /**
     * Every bandwidth resource this topology arbitrates (links, port
     * egress/ingress pipes), for pressure-ledger registration. Order
     * must be deterministic: topology construction order.
     */
    virtual std::vector<BandwidthResource *> resources() = 0;

  private:
    IntervalUnion busy_;
    Counter bytes_;
    Counter transfers_;
};

} // namespace relief

#endif // RELIEF_INTERCONNECT_INTERCONNECT_HH
