#include "interconnect/crossbar.hh"

#include "sim/hostprof.hh"

#include <utility>

#include "sim/logging.hh"

namespace relief
{

Crossbar::Crossbar(Simulator &sim, std::string name,
                   const CrossbarConfig &config)
    : Interconnect(sim, std::move(name)), config_(config)
{
}

PortId
Crossbar::registerPort(const std::string &port_name)
{
    Port port;
    port.egress = std::make_unique<BandwidthResource>(
        name() + "." + port_name + ".egress", config_.portBandwidthGBs,
        config_.routeLatency);
    port.ingress = std::make_unique<BandwidthResource>(
        name() + "." + port_name + ".ingress", config_.portBandwidthGBs,
        config_.routeLatency);
    ports_.push_back(std::move(port));
    return PortId(ports_.size()) - 1;
}

std::vector<BandwidthResource *>
Crossbar::path(PortId src, PortId dst)
{
    HostProfScope prof(HostCat::Interconnect);
    RELIEF_ASSERT(src >= 0 && src < numPorts(), name(), ": bad src port ",
                  src);
    RELIEF_ASSERT(dst >= 0 && dst < numPorts(), name(), ": bad dst port ",
                  dst);
    RELIEF_ASSERT(src != dst, name(), ": transfer to self on port ", src);
    return {ports_[std::size_t(src)].egress.get(),
            ports_[std::size_t(dst)].ingress.get()};
}

void
Crossbar::resetStats()
{
    Interconnect::resetStats();
    for (auto &port : ports_) {
        port.egress->resetStats();
        port.ingress->resetStats();
    }
}

} // namespace relief
