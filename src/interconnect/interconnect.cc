#include "interconnect/interconnect.hh"

namespace relief
{

void
Interconnect::resetStats()
{
    busy_.clear();
    bytes_.reset();
    transfers_.reset();
}

} // namespace relief
