/**
 * @file
 * Bidirectional ring interconnect — the middle point of the
 * cost/performance spectrum between the shared bus and the full
 * crossbar (Section V-H evaluates the two extremes; rings are what
 * many real SoCs actually ship).
 *
 * Each adjacent port pair is connected by two directed links (one per
 * rotation direction). A transfer takes the shorter direction and
 * claims every link segment it traverses, so transfers whose paths do
 * not overlap proceed concurrently while overlapping paths contend on
 * the shared segments.
 */

#ifndef RELIEF_INTERCONNECT_RING_HH
#define RELIEF_INTERCONNECT_RING_HH

#include <memory>
#include <string>
#include <vector>

#include "interconnect/interconnect.hh"

namespace relief
{

/** Configuration for Ring. */
struct RingConfig
{
    double linkBandwidthGBs = 14.9; ///< Per-link bandwidth.
    Tick hopLatency = fromNs(1.0);  ///< Per-segment router latency.
};

class Ring : public Interconnect
{
  public:
    Ring(Simulator &sim, std::string name, const RingConfig &config = {});

    PortId registerPort(const std::string &port_name) override;
    std::vector<BandwidthResource *> path(PortId src, PortId dst) override;
    int numPorts() const override { return int(links_.size()); }
    std::vector<BandwidthResource *> resources() override
    {
        std::vector<BandwidthResource *> all;
        for (Link &link : links_) {
            all.push_back(link.clockwise.get());
            all.push_back(link.counterClockwise.get());
        }
        return all;
    }
    void resetStats() override;

    /** Hops a src -> dst transfer traverses (shorter direction). */
    int hopCount(PortId src, PortId dst) const;

  private:
    struct Link
    {
        std::unique_ptr<BandwidthResource> clockwise;
        std::unique_ptr<BandwidthResource> counterClockwise;
    };

    RingConfig config_;
    /** links_[i] joins port i and port (i + 1) % numPorts(). */
    std::vector<Link> links_;
};

} // namespace relief

#endif // RELIEF_INTERCONNECT_RING_HH
