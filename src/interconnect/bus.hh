/**
 * @file
 * Shared full-duplex bus (Table VI: 16 B wide, 14.9 GB/s peak).
 *
 * All transfers share one payload channel, so concurrent DMA streams
 * serialize — this is the contention RELIEF's forwarding is trying to
 * relieve at the memory controller, reproduced at the fabric level.
 */

#ifndef RELIEF_INTERCONNECT_BUS_HH
#define RELIEF_INTERCONNECT_BUS_HH

#include <string>
#include <vector>

#include "interconnect/interconnect.hh"

namespace relief
{

/** Configuration for Bus. */
struct BusConfig
{
    double bandwidthGBs = 14.9;          ///< Payload bandwidth.
    Tick arbitrationLatency = fromNs(5.0); ///< Grant + setup time.
};

class Bus : public Interconnect
{
  public:
    Bus(Simulator &sim, std::string name, const BusConfig &config = {});

    PortId registerPort(const std::string &port_name) override;
    std::vector<BandwidthResource *> path(PortId src, PortId dst) override;
    int numPorts() const override { return int(portNames_.size()); }
    std::vector<BandwidthResource *> resources() override
    {
        return {&channel_};
    }
    void resetStats() override;

    const BandwidthResource &channel() const { return channel_; }

  private:
    BusConfig config_;
    BandwidthResource channel_;
    std::vector<std::string> portNames_;
};

} // namespace relief

#endif // RELIEF_INTERCONNECT_BUS_HH
