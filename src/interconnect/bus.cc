#include "interconnect/bus.hh"

#include "sim/hostprof.hh"

#include <utility>

#include "sim/logging.hh"

namespace relief
{

Bus::Bus(Simulator &sim, std::string name, const BusConfig &config)
    : Interconnect(sim, std::move(name)), config_(config),
      channel_(this->name() + ".channel", config.bandwidthGBs,
               config.arbitrationLatency)
{
}

PortId
Bus::registerPort(const std::string &port_name)
{
    portNames_.push_back(port_name);
    return PortId(portNames_.size()) - 1;
}

std::vector<BandwidthResource *>
Bus::path(PortId src, PortId dst)
{
    HostProfScope prof(HostCat::Interconnect);
    RELIEF_ASSERT(src >= 0 && src < numPorts(), name(), ": bad src port ",
                  src);
    RELIEF_ASSERT(dst >= 0 && dst < numPorts(), name(), ": bad dst port ",
                  dst);
    RELIEF_ASSERT(src != dst, name(), ": transfer to self on port ", src);
    return {&channel_};
}

void
Bus::resetStats()
{
    Interconnect::resetStats();
    channel_.resetStats();
}

} // namespace relief
