/**
 * @file
 * Crossbar switch: up to n x m concurrent transactions (paper §V-H).
 *
 * Each port gets its own egress and ingress resources; transfers between
 * disjoint port pairs proceed fully in parallel, while transfers sharing
 * a port serialize on that port only.
 */

#ifndef RELIEF_INTERCONNECT_CROSSBAR_HH
#define RELIEF_INTERCONNECT_CROSSBAR_HH

#include <memory>
#include <string>
#include <vector>

#include "interconnect/interconnect.hh"

namespace relief
{

/** Configuration for Crossbar. */
struct CrossbarConfig
{
    double portBandwidthGBs = 14.9;       ///< Per-port lane bandwidth.
    Tick routeLatency = fromNs(2.5);      ///< Per-hop switch latency.
};

class Crossbar : public Interconnect
{
  public:
    Crossbar(Simulator &sim, std::string name,
             const CrossbarConfig &config = {});

    PortId registerPort(const std::string &port_name) override;
    std::vector<BandwidthResource *> path(PortId src, PortId dst) override;
    int numPorts() const override { return int(ports_.size()); }
    std::vector<BandwidthResource *> resources() override
    {
        std::vector<BandwidthResource *> all;
        for (Port &port : ports_) {
            all.push_back(port.egress.get());
            all.push_back(port.ingress.get());
        }
        return all;
    }
    void resetStats() override;

  private:
    struct Port
    {
        std::unique_ptr<BandwidthResource> egress;
        std::unique_ptr<BandwidthResource> ingress;
    };

    CrossbarConfig config_;
    std::vector<Port> ports_;
};

} // namespace relief

#endif // RELIEF_INTERCONNECT_CROSSBAR_HH
