#include "core/soc.hh"
#include "sim/build_info.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <ostream>
#include <utility>

#include "kernels/scratch.hh"
#include "sched/relief.hh"
#include "sim/logging.hh"
#include "stats/json.hh"
#include "stats/table.hh"

namespace relief
{

double
AppOutcome::meanSlowdown() const
{
    if (slowdowns.empty())
        return std::numeric_limits<double>::infinity();
    return geomean(slowdowns);
}

double
AppOutcome::maxSlowdown() const
{
    if (slowdowns.empty())
        return std::numeric_limits<double>::infinity();
    return *std::max_element(slowdowns.begin(), slowdowns.end());
}

double
MetricsReport::dramTrafficFraction() const
{
    return run.baselineBytes ? double(dramBytes) / double(run.baselineBytes)
                             : 0.0;
}

double
MetricsReport::spmTrafficFraction() const
{
    return run.baselineBytes
               ? double(spmForwardBytes) / double(run.baselineBytes)
               : 0.0;
}

Soc::Soc(const SocConfig &config) : config_(config)
{
    if (config.bankedMemory) {
        // Bank knobs come from config.banked; the channel-level knobs
        // (peak bandwidth, latency, energy) follow config.mem.
        BankedMemoryConfig banked = config.banked;
        static_cast<MainMemoryConfig &>(banked) = config.mem;
        dram_ = std::make_unique<BankedMemory>(sim_, "soc.dram", banked);
    } else {
        dram_ = std::make_unique<MainMemory>(sim_, "soc.dram",
                                             config.mem);
    }
    switch (config.fabric) {
      case FabricKind::Bus:
        fabric_ = std::make_unique<Bus>(sim_, "soc.bus", config.bus);
        break;
      case FabricKind::Crossbar:
        fabric_ = std::make_unique<Crossbar>(sim_, "soc.xbar",
                                             config.crossbar);
        break;
      case FabricKind::Ring:
        fabric_ = std::make_unique<Ring>(sim_, "soc.ring", config.ring);
        break;
    }
    dramPort_ = fabric_->registerPort("dram");

    std::vector<Accelerator *> acc_ptrs;
    for (AccType type : allAccTypes) {
        for (int i = 0; i < config.instances[accIndex(type)]; ++i) {
            ScratchpadConfig spm;
            spm.sizeBytes = defaultSpmBytes(type);
            spm.numOutputPartitions = config.spmPartitions;
            std::string acc_name = std::string("soc.") +
                                   accTypeName(type) + std::to_string(i);
            accs_.push_back(std::make_unique<Accelerator>(
                sim_, acc_name, type, i, *fabric_, dramPort_, *dram_, spm,
                config.dma));
            acc_ptrs.push_back(accs_.back().get());
        }
    }

    auto predictor = std::make_unique<RuntimePredictor>(
        config.bwPredictor, config.dmPredictor, config.mem.peakGBs,
        config.instances);

    std::unique_ptr<Policy> policy;
    bool relief_family = config.policy == PolicyKind::Relief ||
                         config.policy == PolicyKind::ReliefLax ||
                         config.policy == PolicyKind::ReliefHetSched;
    if (relief_family && !config.reliefFeasibilityCheck) {
        ReliefOptions options;
        options.laxDispatch = config.policy == PolicyKind::ReliefLax;
        options.scheme = config.policy == PolicyKind::ReliefHetSched
                             ? DeadlineScheme::Sdr
                             : DeadlineScheme::CriticalPath;
        options.feasibilityCheck = false;
        policy = std::make_unique<ReliefPolicy>(options);
    } else {
        policy = makePolicy(config.policy);
    }

    manager_ = std::make_unique<HardwareManager>(
        sim_, "soc.manager", std::move(policy), std::move(predictor),
        acc_ptrs, config.manager);
    manager_->setDagCompletionHandler(
        [this](Dag *dag) { onDagComplete(dag); });

    // Pressure ledger: register every requestor and every bandwidth
    // resource on the DMA/DRAM plane, then freeze the key space so the
    // event hot path only bumps pre-sized slots.
    ledger_ = std::make_unique<PressureLedger>();
    for (const std::string &qos_name : config.qosClassNames)
        ledger_->addQosClass(qos_name);
    for (auto &acc : accs_)
        acc->dma().setPressureSource(ledger_->addSource(acc->name()));
    for (BandwidthResource *res : dram_->pressureResources())
        ledger_->addResource(*res);
    for (BandwidthResource *res : fabric_->resources())
        ledger_->addResource(*res);
    for (auto &acc : accs_) {
        ledger_->addResource(acc->dma().readChannel());
        ledger_->addResource(acc->dma().writeChannel());
        ledger_->addResource(acc->spm().port());
    }
    ledger_->seal();

    registerStats();
}

void
Soc::registerStats()
{
    // Registration order is the text-dump order; keep it aligned with
    // the historical dumpStats() layout so diffs stay line-stable.
    stats_.addCounter("sim.ticks", "final tick (ps)",
                      [this] { return sim_.events().curTick(); });
    stats_.addScalar("sim.time_ms", "simulated milliseconds",
                     [this] { return toMs(sim_.events().curTick()); });
    stats_.addCounter("sim.events", "events executed",
                      [this] { return sim_.events().numExecuted(); });
    stats_.addCounter("sim.events_cancelled",
                      "cancelled events dropped (lazy deletion)",
                      [this] { return sim_.events().numCancelled(); });
    stats_.addCounter("sim.event_heap_callables",
                      "event captures too large for the inline buffer",
                      [this] {
                          return sim_.events().numHeapCallables();
                      });
    stats_.addCounter("sim.event_compactions",
                      "event-heap compaction passes",
                      [this] {
                          return sim_.events().numCompactions();
                      });

    stats_.addCounter("dram.read_bytes", "bytes read from DRAM",
                      [this] { return dram_->readBytes(); });
    stats_.addCounter("dram.write_bytes", "bytes written to DRAM",
                      [this] { return dram_->writeBytes(); });
    stats_.addScalar("dram.energy_pj", "dynamic DRAM energy",
                     [this] { return dram_->energyPJ(); });
    stats_.addScalar("dram.channel.busy_us", "channel busy time",
                     [this] {
                         return toUs(dram_->channel().busyTime(endTick_));
                     });
    stats_.addCounter("dram.channel.transfers", "channel reservations",
                      [this] {
                          return dram_->channel().numTransfers();
                      });

    stats_.addCounter("fabric.bytes", "fabric payload bytes",
                      [this] { return fabric_->totalBytes(); });
    stats_.addCounter("fabric.transfers", "fabric transactions",
                      [this] { return fabric_->numTransfers(); });
    stats_.addFormula("fabric.occupancy", "fraction of time busy",
                      [this] { return fabric_->occupancy(endTick_); });

    for (const auto &acc_ptr : accs_) {
        Accelerator *acc = acc_ptr.get();
        const std::string prefix = acc->name();
        stats_.addCounter(prefix + ".tasks", "tasks completed",
                          [acc] { return acc->tasksExecuted(); });
        stats_.addScalar(prefix + ".compute_busy_us",
                         "compute busy time", [this, acc] {
                             return toUs(acc->computeBusyTime(endTick_));
                         });
        stats_.addCounter(prefix + ".spm.read_bytes",
                          "scratchpad bytes read",
                          [acc] { return acc->spm().readBytes(); });
        stats_.addCounter(prefix + ".spm.write_bytes",
                          "scratchpad bytes written",
                          [acc] { return acc->spm().writeBytes(); });
        stats_.addScalar(prefix + ".spm.energy_pj", "scratchpad energy",
                         [acc] { return acc->spm().energyPJ(); });
        stats_.addCounter(prefix + ".dma.dram_read_bytes",
                          "DRAM loads issued", [acc] {
                              return acc->dma().bytesMoved(
                                  TrafficClass::DramRead);
                          });
        stats_.addCounter(prefix + ".dma.dram_write_bytes",
                          "DRAM write-backs issued", [acc] {
                              return acc->dma().bytesMoved(
                                  TrafficClass::DramWrite);
                          });
        stats_.addCounter(prefix + ".dma.forward_bytes",
                          "forwarded bytes pulled", [acc] {
                              return acc->dma().bytesMoved(
                                  TrafficClass::SpmForward);
                          });
    }

    const RunMetrics &m = manager_->metrics();
    stats_.addCounter("manager.edges", "parent edges satisfied",
                      [&m] { return m.edgesConsumed; });
    stats_.addCounter("manager.forwards", "edges forwarded SPM-to-SPM",
                      [&m] { return m.forwards; });
    stats_.addCounter("manager.colocations", "edges colocated",
                      [&m] { return m.colocations; });
    stats_.addCounter("manager.dram_edges", "edges served from DRAM",
                      [&m] { return m.dramEdges; });
    stats_.addCounter("manager.writebacks_avoided",
                      "outputs never sent to DRAM",
                      [&m] { return m.writebacksAvoided; });
    stats_.addCounter("manager.nodes_finished", "tasks completed",
                      [&m] { return m.nodesFinished; });
    stats_.addCounter("manager.node_deadlines_met",
                      "tasks within deadline",
                      [&m] { return m.nodeDeadlinesMet; });
    stats_.addCounter("manager.dags_finished", "DAGs completed",
                      [&m] { return m.dagsFinished; });
    stats_.addCounter("manager.dag_deadlines_met",
                      "DAGs within deadline",
                      [&m] { return m.dagDeadlinesMet; });
    stats_.addScalar("manager.busy_us", "modeled scheduling time",
                     [&m] { return toUs(m.managerBusyTime); });
    stats_.addFormula("manager.push_mean_us",
                      "mean ready-queue insert cost",
                      [&m] { return toUs(Tick(m.pushLatency.mean())); });
    stats_.addFormula("manager.queue_wait_mean_us",
                      "mean ready-to-launch wait",
                      [&m] { return toUs(Tick(m.queueWait.mean())); });
    stats_.addFormula("manager.queue_wait_max_us",
                      "max ready-to-launch wait",
                      [&m] { return toUs(Tick(m.queueWait.max())); });
    stats_.addFormula("manager.queue_depth_mean",
                      "mean queue length at insert",
                      [&m] { return m.queueDepth.mean(); });
    stats_.addFormula("manager.forward_fraction",
                      "forwarded+colocated edges / consumed (Fig. 4)",
                      [&m] { return m.forwardFraction(m.edgesConsumed); });
    stats_.addFormula("manager.node_deadline_fraction",
                      "tasks within deadline / finished (Fig. 8)",
                      [&m] { return m.nodeDeadlineFraction(); });
    stats_.addFormula("manager.dag_deadline_fraction",
                      "DAGs within deadline / finished",
                      [&m] { return m.dagDeadlineFraction(); });
    stats_.addHistogram("manager.queue_wait_us",
                        "ready-to-launch wait distribution (us)",
                        &m.queueWaitUs);
    stats_.addHistogram("manager.queue_depth",
                        "queue length at insert distribution",
                        &m.queueDepthHist);
    stats_.addCounter("manager.queue_peak_depth",
                      "largest ready-queue length reached", [this] {
                          std::size_t peak = 0;
                          for (const ReadyQueue &q :
                               manager_->readyQueues())
                              peak = std::max(peak, q.peakSize());
                          return std::uint64_t(peak);
                      });

    // Critical-path attribution (manager/critical_path.hh): one sample
    // per finished DAG execution, per bucket. Bucket means sum to the
    // mean end-to-end DAG latency.
    stats_.addHistogram("manager.cp_queue_wait_us",
                        "critical-path queue wait per DAG (us)",
                        &m.cpQueueWaitUs);
    stats_.addHistogram("manager.cp_manager_us",
                        "critical-path manager overhead per DAG (us)",
                        &m.cpManagerUs);
    stats_.addHistogram("manager.cp_dma_in_us",
                        "critical-path input-DMA time per DAG (us)",
                        &m.cpDmaInUs);
    stats_.addHistogram("manager.cp_compute_us",
                        "critical-path compute time per DAG (us)",
                        &m.cpComputeUs);
    stats_.addHistogram("manager.cp_dma_out_us",
                        "critical-path write-back time per DAG (us)",
                        &m.cpDmaOutUs);
    stats_.addHistogram("manager.cp_dep_stall_us",
                        "critical-path dependency stall per DAG (us)",
                        &m.cpDepStallUs);
    stats_.addHistogram("manager.cp_total_us",
                        "end-to-end DAG latency (us)", &m.cpTotalUs);

    // Functional-kernel scratch pooling (kernels/scratch.hh). The
    // pool is thread-local and reset at every experiment entry point,
    // so these read the run's own counts on the thread that dumps.
    stats_.addCounter("kernels.scratch_reuses",
                      "kernel scratch buffers served from the pool",
                      [] { return ScratchPool::forThread().reuses(); });
    stats_.addCounter("kernels.scratch_allocs",
                      "kernel scratch buffers freshly allocated",
                      [] { return ScratchPool::forThread().allocs(); });
}

Soc::~Soc() = default;

std::vector<Accelerator *>
Soc::accelerators()
{
    std::vector<Accelerator *> out;
    out.reserve(accs_.size());
    for (auto &acc : accs_)
        out.push_back(acc.get());
    return out;
}

void
Soc::submit(DagPtr dag, Tick when, bool continuous)
{
    RELIEF_ASSERT(dag != nullptr, "submitting null DAG");
    Submission sub;
    sub.dag = dag;
    sub.continuous = continuous;
    sub.outcome.name = dag->name();
    sub.outcome.symbol = dag->symbol();
    sub.outcome.relDeadline = dag->relativeDeadline();
    submissions_.push_back(std::move(sub));
    manager_->submitDag(dag.get(), when);
}

void
Soc::onDagComplete(Dag *dag)
{
    for (Submission &sub : submissions_) {
        if (sub.dag.get() != dag)
            continue;
        Tick runtime = dag->finishTick() - dag->arrivalTick();
        sub.outcome.iterations += 1;
        if (dag->finishTick() <= dag->absoluteDeadline())
            sub.outcome.deadlinesMet += 1;
        sub.outcome.slowdowns.push_back(
            double(runtime) / double(dag->relativeDeadline()));
        if (sub.continuous && sim_.now() < runLimit_)
            manager_->submitDag(dag, sim_.now());
        return;
    }
    panic("completion callback for unknown DAG ", dag->name());
}

void
Soc::dumpStats(std::ostream &os) const
{
    os << "---------- Begin Simulation Statistics ----------\n";
    stats_.dumpText(os);

    // Per-application outcomes stay outside the registry: app names
    // repeat across submissions, while registry names are unique.
    auto line = [&os](const std::string &name, auto value,
                      const char *comment) {
        os << std::left << std::setw(44) << name << " " << std::setw(16)
           << value << " # " << comment << "\n";
    };
    for (const Submission &sub : submissions_) {
        const AppOutcome &app = sub.outcome;
        line("app." + app.name + ".iterations", app.iterations,
             "completed executions");
        line("app." + app.name + ".deadlines_met", app.deadlinesMet,
             "executions within deadline");
        if (!app.slowdowns.empty()) {
            line("app." + app.name + ".gmean_slowdown",
                 app.meanSlowdown(), "runtime / deadline");
        }
    }
    os << "---------- End Simulation Statistics ----------\n";
}

void
Soc::printLatencyBreakdown(std::ostream &os) const
{
    Table table("Per-DAG critical-path latency attribution");
    std::vector<std::string> header = {"dag", "nodes", "latency_ms"};
    for (int b = 0; b < numLatencyBuckets; ++b)
        header.push_back(std::string(latencyBucketName(b)) + "_us");
    table.setHeader(header);

    LatencyBreakdown mean;
    const auto &records = manager_->latencyRecords();
    for (const DagLatencyRecord &rec : records) {
        std::vector<std::string> row = {
            rec.dag, std::to_string(rec.pathLength),
            Table::num(toMs(rec.latency()), 3)};
        for (int b = 0; b < numLatencyBuckets; ++b)
            row.push_back(Table::num(toUs(latencyBucket(rec.buckets, b)), 1));
        table.addRow(row);

        mean.queueWait += rec.buckets.queueWait;
        mean.managerOverhead += rec.buckets.managerOverhead;
        mean.dmaIn += rec.buckets.dmaIn;
        mean.compute += rec.buckets.compute;
        mean.dmaOut += rec.buckets.dmaOut;
        mean.depStall += rec.buckets.depStall;
    }
    if (!records.empty()) {
        Tick n = Tick(records.size());
        std::vector<std::string> row = {
            "mean", "-", Table::num(toMs(mean.total() / n), 3)};
        for (int b = 0; b < numLatencyBuckets; ++b)
            row.push_back(Table::num(toUs(latencyBucket(mean, b) / n), 1));
        table.addRow(row);
    }
    table.emit(os);
}

void
Soc::writeStatsJson(std::ostream &os) const
{
    HostProfScope prof(HostCat::Stats);
    os << "{\n  \"schema\": \"relief-stats-v1\",\n  \"build_info\": ";
    writeBuildInfoJson(os, 2);
    os << ",\n  \"stats\": ";
    stats_.dumpJsonStats(os, 4);
    os << ",\n  \"apps\": [";
    bool first = true;
    for (const Submission &sub : submissions_) {
        const AppOutcome &app = sub.outcome;
        if (!first)
            os << ",";
        first = false;
        os << "\n    {\"name\": \"" << jsonEscape(app.name)
           << "\", \"rel_deadline\": " << app.relDeadline
           << ", \"iterations\": " << app.iterations
           << ", \"deadlines_met\": " << app.deadlinesMet
           << ", \"gmean_slowdown\": " << jsonNumber(app.meanSlowdown())
           << ", \"max_slowdown\": " << jsonNumber(app.maxSlowdown())
           << "}";
    }
    os << "\n  ],\n  \"pressure\": ";
    ledger_->writeJson(os, endTick_, 8, pressureSummary(), nullptr);
    os << "\n}\n";
}

PressureLedger::Summary
Soc::pressureSummary() const
{
    PressureLedger::Summary summary;
    summary.dramBytes = dram_->totalBytes();
    summary.fabricBytes = fabric_->totalBytes();
    // Colocated bytes never moved at all; forwarded bytes crossed the
    // fabric instead of making a DRAM round trip.
    summary.sparedColocationBytes = manager_->metrics().colocatedBytes;
    for (const auto &acc : accs_) {
        summary.sparedForwardBytes +=
            acc->dma().bytesMoved(TrafficClass::SpmForward);
    }
    return summary;
}

void
Soc::writePressureJson(std::ostream &os, int top_k) const
{
    HostProfScope prof(HostCat::Stats);
    ledger_->writeJson(os, endTick_, top_k, pressureSummary(),
                       "relief-pressure-v1");
    os << "\n";
}

TraceRecorder &
Soc::enableTracing(Tick sample_period)
{
    if (!trace_) {
        trace_ = std::make_unique<TraceRecorder>();
        manager_->setTrace(trace_.get());
    }
    if (sample_period > 0 && !sampler_) {
        sampler_ = std::make_unique<IntervalSampler>(sim_, *trace_,
                                                     sample_period);
        addSamplerProbes();
    }
    return *trace_;
}

void
Soc::addSamplerProbes()
{
    sampler_->addProbe("manager.ready_queue_depth", [this] {
        double depth = 0.0;
        for (const ReadyQueue &q : manager_->readyQueues())
            depth += double(q.size());
        return depth;
    });

    // Utilization over the last sampling interval: bytes moved since
    // the previous probe call against the channel's peak rate.
    auto last = std::make_shared<std::pair<Tick, std::uint64_t>>(0, 0);
    sampler_->addProbe("dram.bandwidth_utilization", [this, last] {
        Tick t = sim_.now();
        std::uint64_t bytes = dram_->totalBytes();
        Tick dt = t - last->first;
        std::uint64_t db = bytes - last->second;
        *last = {t, bytes};
        if (dt == 0)
            return 0.0;
        double gbs = double(db) / (double(dt) * 1e-12) / 1e9;
        return std::min(1.0, gbs / config_.mem.peakGBs);
    });

    sampler_->addProbe("dma.outstanding_bytes", [this] {
        std::uint64_t bytes = 0;
        for (const auto &acc : accs_)
            bytes += acc->dma().outstandingBytes();
        return double(bytes);
    });

    for (const auto &acc_ptr : accs_) {
        Accelerator *acc = acc_ptr.get();
        sampler_->addProbe(acc->name() + ".occupancy",
                           [acc] { return acc->busy() ? 1.0 : 0.0; });
    }

    // Per-bank/per-channel pressure tracks, opt-in: when the gate is
    // off no probe is registered, so disabled tracks cost nothing.
    if (config_.pressureTracks) {
        for (BandwidthResource *res : dram_->pressureResources()) {
            // Same delta-bytes scheme as the aggregate DRAM probe:
            // O(1) per sample regardless of run length.
            auto last =
                std::make_shared<std::pair<Tick, std::uint64_t>>(0, 0);
            sampler_->addProbe(
                res->name() + ".utilization", [this, res, last] {
                    Tick t = sim_.now();
                    std::uint64_t bytes = res->totalBytes();
                    Tick dt = t - last->first;
                    std::uint64_t db = bytes - last->second;
                    *last = {t, bytes};
                    if (dt == 0)
                        return 0.0;
                    double gbs = double(db) / (double(dt) * 1e-12) / 1e9;
                    return std::min(1.0, gbs / res->bandwidth());
                });
            int id = res->ledgerId();
            sampler_->addProbe(res->name() + ".queue_depth",
                               [this, id] {
                                   return double(ledger_->queueDepth(
                                       id, sim_.now()));
                               });
        }
    }

    // Host-time tracks, opt-in via HostProf: lay the simulator's own
    // wall clock alongside sim time so a Perfetto view shows where a
    // run's host cost grows. Gated at registration so runs without
    // --host-profile stay bit-identical (the values are wall-clock
    // and thus nondeterministic by nature).
    if (hostProfEnabled()) {
        sampler_->addProbe("host.wall_ms", [] {
            return double(hostProfSnapshot().totalWallNs) / 1e6;
        });
        sampler_->addProbe("host.attributed_ms", [] {
            return double(hostProfSnapshot().attributedNs()) / 1e6;
        });
    }
}

Tick
Soc::run(Tick limit)
{
    runLimit_ = limit;
    if (sampler_)
        sampler_->start();
    endTick_ = sim_.run(limit);
    return endTick_;
}

MetricsReport
Soc::report() const
{
    MetricsReport report;
    report.run = manager_->metrics();
    report.execTime = endTick_;
    report.dramBytes = dram_->totalBytes();
    report.dramEnergyPJ = dram_->energyPJ();

    Tick busy_sum = 0;
    for (const auto &acc : accs_) {
        report.spmForwardBytes +=
            acc->dma().bytesMoved(TrafficClass::SpmForward);
        report.spmBytes += acc->spm().readBytes() + acc->spm().writeBytes();
        report.spmEnergyPJ += acc->spm().energyPJ();
        busy_sum += acc->computeBusyTime(endTick_);
    }
    report.accOccupancy =
        endTick_ ? double(busy_sum) / double(endTick_) : 0.0;
    report.fabricOccupancy = fabric_->occupancy(endTick_);

    for (const Submission &sub : submissions_)
        report.apps.push_back(sub.outcome);
    return report;
}

} // namespace relief
