#include "core/soc.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <ostream>

#include "sched/relief.hh"
#include "sim/logging.hh"

namespace relief
{

double
AppOutcome::meanSlowdown() const
{
    if (slowdowns.empty())
        return std::numeric_limits<double>::infinity();
    return geomean(slowdowns);
}

double
AppOutcome::maxSlowdown() const
{
    if (slowdowns.empty())
        return std::numeric_limits<double>::infinity();
    return *std::max_element(slowdowns.begin(), slowdowns.end());
}

double
MetricsReport::dramTrafficFraction() const
{
    return run.baselineBytes ? double(dramBytes) / double(run.baselineBytes)
                             : 0.0;
}

double
MetricsReport::spmTrafficFraction() const
{
    return run.baselineBytes
               ? double(spmForwardBytes) / double(run.baselineBytes)
               : 0.0;
}

Soc::Soc(const SocConfig &config) : config_(config)
{
    if (config.bankedMemory) {
        // Bank knobs come from config.banked; the channel-level knobs
        // (peak bandwidth, latency, energy) follow config.mem.
        BankedMemoryConfig banked = config.banked;
        static_cast<MainMemoryConfig &>(banked) = config.mem;
        dram_ = std::make_unique<BankedMemory>(sim_, "soc.dram", banked);
    } else {
        dram_ = std::make_unique<MainMemory>(sim_, "soc.dram",
                                             config.mem);
    }
    switch (config.fabric) {
      case FabricKind::Bus:
        fabric_ = std::make_unique<Bus>(sim_, "soc.bus", config.bus);
        break;
      case FabricKind::Crossbar:
        fabric_ = std::make_unique<Crossbar>(sim_, "soc.xbar",
                                             config.crossbar);
        break;
      case FabricKind::Ring:
        fabric_ = std::make_unique<Ring>(sim_, "soc.ring", config.ring);
        break;
    }
    dramPort_ = fabric_->registerPort("dram");

    std::vector<Accelerator *> acc_ptrs;
    for (AccType type : allAccTypes) {
        for (int i = 0; i < config.instances[accIndex(type)]; ++i) {
            ScratchpadConfig spm;
            spm.sizeBytes = defaultSpmBytes(type);
            spm.numOutputPartitions = config.spmPartitions;
            std::string acc_name = std::string("soc.") +
                                   accTypeName(type) + std::to_string(i);
            accs_.push_back(std::make_unique<Accelerator>(
                sim_, acc_name, type, i, *fabric_, dramPort_, *dram_, spm,
                config.dma));
            acc_ptrs.push_back(accs_.back().get());
        }
    }

    auto predictor = std::make_unique<RuntimePredictor>(
        config.bwPredictor, config.dmPredictor, config.mem.peakGBs,
        config.instances);

    std::unique_ptr<Policy> policy;
    bool relief_family = config.policy == PolicyKind::Relief ||
                         config.policy == PolicyKind::ReliefLax ||
                         config.policy == PolicyKind::ReliefHetSched;
    if (relief_family && !config.reliefFeasibilityCheck) {
        ReliefOptions options;
        options.laxDispatch = config.policy == PolicyKind::ReliefLax;
        options.scheme = config.policy == PolicyKind::ReliefHetSched
                             ? DeadlineScheme::Sdr
                             : DeadlineScheme::CriticalPath;
        options.feasibilityCheck = false;
        policy = std::make_unique<ReliefPolicy>(options);
    } else {
        policy = makePolicy(config.policy);
    }

    manager_ = std::make_unique<HardwareManager>(
        sim_, "soc.manager", std::move(policy), std::move(predictor),
        acc_ptrs, config.manager);
    manager_->setDagCompletionHandler(
        [this](Dag *dag) { onDagComplete(dag); });
}

Soc::~Soc() = default;

std::vector<Accelerator *>
Soc::accelerators()
{
    std::vector<Accelerator *> out;
    out.reserve(accs_.size());
    for (auto &acc : accs_)
        out.push_back(acc.get());
    return out;
}

void
Soc::submit(DagPtr dag, Tick when, bool continuous)
{
    RELIEF_ASSERT(dag != nullptr, "submitting null DAG");
    Submission sub;
    sub.dag = dag;
    sub.continuous = continuous;
    sub.outcome.name = dag->name();
    sub.outcome.symbol = dag->symbol();
    sub.outcome.relDeadline = dag->relativeDeadline();
    submissions_.push_back(std::move(sub));
    manager_->submitDag(dag.get(), when);
}

void
Soc::onDagComplete(Dag *dag)
{
    for (Submission &sub : submissions_) {
        if (sub.dag.get() != dag)
            continue;
        Tick runtime = dag->finishTick() - dag->arrivalTick();
        sub.outcome.iterations += 1;
        if (dag->finishTick() <= dag->absoluteDeadline())
            sub.outcome.deadlinesMet += 1;
        sub.outcome.slowdowns.push_back(
            double(runtime) / double(dag->relativeDeadline()));
        if (sub.continuous && sim_.now() < runLimit_)
            manager_->submitDag(dag, sim_.now());
        return;
    }
    panic("completion callback for unknown DAG ", dag->name());
}

void
Soc::dumpStats(std::ostream &os) const
{
    auto line = [&os](const std::string &name, auto value,
                      const char *comment) {
        os << std::left << std::setw(44) << name << " " << std::setw(16)
           << value << " # " << comment << "\n";
    };

    os << "---------- Begin Simulation Statistics ----------\n";
    line("sim.ticks", sim_.events().curTick(), "final tick (ps)");
    line("sim.time_ms", toMs(sim_.events().curTick()),
         "simulated milliseconds");
    line("sim.events", sim_.events().numExecuted(), "events executed");

    line("dram.read_bytes", dram_->readBytes(), "bytes read from DRAM");
    line("dram.write_bytes", dram_->writeBytes(),
         "bytes written to DRAM");
    line("dram.energy_pj", dram_->energyPJ(), "dynamic DRAM energy");
    line("dram.channel.busy_us",
         toUs(dram_->channel().busyTime(endTick_)),
         "channel busy time");
    line("dram.channel.transfers", dram_->channel().numTransfers(),
         "channel reservations");

    line("fabric.bytes", fabric_->totalBytes(), "fabric payload bytes");
    line("fabric.transfers", fabric_->numTransfers(),
         "fabric transactions");
    line("fabric.occupancy", fabric_->occupancy(endTick_),
         "fraction of time busy");

    for (const auto &acc : accs_) {
        const std::string prefix = acc->name();
        line(prefix + ".tasks", acc->tasksExecuted(), "tasks completed");
        line(prefix + ".compute_busy_us",
             toUs(acc->computeBusyTime(endTick_)), "compute busy time");
        line(prefix + ".spm.read_bytes", acc->spm().readBytes(),
             "scratchpad bytes read");
        line(prefix + ".spm.write_bytes", acc->spm().writeBytes(),
             "scratchpad bytes written");
        line(prefix + ".spm.energy_pj", acc->spm().energyPJ(),
             "scratchpad energy");
        line(prefix + ".dma.dram_read_bytes",
             acc->dma().bytesMoved(TrafficClass::DramRead),
             "DRAM loads issued");
        line(prefix + ".dma.dram_write_bytes",
             acc->dma().bytesMoved(TrafficClass::DramWrite),
             "DRAM write-backs issued");
        line(prefix + ".dma.forward_bytes",
             acc->dma().bytesMoved(TrafficClass::SpmForward),
             "forwarded bytes pulled");
    }

    const RunMetrics &m = manager_->metrics();
    line("manager.edges", m.edgesConsumed, "parent edges satisfied");
    line("manager.forwards", m.forwards, "edges forwarded SPM-to-SPM");
    line("manager.colocations", m.colocations, "edges colocated");
    line("manager.dram_edges", m.dramEdges, "edges served from DRAM");
    line("manager.writebacks_avoided", m.writebacksAvoided,
         "outputs never sent to DRAM");
    line("manager.nodes_finished", m.nodesFinished, "tasks completed");
    line("manager.node_deadlines_met", m.nodeDeadlinesMet,
         "tasks within deadline");
    line("manager.dags_finished", m.dagsFinished, "DAGs completed");
    line("manager.dag_deadlines_met", m.dagDeadlinesMet,
         "DAGs within deadline");
    line("manager.busy_us", toUs(m.managerBusyTime),
         "modeled scheduling time");
    line("manager.push_mean_us", toUs(Tick(m.pushLatency.mean())),
         "mean ready-queue insert cost");
    line("manager.queue_wait_mean_us", toUs(Tick(m.queueWait.mean())),
         "mean ready-to-launch wait");
    line("manager.queue_wait_max_us", toUs(Tick(m.queueWait.max())),
         "max ready-to-launch wait");
    line("manager.queue_depth_mean", m.queueDepth.mean(),
         "mean queue length at insert");

    for (const Submission &sub : submissions_) {
        const AppOutcome &app = sub.outcome;
        line("app." + app.name + ".iterations", app.iterations,
             "completed executions");
        line("app." + app.name + ".deadlines_met", app.deadlinesMet,
             "executions within deadline");
        if (!app.slowdowns.empty()) {
            line("app." + app.name + ".gmean_slowdown",
                 app.meanSlowdown(), "runtime / deadline");
        }
    }
    os << "---------- End Simulation Statistics ----------\n";
}

TraceRecorder &
Soc::enableTracing()
{
    if (!trace_) {
        trace_ = std::make_unique<TraceRecorder>();
        manager_->setTrace(trace_.get());
    }
    return *trace_;
}

Tick
Soc::run(Tick limit)
{
    runLimit_ = limit;
    endTick_ = sim_.run(limit);
    return endTick_;
}

MetricsReport
Soc::report() const
{
    MetricsReport report;
    report.run = manager_->metrics();
    report.execTime = endTick_;
    report.dramBytes = dram_->totalBytes();
    report.dramEnergyPJ = dram_->energyPJ();

    Tick busy_sum = 0;
    for (const auto &acc : accs_) {
        report.spmForwardBytes +=
            acc->dma().bytesMoved(TrafficClass::SpmForward);
        report.spmBytes += acc->spm().readBytes() + acc->spm().writeBytes();
        report.spmEnergyPJ += acc->spm().energyPJ();
        busy_sum += acc->computeBusyTime(endTick_);
    }
    report.accOccupancy =
        endTick_ ? double(busy_sum) / double(endTick_) : 0.0;
    report.fabricOccupancy = fabric_->occupancy(endTick_);

    for (const Submission &sub : submissions_)
        report.apps.push_back(sub.outcome);
    return report;
}

} // namespace relief
