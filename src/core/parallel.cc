#include "core/parallel.hh"

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/debug.hh"
#include "sim/logging.hh"

namespace relief
{

int
defaultParallelJobs()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? int(hw) : 1;
}

void
parallelFor(std::size_t count, int jobs,
            const std::function<void(std::size_t)> &body)
{
    if (jobs <= 0)
        jobs = defaultParallelJobs();
    std::size_t workers = std::min<std::size_t>(std::size_t(jobs), count);
    if (workers <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            body(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::mutex errorLock;
    std::exception_ptr firstError;
    // Captured on the launching thread; each worker installs them so
    // thread-local debug/log state matches a serial run.
    std::uint32_t flags = debugFlagMask();
    bool inform = informEnabled();

    auto work = [&]() {
        setDebugFlagMask(flags);
        setInformEnabled(inform);
        while (!failed.load(std::memory_order_relaxed)) {
            std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count)
                return;
            try {
                body(i);
            } catch (...) {
                std::lock_guard<std::mutex> guard(errorLock);
                if (!firstError)
                    firstError = std::current_exception();
                failed.store(true, std::memory_order_relaxed);
                return;
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        pool.emplace_back(work);
    for (std::thread &thread : pool)
        thread.join();
    if (firstError)
        std::rethrow_exception(firstError);
}

} // namespace relief
