/**
 * @file
 * Host-parallel experiment execution.
 *
 * Independent simulations — the (mix, policy, seed) points of a bench
 * matrix — share no model state: every Soc owns its Simulator, stats
 * registry, and DAGs, and the few process-wide knobs (log sink, inform
 * toggle, debug flags) are thread-local. parallelFor() exploits that:
 * it fans a loop body out over a small pool of std::threads, seeding
 * each worker with the launching thread's debug-flag mask and inform
 * toggle so behavior matches a serial run. Workers log through the
 * default stderr sink; a custom sink installed on the launching thread
 * is deliberately not shared (it would race).
 *
 * Determinism contract: the body is called exactly once per index and
 * must write its result only to index-owned storage (results[i]).
 * Aggregation done after parallelFor() returns, in index order, is
 * then bit-identical regardless of the job count — the property the
 * determinism tests and `relief_bench --jobs` rely on.
 */

#ifndef RELIEF_CORE_PARALLEL_HH
#define RELIEF_CORE_PARALLEL_HH

#include <cstddef>
#include <functional>

namespace relief
{

/** Worker count used when jobs == 0 (hardware concurrency, >= 1). */
int defaultParallelJobs();

/**
 * Invoke @p body(i) for every i in [0, count), spread across up to
 * @p jobs worker threads (0 = auto, 1 = serial in the calling thread).
 * Indices are claimed atomically, so scheduling is work-stealing-ish
 * but each index runs exactly once. Rethrows the first exception a
 * body raised after all workers have stopped.
 */
void parallelFor(std::size_t count, int jobs,
                 const std::function<void(std::size_t)> &body);

} // namespace relief

#endif // RELIEF_CORE_PARALLEL_HH
