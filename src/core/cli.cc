#include "core/cli.hh"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "kernels/simd/simd.hh"
#include "sim/debug.hh"
#include "sim/logging.hh"

namespace relief
{

PolicyKind
policyFromName(const std::string &name)
{
    for (PolicyKind kind : allPolicies)
        if (name == policyName(kind))
            return kind;
    if (name == policyName(PolicyKind::ReliefHetSched))
        return PolicyKind::ReliefHetSched;
    fatal("unknown policy '", name, "'\n", cliUsage());
}

AccType
accTypeFromSymbol(const std::string &symbol)
{
    for (AccType type : allAccTypes)
        if (symbol == accTypeSymbol(type))
            return type;
    fatal("unknown accelerator symbol '", symbol, "' (use I, G, C, EM, "
          "CNM, HNM, or ET)");
}

std::string
cliUsage()
{
    return "usage: relief_sim [--mix SYMBOLS] [--policy NAME] "
           "[--continuous] [--limit-ms X] [--fabric bus|xbar|ring] "
           "[--instances EM=2,C=2] [--banked-memory] "
           "[--mem-efficiency X] [--bw-predictor KIND] "
           "[--dm-predictor KIND] [--spm-partitions N] "
           "[--no-feasibility] [--no-forwarding] [--stream-forwarding] "
           "[--dma-burst N] [--submit-latency-us X] [--functional] "
           "[--seed N] [--kernel-isa NAME] [--debug-flags LIST] "
           "[--stats-json FILE] [--latency-breakdown] "
           "[--pressure-tracks] [--config FILE]";
}

namespace
{

/** Apply "EM=2,C=1" style instance specs. */
void
parseInstances(const std::string &spec, SocConfig &config)
{
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string item = spec.substr(pos, comma - pos);
        std::size_t eq = item.find('=');
        if (eq == std::string::npos)
            fatal("bad --instances item '", item, "' (want SYMBOL=N)");
        AccType type = accTypeFromSymbol(item.substr(0, eq));
        int count = std::atoi(item.c_str() + eq + 1);
        if (count < 1)
            fatal("bad instance count in '", item, "'");
        config.instances[accIndex(type)] = count;
        pos = comma + 1;
    }
}

} // namespace

std::vector<std::string>
readConfigFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot read config file '", path, "'");
    std::vector<std::string> tokens;
    std::string line;
    while (std::getline(in, line)) {
        std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        std::istringstream words(line);
        std::string word;
        while (words >> word)
            tokens.push_back(word);
    }
    return tokens;
}

ExperimentConfig
parseCliOptions(const std::vector<std::string> &raw_args)
{
    // Splice --config files in place (one level; nested --config in a
    // file is rejected to keep inclusion loops impossible).
    std::vector<std::string> args;
    for (std::size_t i = 0; i < raw_args.size(); ++i) {
        if (raw_args[i] == "--config") {
            if (i + 1 >= raw_args.size())
                fatal("--config needs a file path\n", cliUsage());
            auto file_args = readConfigFile(raw_args[++i]);
            for (const std::string &token : file_args) {
                if (token == "--config")
                    fatal("nested --config is not supported");
                args.push_back(token);
            }
        } else {
            args.push_back(raw_args[i]);
        }
    }

    ExperimentConfig config;
    auto need_value = [&](std::size_t i) -> const std::string & {
        if (i + 1 >= args.size())
            fatal("flag ", args[i], " needs a value\n", cliUsage());
        return args[i + 1];
    };

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "--mix") {
            config.mix = need_value(i);
            parseMix(config.mix); // validate
            ++i;
        } else if (arg == "--policy") {
            config.soc.policy = policyFromName(need_value(i));
            ++i;
        } else if (arg == "--continuous") {
            config.continuous = true;
        } else if (arg == "--limit-ms") {
            double ms = std::atof(need_value(i).c_str());
            if (ms <= 0.0)
                fatal("--limit-ms needs a positive value");
            config.timeLimit = fromMs(ms);
            ++i;
        } else if (arg == "--fabric") {
            const std::string &value = need_value(i);
            if (value == "bus")
                config.soc.fabric = FabricKind::Bus;
            else if (value == "xbar")
                config.soc.fabric = FabricKind::Crossbar;
            else if (value == "ring")
                config.soc.fabric = FabricKind::Ring;
            else
                fatal("unknown fabric '", value,
                      "' (bus, xbar, or ring)");
            ++i;
        } else if (arg == "--instances") {
            parseInstances(need_value(i), config.soc);
            ++i;
        } else if (arg == "--banked-memory") {
            config.soc.bankedMemory = true;
        } else if (arg == "--mem-efficiency") {
            double eff = std::atof(need_value(i).c_str());
            if (eff <= 0.0 || eff > 1.0)
                fatal("--mem-efficiency must be in (0, 1]");
            config.soc.mem.efficiency = eff;
            ++i;
        } else if (arg == "--bw-predictor") {
            const std::string &value = need_value(i);
            if (value == "max")
                config.soc.bwPredictor = BwPredictorKind::Max;
            else if (value == "last")
                config.soc.bwPredictor = BwPredictorKind::Last;
            else if (value == "average")
                config.soc.bwPredictor = BwPredictorKind::Average;
            else if (value == "ewma")
                config.soc.bwPredictor = BwPredictorKind::Ewma;
            else
                fatal("unknown bandwidth predictor '", value, "'");
            ++i;
        } else if (arg == "--dm-predictor") {
            const std::string &value = need_value(i);
            if (value == "max")
                config.soc.dmPredictor = DmPredictorKind::Max;
            else if (value == "graph")
                config.soc.dmPredictor = DmPredictorKind::Graph;
            else
                fatal("unknown data-movement predictor '", value, "'");
            ++i;
        } else if (arg == "--submit-latency-us") {
            double us = std::atof(need_value(i).c_str());
            if (us < 0.0)
                fatal("--submit-latency-us must be non-negative");
            config.soc.manager.submitLatency = fromUs(us);
            ++i;
        } else if (arg == "--dma-burst") {
            long n = std::atol(need_value(i).c_str());
            if (n < 0)
                fatal("--dma-burst needs a non-negative byte count");
            config.soc.dma.burstBytes = std::uint64_t(n);
            ++i;
        } else if (arg == "--spm-partitions") {
            int n = std::atoi(need_value(i).c_str());
            if (n < 1)
                fatal("--spm-partitions needs a positive count");
            config.soc.spmPartitions = n;
            ++i;
        } else if (arg == "--no-feasibility") {
            config.soc.reliefFeasibilityCheck = false;
        } else if (arg == "--no-forwarding") {
            config.soc.manager.forwardingEnabled = false;
        } else if (arg == "--stream-forwarding") {
            config.soc.manager.forwardMechanism =
                ForwardMechanism::StreamBuffer;
        } else if (arg == "--functional") {
            config.app.functional = true;
        } else if (arg == "--seed") {
            config.app.seed = std::uint32_t(
                std::strtoul(need_value(i).c_str(), nullptr, 10));
            ++i;
        } else if (arg == "--kernel-isa") {
            // Applied immediately, like --debug-flags: the kernel ISA
            // is process-global state, not per-experiment config.
            setKernelIsa(kernelIsaFromName(need_value(i)));
            ++i;
        } else if (arg == "--debug-flags") {
            config.debugFlags = need_value(i);
            setDebugFlags(config.debugFlags);
            ++i;
        } else if (arg == "--stats-json") {
            config.statsJsonPath = need_value(i);
            ++i;
        } else if (arg == "--latency-breakdown") {
            config.latencyBreakdown = true;
        } else if (arg == "--pressure-tracks") {
            config.soc.pressureTracks = true;
        } else {
            fatal("unknown flag '", arg, "'\n", cliUsage());
        }
    }
    return config;
}

} // namespace relief
