/**
 * @file
 * Deterministic pseudo-random number generation for workload drivers.
 *
 * The serving layer (src/serve) generates stochastic request arrivals
 * that must be bit-identical across platforms, standard libraries, and
 * worker-thread counts. std::mt19937 is portable but the
 * std::*_distribution adapters are not (implementations may draw a
 * different number of variates), so everything here is self-contained:
 *  - SplitMix64: the canonical 64-bit seed expander (Steele et al.),
 *  - Xoshiro256pp: xoshiro256++ 1.0 (Blackman & Vigna), seeded through
 *    SplitMix64, with explicit uniform / exponential / bounded-integer
 *    / weighted-pick helpers whose draw counts are fixed by this
 *    header, not by the standard library.
 */

#ifndef RELIEF_CORE_RNG_HH
#define RELIEF_CORE_RNG_HH

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace relief
{

/** SplitMix64: expands one 64-bit seed into a stream of well-mixed
 *  words. Used to seed the larger generators and to derive independent
 *  per-run seeds from a (base seed, index) pair. */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

  private:
    std::uint64_t state_;
};

/** Derive an independent sub-seed from a base seed and an index (one
 *  arrival schedule per sweep point, one jitter stream per run, ...).
 *  Pure function of its inputs, so parallel runners can hand every
 *  matrix point its own stream without coordinating. */
inline std::uint64_t
deriveSeed(std::uint64_t base, std::uint64_t index)
{
    // Mix the base on its own before folding in the index: combining
    // the raw words (base ^ (C + index)) makes adjacent (base, index)
    // pairs collide, e.g. (1, 1) and (2, 0).
    SplitMix64 mix(base);
    SplitMix64 fold(mix.next() ^ index);
    fold.next();
    return fold.next();
}

/** xoshiro256++ 1.0: fast, 256-bit state, passes BigCrush. */
class Xoshiro256pp
{
  public:
    explicit Xoshiro256pp(std::uint64_t seed)
    {
        SplitMix64 mix(seed);
        for (auto &word : state_)
            word = mix.next();
    }

    std::uint64_t
    next()
    {
        const std::uint64_t result =
            rotl(state_[0] + state_[3], 23) + state_[0];
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1), 53-bit resolution. */
    double
    uniform()
    {
        return double(next() >> 11) * 0x1.0p-53;
    }

    /** Exponential variate with the given @p mean (> 0). Never returns
     *  infinity: uniform() < 1 keeps the log argument positive. */
    double
    exponential(double mean)
    {
        return -mean * std::log1p(-uniform());
    }

    /** Uniform integer in [0, bound) via rejection sampling (unbiased;
     *  bound 0 returns 0). */
    std::uint64_t
    uniformInt(std::uint64_t bound)
    {
        if (bound == 0)
            return 0;
        // Reject the tail of the 2^64 range that does not divide
        // evenly; the loop expects < 2 iterations for any bound.
        const std::uint64_t limit = -bound % bound; // 2^64 mod bound
        std::uint64_t draw = next();
        while (draw < limit)
            draw = next();
        return draw % bound;
    }

    /**
     * Pick an index in [0, weights.size()) with probability
     * proportional to its (non-negative) weight. All-zero or empty
     * weights fall back to index 0. One uniform() draw per call.
     */
    std::size_t
    pickWeighted(const std::vector<double> &weights)
    {
        double total = 0.0;
        for (double w : weights)
            total += w > 0.0 ? w : 0.0;
        if (total <= 0.0)
            return 0;
        double point = uniform() * total;
        for (std::size_t i = 0; i < weights.size(); ++i) {
            double w = weights[i] > 0.0 ? weights[i] : 0.0;
            if (point < w)
                return i;
            point -= w;
        }
        return weights.size() - 1; // guard against rounding at the top
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4] = {};
};

} // namespace relief

#endif // RELIEF_CORE_RNG_HH
