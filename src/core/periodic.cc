#include "core/periodic.hh"

namespace relief
{

std::vector<DagPtr>
submitPeriodic(Soc &soc, const PeriodicConfig &config)
{
    std::vector<DagPtr> dags;
    AppConfig app_config = config.appConfig;
    for (int i = 0; i < config.count; ++i) {
        app_config.seed = config.appConfig.seed + std::uint32_t(i);
        DagPtr dag = buildApp(config.app, app_config);
        soc.submit(dag, config.offset + Tick(i) * config.period);
        dags.push_back(std::move(dag));
    }
    return dags;
}

std::map<std::string, AppOutcome>
aggregateApps(const MetricsReport &report)
{
    std::map<std::string, AppOutcome> out;
    for (const AppOutcome &app : report.apps) {
        auto [it, inserted] = out.emplace(app.name, app);
        if (inserted)
            continue;
        AppOutcome &agg = it->second;
        agg.iterations += app.iterations;
        agg.deadlinesMet += app.deadlinesMet;
        agg.slowdowns.insert(agg.slowdowns.end(), app.slowdowns.begin(),
                             app.slowdowns.end());
    }
    return out;
}

} // namespace relief
