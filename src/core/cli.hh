/**
 * @file
 * Command-line configuration for the `relief_sim` driver (and anything
 * else that wants string-driven setup). Parses flags into an
 * ExperimentConfig; unknown flags raise FatalError with a usage hint.
 *
 * Supported flags:
 *   --mix SYMBOLS          applications, e.g. CDL (default C)
 *   --policy NAME          FCFS|GEDF-D|GEDF-N|LL|LAX|HetSched|
 *                          RELIEF-LAX|RELIEF|RELIEF-HS (default RELIEF)
 *   --continuous           loop applications until the time limit
 *   --limit-ms X           simulation cap in ms (default 50)
 *   --fabric KIND          bus | xbar | ring
 *   --instances SPEC       per-type counts, e.g. EM=2,C=2 (symbols from
 *                          Table I: I,G,C,EM,CNM,HNM,ET)
 *   --banked-memory        bank-aware DRAM model
 *   --mem-efficiency X     flat-model streaming efficiency (0..1]
 *   --bw-predictor KIND    max|last|average|ewma
 *   --dm-predictor KIND    max|graph
 *   --spm-partitions N     output partitions per scratchpad
 *   --no-feasibility       disable RELIEF's is_feasible throttle
 *   --no-forwarding        disable the forwarding hardware
 *   --stream-forwarding    AXI-stream FIFOs instead of SPM-to-SPM DMA
 *   --functional           attach functional payloads
 *   --dma-burst N          burst-interleaved DMA (0 = whole buffer)
 *   --submit-latency-us X  host command-queue submission cost
 *   --seed N               input/weight generator seed
 *   --kernel-isa NAME      force the SIMD kernel backend: scalar |
 *                          sse4.2 | avx2 | neon (default: widest the
 *                          CPU supports; see kernels/simd/simd.hh)
 *   --debug-flags LIST     enable debug categories, e.g. Sched,Dma
 *                          (Sched|Dma|Mem|Fabric|Stats|Event; see
 *                          sim/debug.hh)
 *   --stats-json FILE      write the stat registry as JSON after the run
 *   --latency-breakdown    print the per-DAG critical-path table
 *   --config FILE          splice flags from a file
 */

#ifndef RELIEF_CORE_CLI_HH
#define RELIEF_CORE_CLI_HH

#include <string>
#include <vector>

#include "core/experiment.hh"

namespace relief
{

/**
 * Parse @p args (no program name) into an experiment configuration.
 * `--config FILE` splices in flags read from FILE: whitespace-
 * separated tokens, one or more per line, '#' starts a comment.
 */
ExperimentConfig parseCliOptions(const std::vector<std::string> &args);

/** Read flags from a config file (see parseCliOptions). */
std::vector<std::string> readConfigFile(const std::string &path);

/** Resolve a policy name as printed by policyName(). */
PolicyKind policyFromName(const std::string &name);

/** Resolve an accelerator-type symbol (Table I: "EM", "C", ...). */
AccType accTypeFromSymbol(const std::string &symbol);

/** One-line usage summary for error messages. */
std::string cliUsage();

} // namespace relief

#endif // RELIEF_CORE_CLI_HH
