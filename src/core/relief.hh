/**
 * @file
 * Umbrella header: include this to get the whole public RELIEF API.
 */

#ifndef RELIEF_CORE_RELIEF_HH
#define RELIEF_CORE_RELIEF_HH

#include "acc/acc_types.hh"
#include "acc/accelerator.hh"
#include "acc/compute_model.hh"
#include "core/cli.hh"
#include "core/experiment.hh"
#include "core/parallel.hh"
#include "core/periodic.hh"
#include "core/soc.hh"
#include "dag/apps/apps.hh"
#include "dag/apps/extra_apps.hh"
#include "dag/dag.hh"
#include "dag/node.hh"
#include "kernels/elemwise.hh"
#include "kernels/filters.hh"
#include "kernels/image.hh"
#include "kernels/rnn.hh"
#include "kernels/vision.hh"
#include "manager/hardware_manager.hh"
#include "predict/bandwidth_predictor.hh"
#include "predict/runtime_predictor.hh"
#include "sched/baseline_policies.hh"
#include "sched/policy.hh"
#include "sched/relief.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"
#include "sim/ticks.hh"
#include "stats/stats.hh"
#include "stats/table.hh"
#include "workload/scenario.hh"

#endif // RELIEF_CORE_RELIEF_HH
