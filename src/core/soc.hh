/**
 * @file
 * The public SoC facade: one object that wires up the simulator, main
 * memory, interconnect, accelerators, DMA engines, predictor, policy,
 * and hardware manager per the paper's Table VI platform, and exposes
 * submit/run/report.
 *
 * Typical use (see examples/quickstart.cpp):
 *
 *   SocConfig config;
 *   config.policy = PolicyKind::Relief;
 *   Soc soc(config);
 *   auto dag = buildApp(AppId::Canny);
 *   soc.submit(dag);
 *   soc.run();
 *   MetricsReport report = soc.report();
 */

#ifndef RELIEF_CORE_SOC_HH
#define RELIEF_CORE_SOC_HH

#include <array>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "acc/accelerator.hh"
#include "interconnect/bus.hh"
#include "interconnect/crossbar.hh"
#include "interconnect/ring.hh"
#include "manager/hardware_manager.hh"
#include "mem/banked_memory.hh"
#include "mem/main_memory.hh"
#include "mem/pressure_ledger.hh"
#include "sched/policy.hh"
#include "sim/simulator.hh"
#include "stats/registry.hh"
#include "trace/interval_sampler.hh"
#include "trace/trace.hh"
#include "workload/scenario.hh"

namespace relief
{

/** Interconnect topology (paper Section V-H). */
enum class FabricKind
{
    Bus,
    Crossbar,
    Ring,
};

/** Whole-platform configuration (defaults follow Table VI). */
struct SocConfig
{
    PolicyKind policy = PolicyKind::Relief;
    FabricKind fabric = FabricKind::Bus;
    /** Accelerator instances per type (paper: one of each). */
    std::array<int, std::size_t(numAccTypes)> instances = {1, 1, 1, 1,
                                                           1, 1, 1};
    MainMemoryConfig mem;
    BusConfig bus;
    CrossbarConfig crossbar;
    RingConfig ring;
    DmaConfig dma;
    ManagerConfig manager;
    BwPredictorKind bwPredictor = BwPredictorKind::Max;
    DmPredictorKind dmPredictor = DmPredictorKind::Max;
    /** Output partitions per scratchpad (Table IV: up to 3). */
    int spmPartitions = 3;
    /** Use the bank-aware DRAM model instead of the flat
     *  efficiency-factor model. */
    bool bankedMemory = false;
    BankedMemoryConfig banked; ///< Knobs when bankedMemory is set.
    /** Ablation: disable RELIEF's is_feasible() throttle (promotions
     *  become greedy). Only meaningful for the RELIEF-family. */
    bool reliefFeasibilityCheck = true;
    /**
     * QoS classes registered with the pressure ledger after the
     * implicit class 0 ("default"). The serving layer fills this from
     * its class table so per-class pressure rollups line up with the
     * SLO report; batch runs leave it empty.
     */
    std::vector<std::string> qosClassNames;
    /**
     * Emit per-bank/per-channel utilization and queue-depth counter
     * tracks through the IntervalSampler when tracing is enabled.
     * Off by default: disabled tracks register no probes and cost
     * nothing.
     */
    bool pressureTracks = false;
};

/** Per-application outcome across all of its submissions in a run. */
struct AppOutcome
{
    std::string name;
    char symbol = '?';
    Tick relDeadline = 0;
    int iterations = 0;    ///< Completed DAG executions.
    int deadlinesMet = 0;  ///< Completed executions within deadline.
    std::vector<double> slowdowns; ///< runtime / deadline per run.

    /** Geometric-mean slowdown; infinity when starved (no finish). */
    double meanSlowdown() const;
    double maxSlowdown() const;
    bool starved() const { return iterations == 0; }
};

/** Everything the benches/figures need from one simulation. */
struct MetricsReport
{
    RunMetrics run;             ///< Manager counters.
    Tick execTime = 0;          ///< Submission of first to end of run.
    std::uint64_t dramBytes = 0;
    std::uint64_t spmForwardBytes = 0; ///< SPM-to-SPM traffic.
    std::uint64_t spmBytes = 0; ///< All scratchpad traffic.
    double dramEnergyPJ = 0.0;
    double spmEnergyPJ = 0.0;
    double accOccupancy = 0.0;    ///< Fig. 7 metric.
    double fabricOccupancy = 0.0; ///< Fig. 13 metric.
    std::vector<AppOutcome> apps;

    /** (forwards + colocations) / consumed edges — Fig. 4 metric. */
    double forwardFraction() const
    {
        return run.forwardFraction(run.edgesConsumed);
    }

    /** DRAM traffic over the all-DRAM baseline — Fig. 5 lower bars. */
    double dramTrafficFraction() const;

    /** SPM-to-SPM traffic over the all-DRAM baseline — Fig. 5 upper
     *  bars. */
    double spmTrafficFraction() const;
};

class Soc
{
  public:
    explicit Soc(const SocConfig &config = {});
    ~Soc();

    Soc(const Soc &) = delete;
    Soc &operator=(const Soc &) = delete;

    Simulator &sim() { return sim_; }
    HardwareManager &manager() { return *manager_; }
    MainMemory &dram() { return *dram_; }
    Interconnect &fabric() { return *fabric_; }
    std::vector<Accelerator *> accelerators();
    const SocConfig &config() const { return config_; }

    /**
     * Submit @p dag at tick @p when (keeps it alive). With
     * @p continuous set, the DAG resubmits itself on completion until
     * the run limit.
     */
    void submit(DagPtr dag, Tick when = 0, bool continuous = false);

    /** Run to completion or @p limit; returns the final tick. */
    Tick run(Tick limit = maxTick);

    /**
     * Start recording a schedule trace (see src/trace). Also arms an
     * IntervalSampler that emits counter tracks (ready-queue depth,
     * DRAM bandwidth utilization, outstanding DMA bytes, accelerator
     * occupancy) every @p sample_period ticks; pass 0 to record spans
     * only.
     */
    TraceRecorder &enableTracing(Tick sample_period = fromUs(10.0));

    /** The active trace recorder, or nullptr. */
    TraceRecorder *trace() { return trace_.get(); }

    /** The counter-track sampler, or nullptr when tracing is off. */
    IntervalSampler *sampler() { return sampler_.get(); }

    /** Every registered model stat (see stats/registry.hh). */
    const StatRegistry &stats() const { return stats_; }

    /** Mutable registry access for layers above the facade (the
     *  serving driver registers its "serve.*" stats here so one dump
     *  covers the whole system). */
    StatRegistry &stats() { return stats_; }

    /** Collect the metrics of the run so far. */
    MetricsReport report() const;

    /**
     * Dump every model counter in gem5-style `name value # comment`
     * lines: simulator, DRAM, per-accelerator compute/SPM/DMA,
     * interconnect, manager, and per-application outcomes.
     */
    void dumpStats(std::ostream &os) const;

    /**
     * Per-DAG critical-path latency attribution table (CLI:
     * `--latency-breakdown`): one row per finished DAG execution, the
     * six buckets in microseconds plus their total — which equals the
     * measured end-to-end latency (manager/critical_path.hh).
     */
    void printLatencyBreakdown(std::ostream &os) const;

    /**
     * Stable-schema JSON stats document ("relief-stats-v1"): the
     * registry's stats object plus an "apps" array of per-application
     * outcomes and a "pressure" attribution block. Written by
     * `relief_sim --stats-json FILE`.
     */
    void writeStatsJson(std::ostream &os) const;

    /** The memory-pressure attribution ledger (always recording). */
    PressureLedger &pressureLedger() { return *ledger_; }
    const PressureLedger &pressureLedger() const { return *ledger_; }

    /**
     * Standalone "relief-pressure-v1" artifact: per-resource top-K
     * contender tables, delay split, per-QoS rollups. Written by
     * `relief_sim --pressure-report FILE`.
     */
    void writePressureJson(std::ostream &os, int top_k = 8) const;

    /** Byte totals embedded in the pressure document. */
    PressureLedger::Summary pressureSummary() const;

  private:
    void onDagComplete(Dag *dag);
    void registerStats();
    void addSamplerProbes();

    SocConfig config_;
    Simulator sim_;
    std::unique_ptr<MainMemory> dram_;
    std::unique_ptr<Interconnect> fabric_;
    PortId dramPort_ = -1;
    std::vector<std::unique_ptr<Accelerator>> accs_;
    std::unique_ptr<HardwareManager> manager_;
    std::unique_ptr<PressureLedger> ledger_;

    struct Submission
    {
        DagPtr dag;
        bool continuous = false;
        AppOutcome outcome;
    };
    std::vector<Submission> submissions_;
    std::unique_ptr<TraceRecorder> trace_;
    std::unique_ptr<IntervalSampler> sampler_;
    StatRegistry stats_;
    Tick runLimit_ = maxTick;
    Tick endTick_ = 0;
};

} // namespace relief

#endif // RELIEF_CORE_SOC_HH
