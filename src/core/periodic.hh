/**
 * @file
 * Periodic workload sources.
 *
 * The paper's applications are frame/request driven (60 FPS camera
 * streams, speech-recognition requests). A PeriodicSource submits a
 * fresh DAG instance of one application every period — the camera
 * model the vision pipeline example uses — and the aggregation helper
 * folds the resulting per-instance outcomes back into one per-app
 * summary (frames completed, deadline misses, slowdown distribution).
 */

#ifndef RELIEF_CORE_PERIODIC_HH
#define RELIEF_CORE_PERIODIC_HH

#include <map>
#include <string>
#include <vector>

#include "core/soc.hh"
#include "dag/apps/apps.hh"

namespace relief
{

/** One periodic stream of DAG instances. */
struct PeriodicConfig
{
    AppId app = AppId::Canny;
    Tick period = fromMs(1000.0 / 60.0); ///< Frame period (60 FPS).
    int count = 3;                       ///< Instances to submit.
    Tick offset = 0;                     ///< First arrival.
    AppConfig appConfig;                 ///< Builder knobs; the seed is
                                         ///< advanced per instance.
};

/**
 * Build and submit @p config.count instances of the application, one
 * per period. Returns the DAG handles (kept alive by the Soc as well).
 */
std::vector<DagPtr> submitPeriodic(Soc &soc, const PeriodicConfig &config);

/** Fold per-instance outcomes into one AppOutcome per application
 *  name (iterations/deadlines/slowdowns concatenated). */
std::map<std::string, AppOutcome>
aggregateApps(const MetricsReport &report);

} // namespace relief

#endif // RELIEF_CORE_PERIODIC_HH
