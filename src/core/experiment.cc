#include "core/experiment.hh"

#include "kernels/scratch.hh"

namespace relief
{

MetricsReport
runExperiment(const ExperimentConfig &config)
{
    // Fresh ids per experiment: results become a pure function of the
    // config, identical whether runs execute serially or on a
    // parallel runner's workers (see dag.hh resetNodeIds).
    resetNodeIds();
    resetKernelScratch(); // likewise for the kernels.scratch_* stats
    Soc soc(config.soc);
    for (AppId app : parseMix(config.mix)) {
        DagPtr dag = buildApp(app, config.app);
        soc.submit(dag, 0, config.continuous);
    }
    soc.run(config.timeLimit);
    return soc.report();
}

MetricsReport
runMixPolicy(const std::string &mix, PolicyKind policy, bool continuous)
{
    ExperimentConfig config;
    config.soc.policy = policy;
    config.mix = mix;
    config.continuous = continuous;
    return runExperiment(config);
}

} // namespace relief
