/**
 * @file
 * One-call experiment runner used by the benches and examples: build a
 * platform, submit an application mix, run (with the paper's 50 ms
 * cap), and report metrics.
 */

#ifndef RELIEF_CORE_EXPERIMENT_HH
#define RELIEF_CORE_EXPERIMENT_HH

#include <string>

#include "core/soc.hh"
#include "dag/apps/apps.hh"
#include "workload/scenario.hh"

namespace relief
{

struct ExperimentConfig
{
    SocConfig soc;
    std::string mix = "C";      ///< Application symbols, e.g. "CDL".
    bool continuous = false;    ///< Loop each application (Fig. 10).
    Tick timeLimit = continuousWindow; ///< Paper's simulation cap.
    AppConfig app;              ///< DAG-builder knobs.
    std::string debugFlags;    ///< --debug-flags list (already applied).
    std::string statsJsonPath; ///< --stats-json target ("" = off).
    /** Print the per-DAG critical-path attribution table after the run
     *  (--latency-breakdown; see Soc::printLatencyBreakdown). */
    bool latencyBreakdown = false;
};

/** Run one simulation and return its metrics. */
MetricsReport runExperiment(const ExperimentConfig &config);

/** Shorthand: run @p mix under @p policy at the given contention mode. */
MetricsReport runMixPolicy(const std::string &mix, PolicyKind policy,
                           bool continuous = false);

} // namespace relief

#endif // RELIEF_CORE_EXPERIMENT_HH
