/**
 * @file
 * Contention scenarios (paper Section IV-C).
 *
 * Low contention runs each application alone; medium runs every pair;
 * high runs every triple; continuous loops every triple's applications
 * back-to-back for a fixed window (50 ms) so contention persists for
 * each application's entire execution.
 */

#ifndef RELIEF_WORKLOAD_SCENARIO_HH
#define RELIEF_WORKLOAD_SCENARIO_HH

#include <string>
#include <vector>

#include "dag/apps/apps.hh"
#include "sim/ticks.hh"

namespace relief
{

/** System-load level. */
enum class Contention
{
    Low,        ///< Single application.
    Medium,     ///< All pairs.
    High,       ///< All triples.
    Continuous, ///< All triples, looped for the simulation window.
};

const char *contentionName(Contention level);

/** Mix labels for @p level in the paper's order, e.g. {"CD", "CG", ...}
 *  for Medium. */
std::vector<std::string> mixesFor(Contention level);

/** The paper's simulation window for continuous contention. */
constexpr Tick continuousWindow = fromMs(50.0);

} // namespace relief

#endif // RELIEF_WORKLOAD_SCENARIO_HH
