#include "workload/scenario.hh"

namespace relief
{

const char *
contentionName(Contention level)
{
    switch (level) {
      case Contention::Low:
        return "low";
      case Contention::Medium:
        return "medium";
      case Contention::High:
        return "high";
      case Contention::Continuous:
        return "continuous";
    }
    return "unknown";
}

std::vector<std::string>
mixesFor(Contention level)
{
    const std::string symbols = "CDGHL";
    std::vector<std::string> out;
    switch (level) {
      case Contention::Low:
        for (char a : symbols)
            out.push_back(std::string(1, a));
        break;
      case Contention::Medium:
        for (std::size_t i = 0; i < symbols.size(); ++i)
            for (std::size_t j = i + 1; j < symbols.size(); ++j)
                out.push_back({symbols[i], symbols[j]});
        break;
      case Contention::High:
      case Contention::Continuous:
        for (std::size_t i = 0; i < symbols.size(); ++i)
            for (std::size_t j = i + 1; j < symbols.size(); ++j)
                for (std::size_t k = j + 1; k < symbols.size(); ++k)
                    out.push_back({symbols[i], symbols[j], symbols[k]});
        break;
    }
    return out;
}

} // namespace relief
