#include "sim/simulator.hh"

namespace relief
{

Tick
Simulator::run(Tick limit)
{
    stopRequested_ = false;
    while (!stopRequested_ && !events_.empty() &&
           events_.nextTick() <= limit) {
        events_.runOne();
    }
    return now();
}

} // namespace relief
