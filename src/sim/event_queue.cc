#include "sim/event_queue.hh"

#include <utility>

#include "sim/logging.hh"

namespace relief
{

EventHandle
EventQueue::schedule(Tick when, std::function<void()> action,
                     std::string label)
{
    if (when < curTick_) {
        panic("scheduling event '", label, "' at tick ", when,
              " in the past (now ", curTick_, ")");
    }
    auto state = std::make_shared<EventHandle::State>();
    state->action = std::move(action);
    state->label = std::move(label);
    heap_.push(Entry{when, nextSeq_++, state});
    ++numScheduled_;
    return EventHandle(state);
}

void
EventQueue::skipCancelled() const
{
    while (!heap_.empty() && heap_.top().state->cancelled)
        heap_.pop();
}

bool
EventQueue::empty() const
{
    skipCancelled();
    return heap_.empty();
}

Tick
EventQueue::nextTick() const
{
    skipCancelled();
    return heap_.empty() ? maxTick : heap_.top().when;
}

bool
EventQueue::runOne()
{
    skipCancelled();
    if (heap_.empty())
        return false;

    Entry entry = heap_.top();
    heap_.pop();
    RELIEF_ASSERT(entry.when >= curTick_, "event time went backwards");
    curTick_ = entry.when;
    entry.state->fired = true;
    ++numExecuted_;
    entry.state->action();
    return true;
}

} // namespace relief
