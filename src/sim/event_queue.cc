#include "sim/event_queue.hh"

#include <algorithm>
#include <chrono>

namespace relief
{

void
EventQueue::pastEventPanic(Tick when, const char *label) const
{
    panic("scheduling event '", label, "' at tick ", when,
          " in the past (now ", curTick_, ")");
}

std::uint32_t
EventQueue::allocSlot()
{
    if (freeHead_ == noSlot) {
        // Grow the slab by one chunk; slot addresses never move, so
        // engaged callables are safe across growth. Thread the new
        // slots onto the free list highest-index first so allocation
        // order within the chunk is ascending (deterministic).
        auto base = std::uint32_t(chunks_.size() * slotsPerChunk);
        chunks_.emplace_back(new Slot[slotsPerChunk]);
        for (std::uint32_t i = slotsPerChunk; i-- > 0;) {
            Slot &slot = slotRef(base + i);
            slot.nextFree = freeHead_;
            freeHead_ = base + i;
        }
    }
    std::uint32_t id = freeHead_;
    Slot &slot = slotRef(id);
    freeHead_ = slot.nextFree;
    slot.nextFree = noSlot;
    return id;
}

void
EventQueue::freeSlot(std::uint32_t id) const
{
    Slot &slot = slotRef(id);
    // Bumping the generation here (and again before firing) makes any
    // outstanding handle to this lifetime stale, so a recycled slot
    // can never be cancelled through an old handle.
    ++slot.gen;
    slot.cancelled = false;
    slot.label = "";
    if (!slot.dynLabel.empty())
        slot.dynLabel.clear(); // keeps capacity: no churn on reuse
    slot.action.reset();
    slot.nextFree = freeHead_;
    freeHead_ = id;
}

void
EventQueue::pushEntry(Tick when, std::uint32_t id)
{
    heap_.push_back(Entry{when, nextSeq_++, id});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    ++numScheduled_;
}

bool
EventQueue::slotPending(std::uint32_t id, std::uint32_t gen) const
{
    const Slot &slot = slotRef(id);
    return slot.gen == gen && !slot.cancelled;
}

void
EventQueue::cancelSlot(std::uint32_t id, std::uint32_t gen)
{
    Slot &slot = slotRef(id);
    if (slot.gen != gen || slot.cancelled)
        return;
    slot.cancelled = true;
    // Release the captured resources eagerly; the heap entry itself is
    // dropped lazily (skipCancelled) or in bulk (compact).
    slot.action.reset();
    if (!slot.dynLabel.empty())
        slot.dynLabel.clear();
    ++cancelledInHeap_;
    maybeCompact();
}

void
EventQueue::maybeCompact()
{
    if (cancelledInHeap_ < compactionMinimum_ ||
        cancelledInHeap_ * 2 < heap_.size())
        return;
    compact();
}

void
EventQueue::compact()
{
    std::size_t kept = 0;
    for (const Entry &entry : heap_) {
        if (slotRef(entry.slot).cancelled) {
            ++numCancelled_;
            freeSlot(entry.slot);
        } else {
            heap_[kept++] = entry;
        }
    }
    heap_.resize(kept);
    std::make_heap(heap_.begin(), heap_.end(), Later{});
    cancelledInHeap_ = 0;
    ++numCompactions_;
}

void
EventQueue::skipCancelled() const
{
    while (!heap_.empty() && slotRef(heap_.front().slot).cancelled) {
        std::pop_heap(heap_.begin(), heap_.end(), Later{});
        std::uint32_t id = heap_.back().slot;
        heap_.pop_back();
        freeSlot(id);
        ++numCancelled_;
        --cancelledInHeap_;
    }
}

bool
EventQueue::empty() const
{
    skipCancelled();
    return heap_.empty();
}

Tick
EventQueue::nextTick() const
{
    skipCancelled();
    return heap_.empty() ? maxTick : heap_.front().when;
}

bool
EventQueue::runOne()
{
    skipCancelled();
    if (heap_.empty())
        return false;

    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Entry entry = heap_.back();
    heap_.pop_back();
    Slot &slot = slotRef(entry.slot);
    RELIEF_ASSERT(entry.when >= curTick_, "event time went backwards");
    curTick_ = entry.when;
    // Invalidate handles before invoking: the event counts as fired,
    // and a cancel() from inside its own action is a no-op instead of
    // destroying the callable mid-execution.
    ++slot.gen;
    ++numExecuted_;
    if (labelsEnabled()) {
        const char *what = !slot.dynLabel.empty() ? slot.dynLabel.c_str()
                           : *slot.label          ? slot.label
                                                  : "(unlabeled)";
        debugPrint(DebugFlag::Event, curTick_, "event", what);
    }
    if (hostProfEnabled()) {
        // Timed dispatch: the span is opened before invoke so nested
        // HostProfScopes inside the action get exclusive time, and
        // closed after the slot is recycled so pop/free overhead is
        // attributed too (plus gap charging in hostProfEnter for the
        // inter-event stretch). Everything rides behind the single
        // hostProfEnabled() branch above — profiling off costs one
        // predicted-not-taken test, no clock reads.
        const auto cat = static_cast<HostCat>(slot.cat);
        const std::uint64_t t0 = hostProfEnter(cat);
        slot.action.invoke();
        slot.action.reset();
        freeSlot(entry.slot);
        if (dispatchSpinNs_ != 0)
            spinDispatch();
        hostProfExitEvent(cat, t0);
    } else {
        slot.action.invoke();
        slot.action.reset();
        freeSlot(entry.slot);
        if (dispatchSpinNs_ != 0)
            spinDispatch();
    }
    return true;
}

void
EventQueue::spinDispatch() const
{
    // Deliberately burns host time (CI slowdown injection); steady
    // clock so the waste is honest wall time, not simulated.
    const auto start = std::chrono::steady_clock::now();
    const auto until = start + std::chrono::nanoseconds(dispatchSpinNs_);
    while (std::chrono::steady_clock::now() < until) {
        // spin
    }
}

} // namespace relief
