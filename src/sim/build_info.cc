#include "sim/build_info.hh"

#include <ostream>
#include <string>

// CMake supplies these; stray compiles (e.g. tooling) fall back so
// the artifact still carries a well-formed build_info object.
#ifndef RELIEF_GIT_SHA
#define RELIEF_GIT_SHA "unknown"
#endif
#ifndef RELIEF_COMPILER_ID
#define RELIEF_COMPILER_ID "unknown"
#endif
#ifndef RELIEF_COMPILER_VERSION
#define RELIEF_COMPILER_VERSION "unknown"
#endif
#ifndef RELIEF_BUILD_TYPE
#define RELIEF_BUILD_TYPE "unspecified"
#endif
#ifndef RELIEF_CXX_FLAGS
#define RELIEF_CXX_FLAGS ""
#endif

namespace relief
{

namespace
{

std::string
jsonEscape(const char *s)
{
    std::string out;
    for (; *s; ++s) {
        switch (*s) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default: out += *s; break;
        }
    }
    return out;
}

} // namespace

const char *buildGitSha() { return RELIEF_GIT_SHA; }
const char *buildCompilerId() { return RELIEF_COMPILER_ID; }
const char *buildCompilerVersion() { return RELIEF_COMPILER_VERSION; }

const char *
buildType()
{
    return RELIEF_BUILD_TYPE[0] ? RELIEF_BUILD_TYPE : "unspecified";
}

const char *buildCxxFlags() { return RELIEF_CXX_FLAGS; }

void
writeBuildInfoJson(std::ostream &os, int indent)
{
    std::string pad(std::size_t(indent), ' ');
    os << "{\n";
    os << pad << "  \"git_sha\": \"" << jsonEscape(buildGitSha())
       << "\",\n";
    os << pad << "  \"compiler_id\": \"" << jsonEscape(buildCompilerId())
       << "\",\n";
    os << pad << "  \"compiler_version\": \""
       << jsonEscape(buildCompilerVersion()) << "\",\n";
    os << pad << "  \"build_type\": \"" << jsonEscape(buildType())
       << "\",\n";
    os << pad << "  \"cxx_flags\": \"" << jsonEscape(buildCxxFlags())
       << "\"\n";
    os << pad << "}";
}

} // namespace relief
