/**
 * @file
 * Error-reporting and trace helpers, in the spirit of gem5's logging.hh.
 *
 * panic() is for internal invariant violations (simulator bugs); fatal()
 * is for user errors (bad configuration). Both throw rather than abort so
 * that unit tests can assert on them. warn()/inform() print to stderr.
 */

#ifndef RELIEF_SIM_LOGGING_HH
#define RELIEF_SIM_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace relief
{

/** Thrown by panic(): an internal simulator invariant was violated. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Thrown by fatal(): the user asked for something unsatisfiable. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

namespace detail
{

void logLine(const char *level, const std::string &msg);

inline void
format(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
format(std::ostringstream &os, const T &value, const Rest &...rest)
{
    os << value;
    format(os, rest...);
}

template <typename... Args>
std::string
concat(const Args &...args)
{
    std::ostringstream os;
    format(os, args...);
    return os.str();
}

} // namespace detail

/** Abort the simulation: internal invariant violated. */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    auto msg = detail::concat(args...);
    detail::logLine("panic", msg);
    throw PanicError(msg);
}

/** Abort the simulation: unusable user configuration or input. */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    auto msg = detail::concat(args...);
    detail::logLine("fatal", msg);
    throw FatalError(msg);
}

/** Report suspicious but survivable conditions. */
template <typename... Args>
void
warn(const Args &...args)
{
    detail::logLine("warn", detail::concat(args...));
}

/** Report normal operating status. */
template <typename... Args>
void
inform(const Args &...args)
{
    detail::logLine("info", detail::concat(args...));
}

/** Enable/disable inform() output globally (benches keep it quiet). */
void setInformEnabled(bool enabled);

/** panic() unless @p cond holds. */
#define RELIEF_ASSERT(cond, ...)                                            \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::relief::panic("assertion failed: " #cond " ", __VA_ARGS__);   \
        }                                                                   \
    } while (0)

} // namespace relief

#endif // RELIEF_SIM_LOGGING_HH
