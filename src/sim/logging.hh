/**
 * @file
 * Error-reporting and trace helpers, in the spirit of gem5's logging.hh.
 *
 * panic() is for internal invariant violations (simulator bugs); fatal()
 * is for user errors (bad configuration). Both throw rather than abort so
 * that unit tests can assert on them. warn()/inform() go through a
 * settable sink (default: stderr) so tests and drivers can capture or
 * redirect log output; see setLogSink().
 */

#ifndef RELIEF_SIM_LOGGING_HH
#define RELIEF_SIM_LOGGING_HH

#include <functional>
#include <sstream>
#include <stdexcept>
#include <string>

namespace relief
{

/** Severity of one log line (indexes the level-name table). */
enum class LogLevel
{
    Debug, ///< DPRINTF output (sim/debug.hh).
    Info,  ///< inform()
    Warn,  ///< warn()
    Fatal, ///< fatal(), logged before the throw
    Panic, ///< panic(), logged before the throw
};

/** Printable name of @p level ("info", "warn", ...). */
const char *logLevelName(LogLevel level);

/**
 * Receives every log line: the severity plus the unprefixed message
 * (no trailing newline). The default sink prints "level: message" to
 * stderr; debug lines are printed bare (they carry their own
 * timestamp prefix).
 */
using LogSink = std::function<void(LogLevel, const std::string &)>;

/** Replace the calling thread's log sink; an empty function restores
 *  the default stderr sink. Returns the previous sink so callers can
 *  chain or restore it. The sink is thread-local: parallel-runner
 *  workers start with the default sink (core/parallel.hh). */
LogSink setLogSink(LogSink sink);

/** Thrown by panic(): an internal simulator invariant was violated. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Thrown by fatal(): the user asked for something unsatisfiable. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

namespace detail
{

void logLine(LogLevel level, const std::string &msg);

inline void
format(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
format(std::ostringstream &os, const T &value, const Rest &...rest)
{
    os << value;
    format(os, rest...);
}

template <typename... Args>
std::string
concat(const Args &...args)
{
    std::ostringstream os;
    format(os, args...);
    return os.str();
}

} // namespace detail

/** Abort the simulation: internal invariant violated. */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    auto msg = detail::concat(args...);
    detail::logLine(LogLevel::Panic, msg);
    throw PanicError(msg);
}

/** Abort the simulation: unusable user configuration or input. */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    auto msg = detail::concat(args...);
    detail::logLine(LogLevel::Fatal, msg);
    throw FatalError(msg);
}

/** Report suspicious but survivable conditions. */
template <typename... Args>
void
warn(const Args &...args)
{
    detail::logLine(LogLevel::Warn, detail::concat(args...));
}

/** Report normal operating status. */
template <typename... Args>
void
inform(const Args &...args)
{
    detail::logLine(LogLevel::Info, detail::concat(args...));
}

/** Enable/disable inform() output for this thread (benches keep it
 *  quiet). Log state is thread-local; see core/parallel.hh. */
void setInformEnabled(bool enabled);

/** Current inform() toggle (for propagating into worker threads). */
bool informEnabled();

/** panic() unless @p cond holds. */
#define RELIEF_ASSERT(cond, ...)                                            \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::relief::panic("assertion failed: " #cond " ", __VA_ARGS__);   \
        }                                                                   \
    } while (0)

} // namespace relief

#endif // RELIEF_SIM_LOGGING_HH
