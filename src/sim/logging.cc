#include "sim/logging.hh"

#include <cstdio>

namespace relief
{

namespace
{
bool informEnabled = true;
} // namespace

void
setInformEnabled(bool enabled)
{
    informEnabled = enabled;
}

namespace detail
{

void
logLine(const char *level, const std::string &msg)
{
    if (level == std::string("info") && !informEnabled)
        return;
    std::fprintf(stderr, "%s: %s\n", level, msg.c_str());
}

} // namespace detail

} // namespace relief
