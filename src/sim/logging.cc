#include "sim/logging.hh"

#include <cstdio>

namespace relief
{

namespace
{
// Thread-local: each parallel-runner worker logs through its own sink
// (default stderr) and inform toggle, so concurrent simulations never
// race on a shared std::function. Setter APIs are unchanged; they now
// affect only the calling thread (core/parallel.hh propagates the
// inform toggle into workers).
thread_local bool informOn = true;
thread_local LogSink sink;
} // namespace

const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug:
        return "debug";
      case LogLevel::Info:
        return "info";
      case LogLevel::Warn:
        return "warn";
      case LogLevel::Fatal:
        return "fatal";
      case LogLevel::Panic:
        return "panic";
    }
    return "?";
}

void
setInformEnabled(bool enabled)
{
    informOn = enabled;
}

bool
informEnabled()
{
    return informOn;
}

LogSink
setLogSink(LogSink new_sink)
{
    LogSink previous = std::move(sink);
    sink = std::move(new_sink);
    return previous;
}

namespace detail
{

void
logLine(LogLevel level, const std::string &msg)
{
    if (level == LogLevel::Info && !informOn)
        return;
    if (sink) {
        sink(level, msg);
        return;
    }
    // Debug lines carry their own "tick: object:" prefix; every other
    // level is prefixed with its severity.
    if (level == LogLevel::Debug)
        std::fprintf(stderr, "%s\n", msg.c_str());
    else
        std::fprintf(stderr, "%s: %s\n", logLevelName(level), msg.c_str());
}

} // namespace detail

} // namespace relief
