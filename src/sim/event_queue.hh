/**
 * @file
 * Discrete-event queue — the simulator's hot path.
 *
 * Events are closures scheduled at an absolute tick. Two events at the
 * same tick fire in the order they were scheduled (a monotonically
 * increasing sequence number breaks ties), which keeps every simulation
 * fully deterministic. Cancellation is lazy: a cancelled event stays in
 * the heap but is skipped when popped, and the heap compacts itself
 * when cancelled entries pile up (long continuous-mode runs).
 *
 * The steady state allocates nothing. Event state lives in a chunked
 * slab owned by the queue and recycled through a free list; the heap
 * orders small POD entries (tick, sequence, slot index) instead of
 * shared_ptr copies; and callables are stored in a fixed-size inline
 * buffer inside the slot (InlineCallable), falling back to the heap
 * only for oversized captures — a counted event (numHeapCallables(),
 * surfaced as the sim.event_heap_callables stat) that the
 * microbenchmark test pins at zero for the hot paths.
 *
 * Debug labels: a `const char *` label (a string literal) is always
 * kept — storing the pointer is free. Dynamically built labels are
 * only materialized when the Event debug flag is enabled; pass a
 * nullary callable returning std::string and it is invoked solely
 * under the flag, so the hot path never concatenates strings. See
 * docs/performance.md for the full design.
 */

#ifndef RELIEF_SIM_EVENT_QUEUE_HH
#define RELIEF_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/debug.hh"
#include "sim/hostprof.hh"
#include "sim/logging.hh"
#include "sim/ticks.hh"

namespace relief
{

/**
 * Type-erased nullary callable with inline small-buffer storage.
 * Captures up to `capacity` bytes live in the slot itself; larger
 * closures fall back to one heap allocation (the caller counts them).
 * Never copied or moved — slots have stable addresses in the slab.
 */
class InlineCallable
{
  public:
    /** Inline capture budget; sized so every model call site
     *  (this + a few scalars + a std::function callback) fits. */
    static constexpr std::size_t capacity = 64;

    InlineCallable() = default;
    ~InlineCallable() { reset(); }

    InlineCallable(const InlineCallable &) = delete;
    InlineCallable &operator=(const InlineCallable &) = delete;

    /**
     * Store @p fn, destroying any previous callable.
     * @return true when the capture was too large for the inline
     *         buffer and had to be heap-allocated.
     */
    template <typename F>
    bool
    emplace(F &&fn)
    {
        using Fn = std::decay_t<F>;
        reset();
        if constexpr (sizeof(Fn) <= capacity &&
                      alignof(Fn) <= alignof(std::max_align_t)) {
            ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(fn));
            invoke_ = [](void *p) { (*static_cast<Fn *>(p))(); };
            destroy_ = [](void *p) { static_cast<Fn *>(p)->~Fn(); };
            return false;
        } else {
            heap_ = new Fn(std::forward<F>(fn));
            invoke_ = [](void *p) { (*static_cast<Fn *>(p))(); };
            destroy_ = [](void *p) { delete static_cast<Fn *>(p); };
            return true;
        }
    }

    bool engaged() const { return invoke_ != nullptr; }

    void
    invoke()
    {
        invoke_(target());
    }

    /** Destroy the stored callable (no-op when empty). */
    void
    reset()
    {
        if (invoke_) {
            destroy_(target());
            invoke_ = nullptr;
            destroy_ = nullptr;
            heap_ = nullptr;
        }
    }

  private:
    void *target() { return heap_ ? heap_ : static_cast<void *>(buf_); }

    alignas(std::max_align_t) unsigned char buf_[capacity];
    void (*invoke_)(void *) = nullptr;
    void (*destroy_)(void *) = nullptr;
    void *heap_ = nullptr;
};

class EventQueue;

/**
 * Handle to a scheduled event, usable to cancel it or query whether it
 * has fired. Copies refer to the same event. A handle references its
 * slot by index plus a generation counter, so it safely reports "not
 * pending" after the slot is recycled for a later event; it must not
 * outlive the EventQueue itself.
 */
class EventHandle
{
  public:
    EventHandle() = default;

    /** True if the event is still waiting to fire. */
    bool pending() const;

    /** Prevent the event from firing; no-op if already fired/cancelled. */
    void cancel();

  private:
    friend class EventQueue;

    EventHandle(EventQueue *queue, std::uint32_t slot, std::uint32_t gen)
        : queue_(queue), slot_(slot), gen_(gen)
    {
    }

    EventQueue *queue_ = nullptr;
    std::uint32_t slot_ = 0;
    std::uint32_t gen_ = 0;
};

/** Constrains the catless schedule() overloads so a HostCat argument
 *  always selects the category-taking forms (a nullary action lambda
 *  would otherwise let HostCat bind to the action parameter). */
template <typename F>
using NotHostCat =
    std::enable_if_t<!std::is_same_v<std::decay_t<F>, HostCat>>;

/**
 * Min-heap of events ordered by (tick, sequence number).
 */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /**
     * Schedule @p action to fire at absolute tick @p when.
     *
     * @param when   Absolute firing time; must be >= the current tick.
     * @param action Closure invoked when the event fires.
     * @return handle usable to cancel the event.
     *
     * The label overloads:
     *  - `const char *`: stored as-is (must be a string literal or
     *    otherwise outlive the event) — zero cost.
     *  - nullary callable returning std::string: invoked only when the
     *    Event debug flag is enabled, so dynamic labels cost nothing
     *    in normal runs.
     *  - std::string: kept only under the Event debug flag (the
     *    argument itself was already built; prefer the lazy form).
     *
     * Each form also accepts a HostCat *before* the action
     * (`schedule(when, HostCat::Dma, action, label)`), attributing
     * the dispatch's host wall time to that category when HostProf is
     * enabled (sim/hostprof.hh). Catless events fall in
     * HostCat::Other. Storing the category is one byte in the slot —
     * free whether or not profiling runs.
     */
    template <typename F, typename = NotHostCat<F>>
    EventHandle
    schedule(Tick when, F &&action)
    {
        return schedule(when, HostCat::Other, std::forward<F>(action),
                        static_cast<const char *>(""));
    }

    template <typename F, typename = NotHostCat<F>>
    EventHandle
    schedule(Tick when, F &&action, const char *label)
    {
        return schedule(when, HostCat::Other, std::forward<F>(action),
                        label);
    }

    template <typename F, typename = NotHostCat<F>>
    EventHandle
    schedule(Tick when, F &&action, std::string label)
    {
        return schedule(when, HostCat::Other, std::forward<F>(action),
                        std::move(label));
    }

    template <typename F, typename LabelFn,
              typename = NotHostCat<F>,
              typename = std::enable_if_t<std::is_invocable_v<LabelFn &>>>
    EventHandle
    schedule(Tick when, F &&action, LabelFn &&labelFn)
    {
        return schedule(when, HostCat::Other, std::forward<F>(action),
                        std::forward<LabelFn>(labelFn));
    }

    template <typename F>
    EventHandle
    schedule(Tick when, HostCat cat, F &&action)
    {
        return schedule(when, cat, std::forward<F>(action),
                        static_cast<const char *>(""));
    }

    template <typename F>
    EventHandle
    schedule(Tick when, HostCat cat, F &&action, const char *label)
    {
        if (when < curTick_)
            pastEventPanic(when, label);
        std::uint32_t id = allocSlot();
        Slot &slot = slotRef(id);
        slot.label = label;
        slot.cat = static_cast<std::uint8_t>(cat);
        if (slot.action.emplace(std::forward<F>(action))) {
            ++numHeapCallables_;
            if (hostProfEnabled())
                hostProfCountHeapAlloc(cat);
        }
        pushEntry(when, id);
        return EventHandle(this, id, slot.gen);
    }

    template <typename F>
    EventHandle
    schedule(Tick when, HostCat cat, F &&action, std::string label)
    {
        if (when < curTick_)
            pastEventPanic(when, label.c_str());
        EventHandle handle =
            schedule(when, cat, std::forward<F>(action),
                     static_cast<const char *>(""));
        if (labelsEnabled())
            slotRef(handle.slot_).dynLabel = std::move(label);
        return handle;
    }

    template <typename F, typename LabelFn,
              typename = std::enable_if_t<std::is_invocable_v<LabelFn &>>>
    EventHandle
    schedule(Tick when, HostCat cat, F &&action, LabelFn &&labelFn)
    {
        if (when < curTick_)
            pastEventPanic(when, std::string(labelFn()).c_str());
        EventHandle handle =
            schedule(when, cat, std::forward<F>(action),
                     static_cast<const char *>(""));
        if (labelsEnabled())
            slotRef(handle.slot_).dynLabel = labelFn();
        return handle;
    }

    /** Absolute time of the event most recently popped (current time). */
    Tick curTick() const { return curTick_; }

    /** True if no pending (non-cancelled) events remain. */
    bool empty() const;

    /** Tick of the earliest pending event; maxTick if none. */
    Tick nextTick() const;

    /**
     * Pop and run the earliest pending event, advancing current time.
     * @return false if the queue was empty.
     */
    bool runOne();

    /** Number of events executed so far. */
    std::uint64_t numExecuted() const { return numExecuted_; }

    /** Number of events scheduled so far. */
    std::uint64_t numScheduled() const { return numScheduled_; }

    /** Cancelled events dropped so far (skipped at pop or compacted
     *  away) — makes lazy deletion observable (sim.events_cancelled). */
    std::uint64_t numCancelled() const { return numCancelled_; }

    /** Callables too large for the inline buffer (heap fallbacks). */
    std::uint64_t numHeapCallables() const { return numHeapCallables_; }

    /** Times the heap was compacted to purge cancelled entries. */
    std::uint64_t numCompactions() const { return numCompactions_; }

    /** Slots currently carved out of the slab (high-water mark of
     *  concurrently pending events, rounded up to a chunk). */
    std::size_t slabCapacity() const
    {
        return chunks_.size() * slotsPerChunk;
    }

    /**
     * Compact the heap once at least this many cancelled entries are
     * buried in it (and they are the majority). Tests lower it to
     * exercise compaction with small queues.
     */
    void setCompactionMinimum(std::size_t n) { compactionMinimum_ = n; }

    /**
     * Busy-wait this many host ns inside every dispatch. A test hook:
     * the CI perf gate injects a deliberate per-event slowdown with it
     * (relief_bench --inject-spin-ns) and requires relief_compare to
     * flag the regression. Zero (the default) costs one predictable
     * branch per event.
     */
    void setDispatchSpin(std::uint64_t ns) { dispatchSpinNs_ = ns; }

    /** Currently injected per-dispatch spin, in host ns. */
    std::uint64_t dispatchSpin() const { return dispatchSpinNs_; }

  private:
    friend class EventHandle;

    static constexpr std::uint32_t noSlot = ~std::uint32_t(0);
    static constexpr std::size_t slotsPerChunk = 256;

    /** Pooled per-event state; addresses are stable (chunked slab). */
    struct Slot
    {
        InlineCallable action;
        std::string dynLabel;   ///< Only set under the Event debug flag.
        const char *label = ""; ///< Static-literal label, always kept.
        std::uint32_t gen = 0;  ///< Bumped on fire and on free.
        std::uint32_t nextFree = noSlot;
        std::uint8_t cat = 0;   ///< HostCat for wall-time attribution.
        bool cancelled = false;
    };

    /** Heap entry: plain data, cheap to sift. */
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t slot;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            return a.when != b.when ? a.when > b.when : a.seq > b.seq;
        }
    };

    static bool labelsEnabled()
    {
        return debugFlagEnabled(DebugFlag::Event);
    }

    Slot &
    slotRef(std::uint32_t id) const
    {
        return chunks_[id / slotsPerChunk][id % slotsPerChunk];
    }

    [[noreturn]] void pastEventPanic(Tick when, const char *label) const;

    std::uint32_t allocSlot();
    void freeSlot(std::uint32_t id) const;
    void pushEntry(Tick when, std::uint32_t id);
    bool slotPending(std::uint32_t id, std::uint32_t gen) const;
    void cancelSlot(std::uint32_t id, std::uint32_t gen);
    void maybeCompact();
    void compact();

    /** Busy-wait for dispatchSpinNs_ host ns (slowdown injection). */
    void spinDispatch() const;

    /** Drop cancelled events from the top of the heap. */
    void skipCancelled() const;

    std::vector<std::unique_ptr<Slot[]>> chunks_;
    mutable std::uint32_t freeHead_ = noSlot;
    mutable std::vector<Entry> heap_;
    std::size_t compactionMinimum_ = 1024;
    mutable std::size_t cancelledInHeap_ = 0;
    Tick curTick_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t numExecuted_ = 0;
    std::uint64_t numScheduled_ = 0;
    mutable std::uint64_t numCancelled_ = 0;
    std::uint64_t numHeapCallables_ = 0;
    std::uint64_t numCompactions_ = 0;
    std::uint64_t dispatchSpinNs_ = 0;
};

inline bool
EventHandle::pending() const
{
    return queue_ && queue_->slotPending(slot_, gen_);
}

inline void
EventHandle::cancel()
{
    if (queue_)
        queue_->cancelSlot(slot_, gen_);
}

} // namespace relief

#endif // RELIEF_SIM_EVENT_QUEUE_HH
