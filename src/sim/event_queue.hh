/**
 * @file
 * Discrete-event queue.
 *
 * Events are closures scheduled at an absolute tick. Two events at the
 * same tick fire in the order they were scheduled (a monotonically
 * increasing sequence number breaks ties), which keeps every simulation
 * fully deterministic. Cancellation is lazy: a cancelled event stays in
 * the heap but is skipped when popped.
 */

#ifndef RELIEF_SIM_EVENT_QUEUE_HH
#define RELIEF_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "sim/ticks.hh"

namespace relief
{

/**
 * Handle to a scheduled event, usable to cancel it or query whether it
 * has fired. Copies share state.
 */
class EventHandle
{
  public:
    EventHandle() = default;

    /** True if the event is still waiting to fire. */
    bool pending() const { return state_ && !state_->cancelled && !state_->fired; }

    /** Prevent the event from firing; no-op if already fired/cancelled. */
    void
    cancel()
    {
        if (state_)
            state_->cancelled = true;
    }

  private:
    friend class EventQueue;

    struct State
    {
        std::function<void()> action;
        std::string label;
        bool cancelled = false;
        bool fired = false;
    };

    explicit EventHandle(std::shared_ptr<State> state)
        : state_(std::move(state))
    {
    }

    std::shared_ptr<State> state_;
};

/**
 * Min-heap of events ordered by (tick, sequence number).
 */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /**
     * Schedule @p action to fire at absolute tick @p when.
     *
     * @param when   Absolute firing time; must be >= the current tick.
     * @param action Closure invoked when the event fires.
     * @param label  Debug name (kept for diagnostics).
     * @return handle usable to cancel the event.
     */
    EventHandle schedule(Tick when, std::function<void()> action,
                         std::string label = {});

    /** Absolute time of the event most recently popped (current time). */
    Tick curTick() const { return curTick_; }

    /** True if no pending (non-cancelled) events remain. */
    bool empty() const;

    /** Tick of the earliest pending event; maxTick if none. */
    Tick nextTick() const;

    /**
     * Pop and run the earliest pending event, advancing current time.
     * @return false if the queue was empty.
     */
    bool runOne();

    /** Number of events executed so far. */
    std::uint64_t numExecuted() const { return numExecuted_; }

    /** Number of events scheduled so far. */
    std::uint64_t numScheduled() const { return numScheduled_; }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        std::shared_ptr<EventHandle::State> state;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            return a.when != b.when ? a.when > b.when : a.seq > b.seq;
        }
    };

    /** Drop cancelled events from the top of the heap. */
    void skipCancelled() const;

    mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    Tick curTick_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t numExecuted_ = 0;
    std::uint64_t numScheduled_ = 0;
};

} // namespace relief

#endif // RELIEF_SIM_EVENT_QUEUE_HH
