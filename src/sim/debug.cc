#include "sim/debug.hh"

#include <array>
#include <sstream>

namespace relief
{

namespace
{
// Thread-local so independent simulations on a parallel runner's
// worker threads keep isolated flag sets (core/parallel.hh copies the
// launching thread's mask into each worker).
thread_local std::array<bool, numDebugFlags> enabledFlags{};
} // namespace

const char *
debugFlagName(DebugFlag flag)
{
    switch (flag) {
      case DebugFlag::Sched:
        return "Sched";
      case DebugFlag::Dma:
        return "Dma";
      case DebugFlag::Mem:
        return "Mem";
      case DebugFlag::Fabric:
        return "Fabric";
      case DebugFlag::Stats:
        return "Stats";
      case DebugFlag::Event:
        return "Event";
      case DebugFlag::Serve:
        return "Serve";
    }
    return "?";
}

const std::vector<DebugFlag> &
allDebugFlags()
{
    static const std::vector<DebugFlag> flags = {
        DebugFlag::Sched, DebugFlag::Dma,   DebugFlag::Mem,
        DebugFlag::Fabric, DebugFlag::Stats, DebugFlag::Event,
        DebugFlag::Serve,
    };
    return flags;
}

bool
debugFlagEnabled(DebugFlag flag)
{
    return enabledFlags[std::size_t(flag)];
}

void
setDebugFlag(DebugFlag flag, bool enabled)
{
    enabledFlags[std::size_t(flag)] = enabled;
}

bool
setDebugFlagByName(const std::string &name, bool enabled)
{
    for (DebugFlag flag : allDebugFlags()) {
        if (name == debugFlagName(flag)) {
            setDebugFlag(flag, enabled);
            return true;
        }
    }
    return false;
}

void
setDebugFlags(const std::string &csv)
{
    std::size_t pos = 0;
    while (pos <= csv.size()) {
        std::size_t comma = csv.find(',', pos);
        if (comma == std::string::npos)
            comma = csv.size();
        std::string item = csv.substr(pos, comma - pos);
        if (!item.empty() && !setDebugFlagByName(item)) {
            std::ostringstream valid;
            for (DebugFlag flag : allDebugFlags())
                valid << (valid.tellp() > 0 ? "," : "")
                      << debugFlagName(flag);
            fatal("unknown debug flag '", item, "' (valid: ", valid.str(),
                  ")");
        }
        pos = comma + 1;
    }
}

void
clearDebugFlags()
{
    enabledFlags.fill(false);
}

std::uint32_t
debugFlagMask()
{
    std::uint32_t mask = 0;
    for (std::size_t i = 0; i < numDebugFlags; ++i)
        if (enabledFlags[i])
            mask |= std::uint32_t(1) << i;
    return mask;
}

void
setDebugFlagMask(std::uint32_t mask)
{
    for (std::size_t i = 0; i < numDebugFlags; ++i)
        enabledFlags[i] = (mask >> i) & 1;
}

void
debugPrint(DebugFlag flag, Tick when, const std::string &who,
           const std::string &msg)
{
    (void)flag;
    // gem5's classic "tick: object: message" layout; the fixed-width
    // tick column keeps interleaved categories visually aligned.
    std::ostringstream os;
    os.width(12);
    os << when;
    os << ": " << who << ": " << msg;
    detail::logLine(LogLevel::Debug, os.str());
}

} // namespace relief
