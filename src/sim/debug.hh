/**
 * @file
 * Runtime debug flags, in the spirit of gem5's --debug-flags.
 *
 * Models instrument themselves with DPRINTF(Flag, ...) statements that
 * are compiled in but cost one boolean test when the flag is off. At
 * runtime, `relief_sim --debug-flags Sched,Dma` (or setDebugFlags())
 * turns categories on; enabled statements print sim-time-stamped lines
 *
 *     1234567: soc.manager: launching canny.blur on convolution0
 *
 * through the logging sink (sim/logging.hh), so tests can capture them
 * with setLogSink().
 *
 * DPRINTF must be used inside a SimObject member (it calls now() and
 * name()); free functions and non-SimObject classes use DPRINTFN and
 * supply the tick and source name themselves.
 */

#ifndef RELIEF_SIM_DEBUG_HH
#define RELIEF_SIM_DEBUG_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "sim/ticks.hh"

namespace relief
{

/** Debug categories (keep debugFlagName() in sync). */
enum class DebugFlag : std::size_t
{
    Sched,  ///< Scheduler: ready inserts, promotion decisions, launches.
    Dma,    ///< DMA engines: transfer issue and completion.
    Mem,    ///< Main memory / banked memory traffic.
    Fabric, ///< Interconnect reservations.
    Stats,  ///< Stat registry registration and dumps.
    Event,  ///< Event queue: per-event firing trace + dynamic labels.
    Serve,  ///< Serving layer: admissions, kept traces, SLO alerts.
};

/** Number of debug flags (array sizing). */
constexpr std::size_t numDebugFlags = 7;

/** Printable name of @p flag ("Sched", "Dma", ...). */
const char *debugFlagName(DebugFlag flag);

/** All flags, for enumeration in help text and tests. */
const std::vector<DebugFlag> &allDebugFlags();

/** True when @p flag is enabled. */
bool debugFlagEnabled(DebugFlag flag);

/** Enable or disable one flag. */
void setDebugFlag(DebugFlag flag, bool enabled = true);

/** Resolve @p name; returns false (and leaves flags untouched) when
 *  the name is unknown. */
bool setDebugFlagByName(const std::string &name, bool enabled = true);

/**
 * Enable a comma-separated list of flags ("Sched,Dma"). Unknown names
 * raise FatalError listing the valid flags, so a CLI typo fails fast.
 */
void setDebugFlags(const std::string &csv);

/** Disable every flag (test isolation). */
void clearDebugFlags();

/**
 * Flag state is thread-local (each parallel experiment owns its own
 * set; see core/parallel.hh). These pack/unpack the calling thread's
 * flags as a bitmask so a runner can propagate them into workers.
 */
std::uint32_t debugFlagMask();
void setDebugFlagMask(std::uint32_t mask);

/** Emit one debug line: "<tick>: <who>: <msg>" at Debug level. */
void debugPrint(DebugFlag flag, Tick when, const std::string &who,
                const std::string &msg);

/** Sim-time-stamped debug print from a SimObject member. */
#define DPRINTF(flag, ...)                                                  \
    do {                                                                    \
        if (::relief::debugFlagEnabled(::relief::DebugFlag::flag)) {        \
            ::relief::debugPrint(::relief::DebugFlag::flag, now(), name(),  \
                                 ::relief::detail::concat(__VA_ARGS__));    \
        }                                                                   \
    } while (0)

/** DPRINTF for call sites without now()/name() (policies, helpers). */
#define DPRINTFN(flag, when, who, ...)                                      \
    do {                                                                    \
        if (::relief::debugFlagEnabled(::relief::DebugFlag::flag)) {        \
            ::relief::debugPrint(::relief::DebugFlag::flag, (when), (who),  \
                                 ::relief::detail::concat(__VA_ARGS__));    \
        }                                                                   \
    } while (0)

} // namespace relief

#endif // RELIEF_SIM_DEBUG_HH
