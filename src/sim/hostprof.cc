#include "sim/hostprof.hh"

#include <bit>
#include <chrono>
#include <ostream>

#include "sim/build_info.hh"
#include "sim/logging.hh"

namespace relief
{

namespace hostprof_detail
{

/**
 * Per-thread profiling state. Exclusive-time accounting: anchorNs is
 * the last attribution boundary; every enter/exit charges the span
 * since the anchor to whatever category was on top of the stack (or
 * to the incoming category when the stack is empty — gap charging),
 * then moves the anchor.
 */
struct HostProfState
{
    static constexpr std::size_t maxDepth = 16;

    std::uint64_t enabledAtNs = 0; ///< Total-wall anchor.
    std::uint64_t frozenAtNs = 0;  ///< Disable time; 0 while live.
    std::uint64_t anchorNs = 0;    ///< Last attribution boundary.
    std::size_t depth = 0;
    std::array<HostCat, maxDepth> stack{};
    std::array<HostProfSnapshot::Category, numHostCats> cats{};

    HostCat
    top() const
    {
        std::size_t stored = depth < maxDepth ? depth : maxDepth;
        return stack[stored - 1];
    }

    void
    charge(HostCat cat, std::uint64_t now)
    {
        cats[static_cast<std::size_t>(cat)].wallNs += now - anchorNs;
        anchorNs = now;
    }
};

thread_local HostProfState *tlsState = nullptr;

namespace
{

/** Backing storage; outlives disable so snapshots stay readable. */
thread_local HostProfState tlsStorage;

std::uint64_t
clockNs()
{
    using namespace std::chrono;
    return std::uint64_t(
        duration_cast<nanoseconds>(steady_clock::now().time_since_epoch())
            .count());
}

std::size_t
nsBucket(std::uint64_t ns)
{
    if (ns == 0)
        return 0;
    std::size_t b = std::size_t(std::bit_width(ns));
    return b < HostProfSnapshot::numNsBuckets
               ? b
               : HostProfSnapshot::numNsBuckets - 1;
}

} // namespace
} // namespace hostprof_detail

using hostprof_detail::HostProfState;
using hostprof_detail::clockNs;
using hostprof_detail::tlsState;
using hostprof_detail::tlsStorage;

const char *
hostCatName(HostCat cat)
{
    switch (cat) {
      case HostCat::Other: return "other";
      case HostCat::Sched: return "sched";
      case HostCat::Dma: return "dma";
      case HostCat::Mem: return "mem";
      case HostCat::Interconnect: return "interconnect";
      case HostCat::Kernels: return "kernels";
      case HostCat::Stats: return "stats";
      case HostCat::Serve: return "serve";
    }
    return "other";
}

void
setHostProfEnabled(bool enabled)
{
    if (enabled) {
        tlsStorage = HostProfState{};
        tlsStorage.enabledAtNs = clockNs();
        tlsStorage.anchorNs = tlsStorage.enabledAtNs;
        tlsState = &tlsStorage;
    } else {
        if (tlsStorage.enabledAtNs != 0 && tlsStorage.frozenAtNs == 0) {
            std::uint64_t now = clockNs();
            // Charge the stretch since the last boundary to whatever
            // span is still open (callers may freeze from inside a
            // root scope), so nothing trails off unattributed.
            if (tlsStorage.depth > 0)
                tlsStorage.charge(tlsStorage.top(), now);
            tlsStorage.frozenAtNs = now;
        }
        tlsState = nullptr;
    }
}

std::uint64_t
hostProfEnter(HostCat cat)
{
    HostProfState &st = *tlsState;
    std::uint64_t now = clockNs();
    st.charge(st.depth == 0 ? cat : st.top(), now);
    if (st.depth < HostProfState::maxDepth)
        st.stack[st.depth] = cat;
    ++st.depth;
    return now;
}

void
hostProfExit()
{
    // A scope armed while profiling was on may close after a freeze
    // (e.g. a tool's root scope outliving its JSON export); the
    // freeze already charged everything, so this is a no-op then.
    if (!tlsState)
        return;
    HostProfState &st = *tlsState;
    RELIEF_ASSERT(st.depth > 0, "hostprof scope underflow");
    std::uint64_t now = clockNs();
    st.charge(st.top(), now);
    --st.depth;
}

void
hostProfExitEvent(HostCat cat, std::uint64_t enter_ns)
{
    if (!tlsState)
        return;
    HostProfState &st = *tlsState;
    RELIEF_ASSERT(st.depth > 0, "hostprof event span underflow");
    std::uint64_t now = clockNs();
    st.charge(st.top(), now);
    --st.depth;
    auto &c = st.cats[static_cast<std::size_t>(cat)];
    ++c.events;
    ++c.nsHist[hostprof_detail::nsBucket(now - enter_ns)];
}

void
hostProfCountHeapAlloc(HostCat cat)
{
    ++tlsState->cats[static_cast<std::size_t>(cat)].heapAllocs;
}

HostProfSnapshot
hostProfSnapshot()
{
    HostProfSnapshot snap;
    const HostProfState &st = tlsStorage;
    if (st.enabledAtNs == 0)
        return snap;
    std::uint64_t upTo = st.frozenAtNs ? st.frozenAtNs : clockNs();
    snap.totalWallNs = upTo - st.enabledAtNs;
    snap.cats = st.cats;
    return snap;
}

std::uint64_t
HostProfSnapshot::attributedNs() const
{
    std::uint64_t sum = 0;
    for (const Category &c : cats)
        sum += c.wallNs;
    return sum;
}

double
HostProfSnapshot::coverage() const
{
    if (totalWallNs == 0)
        return 0.0;
    double cov = double(attributedNs()) / double(totalWallNs);
    return cov > 1.0 ? 1.0 : cov;
}

void
HostProfSnapshot::merge(const HostProfSnapshot &other)
{
    totalWallNs += other.totalWallNs;
    for (std::size_t i = 0; i < numHostCats; ++i) {
        cats[i].wallNs += other.cats[i].wallNs;
        cats[i].events += other.cats[i].events;
        cats[i].heapAllocs += other.cats[i].heapAllocs;
        for (std::size_t b = 0; b < numNsBuckets; ++b)
            cats[i].nsHist[b] += other.cats[i].nsHist[b];
    }
}

void
HostProfSnapshot::writeJson(std::ostream &os, bool standalone,
                            int indent) const
{
    // The opening brace is written bare so the object can sit after a
    // key on the caller's current line; @p indent governs the rest.
    std::string pad(std::size_t(indent), ' ');
    os << "{\n";
    if (standalone) {
        os << pad << "  \"schema\": \"relief-hostprof-v1\",\n";
        os << pad << "  \"build_info\": ";
        writeBuildInfoJson(os, indent + 2);
        os << ",\n";
    }
    os << pad << "  \"total_wall_ns\": " << totalWallNs << ",\n";
    os << pad << "  \"attributed_wall_ns\": " << attributedNs() << ",\n";
    os << pad << "  \"coverage\": " << coverage() << ",\n";
    os << pad << "  \"categories\": {\n";
    for (std::size_t i = 0; i < numHostCats; ++i) {
        const Category &c = cats[i];
        os << pad << "    \"" << hostCatName(static_cast<HostCat>(i))
           << "\": {\n";
        os << pad << "      \"wall_ns\": " << c.wallNs << ",\n";
        os << pad << "      \"events\": " << c.events << ",\n";
        os << pad << "      \"heap_allocs\": " << c.heapAllocs << ",\n";
        os << pad << "      \"ns_hist\": [";
        for (std::size_t b = 0; b < numNsBuckets; ++b)
            os << (b ? ", " : "") << c.nsHist[b];
        os << "]\n";
        os << pad << "    }" << (i + 1 < numHostCats ? "," : "") << "\n";
    }
    os << pad << "  }\n";
    os << pad << "}";
}

} // namespace relief
