/**
 * @file
 * Simulation time base.
 *
 * The simulator counts time in integer picoseconds. One picosecond
 * resolution comfortably expresses every clock in the modeled SoC
 * (1 GHz accelerators, 1.6 GHz manager, LPDDR5 tCK = 1.25 ns) without
 * rounding, and a 64-bit tick counter spans ~200 days of simulated time.
 */

#ifndef RELIEF_SIM_TICKS_HH
#define RELIEF_SIM_TICKS_HH

#include <cstdint>

namespace relief
{

/** Simulated time, in picoseconds. */
using Tick = std::uint64_t;

/** Signed tick arithmetic result (laxities can be negative). */
using STick = std::int64_t;

/** Globally unique task-node identifier (0 = none). */
using NodeId = std::uint64_t;

/** A tick value that no event ever reaches. */
constexpr Tick maxTick = ~Tick(0);

constexpr Tick tickPerPs = 1;
constexpr Tick tickPerNs = 1000;
constexpr Tick tickPerUs = 1000 * 1000;
constexpr Tick tickPerMs = Tick(1000) * 1000 * 1000;
constexpr Tick tickPerSec = Tick(1000) * 1000 * 1000 * 1000;

/** Convert a duration in nanoseconds to ticks (rounding to nearest). */
constexpr Tick
fromNs(double nanoseconds)
{
    return Tick(nanoseconds * double(tickPerNs) + 0.5);
}

/** Convert a duration in microseconds to ticks (rounding to nearest). */
constexpr Tick
fromUs(double microseconds)
{
    return Tick(microseconds * double(tickPerUs) + 0.5);
}

/** Convert a duration in milliseconds to ticks (rounding to nearest). */
constexpr Tick
fromMs(double milliseconds)
{
    return Tick(milliseconds * double(tickPerMs) + 0.5);
}

/** Convert ticks to (fractional) nanoseconds. */
constexpr double
toNs(Tick t)
{
    return double(t) / double(tickPerNs);
}

/** Convert ticks to (fractional) microseconds. */
constexpr double
toUs(Tick t)
{
    return double(t) / double(tickPerUs);
}

/** Convert ticks to (fractional) milliseconds. */
constexpr double
toMs(Tick t)
{
    return double(t) / double(tickPerMs);
}

/** Convert signed ticks to (fractional) microseconds. */
constexpr double
toUsSigned(STick t)
{
    return double(t) / double(tickPerUs);
}

/**
 * Time to move @p bytes at @p gbPerSec gigabytes per second
 * (1 GB/s == 1 byte/ns).
 */
constexpr Tick
transferTime(std::uint64_t bytes, double gbPerSec)
{
    return Tick(double(bytes) / gbPerSec * double(tickPerNs) + 0.5);
}

} // namespace relief

#endif // RELIEF_SIM_TICKS_HH
