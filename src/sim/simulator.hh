/**
 * @file
 * Simulation driver: owns the event queue and runs it to completion or
 * to a time limit.
 */

#ifndef RELIEF_SIM_SIMULATOR_HH
#define RELIEF_SIM_SIMULATOR_HH

#include <string>
#include <utility>

#include "sim/event_queue.hh"
#include "sim/ticks.hh"

namespace relief
{

/**
 * Top-level simulation context. SimObjects hold a reference to their
 * Simulator and schedule events through it.
 */
class Simulator
{
  public:
    Simulator() = default;
    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Current simulated time. */
    Tick now() const { return events_.curTick(); }

    /**
     * Schedule @p action at absolute tick @p when. The optional label
     * may be a string literal (always kept, free) or a nullary
     * callable returning std::string (evaluated only under the Event
     * debug flag) — see EventQueue::schedule. A HostCat placed before
     * the action (`sim.at(when, HostCat::Dma, fn, "label")`) forwards
     * through and tags the event for host-time attribution.
     */
    template <typename F, typename... Label>
    EventHandle
    at(Tick when, F &&action, Label &&...label)
    {
        return events_.schedule(when, std::forward<F>(action),
                                std::forward<Label>(label)...);
    }

    /** Schedule @p action @p delay ticks from now. */
    template <typename F, typename... Label>
    EventHandle
    after(Tick delay, F &&action, Label &&...label)
    {
        return events_.schedule(now() + delay, std::forward<F>(action),
                                std::forward<Label>(label)...);
    }

    /**
     * Run until the event queue drains or @p limit is reached.
     * @return the tick at which the run stopped.
     */
    Tick run(Tick limit = maxTick);

    /** Request that run() return after the current event. */
    void stop() { stopRequested_ = true; }

    /** Direct access to the queue (tests, stats). */
    const EventQueue &events() const { return events_; }

    /** Mutable queue access (dispatch-spin injection, tests). */
    EventQueue &events() { return events_; }

  private:
    EventQueue events_;
    bool stopRequested_ = false;
};

/**
 * Base class for named model components.
 */
class SimObject
{
  public:
    /**
     * @param sim  Owning simulation context (must outlive the object).
     * @param name Hierarchical debug name, e.g. "soc.acc.convolution0".
     */
    SimObject(Simulator &sim, std::string name)
        : sim_(sim), name_(std::move(name))
    {
    }

    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    const std::string &name() const { return name_; }
    Simulator &sim() const { return sim_; }
    Tick now() const { return sim_.now(); }

  private:
    Simulator &sim_;
    std::string name_;
};

} // namespace relief

#endif // RELIEF_SIM_SIMULATOR_HH
