/**
 * @file
 * Build provenance stamped into every emitted JSON artifact.
 *
 * Perf-trajectory tooling (scripts/bench_history.py, relief_compare)
 * can only attribute a throughput change to a code change if each
 * document records what produced it. CMake captures the git sha at
 * configure time plus the compiler identity, build type, and flags,
 * and passes them as compile definitions; every artifact writer
 * (stats, bench, serve, trace, pressure, hostprof) embeds the result
 * as a `build_info` object, which scripts/check_bench_schema.py
 * (schema v5) requires.
 *
 * The sha is refreshed on reconfigure, not on every commit — close
 * enough for trajectory attribution, and free at build time.
 */

#ifndef RELIEF_SIM_BUILD_INFO_HH
#define RELIEF_SIM_BUILD_INFO_HH

#include <iosfwd>

namespace relief
{

/** Git sha the build was configured from ("unknown" outside git). */
const char *buildGitSha();

/** Compiler id, e.g. "GNU" or "Clang". */
const char *buildCompilerId();

/** Compiler version, e.g. "13.2.0". */
const char *buildCompilerVersion();

/** CMake build type ("Release", "Debug", ... or "unspecified"). */
const char *buildType();

/** CMAKE_CXX_FLAGS the build was configured with. */
const char *buildCxxFlags();

/**
 * Write the canonical `build_info` JSON object (no trailing newline).
 * @p indent is the column the object's opening brace sits at; nested
 * lines are indented two further.
 */
void writeBuildInfoJson(std::ostream &os, int indent = 0);

} // namespace relief

#endif // RELIEF_SIM_BUILD_INFO_HH
