/**
 * @file
 * HostProf — host-side self-profiling for the simulator's own wall
 * clock.
 *
 * The simulated SoC is deeply observable (stats, traces, the pressure
 * ledger), but the simulator's *host* cost was a black box. HostProf
 * attributes host wall time to a small set of categories (sched, dma,
 * mem, interconnect, kernels, stats/trace emission, serve) using
 * exclusive-time stack accounting:
 *
 *  - Every event dispatch is a timed span keyed by the category the
 *    scheduler attached to the event at schedule time (EventQueue
 *    Slot::cat). The gap *between* dispatches — heap pops, slot
 *    recycling, the run loop itself — is charged to the next event's
 *    category ("gap charging"), so attribution coverage of a run loop
 *    approaches 100% instead of silently dropping queue overhead.
 *  - Non-event phases (stats/JSON emission, kernel functional
 *    payloads, bandwidth reservations) wrap themselves in a
 *    HostProfScope; nested spans get exclusive time — the parent is
 *    only charged for the cycles the child did not consume.
 *
 * The whole layer sits behind one branch-predictable enabled check
 * (a thread-local pointer test, inlined below): with profiling off
 * the event hot path pays a single never-taken branch and no clock
 * reads, preserving the zero-allocation dispatch documented in
 * docs/performance.md. State is thread-local, so parallel bench
 * workers profile their own cells without synchronization.
 *
 * Snapshots export as `relief-hostprof-v1` JSON: per-category wall
 * ns, event counts, log2 ns/event histograms, heap-callable counts,
 * and attribution coverage (= attributed / total wall time).
 */

#ifndef RELIEF_SIM_HOSTPROF_HH
#define RELIEF_SIM_HOSTPROF_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace relief
{

/** Host-time attribution categories (keep hostCatName() in sync). */
enum class HostCat : std::uint8_t
{
    Other,        ///< Uncategorized events and glue.
    Sched,        ///< Hardware manager: submission, policy, launches.
    Dma,          ///< DMA engines: transfer issue and completion.
    Mem,          ///< Memory system: bandwidth reservations.
    Interconnect, ///< Fabric route construction.
    Kernels,      ///< Functional kernel payload execution.
    Stats,        ///< Stats/trace/exposition emission.
    Serve,        ///< Serving layer: arrivals, admission, alerts.
};

/** Number of host categories (array sizing). */
constexpr std::size_t numHostCats = 8;

/** Printable name of @p cat ("sched", "dma", ...). */
const char *hostCatName(HostCat cat);

namespace hostprof_detail
{
struct HostProfState;
/** Non-null while the calling thread is profiling. */
extern thread_local HostProfState *tlsState;
} // namespace hostprof_detail

/** True when host profiling is on for the calling thread. The one
 *  check the event hot path performs — an inlined thread-local
 *  pointer test. */
inline bool
hostProfEnabled()
{
    return hostprof_detail::tlsState != nullptr;
}

/**
 * Turn host profiling on or off for the calling thread. Enabling
 * resets all counters and anchors total wall time at "now"; disabling
 * freezes the state (a later hostProfSnapshot() still reads it) so a
 * caller can stop the meter before emitting JSON.
 */
void setHostProfEnabled(bool enabled);

/**
 * Open an attribution span for @p cat: charges the elapsed gap since
 * the previous boundary (to the enclosing span's category, or to
 * @p cat itself at stack bottom) and pushes @p cat.
 * @return the entry timestamp in ns (opaque; pass to
 *         hostProfExitEvent for inclusive per-event timing).
 */
std::uint64_t hostProfEnter(HostCat cat);

/** Close the innermost span, charging its exclusive remainder. */
void hostProfExit();

/**
 * Close an *event dispatch* span: like hostProfExit(), but also
 * counts one event for @p cat and files the inclusive dispatch time
 * (now - @p enter_ns) into the category's log2 ns histogram.
 */
void hostProfExitEvent(HostCat cat, std::uint64_t enter_ns);

/** Count one heap-callable fallback against @p cat (schedule-time
 *  allocation attribution; see EventQueue::numHeapCallables). */
void hostProfCountHeapAlloc(HostCat cat);

/**
 * RAII attribution span for non-event phases (stats emission, kernel
 * payloads, bandwidth reservations). Free when profiling is off.
 */
class HostProfScope
{
  public:
    explicit HostProfScope(HostCat cat)
    {
        if (hostProfEnabled()) {
            armed_ = true;
            hostProfEnter(cat);
        }
    }

    ~HostProfScope()
    {
        if (armed_)
            hostProfExit();
    }

    HostProfScope(const HostProfScope &) = delete;
    HostProfScope &operator=(const HostProfScope &) = delete;

  private:
    bool armed_ = false;
};

/**
 * Point-in-time copy of the calling thread's profile. Plain data:
 * copyable, mergeable, serializable after the profiling thread moved
 * on (bench workers hand snapshots back to the writer thread).
 */
struct HostProfSnapshot
{
    /** Log2 ns/event histogram width: bucket i counts dispatches
     *  with inclusive cost in [2^(i-1), 2^i) ns (bucket 0 = 0 ns). */
    static constexpr std::size_t numNsBuckets = 40;

    struct Category
    {
        std::uint64_t wallNs = 0;     ///< Exclusive attributed ns.
        std::uint64_t events = 0;     ///< Timed event dispatches.
        std::uint64_t heapAllocs = 0; ///< Heap-callable fallbacks.
        std::array<std::uint64_t, numNsBuckets> nsHist{};
    };

    std::uint64_t totalWallNs = 0; ///< Enable (or reset) to snapshot.
    std::array<Category, numHostCats> cats{};

    /** Sum of per-category attributed wall ns. */
    std::uint64_t attributedNs() const;

    /** attributed / total, in [0, 1]; 0 when total is 0. */
    double coverage() const;

    /** Fold @p other into this snapshot (cross-thread aggregation).
     *  Wall times and counts add; coverage re-derives. */
    void merge(const HostProfSnapshot &other);

    /**
     * Emit this snapshot as JSON. With @p standalone true, writes a
     * full `relief-hostprof-v1` document (schema + build_info);
     * otherwise writes just the profile object for embedding (e.g.
     * per-cell inside relief-bench-v1). @p indent is the number of
     * leading spaces on each line.
     */
    void writeJson(std::ostream &os, bool standalone, int indent = 0) const;
};

/** Snapshot the calling thread's profile (zeroes if never enabled).
 *  Total wall time is measured up to "now" while enabled, or up to
 *  the disable point after setHostProfEnabled(false). */
HostProfSnapshot hostProfSnapshot();

} // namespace relief

#endif // RELIEF_SIM_HOSTPROF_HH
