/**
 * @file
 * Per-accelerator DMA engine.
 *
 * Each accelerator owns a DMA engine with independent read and write
 * channels (loads of the next task can overlap the write-back of the
 * previous one). The engine moves data between main memory and the
 * local scratchpad, or pulls directly from a producer accelerator's
 * scratchpad over the interconnect — the forwarding mechanism the paper
 * assumes (scratchpads exposed read-only on the DMA plane).
 */

#ifndef RELIEF_DMA_DMA_ENGINE_HH
#define RELIEF_DMA_DMA_ENGINE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "interconnect/interconnect.hh"
#include "mem/bandwidth_resource.hh"
#include "mem/main_memory.hh"
#include "mem/pressure_ledger.hh"
#include "mem/scratchpad.hh"
#include "sim/simulator.hh"

namespace relief
{

/** Categories of modeled traffic (drives Fig. 5's breakdown). */
enum class TrafficClass
{
    DramRead,   ///< DRAM -> local SPM.
    DramWrite,  ///< local SPM -> DRAM (write-back).
    SpmForward, ///< producer SPM -> local SPM (forward).
};

/** Printable name of @p cls ("dram-read", ...). */
const char *trafficClassName(TrafficClass cls);

/** Configuration for DmaEngine. */
struct DmaConfig
{
    double channelGBs = 16.0;          ///< Max rate per channel.
    Tick setupLatency = fromNs(500.0); ///< Descriptor programming cost.
    Tick streamSetupLatency = fromNs(100.0); ///< AXI-stream handshake.
    /**
     * Split transfers into bursts of this many bytes, claiming shared
     * resources one burst at a time so concurrent streams interleave
     * at burst granularity instead of serializing whole buffers.
     * 0 = move each buffer as one reservation (the default; whole-
     * buffer timing is what the Table I calibration uses).
     */
    std::uint64_t burstBytes = 0;
};

/**
 * Attribution context of one transfer, threaded from the hardware
 * manager down to the pressure ledger: which QoS class and request
 * the moved bytes belong to, and whether a write-back is a forced
 * spill (partition eviction) rather than the normal write-back rule.
 */
struct TransferCtx
{
    std::uint8_t qosClass = 0;
    std::uint64_t requestId = 0;
    bool spill = false;
};

class DmaEngine : public SimObject
{
  public:
    using Callback = std::function<void()>;

    /**
     * @param sim       Simulation context.
     * @param name      Debug name.
     * @param fabric    Interconnect; the engine registers its own port.
     * @param dram_port Port where main memory attaches to @p fabric.
     * @param dram      Main memory endpoint.
     * @param localSpm  The owning accelerator's scratchpad.
     */
    DmaEngine(Simulator &sim, std::string name, Interconnect &fabric,
              PortId dram_port, MainMemory &dram, Scratchpad &localSpm,
              const DmaConfig &config = {});

    /** Interconnect port this engine (and its SPM) attaches through. */
    PortId port() const { return port_; }

    /**
     * DRAM -> local SPM load of @p bytes.
     *
     * @param stream_hint Identifies the buffer being streamed (task
     *        node id); the banked memory model maps it to a bank.
     * @return the reservation's end tick; @p on_done fires then.
     */
    Tick readFromDram(std::uint64_t bytes, Callback on_done,
                      std::uint64_t stream_hint = 0,
                      const TransferCtx &ctx = {});

    /** Local SPM -> DRAM write-back of @p bytes. */
    Tick writeToDram(std::uint64_t bytes, Callback on_done,
                     std::uint64_t stream_hint = 0,
                     const TransferCtx &ctx = {});

    /**
     * Producer SPM -> local SPM forward of @p bytes. The caller is
     * responsible for ongoing-read bookkeeping on the producer
     * partition (beginRead before calling, endRead from @p on_done).
     */
    Tick forwardFrom(Scratchpad &producer, PortId producer_port,
                     std::uint64_t bytes, Callback on_done,
                     const TransferCtx &ctx = {});

    /**
     * AXI-stream-style forward: a dedicated producer/consumer FIFO
     * over the fabric (the paper's Section II alternative mechanism,
     * cf. ARM AXI-Stream / VIP buffers). Bypasses the DMA read channel
     * and both scratchpad ports — only the fabric is claimed, with a
     * small per-stream setup cost. Accounting matches forwardFrom().
     */
    Tick streamFrom(Scratchpad &producer, PortId producer_port,
                    std::uint64_t bytes, Callback on_done,
                    const TransferCtx &ctx = {});

    /**
     * Pressure-ledger source id stamped on every transfer this engine
     * launches (the owning accelerator's id); set by the Soc after
     * construction, -1 (untagged) until then.
     */
    void setPressureSource(int source_id) { sourceId_ = source_id; }
    int pressureSource() const { return sourceId_; }

    /** The engine's own channels, for pressure-ledger registration. */
    BandwidthResource &readChannel() { return readChannel_; }
    BandwidthResource &writeChannel() { return writeChannel_; }

    /** Earliest tick the read channel can accept a new transfer. */
    Tick readChannelFree() const { return readChannel_.nextFree(); }

    /** Earliest tick the write channel can accept a new transfer. */
    Tick writeChannelFree() const { return writeChannel_.nextFree(); }

    std::uint64_t bytesMoved(TrafficClass cls) const;

    /** Bytes launched but not yet delivered, across both channels —
     *  the IntervalSampler's memory-pressure probe. */
    std::uint64_t outstandingBytes() const { return outstanding_; }

    void resetStats();

  private:
    /**
     * In-flight burst-mode transfer. Instances are pooled: the engine
     * owns them (chunkPool_) and recycles through a free list, so a
     * long run of chunked transfers allocates a bounded number of
     * states instead of one shared_ptr per transfer. Completion events
     * capture the raw pointer; the engine outlives its events.
     */
    struct ChunkState
    {
        std::vector<BandwidthResource *> path;
        std::uint64_t remaining = 0;
        Callback onDone;
        RequestorTag tag;
    };

    ChunkState *acquireChunk();
    void releaseChunk(ChunkState *state);

    /** Ledger tag for a transfer of class @p cls under @p ctx. */
    RequestorTag makeTag(TrafficClass cls, const TransferCtx &ctx) const;

    Tick launch(std::vector<BandwidthResource *> path, std::uint64_t bytes,
                TrafficClass cls, Callback on_done,
                const RequestorTag &tag);
    Tick launchChunked(std::vector<BandwidthResource *> path,
                       std::uint64_t bytes, TrafficClass cls,
                       Callback on_done, const RequestorTag &tag);
    void issueNextChunk(ChunkState *state);
    void accountTraffic(std::uint64_t bytes, TrafficClass cls);

    Interconnect &fabric_;
    MainMemory &dram_;
    Scratchpad &localSpm_;
    DmaConfig config_;
    PortId port_;
    PortId dramPort_;
    BandwidthResource readChannel_;
    BandwidthResource writeChannel_;
    Counter dramReadBytes_;
    Counter dramWriteBytes_;
    Counter forwardBytes_;
    std::uint64_t outstanding_ = 0;
    int sourceId_ = -1;
    std::vector<std::unique_ptr<ChunkState>> chunkPool_;
    std::vector<ChunkState *> chunkFree_;
};

} // namespace relief

#endif // RELIEF_DMA_DMA_ENGINE_HH
