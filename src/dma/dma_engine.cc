#include "dma/dma_engine.hh"

#include <utility>

#include "sim/debug.hh"
#include "sim/logging.hh"

namespace relief
{

const char *
trafficClassName(TrafficClass cls)
{
    switch (cls) {
      case TrafficClass::DramRead:
        return "dram-read";
      case TrafficClass::DramWrite:
        return "dram-write";
      case TrafficClass::SpmForward:
        return "spm-forward";
    }
    return "?";
}

DmaEngine::DmaEngine(Simulator &sim, std::string name, Interconnect &fabric,
                     PortId dram_port, MainMemory &dram,
                     Scratchpad &localSpm, const DmaConfig &config)
    : SimObject(sim, std::move(name)), fabric_(fabric), dram_(dram),
      localSpm_(localSpm), config_(config),
      port_(fabric.registerPort(this->name())), dramPort_(dram_port),
      readChannel_(this->name() + ".rd", config.channelGBs,
                   config.setupLatency),
      writeChannel_(this->name() + ".wr", config.channelGBs,
                    config.setupLatency)
{
}

RequestorTag
DmaEngine::makeTag(TrafficClass cls, const TransferCtx &ctx) const
{
    RequestorTag tag;
    tag.source = std::int16_t(sourceId_);
    tag.qosClass = ctx.qosClass;
    tag.requestId = ctx.requestId;
    switch (cls) {
      case TrafficClass::DramRead:
        tag.traffic = PressureTraffic::DramFetch;
        break;
      case TrafficClass::DramWrite:
        tag.traffic = ctx.spill ? PressureTraffic::SpmSpill
                                : PressureTraffic::Writeback;
        break;
      case TrafficClass::SpmForward:
        tag.traffic = PressureTraffic::Forward;
        break;
    }
    return tag;
}

Tick
DmaEngine::launch(std::vector<BandwidthResource *> path,
                  std::uint64_t bytes, TrafficClass cls, Callback on_done,
                  const RequestorTag &tag)
{
    if (config_.burstBytes > 0 && bytes > config_.burstBytes) {
        return launchChunked(std::move(path), bytes, cls,
                             std::move(on_done), tag);
    }
    auto timing = reserveTransfer(path, now(), bytes, tag);
    fabric_.recordTransfer(timing.start, timing.end, bytes);
    // Producer-side read energy of forwards is accounted by the
    // caller, which knows which scratchpad it pulled from.
    accountTraffic(bytes, cls);
    DPRINTF(Dma, trafficClassName(cls), " launch ", bytes,
            " bytes, done at ", timing.end);

    outstanding_ += bytes;
    sim().at(timing.end, HostCat::Dma,
             [this, bytes, cb = std::move(on_done)]() {
                 outstanding_ -= bytes;
                 if (cb)
                     cb();
             },
             [this] { return name() + ".done"; });
    return timing.end;
}

Tick
DmaEngine::launchChunked(std::vector<BandwidthResource *> path,
                         std::uint64_t bytes, TrafficClass cls,
                         Callback on_done, const RequestorTag &tag)
{
    accountTraffic(bytes, cls);
    DPRINTF(Dma, trafficClassName(cls), " chunked launch ", bytes,
            " bytes in ", config_.burstBytes, "-byte bursts");
    outstanding_ += bytes;

    // Claim one burst now; each burst's completion event claims the
    // next, so competing streams interleave at burst granularity.
    // The returned tick is a lower bound on completion (exact when
    // nothing else queues behind us); the callback fires at the true
    // completion time.
    ChunkState *state = acquireChunk();
    state->path = std::move(path);
    state->remaining = bytes;
    state->onDone = std::move(on_done);
    state->tag = tag;
    issueNextChunk(state);

    Tick optimistic = now();
    double min_bw = state->path[0]->bandwidth();
    for (const auto *res : state->path) {
        optimistic = std::max(optimistic, res->nextFree());
        min_bw = std::min(min_bw, res->bandwidth());
    }
    return optimistic + transferTime(state->remaining, min_bw);
}

DmaEngine::ChunkState *
DmaEngine::acquireChunk()
{
    if (chunkFree_.empty()) {
        chunkPool_.push_back(std::make_unique<ChunkState>());
        return chunkPool_.back().get();
    }
    ChunkState *state = chunkFree_.back();
    chunkFree_.pop_back();
    return state;
}

void
DmaEngine::releaseChunk(ChunkState *state)
{
    state->path.clear(); // keeps capacity for the next transfer
    state->remaining = 0;
    state->onDone = nullptr;
    state->tag = RequestorTag{};
    chunkFree_.push_back(state);
}

void
DmaEngine::issueNextChunk(ChunkState *state)
{
    std::uint64_t n = std::min(state->remaining, config_.burstBytes);
    state->remaining -= n;
    auto timing = reserveTransfer(state->path, now(), n, state->tag);
    fabric_.recordTransfer(timing.start, timing.end, n);
    sim().at(timing.end, HostCat::Dma,
             [this, state, n]() {
                 outstanding_ -= n;
                 if (state->remaining > 0) {
                     issueNextChunk(state);
                 } else {
                     // Recycle before running the callback: on_done may
                     // start another chunked transfer and reuse this
                     // very state.
                     Callback done = std::move(state->onDone);
                     releaseChunk(state);
                     if (done)
                         done();
                 }
             },
             [this] { return name() + ".chunk"; });
}

void
DmaEngine::accountTraffic(std::uint64_t bytes, TrafficClass cls)
{
    switch (cls) {
      case TrafficClass::DramRead:
        dram_.recordRead(bytes);
        localSpm_.recordWrite(bytes);
        dramReadBytes_.add(bytes);
        break;
      case TrafficClass::DramWrite:
        localSpm_.recordRead(bytes);
        dram_.recordWrite(bytes);
        dramWriteBytes_.add(bytes);
        break;
      case TrafficClass::SpmForward:
        localSpm_.recordWrite(bytes);
        forwardBytes_.add(bytes);
        break;
    }
}

Tick
DmaEngine::readFromDram(std::uint64_t bytes, Callback on_done,
                        std::uint64_t stream_hint,
                        const TransferCtx &ctx)
{
    auto path = fabric_.path(dramPort_, port_);
    auto mem = dram_.path(stream_hint);
    path.insert(path.begin(), mem.begin(), mem.end());
    path.insert(path.begin(), &readChannel_);
    path.push_back(&localSpm_.port());
    return launch(std::move(path), bytes, TrafficClass::DramRead,
                  std::move(on_done),
                  makeTag(TrafficClass::DramRead, ctx));
}

Tick
DmaEngine::writeToDram(std::uint64_t bytes, Callback on_done,
                       std::uint64_t stream_hint, const TransferCtx &ctx)
{
    auto path = fabric_.path(port_, dramPort_);
    path.insert(path.begin(), &localSpm_.port());
    path.insert(path.begin(), &writeChannel_);
    auto mem = dram_.path(stream_hint);
    path.insert(path.end(), mem.begin(), mem.end());
    return launch(std::move(path), bytes, TrafficClass::DramWrite,
                  std::move(on_done),
                  makeTag(TrafficClass::DramWrite, ctx));
}

Tick
DmaEngine::forwardFrom(Scratchpad &producer, PortId producer_port,
                       std::uint64_t bytes, Callback on_done,
                       const TransferCtx &ctx)
{
    RELIEF_ASSERT(&producer != &localSpm_,
                  name(), ": use colocation, not forwarding, for the "
                  "local scratchpad");
    producer.recordRead(bytes);
    auto path = fabric_.path(producer_port, port_);
    path.insert(path.begin(), &producer.port());
    path.insert(path.begin(), &readChannel_);
    path.push_back(&localSpm_.port());
    return launch(std::move(path), bytes, TrafficClass::SpmForward,
                  std::move(on_done),
                  makeTag(TrafficClass::SpmForward, ctx));
}

Tick
DmaEngine::streamFrom(Scratchpad &producer, PortId producer_port,
                      std::uint64_t bytes, Callback on_done,
                      const TransferCtx &ctx)
{
    RELIEF_ASSERT(&producer != &localSpm_,
                  name(), ": streaming from the local scratchpad");
    producer.recordRead(bytes);
    localSpm_.recordWrite(bytes);
    forwardBytes_.add(bytes);

    auto path = fabric_.path(producer_port, port_);
    auto timing = reserveTransfer(path, now(), bytes,
                                  makeTag(TrafficClass::SpmForward, ctx));
    timing.end += config_.streamSetupLatency;
    fabric_.recordTransfer(timing.start, timing.end, bytes);
    DPRINTF(Dma, "stream ", bytes, " bytes, done at ", timing.end);
    outstanding_ += bytes;
    sim().at(timing.end, HostCat::Dma,
             [this, bytes, cb = std::move(on_done)]() {
                 outstanding_ -= bytes;
                 if (cb)
                     cb();
             },
             [this] { return name() + ".streamDone"; });
    return timing.end;
}

std::uint64_t
DmaEngine::bytesMoved(TrafficClass cls) const
{
    switch (cls) {
      case TrafficClass::DramRead:
        return dramReadBytes_.value();
      case TrafficClass::DramWrite:
        return dramWriteBytes_.value();
      case TrafficClass::SpmForward:
        return forwardBytes_.value();
    }
    return 0;
}

void
DmaEngine::resetStats()
{
    readChannel_.resetStats();
    writeChannel_.resetStats();
    dramReadBytes_.reset();
    dramWriteBytes_.reset();
    forwardBytes_.reset();
}

} // namespace relief
