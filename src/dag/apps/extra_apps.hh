/**
 * @file
 * Additional applications composed from the same seven elementary
 * accelerators (the paper's Section II premise: applications across
 * domains share kernels, so new apps are stitched from the existing
 * set rather than given dedicated hardware). These go beyond the
 * paper's five benchmarks and are used by examples and tests:
 *
 *  - sharpen:    unsharp masking — ISP, grayscale, Gaussian blur,
 *                elementwise subtract/scale/add;
 *  - sobel-view: gradient-magnitude visualization — the front half of
 *                Canny without NMS/hysteresis;
 *  - motion:     frame differencing with smoothing and thresholding —
 *                two ISP chains feeding elementwise |A - B|.
 */

#ifndef RELIEF_DAG_APPS_EXTRA_APPS_HH
#define RELIEF_DAG_APPS_EXTRA_APPS_HH

#include "dag/apps/apps.hh"
#include "kernels/image.hh"

namespace relief
{

/** Unsharp-mask sharpening. Functional leaf equals
 *  sharpenReference(). */
DagPtr buildSharpen(const AppConfig &config = {});

/** Sobel gradient magnitude. Functional leaf equals
 *  sobelViewReference(). */
DagPtr buildSobelView(const AppConfig &config = {});

/** Two-frame motion detection. Functional leaf equals
 *  motionReference(). */
DagPtr buildMotion(const AppConfig &config = {});

/** Reference implementations for validating the DAGs. */
Plane sharpenReference(const BayerImage &raw, float amount = 0.6f);
Plane sobelViewReference(const BayerImage &raw);
Plane motionReference(const BayerImage &frame_a, const BayerImage &frame_b,
                      float threshold = 0.08f);

} // namespace relief

#endif // RELIEF_DAG_APPS_EXTRA_APPS_HH
