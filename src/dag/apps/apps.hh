/**
 * @file
 * The five benchmark applications (paper Table V) as task DAGs.
 *
 * | Symbol | Benchmark                 | Input          | Deadline |
 * |   C    | Canny edge detection      | 128x128        | 16.6 ms  |
 * |   D    | Richardson-Lucy deblur    | 128x128, 5 it  | 16.6 ms  |
 * |   G    | GRU                       | 128 (seq 8)    |  7 ms    |
 * |   H    | Harris corner detection   | 128x128        | 16.6 ms  |
 * |   L    | LSTM                      | 128 (seq 8)    |  7 ms    |
 *
 * DAG shapes are derived from Fig. 1 and cross-checked against the
 * Table II compute-time arithmetic (see DESIGN.md). When `functional`
 * is set, every node carries a closure that computes its real output,
 * and the leaf output matches the reference pipelines in src/kernels.
 */

#ifndef RELIEF_DAG_APPS_APPS_HH
#define RELIEF_DAG_APPS_APPS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "dag/dag.hh"

namespace relief
{

/** Application identifiers (the paper's mix symbols). */
enum class AppId : char
{
    Canny = 'C',
    Deblur = 'D',
    Gru = 'G',
    Harris = 'H',
    Lstm = 'L',
};

/** All five applications in symbol order. */
extern const std::vector<AppId> allApps;

/** Builder knobs shared by all applications. */
struct AppConfig
{
    int width = 128;      ///< Image width (vision apps).
    int height = 128;     ///< Image height.
    int seqLen = 8;       ///< RNN sequence length.
    int deblurIters = 5;  ///< Richardson-Lucy iterations.
    bool functional = false; ///< Attach functional payloads.
    std::uint32_t seed = 1;  ///< Input/weight generator seed.
};

/** Relative deadline for @p app (Table V). */
Tick appDeadline(AppId app);

/** Full name, e.g. "canny". */
std::string appName(AppId app);

/** Build the (finalized) DAG for @p app. */
DagPtr buildApp(AppId app, const AppConfig &config = {});

/** Parse a mix string such as "CDL" into application ids. */
std::vector<AppId> parseMix(const std::string &mix);

// Individual builders (not finalized; buildApp() finalizes).
DagPtr buildCanny(const AppConfig &config);
DagPtr buildDeblur(const AppConfig &config);
DagPtr buildHarris(const AppConfig &config);
DagPtr buildGru(const AppConfig &config);
DagPtr buildLstm(const AppConfig &config);

/**
 * Expected functional leaf output of the GRU/LSTM DAGs built with the
 * same @p config, computed directly with the kernel-level cells
 * (src/kernels/rnn). Used to validate end-to-end DAG execution.
 */
std::vector<float> gruReferenceOutput(const AppConfig &config);
std::vector<float> lstmReferenceOutput(const AppConfig &config);

} // namespace relief

#endif // RELIEF_DAG_APPS_APPS_HH
