/**
 * @file
 * Canny, Richardson-Lucy deblur, and Harris DAG builders (Fig. 1 b-d).
 *
 * Functional mode attaches per-node closures whose composition equals
 * the reference pipelines in src/kernels/vision.* — the leaf node's
 * output is bit-identical to cannyReference()/harrisReference()/
 * richardsonLucy() on the same synthetic scene.
 */

#include <memory>
#include <utility>

#include "dag/apps/apps.hh"
#include "dag/apps/builder_util.hh"
#include "dag/apps/functional_util.hh"
#include "kernels/elemwise.hh"
#include "kernels/filters.hh"
#include "kernels/vision.hh"
#include "sim/logging.hh"

namespace relief
{

namespace
{

using appfn::Inputs;
using appfn::convFn;
using appfn::emFn;
using appfn::grayFn;
using appfn::ispFn;

} // namespace

DagPtr
buildCanny(const AppConfig &config)
{
    const int w = config.width, h = config.height;
    const std::uint32_t elems = std::uint32_t(w) * std::uint32_t(h);
    auto dag = std::make_shared<Dag>("canny", 'C');

    Node *n_isp = dag->addNode(simpleTask(AccType::ISP, elems),
                               "canny.isp");
    Node *n_gray = dag->addNode(simpleTask(AccType::Grayscale, elems),
                                "canny.gray");
    Node *n_blur = dag->addNode(convTask(5, elems), "canny.gauss5");
    Node *n_gx = dag->addNode(convTask(3, elems), "canny.sobel_x");
    Node *n_gy = dag->addNode(convTask(3, elems), "canny.sobel_y");
    Node *n_gx2 = dag->addNode(emTask(ElemOp::Sqr, 1, elems),
                               "canny.gx2");
    Node *n_gy2 = dag->addNode(emTask(ElemOp::Sqr, 1, elems),
                               "canny.gy2");
    Node *n_sum = dag->addNode(emTask(ElemOp::Add, 2, elems),
                               "canny.mag_sum");
    Node *n_mag = dag->addNode(emTask(ElemOp::Sqrt, 1, elems),
                               "canny.mag");
    Node *n_dir = dag->addNode(emTask(ElemOp::Atan2, 2, elems),
                               "canny.dir");
    Node *n_nms = dag->addNode(
        simpleTask(AccType::CannyNonMax, elems, 2), "canny.nms");
    Node *n_et = dag->addNode(simpleTask(AccType::EdgeTracking, elems),
                              "canny.edge_track");
    Node *n_boost = dag->addNode(emTask(ElemOp::Scale, 1, elems),
                                 "canny.boost");

    dag->addEdge(n_isp, n_gray);
    dag->addEdge(n_gray, n_blur);
    dag->addEdge(n_blur, n_gx);
    dag->addEdge(n_blur, n_gy);
    dag->addEdge(n_gx, n_gx2);
    dag->addEdge(n_gy, n_gy2);
    dag->addEdge(n_gx2, n_sum);
    dag->addEdge(n_gy2, n_sum);
    dag->addEdge(n_sum, n_mag);
    dag->addEdge(n_gy, n_dir); // atan2(gy, gx): operand order matters.
    dag->addEdge(n_gx, n_dir);
    dag->addEdge(n_mag, n_nms);
    dag->addEdge(n_dir, n_nms);
    dag->addEdge(n_nms, n_et);
    dag->addEdge(n_et, n_boost);

    if (config.functional) {
        const float low_t = 0.05f, high_t = 0.15f;
        n_isp->fn = ispFn(makeSyntheticScene(w, h, config.seed));
        n_gray->fn = grayFn(w, h);
        n_blur->fn = convFn(gaussianFilter(5), w, h);
        n_gx->fn = convFn(sobelX(), w, h);
        n_gy->fn = convFn(sobelY(), w, h);
        n_gx2->fn = emFn(ElemOp::Sqr);
        n_gy2->fn = emFn(ElemOp::Sqr);
        n_sum->fn = emFn(ElemOp::Add);
        n_mag->fn = emFn(ElemOp::Sqrt);
        n_dir->fn = emFn(ElemOp::Atan2);
        n_nms->fn = [w, h](const Inputs &in) {
            RELIEF_ASSERT(in.size() == 2, "canny NMS needs 2 inputs");
            return cannyNonMax(planeFromVec(*in[0], w, h),
                               planeFromVec(*in[1], w, h))
                .data();
        };
        n_et->fn = [w, h, low_t, high_t](const Inputs &in) {
            RELIEF_ASSERT(in.size() == 1, "edge tracking needs 1 input");
            return edgeTracking(planeFromVec(*in[0], w, h), low_t, high_t)
                .data();
        };
        n_boost->fn = emFn(ElemOp::Scale, 1.0f);
    }
    return dag;
}

DagPtr
buildDeblur(const AppConfig &config)
{
    const int w = config.width, h = config.height;
    const std::uint32_t elems = std::uint32_t(w) * std::uint32_t(h);
    auto dag = std::make_shared<Dag>("deblur", 'D');

    Filter2D psf = gaussianFilter(5, 1.2f);
    Filter2D mirrored = psf.flipped();

    Node *n_isp = dag->addNode(simpleTask(AccType::ISP, elems),
                               "deblur.isp");
    Node *n_gray = dag->addNode(simpleTask(AccType::Grayscale, elems),
                                "deblur.gray");
    dag->addEdge(n_isp, n_gray);

    if (config.functional) {
        n_isp->fn = ispFn(makeSyntheticScene(w, h, config.seed));
        n_gray->fn = grayFn(w, h);
    }

    Node *estimate = n_gray; // est_1 = observed image.
    for (int it = 0; it < config.deblurIters; ++it) {
        std::string prefix = "deblur.it" + std::to_string(it);
        Node *reblur = dag->addNode(convTask(5, elems),
                                    prefix + ".reblur");
        Node *ratio = dag->addNode(emTask(ElemOp::Div, 2, elems),
                                   prefix + ".ratio");
        Node *corr = dag->addNode(convTask(5, elems), prefix + ".corr");
        Node *update = dag->addNode(emTask(ElemOp::Mul, 2, elems),
                                    prefix + ".update");
        dag->addEdge(estimate, reblur);
        dag->addEdge(n_gray, ratio); // ratio = observed / reblurred
        dag->addEdge(reblur, ratio);
        dag->addEdge(ratio, corr);
        dag->addEdge(estimate, update); // update = est * correction
        dag->addEdge(corr, update);

        if (config.functional) {
            reblur->fn = convFn(psf, w, h);
            ratio->fn = emFn(ElemOp::Div);
            corr->fn = convFn(mirrored, w, h);
            update->fn = emFn(ElemOp::Mul);
        }
        estimate = update;
    }
    return dag;
}

DagPtr
buildHarris(const AppConfig &config)
{
    const int w = config.width, h = config.height;
    const std::uint32_t elems = std::uint32_t(w) * std::uint32_t(h);
    const float k = 0.04f;
    auto dag = std::make_shared<Dag>("harris", 'H');

    Node *n_isp = dag->addNode(simpleTask(AccType::ISP, elems),
                               "harris.isp");
    Node *n_gray = dag->addNode(simpleTask(AccType::Grayscale, elems),
                                "harris.gray");
    Node *n_ix = dag->addNode(convTask(3, elems), "harris.sobel_x");
    Node *n_iy = dag->addNode(convTask(3, elems), "harris.sobel_y");
    Node *n_ixx = dag->addNode(emTask(ElemOp::Sqr, 1, elems),
                               "harris.ixx");
    Node *n_iyy = dag->addNode(emTask(ElemOp::Sqr, 1, elems),
                               "harris.iyy");
    Node *n_ixy = dag->addNode(emTask(ElemOp::Mul, 2, elems),
                               "harris.ixy");
    Node *n_sxx = dag->addNode(convTask(5, elems), "harris.sxx");
    Node *n_syy = dag->addNode(convTask(5, elems), "harris.syy");
    Node *n_sxy = dag->addNode(convTask(5, elems), "harris.sxy");
    Node *n_det_a = dag->addNode(emTask(ElemOp::Mul, 2, elems),
                                 "harris.det_a");
    Node *n_det_b = dag->addNode(emTask(ElemOp::Sqr, 1, elems),
                                 "harris.det_b");
    Node *n_det = dag->addNode(emTask(ElemOp::Sub, 2, elems),
                               "harris.det");
    // Fused k*(sxx+syy)^2 stage: one elem-matrix task (DESIGN.md
    // documents this fusion; timing is a single EM task either way).
    Node *n_ktr2 = dag->addNode(emTask(ElemOp::Sqr, 2, elems),
                                "harris.ktrace2");
    Node *n_resp = dag->addNode(emTask(ElemOp::Sub, 2, elems),
                                "harris.response");
    Node *n_hnm = dag->addNode(
        simpleTask(AccType::HarrisNonMax, elems), "harris.nonmax");

    dag->addEdge(n_isp, n_gray);
    dag->addEdge(n_gray, n_ix);
    dag->addEdge(n_gray, n_iy);
    dag->addEdge(n_ix, n_ixx);
    dag->addEdge(n_iy, n_iyy);
    dag->addEdge(n_ix, n_ixy);
    dag->addEdge(n_iy, n_ixy);
    dag->addEdge(n_ixx, n_sxx);
    dag->addEdge(n_iyy, n_syy);
    dag->addEdge(n_ixy, n_sxy);
    dag->addEdge(n_sxx, n_det_a);
    dag->addEdge(n_syy, n_det_a);
    dag->addEdge(n_sxy, n_det_b);
    dag->addEdge(n_det_a, n_det);
    dag->addEdge(n_det_b, n_det);
    dag->addEdge(n_sxx, n_ktr2);
    dag->addEdge(n_syy, n_ktr2);
    dag->addEdge(n_det, n_resp);
    dag->addEdge(n_ktr2, n_resp);
    dag->addEdge(n_resp, n_hnm);

    if (config.functional) {
        n_isp->fn = ispFn(makeSyntheticScene(w, h, config.seed));
        n_gray->fn = grayFn(w, h);
        n_ix->fn = convFn(sobelX(), w, h);
        n_iy->fn = convFn(sobelY(), w, h);
        n_ixx->fn = emFn(ElemOp::Sqr);
        n_iyy->fn = emFn(ElemOp::Sqr);
        n_ixy->fn = emFn(ElemOp::Mul);
        Filter2D window = gaussianFilter(5);
        n_sxx->fn = convFn(window, w, h);
        n_syy->fn = convFn(window, w, h);
        n_sxy->fn = convFn(window, w, h);
        n_det_a->fn = emFn(ElemOp::Mul);
        n_det_b->fn = emFn(ElemOp::Sqr);
        n_det->fn = emFn(ElemOp::Sub);
        n_ktr2->fn = [k](const Inputs &in) {
            RELIEF_ASSERT(in.size() == 2, "ktrace2 needs 2 inputs");
            auto trace = elemwise(ElemOp::Add, *in[0], in[1]);
            auto trace2 = elemwise(ElemOp::Sqr, trace);
            return elemwise(ElemOp::Scale, trace2, nullptr, k);
        };
        n_resp->fn = emFn(ElemOp::Sub);
        n_hnm->fn = [w, h](const Inputs &in) {
            RELIEF_ASSERT(in.size() == 1, "harris NMS needs 1 input");
            return harrisNonMax(planeFromVec(*in[0], w, h)).data();
        };
    }
    return dag;
}

} // namespace relief
