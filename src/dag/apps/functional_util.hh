/**
 * @file
 * Shared functional-payload closures for the vision DAG builders:
 * elementwise stages, convolution stages, and the ISP/grayscale pair
 * with its packed [R|G|B] intermediate layout.
 */

#ifndef RELIEF_DAG_APPS_FUNCTIONAL_UTIL_HH
#define RELIEF_DAG_APPS_FUNCTIONAL_UTIL_HH

#include <utility>
#include <vector>

#include "dag/apps/builder_util.hh"
#include "dag/node.hh"
#include "kernels/elemwise.hh"
#include "kernels/filters.hh"
#include "kernels/vision.hh"
#include "sim/logging.hh"

namespace relief::appfn
{

using Inputs = std::vector<const std::vector<float> *>;

/** Closure running a unary/binary elementwise op on flat buffers. */
inline NodeFn
emFn(ElemOp op, float scalar = 1.0f)
{
    return [op, scalar](const Inputs &in) {
        RELIEF_ASSERT(!in.empty(), "elem node with no inputs");
        if (elemOpIsBinary(op)) {
            RELIEF_ASSERT(in.size() == 2,
                          "binary elem node needs 2 inputs");
            return elemwise(op, *in[0], in[1], scalar);
        }
        return elemwise(op, *in[0], nullptr, scalar);
    };
}

/** Closure convolving a single plane input with a captured filter. */
inline NodeFn
convFn(Filter2D filter, int w, int h)
{
    return [filter, w, h](const Inputs &in) {
        RELIEF_ASSERT(in.size() == 1, "conv node needs 1 input");
        RELIEF_ASSERT(in[0]->size() == std::size_t(w) * std::size_t(h),
                      "conv node input size mismatch");
        std::vector<float> out(in[0]->size());
        convolveBuf(in[0]->data(), w, h, filter, out.data());
        return out;
    };
}

/** ISP stage producing packed [R|G|B] planes from a captured raw
 *  sensor image. */
inline NodeFn
ispFn(BayerImage raw)
{
    return [raw = std::move(raw)](const Inputs &) {
        RgbImage rgb = isp(raw);
        std::vector<float> packed;
        packed.reserve(rgb.r.size() * 3);
        packed.insert(packed.end(), rgb.r.data().begin(),
                      rgb.r.data().end());
        packed.insert(packed.end(), rgb.g.data().begin(),
                      rgb.g.data().end());
        packed.insert(packed.end(), rgb.b.data().begin(),
                      rgb.b.data().end());
        return packed;
    };
}

/** Grayscale stage consuming the packed [R|G|B] layout. */
inline NodeFn
grayFn(int w, int h)
{
    return [w, h](const Inputs &in) {
        RELIEF_ASSERT(in.size() == 1, "grayscale node needs 1 input");
        const auto &packed = *in[0];
        std::size_t n = std::size_t(w) * std::size_t(h);
        RELIEF_ASSERT(packed.size() == 3 * n, "bad packed RGB size");
        // The packed [R|R|...|G|...|B] layout is already three channel
        // buffers — feed them to the luma kernel without repacking.
        std::vector<float> out(n);
        grayscaleBuf(packed.data(), packed.data() + n,
                     packed.data() + 2 * n, out.data(), n);
        return out;
    };
}

} // namespace relief::appfn

#endif // RELIEF_DAG_APPS_FUNCTIONAL_UTIL_HH
