#include "dag/apps/apps.hh"

#include "sim/logging.hh"

namespace relief
{

const std::vector<AppId> allApps = {AppId::Canny, AppId::Deblur,
                                    AppId::Gru, AppId::Harris,
                                    AppId::Lstm};

Tick
appDeadline(AppId app)
{
    switch (app) {
      case AppId::Canny:
      case AppId::Deblur:
      case AppId::Harris:
        return fromMs(16.6); // 60 FPS vision deadline.
      case AppId::Gru:
      case AppId::Lstm:
        return fromMs(7.0); // RNN deadline from prior work [59].
    }
    panic("unknown application");
}

std::string
appName(AppId app)
{
    switch (app) {
      case AppId::Canny:
        return "canny";
      case AppId::Deblur:
        return "deblur";
      case AppId::Gru:
        return "gru";
      case AppId::Harris:
        return "harris";
      case AppId::Lstm:
        return "lstm";
    }
    return "unknown";
}

DagPtr
buildApp(AppId app, const AppConfig &config)
{
    DagPtr dag;
    switch (app) {
      case AppId::Canny:
        dag = buildCanny(config);
        break;
      case AppId::Deblur:
        dag = buildDeblur(config);
        break;
      case AppId::Gru:
        dag = buildGru(config);
        break;
      case AppId::Harris:
        dag = buildHarris(config);
        break;
      case AppId::Lstm:
        dag = buildLstm(config);
        break;
    }
    RELIEF_ASSERT(dag != nullptr, "builder returned no DAG");
    dag->setRelativeDeadline(appDeadline(app));
    dag->finalize();
    return dag;
}

std::vector<AppId>
parseMix(const std::string &mix)
{
    std::vector<AppId> out;
    for (char c : mix) {
        switch (c) {
          case 'C':
            out.push_back(AppId::Canny);
            break;
          case 'D':
            out.push_back(AppId::Deblur);
            break;
          case 'G':
            out.push_back(AppId::Gru);
            break;
          case 'H':
            out.push_back(AppId::Harris);
            break;
          case 'L':
            out.push_back(AppId::Lstm);
            break;
          default:
            fatal("unknown application symbol '", c, "' in mix '", mix,
                  "'");
        }
    }
    return out;
}

} // namespace relief
