/**
 * @file
 * Shared helpers for the application DAG builders: TaskParams
 * factories and Plane <-> flat-vector adapters used by the functional
 * payloads.
 */

#ifndef RELIEF_DAG_APPS_BUILDER_UTIL_HH
#define RELIEF_DAG_APPS_BUILDER_UTIL_HH

#include <cstdint>
#include <vector>

#include "acc/compute_model.hh"
#include "kernels/image.hh"

namespace relief
{

/** TaskParams for an elem-matrix task. */
inline TaskParams
emTask(ElemOp op, int num_inputs, std::uint32_t elems)
{
    TaskParams p;
    p.type = AccType::ElemMatrix;
    p.op = op;
    p.numInputs = num_inputs;
    p.elems = elems;
    return p;
}

/** TaskParams for a convolution task with @p filter_size taps. */
inline TaskParams
convTask(int filter_size, std::uint32_t elems)
{
    TaskParams p;
    p.type = AccType::Convolution;
    p.filterSize = filter_size;
    p.numInputs = 1;
    p.elems = elems;
    return p;
}

/** TaskParams for a single-input fixed-function task of @p type. */
inline TaskParams
simpleTask(AccType type, std::uint32_t elems, int num_inputs = 1)
{
    TaskParams p;
    p.type = type;
    p.numInputs = num_inputs;
    p.elems = elems;
    return p;
}

/** Wrap a flat vector as a Plane of the given shape (copies). */
inline Plane
planeFromVec(const std::vector<float> &v, int width, int height)
{
    Plane p(width, height);
    p.data() = v;
    return p;
}

} // namespace relief

#endif // RELIEF_DAG_APPS_BUILDER_UTIL_HH
