/**
 * @file
 * GRU and LSTM DAG builders (Fig. 1 e-f).
 *
 * Every node is an elem-matrix task (the paper: GRU and LSTM map
 * exclusively onto elem-matrix), 14 nodes per GRU step and 17 per LSTM
 * step for 112/136 tasks at sequence length 8 — matching Table II's
 * task-count arithmetic (GRU: 1249.31 us / 10.94 us ~ 114 tasks).
 *
 * Gates use the elementwise (diagonal-weight) formulation; the
 * input-side pre-activations (w_g * x_t + b_g) are precomputed host
 * data fetched from DRAM, so each gate is the 3-task chain
 * mul(u_g, h) -> add(.., x_g) -> activation. The longest per-step
 * chain (through the candidate state) is 9 nodes, matching the paper's
 * "long, linear chains (up to 9 nodes)" observation.
 *
 * Task granularity: the per-task times in Tables I/II imply RNN
 * elem-matrix tasks process 16384 elements (batch-128 inference over a
 * 128-wide hidden state); functional payloads operate on that size and
 * compose to exactly gruSequence()/lstmSequence() from src/kernels/rnn.
 */

#include <memory>
#include <string>

#include "dag/apps/apps.hh"
#include "dag/apps/builder_util.hh"
#include "kernels/elemwise.hh"
#include "kernels/rnn.hh"
#include "sim/logging.hh"

namespace relief
{

namespace
{

using Inputs = std::vector<const std::vector<float> *>;

constexpr std::uint32_t rnnElems = 16384; // 128 batch x 128 hidden.

/** Deterministic input sequence for functional mode. */
std::vector<Vec>
makeInputs(int seq_len, std::uint32_t seed)
{
    std::uint32_t rng = seed ? seed : 1u;
    std::vector<Vec> xs;
    for (int t = 0; t < seq_len; ++t) {
        Vec x(rnnElems);
        for (auto &v : x) {
            rng ^= rng << 13;
            rng ^= rng >> 17;
            rng ^= rng << 5;
            v = float(rng % 10000) / 10000.0f - 0.5f;
        }
        xs.push_back(std::move(x));
    }
    return xs;
}

/** mul(u, parent) with the weight vector captured. */
NodeFn
mulWeightFn(Vec u)
{
    return [u = std::move(u)](const Inputs &in) {
        RELIEF_ASSERT(in.size() == 1, "recurrent mul needs 1 input");
        return elemwise(ElemOp::Mul, u, in[0]);
    };
}

/** mul(u, zero-state) for the first step (no hidden-state parent). */
NodeFn
mulWeightZeroFn()
{
    return [](const Inputs &) { return Vec(rnnElems, 0.0f); };
}

/** add(parent, captured pre-activation x_g = w*x + b). */
NodeFn
addPreactFn(Vec xg)
{
    return [xg = std::move(xg)](const Inputs &in) {
        RELIEF_ASSERT(in.size() == 1, "pre-activation add needs 1 input");
        return elemwise(ElemOp::Add, *in[0], &xg);
    };
}

NodeFn
unaryFn(ElemOp op)
{
    return [op](const Inputs &in) {
        RELIEF_ASSERT(in.size() == 1, "unary elem node needs 1 input");
        return elemwise(op, *in[0]);
    };
}

NodeFn
binaryFn(ElemOp op)
{
    return [op](const Inputs &in) {
        RELIEF_ASSERT(in.size() == 2, "binary elem node needs 2 inputs");
        return elemwise(op, *in[0], in[1]);
    };
}

/** Pre-activation vector w*x + b for functional mode. */
Vec
preact(const Vec &w, const Vec &x, const Vec &b)
{
    Vec wx = elemwise(ElemOp::Mul, w, &x);
    return elemwise(ElemOp::Add, wx, &b);
}

/**
 * Gate subgraph: mul(u, h) -> add(x_g) -> activation. Returns the
 * activation node. @p h may be null (first step: zero state).
 */
Node *
addGate(Dag &dag, const std::string &prefix, Node *h, ElemOp activation,
        bool functional, const Vec *u, Vec xg)
{
    Node *m = dag.addNode(emTask(ElemOp::Mul, 2, rnnElems),
                          prefix + ".mul");
    Node *a = dag.addNode(emTask(ElemOp::Add, 2, rnnElems),
                          prefix + ".add");
    Node *act = dag.addNode(emTask(activation, 1, rnnElems),
                            prefix + "." + elemOpName(activation));
    if (h)
        dag.addEdge(h, m);
    dag.addEdge(m, a);
    dag.addEdge(a, act);
    if (functional) {
        m->fn = h ? mulWeightFn(*u) : mulWeightZeroFn();
        a->fn = addPreactFn(std::move(xg));
        act->fn = unaryFn(activation);
    }
    return act;
}

} // namespace

std::vector<float>
gruReferenceOutput(const AppConfig &config)
{
    GruWeights w = makeGruWeights(int(rnnElems), config.seed + 17);
    return gruSequence(makeInputs(config.seqLen, config.seed), w);
}

std::vector<float>
lstmReferenceOutput(const AppConfig &config)
{
    LstmWeights w = makeLstmWeights(int(rnnElems), config.seed + 23);
    return lstmSequence(makeInputs(config.seqLen, config.seed), w).h;
}

DagPtr
buildGru(const AppConfig &config)
{
    auto dag = std::make_shared<Dag>("gru", 'G');
    const bool fun = config.functional;
    GruWeights w;
    std::vector<Vec> xs;
    if (fun) {
        w = makeGruWeights(int(rnnElems), config.seed + 17);
        xs = makeInputs(config.seqLen, config.seed);
    }

    Node *h = nullptr; // Hidden state entering the step (null = zeros).
    for (int t = 0; t < config.seqLen; ++t) {
        std::string p = "gru.t" + std::to_string(t);
        Vec xz, xr;
        if (fun) {
            xz = preact(w.wz, xs[std::size_t(t)], w.bz);
            xr = preact(w.wr, xs[std::size_t(t)], w.br);
        }
        Node *z = addGate(*dag, p + ".z", h, ElemOp::Sigmoid, fun, &w.uz,
                          std::move(xz));
        Node *r = addGate(*dag, p + ".r", h, ElemOp::Sigmoid, fun, &w.ur,
                          std::move(xr));

        // Candidate: c = tanh(uc * (r*h) + xc).
        Node *rh = dag->addNode(emTask(ElemOp::Mul, 2, rnnElems),
                                p + ".rh");
        dag->addEdge(r, rh);
        if (h)
            dag->addEdge(h, rh);
        Node *ucrh = dag->addNode(emTask(ElemOp::Mul, 2, rnnElems),
                                  p + ".ucrh");
        dag->addEdge(rh, ucrh);
        Node *cpre = dag->addNode(emTask(ElemOp::Add, 2, rnnElems),
                                  p + ".cpre");
        dag->addEdge(ucrh, cpre);
        Node *c = dag->addNode(emTask(ElemOp::Tanh, 1, rnnElems),
                               p + ".c");
        dag->addEdge(cpre, c);

        // Blend: h' = (1-z)*h + z*c.
        Node *omz = dag->addNode(emTask(ElemOp::OneMinus, 1, rnnElems),
                                 p + ".omz");
        dag->addEdge(z, omz);
        Node *keep = dag->addNode(emTask(ElemOp::Mul, 2, rnnElems),
                                  p + ".keep");
        dag->addEdge(omz, keep);
        if (h)
            dag->addEdge(h, keep);
        Node *zc = dag->addNode(emTask(ElemOp::Mul, 2, rnnElems),
                                p + ".zc");
        dag->addEdge(z, zc);
        dag->addEdge(c, zc);
        Node *hn = dag->addNode(emTask(ElemOp::Add, 2, rnnElems),
                                p + ".h");
        dag->addEdge(keep, hn);
        dag->addEdge(zc, hn);

        if (fun) {
            if (h) {
                rh->fn = binaryFn(ElemOp::Mul); // inputs: r, h
                keep->fn = binaryFn(ElemOp::Mul);
            } else {
                rh->fn = mulWeightZeroFn();
                // (1-z) * 0 = 0.
                keep->fn = mulWeightZeroFn();
            }
            ucrh->fn = mulWeightFn(w.uc);
            Vec xc2 = preact(w.wc, xs[std::size_t(t)], w.bc);
            cpre->fn = addPreactFn(std::move(xc2));
            c->fn = unaryFn(ElemOp::Tanh);
            omz->fn = unaryFn(ElemOp::OneMinus);
            zc->fn = binaryFn(ElemOp::Mul);
            hn->fn = binaryFn(ElemOp::Add);
        }
        h = hn;
    }
    return dag;
}

DagPtr
buildLstm(const AppConfig &config)
{
    auto dag = std::make_shared<Dag>("lstm", 'L');
    const bool fun = config.functional;
    LstmWeights w;
    std::vector<Vec> xs;
    if (fun) {
        w = makeLstmWeights(int(rnnElems), config.seed + 23);
        xs = makeInputs(config.seqLen, config.seed);
    }

    Node *h = nullptr;
    Node *c_state = nullptr;
    for (int t = 0; t < config.seqLen; ++t) {
        std::string p = "lstm.t" + std::to_string(t);
        Vec xi, xf, xo, xg;
        if (fun) {
            xi = preact(w.wi, xs[std::size_t(t)], w.bi);
            xf = preact(w.wf, xs[std::size_t(t)], w.bf);
            xo = preact(w.wo, xs[std::size_t(t)], w.bo);
            xg = preact(w.wc, xs[std::size_t(t)], w.bc);
        }
        Node *i = addGate(*dag, p + ".i", h, ElemOp::Sigmoid, fun, &w.ui,
                          std::move(xi));
        Node *f = addGate(*dag, p + ".f", h, ElemOp::Sigmoid, fun, &w.uf,
                          std::move(xf));
        Node *o = addGate(*dag, p + ".o", h, ElemOp::Sigmoid, fun, &w.uo,
                          std::move(xo));
        Node *g = addGate(*dag, p + ".g", h, ElemOp::Tanh, fun, &w.uc,
                          std::move(xg));

        // c' = f*c + i*g.
        Node *fc = dag->addNode(emTask(ElemOp::Mul, 2, rnnElems),
                                p + ".fc");
        dag->addEdge(f, fc);
        if (c_state)
            dag->addEdge(c_state, fc);
        Node *ig = dag->addNode(emTask(ElemOp::Mul, 2, rnnElems),
                                p + ".ig");
        dag->addEdge(i, ig);
        dag->addEdge(g, ig);
        Node *cn = dag->addNode(emTask(ElemOp::Add, 2, rnnElems),
                                p + ".c");
        dag->addEdge(fc, cn);
        dag->addEdge(ig, cn);

        // h' = o * tanh(c').
        Node *ct = dag->addNode(emTask(ElemOp::Tanh, 1, rnnElems),
                                p + ".ct");
        dag->addEdge(cn, ct);
        Node *hn = dag->addNode(emTask(ElemOp::Mul, 2, rnnElems),
                                p + ".h");
        dag->addEdge(o, hn);
        dag->addEdge(ct, hn);

        if (fun) {
            fc->fn = c_state ? binaryFn(ElemOp::Mul) : mulWeightZeroFn();
            ig->fn = binaryFn(ElemOp::Mul);
            cn->fn = binaryFn(ElemOp::Add);
            ct->fn = unaryFn(ElemOp::Tanh);
            hn->fn = binaryFn(ElemOp::Mul);
        }
        h = hn;
        c_state = cn;
    }
    return dag;
}

} // namespace relief
