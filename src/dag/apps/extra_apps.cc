#include "dag/apps/extra_apps.hh"

#include <memory>

#include "dag/apps/builder_util.hh"
#include "dag/apps/functional_util.hh"
#include "kernels/elemwise.hh"
#include "kernels/filters.hh"
#include "kernels/vision.hh"
#include "sim/logging.hh"

namespace relief
{

namespace
{

using appfn::Inputs;
using appfn::convFn;
using appfn::emFn;
using appfn::grayFn;
using appfn::ispFn;

} // namespace

Plane
sharpenReference(const BayerImage &raw, float amount)
{
    Plane gray = grayscale(isp(raw));
    Plane blurred = convolve(gray, gaussianFilter(5));
    Plane detail = elemwise(ElemOp::Sub, gray, &blurred);
    Plane boosted = elemwise(ElemOp::Scale, detail, nullptr, amount);
    return elemwise(ElemOp::Add, gray, &boosted);
}

Plane
sobelViewReference(const BayerImage &raw)
{
    Plane gray = grayscale(isp(raw));
    Plane gx = convolve(gray, sobelX());
    Plane gy = convolve(gray, sobelY());
    Plane gx2 = elemwise(ElemOp::Sqr, gx);
    Plane gy2 = elemwise(ElemOp::Sqr, gy);
    Plane sum = elemwise(ElemOp::Add, gx2, &gy2);
    return elemwise(ElemOp::Sqrt, sum);
}

Plane
motionReference(const BayerImage &frame_a, const BayerImage &frame_b,
                float threshold)
{
    Plane a = convolve(grayscale(isp(frame_a)), gaussianFilter(3));
    Plane b = convolve(grayscale(isp(frame_b)), gaussianFilter(3));
    Plane diff = elemwise(ElemOp::Sub, a, &b);
    Plane diff2 = elemwise(ElemOp::Sqr, diff);
    Plane mag = elemwise(ElemOp::Sqrt, diff2);
    // Threshold with edge tracking's hysteresis machinery: anything
    // above the threshold is motion.
    return edgeTracking(mag, threshold, threshold);
}

DagPtr
buildSharpen(const AppConfig &config)
{
    const int w = config.width, h = config.height;
    const std::uint32_t elems = std::uint32_t(w) * std::uint32_t(h);
    const float amount = 0.6f;
    auto dag = std::make_shared<Dag>("sharpen", 'S');

    Node *n_isp = dag->addNode(simpleTask(AccType::ISP, elems),
                               "sharpen.isp");
    Node *n_gray = dag->addNode(simpleTask(AccType::Grayscale, elems),
                                "sharpen.gray");
    Node *n_blur = dag->addNode(convTask(5, elems), "sharpen.blur");
    Node *n_detail = dag->addNode(emTask(ElemOp::Sub, 2, elems),
                                  "sharpen.detail");
    Node *n_boost = dag->addNode(emTask(ElemOp::Scale, 1, elems),
                                 "sharpen.boost");
    Node *n_out = dag->addNode(emTask(ElemOp::Add, 2, elems),
                               "sharpen.out");
    dag->addEdge(n_isp, n_gray);
    dag->addEdge(n_gray, n_blur);
    dag->addEdge(n_gray, n_detail); // detail = gray - blurred
    dag->addEdge(n_blur, n_detail);
    dag->addEdge(n_detail, n_boost);
    dag->addEdge(n_gray, n_out); // out = gray + boosted detail
    dag->addEdge(n_boost, n_out);

    if (config.functional) {
        n_isp->fn = ispFn(makeSyntheticScene(w, h, config.seed));
        n_gray->fn = grayFn(w, h);
        n_blur->fn = convFn(gaussianFilter(5), w, h);
        n_detail->fn = emFn(ElemOp::Sub);
        n_boost->fn = emFn(ElemOp::Scale, amount);
        n_out->fn = emFn(ElemOp::Add);
    }
    dag->setRelativeDeadline(fromMs(16.6));
    dag->finalize();
    return dag;
}

DagPtr
buildSobelView(const AppConfig &config)
{
    const int w = config.width, h = config.height;
    const std::uint32_t elems = std::uint32_t(w) * std::uint32_t(h);
    auto dag = std::make_shared<Dag>("sobel-view", 'V');

    Node *n_isp = dag->addNode(simpleTask(AccType::ISP, elems),
                               "sobel.isp");
    Node *n_gray = dag->addNode(simpleTask(AccType::Grayscale, elems),
                                "sobel.gray");
    Node *n_gx = dag->addNode(convTask(3, elems), "sobel.gx");
    Node *n_gy = dag->addNode(convTask(3, elems), "sobel.gy");
    Node *n_gx2 = dag->addNode(emTask(ElemOp::Sqr, 1, elems),
                               "sobel.gx2");
    Node *n_gy2 = dag->addNode(emTask(ElemOp::Sqr, 1, elems),
                               "sobel.gy2");
    Node *n_sum = dag->addNode(emTask(ElemOp::Add, 2, elems),
                               "sobel.sum");
    Node *n_mag = dag->addNode(emTask(ElemOp::Sqrt, 1, elems),
                               "sobel.mag");
    dag->addEdge(n_isp, n_gray);
    dag->addEdge(n_gray, n_gx);
    dag->addEdge(n_gray, n_gy);
    dag->addEdge(n_gx, n_gx2);
    dag->addEdge(n_gy, n_gy2);
    dag->addEdge(n_gx2, n_sum);
    dag->addEdge(n_gy2, n_sum);
    dag->addEdge(n_sum, n_mag);

    if (config.functional) {
        n_isp->fn = ispFn(makeSyntheticScene(w, h, config.seed));
        n_gray->fn = grayFn(w, h);
        n_gx->fn = convFn(sobelX(), w, h);
        n_gy->fn = convFn(sobelY(), w, h);
        n_gx2->fn = emFn(ElemOp::Sqr);
        n_gy2->fn = emFn(ElemOp::Sqr);
        n_sum->fn = emFn(ElemOp::Add);
        n_mag->fn = emFn(ElemOp::Sqrt);
    }
    dag->setRelativeDeadline(fromMs(16.6));
    dag->finalize();
    return dag;
}

DagPtr
buildMotion(const AppConfig &config)
{
    const int w = config.width, h = config.height;
    const std::uint32_t elems = std::uint32_t(w) * std::uint32_t(h);
    const float threshold = 0.08f;
    auto dag = std::make_shared<Dag>("motion", 'M');

    auto frame_chain = [&](const char *prefix, std::uint32_t seed,
                           Node *&smooth_out) {
        Node *n_isp = dag->addNode(simpleTask(AccType::ISP, elems),
                                   std::string(prefix) + ".isp");
        Node *n_gray = dag->addNode(
            simpleTask(AccType::Grayscale, elems),
            std::string(prefix) + ".gray");
        Node *n_smooth = dag->addNode(convTask(3, elems),
                                      std::string(prefix) + ".smooth");
        dag->addEdge(n_isp, n_gray);
        dag->addEdge(n_gray, n_smooth);
        if (config.functional) {
            n_isp->fn = ispFn(makeSyntheticScene(w, h, seed));
            n_gray->fn = grayFn(w, h);
            n_smooth->fn = convFn(gaussianFilter(3), w, h);
        }
        smooth_out = n_smooth;
    };

    Node *a = nullptr, *b = nullptr;
    frame_chain("motion.a", config.seed, a);
    frame_chain("motion.b", config.seed + 1, b);

    Node *n_diff = dag->addNode(emTask(ElemOp::Sub, 2, elems),
                                "motion.diff");
    Node *n_diff2 = dag->addNode(emTask(ElemOp::Sqr, 1, elems),
                                 "motion.diff2");
    Node *n_mag = dag->addNode(emTask(ElemOp::Sqrt, 1, elems),
                               "motion.mag");
    Node *n_mask = dag->addNode(
        simpleTask(AccType::EdgeTracking, elems), "motion.mask");
    dag->addEdge(a, n_diff);
    dag->addEdge(b, n_diff);
    dag->addEdge(n_diff, n_diff2);
    dag->addEdge(n_diff2, n_mag);
    dag->addEdge(n_mag, n_mask);

    if (config.functional) {
        n_diff->fn = emFn(ElemOp::Sub);
        n_diff2->fn = emFn(ElemOp::Sqr);
        n_mag->fn = emFn(ElemOp::Sqrt);
        n_mask->fn = [w, h, threshold](const Inputs &in) {
            RELIEF_ASSERT(in.size() == 1, "motion mask needs 1 input");
            return edgeTracking(planeFromVec(*in[0], w, h), threshold,
                                threshold)
                .data();
        };
    }
    dag->setRelativeDeadline(fromMs(16.6));
    dag->finalize();
    return dag;
}

} // namespace relief
