#include "dag/dag.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

namespace relief
{

namespace
{
/**
 * Node id allocator. Thread-local so concurrent experiments on a
 * parallel runner's workers never race: ids are unique within a
 * thread, and every DAG of one simulation is built on that
 * simulation's thread. Experiment entry points call resetNodeIds()
 * so a simulation's ids are a pure function of its configuration —
 * ids feed DRAM stream hints, so this is what keeps results
 * bit-identical across --jobs values.
 */
thread_local NodeId nextNodeId = 1;
} // namespace

void
resetNodeIds(NodeId base)
{
    nextNodeId = base;
}

void
Node::resetRuntimeState()
{
    status = NodeStatus::Waiting;
    completedParents = 0;
    deadline = 0;
    scoreDeadline = 0;
    predictedRuntime = 0;
    laxityKey = 0;
    isFwd = false;
    producerRefs.assign(parents.size(), ProducerRef{});
    inputSources.assign(parents.size(), InputSource::Dram);
    readyAt = 0;
    launchedAt = 0;
    finishedAt = 0;
    actualMemTime = 0;
    lifecycle = NodeLifecycle{};
    outputData.clear();
}

Tick
nominalNodeRuntime(const Node &node, double dram_peak_gbs)
{
    if (node.fixedRuntime)
        return node.fixedRuntime;
    Tick compute = computeTime(node.params);
    std::uint64_t bytes =
        std::uint64_t(node.params.numInputs) * node.inputOperandSize() +
        node.outputSize();
    return compute + transferTime(bytes, dram_peak_gbs);
}

Dag::Dag(std::string name, char symbol)
    : name_(std::move(name)), symbol_(symbol)
{
}

Node *
Dag::addNode(const TaskParams &params, std::string label)
{
    RELIEF_ASSERT(!finalized_, name_, ": addNode after finalize");
    auto node = std::make_unique<Node>();
    node->id = nextNodeId++;
    node->dag = this;
    node->indexInDag = int(nodes_.size());
    node->label = std::move(label);
    node->params = params;
    nodes_.push_back(std::move(node));
    return nodes_.back().get();
}

void
Dag::addEdge(Node *parent, Node *child)
{
    RELIEF_ASSERT(!finalized_, name_, ": addEdge after finalize");
    RELIEF_ASSERT(parent && child, name_, ": null edge endpoint");
    RELIEF_ASSERT(parent->dag == this && child->dag == this,
                  name_, ": cross-DAG edge");
    RELIEF_ASSERT(parent != child, name_, ": self edge on ",
                  parent->label);
    // Insertion order is the topological order; enforcing parent-first
    // keeps every downstream traversal a simple forward scan.
    RELIEF_ASSERT(parent->indexInDag < child->indexInDag,
                  name_, ": edges must go forward in insertion order (",
                  parent->label, " -> ", child->label, ")");
    parent->children.push_back(child);
    child->parents.push_back(parent);
    ++numEdges_;
}

void
Dag::finalize(double dram_peak_gbs)
{
    RELIEF_ASSERT(!finalized_, name_, ": finalize twice");
    RELIEF_ASSERT(!nodes_.empty(), name_, ": empty DAG");
    RELIEF_ASSERT(relDeadline_ > 0, name_, ": no deadline set");

    const int n = numNodes();
    std::vector<Tick> runtime(std::size_t(n), 0);
    for (int i = 0; i < n; ++i)
        runtime[std::size_t(i)] =
            nominalNodeRuntime(*nodes_[std::size_t(i)], dram_peak_gbs);

    // up[i]: longest runtime path from any root ending at i, inclusive.
    std::vector<Tick> up(std::size_t(n), Tick(0));
    for (int i = 0; i < n; ++i) {
        const Node &node = *nodes_[std::size_t(i)];
        Tick best = 0;
        for (const Node *p : node.parents) {
            RELIEF_ASSERT(p->indexInDag < i, name_, ": topology broken");
            best = std::max(best, up[std::size_t(p->indexInDag)]);
        }
        up[std::size_t(i)] = best + runtime[std::size_t(i)];
    }

    // down[i]: longest runtime path from i, inclusive, to any leaf.
    std::vector<Tick> down(std::size_t(n), 0);
    for (int i = n - 1; i >= 0; --i) {
        const Node &node = *nodes_[std::size_t(i)];
        Tick best = 0;
        for (const Node *c : node.children)
            best = std::max(best, down[std::size_t(c->indexInDag)]);
        down[std::size_t(i)] = best + runtime[std::size_t(i)];
    }

    criticalPath_ = 0;
    for (int i = 0; i < n; ++i)
        criticalPath_ = std::max(criticalPath_, up[std::size_t(i)]);

    for (int i = 0; i < n; ++i) {
        Node &node = *nodes_[std::size_t(i)];
        // ALAP latest finish: DAG deadline minus the longest chain
        // strictly after this node.
        Tick after = down[std::size_t(i)] - runtime[std::size_t(i)];
        node.relDeadlineCp = after < relDeadline_ ? relDeadline_ - after
                                                  : runtime[std::size_t(i)];

        // SDR: cumulative share of the longest path through this node.
        Tick path = up[std::size_t(i)] + down[std::size_t(i)] -
                    runtime[std::size_t(i)];
        double sdr = path ? double(up[std::size_t(i)]) / double(path) : 1.0;
        node.relDeadlineSdr = Tick(sdr * double(relDeadline_));

        node.resetRuntimeState();
    }
    finalized_ = true;
}

std::vector<Node *>
Dag::allNodes()
{
    std::vector<Node *> out;
    out.reserve(nodes_.size());
    for (auto &node : nodes_)
        out.push_back(node.get());
    return out;
}

std::vector<Node *>
Dag::roots()
{
    std::vector<Node *> out;
    for (auto &node : nodes_)
        if (node->isRoot())
            out.push_back(node.get());
    return out;
}

std::vector<Node *>
Dag::leaves()
{
    std::vector<Node *> out;
    for (auto &node : nodes_)
        if (node->isLeaf())
            out.push_back(node.get());
    return out;
}

Tick
Dag::totalComputeTime() const
{
    Tick total = 0;
    for (const auto &node : nodes_) {
        total += node->fixedRuntime ? node->fixedRuntime
                                    : computeTime(node->params);
    }
    return total;
}

Tick
Dag::nodeRelativeDeadline(const Node &node, DeadlineScheme scheme) const
{
    RELIEF_ASSERT(finalized_, name_, ": deadline query before finalize");
    switch (scheme) {
      case DeadlineScheme::DagDeadline:
        return relDeadline_;
      case DeadlineScheme::CriticalPath:
        return node.relDeadlineCp;
      case DeadlineScheme::Sdr:
        return node.relDeadlineSdr;
    }
    panic("unknown deadline scheme");
}

void
Dag::writeDot(std::ostream &os) const
{
    // One fill color per accelerator type (pastel palette).
    static const char *palette[numAccTypes] = {
        "#f4cccc", "#fce5cd", "#fff2cc", "#d9ead3",
        "#d0e0e3", "#cfe2f3", "#d9d2e9"};

    os << "digraph \"" << name_ << "\" {\n";
    os << "  rankdir=TB;\n";
    os << "  label=\"" << name_ << " (deadline "
       << toMs(relDeadline_) << " ms)\";\n";
    os << "  node [shape=box, style=filled, fontsize=10];\n";
    for (const auto &node : nodes_) {
        os << "  n" << node->indexInDag << " [label=\"" << node->label
           << "\\n" << accTypeSymbol(node->params.type) << ", "
           << toUs(nominalNodeRuntime(*node)) << " us\", fillcolor=\""
           << palette[accIndex(node->params.type)] << "\"];\n";
    }
    for (const auto &node : nodes_) {
        for (const Node *child : node->children) {
            os << "  n" << node->indexInDag << " -> n"
               << child->indexInDag << ";\n";
        }
    }
    os << "}\n";
}

void
Dag::submit(Tick tick)
{
    RELIEF_ASSERT(finalized_, name_, ": submit before finalize");
    arrival_ = tick;
    finish_ = 0;
    numFinished_ = 0;
    for (auto &node : nodes_)
        node->resetRuntimeState();
}

} // namespace relief
