/**
 * @file
 * Text workload format: describe arbitrary task DAGs in a small
 * line-oriented language and run them through `relief_sim --workload`.
 *
 * Grammar (one statement per line, '#' comments):
 *
 *   dag <name> deadline_ms <float>     # open a DAG
 *   node <name> <ACC> [elems N] [filter N] [inputs N] [op NAME]
 *                                      [runtime_us X]
 *   edge <parent> <child>              # within the open DAG
 *   end                                # close the DAG
 *
 * <ACC> is a Table I symbol (I, G, C, EM, CNM, HNM, ET); `runtime_us`
 * overrides the calibrated timing model (fixedRuntime). Example:
 *
 *   dag pipeline deadline_ms 5.0
 *   node load I
 *   node gray G
 *   node blur C filter 3
 *   node stats EM op add inputs 2
 *   edge load gray
 *   edge gray blur
 *   edge gray stats
 *   edge blur stats
 *   end
 */

#ifndef RELIEF_DAG_WORKLOAD_FILE_HH
#define RELIEF_DAG_WORKLOAD_FILE_HH

#include <istream>
#include <string>
#include <vector>

#include "dag/dag.hh"

namespace relief
{

/** Parse workload text; throws FatalError with line numbers on bad
 *  input. Returned DAGs are finalized and ready to submit. */
std::vector<DagPtr> parseWorkload(std::istream &in);

/** Load a workload file from disk. */
std::vector<DagPtr> loadWorkloadFile(const std::string &path);

} // namespace relief

#endif // RELIEF_DAG_WORKLOAD_FILE_HH
