/**
 * @file
 * Task-DAG node (the paper's Table III structure).
 *
 * A node is one accelerator task. It records graph structure (parents/
 * children), the operation parameters driving the timing model, the
 * per-scheme relative deadlines computed at finalize time, and the
 * runtime bookkeeping the manager and scheduler maintain (status,
 * predicted runtime, laxity key, forwarding metadata, timestamps).
 */

#ifndef RELIEF_DAG_NODE_HH
#define RELIEF_DAG_NODE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "acc/compute_model.hh"
#include "sim/ticks.hh"

namespace relief
{

class Dag;
class Accelerator;

/** Node lifecycle. */
enum class NodeStatus : std::uint8_t
{
    Waiting,  ///< Some parent has not finished.
    Ready,    ///< In a ready queue.
    Running,  ///< Launched on an accelerator.
    Finished, ///< Completed; output produced.
};

/** How a node's input operand was satisfied (Fig. 5's categories). */
enum class InputSource : std::uint8_t
{
    Dram,      ///< Loaded from main memory.
    Forwarded, ///< Pulled from the producer's scratchpad.
    Colocated, ///< Produced in place on the same accelerator.
};

/** Which producer accelerator/partition holds a parent's output
 *  (paper Table III: producer_acc / producer_spm). */
struct ProducerRef
{
    Accelerator *acc = nullptr;
    int partition = -1;
};

/**
 * Tick-stamped phase transitions of one node execution, recorded by
 * the hardware manager:
 *
 *   submitted -> depsReady -> queued -> dispatched -> loadStart
 *             -> loadEnd (compute begins) -> computeEnd -> complete,
 *
 * plus the asynchronous write-back window [wbStart, wbEnd) when the
 * output went to DRAM. The CriticalPath analyzer consumes these
 * timelines to attribute end-to-end DAG latency to buckets
 * (src/manager/critical_path.hh).
 */
struct NodeLifecycle
{
    Tick submitted = 0;  ///< Owning DAG's submission was processed.
    Tick depsReady = 0;  ///< Last parent finished (roots: submitted).
    Tick queued = 0;     ///< Entered its ready queue (ISR+push done).
    Tick dispatched = 0; ///< Launch began on an accelerator.
    Tick loadStart = 0;  ///< Output partition allocated, inputs issued.
    Tick loadEnd = 0;    ///< All operands resident; compute begins.
    Tick computeEnd = 0; ///< Functional unit done; completion raised.
    Tick wbStart = 0;    ///< Write-back issued (0 when elided).
    Tick wbEnd = 0;      ///< Write-back delivered (0 when elided).
};

/**
 * Optional functional payload: computes the node's output buffer from
 * its parents' output buffers (in parent order). External operands are
 * captured inside the closure by the DAG builders.
 */
using NodeFn = std::function<std::vector<float>(
    const std::vector<const std::vector<float> *> &)>;

struct Node
{
    // --- Static structure (set by the builder) ---
    NodeId id = 0;            ///< Globally unique, > 0.
    Dag *dag = nullptr;       ///< Owning DAG.
    int indexInDag = -1;      ///< Position in the DAG's node list.
    std::string label;        ///< Debug label, e.g. "canny.sobel_x".
    TaskParams params;        ///< Operation for the timing model.
    std::vector<Node *> parents;
    std::vector<Node *> children;
    NodeFn fn;                ///< Optional functional payload.

    /** Runtime override for synthetic/example DAGs (0 = use model). */
    Tick fixedRuntime = 0;

    // --- Deadlines (relative to DAG arrival; set by Dag::finalize) ---
    Tick relDeadlineCp = 0;  ///< Critical-path (ALAP) sub-deadline.
    Tick relDeadlineSdr = 0; ///< HetSched SDR sub-deadline.

    // --- Scheduler/manager state ---
    NodeStatus status = NodeStatus::Waiting;
    std::uint32_t completedParents = 0;
    Tick deadline = 0;          ///< Absolute deadline (scheme applied).
    /** Policy-independent absolute deadline (critical-path scheme) the
     *  deadline-met statistics are scored against, so policies with
     *  different internal deadline assignments stay comparable. */
    Tick scoreDeadline = 0;
    Tick predictedRuntime = 0;  ///< Estimated at ready-queue insert.
    STick laxityKey = 0;        ///< deadline - predictedRuntime.
    bool isFwd = false;         ///< Promoted as a forwarding node.
    std::vector<ProducerRef> producerRefs; ///< Parallel to parents.
    std::vector<InputSource> inputSources; ///< Parallel to parents.

    // --- Outcome timestamps ---
    Tick readyAt = 0;
    Tick launchedAt = 0;
    Tick finishedAt = 0;
    Tick actualMemTime = 0; ///< Measured input-load + write-back time.
    NodeLifecycle lifecycle; ///< Full phase-transition timeline.

    /** Functional result (filled when fn is set and the node runs). */
    std::vector<float> outputData;

    /** Bytes this node's output occupies. */
    std::uint64_t outputSize() const { return outputBytes(params); }

    /** Bytes of one input operand. */
    std::uint64_t inputOperandSize() const
    {
        return inputBytesPerOperand(params);
    }

    /** Operands loaded from DRAM regardless of scheduling (weights,
     *  primary inputs): total declared inputs minus parent edges. */
    int
    externalInputs() const
    {
        int ext = params.numInputs - int(parents.size());
        return ext > 0 ? ext : 0;
    }

    /** True once finished before its (policy-independent) deadline. */
    bool
    deadlineMet() const
    {
        return status == NodeStatus::Finished &&
               finishedAt <= scoreDeadline;
    }

    bool isRoot() const { return parents.empty(); }
    bool isLeaf() const { return children.empty(); }

    /** Reset scheduler/outcome state so the DAG can be resubmitted. */
    void resetRuntimeState();
};

} // namespace relief

#endif // RELIEF_DAG_NODE_HH
