/**
 * @file
 * Task DAG: owns its nodes, validates structure, and computes the
 * per-scheme relative node deadlines every scheduling policy consumes.
 *
 * Deadline schemes (paper Section II-C):
 *  - DAG deadline (GEDF-D): every node inherits the DAG's deadline.
 *  - Critical-path / ALAP (GEDF-N, LL, LAX, RELIEF): a node's deadline
 *    is the DAG deadline minus the longest runtime chain strictly after
 *    it (its latest finish time).
 *  - SDR (HetSched): deadline_task = SDR x deadline_DAG, where the
 *    sub-deadline ratio is the node's cumulative share of the execution
 *    time of the longest path through it.
 */

#ifndef RELIEF_DAG_DAG_HH
#define RELIEF_DAG_DAG_HH

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "dag/node.hh"
#include "sim/ticks.hh"

namespace relief
{

/** Deadline-assignment scheme a policy uses. */
enum class DeadlineScheme : std::uint8_t
{
    DagDeadline,  ///< GEDF-D.
    CriticalPath, ///< GEDF-N, LL, LAX, RELIEF.
    Sdr,          ///< HetSched.
};

/**
 * Nominal runtime of a node under the Max predictors: profiled compute
 * time plus all input/output bytes over the peak DRAM bandwidth. Used
 * for critical-path analysis and as the default runtime prediction.
 */
Tick nominalNodeRuntime(const Node &node, double dram_peak_gbs = 12.8);

/**
 * Rewind this thread's node-id allocator. Ids seed DRAM stream hints,
 * so experiment entry points (runExperiment, relief_bench) reset them
 * before building DAGs to make each simulation's ids — and therefore
 * its results — independent of what ran earlier on the thread. Never
 * call mid-simulation: DAGs whose ids would collide must not meet in
 * one HardwareManager.
 */
void resetNodeIds(NodeId base = 1);

class Dag
{
  public:
    /**
     * @param name   Human-readable name, e.g. "canny".
     * @param symbol One-letter symbol used in mix labels (Table V).
     */
    Dag(std::string name, char symbol);

    Dag(const Dag &) = delete;
    Dag &operator=(const Dag &) = delete;

    /** Append a node; the DAG owns it. */
    Node *addNode(const TaskParams &params, std::string label);

    /** Declare @p parent -> @p child (parent order defines operand
     *  order for functional payloads). */
    void addEdge(Node *parent, Node *child);

    /** Set the relative deadline (from submission). */
    void setRelativeDeadline(Tick deadline) { relDeadline_ = deadline; }

    /**
     * Validate (acyclic, ids set) and compute per-node relative
     * deadlines for every scheme using @p dram_peak_gbs for nominal
     * runtimes. Must be called before submission.
     */
    void finalize(double dram_peak_gbs = 12.8);

    const std::string &name() const { return name_; }
    char symbol() const { return symbol_; }
    Tick relativeDeadline() const { return relDeadline_; }
    bool finalized() const { return finalized_; }

    int numNodes() const { return int(nodes_.size()); }
    int numEdges() const { return numEdges_; }
    Node *node(int index) { return nodes_[std::size_t(index)].get(); }
    const Node *node(int index) const
    {
        return nodes_[std::size_t(index)].get();
    }

    /** Nodes in insertion order (a valid topological order is enforced
     *  by finalize()). */
    std::vector<Node *> allNodes();
    std::vector<Node *> roots();
    std::vector<Node *> leaves();

    /** Sum of nominal runtimes along the longest path (critical path). */
    Tick criticalPathRuntime() const { return criticalPath_; }

    /** Sum of all nodes' nominal compute times. */
    Tick totalComputeTime() const;

    /** Relative deadline of @p node under @p scheme. */
    Tick nodeRelativeDeadline(const Node &node, DeadlineScheme scheme) const;

    /**
     * Graphviz export: one box per node (label, accelerator type,
     * nominal runtime), colored by accelerator type, with the DAG's
     * deadline in the graph label. Render with `dot -Tpdf`.
     */
    void writeDot(std::ostream &os) const;

    // --- Submission bookkeeping (managed by the hardware manager) ---

    /** Mark submission at @p tick; resets node runtime state. */
    void submit(Tick tick);

    Tick arrivalTick() const { return arrival_; }
    Tick absoluteDeadline() const { return arrival_ + relDeadline_; }

    /** Nodes finished so far in the current submission. */
    int numFinished() const { return numFinished_; }
    void noteNodeFinished() { ++numFinished_; }
    bool complete() const { return numFinished_ == numNodes(); }

    /** Completion time of the last node (valid once complete). */
    Tick finishTick() const { return finish_; }
    void setFinishTick(Tick tick) { finish_ = tick; }

    /**
     * Span-context id threaded through the hardware manager by the
     * serving layer (trace/span.hh): identifies which request this
     * DAG executes, so the attribution hook can finalize the request's
     * span tree at completion. 0 = no tracing context.
     */
    std::uint64_t spanContext() const { return spanContext_; }
    void setSpanContext(std::uint64_t context) { spanContext_ = context; }

    /**
     * QoS class this DAG's traffic is attributed to in the pressure
     * ledger (mem/pressure_ledger.hh). Index into the ledger's class
     * table; the serving layer sets it from the request's class,
     * batch workloads leave the default class 0.
     */
    int qosClass() const { return qosClass_; }
    void setQosClass(int qos_class) { qosClass_ = qos_class; }

  private:
    std::string name_;
    char symbol_;
    Tick relDeadline_ = 0;
    std::vector<std::unique_ptr<Node>> nodes_;
    int numEdges_ = 0;
    bool finalized_ = false;
    Tick criticalPath_ = 0;

    Tick arrival_ = 0;
    Tick finish_ = 0;
    int numFinished_ = 0;
    std::uint64_t spanContext_ = 0;
    int qosClass_ = 0;
};

/** Shared ownership alias used by workloads (mixes reuse app DAGs). */
using DagPtr = std::shared_ptr<Dag>;

} // namespace relief

#endif // RELIEF_DAG_DAG_HH
