#include "dag/workload_file.hh"

#include <fstream>
#include <map>
#include <memory>
#include <sstream>

#include "acc/acc_types.hh"
#include "sim/logging.hh"

namespace relief
{

namespace
{

AccType
accFromSymbol(const std::string &symbol, int line)
{
    for (AccType type : allAccTypes)
        if (symbol == accTypeSymbol(type))
            return type;
    fatal("workload line ", line, ": unknown accelerator '", symbol,
          "'");
}

ElemOp
opFromName(const std::string &name, int line)
{
    for (int i = 0; i <= int(ElemOp::OneMinus); ++i) {
        auto op = ElemOp(i);
        if (name == elemOpName(op))
            return op;
    }
    fatal("workload line ", line, ": unknown elem op '", name, "'");
}

double
numberArg(std::istringstream &words, const std::string &key, int line)
{
    double value = 0.0;
    if (!(words >> value))
        fatal("workload line ", line, ": '", key, "' needs a number");
    return value;
}

} // namespace

std::vector<DagPtr>
parseWorkload(std::istream &in)
{
    std::vector<DagPtr> dags;
    DagPtr current;
    std::map<std::string, Node *> names;
    std::string line;
    int line_no = 0;

    while (std::getline(in, line)) {
        ++line_no;
        std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        std::istringstream words(line);
        std::string verb;
        if (!(words >> verb))
            continue;

        if (verb == "dag") {
            if (current)
                fatal("workload line ", line_no,
                      ": previous dag not closed with 'end'");
            std::string name, key;
            double deadline_ms = 0.0;
            if (!(words >> name >> key) || key != "deadline_ms")
                fatal("workload line ", line_no,
                      ": expected 'dag <name> deadline_ms <ms>'");
            deadline_ms = numberArg(words, key, line_no);
            if (deadline_ms <= 0.0)
                fatal("workload line ", line_no,
                      ": deadline must be positive");
            current = std::make_shared<Dag>(name, name.empty() ? '?'
                                                               : name[0]);
            current->setRelativeDeadline(fromMs(deadline_ms));
            names.clear();
        } else if (verb == "node") {
            if (!current)
                fatal("workload line ", line_no, ": 'node' outside dag");
            std::string name, acc;
            if (!(words >> name >> acc))
                fatal("workload line ", line_no,
                      ": expected 'node <name> <ACC> ...'");
            if (names.count(name))
                fatal("workload line ", line_no, ": duplicate node '",
                      name, "'");
            TaskParams params;
            params.type = accFromSymbol(acc, line_no);
            Tick fixed_runtime = 0;
            std::string key;
            while (words >> key) {
                if (key == "elems") {
                    params.elems =
                        std::uint32_t(numberArg(words, key, line_no));
                } else if (key == "filter") {
                    params.filterSize =
                        int(numberArg(words, key, line_no));
                } else if (key == "inputs") {
                    params.numInputs =
                        int(numberArg(words, key, line_no));
                } else if (key == "op") {
                    std::string op_name;
                    if (!(words >> op_name))
                        fatal("workload line ", line_no,
                              ": 'op' needs a name");
                    params.op = opFromName(op_name, line_no);
                } else if (key == "runtime_us") {
                    fixed_runtime =
                        fromUs(numberArg(words, key, line_no));
                } else {
                    fatal("workload line ", line_no,
                          ": unknown node attribute '", key, "'");
                }
            }
            Node *node = current->addNode(
                params, current->name() + "." + name);
            node->fixedRuntime = fixed_runtime;
            names[name] = node;
        } else if (verb == "edge") {
            if (!current)
                fatal("workload line ", line_no, ": 'edge' outside dag");
            std::string parent, child;
            if (!(words >> parent >> child))
                fatal("workload line ", line_no,
                      ": expected 'edge <parent> <child>'");
            if (!names.count(parent) || !names.count(child))
                fatal("workload line ", line_no, ": unknown node in '",
                      parent, " -> ", child, "'");
            current->addEdge(names[parent], names[child]);
        } else if (verb == "end") {
            if (!current)
                fatal("workload line ", line_no, ": 'end' outside dag");
            current->finalize();
            dags.push_back(std::move(current));
            current.reset();
        } else {
            fatal("workload line ", line_no, ": unknown statement '",
                  verb, "'");
        }
    }
    if (current)
        fatal("workload file ended inside dag '", current->name(), "'");
    if (dags.empty())
        fatal("workload file defines no DAGs");
    return dags;
}

std::vector<DagPtr>
loadWorkloadFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot read workload file '", path, "'");
    return parseWorkload(in);
}

} // namespace relief
