#include "manager/hardware_manager.hh"

#include <algorithm>
#include <utility>

#include "sim/debug.hh"
#include "sim/logging.hh"

namespace relief
{

namespace
{

/**
 * Pressure-ledger attribution context of @p node's transfers: QoS
 * class from the owning DAG, request id from the serving span context
 * when present (batch runs fall back to the node id, debug only).
 */
TransferCtx
transferCtx(const Node *node)
{
    TransferCtx ctx;
    ctx.qosClass = std::uint8_t(node->dag->qosClass());
    ctx.requestId = node->dag->spanContext()
                        ? node->dag->spanContext()
                        : std::uint64_t(node->id);
    return ctx;
}

} // namespace

HardwareManager::HardwareManager(Simulator &sim, std::string name,
                                 std::unique_ptr<Policy> policy,
                                 std::unique_ptr<RuntimePredictor> predictor,
                                 std::vector<Accelerator *> accelerators,
                                 const ManagerConfig &config)
    : SimObject(sim, std::move(name)), policy_(std::move(policy)),
      predictor_(std::move(predictor)), config_(config)
{
    RELIEF_ASSERT(policy_ != nullptr, "manager needs a policy");
    RELIEF_ASSERT(predictor_ != nullptr, "manager needs a predictor");
    RELIEF_ASSERT(!accelerators.empty(), "manager needs accelerators");
    for (Accelerator *acc : accelerators) {
        AccState state;
        state.acc = acc;
        byType_[accIndex(acc->type())].push_back(int(accs_.size()));
        accs_.push_back(state);
    }
}

int
HardwareManager::idleCount(AccType type) const
{
    int count = 0;
    for (int idx : byType_[accIndex(type)]) {
        const AccState &state = accs_[std::size_t(idx)];
        if (state.current == nullptr)
            ++count;
    }
    return count;
}

int
HardwareManager::instanceCount(AccType type) const
{
    return int(byType_[accIndex(type)].size());
}

Tick
HardwareManager::occupyManager(Tick cost)
{
    if (!config_.modelSchedulingLatency)
        return now();
    Tick start = std::max(now(), managerFreeAt_);
    Tick end = start + cost;
    managerFreeAt_ = end;
    metrics_.managerBusyTime += cost;
    if (trace_)
        trace_->span(trace_->lane("manager"), "sched", start, end, "mgr");
    return end;
}

Tick
HardwareManager::actualComputeTime(const Node &node) const
{
    Tick base = node.fixedRuntime ? node.fixedRuntime
                                  : computeTime(node.params);
    if (config_.computeJitter <= 0.0)
        return base;
    // Deterministic per-node jitter in [-amplitude, +amplitude]: models
    // the tiny pipeline-level variation real accelerators exhibit. The
    // hash uses the stable node label so identical experiments replay
    // identically across processes.
    std::uint64_t h = std::hash<std::string>{}(node.label) * 2654435761ull;
    double unit = double((h >> 16) % 2001) / 1000.0 - 1.0;
    double scaled = double(base) * (1.0 + config_.computeJitter * unit);
    return scaled > 1.0 ? Tick(scaled) : Tick(1);
}

void
HardwareManager::submitDag(Dag *dag, Tick when)
{
    RELIEF_ASSERT(dag != nullptr, "submitting null DAG");
    RELIEF_ASSERT(dag->finalized(), "submitting unfinalized DAG ",
                  dag->name());
    Tick submit_cost =
        config_.modelSchedulingLatency ? config_.submitLatency : 0;
    sim().at(std::max(when, now()) + submit_cost, HostCat::Sched,
             [this, dag]() { beginDag(dag); },
             [this, dag] { return name() + ".submit." + dag->name(); });
}

void
HardwareManager::beginDag(Dag *dag)
{
    invalidateDagResidue(dag);
    dag->submit(now());

    DeadlineScheme scheme = policy_->deadlineScheme();
    std::vector<Node *> ready;
    for (Node *node : dag->allNodes()) {
        node->deadline = now() + dag->nodeRelativeDeadline(*node, scheme);
        node->scoreDeadline = now() + node->relDeadlineCp;
        node->lifecycle.submitted = now();
        if (node->isRoot()) {
            node->lifecycle.depsReady = now();
            ready.push_back(node);
        }
    }
    scheduleReadyNodes(std::move(ready));
}

void
HardwareManager::invalidateDagResidue(Dag *dag)
{
    for (AccState &state : accs_) {
        Scratchpad &spm = state.acc->spm();
        for (Node *node : dag->allNodes()) {
            int part = spm.findOutput(node->id);
            if (part >= 0 && spm.partition(part).ongoingReads == 0)
                spm.release(part);
        }
    }
}

void
HardwareManager::scheduleReadyNodes(std::vector<Node *> ready)
{
    if (ready.empty()) {
        tryLaunchAll();
        return;
    }

    Tick cost = config_.isrLatency;
    for (Node *node : ready) {
        Tick push =
            policy_->pushCost(queues_[accIndex(node->params.type)].size());
        metrics_.pushLatency.sample(double(push));
        metrics_.queueDepth.sample(
            double(queues_[accIndex(node->params.type)].size()));
        metrics_.queueDepthHist.sample(
            double(queues_[accIndex(node->params.type)].size()));
        DPRINTF(Sched, "node ", node->label, " ready for ",
                accTypeName(node->params.type));
        cost += push;
    }
    Tick done = occupyManager(cost);

    sim().at(done, HostCat::Sched,
             [this, ready = std::move(ready)]() {
                 SchedContext ctx;
                 ctx.now = now();
                 for (AccType type : allAccTypes)
                     ctx.idleCount[accIndex(type)] = idleCount(type);
                 for (Node *node : ready) {
                     node->status = NodeStatus::Ready;
                     node->readyAt = now();
                     node->lifecycle.queued = now();
                     node->predictedRuntime = predictor_->predict(*node);
                     node->laxityKey =
                         STick(node->deadline) -
                         STick(node->predictedRuntime);
                 }
                 policy_->onNodesReady(ready, ctx, queues_);
                 tryLaunchAll();
             },
             [this] { return name() + ".sched"; });
}

void
HardwareManager::tryLaunchAll()
{
    for (AccState &state : accs_) {
        if (state.current != nullptr)
            continue;
        auto &q = queues_[accIndex(state.acc->type())];
        if (q.empty())
            continue;
        Node *node =
            policy_->selectNext(state.acc->type(), queues_, now());
        if (node)
            beginLaunch(state, node);
    }
}

void
HardwareManager::beginLaunch(AccState &state, Node *node)
{
    RELIEF_ASSERT(state.current == nullptr,
                  state.acc->name(), ": launch while occupied");
    RELIEF_ASSERT(node->status == NodeStatus::Ready,
                  node->label, ": launching non-ready node");
    state.acc->acquire();
    state.current = node;
    node->status = NodeStatus::Running;
    node->launchedAt = now();
    node->lifecycle.dispatched = now();
    metrics_.queueWait.sample(double(now() - node->readyAt));
    metrics_.queueWaitUs.sample(toUs(now() - node->readyAt));
    DPRINTF(Sched, "launch ", node->label, " on ", state.acc->name(),
            node->isFwd ? " (forwarding)" : "");

    // Which local partitions hold parent outputs (colocation)?
    state.colocMask = 0;
    for (std::size_t i = 0; i < node->parents.size(); ++i) {
        if (canColocate(state, node, i)) {
            state.colocMask |=
                1u << unsigned(node->producerRefs[i].partition);
        }
    }
    tryAllocateAndIssue(state);
}

bool
HardwareManager::canColocate(const AccState &state, const Node *node,
                             std::size_t input_index) const
{
    const ProducerRef &ref = node->producerRefs[input_index];
    if (!config_.forwardingEnabled || ref.acc != state.acc ||
        ref.acc == nullptr) {
        return false;
    }
    const Node *parent = node->parents[input_index];
    if (state.acc->spm().findOutput(parent->id) != ref.partition)
        return false;
    // Paper rule: the scheduler colocates only with the previously
    // executed node. Data that was never written back is also read in
    // place — it exists nowhere else.
    return state.lastExecuted == parent ||
           !state.acc->spm().partition(ref.partition).writtenBack;
}

void
HardwareManager::tryAllocateAndIssue(AccState &state)
{
    Node *node = state.current;
    Scratchpad &spm = state.acc->spm();
    int out = spm.findFreeOutputPartition(state.colocMask);
    if (out < 0) {
        unsigned all_mask = (1u << unsigned(spm.numPartitions())) - 1;
        if ((state.colocMask & all_mask) != all_mask) {
            // Some non-colocated partition has active readers; retry
            // when a consumer's read completes (write-after-read
            // protection).
            state.waitingForSpm = true;
            return;
        }
        // Every partition holds a colocated operand of this very task:
        // waiting would deadlock. Demote one colocation to a main
        // memory read, freeing its partition for the output.
        int victim = 0;
        while (!(state.colocMask & (1u << unsigned(victim))))
            ++victim;
        state.colocMask &= ~(1u << unsigned(victim));
        if (spm.partition(victim).ongoingReads > 0) {
            state.waitingForSpm = true;
            return;
        }
        out = victim;
    }
    state.waitingForSpm = false;

    const SpmPartition &victim = spm.partition(out);
    if (victim.owner != 0) {
        if (victim.dataValid && !victim.writtenBack)
            evictPartition(*state.acc, out);
        spm.release(out);
    }
    spm.allocateOutput(out, node->id, node->outputSize());
    state.outputPartition = out;
    issueInputs(state);
}

void
HardwareManager::evictPartition(Accelerator &acc, int partition)
{
    // Reclaiming a partition whose data never reached DRAM: push it
    // back first so bypassed consumers can still load it from main
    // memory. (The paper's write-back rule makes this rare: outputs
    // are written back immediately unless every child is next in
    // line.)
    const SpmPartition &p = acc.spm().partition(partition);
    // Forced spill: the owning node is long retired, so the transfer
    // carries the spill traffic type and the default QoS class.
    TransferCtx ctx;
    ctx.requestId = std::uint64_t(p.owner);
    ctx.spill = true;
    acc.dma().writeToDram(p.bytes, nullptr, p.owner, ctx);
    acc.spm().markWrittenBack(partition);
}

void
HardwareManager::issueInputs(AccState &state)
{
    Node *node = state.current;
    state.inputStart = now();
    node->lifecycle.loadStart = now();
    state.pendingInputs = 0;

    const std::uint64_t operand = node->inputOperandSize();
    metrics_.baselineBytes +=
        std::uint64_t(node->params.numInputs) * operand +
        node->outputSize();

    auto on_input_done = [this, &state]() {
        if (--state.pendingInputs == 0)
            startCompute(state);
    };

    for (std::size_t i = 0; i < node->parents.size(); ++i) {
        Node *parent = node->parents[i];
        const ProducerRef &ref = node->producerRefs[i];
        ++metrics_.edgesConsumed;

        if (canColocate(state, node, i) &&
            (state.colocMask &
             (1u << unsigned(ref.partition)))) {
            // Colocation: the operand is already in the local SPM.
            node->inputSources[i] = InputSource::Colocated;
            ++metrics_.colocations;
            metrics_.colocatedBytes += operand;
            traceEdgeFlow(state, node, i, InputSource::Colocated);
            continue;
        }
        bool live = config_.forwardingEnabled && ref.acc != nullptr &&
                    ref.acc != state.acc &&
                    ref.acc->spm().findOutput(parent->id) == ref.partition;
        if (live) {
            // Forward: pull straight from the producer's scratchpad.
            node->inputSources[i] = InputSource::Forwarded;
            ++metrics_.forwards;
            traceEdgeFlow(state, node, i, InputSource::Forwarded);
            Scratchpad &producer_spm = ref.acc->spm();
            producer_spm.beginRead(ref.partition);
            ++state.pendingInputs;
            Accelerator *producer_acc = ref.acc;
            int producer_part = ref.partition;
            auto done = [this, &state, producer_acc, producer_part,
                         on_input_done]() {
                producer_acc->spm().endRead(producer_part);
                resumeStalledLaunches();
                on_input_done();
            };
            if (config_.forwardMechanism ==
                ForwardMechanism::StreamBuffer) {
                state.acc->dma().streamFrom(
                    producer_spm, producer_acc->dma().port(), operand,
                    std::move(done), transferCtx(node));
            } else {
                state.acc->dma().forwardFrom(
                    producer_spm, producer_acc->dma().port(), operand,
                    std::move(done), transferCtx(node));
            }
            continue;
        }
        // The producer's data is gone (or was written back): DRAM read.
        node->inputSources[i] = InputSource::Dram;
        ++metrics_.dramEdges;
        traceEdgeFlow(state, node, i, InputSource::Dram);
        ++state.pendingInputs;
        Tick end = state.acc->dma().readFromDram(operand, on_input_done,
                                                 parent->id,
                                                 transferCtx(node));
        if (end > now())
            predictor_->observeBandwidth(double(operand) /
                                         double(toNs(end - now())));
    }

    for (int e = 0; e < node->externalInputs(); ++e) {
        ++state.pendingInputs;
        // External buffers (weights, raw frames) get their own stream
        // identity so the banked model spreads them across banks.
        std::uint64_t stream = node->id * 16 + std::uint64_t(e) + 1;
        Tick end = state.acc->dma().readFromDram(operand, on_input_done,
                                                 stream,
                                                 transferCtx(node));
        if (end > now())
            predictor_->observeBandwidth(double(operand) /
                                         double(toNs(end - now())));
    }

    if (state.pendingInputs == 0)
        startCompute(state);
}

void
HardwareManager::traceEdgeFlow(const AccState &state, const Node *node,
                               std::size_t input_index,
                               InputSource source)
{
    if (!trace_)
        return;
    const Node *parent = node->parents[input_index];
    const ProducerRef &ref = node->producerRefs[input_index];
    if (ref.acc == nullptr)
        return; // Producer identity lost (resubmission residue).

    const char *category = source == InputSource::Forwarded
                               ? "forward"
                               : source == InputSource::Colocated
                                     ? "colocation"
                                     : "dram";
    // Arrow tail: the producer's completion — or, for an operand that
    // bounced through main memory, the write-back span on the
    // producer's ".wb" lane, which makes the DRAM round trip visually
    // explicit next to the direct forward/colocation arrows.
    int src_lane = trace_->lane(ref.acc->name());
    Tick src_time = parent->lifecycle.computeEnd;
    if (source == InputSource::Dram &&
        parent->lifecycle.wbStart != 0 &&
        parent->lifecycle.wbStart <= now()) {
        src_lane = trace_->lane(ref.acc->name() + ".wb");
        src_time = parent->lifecycle.wbStart;
    }
    trace_->flow(parent->label + " -> " + node->label, category,
                 src_lane, src_time, trace_->lane(state.acc->name()),
                 now());
}

void
HardwareManager::startCompute(AccState &state)
{
    Node *node = state.current;
    node->actualMemTime += now() - state.inputStart;
    node->lifecycle.loadEnd = now();
    Tick duration = actualComputeTime(*node);
    if (trace_) {
        int lane_id = trace_->lane(state.acc->name());
        trace_->span(lane_id, "~load " + node->label, state.inputStart,
                     now(), "dma");
        trace_->span(lane_id, node->label, now(), now() + duration,
                     "compute");
    }
    state.acc->startCompute(duration,
                            [this, &state]() { onComputeDone(state); });
}

void
HardwareManager::onComputeDone(AccState &state)
{
    Node *node = state.current;
    int partition = state.outputPartition;
    node->lifecycle.computeEnd = now();
    state.acc->spm().produceOutput(partition);

    if (node->fn) {
        // Functional payloads are real host compute (kernel math),
        // not scheduler bookkeeping — attribute them separately.
        HostProfScope prof(HostCat::Kernels);
        std::vector<const std::vector<float> *> inputs;
        inputs.reserve(node->parents.size());
        for (Node *parent : node->parents)
            inputs.push_back(&parent->outputData);
        node->outputData = node->fn(inputs);
    }

    state.current = nullptr;
    state.colocMask = 0;
    state.outputPartition = -1;
    state.lastExecuted = node;
    handleNodeCompletion(state, node, partition);
}

void
HardwareManager::handleNodeCompletion(AccState &state, Node *node,
                                      int partition)
{
    node->status = NodeStatus::Finished;
    node->finishedAt = now();
    ++metrics_.nodesFinished;
    if (node->deadlineMet())
        ++metrics_.nodeDeadlinesMet;

    // Compute-time prediction outcome (Table VIII).
    Tick predicted_compute = node->fixedRuntime
                                 ? node->fixedRuntime
                                 : computeTime(node->params);
    predictor_->recordComputeOutcome(predicted_compute,
                                     actualComputeTime(*node));

    Dag *dag = node->dag;
    dag->noteNodeFinished();
    if (dag->complete()) {
        dag->setFinishTick(now());
        ++metrics_.dagsFinished;
        if (now() <= dag->absoluteDeadline())
            ++metrics_.dagDeadlinesMet;
        // Attribute the finished execution before the completion
        // handler can resubmit the DAG (which resets the lifecycles).
        DagLatencyRecord attributed = CriticalPath::analyze(*dag);
        metrics_.sampleCriticalPath(attributed.buckets);
        DPRINTF(Sched, "dag ", dag->name(), " complete: latency ",
                attributed.latency(), " = queue ",
                attributed.buckets.queueWait, " + mgr ",
                attributed.buckets.managerOverhead, " + dma-in ",
                attributed.buckets.dmaIn, " + compute ",
                attributed.buckets.compute, " + dma-out ",
                attributed.buckets.dmaOut, " + stall ",
                attributed.buckets.depStall);
        // Span-tree assembly (serving layer) must see the record while
        // its node pointers and the lifecycle stamps are still live.
        if (onDagAttributed_)
            onDagAttributed_(dag, attributed);
        // The resubmission path reuses the same Node objects, so keep
        // only labels/ticks alive past this point, not node pointers.
        attributed.path.clear();
        latencyRecords_.push_back(std::move(attributed));
        if (onDagComplete_)
            onDagComplete_(dag);
    }

    // Record where this output lives so the children's drivers can
    // find it (Table III: producer_acc / producer_spm).
    std::vector<Node *> ready;
    for (Node *child : node->children) {
        for (std::size_t i = 0; i < child->parents.size(); ++i) {
            if (child->parents[i] == node) {
                child->producerRefs[i] =
                    ProducerRef{state.acc, partition};
            }
        }
        if (++child->completedParents ==
            std::uint32_t(child->parents.size())) {
            child->lifecycle.depsReady = now();
            ready.push_back(child);
        }
    }

    // ISR + scheduler run, serialized on the manager.
    Tick cost = config_.isrLatency;
    for (Node *r : ready) {
        Tick push =
            policy_->pushCost(queues_[accIndex(r->params.type)].size());
        metrics_.pushLatency.sample(double(push));
        metrics_.queueDepth.sample(
            double(queues_[accIndex(r->params.type)].size()));
        metrics_.queueDepthHist.sample(
            double(queues_[accIndex(r->params.type)].size()));
        DPRINTF(Sched, "node ", r->label, " ready for ",
                accTypeName(r->params.type), " (parent ", node->label,
                " finished)");
        cost += push;
    }
    Tick done = occupyManager(cost);
    AccState *state_ptr = &state;
    sim().at(done, HostCat::Sched,
             [this, state_ptr, node, partition,
              ready = std::move(ready)]() {
                 SchedContext ctx;
                 ctx.now = now();
                 for (AccType type : allAccTypes)
                     ctx.idleCount[accIndex(type)] = idleCount(type);
                 for (Node *r : ready) {
                     r->status = NodeStatus::Ready;
                     r->readyAt = now();
                     r->lifecycle.queued = now();
                     r->predictedRuntime = predictor_->predict(*r);
                     r->laxityKey = STick(r->deadline) -
                                    STick(r->predictedRuntime);
                 }
                 policy_->onNodesReady(ready, ctx, queues_);
                 handleWriteBack(*state_ptr, node, partition);

                 // Memory-time prediction outcome (Table VIII), now
                 // that the write-back decision is in.
                 Tick predicted_mem = node->predictedRuntime >=
                                              computeTime(node->params)
                                          ? node->predictedRuntime -
                                                computeTime(node->params)
                                          : 0;
                 if (!node->fixedRuntime) {
                     predictor_->recordMemoryOutcome(predicted_mem,
                                                     node->actualMemTime);
                 }
                 tryLaunchAll();
             },
             [this] { return name() + ".isr"; });
}

void
HardwareManager::handleWriteBack(AccState &state, Node *node,
                                 int partition)
{
    Scratchpad &spm = state.acc->spm();
    // The partition may already have been reclaimed (and written back)
    // by a subsequent launch on this accelerator.
    if (spm.findOutput(node->id) != partition)
        return;

    bool write_back = node->children.empty() ||
                      !config_.forwardingEnabled;
    for (Node *child : node->children) {
        if (write_back)
            break;
        if (child->status == NodeStatus::Running ||
            child->status == NodeStatus::Finished) {
            continue; // Already launched: it resolved its input.
        }
        const auto &q = queues_[accIndex(child->params.type)];
        int window = instanceCount(child->params.type);
        bool next_in_line = false;
        for (int slot = 0; slot < window && slot < int(q.size());
             ++slot) {
            if (q.at(std::size_t(slot)) == child) {
                next_in_line = true;
                break;
            }
        }
        if (!next_in_line) {
            write_back = true;
            break;
        }
    }

    if (!write_back) {
        ++metrics_.writebacksAvoided;
        return;
    }

    std::uint64_t bytes = node->outputSize();
    Tick issue = now();
    Tick end = state.acc->dma().writeToDram(bytes, nullptr, node->id,
                                            transferCtx(node));
    node->actualMemTime += end - issue;
    node->lifecycle.wbStart = issue;
    node->lifecycle.wbEnd = end;
    if (trace_) {
        trace_->span(trace_->lane(state.acc->name() + ".wb"),
                     "wb " + node->label, issue, end, "dma");
    }
    spm.markWrittenBack(partition);
    if (end > issue)
        predictor_->observeBandwidth(double(bytes) /
                                     double(toNs(end - issue)));
}

void
HardwareManager::resumeStalledLaunches()
{
    for (AccState &state : accs_) {
        if (state.waitingForSpm)
            tryAllocateAndIssue(state);
    }
}

} // namespace relief
