/**
 * @file
 * Critical-path latency attribution for finished DAGs.
 *
 * The hardware manager stamps every node's lifecycle transitions
 * (dag/node.hh NodeLifecycle). When a DAG completes, the CriticalPath
 * analyzer walks those timelines backwards from the last-finishing
 * node, at each step jumping to the parent whose completion gated the
 * node, and attributes every tick of end-to-end DAG latency to one of
 * six buckets:
 *
 *   queueWait       ready-queue residency (queued -> dispatched),
 *   managerOverhead ISR + sorted-insert serialization on the manager
 *                   timeline (depsReady -> queued),
 *   dmaIn           operand loading: DRAM reads, SPM-to-SPM forwards,
 *                   eviction write-backs blocking the output partition
 *                   (loadStart -> loadEnd),
 *   compute         functional-unit execution (loadEnd -> computeEnd),
 *   dmaOut          write-backs that delayed a successor. Zero under
 *                   the paper's asynchronous write-back rule — the
 *                   bucket exists to expose regressions should a model
 *                   change ever serialize write-backs into the path,
 *   depStall        scratchpad write-after-read stalls (dispatched ->
 *                   loadStart) and any residual wait on producers.
 *
 * The six buckets partition [arrival, finish] exactly: their sum
 * equals the measured end-to-end DAG latency (asserted in tests to
 * within one tick on every tier-1 workload). Per-DAG records feed the
 * `--latency-breakdown` table, RunMetrics histograms, the
 * relief-stats-v1 JSON export, and BENCH_relief.json.
 */

#ifndef RELIEF_MANAGER_CRITICAL_PATH_HH
#define RELIEF_MANAGER_CRITICAL_PATH_HH

#include <string>
#include <vector>

#include "dag/dag.hh"
#include "sim/ticks.hh"

namespace relief
{

/** Where the ticks of one DAG execution went (all six sum to the
 *  end-to-end latency). */
struct LatencyBreakdown
{
    Tick queueWait = 0;       ///< Ready-queue residency.
    Tick managerOverhead = 0; ///< ISR + policy insert serialization.
    Tick dmaIn = 0;           ///< Operand loading (DRAM / forward).
    Tick compute = 0;         ///< Functional-unit execution.
    Tick dmaOut = 0;          ///< Write-backs on the path (see file doc).
    Tick depStall = 0;        ///< SPM write-after-read + producer waits.

    Tick
    total() const
    {
        return queueWait + managerOverhead + dmaIn + compute + dmaOut +
               depStall;
    }
};

/** Bucket count and stable names/accessors for iteration (tables,
 *  JSON, stat registration). */
inline constexpr int numLatencyBuckets = 6;
const char *latencyBucketName(int index);         ///< "queue_wait", ...
Tick latencyBucket(const LatencyBreakdown &b, int index);

/** One finished DAG execution, attributed. */
struct DagLatencyRecord
{
    std::string dag;      ///< DAG name.
    Tick arrival = 0;     ///< Submission processed (manager clock).
    Tick finish = 0;      ///< Last node finished.
    int pathLength = 0;   ///< Nodes on the walked critical path.
    std::vector<const Node *> path; ///< Sink-first critical path.
    LatencyBreakdown buckets;

    Tick latency() const { return finish - arrival; }
};

class CriticalPath
{
  public:
    /**
     * Attribute @p dag's just-finished execution. Requires the DAG to
     * be complete with lifecycle stamps populated by the manager
     * (finish tick == last node's computeEnd).
     */
    static DagLatencyRecord analyze(const Dag &dag);
};

} // namespace relief

#endif // RELIEF_MANAGER_CRITICAL_PATH_HH
