#include "manager/critical_path.hh"

#include "sim/logging.hh"

namespace relief
{

const char *
latencyBucketName(int index)
{
    switch (index) {
      case 0:
        return "queue_wait";
      case 1:
        return "manager";
      case 2:
        return "dma_in";
      case 3:
        return "compute";
      case 4:
        return "dma_out";
      case 5:
        return "dep_stall";
    }
    panic("unknown latency bucket ", index);
}

Tick
latencyBucket(const LatencyBreakdown &b, int index)
{
    switch (index) {
      case 0:
        return b.queueWait;
      case 1:
        return b.managerOverhead;
      case 2:
        return b.dmaIn;
      case 3:
        return b.compute;
      case 4:
        return b.dmaOut;
      case 5:
        return b.depStall;
    }
    panic("unknown latency bucket ", index);
}

namespace
{

/** Ordered interval length; ticks are unsigned, so a stamp that ran
 *  backwards would otherwise wrap into an enormous bucket. */
Tick
segment(const Node &node, const char *what, Tick from, Tick to)
{
    RELIEF_ASSERT(to >= from, node.label, ": lifecycle ", what,
                  " runs backwards (", from, " -> ", to, ")");
    return to - from;
}

} // namespace

DagLatencyRecord
CriticalPath::analyze(const Dag &dag)
{
    RELIEF_ASSERT(dag.complete(), dag.name(),
                  ": critical-path analysis before completion");
    DagLatencyRecord record;
    record.dag = dag.name();
    record.arrival = dag.arrivalTick();
    record.finish = dag.finishTick();

    // The walk starts at the node that finished last and ends at a
    // root: each step covers [depsReady, computeEnd] of the current
    // node, and the jump to the gating parent is seamless because
    // depsReady is stamped at that parent's completion. The segments
    // therefore partition [arrival, finish] exactly — the analyzer's
    // core invariant (bucket sums == end-to-end latency).
    const Node *cur = nullptr;
    for (int i = 0; i < dag.numNodes(); ++i) {
        const Node *n = dag.node(i);
        RELIEF_ASSERT(n->status == NodeStatus::Finished, n->label,
                      ": unfinished node in a complete DAG");
        if (!cur || n->finishedAt > cur->finishedAt)
            cur = n;
    }

    LatencyBreakdown &b = record.buckets;
    while (cur) {
        const NodeLifecycle &lc = cur->lifecycle;
        b.compute += segment(*cur, "compute", lc.loadEnd, lc.computeEnd);
        b.dmaIn += segment(*cur, "load", lc.loadStart, lc.loadEnd);
        b.depStall +=
            segment(*cur, "spm-stall", lc.dispatched, lc.loadStart);
        b.queueWait +=
            segment(*cur, "queue-wait", lc.queued, lc.dispatched);
        b.managerOverhead +=
            segment(*cur, "manager", lc.depsReady, lc.queued);
        record.path.push_back(cur);

        if (cur->parents.empty()) {
            // Roots become dependency-ready the instant the submission
            // is processed; any residual (none today) is a stall on
            // the host side of the command queue.
            b.depStall += segment(*cur, "submit", record.arrival,
                                  lc.depsReady);
            cur = nullptr;
            continue;
        }
        const Node *gate = cur->parents.front();
        for (const Node *parent : cur->parents) {
            if (parent->finishedAt > gate->finishedAt)
                gate = parent;
        }
        // Write-backs are asynchronous (paper's write-back rule), so
        // the gating parent hands off at its compute completion; were
        // a model ever to serialize the write-back before releasing
        // children, the extra wait would surface here as dmaOut.
        Tick handoff = gate->finishedAt;
        if (gate->lifecycle.wbEnd > handoff &&
            lc.depsReady >= gate->lifecycle.wbEnd) {
            b.dmaOut += segment(*gate, "write-back", handoff,
                                gate->lifecycle.wbEnd);
            handoff = gate->lifecycle.wbEnd;
        }
        b.depStall += segment(*cur, "dep-wait", handoff, lc.depsReady);
        cur = gate;
    }
    record.pathLength = int(record.path.size());
    return record;
}

} // namespace relief
