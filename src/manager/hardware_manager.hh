/**
 * @file
 * The centralized hardware manager (paper Sections II-B and III-C2).
 *
 * A microcontroller-class manager, coherent with the CPUs, that:
 *  - accepts DAG submissions through the host interface,
 *  - services accelerator completion interrupts (ISR),
 *  - runs the pluggable scheduling policy over per-type ready queues,
 *  - launches tasks through driver functions that decide, per input
 *    operand, between colocation (data already in the local
 *    scratchpad), forwarding (SPM-to-SPM DMA from the producer), and a
 *    main-memory read,
 *  - applies the write-back rule: a finished node's output goes to
 *    DRAM immediately unless every child is next in line on its
 *    accelerator, and
 *  - enforces write-after-read ordering on producer scratchpad
 *    partitions via ongoing-read counts.
 *
 * Scheduling work is serialized through a modeled manager timeline
 * (ISR latency plus per-insert policy cost), reproducing Fig. 12's
 * property that scheduling overhead overlaps accelerator execution.
 */

#ifndef RELIEF_MANAGER_HARDWARE_MANAGER_HH
#define RELIEF_MANAGER_HARDWARE_MANAGER_HH

#include <array>
#include <functional>
#include <memory>
#include <vector>

#include "acc/accelerator.hh"
#include "dag/dag.hh"
#include "manager/run_metrics.hh"
#include "predict/runtime_predictor.hh"
#include "sched/policy.hh"
#include "sim/simulator.hh"
#include "trace/trace.hh"

namespace relief
{

/** How forwarded data physically moves between accelerators. */
enum class ForwardMechanism
{
    SpmDma,       ///< Consumer DMA reads the producer scratchpad.
    StreamBuffer, ///< AXI-stream-style producer/consumer FIFO.
};

/** Configuration for HardwareManager. */
struct ManagerConfig
{
    /** Forwarding hardware flavour (Section II background). */
    ForwardMechanism forwardMechanism = ForwardMechanism::SpmDma;
    Tick isrLatency = fromNs(400.0);  ///< Interrupt entry + driver call.
    /** Host interface cost (paper Section II-B): the CPU writes root
     *  nodes into the shared command queue and rings the manager;
     *  charged once per DAG submission. Default 0 keeps the deadline
     *  clock aligned with the requested submission tick. */
    Tick submitLatency = 0;
    bool modelSchedulingLatency = true; ///< Charge policy push costs.
    /** When false, the forwarding hardware is ignored: every operand
     *  moves through DRAM and every output is written back (the
     *  Table II "no forwarding" configuration). */
    bool forwardingEnabled = true;
    /** Deterministic compute-time jitter amplitude (fraction). Models
     *  the sub-0.1% run-to-run variation the paper measures
     *  (Observation 7); 0 disables. */
    double computeJitter = 0.0005;
};

class HardwareManager : public SimObject
{
  public:
    /**
     * @param sim          Simulation context.
     * @param name         Debug name.
     * @param policy       Scheduling policy (owned).
     * @param predictor    Runtime predictor (owned).
     * @param accelerators All accelerator instances (not owned).
     */
    HardwareManager(Simulator &sim, std::string name,
                    std::unique_ptr<Policy> policy,
                    std::unique_ptr<RuntimePredictor> predictor,
                    std::vector<Accelerator *> accelerators,
                    const ManagerConfig &config = {});

    /** Host interface: submit @p dag at tick @p when. */
    void submitDag(Dag *dag, Tick when);

    /** Register a callback fired when a DAG's last node completes. */
    void setDagCompletionHandler(std::function<void(Dag *)> handler)
    {
        onDagComplete_ = std::move(handler);
    }

    /**
     * Register a callback fired when a DAG's execution has just been
     * attributed by the critical-path analyzer, before the record's
     * node pointers are dropped. The serving layer assembles request
     * span trees here (trace/span.hh) — the record's `path` is still
     * populated and the DAG's lifecycle stamps are intact. Fired
     * before the completion handler.
     */
    using DagAttributionHandler =
        std::function<void(Dag *, const DagLatencyRecord &)>;
    void setDagAttributionHandler(DagAttributionHandler handler)
    {
        onDagAttributed_ = std::move(handler);
    }

    Policy &policy() { return *policy_; }
    RuntimePredictor &predictor() { return *predictor_; }

    /** Attach a trace recorder; the manager emits load / compute /
     *  write-back / scheduler spans plus one flow event (arrow) per
     *  satisfied DAG edge (nullptr disables). */
    void setTrace(TraceRecorder *trace) { trace_ = trace; }
    const RunMetrics &metrics() const { return metrics_; }
    const ReadyQueues &readyQueues() const { return queues_; }

    /** Critical-path attribution of every finished DAG execution, in
     *  completion order (see manager/critical_path.hh). */
    const std::vector<DagLatencyRecord> &latencyRecords() const
    {
        return latencyRecords_;
    }

    /** Idle instance count of @p type (RELIEF's max_forwards input). */
    int idleCount(AccType type) const;

    /** Total accelerator instances of @p type. */
    int instanceCount(AccType type) const;

  private:
    /** Per-instance execution state. */
    struct AccState
    {
        Accelerator *acc = nullptr;
        Node *current = nullptr;    ///< Task occupying the unit.
        bool waitingForSpm = false; ///< Launch stalled on a partition.
        int outputPartition = -1;   ///< Where current's output lands.
        unsigned colocMask = 0;     ///< Partitions read in place.
        int pendingInputs = 0;      ///< Outstanding input transfers.
        Tick inputStart = 0;        ///< When input loading began.
        /** Node that most recently executed here. The scheduler
         *  performs colocations by tracking the previously executed
         *  node on an accelerator (paper Section III-B), so only the
         *  immediately-following consumer reads in place. */
        const Node *lastExecuted = nullptr;
    };

    /** Start-of-submission bookkeeping for one DAG. */
    void beginDag(Dag *dag);

    /** Make nodes ready: predict runtimes, charge scheduling cost, and
     *  hand them to the policy, then try to launch. */
    void scheduleReadyNodes(std::vector<Node *> ready);

    /** Pull work onto every idle accelerator. */
    void tryLaunchAll();

    /** Attempt to start the launch sequence of @p node on @p state. */
    void beginLaunch(AccState &state, Node *node);

    /** Can @p node's @p input_index operand be read in place? */
    bool canColocate(const AccState &state, const Node *node,
                     std::size_t input_index) const;

    /** Allocate the output partition (evicting if needed) and issue
     *  inputs; stalls if every partition has active readers. */
    void tryAllocateAndIssue(AccState &state);

    /** Resume launches stalled on output-partition availability. */
    void resumeStalledLaunches();

    /** Issue input transfers and chain into compute. */
    void issueInputs(AccState &state);

    /** Emit the Perfetto flow arrow for one satisfied edge. */
    void traceEdgeFlow(const AccState &state, const Node *node,
                       std::size_t input_index, InputSource source);

    /** All inputs have landed: run the functional unit. */
    void startCompute(AccState &state);

    /** Compute finished: produce output, run functional payload,
     *  raise the completion interrupt. */
    void onComputeDone(AccState &state);

    /** ISR + scheduler (paper Algorithm 1 entry point). */
    void handleNodeCompletion(AccState &state, Node *node, int partition);

    /** Apply the write-back rule to @p node's fresh output. */
    void handleWriteBack(AccState &state, Node *node, int partition);

    /** Force a partition's data to DRAM so it can be reclaimed. */
    void evictPartition(Accelerator &acc, int partition);

    /** Release scratchpad residue a resubmitted DAG left behind. */
    void invalidateDagResidue(Dag *dag);

    /** Serialize @p cost on the manager timeline; returns completion
     *  tick (identity when latency modeling is off). */
    Tick occupyManager(Tick cost);

    /** Deterministic per-node compute duration (with jitter). */
    Tick actualComputeTime(const Node &node) const;

    std::unique_ptr<Policy> policy_;
    std::unique_ptr<RuntimePredictor> predictor_;
    std::vector<AccState> accs_;
    std::array<std::vector<int>, std::size_t(numAccTypes)> byType_;
    ManagerConfig config_;
    ReadyQueues queues_;
    RunMetrics metrics_;
    std::vector<DagLatencyRecord> latencyRecords_;
    Tick managerFreeAt_ = 0;
    std::function<void(Dag *)> onDagComplete_;
    DagAttributionHandler onDagAttributed_;
    TraceRecorder *trace_ = nullptr;
};

} // namespace relief

#endif // RELIEF_MANAGER_HARDWARE_MANAGER_HH
