/**
 * @file
 * Counters the hardware manager maintains while executing DAGs. These
 * are the raw inputs to every figure in the paper's evaluation; the
 * core facade combines them with memory/interconnect/accelerator stats
 * into a MetricsReport.
 */

#ifndef RELIEF_MANAGER_RUN_METRICS_HH
#define RELIEF_MANAGER_RUN_METRICS_HH

#include <cstdint>

#include "manager/critical_path.hh"
#include "sim/ticks.hh"
#include "stats/stats.hh"

namespace relief
{

struct RunMetrics
{
    // --- Edge outcomes (Fig. 4) ---
    std::uint64_t edgesConsumed = 0; ///< Parent edges satisfied.
    std::uint64_t forwards = 0;      ///< Satisfied SPM-to-SPM.
    std::uint64_t colocations = 0;   ///< Satisfied in place.
    std::uint64_t dramEdges = 0;     ///< Satisfied from main memory.

    // --- Traffic (Fig. 5) ---
    std::uint64_t colocatedBytes = 0;  ///< Bytes never moved.
    std::uint64_t baselineBytes = 0;   ///< All-DRAM reference volume.
    std::uint64_t writebacksAvoided = 0;

    // --- QoS (Figs. 8-10) ---
    std::uint64_t nodesFinished = 0;
    std::uint64_t nodeDeadlinesMet = 0;
    std::uint64_t dagsFinished = 0;
    std::uint64_t dagDeadlinesMet = 0;

    // --- Manager overhead (Fig. 12) ---
    Accum pushLatency;        ///< Modeled per-insert cost (ticks).
    Tick managerBusyTime = 0; ///< Total modeled manager occupancy.

    // --- Queueing behaviour ---
    Accum queueWait;  ///< Ready -> launch time per node (ticks).
    Accum queueDepth; ///< Ready-queue length sampled at each insert.
    /** Distribution of ready -> launch waits (microseconds). */
    Histogram queueWaitUs{0.0, 100.0, 20};
    /** Distribution of ready-queue lengths at insert. */
    Histogram queueDepthHist{0.0, 16.0, 16};

    // --- Critical-path latency attribution (one sample per finished
    // DAG, microseconds; see manager/critical_path.hh). The six
    // buckets of one DAG sum to its end-to-end latency. ---
    Histogram cpQueueWaitUs{0.0, 20000.0, 20};
    Histogram cpManagerUs{0.0, 1000.0, 20};
    Histogram cpDmaInUs{0.0, 20000.0, 20};
    Histogram cpComputeUs{0.0, 20000.0, 20};
    Histogram cpDmaOutUs{0.0, 20000.0, 20};
    Histogram cpDepStallUs{0.0, 20000.0, 20};
    /** End-to-end DAG latency (sum of the six buckets, us). */
    Histogram cpTotalUs{0.0, 50000.0, 25};

    /** Record one finished DAG's attribution into the histograms. */
    void
    sampleCriticalPath(const LatencyBreakdown &b)
    {
        cpQueueWaitUs.sample(toUs(b.queueWait));
        cpManagerUs.sample(toUs(b.managerOverhead));
        cpDmaInUs.sample(toUs(b.dmaIn));
        cpComputeUs.sample(toUs(b.compute));
        cpDmaOutUs.sample(toUs(b.dmaOut));
        cpDepStallUs.sample(toUs(b.depStall));
        cpTotalUs.sample(toUs(b.total()));
    }

    double
    nodeDeadlineFraction() const
    {
        return nodesFinished
                   ? double(nodeDeadlinesMet) / double(nodesFinished)
                   : 0.0;
    }

    double
    dagDeadlineFraction() const
    {
        return dagsFinished ? double(dagDeadlinesMet) / double(dagsFinished)
                            : 0.0;
    }

    /** forwards+colocations as a fraction of @p total_edges. */
    double
    forwardFraction(std::uint64_t total_edges) const
    {
        return total_edges
                   ? double(forwards + colocations) / double(total_edges)
                   : 0.0;
    }
};

} // namespace relief

#endif // RELIEF_MANAGER_RUN_METRICS_HH
