/**
 * @file
 * Functional implementations of the remaining vision accelerators (ISP,
 * grayscale, canny-non-max, harris-non-max, edge-tracking) plus whole
 * reference pipelines (Canny, Harris, Richardson-Lucy) used to validate
 * DAG execution end to end.
 */

#ifndef RELIEF_KERNELS_VISION_HH
#define RELIEF_KERNELS_VISION_HH

#include "kernels/filters.hh"
#include "kernels/image.hh"

namespace relief
{

/** ISP tuning knobs (demosaic is bilinear over RGGB). */
struct IspParams
{
    float gamma = 2.2f;
    // Rows of the 3x3 color-correction matrix.
    float ccm[3][3] = {{1.6f, -0.4f, -0.2f},
                       {-0.3f, 1.5f, -0.2f},
                       {-0.2f, -0.4f, 1.6f}};
};

/** Demosaic + color correction + gamma (paper Table I's ISP). */
RgbImage isp(const BayerImage &raw, const IspParams &params = {});

/** ITU-R BT.601 luma conversion. */
Plane grayscale(const RgbImage &rgb);

/** Raw-buffer BT.601 luma from three channel buffers (the DAG
 *  builders use this to skip the RgbImage repacking copies). */
void grayscaleBuf(const float *r, const float *g, const float *b,
                  float *out, std::size_t n);

/**
 * Canny non-maximum suppression: keep gradient magnitudes that are
 * local maxima along the quantized gradient direction.
 *
 * @param magnitude Gradient magnitude.
 * @param direction Gradient direction in radians (atan2(gy, gx)).
 */
Plane cannyNonMax(const Plane &magnitude, const Plane &direction);

/**
 * Double-threshold hysteresis: pixels above @p high_t are edges; pixels
 * above @p low_t connected (8-way) to an edge are boosted to edges; the
 * rest are suppressed. Output is a 0/1 edge map.
 */
Plane edgeTracking(const Plane &nms, float low_t, float high_t);

/** Keep 3x3-neighborhood maxima above zero; suppress everything else. */
Plane harrisNonMax(const Plane &response);

/** Full Canny edge detection (reference for the Canny DAG). */
Plane cannyReference(const BayerImage &raw, float low_t = 0.05f,
                     float high_t = 0.15f);

/** Full Harris corner response + non-max (reference for the Harris
 *  DAG). @p k is the Harris sensitivity constant. */
Plane harrisReference(const BayerImage &raw, float k = 0.04f);

/** Richardson-Lucy deconvolution (reference for the Deblur DAG). */
Plane richardsonLucy(const Plane &blurred, const Filter2D &psf,
                     int iterations);

} // namespace relief

#endif // RELIEF_KERNELS_VISION_HH
