/**
 * @file
 * Pooled scratch buffers for the functional kernels. The reference
 * pipelines (Canny, Harris, Richardson-Lucy) and the row-tiled
 * pipeline used to allocate whole intermediate Planes on every call;
 * the pool recycles that storage across calls on the same thread.
 *
 * The pool is thread-local and reset (buffers dropped, counters
 * zeroed) at every experiment entry point alongside resetNodeIds(),
 * so the `kernels.scratch_*` stats are a pure function of the run —
 * independent of what the worker thread executed before — preserving
 * the jobs-invariance contract.
 */

#ifndef RELIEF_KERNELS_SCRATCH_HH
#define RELIEF_KERNELS_SCRATCH_HH

#include <cstdint>
#include <vector>

#include "kernels/image.hh"

namespace relief
{

/** Thread-local recycler of float buffers. */
class ScratchPool
{
  public:
    /** The calling thread's pool. */
    static ScratchPool &forThread();

    /** Take a recycled buffer (unspecified contents, any size) or a
     *  fresh one; callers size/fill it themselves. */
    std::vector<float> acquire();

    /** Return a buffer for reuse (keeps at most a handful). */
    void release(std::vector<float> &&buf);

    /** Acquisitions served from the pool since the last reset(). */
    std::uint64_t reuses() const { return reuses_; }

    /** Acquisitions that had to allocate fresh storage. */
    std::uint64_t allocs() const { return allocs_; }

    /** Drop pooled buffers and zero the counters. */
    void reset();

  private:
    static constexpr std::size_t maxPooled = 64;

    std::vector<std::vector<float>> free_;
    std::uint64_t reuses_ = 0;
    std::uint64_t allocs_ = 0;
};

/** reset() the calling thread's pool — call where resetNodeIds() is
 *  called so scratch stats are deterministic per run. */
void resetKernelScratch();

/** RAII Plane drawing its storage from the thread's ScratchPool;
 *  zero-filled like a fresh Plane(w, h). */
class ScratchPlane
{
  public:
    ScratchPlane(int width, int height);
    ~ScratchPlane();

    ScratchPlane(const ScratchPlane &) = delete;
    ScratchPlane &operator=(const ScratchPlane &) = delete;

    Plane &operator*() { return plane_; }
    const Plane &operator*() const { return plane_; }
    Plane *operator->() { return &plane_; }
    const Plane *operator->() const { return &plane_; }

  private:
    Plane plane_;
};

/** RAII flat float buffer from the thread's ScratchPool
 *  (zero-filled). */
class ScratchVec
{
  public:
    explicit ScratchVec(std::size_t n);
    ~ScratchVec();

    ScratchVec(const ScratchVec &) = delete;
    ScratchVec &operator=(const ScratchVec &) = delete;

    float *data() { return vec_.data(); }
    const float *data() const { return vec_.data(); }
    std::size_t size() const { return vec_.size(); }

  private:
    std::vector<float> vec_;
};

} // namespace relief

#endif // RELIEF_KERNELS_SCRATCH_HH
