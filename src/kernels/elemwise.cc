#include "kernels/elemwise.hh"

#include <cmath>

#include "sim/logging.hh"

namespace relief
{

bool
elemOpIsBinary(ElemOp op)
{
    switch (op) {
      case ElemOp::Add:
      case ElemOp::Sub:
      case ElemOp::Mul:
      case ElemOp::Div:
      case ElemOp::Atan2:
        return true;
      default:
        return false;
    }
}

std::vector<float>
elemwise(ElemOp op, const std::vector<float> &a,
         const std::vector<float> *b, float scalar)
{
    if (elemOpIsBinary(op)) {
        RELIEF_ASSERT(b != nullptr, "binary elem op ", elemOpName(op),
                      " needs two operands");
        RELIEF_ASSERT(a.size() == b->size(),
                      "elem op operand size mismatch: ", a.size(), " vs ",
                      b->size());
    }

    std::vector<float> out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        float x = a[i];
        float y = b ? (*b)[i] : 0.0f;
        float v = 0.0f;
        switch (op) {
          case ElemOp::Add:
            v = x + y;
            break;
          case ElemOp::Sub:
            v = x - y;
            break;
          case ElemOp::Mul:
            v = x * y;
            break;
          case ElemOp::Div:
            // Guarded divide: Richardson-Lucy divides by a blurred
            // estimate that can reach zero in dark regions.
            v = std::abs(y) > 1e-12f ? x / y : 0.0f;
            break;
          case ElemOp::Sqr:
            v = x * x;
            break;
          case ElemOp::Sqrt:
            v = x > 0.0f ? std::sqrt(x) : 0.0f;
            break;
          case ElemOp::Atan2:
            v = std::atan2(x, y);
            break;
          case ElemOp::Tanh:
            v = std::tanh(x);
            break;
          case ElemOp::Sigmoid:
            v = 1.0f / (1.0f + std::exp(-x));
            break;
          case ElemOp::Scale:
            v = x * scalar;
            break;
          case ElemOp::OneMinus:
            v = 1.0f - x;
            break;
        }
        out[i] = v;
    }
    return out;
}

Plane
elemwise(ElemOp op, const Plane &a, const Plane *b, float scalar)
{
    if (b) {
        RELIEF_ASSERT(a.sameShape(*b), "elem op plane shape mismatch");
    }
    Plane out(a.width(), a.height());
    out.data() = elemwise(op, a.data(), b ? &b->data() : nullptr, scalar);
    return out;
}

} // namespace relief
