#include "kernels/elemwise.hh"

#include "kernels/simd/simd.hh"
#include "sim/hostprof.hh"
#include "sim/logging.hh"

namespace relief
{

bool
elemOpIsBinary(ElemOp op)
{
    switch (op) {
      case ElemOp::Add:
      case ElemOp::Sub:
      case ElemOp::Mul:
      case ElemOp::Div:
      case ElemOp::Atan2:
        return true;
      default:
        return false;
    }
}

void
elemwiseBuf(ElemOp op, const float *a, const float *b, float scalar,
            float *out, std::size_t n)
{
    HostProfScope prof(HostCat::Kernels);
    if (elemOpVectorized(op))
        kernelOps().elemRow(op, a, b, scalar, out, n);
    else
        elemScalarRow(op, a, b, scalar, out, n);
}

std::vector<float>
elemwise(ElemOp op, const std::vector<float> &a,
         const std::vector<float> *b, float scalar)
{
    if (elemOpIsBinary(op)) {
        RELIEF_ASSERT(b != nullptr, "binary elem op ", elemOpName(op),
                      " needs two operands");
        RELIEF_ASSERT(a.size() == b->size(),
                      "elem op operand size mismatch: ", a.size(), " vs ",
                      b->size());
    }

    std::vector<float> out(a.size());
    elemwiseBuf(op, a.data(), b != nullptr ? b->data() : nullptr, scalar,
                out.data(), a.size());
    return out;
}

Plane
elemwise(ElemOp op, const Plane &a, const Plane *b, float scalar)
{
    Plane out(a.width(), a.height());
    elemwiseInto(op, a, b, scalar, out);
    return out;
}

void
elemwiseInto(ElemOp op, const Plane &a, const Plane *b, float scalar,
             Plane &out)
{
    if (b != nullptr) {
        RELIEF_ASSERT(a.sameShape(*b), "elem op plane shape mismatch");
    }
    RELIEF_ASSERT(a.sameShape(out), "elem op output shape mismatch");
    if (elemOpIsBinary(op)) {
        RELIEF_ASSERT(b != nullptr, "binary elem op ", elemOpName(op),
                      " needs two operands");
    }
    elemwiseBuf(op, a.data().data(),
                b != nullptr ? b->data().data() : nullptr, scalar,
                out.data().data(), a.size());
}

} // namespace relief
