/**
 * @file
 * Image containers used by the functional kernel implementations.
 *
 * The timing model (src/acc) decides *when* a task finishes; these
 * kernels compute *what* it produces, so examples and tests can validate
 * whole pipelines end to end (a Canny DAG really detects edges).
 */

#ifndef RELIEF_KERNELS_IMAGE_HH
#define RELIEF_KERNELS_IMAGE_HH

#include <cstdint>
#include <vector>

namespace relief
{

/** Single-channel float image (row-major). */
class Plane
{
  public:
    Plane() = default;
    Plane(int width, int height, float fill = 0.0f);

    /** Like Plane(width, height) but reusing @p recycled's capacity
     *  (kernels/scratch.hh pooling); still zero-filled. */
    Plane(int width, int height, std::vector<float> &&recycled);

    int width() const { return width_; }
    int height() const { return height_; }
    std::size_t size() const { return data_.size(); }

    float &at(int x, int y) { return data_[idx(x, y)]; }
    float at(int x, int y) const { return data_[idx(x, y)]; }

    /** Pixel access with coordinates clamped to the border. */
    float clampedAt(int x, int y) const;

    std::vector<float> &data() { return data_; }
    const std::vector<float> &data() const { return data_; }

    bool sameShape(const Plane &other) const
    {
        return width_ == other.width_ && height_ == other.height_;
    }

    float minValue() const;
    float maxValue() const;
    double sum() const;

  private:
    std::size_t
    idx(int x, int y) const
    {
        return std::size_t(y) * std::size_t(width_) + std::size_t(x);
    }

    int width_ = 0;
    int height_ = 0;
    std::vector<float> data_;
};

/** Three-plane RGB image. */
struct RgbImage
{
    Plane r, g, b;

    RgbImage() = default;
    RgbImage(int width, int height)
        : r(width, height), g(width, height), b(width, height)
    {
    }

    int width() const { return r.width(); }
    int height() const { return r.height(); }
};

/** Raw Bayer-pattern sensor image (RGGB), 16-bit samples. */
struct BayerImage
{
    int width = 0;
    int height = 0;
    std::vector<std::uint16_t> data;

    BayerImage() = default;
    BayerImage(int w, int h)
        : width(w), height(h),
          data(std::size_t(w) * std::size_t(h), 0)
    {
    }

    std::uint16_t &
    at(int x, int y)
    {
        return data[std::size_t(y) * std::size_t(width) + std::size_t(x)];
    }

    std::uint16_t
    at(int x, int y) const
    {
        return data[std::size_t(y) * std::size_t(width) + std::size_t(x)];
    }
};

/** Deterministic synthetic test scene: gradient background, bright
 *  rectangle, and a dark disc — gives Canny clear edges and Harris
 *  clear corners. Rendered directly as a Bayer mosaic. */
BayerImage makeSyntheticScene(int width, int height, std::uint32_t seed);

} // namespace relief

#endif // RELIEF_KERNELS_IMAGE_HH
