#include "kernels/image.hh"

#include <algorithm>

namespace relief
{

Plane::Plane(int width, int height, float fill)
    : width_(width), height_(height),
      data_(std::size_t(width) * std::size_t(height), fill)
{
}

Plane::Plane(int width, int height, std::vector<float> &&recycled)
    : width_(width), height_(height), data_(std::move(recycled))
{
    data_.assign(std::size_t(width) * std::size_t(height), 0.0f);
}

float
Plane::clampedAt(int x, int y) const
{
    x = std::clamp(x, 0, width_ - 1);
    y = std::clamp(y, 0, height_ - 1);
    return at(x, y);
}

float
Plane::minValue() const
{
    return data_.empty() ? 0.0f
                         : *std::min_element(data_.begin(), data_.end());
}

float
Plane::maxValue() const
{
    return data_.empty() ? 0.0f
                         : *std::max_element(data_.begin(), data_.end());
}

double
Plane::sum() const
{
    double total = 0.0;
    for (float v : data_)
        total += v;
    return total;
}

BayerImage
makeSyntheticScene(int width, int height, std::uint32_t seed)
{
    BayerImage img(width, height);
    // Small xorshift generator for deterministic sensor noise.
    std::uint32_t rng = seed ? seed : 1u;
    auto next_noise = [&rng]() {
        rng ^= rng << 13;
        rng ^= rng >> 17;
        rng ^= rng << 5;
        return int(rng % 65) - 32; // +-32 counts of noise
    };

    int rect_x0 = width / 8, rect_x1 = width / 2;
    int rect_y0 = height / 8, rect_y1 = height / 2;
    int disc_cx = 3 * width / 4, disc_cy = 3 * height / 4;
    int disc_r = std::min(width, height) / 6;

    for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
            // Scene radiance per channel in [0, 1].
            float rr = 0.15f + 0.3f * float(x) / float(width);
            float gg = 0.15f + 0.3f * float(y) / float(height);
            float bb = 0.2f;
            bool in_rect = x >= rect_x0 && x < rect_x1 && y >= rect_y0 &&
                           y < rect_y1;
            int dx = x - disc_cx, dy = y - disc_cy;
            bool in_disc = dx * dx + dy * dy < disc_r * disc_r;
            if (in_rect) {
                rr = 0.9f;
                gg = 0.85f;
                bb = 0.3f;
            } else if (in_disc) {
                rr = 0.05f;
                gg = 0.05f;
                bb = 0.4f;
            }

            // RGGB mosaic.
            float sample;
            bool even_row = (y % 2) == 0;
            bool even_col = (x % 2) == 0;
            if (even_row && even_col)
                sample = rr;
            else if (!even_row && !even_col)
                sample = bb;
            else
                sample = gg;

            int counts = int(sample * 4095.0f) + next_noise();
            img.at(x, y) =
                std::uint16_t(std::clamp(counts, 0, 4095));
        }
    }
    return img;
}

} // namespace relief
