#include "kernels/scratch.hh"

#include <utility>

namespace relief
{

ScratchPool &
ScratchPool::forThread()
{
    thread_local ScratchPool pool;
    return pool;
}

std::vector<float>
ScratchPool::acquire()
{
    if (!free_.empty()) {
        std::vector<float> buf = std::move(free_.back());
        free_.pop_back();
        ++reuses_;
        return buf;
    }
    ++allocs_;
    return {};
}

void
ScratchPool::release(std::vector<float> &&buf)
{
    if (free_.size() < maxPooled)
        free_.push_back(std::move(buf));
}

void
ScratchPool::reset()
{
    free_.clear();
    reuses_ = 0;
    allocs_ = 0;
}

void
resetKernelScratch()
{
    ScratchPool::forThread().reset();
}

ScratchPlane::ScratchPlane(int width, int height)
    : plane_(width, height, ScratchPool::forThread().acquire())
{
}

ScratchPlane::~ScratchPlane()
{
    ScratchPool::forThread().release(std::move(plane_.data()));
}

ScratchVec::ScratchVec(std::size_t n)
    : vec_(ScratchPool::forThread().acquire())
{
    vec_.assign(n, 0.0f);
}

ScratchVec::~ScratchVec()
{
    ScratchPool::forThread().release(std::move(vec_));
}

} // namespace relief
