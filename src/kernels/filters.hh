/**
 * @file
 * 2-D convolution kernel (the `convolution` accelerator's function) and
 * standard filter factories. The hardware supports filters up to 5x5
 * (Table I), which the factories respect.
 */

#ifndef RELIEF_KERNELS_FILTERS_HH
#define RELIEF_KERNELS_FILTERS_HH

#include <array>

#include "kernels/image.hh"

namespace relief
{

/** Square convolution filter, edge length 1..5. */
class Filter2D
{
  public:
    explicit Filter2D(int size);

    int size() const { return size_; }

    float &at(int x, int y) { return taps_[idx(x, y)]; }
    float at(int x, int y) const { return taps_[idx(x, y)]; }

    /** Raw taps, row-major [y * size + x] — the layout the SIMD
     *  convRow primitive consumes (kernels/simd/simd.hh). */
    const float *taps() const { return taps_.data(); }

    /** Sum of all taps (1.0 for normalized smoothing filters). */
    float tapSum() const;

    /** 180-degree rotated copy (Richardson-Lucy's mirrored PSF). */
    Filter2D flipped() const;

  private:
    std::size_t
    idx(int x, int y) const
    {
        return std::size_t(y) * std::size_t(size_) + std::size_t(x);
    }

    int size_;
    std::array<float, 25> taps_{};
};

/** Normalized Gaussian smoothing filter (@p size 3 or 5). */
Filter2D gaussianFilter(int size, float sigma = 1.0f);

/** Normalized box filter. */
Filter2D boxFilter(int size);

/** Sobel horizontal-gradient filter (3x3). */
Filter2D sobelX();

/** Sobel vertical-gradient filter (3x3). */
Filter2D sobelY();

/** Identity filter of @p size (center tap 1). */
Filter2D identityFilter(int size);

/** Convolve @p input with @p filter, clamping at borders. */
Plane convolve(const Plane &input, const Filter2D &filter);

/** convolve() into an existing same-shape Plane (pooled scratch). */
void convolveInto(const Plane &input, const Filter2D &filter, Plane &out);

/** Raw-buffer convolve: @p src and @p dst are w*h row-major planes.
 *  The DAG builders use this to skip the Plane copies. */
void convolveBuf(const float *src, int w, int h, const Filter2D &filter,
                 float *dst);

/**
 * Separable convolution: horizontal @p row_taps pass then vertical
 * @p col_taps pass, border-clamped per pass. Equals convolve() with
 * the outer-product filter up to FP rounding (it reassociates), so it
 * is a distinct kernel, not a convolve() replacement.
 */
Plane convolveSeparable(const Plane &input,
                        const std::vector<float> &row_taps,
                        const std::vector<float> &col_taps);

/** Normalized 1-D Gaussian taps (pair with convolveSeparable). */
std::vector<float> gaussianTaps1d(int size, float sigma = 1.0f);

/** Fused gradient magnitude sqrt(gx^2 + gy^2), guarded exactly like
 *  the Sqr/Sqr/Add/Sqrt elemwise chain (bit-identical to it). */
Plane gradientMagnitude(const Plane &gx, const Plane &gy);

} // namespace relief

#endif // RELIEF_KERNELS_FILTERS_HH
