/**
 * @file
 * 2-D convolution kernel (the `convolution` accelerator's function) and
 * standard filter factories. The hardware supports filters up to 5x5
 * (Table I), which the factories respect.
 */

#ifndef RELIEF_KERNELS_FILTERS_HH
#define RELIEF_KERNELS_FILTERS_HH

#include <array>

#include "kernels/image.hh"

namespace relief
{

/** Square convolution filter, edge length 1..5. */
class Filter2D
{
  public:
    explicit Filter2D(int size);

    int size() const { return size_; }

    float &at(int x, int y) { return taps_[idx(x, y)]; }
    float at(int x, int y) const { return taps_[idx(x, y)]; }

    /** Sum of all taps (1.0 for normalized smoothing filters). */
    float tapSum() const;

    /** 180-degree rotated copy (Richardson-Lucy's mirrored PSF). */
    Filter2D flipped() const;

  private:
    std::size_t
    idx(int x, int y) const
    {
        return std::size_t(y) * std::size_t(size_) + std::size_t(x);
    }

    int size_;
    std::array<float, 25> taps_{};
};

/** Normalized Gaussian smoothing filter (@p size 3 or 5). */
Filter2D gaussianFilter(int size, float sigma = 1.0f);

/** Normalized box filter. */
Filter2D boxFilter(int size);

/** Sobel horizontal-gradient filter (3x3). */
Filter2D sobelX();

/** Sobel vertical-gradient filter (3x3). */
Filter2D sobelY();

/** Identity filter of @p size (center tap 1). */
Filter2D identityFilter(int size);

/** Convolve @p input with @p filter, clamping at borders. */
Plane convolve(const Plane &input, const Filter2D &filter);

} // namespace relief

#endif // RELIEF_KERNELS_FILTERS_HH
