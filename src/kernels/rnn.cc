#include "kernels/rnn.hh"

#include "kernels/elemwise.hh"
#include "kernels/simd/simd.hh"
#include "sim/hostprof.hh"
#include "sim/logging.hh"

namespace relief
{

namespace
{

/** xorshift-based deterministic weight generator. */
Vec
randomVec(int n, std::uint32_t &rng)
{
    Vec v(std::size_t(n), 0.0f);
    for (auto &x : v) {
        rng ^= rng << 13;
        rng ^= rng >> 17;
        rng ^= rng << 5;
        x = float(rng % 10000) / 10000.0f - 0.5f;
    }
    return v;
}

/** act(w*x + u*h + b), the pre-activation fused through the SIMD
 *  rnnGatePre primitive (bit-identical to the former Mul/Mul/Add/Add
 *  elemwise chain). */
Vec
gate(ElemOp activation, const Vec &w, const Vec &x, const Vec &u,
     const Vec &h, const Vec &b)
{
    RELIEF_ASSERT(w.size() == x.size() && u.size() == h.size() &&
                      w.size() == u.size() && w.size() == b.size(),
                  "RNN gate operand size mismatch");
    Vec pre(x.size());
    {
        HostProfScope prof(HostCat::Kernels);
        kernelOps().rnnGatePre(w.data(), x.data(), u.data(), h.data(),
                               b.data(), pre.data(), pre.size());
    }
    return elemwise(activation, pre);
}

} // namespace

GruWeights
makeGruWeights(int hidden, std::uint32_t seed)
{
    std::uint32_t rng = seed ? seed : 1u;
    GruWeights w;
    w.wz = randomVec(hidden, rng);
    w.uz = randomVec(hidden, rng);
    w.bz = randomVec(hidden, rng);
    w.wr = randomVec(hidden, rng);
    w.ur = randomVec(hidden, rng);
    w.br = randomVec(hidden, rng);
    w.wc = randomVec(hidden, rng);
    w.uc = randomVec(hidden, rng);
    w.bc = randomVec(hidden, rng);
    return w;
}

LstmWeights
makeLstmWeights(int hidden, std::uint32_t seed)
{
    std::uint32_t rng = seed ? seed : 1u;
    LstmWeights w;
    w.wi = randomVec(hidden, rng);
    w.ui = randomVec(hidden, rng);
    w.bi = randomVec(hidden, rng);
    w.wf = randomVec(hidden, rng);
    w.uf = randomVec(hidden, rng);
    w.bf = randomVec(hidden, rng);
    w.wo = randomVec(hidden, rng);
    w.uo = randomVec(hidden, rng);
    w.bo = randomVec(hidden, rng);
    w.wc = randomVec(hidden, rng);
    w.uc = randomVec(hidden, rng);
    w.bc = randomVec(hidden, rng);
    return w;
}

Vec
gruStep(const Vec &x, const Vec &h, const GruWeights &w)
{
    RELIEF_ASSERT(x.size() == h.size(), "GRU input/state size mismatch");
    Vec z = gate(ElemOp::Sigmoid, w.wz, x, w.uz, h, w.bz);
    Vec r = gate(ElemOp::Sigmoid, w.wr, x, w.ur, h, w.br);
    Vec rh = elemwise(ElemOp::Mul, r, &h);
    Vec c = gate(ElemOp::Tanh, w.wc, x, w.uc, rh, w.bc);
    Vec zc = elemwise(ElemOp::Mul, z, &c);
    Vec one_minus_z = elemwise(ElemOp::OneMinus, z);
    Vec keep = elemwise(ElemOp::Mul, one_minus_z, &h);
    return elemwise(ElemOp::Add, keep, &zc);
}

LstmState
lstmStep(const Vec &x, const LstmState &state, const LstmWeights &w)
{
    RELIEF_ASSERT(x.size() == state.h.size(),
                  "LSTM input/state size mismatch");
    Vec i = gate(ElemOp::Sigmoid, w.wi, x, w.ui, state.h, w.bi);
    Vec f = gate(ElemOp::Sigmoid, w.wf, x, w.uf, state.h, w.bf);
    Vec o = gate(ElemOp::Sigmoid, w.wo, x, w.uo, state.h, w.bo);
    Vec g = gate(ElemOp::Tanh, w.wc, x, w.uc, state.h, w.bc);
    Vec fc = elemwise(ElemOp::Mul, f, &state.c);
    Vec ig = elemwise(ElemOp::Mul, i, &g);
    LstmState next;
    next.c = elemwise(ElemOp::Add, fc, &ig);
    Vec tanh_c = elemwise(ElemOp::Tanh, next.c);
    next.h = elemwise(ElemOp::Mul, o, &tanh_c);
    return next;
}

Vec
gruSequence(const std::vector<Vec> &inputs, const GruWeights &w)
{
    RELIEF_ASSERT(!inputs.empty(), "GRU sequence is empty");
    Vec h(inputs.front().size(), 0.0f);
    for (const auto &x : inputs)
        h = gruStep(x, h, w);
    return h;
}

LstmState
lstmSequence(const std::vector<Vec> &inputs, const LstmWeights &w)
{
    RELIEF_ASSERT(!inputs.empty(), "LSTM sequence is empty");
    LstmState state;
    state.h.assign(inputs.front().size(), 0.0f);
    state.c.assign(inputs.front().size(), 0.0f);
    for (const auto &x : inputs)
        state = lstmStep(x, state, w);
    return state;
}

} // namespace relief
