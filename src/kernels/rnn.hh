/**
 * @file
 * GRU and LSTM cells built purely from elementwise operations.
 *
 * The paper's RNN applications map *exclusively* onto the elem-matrix
 * accelerator, i.e. the gates are computed with elementwise (diagonal
 * weight) products rather than dense matrix multiplies — the "light"
 * recurrent-unit formulation of its reference [41] (Ravanelli et al.).
 * Each gate g computes: act(w_g * x + u_g * h + b_g), all elementwise
 * over the 128-element hidden state, which is exactly the chain of
 * elem-matrix tasks the GRU/LSTM DAGs in Fig. 1(e,f) describe.
 */

#ifndef RELIEF_KERNELS_RNN_HH
#define RELIEF_KERNELS_RNN_HH

#include <cstdint>
#include <vector>

namespace relief
{

using Vec = std::vector<float>;

/** Elementwise (diagonal) GRU weights for one layer. */
struct GruWeights
{
    Vec wz, uz, bz; ///< Update gate.
    Vec wr, ur, br; ///< Reset gate.
    Vec wc, uc, bc; ///< Candidate state.
};

/** Elementwise (diagonal) LSTM weights for one layer. */
struct LstmWeights
{
    Vec wi, ui, bi; ///< Input gate.
    Vec wf, uf, bf; ///< Forget gate.
    Vec wo, uo, bo; ///< Output gate.
    Vec wc, uc, bc; ///< Cell candidate.
};

/** LSTM recurrent state. */
struct LstmState
{
    Vec h; ///< Hidden state.
    Vec c; ///< Cell state.
};

/** Deterministic small weights in (-0.5, 0.5) for tests/examples. */
GruWeights makeGruWeights(int hidden, std::uint32_t seed);
LstmWeights makeLstmWeights(int hidden, std::uint32_t seed);

/**
 * One GRU step: returns the next hidden state.
 *
 * z = sigmoid(wz*x + uz*h + bz); r = sigmoid(wr*x + ur*h + br);
 * c = tanh(wc*x + uc*(r*h) + bc); h' = (1-z)*h + z*c.
 */
Vec gruStep(const Vec &x, const Vec &h, const GruWeights &w);

/** One LSTM step: returns the next (hidden, cell) state. */
LstmState lstmStep(const Vec &x, const LstmState &state,
                   const LstmWeights &w);

/** Run a GRU over @p inputs, returning the final hidden state. */
Vec gruSequence(const std::vector<Vec> &inputs, const GruWeights &w);

/** Run an LSTM over @p inputs, returning the final state. */
LstmState lstmSequence(const std::vector<Vec> &inputs,
                       const LstmWeights &w);

} // namespace relief

#endif // RELIEF_KERNELS_RNN_HH
