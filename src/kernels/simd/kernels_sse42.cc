/**
 * @file
 * SSE4.2 backend (4 float lanes). This TU is the only one compiled
 * with -msse4.2 (see src/kernels/CMakeLists.txt); when the toolchain
 * can't target it the provider degrades to a nullptr stub and the
 * dispatcher skips the ISA.
 */

#include "kernels/simd/simd.hh"

#if defined(__SSE4_2__)
#include "kernels/simd/kernels_impl.hh"
#endif

namespace relief
{

#if defined(__SSE4_2__)
const KernelOps *
sse42KernelOpsImpl()
{
    static const KernelOps ops =
        simd_detail::makeOps<simd_detail::Sse42Lane>(KernelIsa::Sse42);
    return &ops;
}
#else
const KernelOps *
sse42KernelOpsImpl()
{
    return nullptr;
}
#endif

} // namespace relief
