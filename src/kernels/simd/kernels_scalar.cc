/**
 * @file
 * Scalar backend: the width-1 reference instantiation every SIMD
 * backend must match bit for bit. Compiled with baseline flags only.
 */

#include "kernels/simd/kernels_impl.hh"

namespace relief
{

const KernelOps *
scalarKernelOpsImpl()
{
    static const KernelOps ops =
        simd_detail::makeOps<simd_detail::ScalarLane>(KernelIsa::Scalar);
    return &ops;
}

} // namespace relief
