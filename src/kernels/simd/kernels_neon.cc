/**
 * @file
 * AArch64 Advanced SIMD backend (4 float lanes). NEON is mandatory on
 * AArch64 so no extra -m flag is needed; on other architectures the
 * provider is a nullptr stub.
 */

#include "kernels/simd/simd.hh"

#if defined(__aarch64__) && defined(__ARM_NEON)
#include "kernels/simd/kernels_impl.hh"
#endif

namespace relief
{

#if defined(__aarch64__) && defined(__ARM_NEON)
const KernelOps *
neonKernelOpsImpl()
{
    static const KernelOps ops =
        simd_detail::makeOps<simd_detail::NeonLane>(KernelIsa::Neon);
    return &ops;
}
#else
const KernelOps *
neonKernelOpsImpl()
{
    return nullptr;
}
#endif

} // namespace relief
