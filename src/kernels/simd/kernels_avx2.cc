/**
 * @file
 * AVX2 backend (8 float lanes). This TU is the only one compiled with
 * -mavx2 — and deliberately NOT -mfma: the bit-identity contract
 * forbids contracting the explicit mul+add sequences. Degrades to a
 * nullptr stub when the toolchain can't target AVX2.
 */

#include "kernels/simd/simd.hh"

#if defined(__AVX2__)
#include "kernels/simd/kernels_impl.hh"
#endif

namespace relief
{

#if defined(__AVX2__)
const KernelOps *
avx2KernelOpsImpl()
{
    static const KernelOps ops =
        simd_detail::makeOps<simd_detail::Avx2Lane>(KernelIsa::Avx2);
    return &ops;
}
#else
const KernelOps *
avx2KernelOpsImpl()
{
    return nullptr;
}
#endif

} // namespace relief
