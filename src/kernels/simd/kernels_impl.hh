/**
 * @file
 * Width-agnostic kernel templates + per-ISA lane types. Each backend
 * TU (kernels_scalar.cc, kernels_sse42.cc, ...) includes this header
 * under its own -m flags and instantiates makeOps<Lane>() once.
 *
 * Everything here lives in an anonymous namespace ON PURPOSE: the
 * backend TUs are compiled with different ISA options, and letting
 * the linker merge "identical" inline helpers across them would pick
 * one TU's codegen (possibly AVX2) for all backends — an illegal-
 * instruction trap on narrower CPUs. Internal linkage keeps each
 * backend self-contained.
 *
 * Bit-identity rules (see simd.hh): only IEEE correctly-rounded ops,
 * vector op order mirrors the scalar expression order exactly, one
 * lane = one output element (reductions stay serial per lane), no
 * FMA (backends are never compiled with -mfma, so GCC's default
 * -ffp-contract cannot contract the explicit mul+add pairs). Border
 * and tail elements run the same scalar helpers on every backend.
 */

#ifndef RELIEF_KERNELS_SIMD_KERNELS_IMPL_HH
#define RELIEF_KERNELS_SIMD_KERNELS_IMPL_HH

#include <algorithm>
#include <cmath>
#include <cstddef>

#if defined(__SSE4_2__) || defined(__AVX2__)
#include <immintrin.h>
#endif
#if defined(__ARM_NEON) || defined(__aarch64__)
#include <arm_neon.h>
#endif

#include "kernels/simd/simd.hh"

namespace relief::simd_detail
{
namespace
{

// ---------------------------------------------------------------- lanes

/** Width-1 reference lane; the other lanes must match it bit for bit. */
struct ScalarLane
{
    static constexpr int width = 1;
    using V = float;
    using M = bool;

    static V load(const float *p) { return *p; }
    static void store(float *p, V v) { *p = v; }
    static V bcast(float v) { return v; }
    static V zero() { return 0.0f; }
    static V add(V a, V b) { return a + b; }
    static V sub(V a, V b) { return a - b; }
    static V mul(V a, V b) { return a * b; }
    static V div(V a, V b) { return a / b; }
    static V sqrt(V a) { return std::sqrt(a); }
    static V min(V a, V b) { return b < a ? b : a; }
    static V max(V a, V b) { return a < b ? b : a; }
    static V abs(V a) { return std::fabs(a); }
    static M cmpLt(V a, V b) { return a < b; }
    static M cmpGe(V a, V b) { return a >= b; }
    static M cmpGt(V a, V b) { return a > b; }
    static M mand(M a, M b) { return a && b; }
    static M mor(M a, M b) { return a || b; }
    static M mnot(M a) { return !a; }
    static V select(M m, V a, V b) { return m ? a : b; }
};

#if defined(__SSE4_2__)
/** 4-lane SSE4.2 backend (blendv needs SSE4.1). */
struct Sse42Lane
{
    static constexpr int width = 4;
    using V = __m128;
    using M = __m128; ///< All-ones / all-zeros per lane.

    static V load(const float *p) { return _mm_loadu_ps(p); }
    static void store(float *p, V v) { _mm_storeu_ps(p, v); }
    static V bcast(float v) { return _mm_set1_ps(v); }
    static V zero() { return _mm_setzero_ps(); }
    static V add(V a, V b) { return _mm_add_ps(a, b); }
    static V sub(V a, V b) { return _mm_sub_ps(a, b); }
    static V mul(V a, V b) { return _mm_mul_ps(a, b); }
    static V div(V a, V b) { return _mm_div_ps(a, b); }
    static V sqrt(V a) { return _mm_sqrt_ps(a); }
    static V min(V a, V b) { return _mm_min_ps(a, b); }
    static V max(V a, V b) { return _mm_max_ps(a, b); }
    static V abs(V a) { return _mm_andnot_ps(_mm_set1_ps(-0.0f), a); }
    static M cmpLt(V a, V b) { return _mm_cmplt_ps(a, b); }
    static M cmpGe(V a, V b) { return _mm_cmpge_ps(a, b); }
    static M cmpGt(V a, V b) { return _mm_cmpgt_ps(a, b); }
    static M mand(M a, M b) { return _mm_and_ps(a, b); }
    static M mor(M a, M b) { return _mm_or_ps(a, b); }
    static M mnot(M a)
    {
        return _mm_xor_ps(a, _mm_castsi128_ps(_mm_set1_epi32(-1)));
    }
    static V select(M m, V a, V b) { return _mm_blendv_ps(b, a, m); }
};
#endif // __SSE4_2__

#if defined(__AVX2__)
/** 8-lane AVX2 backend. Never compiled with -mfma: the explicit
 *  mul+add sequences must not contract. */
struct Avx2Lane
{
    static constexpr int width = 8;
    using V = __m256;
    using M = __m256;

    static V load(const float *p) { return _mm256_loadu_ps(p); }
    static void store(float *p, V v) { _mm256_storeu_ps(p, v); }
    static V bcast(float v) { return _mm256_set1_ps(v); }
    static V zero() { return _mm256_setzero_ps(); }
    static V add(V a, V b) { return _mm256_add_ps(a, b); }
    static V sub(V a, V b) { return _mm256_sub_ps(a, b); }
    static V mul(V a, V b) { return _mm256_mul_ps(a, b); }
    static V div(V a, V b) { return _mm256_div_ps(a, b); }
    static V sqrt(V a) { return _mm256_sqrt_ps(a); }
    static V min(V a, V b) { return _mm256_min_ps(a, b); }
    static V max(V a, V b) { return _mm256_max_ps(a, b); }
    static V abs(V a)
    {
        return _mm256_andnot_ps(_mm256_set1_ps(-0.0f), a);
    }
    static M cmpLt(V a, V b) { return _mm256_cmp_ps(a, b, _CMP_LT_OQ); }
    static M cmpGe(V a, V b) { return _mm256_cmp_ps(a, b, _CMP_GE_OQ); }
    static M cmpGt(V a, V b) { return _mm256_cmp_ps(a, b, _CMP_GT_OQ); }
    static M mand(M a, M b) { return _mm256_and_ps(a, b); }
    static M mor(M a, M b) { return _mm256_or_ps(a, b); }
    static M mnot(M a)
    {
        return _mm256_xor_ps(
            a, _mm256_castsi256_ps(_mm256_set1_epi32(-1)));
    }
    static V select(M m, V a, V b) { return _mm256_blendv_ps(b, a, m); }
};
#endif // __AVX2__

#if defined(__aarch64__) && defined(__ARM_NEON)
/** 4-lane AArch64 Advanced SIMD backend (vsqrtq is A64-only and
 *  correctly rounded, like the compare/bsl ops). */
struct NeonLane
{
    static constexpr int width = 4;
    using V = float32x4_t;
    using M = uint32x4_t;

    static V load(const float *p) { return vld1q_f32(p); }
    static void store(float *p, V v) { vst1q_f32(p, v); }
    static V bcast(float v) { return vdupq_n_f32(v); }
    static V zero() { return vdupq_n_f32(0.0f); }
    static V add(V a, V b) { return vaddq_f32(a, b); }
    static V sub(V a, V b) { return vsubq_f32(a, b); }
    static V mul(V a, V b) { return vmulq_f32(a, b); }
    static V div(V a, V b) { return vdivq_f32(a, b); }
    static V sqrt(V a) { return vsqrtq_f32(a); }
    static V min(V a, V b) { return vminq_f32(a, b); }
    static V max(V a, V b) { return vmaxq_f32(a, b); }
    static V abs(V a) { return vabsq_f32(a); }
    static M cmpLt(V a, V b) { return vcltq_f32(a, b); }
    static M cmpGe(V a, V b) { return vcgeq_f32(a, b); }
    static M cmpGt(V a, V b) { return vcgtq_f32(a, b); }
    static M mand(M a, M b) { return vandq_u32(a, b); }
    static M mor(M a, M b) { return vorrq_u32(a, b); }
    static M mnot(M a) { return vmvnq_u32(a); }
    static V select(M m, V a, V b) { return vbslq_f32(m, a, b); }
};
#endif // __aarch64__ && __ARM_NEON

// ------------------------------------------- shared scalar per-element
// Borders and vector tails run these on EVERY backend so edge pixels
// match the scalar backend exactly.

inline int
clampi(int v, int lo, int hi)
{
    return v < lo ? lo : (v > hi ? hi : v);
}

inline float
convPixel(const float *const *rows, int w, int x, const float *taps,
          int fsize)
{
    const int half = fsize / 2;
    float acc = 0.0f;
    for (int fy = 0; fy < fsize; ++fy)
        for (int fx = 0; fx < fsize; ++fx)
            acc += taps[fy * fsize + fx] *
                   rows[fy][clampi(x + fx - half, 0, w - 1)];
    return acc;
}

inline float
sepPixelH(const float *row, int w, int x, const float *taps, int fsize)
{
    const int half = fsize / 2;
    float acc = 0.0f;
    for (int f = 0; f < fsize; ++f)
        acc += taps[f] * row[clampi(x + f - half, 0, w - 1)];
    return acc;
}

inline float
sepPixelV(const float *const *rows, int x, const float *taps, int fsize)
{
    float acc = 0.0f;
    for (int f = 0; f < fsize; ++f)
        acc += taps[f] * rows[f][x];
    return acc;
}

inline float
cannyNmsPixel(const float *const *m, const float *dir, int w, int x)
{
    float deg = dir[x] * 180.0f / float(M_PI);
    if (deg < 0.0f)
        deg += 180.0f;
    int dx1 = 0, dy1 = 0;
    if (deg < 22.5f || deg >= 157.5f) {
        dx1 = 1;
        dy1 = 0;
    } else if (deg < 67.5f) {
        dx1 = 1;
        dy1 = 1;
    } else if (deg < 112.5f) {
        dx1 = 0;
        dy1 = 1;
    } else {
        dx1 = -1;
        dy1 = 1;
    }
    const float v = m[1][x];
    const float n1 = m[1 + dy1][clampi(x + dx1, 0, w - 1)];
    const float n2 = m[1 - dy1][clampi(x - dx1, 0, w - 1)];
    return (v >= n1 && v >= n2) ? v : 0.0f;
}

inline float
harrisNmsPixel(const float *const *r, int w, int x)
{
    const float v = r[1][x];
    if (v <= 0.0f)
        return 0.0f;
    for (int dy = -1; dy <= 1; ++dy)
        for (int dx = -1; dx <= 1; ++dx) {
            if (dx == 0 && dy == 0)
                continue;
            if (r[1 + dy][clampi(x + dx, 0, w - 1)] > v)
                return 0.0f;
        }
    return v;
}

// --------------------------------------------------- kernel templates

/** 2-D convolution row, fixed compile-time filter size. The vector
 *  interior covers x in [half, w - half) where no clamping happens;
 *  borders and the ragged tail share convPixel(). */
template <class L, int FS>
void
convRowFixedT(const float *const *rows, int w, const float *taps,
              float *out)
{
    constexpr int half = FS / 2;
    int x = 0;
    const int interior_end = w - half; // exclusive
    for (; x < std::min(half, w); ++x)
        out[x] = convPixel(rows, w, x, taps, FS);
    for (; x + L::width <= interior_end; x += L::width) {
        auto acc = L::zero();
        for (int fy = 0; fy < FS; ++fy) {
            const float *row = rows[fy];
            for (int fx = 0; fx < FS; ++fx)
                acc = L::add(acc, L::mul(L::bcast(taps[fy * FS + fx]),
                                         L::load(row + x + fx - half)));
        }
        L::store(out + x, acc);
    }
    for (; x < w; ++x)
        out[x] = convPixel(rows, w, x, taps, FS);
}

template <class L>
void
convRowT(const float *const *rows, int w, const float *taps, int fsize,
         float *out)
{
    switch (fsize) {
    case 3:
        convRowFixedT<L, 3>(rows, w, taps, out);
        return;
    case 5:
        convRowFixedT<L, 5>(rows, w, taps, out);
        return;
    default:
        for (int x = 0; x < w; ++x)
            out[x] = convPixel(rows, w, x, taps, fsize);
        return;
    }
}

template <class L>
void
sepConvRowHT(const float *row, int w, const float *taps, int fsize,
             float *out)
{
    const int half = fsize / 2;
    int x = 0;
    const int interior_end = w - half;
    for (; x < std::min(half, w); ++x)
        out[x] = sepPixelH(row, w, x, taps, fsize);
    for (; x + L::width <= interior_end; x += L::width) {
        auto acc = L::zero();
        for (int f = 0; f < fsize; ++f)
            acc = L::add(acc, L::mul(L::bcast(taps[f]),
                                     L::load(row + x + f - half)));
        L::store(out + x, acc);
    }
    for (; x < w; ++x)
        out[x] = sepPixelH(row, w, x, taps, fsize);
}

template <class L>
void
sepConvRowVT(const float *const *rows, int w, const float *taps,
             int fsize, float *out)
{
    int x = 0;
    for (; x + L::width <= w; x += L::width) {
        auto acc = L::zero();
        for (int f = 0; f < fsize; ++f)
            acc = L::add(acc,
                         L::mul(L::bcast(taps[f]), L::load(rows[f] + x)));
        L::store(out + x, acc);
    }
    for (; x < w; ++x)
        out[x] = sepPixelV(rows, x, taps, fsize);
}

/** Canny NMS row. Interior lanes (x in [1, w-2]) load all four
 *  neighbor-pair candidates unaligned and blend by exclusive
 *  angle-class masks; x = 0, x = w-1, and the tail clamp via the
 *  scalar helper. */
template <class L>
void
cannyNmsRowT(const float *const *m, const float *dir, int w, float *out)
{
    int x = 0;
    for (; x < std::min(1, w); ++x)
        out[x] = cannyNmsPixel(m, dir, w, x);
    const auto v180 = L::bcast(180.0f);
    const auto vpi = L::bcast(float(M_PI));
    const auto c225 = L::bcast(22.5f);
    const auto c675 = L::bcast(67.5f);
    const auto c1125 = L::bcast(112.5f);
    const auto c1575 = L::bcast(157.5f);
    const auto vzero = L::zero();
    // Last full vector must end at x + width - 1 <= w - 2.
    for (; x + L::width <= w - 1; x += L::width) {
        auto deg = L::div(L::mul(L::load(dir + x), v180), vpi);
        deg = L::select(L::cmpLt(deg, vzero), L::add(deg, v180), deg);
        const auto k0 =
            L::mor(L::cmpLt(deg, c225), L::cmpGe(deg, c1575));
        const auto k45 =
            L::mand(L::cmpGe(deg, c225), L::cmpLt(deg, c675));
        const auto k90 =
            L::mand(L::cmpGe(deg, c675), L::cmpLt(deg, c1125));
        // class 135 is the remainder.
        const auto n1 = L::select(
            k0, L::load(m[1] + x + 1),
            L::select(k45, L::load(m[2] + x + 1),
                      L::select(k90, L::load(m[2] + x),
                                L::load(m[2] + x - 1))));
        const auto n2 = L::select(
            k0, L::load(m[1] + x - 1),
            L::select(k45, L::load(m[0] + x - 1),
                      L::select(k90, L::load(m[0] + x),
                                L::load(m[0] + x + 1))));
        const auto v = L::load(m[1] + x);
        const auto keep = L::mand(L::cmpGe(v, n1), L::cmpGe(v, n2));
        L::store(out + x, L::select(keep, v, vzero));
    }
    for (; x < w; ++x)
        out[x] = cannyNmsPixel(m, dir, w, x);
}

/** Harris NMS row: keep v when v > 0 and no 8-neighbor exceeds it.
 *  An OR of eight greater-than masks (not a max-reduce) preserves the
 *  scalar early-exit semantics for any input. */
template <class L>
void
harrisNmsRowT(const float *const *r, int w, float *out)
{
    int x = 0;
    for (; x < std::min(1, w); ++x)
        out[x] = harrisNmsPixel(r, w, x);
    const auto vzero = L::zero();
    for (; x + L::width <= w - 1; x += L::width) {
        const auto v = L::load(r[1] + x);
        auto any = L::cmpGt(L::load(r[0] + x - 1), v);
        any = L::mor(any, L::cmpGt(L::load(r[0] + x), v));
        any = L::mor(any, L::cmpGt(L::load(r[0] + x + 1), v));
        any = L::mor(any, L::cmpGt(L::load(r[1] + x - 1), v));
        any = L::mor(any, L::cmpGt(L::load(r[1] + x + 1), v));
        any = L::mor(any, L::cmpGt(L::load(r[2] + x - 1), v));
        any = L::mor(any, L::cmpGt(L::load(r[2] + x), v));
        any = L::mor(any, L::cmpGt(L::load(r[2] + x + 1), v));
        const auto keep = L::mand(L::cmpGt(v, vzero), L::mnot(any));
        L::store(out + x, L::select(keep, v, vzero));
    }
    for (; x < w; ++x)
        out[x] = harrisNmsPixel(r, w, x);
}

template <class L>
void
bt601T(const float *r, const float *g, const float *b, float *out,
       std::size_t n)
{
    const auto cr = L::bcast(0.299f);
    const auto cg = L::bcast(0.587f);
    const auto cb = L::bcast(0.114f);
    std::size_t i = 0;
    for (; i + L::width <= n; i += L::width) {
        const auto v =
            L::add(L::add(L::mul(cr, L::load(r + i)),
                          L::mul(cg, L::load(g + i))),
                   L::mul(cb, L::load(b + i)));
        L::store(out + i, v);
    }
    for (; i < n; ++i)
        out[i] = 0.299f * r[i] + 0.587f * g[i] + 0.114f * b[i];
}

template <class L>
void
ccmClampT(float *r, float *g, float *b, std::size_t n,
          const float ccm[3][3])
{
    const auto vzero = L::zero();
    const auto vone = L::bcast(1.0f);
    std::size_t i = 0;
    for (; i + L::width <= n; i += L::width) {
        const auto vr = L::load(r + i);
        const auto vg = L::load(g + i);
        const auto vb = L::load(b + i);
        float *const outs[3] = {r, g, b};
        for (int c = 0; c < 3; ++c) {
            auto v = L::add(L::add(L::mul(L::bcast(ccm[c][0]), vr),
                                   L::mul(L::bcast(ccm[c][1]), vg)),
                            L::mul(L::bcast(ccm[c][2]), vb));
            v = L::min(L::max(v, vzero), vone);
            L::store(outs[c] + i, v);
        }
    }
    for (; i < n; ++i) {
        const float rr = r[i], gg = g[i], bb = b[i];
        float *const outs[3] = {r, g, b};
        for (int c = 0; c < 3; ++c) {
            float v = ccm[c][0] * rr + ccm[c][1] * gg + ccm[c][2] * bb;
            v = v < 0.0f ? 0.0f : v;
            v = v > 1.0f ? 1.0f : v;
            outs[c][i] = v;
        }
    }
}

template <class L>
void
gradMagT(const float *gx, const float *gy, float *out, std::size_t n)
{
    const auto vzero = L::zero();
    std::size_t i = 0;
    for (; i + L::width <= n; i += L::width) {
        const auto x = L::load(gx + i);
        const auto y = L::load(gy + i);
        const auto s = L::add(L::mul(x, x), L::mul(y, y));
        L::store(out + i,
                 L::select(L::cmpGt(s, vzero), L::sqrt(s), vzero));
    }
    for (; i < n; ++i) {
        const float s = gx[i] * gx[i] + gy[i] * gy[i];
        out[i] = s > 0.0f ? std::sqrt(s) : 0.0f;
    }
}

template <class L>
void
elemRowT(ElemOp op, const float *a, const float *b, float scalar,
         float *out, std::size_t n)
{
    std::size_t i = 0;
    switch (op) {
    case ElemOp::Add:
        for (; i + L::width <= n; i += L::width)
            L::store(out + i, L::add(L::load(a + i), L::load(b + i)));
        for (; i < n; ++i)
            out[i] = a[i] + b[i];
        return;
    case ElemOp::Sub:
        for (; i + L::width <= n; i += L::width)
            L::store(out + i, L::sub(L::load(a + i), L::load(b + i)));
        for (; i < n; ++i)
            out[i] = a[i] - b[i];
        return;
    case ElemOp::Mul:
        for (; i + L::width <= n; i += L::width)
            L::store(out + i, L::mul(L::load(a + i), L::load(b + i)));
        for (; i < n; ++i)
            out[i] = a[i] * b[i];
        return;
    case ElemOp::Div: {
        const auto eps = L::bcast(1e-12f);
        const auto vzero = L::zero();
        for (; i + L::width <= n; i += L::width) {
            const auto x = L::load(a + i);
            const auto y = L::load(b + i);
            const auto ok = L::cmpGt(L::abs(y), eps);
            L::store(out + i, L::select(ok, L::div(x, y), vzero));
        }
        for (; i < n; ++i)
            out[i] = std::abs(b[i]) > 1e-12f ? a[i] / b[i] : 0.0f;
        return;
    }
    case ElemOp::Sqr:
        for (; i + L::width <= n; i += L::width) {
            const auto x = L::load(a + i);
            L::store(out + i, L::mul(x, x));
        }
        for (; i < n; ++i)
            out[i] = a[i] * a[i];
        return;
    case ElemOp::Sqrt: {
        const auto vzero = L::zero();
        for (; i + L::width <= n; i += L::width) {
            const auto x = L::load(a + i);
            L::store(out + i, L::select(L::cmpGt(x, vzero), L::sqrt(x),
                                        vzero));
        }
        for (; i < n; ++i)
            out[i] = a[i] > 0.0f ? std::sqrt(a[i]) : 0.0f;
        return;
    }
    case ElemOp::Scale: {
        const auto s = L::bcast(scalar);
        for (; i + L::width <= n; i += L::width)
            L::store(out + i, L::mul(L::load(a + i), s));
        for (; i < n; ++i)
            out[i] = a[i] * scalar;
        return;
    }
    case ElemOp::OneMinus: {
        const auto vone = L::bcast(1.0f);
        for (; i + L::width <= n; i += L::width)
            L::store(out + i, L::sub(vone, L::load(a + i)));
        for (; i < n; ++i)
            out[i] = 1.0f - a[i];
        return;
    }
    default:
        // Atan2/Tanh/Sigmoid never reach the vector path; the
        // dispatcher routes them to elemScalarRow().
        elemScalarRow(op, a, b, scalar, out, n);
        return;
    }
}

template <class L>
void
rnnGatePreT(const float *w, const float *x, const float *u,
            const float *h, const float *b, float *out, std::size_t n)
{
    std::size_t i = 0;
    for (; i + L::width <= n; i += L::width) {
        const auto wx = L::mul(L::load(w + i), L::load(x + i));
        const auto uh = L::mul(L::load(u + i), L::load(h + i));
        L::store(out + i, L::add(L::add(wx, uh), L::load(b + i)));
    }
    for (; i < n; ++i)
        out[i] = (w[i] * x[i] + u[i] * h[i]) + b[i];
}

/** Fill a dispatch table with this lane's instantiations. */
template <class L>
KernelOps
makeOps(KernelIsa isa)
{
    KernelOps ops;
    ops.isa = isa;
    ops.laneWidth = L::width;
    ops.convRow = &convRowT<L>;
    ops.sepConvRowH = &sepConvRowHT<L>;
    ops.sepConvRowV = &sepConvRowVT<L>;
    ops.cannyNmsRow = &cannyNmsRowT<L>;
    ops.harrisNmsRow = &harrisNmsRowT<L>;
    ops.bt601 = &bt601T<L>;
    ops.ccmClamp = &ccmClampT<L>;
    ops.elemRow = &elemRowT<L>;
    ops.gradMag = &gradMagT<L>;
    ops.rnnGatePre = &rnnGatePreT<L>;
    return ops;
}

} // namespace
} // namespace relief::simd_detail

#endif // RELIEF_KERNELS_SIMD_KERNELS_IMPL_HH
