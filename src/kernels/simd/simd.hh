/**
 * @file
 * SIMD kernel engine — runtime-dispatched, width-agnostic vector
 * backends for the functional kernels.
 *
 * The hot kernels (convolution, NMS, grayscale/CCM, elementwise, RNN
 * gates) are written once as row-oriented primitives templated over a
 * *lane* abstraction (kernels_impl.hh) and instantiated per ISA:
 * scalar (width 1, always available), SSE4.2 (4), AVX2 (8), and NEON
 * (4, AArch64). One backend is selected at first use by a CPUID probe
 * — overridable with the RELIEF_KERNEL_ISA environment variable or the
 * `--kernel-isa` CLI flag for testing — and exposed as a table of row
 * function pointers (KernelOps) the Plane-level wrappers in
 * filters/vision/elemwise/rnn call.
 *
 * Bit-identity contract: every SIMD path produces *bit-identical*
 * output to the scalar backend (and to the pre-SIMD scalar loops).
 * The lanes only use IEEE-754 correctly-rounded single ops (add, sub,
 * mul, div, sqrt, min/max, compares, blends), each vector op maps 1:1
 * onto the scalar sequence in the same order (no FMA contraction, no
 * reassociation, no fast-math), and reductions are per-lane — each
 * lane owns one output pixel and accumulates serially in tap order.
 * Transcendentals (exp, tanh, atan2, pow) are *scalar by contract*:
 * they take one shared libm loop (elemScalarRow / gammaCorrect below)
 * compiled once, so every ISA agrees bit-for-bit. The golden suite in
 * tests/kernels/simd_test.cc enforces the contract on random images
 * and ragged widths that exercise the tail lanes.
 */

#ifndef RELIEF_KERNELS_SIMD_SIMD_HH
#define RELIEF_KERNELS_SIMD_SIMD_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "acc/acc_types.hh"

namespace relief
{

/** Instruction sets a kernel backend can be built for. */
enum class KernelIsa : std::uint8_t
{
    Scalar, ///< Portable width-1 reference (always compiled in).
    Sse42,  ///< x86 SSE4.2, 4 float lanes.
    Avx2,   ///< x86 AVX2, 8 float lanes.
    Neon,   ///< AArch64 Advanced SIMD, 4 float lanes.
};

/** Printable name ("scalar", "sse4.2", "avx2", "neon"). */
const char *kernelIsaName(KernelIsa isa);

/** Resolve a name as printed by kernelIsaName(); throws FatalError
 *  (with the known names) on anything else. */
KernelIsa kernelIsaFromName(const std::string &name);

/** ISAs whose backend is compiled into this binary. Always contains
 *  Scalar; the x86/ARM entries depend on toolchain support. */
std::vector<KernelIsa> compiledKernelIsas();

/** True when @p isa is compiled in AND the running CPU supports it. */
bool kernelIsaSupported(KernelIsa isa);

/**
 * The ISA the kernel wrappers dispatch to. Resolved once at first
 * use: RELIEF_KERNEL_ISA (if set) wins, else the widest supported
 * backend (AVX2 > SSE4.2 > NEON > scalar). Thread-safe.
 */
KernelIsa activeKernelIsa();

/** Force the active ISA (tests, --kernel-isa). Panics unless
 *  kernelIsaSupported(@p isa). */
void setKernelIsa(KernelIsa isa);

/** Drop the resolved/forced choice so the next activeKernelIsa()
 *  re-reads RELIEF_KERNEL_ISA and re-probes the CPU (tests only). */
void resetKernelIsaForTesting();

/**
 * Row-primitive dispatch table of one backend. Rows are the unit of
 * work so whole-plane wrappers and the row-tiled pipeline
 * (kernels/pipeline.hh) share one implementation; vertical clamping
 * is the caller's job (it passes clamped row pointers), horizontal
 * clamping is internal.
 */
struct KernelOps
{
    KernelIsa isa = KernelIsa::Scalar;
    int laneWidth = 1; ///< Floats processed per vector op.

    /** 2-D convolution of one output row. @p rows holds the @p fsize
     *  input rows (vertically clamped); taps are row-major
     *  [fy * fsize + fx]. */
    void (*convRow)(const float *const *rows, int w, const float *taps,
                    int fsize, float *out);

    /** Horizontal tap pass of a separable convolution. */
    void (*sepConvRowH)(const float *row, int w, const float *taps,
                        int fsize, float *out);

    /** Vertical tap pass: @p rows holds @p fsize clamped row
     *  pointers of the horizontally filtered intermediate. */
    void (*sepConvRowV)(const float *const *rows, int w,
                        const float *taps, int fsize, float *out);

    /** Canny NMS of one row: @p mag_rows = clamped rows y-1,y,y+1 of
     *  the gradient magnitude, @p dir_row = direction row y. */
    void (*cannyNmsRow)(const float *const *mag_rows,
                        const float *dir_row, int w, float *out);

    /** Harris NMS of one row: @p rows = clamped rows y-1,y,y+1 of the
     *  corner response. */
    void (*harrisNmsRow)(const float *const *rows, int w, float *out);

    /** ITU-R BT.601 luma from three channel buffers. */
    void (*bt601)(const float *r, const float *g, const float *b,
                  float *out, std::size_t n);

    /** 3x3 color-correction matrix + clamp to [0, 1], in place across
     *  the three channel buffers (gamma is applied separately by the
     *  shared scalar gammaCorrect()). */
    void (*ccmClamp)(float *r, float *g, float *b, std::size_t n,
                     const float ccm[3][3]);

    /** Vectorizable elementwise ops (see elemOpVectorized()); @p b is
     *  ignored for unary ops, @p scalar parameterizes Scale. */
    void (*elemRow)(ElemOp op, const float *a, const float *b,
                    float scalar, float *out, std::size_t n);

    /** Fused gradient magnitude: sqrt-guarded gx^2 + gy^2, matching
     *  the Sqr/Sqr/Add/Sqrt elemwise chain bit for bit. */
    void (*gradMag)(const float *gx, const float *gy, float *out,
                    std::size_t n);

    /** RNN gate pre-activation: w*x + u*h + b elementwise (the
     *  diagonal-GEMV of the paper's light recurrent cells). */
    void (*rnnGatePre)(const float *w, const float *x, const float *u,
                       const float *h, const float *b, float *out,
                       std::size_t n);
};

/** Dispatch table of the active ISA (resolves on first call). */
const KernelOps &kernelOps();

/** Dispatch table of a specific ISA; panics unless supported. */
const KernelOps &kernelOpsFor(KernelIsa isa);

/** True when @p op runs on the vector elemRow path; Atan2 / Tanh /
 *  Sigmoid are scalar by contract (libm bit-identity). */
bool elemOpVectorized(ElemOp op);

/**
 * The shared scalar elementwise loop every ISA uses for the
 * non-vectorizable ops. Also the reference semantics of elemRow:
 * both produce identical bits for the vectorizable ops.
 */
void elemScalarRow(ElemOp op, const float *a, const float *b,
                   float scalar, float *out, std::size_t n);

/** Shared scalar gamma pass: p[i] = pow(p[i], inv_gamma). */
void gammaCorrect(float *p, std::size_t n, float inv_gamma);

} // namespace relief

#endif // RELIEF_KERNELS_SIMD_SIMD_HH
