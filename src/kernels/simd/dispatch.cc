/**
 * @file
 * Runtime ISA dispatch for the SIMD kernel engine, plus the shared
 * scalar loops (libm-bound ops) every backend routes through. This TU
 * is compiled with the project's baseline flags only, so the shared
 * scalar paths have exactly one codegen no matter which backend is
 * active — that is what makes Atan2/Tanh/Sigmoid/pow bit-identical
 * across ISAs by construction.
 */

#include "kernels/simd/simd.hh"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <mutex>

#include "sim/logging.hh"

namespace relief
{

// Backend providers, one per TU under simd/. Each returns nullptr
// when its ISA is not compiled in (wrong arch or unsupported -m flag).
const KernelOps *scalarKernelOpsImpl();
const KernelOps *sse42KernelOpsImpl();
const KernelOps *avx2KernelOpsImpl();
const KernelOps *neonKernelOpsImpl();

namespace
{

const KernelOps *
opsTableFor(KernelIsa isa)
{
    switch (isa) {
    case KernelIsa::Scalar:
        return scalarKernelOpsImpl();
    case KernelIsa::Sse42:
        return sse42KernelOpsImpl();
    case KernelIsa::Avx2:
        return avx2KernelOpsImpl();
    case KernelIsa::Neon:
        return neonKernelOpsImpl();
    }
    return nullptr;
}

bool
cpuSupports(KernelIsa isa)
{
    switch (isa) {
    case KernelIsa::Scalar:
        return true;
#if defined(__x86_64__) || defined(__i386__)
    case KernelIsa::Sse42:
        return __builtin_cpu_supports("sse4.2") != 0;
    case KernelIsa::Avx2:
        return __builtin_cpu_supports("avx2") != 0;
#endif
#if defined(__aarch64__)
    case KernelIsa::Neon:
        return true; // Advanced SIMD is mandatory on AArch64.
#endif
    default:
        return false;
    }
}

// Resolved choice; -1 = not resolved yet. Guarded by a mutex on the
// slow path, read lock-free afterwards.
std::atomic<int> g_active{-1};
std::mutex g_resolve_mutex;

KernelIsa
resolveIsa()
{
    if (const char *env = std::getenv("RELIEF_KERNEL_ISA");
        env != nullptr && *env != '\0') {
        KernelIsa isa = kernelIsaFromName(env);
        if (!kernelIsaSupported(isa))
            fatal("RELIEF_KERNEL_ISA=", env,
                  " is not supported by this build/CPU");
        return isa;
    }
    for (KernelIsa isa :
         {KernelIsa::Avx2, KernelIsa::Sse42, KernelIsa::Neon}) {
        if (kernelIsaSupported(isa))
            return isa;
    }
    return KernelIsa::Scalar;
}

} // namespace

const char *
kernelIsaName(KernelIsa isa)
{
    switch (isa) {
    case KernelIsa::Scalar:
        return "scalar";
    case KernelIsa::Sse42:
        return "sse4.2";
    case KernelIsa::Avx2:
        return "avx2";
    case KernelIsa::Neon:
        return "neon";
    }
    return "unknown";
}

KernelIsa
kernelIsaFromName(const std::string &name)
{
    for (KernelIsa isa : {KernelIsa::Scalar, KernelIsa::Sse42,
                          KernelIsa::Avx2, KernelIsa::Neon}) {
        if (name == kernelIsaName(isa))
            return isa;
    }
    fatal("unknown kernel ISA '", name,
          "' (expected scalar, sse4.2, avx2, or neon)");
}

std::vector<KernelIsa>
compiledKernelIsas()
{
    std::vector<KernelIsa> isas;
    for (KernelIsa isa : {KernelIsa::Scalar, KernelIsa::Sse42,
                          KernelIsa::Avx2, KernelIsa::Neon}) {
        if (opsTableFor(isa) != nullptr)
            isas.push_back(isa);
    }
    return isas;
}

bool
kernelIsaSupported(KernelIsa isa)
{
    return opsTableFor(isa) != nullptr && cpuSupports(isa);
}

KernelIsa
activeKernelIsa()
{
    int active = g_active.load(std::memory_order_acquire);
    if (active < 0) {
        std::lock_guard<std::mutex> lock(g_resolve_mutex);
        active = g_active.load(std::memory_order_acquire);
        if (active < 0) {
            active = int(resolveIsa());
            g_active.store(active, std::memory_order_release);
        }
    }
    return KernelIsa(active);
}

void
setKernelIsa(KernelIsa isa)
{
    RELIEF_ASSERT(kernelIsaSupported(isa),
                  "kernel ISA ", kernelIsaName(isa),
                  " not supported by this build/CPU");
    std::lock_guard<std::mutex> lock(g_resolve_mutex);
    g_active.store(int(isa), std::memory_order_release);
}

void
resetKernelIsaForTesting()
{
    std::lock_guard<std::mutex> lock(g_resolve_mutex);
    g_active.store(-1, std::memory_order_release);
}

const KernelOps &
kernelOps()
{
    return *opsTableFor(activeKernelIsa());
}

const KernelOps &
kernelOpsFor(KernelIsa isa)
{
    const KernelOps *ops = opsTableFor(isa);
    RELIEF_ASSERT(ops != nullptr, "kernel ISA ", kernelIsaName(isa),
                  " not compiled into this binary");
    return *ops;
}

bool
elemOpVectorized(ElemOp op)
{
    switch (op) {
    case ElemOp::Add:
    case ElemOp::Sub:
    case ElemOp::Mul:
    case ElemOp::Div:
    case ElemOp::Sqr:
    case ElemOp::Sqrt:
    case ElemOp::Scale:
    case ElemOp::OneMinus:
        return true;
    case ElemOp::Atan2:
    case ElemOp::Tanh:
    case ElemOp::Sigmoid:
        return false;
    }
    return false;
}

void
elemScalarRow(ElemOp op, const float *a, const float *b, float scalar,
              float *out, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        const float x = a[i];
        const float y = b != nullptr ? b[i] : 0.0f;
        float v = 0.0f;
        switch (op) {
        case ElemOp::Add:
            v = x + y;
            break;
        case ElemOp::Sub:
            v = x - y;
            break;
        case ElemOp::Mul:
            v = x * y;
            break;
        case ElemOp::Div:
            v = std::abs(y) > 1e-12f ? x / y : 0.0f;
            break;
        case ElemOp::Sqr:
            v = x * x;
            break;
        case ElemOp::Sqrt:
            v = x > 0.0f ? std::sqrt(x) : 0.0f;
            break;
        case ElemOp::Atan2:
            v = std::atan2(x, y);
            break;
        case ElemOp::Tanh:
            v = std::tanh(x);
            break;
        case ElemOp::Sigmoid:
            v = 1.0f / (1.0f + std::exp(-x));
            break;
        case ElemOp::Scale:
            v = x * scalar;
            break;
        case ElemOp::OneMinus:
            v = 1.0f - x;
            break;
        }
        out[i] = v;
    }
}

void
gammaCorrect(float *p, std::size_t n, float inv_gamma)
{
    for (std::size_t i = 0; i < n; ++i)
        p[i] = std::pow(p[i], inv_gamma);
}

} // namespace relief
