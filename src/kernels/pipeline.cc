#include "kernels/pipeline.hh"

#include <algorithm>
#include <memory>

#include "kernels/elemwise.hh"
#include "kernels/scratch.hh"
#include "kernels/simd/simd.hh"
#include "sim/hostprof.hh"
#include "sim/logging.hh"

namespace relief
{

namespace
{

int
clampi(int v, int lo, int hi)
{
    return v < lo ? lo : (v > hi ? hi : v);
}

} // namespace

RowStage
convStage(const Filter2D &filter)
{
    RowStage stage;
    stage.radius = filter.size() / 2;
    stage.run = [filter](const RowWindow &in, int y, float *out) {
        const int fsize = filter.size();
        const int half = fsize / 2;
        const float *rows[5];
        for (int fy = 0; fy < fsize; ++fy)
            rows[fy] = in.row(y + fy - half);
        kernelOps().convRow(rows, in.width(), filter.taps(), fsize, out);
    };
    return stage;
}

RowStage
zipStage(ElemOp op, const Plane *ext, bool ext_first, float scalar)
{
    RELIEF_ASSERT(ext != nullptr, "zipStage needs an external plane");
    RowStage stage;
    stage.run = [op, ext, ext_first, scalar](const RowWindow &in, int y,
                                             float *out) {
        const int w = in.width();
        const float *ext_row =
            ext->data().data() + std::size_t(y) * std::size_t(w);
        const float *a = ext_first ? ext_row : in.row(y);
        const float *b = ext_first ? in.row(y) : ext_row;
        elemwiseBuf(op, a, b, scalar, out, std::size_t(w));
    };
    return stage;
}

RowStage
mapStage(ElemOp op, float scalar)
{
    RowStage stage;
    stage.run = [op, scalar](const RowWindow &in, int y, float *out) {
        elemwiseBuf(op, in.row(y), nullptr, scalar, out,
                    std::size_t(in.width()));
    };
    return stage;
}

Plane
runRowPipeline(const Plane &input, const std::vector<RowStage> &stages)
{
    RELIEF_ASSERT(!stages.empty(), "row pipeline needs >= 1 stage");
    HostProfScope prof(HostCat::Kernels);
    const int w = input.width(), h = input.height();
    const int n = int(stages.size());
    Plane out(w, h);
    if (h == 0 || w == 0)
        return out;

    // Ring buffers for the outputs of stages 0..n-2; the consumer of
    // ring i is stage i+1, which needs 2*radius+1 live rows.
    std::vector<std::unique_ptr<ScratchVec>> ring_store;
    std::vector<std::vector<float *>> ring_rows(std::size_t(n) - 1);
    std::vector<int> caps(std::size_t(n) - 1, 0);
    for (int i = 0; i + 1 < n; ++i) {
        caps[i] = std::min(h, 2 * stages[std::size_t(i) + 1].radius + 1);
        ring_store.push_back(std::make_unique<ScratchVec>(
            std::size_t(caps[i]) * std::size_t(w)));
        for (int k = 0; k < caps[i]; ++k)
            ring_rows[i].push_back(ring_store.back()->data() +
                                   std::size_t(k) * std::size_t(w));
    }

    // Pull-based production: to emit row t of stage i, first pull the
    // upstream ring far enough (t + radius, clamped). next[i] is the
    // lowest not-yet-produced row, so production is strictly monotone
    // and a ring row is never overwritten while still needed.
    std::vector<int> next(std::size_t(n), 0);
    std::function<void(int, int)> produce = [&](int i, int t) {
        t = std::min(t, h - 1);
        while (next[std::size_t(i)] <= t) {
            const int y = next[std::size_t(i)];
            if (i > 0)
                produce(i - 1, y + stages[std::size_t(i)].radius);
            const RowWindow win =
                i == 0 ? RowWindow(input.data().data(), w, h)
                       : RowWindow(ring_rows[std::size_t(i) - 1].data(),
                                   caps[std::size_t(i) - 1], w, h);
            float *dst =
                i == n - 1
                    ? out.data().data() + std::size_t(y) * std::size_t(w)
                    : ring_rows[std::size_t(i)][std::size_t(y % caps[i])];
            stages[std::size_t(i)].run(win, y, dst);
            ++next[std::size_t(i)];
        }
    };
    for (int y = 0; y < h; ++y)
        produce(n - 1, y);
    return out;
}

Plane
cannyNmsFromGray(const Plane &gray, const Filter2D &smooth)
{
    HostProfScope prof(HostCat::Kernels);
    const KernelOps &ops = kernelOps();
    const int w = gray.width(), h = gray.height();
    Plane out(w, h);
    if (w == 0 || h == 0)
        return out;

    Filter2D sx = sobelX(), sy = sobelY();
    const int s_size = smooth.size();
    const int s_half = s_size / 2;

    // Sobel consumes 3 smoothed rows, NMS consumes 3 magnitude rows
    // plus the matching direction row (produced one row ahead).
    const int smooth_cap = std::min(h, 3);
    const int mag_cap = std::min(h, 3);
    const int dir_cap = std::min(h, 3);
    ScratchVec smooth_store(std::size_t(smooth_cap) * w);
    ScratchVec mag_store(std::size_t(mag_cap) * w);
    ScratchVec dir_store(std::size_t(dir_cap) * w);
    ScratchVec gx_row{std::size_t(w)};
    ScratchVec gy_row{std::size_t(w)};

    auto ring_row = [w](ScratchVec &store, int cap, int y) {
        return store.data() + std::size_t(y % cap) * std::size_t(w);
    };

    int next_smooth = 0;
    auto produce_smooth = [&](int t) {
        t = std::min(t, h - 1);
        while (next_smooth <= t) {
            const int y = next_smooth;
            const float *rows[5];
            for (int fy = 0; fy < s_size; ++fy)
                rows[fy] = gray.data().data() +
                           std::size_t(clampi(y + fy - s_half, 0, h - 1)) *
                               std::size_t(w);
            ops.convRow(rows, w, smooth.taps(), s_size,
                        ring_row(smooth_store, smooth_cap, y));
            ++next_smooth;
        }
    };

    int next_mag = 0;
    auto produce_mag_dir = [&](int t) {
        t = std::min(t, h - 1);
        while (next_mag <= t) {
            const int y = next_mag;
            produce_smooth(y + 1);
            const float *rows[3];
            for (int dy = -1; dy <= 1; ++dy)
                rows[dy + 1] = ring_row(smooth_store, smooth_cap,
                                        clampi(y + dy, 0, h - 1));
            ops.convRow(rows, w, sx.taps(), 3, gx_row.data());
            ops.convRow(rows, w, sy.taps(), 3, gy_row.data());
            ops.gradMag(gx_row.data(), gy_row.data(),
                        ring_row(mag_store, mag_cap, y), std::size_t(w));
            // Direction is atan2(gy, gx): scalar by contract.
            elemScalarRow(ElemOp::Atan2, gy_row.data(), gx_row.data(),
                          1.0f, ring_row(dir_store, dir_cap, y),
                          std::size_t(w));
            ++next_mag;
        }
    };

    for (int y = 0; y < h; ++y) {
        produce_mag_dir(y + 1);
        const float *m[3];
        for (int dy = -1; dy <= 1; ++dy)
            m[dy + 1] =
                ring_row(mag_store, mag_cap, clampi(y + dy, 0, h - 1));
        ops.cannyNmsRow(m, ring_row(dir_store, dir_cap, y), w,
                        out.data().data() +
                            std::size_t(y) * std::size_t(w));
    }
    return out;
}

} // namespace relief
