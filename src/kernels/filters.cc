#include "kernels/filters.hh"

#include <algorithm>
#include <cmath>

#include "kernels/scratch.hh"
#include "kernels/simd/simd.hh"
#include "sim/hostprof.hh"
#include "sim/logging.hh"

namespace relief
{

Filter2D::Filter2D(int size) : size_(size)
{
    RELIEF_ASSERT(size >= 1 && size <= 5,
                  "filter size must be 1..5, got ", size);
}

float
Filter2D::tapSum() const
{
    float total = 0.0f;
    for (int y = 0; y < size_; ++y)
        for (int x = 0; x < size_; ++x)
            total += at(x, y);
    return total;
}

Filter2D
Filter2D::flipped() const
{
    Filter2D out(size_);
    for (int y = 0; y < size_; ++y)
        for (int x = 0; x < size_; ++x)
            out.at(x, y) = at(size_ - 1 - x, size_ - 1 - y);
    return out;
}

Filter2D
gaussianFilter(int size, float sigma)
{
    Filter2D f(size);
    int half = size / 2;
    float total = 0.0f;
    for (int y = 0; y < size; ++y) {
        for (int x = 0; x < size; ++x) {
            float dx = float(x - half), dy = float(y - half);
            float v = std::exp(-(dx * dx + dy * dy) /
                               (2.0f * sigma * sigma));
            f.at(x, y) = v;
            total += v;
        }
    }
    for (int y = 0; y < size; ++y)
        for (int x = 0; x < size; ++x)
            f.at(x, y) /= total;
    return f;
}

Filter2D
boxFilter(int size)
{
    Filter2D f(size);
    float v = 1.0f / float(size * size);
    for (int y = 0; y < size; ++y)
        for (int x = 0; x < size; ++x)
            f.at(x, y) = v;
    return f;
}

Filter2D
sobelX()
{
    Filter2D f(3);
    const float taps[9] = {-1, 0, 1, -2, 0, 2, -1, 0, 1};
    for (int i = 0; i < 9; ++i)
        f.at(i % 3, i / 3) = taps[i];
    return f;
}

Filter2D
sobelY()
{
    Filter2D f(3);
    const float taps[9] = {-1, -2, -1, 0, 0, 0, 1, 2, 1};
    for (int i = 0; i < 9; ++i)
        f.at(i % 3, i / 3) = taps[i];
    return f;
}

Filter2D
identityFilter(int size)
{
    Filter2D f(size);
    f.at(size / 2, size / 2) = 1.0f;
    return f;
}

Plane
convolve(const Plane &input, const Filter2D &filter)
{
    Plane out(input.width(), input.height());
    convolveBuf(input.data().data(), input.width(), input.height(),
                filter, out.data().data());
    return out;
}

void
convolveInto(const Plane &input, const Filter2D &filter, Plane &out)
{
    RELIEF_ASSERT(input.sameShape(out),
                  "convolve output shape mismatch");
    convolveBuf(input.data().data(), input.width(), input.height(),
                filter, out.data().data());
}

void
convolveBuf(const float *src, int w, int h, const Filter2D &filter,
            float *dst)
{
    HostProfScope prof(HostCat::Kernels);
    const KernelOps &ops = kernelOps();
    const int fsize = filter.size();
    const int half = fsize / 2;
    const float *rows[5];
    for (int y = 0; y < h; ++y) {
        for (int fy = 0; fy < fsize; ++fy) {
            int yy = std::clamp(y + fy - half, 0, h - 1);
            rows[fy] = src + std::size_t(yy) * std::size_t(w);
        }
        ops.convRow(rows, w, filter.taps(), fsize,
                    dst + std::size_t(y) * std::size_t(w));
    }
}

Plane
convolveSeparable(const Plane &input, const std::vector<float> &row_taps,
                  const std::vector<float> &col_taps)
{
    RELIEF_ASSERT(row_taps.size() >= 1 && row_taps.size() <= 5 &&
                      col_taps.size() >= 1 && col_taps.size() <= 5,
                  "separable taps must be 1..5 long");
    HostProfScope prof(HostCat::Kernels);
    const KernelOps &ops = kernelOps();
    const int w = input.width(), h = input.height();
    Plane out(w, h);
    ScratchVec tmp(std::size_t(w) * std::size_t(h));
    const float *src = input.data().data();
    for (int y = 0; y < h; ++y)
        ops.sepConvRowH(src + std::size_t(y) * w, w, row_taps.data(),
                        int(row_taps.size()),
                        tmp.data() + std::size_t(y) * w);
    const int fsize = int(col_taps.size());
    const int half = fsize / 2;
    const float *rows[5];
    for (int y = 0; y < h; ++y) {
        for (int f = 0; f < fsize; ++f) {
            int yy = std::clamp(y + f - half, 0, h - 1);
            rows[f] = tmp.data() + std::size_t(yy) * std::size_t(w);
        }
        ops.sepConvRowV(rows, w, col_taps.data(), fsize,
                        out.data().data() + std::size_t(y) * w);
    }
    return out;
}

std::vector<float>
gaussianTaps1d(int size, float sigma)
{
    RELIEF_ASSERT(size >= 1 && size <= 5,
                  "1-D Gaussian size must be 1..5, got ", size);
    std::vector<float> taps(std::size_t(size), 0.0f);
    const int half = size / 2;
    float total = 0.0f;
    for (int i = 0; i < size; ++i) {
        float d = float(i - half);
        taps[std::size_t(i)] =
            std::exp(-(d * d) / (2.0f * sigma * sigma));
        total += taps[std::size_t(i)];
    }
    for (float &t : taps)
        t /= total;
    return taps;
}

Plane
gradientMagnitude(const Plane &gx, const Plane &gy)
{
    RELIEF_ASSERT(gx.sameShape(gy),
                  "gradient magnitude: gx/gy shape mismatch");
    HostProfScope prof(HostCat::Kernels);
    Plane out(gx.width(), gx.height());
    kernelOps().gradMag(gx.data().data(), gy.data().data(),
                        out.data().data(), gx.size());
    return out;
}

} // namespace relief
