#include "kernels/filters.hh"

#include <cmath>

#include "sim/logging.hh"

namespace relief
{

Filter2D::Filter2D(int size) : size_(size)
{
    RELIEF_ASSERT(size >= 1 && size <= 5,
                  "filter size must be 1..5, got ", size);
}

float
Filter2D::tapSum() const
{
    float total = 0.0f;
    for (int y = 0; y < size_; ++y)
        for (int x = 0; x < size_; ++x)
            total += at(x, y);
    return total;
}

Filter2D
Filter2D::flipped() const
{
    Filter2D out(size_);
    for (int y = 0; y < size_; ++y)
        for (int x = 0; x < size_; ++x)
            out.at(x, y) = at(size_ - 1 - x, size_ - 1 - y);
    return out;
}

Filter2D
gaussianFilter(int size, float sigma)
{
    Filter2D f(size);
    int half = size / 2;
    float total = 0.0f;
    for (int y = 0; y < size; ++y) {
        for (int x = 0; x < size; ++x) {
            float dx = float(x - half), dy = float(y - half);
            float v = std::exp(-(dx * dx + dy * dy) /
                               (2.0f * sigma * sigma));
            f.at(x, y) = v;
            total += v;
        }
    }
    for (int y = 0; y < size; ++y)
        for (int x = 0; x < size; ++x)
            f.at(x, y) /= total;
    return f;
}

Filter2D
boxFilter(int size)
{
    Filter2D f(size);
    float v = 1.0f / float(size * size);
    for (int y = 0; y < size; ++y)
        for (int x = 0; x < size; ++x)
            f.at(x, y) = v;
    return f;
}

Filter2D
sobelX()
{
    Filter2D f(3);
    const float taps[9] = {-1, 0, 1, -2, 0, 2, -1, 0, 1};
    for (int i = 0; i < 9; ++i)
        f.at(i % 3, i / 3) = taps[i];
    return f;
}

Filter2D
sobelY()
{
    Filter2D f(3);
    const float taps[9] = {-1, -2, -1, 0, 0, 0, 1, 2, 1};
    for (int i = 0; i < 9; ++i)
        f.at(i % 3, i / 3) = taps[i];
    return f;
}

Filter2D
identityFilter(int size)
{
    Filter2D f(size);
    f.at(size / 2, size / 2) = 1.0f;
    return f;
}

Plane
convolve(const Plane &input, const Filter2D &filter)
{
    Plane out(input.width(), input.height());
    int half = filter.size() / 2;
    for (int y = 0; y < input.height(); ++y) {
        for (int x = 0; x < input.width(); ++x) {
            float acc = 0.0f;
            for (int fy = 0; fy < filter.size(); ++fy) {
                for (int fx = 0; fx < filter.size(); ++fx) {
                    acc += filter.at(fx, fy) *
                           input.clampedAt(x + fx - half, y + fy - half);
                }
            }
            out.at(x, y) = acc;
        }
    }
    return out;
}

} // namespace relief
