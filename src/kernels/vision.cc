#include "kernels/vision.hh"

#include <algorithm>
#include <cmath>
#include <queue>

#include "kernels/elemwise.hh"
#include "sim/logging.hh"

namespace relief
{

namespace
{

/** Bilinear demosaic of an RGGB mosaic into full-resolution RGB. */
RgbImage
demosaic(const BayerImage &raw)
{
    RgbImage out(raw.width, raw.height);
    auto sample = [&raw](int x, int y) {
        x = std::clamp(x, 0, raw.width - 1);
        y = std::clamp(y, 0, raw.height - 1);
        return float(raw.at(x, y)) / 4095.0f;
    };
    auto is_red = [](int x, int y) { return y % 2 == 0 && x % 2 == 0; };
    auto is_blue = [](int x, int y) { return y % 2 == 1 && x % 2 == 1; };

    for (int y = 0; y < raw.height; ++y) {
        for (int x = 0; x < raw.width; ++x) {
            float r, g, b;
            if (is_red(x, y)) {
                r = sample(x, y);
                g = (sample(x - 1, y) + sample(x + 1, y) +
                     sample(x, y - 1) + sample(x, y + 1)) /
                    4.0f;
                b = (sample(x - 1, y - 1) + sample(x + 1, y - 1) +
                     sample(x - 1, y + 1) + sample(x + 1, y + 1)) /
                    4.0f;
            } else if (is_blue(x, y)) {
                b = sample(x, y);
                g = (sample(x - 1, y) + sample(x + 1, y) +
                     sample(x, y - 1) + sample(x, y + 1)) /
                    4.0f;
                r = (sample(x - 1, y - 1) + sample(x + 1, y - 1) +
                     sample(x - 1, y + 1) + sample(x + 1, y + 1)) /
                    4.0f;
            } else {
                g = sample(x, y);
                if (y % 2 == 0) { // green on a red row
                    r = (sample(x - 1, y) + sample(x + 1, y)) / 2.0f;
                    b = (sample(x, y - 1) + sample(x, y + 1)) / 2.0f;
                } else { // green on a blue row
                    b = (sample(x - 1, y) + sample(x + 1, y)) / 2.0f;
                    r = (sample(x, y - 1) + sample(x, y + 1)) / 2.0f;
                }
            }
            out.r.at(x, y) = r;
            out.g.at(x, y) = g;
            out.b.at(x, y) = b;
        }
    }
    return out;
}

} // namespace

RgbImage
isp(const BayerImage &raw, const IspParams &params)
{
    RgbImage rgb = demosaic(raw);
    float inv_gamma = 1.0f / params.gamma;
    for (int y = 0; y < rgb.height(); ++y) {
        for (int x = 0; x < rgb.width(); ++x) {
            float in[3] = {rgb.r.at(x, y), rgb.g.at(x, y), rgb.b.at(x, y)};
            float out[3];
            for (int c = 0; c < 3; ++c) {
                float v = params.ccm[c][0] * in[0] +
                          params.ccm[c][1] * in[1] +
                          params.ccm[c][2] * in[2];
                v = std::clamp(v, 0.0f, 1.0f);
                out[c] = std::pow(v, inv_gamma);
            }
            rgb.r.at(x, y) = out[0];
            rgb.g.at(x, y) = out[1];
            rgb.b.at(x, y) = out[2];
        }
    }
    return rgb;
}

Plane
grayscale(const RgbImage &rgb)
{
    Plane out(rgb.width(), rgb.height());
    for (int y = 0; y < rgb.height(); ++y) {
        for (int x = 0; x < rgb.width(); ++x) {
            out.at(x, y) = 0.299f * rgb.r.at(x, y) +
                           0.587f * rgb.g.at(x, y) +
                           0.114f * rgb.b.at(x, y);
        }
    }
    return out;
}

Plane
cannyNonMax(const Plane &magnitude, const Plane &direction)
{
    RELIEF_ASSERT(magnitude.sameShape(direction),
                  "canny NMS: magnitude/direction shape mismatch");
    Plane out(magnitude.width(), magnitude.height());
    for (int y = 0; y < magnitude.height(); ++y) {
        for (int x = 0; x < magnitude.width(); ++x) {
            float angle = direction.at(x, y);
            // Quantize to 0/45/90/135 degrees.
            float deg = angle * 180.0f / float(M_PI);
            if (deg < 0.0f)
                deg += 180.0f;
            int dx1, dy1;
            if (deg < 22.5f || deg >= 157.5f) {
                dx1 = 1;
                dy1 = 0;
            } else if (deg < 67.5f) {
                dx1 = 1;
                dy1 = 1;
            } else if (deg < 112.5f) {
                dx1 = 0;
                dy1 = 1;
            } else {
                dx1 = -1;
                dy1 = 1;
            }
            float m = magnitude.at(x, y);
            float n1 = magnitude.clampedAt(x + dx1, y + dy1);
            float n2 = magnitude.clampedAt(x - dx1, y - dy1);
            out.at(x, y) = (m >= n1 && m >= n2) ? m : 0.0f;
        }
    }
    return out;
}

Plane
edgeTracking(const Plane &nms, float low_t, float high_t)
{
    RELIEF_ASSERT(low_t <= high_t,
                  "edge tracking: low threshold above high threshold");
    int w = nms.width(), h = nms.height();
    Plane out(w, h);
    std::queue<std::pair<int, int>> frontier;
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            if (nms.at(x, y) >= high_t) {
                out.at(x, y) = 1.0f;
                frontier.emplace(x, y);
            }
        }
    }
    // Grow strong edges through weak pixels (8-connected).
    while (!frontier.empty()) {
        auto [x, y] = frontier.front();
        frontier.pop();
        for (int dy = -1; dy <= 1; ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
                int nx = x + dx, ny = y + dy;
                if (nx < 0 || nx >= w || ny < 0 || ny >= h)
                    continue;
                if (out.at(nx, ny) == 0.0f && nms.at(nx, ny) >= low_t) {
                    out.at(nx, ny) = 1.0f;
                    frontier.emplace(nx, ny);
                }
            }
        }
    }
    return out;
}

Plane
harrisNonMax(const Plane &response)
{
    Plane out(response.width(), response.height());
    for (int y = 0; y < response.height(); ++y) {
        for (int x = 0; x < response.width(); ++x) {
            float v = response.at(x, y);
            if (v <= 0.0f)
                continue;
            bool is_max = true;
            for (int dy = -1; dy <= 1 && is_max; ++dy)
                for (int dx = -1; dx <= 1; ++dx)
                    if ((dx || dy) &&
                        response.clampedAt(x + dx, y + dy) > v) {
                        is_max = false;
                        break;
                    }
            out.at(x, y) = is_max ? v : 0.0f;
        }
    }
    return out;
}

Plane
cannyReference(const BayerImage &raw, float low_t, float high_t)
{
    Plane gray = grayscale(isp(raw));
    Plane smooth = convolve(gray, gaussianFilter(5));
    Plane gx = convolve(smooth, sobelX());
    Plane gy = convolve(smooth, sobelY());
    Plane gx2 = elemwise(ElemOp::Sqr, gx);
    Plane gy2 = elemwise(ElemOp::Sqr, gy);
    Plane sum = elemwise(ElemOp::Add, gx2, &gy2);
    Plane mag = elemwise(ElemOp::Sqrt, sum);
    Plane dir = elemwise(ElemOp::Atan2, gy, &gx);
    Plane nms = cannyNonMax(mag, dir);
    Plane edges = edgeTracking(nms, low_t, high_t);
    // Final elem-matrix boost stage of the DAG: scale the binary edge
    // map to full intensity.
    return elemwise(ElemOp::Scale, edges, nullptr, 1.0f);
}

Plane
harrisReference(const BayerImage &raw, float k)
{
    Plane gray = grayscale(isp(raw));
    Plane ix = convolve(gray, sobelX());
    Plane iy = convolve(gray, sobelY());
    Plane ixx = elemwise(ElemOp::Mul, ix, &ix);
    Plane iyy = elemwise(ElemOp::Mul, iy, &iy);
    Plane ixy = elemwise(ElemOp::Mul, ix, &iy);
    Filter2D window = gaussianFilter(5);
    Plane sxx = convolve(ixx, window);
    Plane syy = convolve(iyy, window);
    Plane sxy = convolve(ixy, window);
    // R = det(M) - k * trace(M)^2
    Plane det_a = elemwise(ElemOp::Mul, sxx, &syy);
    Plane det_b = elemwise(ElemOp::Mul, sxy, &sxy);
    Plane det = elemwise(ElemOp::Sub, det_a, &det_b);
    Plane trace = elemwise(ElemOp::Add, sxx, &syy);
    Plane trace2 = elemwise(ElemOp::Sqr, trace);
    Plane ktrace2 = elemwise(ElemOp::Scale, trace2, nullptr, k);
    Plane response = elemwise(ElemOp::Sub, det, &ktrace2);
    return harrisNonMax(response);
}

Plane
richardsonLucy(const Plane &blurred, const Filter2D &psf, int iterations)
{
    RELIEF_ASSERT(iterations >= 1, "RL deblur needs >= 1 iteration");
    Plane estimate = blurred;
    Filter2D mirrored = psf.flipped();
    for (int it = 0; it < iterations; ++it) {
        Plane reblurred = convolve(estimate, psf);
        Plane ratio = elemwise(ElemOp::Div, blurred, &reblurred);
        Plane correction = convolve(ratio, mirrored);
        estimate = elemwise(ElemOp::Mul, estimate, &correction);
    }
    return estimate;
}

} // namespace relief
