#include "kernels/vision.hh"

#include <algorithm>
#include <cmath>
#include <queue>

#include "kernels/elemwise.hh"
#include "kernels/pipeline.hh"
#include "kernels/scratch.hh"
#include "kernels/simd/simd.hh"
#include "sim/hostprof.hh"
#include "sim/logging.hh"

namespace relief
{

namespace
{

/** Bilinear demosaic of an RGGB mosaic into full-resolution RGB. */
RgbImage
demosaic(const BayerImage &raw)
{
    RgbImage out(raw.width, raw.height);
    auto sample = [&raw](int x, int y) {
        x = std::clamp(x, 0, raw.width - 1);
        y = std::clamp(y, 0, raw.height - 1);
        return float(raw.at(x, y)) / 4095.0f;
    };
    auto is_red = [](int x, int y) { return y % 2 == 0 && x % 2 == 0; };
    auto is_blue = [](int x, int y) { return y % 2 == 1 && x % 2 == 1; };

    for (int y = 0; y < raw.height; ++y) {
        for (int x = 0; x < raw.width; ++x) {
            float r, g, b;
            if (is_red(x, y)) {
                r = sample(x, y);
                g = (sample(x - 1, y) + sample(x + 1, y) +
                     sample(x, y - 1) + sample(x, y + 1)) /
                    4.0f;
                b = (sample(x - 1, y - 1) + sample(x + 1, y - 1) +
                     sample(x - 1, y + 1) + sample(x + 1, y + 1)) /
                    4.0f;
            } else if (is_blue(x, y)) {
                b = sample(x, y);
                g = (sample(x - 1, y) + sample(x + 1, y) +
                     sample(x, y - 1) + sample(x, y + 1)) /
                    4.0f;
                r = (sample(x - 1, y - 1) + sample(x + 1, y - 1) +
                     sample(x - 1, y + 1) + sample(x + 1, y + 1)) /
                    4.0f;
            } else {
                g = sample(x, y);
                if (y % 2 == 0) { // green on a red row
                    r = (sample(x - 1, y) + sample(x + 1, y)) / 2.0f;
                    b = (sample(x, y - 1) + sample(x, y + 1)) / 2.0f;
                } else { // green on a blue row
                    b = (sample(x - 1, y) + sample(x + 1, y)) / 2.0f;
                    r = (sample(x, y - 1) + sample(x, y + 1)) / 2.0f;
                }
            }
            out.r.at(x, y) = r;
            out.g.at(x, y) = g;
            out.b.at(x, y) = b;
        }
    }
    return out;
}

} // namespace

RgbImage
isp(const BayerImage &raw, const IspParams &params)
{
    HostProfScope prof(HostCat::Kernels);
    RgbImage rgb = demosaic(raw);
    const std::size_t n = rgb.r.size();
    // CCM + clamp is the vector pass; the per-value op sequence
    // (matrix row, clamp, pow) matches the former fused pixel loop.
    kernelOps().ccmClamp(rgb.r.data().data(), rgb.g.data().data(),
                         rgb.b.data().data(), n, params.ccm);
    const float inv_gamma = 1.0f / params.gamma;
    gammaCorrect(rgb.r.data().data(), n, inv_gamma);
    gammaCorrect(rgb.g.data().data(), n, inv_gamma);
    gammaCorrect(rgb.b.data().data(), n, inv_gamma);
    return rgb;
}

Plane
grayscale(const RgbImage &rgb)
{
    Plane out(rgb.width(), rgb.height());
    grayscaleBuf(rgb.r.data().data(), rgb.g.data().data(),
                 rgb.b.data().data(), out.data().data(), out.size());
    return out;
}

void
grayscaleBuf(const float *r, const float *g, const float *b, float *out,
             std::size_t n)
{
    HostProfScope prof(HostCat::Kernels);
    kernelOps().bt601(r, g, b, out, n);
}

Plane
cannyNonMax(const Plane &magnitude, const Plane &direction)
{
    RELIEF_ASSERT(magnitude.sameShape(direction),
                  "canny NMS: magnitude/direction shape mismatch");
    HostProfScope prof(HostCat::Kernels);
    const int w = magnitude.width(), h = magnitude.height();
    Plane out(w, h);
    const KernelOps &ops = kernelOps();
    const float *src = magnitude.data().data();
    const float *dir = direction.data().data();
    const float *m[3];
    for (int y = 0; y < h; ++y) {
        for (int dy = -1; dy <= 1; ++dy) {
            int yy = std::clamp(y + dy, 0, h - 1);
            m[dy + 1] = src + std::size_t(yy) * std::size_t(w);
        }
        ops.cannyNmsRow(m, dir + std::size_t(y) * std::size_t(w), w,
                        out.data().data() +
                            std::size_t(y) * std::size_t(w));
    }
    return out;
}

Plane
edgeTracking(const Plane &nms, float low_t, float high_t)
{
    RELIEF_ASSERT(low_t <= high_t,
                  "edge tracking: low threshold above high threshold");
    HostProfScope prof(HostCat::Kernels);
    int w = nms.width(), h = nms.height();
    Plane out(w, h);
    std::queue<std::pair<int, int>> frontier;
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            if (nms.at(x, y) >= high_t) {
                out.at(x, y) = 1.0f;
                frontier.emplace(x, y);
            }
        }
    }
    // Grow strong edges through weak pixels (8-connected).
    while (!frontier.empty()) {
        auto [x, y] = frontier.front();
        frontier.pop();
        for (int dy = -1; dy <= 1; ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
                int nx = x + dx, ny = y + dy;
                if (nx < 0 || nx >= w || ny < 0 || ny >= h)
                    continue;
                if (out.at(nx, ny) == 0.0f && nms.at(nx, ny) >= low_t) {
                    out.at(nx, ny) = 1.0f;
                    frontier.emplace(nx, ny);
                }
            }
        }
    }
    return out;
}

Plane
harrisNonMax(const Plane &response)
{
    HostProfScope prof(HostCat::Kernels);
    const int w = response.width(), h = response.height();
    Plane out(w, h);
    const KernelOps &ops = kernelOps();
    const float *src = response.data().data();
    const float *r[3];
    for (int y = 0; y < h; ++y) {
        for (int dy = -1; dy <= 1; ++dy) {
            int yy = std::clamp(y + dy, 0, h - 1);
            r[dy + 1] = src + std::size_t(yy) * std::size_t(w);
        }
        ops.harrisNmsRow(r, w,
                         out.data().data() +
                             std::size_t(y) * std::size_t(w));
    }
    return out;
}

Plane
cannyReference(const BayerImage &raw, float low_t, float high_t)
{
    Plane gray = grayscale(isp(raw));
    // Fused row-tiled smooth -> Sobel -> magnitude/direction -> NMS
    // (bit-identical to the unfused whole-plane chain).
    Plane nms = cannyNmsFromGray(gray, gaussianFilter(5));
    Plane edges = edgeTracking(nms, low_t, high_t);
    // Final elem-matrix boost stage of the DAG: scale the binary edge
    // map to full intensity.
    return elemwise(ElemOp::Scale, edges, nullptr, 1.0f);
}

Plane
harrisReference(const BayerImage &raw, float k)
{
    Plane gray = grayscale(isp(raw));
    HostProfScope prof(HostCat::Kernels);
    const int w = gray.width(), h = gray.height();
    Filter2D window = gaussianFilter(5);
    // Intermediates live in pooled scratch; t0 is recycled for each
    // product plane between convolutions. The per-element op sequence
    // matches the former one-Plane-per-step chain exactly.
    ScratchPlane ix(w, h), iy(w, h), t0(w, h);
    ScratchPlane sxx(w, h), syy(w, h), sxy(w, h);
    ScratchPlane det(w, h), trace(w, h);
    convolveInto(gray, sobelX(), *ix);
    convolveInto(gray, sobelY(), *iy);
    elemwiseInto(ElemOp::Mul, *ix, &*ix, 1.0f, *t0); // ixx
    convolveInto(*t0, window, *sxx);
    elemwiseInto(ElemOp::Mul, *iy, &*iy, 1.0f, *t0); // iyy
    convolveInto(*t0, window, *syy);
    elemwiseInto(ElemOp::Mul, *ix, &*iy, 1.0f, *t0); // ixy
    convolveInto(*t0, window, *sxy);
    // R = det(M) - k * trace(M)^2
    elemwiseInto(ElemOp::Mul, *sxx, &*syy, 1.0f, *det);
    elemwiseInto(ElemOp::Mul, *sxy, &*sxy, 1.0f, *t0);
    elemwiseInto(ElemOp::Sub, *det, &*t0, 1.0f, *det);
    elemwiseInto(ElemOp::Add, *sxx, &*syy, 1.0f, *trace);
    elemwiseInto(ElemOp::Sqr, *trace, nullptr, 1.0f, *trace);
    elemwiseInto(ElemOp::Scale, *trace, nullptr, k, *trace);
    elemwiseInto(ElemOp::Sub, *det, &*trace, 1.0f, *det);
    return harrisNonMax(*det);
}

Plane
richardsonLucy(const Plane &blurred, const Filter2D &psf, int iterations)
{
    RELIEF_ASSERT(iterations >= 1, "RL deblur needs >= 1 iteration");
    HostProfScope prof(HostCat::Kernels);
    Plane estimate = blurred;
    Filter2D mirrored = psf.flipped();
    for (int it = 0; it < iterations; ++it) {
        // One row-tiled pass per iteration: reblur, guarded ratio
        // against the observation, correction blur, multiply into the
        // running estimate — intermediates never leave pooled rings.
        estimate = runRowPipeline(
            estimate, {convStage(psf),
                       zipStage(ElemOp::Div, &blurred, true),
                       convStage(mirrored),
                       zipStage(ElemOp::Mul, &estimate, true)});
    }
    return estimate;
}

} // namespace relief
