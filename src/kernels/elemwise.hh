/**
 * @file
 * Elementwise operations — the `elem-matrix` accelerator's function.
 * Works on Plane images and raw float vectors (the RNN cells use the
 * vector form on hidden-size-128 state).
 */

#ifndef RELIEF_KERNELS_ELEMWISE_HH
#define RELIEF_KERNELS_ELEMWISE_HH

#include <vector>

#include "acc/acc_types.hh"
#include "kernels/image.hh"

namespace relief
{

/** True if @p op consumes two operands (Add/Sub/Mul/Div/Atan2). */
bool elemOpIsBinary(ElemOp op);

/**
 * Apply @p op elementwise. @p b must be non-null for binary ops and is
 * ignored for unary ops; @p scalar parameterizes Scale.
 */
std::vector<float> elemwise(ElemOp op, const std::vector<float> &a,
                            const std::vector<float> *b = nullptr,
                            float scalar = 1.0f);

/** Plane overload of elemwise(). */
Plane elemwise(ElemOp op, const Plane &a, const Plane *b = nullptr,
               float scalar = 1.0f);

/**
 * Raw-buffer elemwise into caller storage (SIMD-dispatched via
 * kernels/simd/simd.hh; the row-tiled pipeline and the DAG builders
 * use this to avoid copies). @p out may alias @p a or @p b.
 */
void elemwiseBuf(ElemOp op, const float *a, const float *b, float scalar,
                 float *out, std::size_t n);

/** elemwise() into an existing same-shape Plane (pooled scratch). */
void elemwiseInto(ElemOp op, const Plane &a, const Plane *b, float scalar,
                  Plane &out);

} // namespace relief

#endif // RELIEF_KERNELS_ELEMWISE_HH
