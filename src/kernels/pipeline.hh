/**
 * @file
 * Row-tiled kernel pipeline: chain producer→consumer kernels
 * (blur → gradient → NMS) so each stage reads a sliding window of
 * rows from a small pooled ring buffer instead of whole intermediate
 * Planes. Output is bit-identical to running the stages as separate
 * whole-plane passes — every stage applies the same SIMD row
 * primitives (kernels/simd/simd.hh) to the same clamped row data, in
 * the same order; only the storage the rows live in changes.
 */

#ifndef RELIEF_KERNELS_PIPELINE_HH
#define RELIEF_KERNELS_PIPELINE_HH

#include <functional>
#include <vector>

#include "acc/acc_types.hh"
#include "kernels/filters.hh"
#include "kernels/image.hh"

namespace relief
{

/** Read-only view of a stage's input rows: either a whole Plane or a
 *  ring of the last few produced rows. row(y) clamps y to [0, h). */
class RowWindow
{
  public:
    /** Whole-plane window (@p data is w*h row-major). */
    RowWindow(const float *data, int w, int h)
        : data_(data), w_(w), h_(h)
    {
    }

    /** Ring window: row y lives at ring[y % ring_cap]. Valid only
     *  while the producer stays within ring_cap rows of the
     *  consumer — runRowPipeline guarantees that. */
    RowWindow(float *const *ring, int ring_cap, int w, int h)
        : ring_(ring), cap_(ring_cap), w_(w), h_(h)
    {
    }

    const float *
    row(int y) const
    {
        y = y < 0 ? 0 : (y >= h_ ? h_ - 1 : y);
        if (ring_ != nullptr)
            return ring_[y % cap_];
        return data_ + std::size_t(y) * std::size_t(w_);
    }

    int width() const { return w_; }
    int height() const { return h_; }

  private:
    const float *data_ = nullptr;
    float *const *ring_ = nullptr;
    int cap_ = 0;
    int w_ = 0;
    int h_ = 0;
};

/** One row-producing stage of a pipeline. */
struct RowStage
{
    /** Vertical support: producing output row y reads input rows
     *  [y - radius, y + radius] (clamped). */
    int radius = 0;

    /** Produce output row @p y (w floats) from @p in. */
    std::function<void(const RowWindow &in, int y, float *out)> run;
};

/** 2-D convolution stage (radius = filter.size() / 2). */
RowStage convStage(const Filter2D &filter);

/** Elementwise-binary stage against an external Plane: row y of
 *  @p ext is the first operand when @p ext_first, else the second.
 *  @p ext must outlive the pipeline run and match its shape. */
RowStage zipStage(ElemOp op, const Plane *ext, bool ext_first,
                  float scalar = 1.0f);

/** Elementwise-unary stage. */
RowStage mapStage(ElemOp op, float scalar = 1.0f);

/**
 * Run @p stages over @p input. Intermediate rows live in pooled ring
 * buffers sized 2 * next_stage.radius + 1; only the final stage
 * writes a full Plane. Rows are produced in a pull-based, strictly
 * monotone order, so results are deterministic and bit-identical to
 * the unfused whole-plane chain.
 */
Plane runRowPipeline(const Plane &input,
                     const std::vector<RowStage> &stages);

/**
 * Fused Canny front half: @p smooth blur → Sobel gx/gy → gradient
 * magnitude/direction → directional NMS, all row-tiled from pooled
 * scratch. Bit-identical to the unfused convolve/elemwise/cannyNonMax
 * chain (the atan2 rows take the shared scalar path).
 */
Plane cannyNmsFromGray(const Plane &gray, const Filter2D &smooth);

} // namespace relief

#endif // RELIEF_KERNELS_PIPELINE_HH
