#include "sched/decision_log.hh"

#include <sstream>
#include <utility>

#include "sim/logging.hh"
#include "stats/json.hh"

namespace relief
{

const char *
promotionReasonName(PromotionReason reason)
{
    switch (reason) {
      case PromotionReason::Feasible:
        return "feasible";
      case PromotionReason::CheckDisabled:
        return "check-disabled";
      case PromotionReason::NoIdleInstance:
        return "no-idle-instance";
      case PromotionReason::VictimWouldMiss:
        return "victim-would-miss";
    }
    return "?";
}

bool
promotionGranted(PromotionReason reason)
{
    return reason == PromotionReason::Feasible ||
           reason == PromotionReason::CheckDisabled;
}

std::string
PromotionDecision::summary() const
{
    std::ostringstream os;
    os << (granted ? "promote " : "deny ") << label << " (node " << node
       << ", " << accTypeName(type) << "): reason="
       << promotionReasonName(reason) << " laxity=" << laxity
       << " queue_depth=" << queueDepth;
    if (!victim.empty())
        os << " victim=" << victim << " victim_slack=" << victimSlack;
    return os.str();
}

void
DecisionLog::record(PromotionDecision decision)
{
    if (decision.granted)
        ++granted_;
    decisions_.push_back(std::move(decision));
}

const PromotionDecision &
DecisionLog::at(std::size_t index) const
{
    RELIEF_ASSERT(index < decisions_.size(),
                  "decision index ", index, " out of range");
    return decisions_[index];
}

void
DecisionLog::writeJson(std::ostream &os) const
{
    os << "[\n";
    bool first = true;
    for (const PromotionDecision &d : decisions_) {
        if (!first)
            os << ",\n";
        first = false;
        os << "  {\"tick\": " << d.when << ", \"node\": " << d.node
           << ", \"label\": \"" << jsonEscape(d.label)
           << "\", \"acc\": \"" << accTypeName(d.type)
           << "\", \"laxity\": " << d.laxity
           << ", \"queue_depth\": " << d.queueDepth
           << ", \"granted\": " << (d.granted ? "true" : "false")
           << ", \"reason\": \"" << promotionReasonName(d.reason)
           << "\"";
        if (!d.victim.empty())
            os << ", \"victim\": \"" << jsonEscape(d.victim)
               << "\", \"victim_slack\": " << d.victimSlack;
        os << "}";
    }
    os << "\n]\n";
}

void
DecisionLog::clear()
{
    decisions_.clear();
    granted_ = 0;
}

} // namespace relief
