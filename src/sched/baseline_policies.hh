/**
 * @file
 * The five baseline policies the paper compares RELIEF against
 * (Section II-C): FCFS, GEDF-D, GEDF-N, LL, LAX, and HetSched.
 */

#ifndef RELIEF_SCHED_BASELINE_POLICIES_HH
#define RELIEF_SCHED_BASELINE_POLICIES_HH

#include "sched/policy.hh"

namespace relief
{

/** First come, first served: append to the tail. */
class FcfsPolicy : public Policy
{
  public:
    PolicyKind kind() const override { return PolicyKind::Fcfs; }
    DeadlineScheme deadlineScheme() const override
    {
        return DeadlineScheme::CriticalPath; // Deadlines only scored.
    }
    void onNodesReady(const std::vector<Node *> &ready,
                      const SchedContext &ctx,
                      ReadyQueues &queues) override;
    Tick pushCost(std::size_t queue_len) const override;
};

/** Global EDF over a configurable deadline scheme (GEDF-D / GEDF-N). */
class GedfPolicy : public Policy
{
  public:
    /** @param per_node true = GEDF-N (critical-path deadlines),
     *                  false = GEDF-D (DAG deadline). */
    explicit GedfPolicy(bool per_node) : perNode_(per_node) {}

    PolicyKind kind() const override
    {
        return perNode_ ? PolicyKind::GedfN : PolicyKind::GedfD;
    }
    DeadlineScheme deadlineScheme() const override
    {
        return perNode_ ? DeadlineScheme::CriticalPath
                        : DeadlineScheme::DagDeadline;
    }
    void onNodesReady(const std::vector<Node *> &ready,
                      const SchedContext &ctx,
                      ReadyQueues &queues) override;

  private:
    bool perNode_;
};

/**
 * Least laxity first. @p scheme distinguishes vanilla LL/LAX
 * (critical-path deadlines) from HetSched (SDR sub-deadlines);
 * @p deprioritize_negative enables LAX's bypass of negative-laxity
 * nodes at dispatch time.
 */
class LeastLaxityPolicy : public Policy
{
  public:
    LeastLaxityPolicy(PolicyKind kind, DeadlineScheme scheme,
                      bool deprioritize_negative)
        : kind_(kind), scheme_(scheme),
          deprioritizeNegative_(deprioritize_negative)
    {
    }

    PolicyKind kind() const override { return kind_; }
    DeadlineScheme deadlineScheme() const override { return scheme_; }
    void onNodesReady(const std::vector<Node *> &ready,
                      const SchedContext &ctx,
                      ReadyQueues &queues) override;
    Node *selectNext(AccType type, ReadyQueues &queues, Tick now) override;
    Tick pushCost(std::size_t queue_len) const override;

  private:
    PolicyKind kind_;
    DeadlineScheme scheme_;
    bool deprioritizeNegative_;
};

/**
 * Dispatch helper shared by LAX and RELIEF-LAX: index of the first
 * node whose current laxity is non-negative; 0 if every node is
 * already late.
 */
std::size_t laxDispatchIndex(const ReadyQueue &queue, Tick now);

} // namespace relief

#endif // RELIEF_SCHED_BASELINE_POLICIES_HH
