#include "sched/baseline_policies.hh"
#include "sched/policy.hh"
#include "sched/relief.hh"
#include "sim/logging.hh"

namespace relief
{

std::unique_ptr<Policy>
makePolicy(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::Fcfs:
        return std::make_unique<FcfsPolicy>();
      case PolicyKind::GedfD:
        return std::make_unique<GedfPolicy>(false);
      case PolicyKind::GedfN:
        return std::make_unique<GedfPolicy>(true);
      case PolicyKind::LL:
        return std::make_unique<LeastLaxityPolicy>(
            PolicyKind::LL, DeadlineScheme::CriticalPath, false);
      case PolicyKind::Lax:
        return std::make_unique<LeastLaxityPolicy>(
            PolicyKind::Lax, DeadlineScheme::CriticalPath, true);
      case PolicyKind::HetSched:
        return std::make_unique<LeastLaxityPolicy>(
            PolicyKind::HetSched, DeadlineScheme::Sdr, false);
      case PolicyKind::ReliefLax:
        return std::make_unique<ReliefPolicy>(true);
      case PolicyKind::Relief:
        return std::make_unique<ReliefPolicy>(false);
      case PolicyKind::ReliefHetSched:
        return std::make_unique<ReliefPolicy>(
            ReliefOptions{false, DeadlineScheme::Sdr, true});
    }
    panic("unknown policy kind");
}

} // namespace relief
