/**
 * @file
 * Scheduling-policy interface and the policy catalogue.
 *
 * Policies evaluated in the paper (Section II-C):
 *  - FCFS:      append to tail (GAM+'s non-preemptive round-robin).
 *  - GEDF-D:    earliest deadline first, DAG deadline as node deadline
 *               (VIP).
 *  - GEDF-N:    earliest deadline first, critical-path node deadlines.
 *  - LL:        least laxity first, critical-path deadlines.
 *  - LAX:       LL + de-prioritization of negative-laxity nodes (Yeh et
 *               al.).
 *  - HetSched:  least laxity with SDR-distributed sub-deadlines.
 *  - RELIEF:    this paper — LL plus laxity-throttled promotion of
 *               forwarding nodes (Algorithms 1 and 2).
 *  - RELIEF-LAX: RELIEF + LAX's de-prioritization (Section V-E).
 */

#ifndef RELIEF_SCHED_POLICY_HH
#define RELIEF_SCHED_POLICY_HH

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "dag/dag.hh"
#include "sched/ready_queue.hh"
#include "sim/ticks.hh"

namespace relief
{

/** Catalogue of implemented policies. */
enum class PolicyKind
{
    Fcfs,
    GedfD,
    GedfN,
    LL,
    Lax,
    HetSched,
    ReliefLax,
    Relief,
    /** Section VII extension: RELIEF over HetSched's SDR-distributed
     *  laxity instead of plain least-laxity. */
    ReliefHetSched,
};

/** All policies in the paper's figure order. */
extern const std::vector<PolicyKind> allPolicies;

/** The six policies the headline figures compare. */
extern const std::vector<PolicyKind> mainPolicies;

const char *policyName(PolicyKind kind);

/** System snapshot handed to the policy on every scheduling event. */
struct SchedContext
{
    Tick now = 0;
    /** Idle accelerator instances per type (RELIEF's max_forwards). */
    std::array<int, std::size_t(numAccTypes)> idleCount{};
};

class Policy
{
  public:
    virtual ~Policy() = default;

    virtual PolicyKind kind() const = 0;
    std::string name() const { return policyName(kind()); }

    /** Which relative node deadline this policy schedules against. */
    virtual DeadlineScheme deadlineScheme() const = 0;

    /**
     * Insert newly ready nodes into the ready queues. When the nodes
     * are children of a node that just finished, they are forwarding
     * candidates (RELIEF cares; baselines just sort them in). Nodes
     * must already carry deadline/predictedRuntime/laxityKey.
     */
    virtual void onNodesReady(const std::vector<Node *> &ready,
                              const SchedContext &ctx,
                              ReadyQueues &queues) = 0;

    /**
     * Pick (and remove) the next node to launch on an idle accelerator
     * of @p type; nullptr if the queue is empty. Default: pop head.
     */
    virtual Node *selectNext(AccType type, ReadyQueues &queues, Tick now);

    /**
     * Modeled manager time for one ready-queue insertion at queue
     * length @p queue_len (Cortex-A7 class microcontroller; Fig. 12's
     * magnitudes). Used by the manager's scheduling-latency model.
     */
    virtual Tick pushCost(std::size_t queue_len) const;
};

/** Construct a policy instance. */
std::unique_ptr<Policy> makePolicy(PolicyKind kind);

} // namespace relief

#endif // RELIEF_SCHED_POLICY_HH
