#include "sched/oracle.hh"

#include <algorithm>
#include <map>

#include "sim/logging.hh"

namespace relief
{

namespace
{

/** Flattened problem description. */
struct Problem
{
    std::vector<const Node *> nodes;
    std::vector<Tick> runtime;
    std::vector<std::vector<int>> parents;  ///< Indices into nodes.
    std::vector<std::vector<int>> children;
    std::vector<int> dagOf;
    std::vector<Tick> dagDeadline; ///< Per DAG, absolute (arrival 0).
    std::vector<int> instType;     ///< Per instance, accIndex.
    int numNodes = 0;
    int numInstances = 0;
    int numDags = 0;
    int totalEdges = 0;
};

/** Mutable search state (copied per branch; sizes are tiny). */
struct State
{
    std::vector<Tick> finish;      ///< Per node; 0 sentinel via done[].
    std::vector<Tick> start;
    std::vector<bool> done;
    std::vector<int> assignedInst; ///< Per node.
    std::vector<Tick> instFree;    ///< Per instance.
    std::vector<int> instLast;     ///< Last node run (-1 none).
    /** Per instance: launch sequence (node indices, in order). */
    std::vector<std::vector<int>> instSeq;
    int scheduled = 0;
};

/** Score of a complete schedule, lexicographically comparable. */
struct Score
{
    int dagsMet = 0;
    int realized = 0;
    STick negMakespan = 0;

    bool
    operator>(const Score &other) const
    {
        if (dagsMet != other.dagsMet)
            return dagsMet > other.dagsMet;
        if (realized != other.realized)
            return realized > other.realized;
        return negMakespan > other.negMakespan;
    }
};

class Search
{
  public:
    Search(Problem problem, const OracleLimits &limits)
        : p_(std::move(problem)), limits_(limits)
    {
        best_.dagsMet = -1;
    }

    OracleResult
    run()
    {
        State state;
        state.finish.assign(std::size_t(p_.numNodes), 0);
        state.start.assign(std::size_t(p_.numNodes), 0);
        state.done.assign(std::size_t(p_.numNodes), false);
        state.assignedInst.assign(std::size_t(p_.numNodes), -1);
        state.instFree.assign(std::size_t(p_.numInstances), 0);
        state.instLast.assign(std::size_t(p_.numInstances), -1);
        state.instSeq.resize(std::size_t(p_.numInstances));
        dfs(state);

        OracleResult result;
        result.dagCount = p_.numDags;
        result.exhaustive = states_ < limits_.maxStates;
        result.statesExplored = states_;
        if (best_.dagsMet < 0)
            return result; // Nothing explored (empty problem).
        result.dagDeadlinesMet = best_.dagsMet;
        result.makespan = Tick(-best_.negMakespan);
        fillSchedule(result);
        return result;
    }

  private:
    /** Was edge parent -> child realized, and was it a colocation? */
    std::pair<bool, bool>
    edgeRealized(const State &state, int parent, int child) const
    {
        int inst = state.assignedInst[std::size_t(parent)];
        const auto &seq = state.instSeq[std::size_t(inst)];
        auto it = std::find(seq.begin(), seq.end(), parent);
        RELIEF_ASSERT(it != seq.end(), "oracle: parent not in sequence");
        std::size_t pos = std::size_t(it - seq.begin());

        if (state.assignedInst[std::size_t(child)] == inst) {
            // Colocation: the consumer directly follows the producer.
            bool direct = pos + 1 < seq.size() &&
                          seq[pos + 1] == child;
            return {direct, direct};
        }
        // Forward: the producer's data survives double buffering — at
        // most one later task may have *started* on the producer's
        // instance before the consumer begins reading.
        Tick child_start = state.start[std::size_t(child)];
        int later_started = 0;
        for (std::size_t i = pos + 1; i < seq.size(); ++i) {
            if (state.start[std::size_t(seq[i])] < child_start)
                ++later_started;
        }
        bool live = state.start[std::size_t(child)] >=
                        state.finish[std::size_t(parent)] &&
                    later_started <= 1;
        return {live, false};
    }

    Score
    evaluate(const State &state) const
    {
        Score score;
        std::vector<Tick> dag_finish(std::size_t(p_.numDags), 0);
        Tick makespan = 0;
        for (int i = 0; i < p_.numNodes; ++i) {
            Tick f = state.finish[std::size_t(i)];
            makespan = std::max(makespan, f);
            auto dag = std::size_t(p_.dagOf[std::size_t(i)]);
            dag_finish[dag] = std::max(dag_finish[dag], f);
            for (int parent : p_.parents[std::size_t(i)]) {
                auto [realized, coloc] = edgeRealized(state, parent, i);
                score.realized += realized;
                (void)coloc;
            }
        }
        for (int d = 0; d < p_.numDags; ++d) {
            score.dagsMet += dag_finish[std::size_t(d)] <=
                             p_.dagDeadline[std::size_t(d)];
        }
        score.negMakespan = -STick(makespan);
        return score;
    }

    void
    dfs(State &state)
    {
        if (states_ >= limits_.maxStates)
            return;
        ++states_;

        if (state.scheduled == p_.numNodes) {
            Score score = evaluate(state);
            if (score > best_) {
                best_ = score;
                bestState_ = state;
            }
            return;
        }

        // Optimistic bound: every unrealized edge realizes, every DAG
        // meets its deadline. (Realized edges of finished consumers
        // are fixed; unfinished ones count as potential.)
        // A cheap over-approximation: total edges as the cap.
        if (best_.dagsMet == p_.numDags &&
            best_.realized == p_.totalEdges) {
            // Best is already perfect on the first two criteria; only
            // makespan can improve. Keep searching (cheap problems) —
            // the state cap still bounds us.
        }

        // Assignable nodes: all parents scheduled.
        for (int i = 0; i < p_.numNodes; ++i) {
            if (state.done[std::size_t(i)])
                continue;
            bool ready = true;
            Tick ready_at = 0;
            for (int parent : p_.parents[std::size_t(i)]) {
                if (!state.done[std::size_t(parent)]) {
                    ready = false;
                    break;
                }
                ready_at = std::max(ready_at,
                                    state.finish[std::size_t(parent)]);
            }
            if (!ready)
                continue;

            // Deduplicate symmetric instances: identical (free, last)
            // pairs of the right type behave identically.
            std::map<std::pair<Tick, int>, bool> seen;
            for (int k = 0; k < p_.numInstances; ++k) {
                if (p_.instType[std::size_t(k)] !=
                    int(accIndex(p_.nodes[std::size_t(i)]->params.type)))
                    continue;
                auto key = std::make_pair(state.instFree[std::size_t(k)],
                                          state.instLast[std::size_t(k)]);
                if (seen.emplace(key, true).second == false)
                    continue;

                // Apply assignment i -> k.
                State next = state;
                Tick start = std::max(ready_at,
                                      state.instFree[std::size_t(k)]);
                Tick finish = start + p_.runtime[std::size_t(i)];
                next.start[std::size_t(i)] = start;
                next.finish[std::size_t(i)] = finish;
                next.done[std::size_t(i)] = true;
                next.assignedInst[std::size_t(i)] = k;
                next.instFree[std::size_t(k)] = finish;
                next.instLast[std::size_t(k)] = i;
                next.instSeq[std::size_t(k)].push_back(i);
                ++next.scheduled;
                dfs(next);
                if (states_ >= limits_.maxStates)
                    return;
            }
        }
    }

    void
    fillSchedule(OracleResult &result) const
    {
        for (int i = 0; i < p_.numNodes; ++i) {
            OracleEntry entry;
            entry.node = p_.nodes[std::size_t(i)];
            entry.instance = bestState_.assignedInst[std::size_t(i)];
            entry.start = bestState_.start[std::size_t(i)];
            entry.finish = bestState_.finish[std::size_t(i)];
            for (int parent : p_.parents[std::size_t(i)]) {
                auto [realized, coloc] =
                    edgeRealized(bestState_, parent, i);
                if (realized && coloc) {
                    ++result.colocations;
                    entry.colocated = true;
                } else if (realized) {
                    ++result.forwards;
                    entry.forwarded = true;
                }
            }
            result.schedule.push_back(entry);
        }
        std::sort(result.schedule.begin(), result.schedule.end(),
                  [](const OracleEntry &a, const OracleEntry &b) {
                      return a.start < b.start;
                  });
    }

    Problem p_;
    OracleLimits limits_;
    std::uint64_t states_ = 0;
    Score best_;
    State bestState_;
};

} // namespace

OracleResult
findIdealSchedule(
    const std::vector<Dag *> &dags,
    const std::array<int, std::size_t(numAccTypes)> &instances,
    const OracleLimits &limits)
{
    Problem problem;
    std::map<const Node *, int> index;
    int dag_id = 0;
    for (Dag *dag : dags) {
        RELIEF_ASSERT(dag && dag->finalized(),
                      "oracle needs finalized DAGs");
        for (Node *node : dag->allNodes()) {
            index[node] = problem.numNodes++;
            problem.nodes.push_back(node);
            problem.runtime.push_back(nominalNodeRuntime(*node));
            problem.dagOf.push_back(dag_id);
        }
        problem.dagDeadline.push_back(dag->relativeDeadline());
        ++dag_id;
    }
    problem.numDags = dag_id;
    problem.parents.resize(std::size_t(problem.numNodes));
    problem.children.resize(std::size_t(problem.numNodes));
    for (Dag *dag : dags) {
        for (Node *node : dag->allNodes()) {
            int i = index[node];
            for (Node *parent : node->parents) {
                problem.parents[std::size_t(i)].push_back(index[parent]);
                problem.children[std::size_t(index[parent])].push_back(i);
                ++problem.totalEdges;
            }
        }
    }
    for (AccType type : allAccTypes) {
        for (int k = 0; k < instances[accIndex(type)]; ++k) {
            problem.instType.push_back(int(accIndex(type)));
            ++problem.numInstances;
        }
    }

    RELIEF_ASSERT(problem.numNodes <= 24,
                  "oracle search is exponential; refusing ",
                  problem.numNodes, " nodes (max 24)");

    Search search(std::move(problem), limits);
    return search.run();
}

} // namespace relief
