#include "sched/baseline_policies.hh"

namespace relief
{

void
FcfsPolicy::onNodesReady(const std::vector<Node *> &ready,
                         const SchedContext &, ReadyQueues &queues)
{
    for (Node *node : ready)
        queues[accIndex(node->params.type)].pushBack(node);
}

Tick
FcfsPolicy::pushCost(std::size_t) const
{
    // Tail append: no scan.
    return fromNs(110.0);
}

void
GedfPolicy::onNodesReady(const std::vector<Node *> &ready,
                         const SchedContext &, ReadyQueues &queues)
{
    for (Node *node : ready) {
        auto &q = queues[accIndex(node->params.type)];
        q.insertAt(q.findDeadlinePos(node), node);
    }
}

void
LeastLaxityPolicy::onNodesReady(const std::vector<Node *> &ready,
                                const SchedContext &, ReadyQueues &queues)
{
    for (Node *node : ready) {
        auto &q = queues[accIndex(node->params.type)];
        q.insertAt(q.findLaxityPos(node), node);
    }
}

std::size_t
laxDispatchIndex(const ReadyQueue &queue, Tick now)
{
    for (std::size_t i = 0; i < queue.size(); ++i) {
        STick laxity = queue.at(i)->laxityKey - STick(now);
        if (laxity >= 0)
            return i;
    }
    return 0;
}

Node *
LeastLaxityPolicy::selectNext(AccType type, ReadyQueues &queues, Tick now)
{
    auto &q = queues[accIndex(type)];
    if (q.empty())
        return nullptr;
    if (!deprioritizeNegative_)
        return q.popFront();
    return q.popAt(laxDispatchIndex(q, now));
}

Tick
LeastLaxityPolicy::pushCost(std::size_t queue_len) const
{
    // Laxity computation + sorted scan; HetSched's SDR deadlines add a
    // little arithmetic per push.
    Tick base = scheme_ == DeadlineScheme::Sdr ? fromNs(220.0)
                                               : fromNs(180.0);
    return base + fromNs(8.0) * Tick(queue_len);
}

} // namespace relief
