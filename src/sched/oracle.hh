/**
 * @file
 * Exhaustive "ideal schedule" search (the paper's Fig. 2b oracle).
 *
 * For small DAG sets, enumerate every non-preemptive schedule —
 * including deliberate idling, which the ideal schedule in Fig. 2 uses
 * to hold an accelerator for a forwarding consumer — and return the
 * one that (1) meets the most DAG deadlines, (2) realizes the most
 * forwards + colocations, and (3) has the shortest makespan, in that
 * lexicographic order.
 *
 * The abstraction matches the paper's motivating example: node
 * runtimes are the nominal/fixed runtimes, data movement takes no
 * time, an edge is *realized* when its consumer launches exactly when
 * its last parent finishes (the producer's output is still live), and
 * it is a *colocation* when the consumer additionally runs on the same
 * accelerator instance directly after the producer.
 *
 * This is exponential by design; `OracleLimits::maxStates` bounds the
 * search and the result reports whether it was exhaustive.
 */

#ifndef RELIEF_SCHED_ORACLE_HH
#define RELIEF_SCHED_ORACLE_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "dag/dag.hh"

namespace relief
{

/** Search budget. */
struct OracleLimits
{
    std::uint64_t maxStates = 2'000'000; ///< Decision nodes to explore.
};

/** One scheduled task in the oracle's best schedule. */
struct OracleEntry
{
    const Node *node = nullptr;
    int instance = 0;   ///< Global accelerator-instance index.
    Tick start = 0;
    Tick finish = 0;
    bool forwarded = false; ///< Realized at least one input edge.
    bool colocated = false; ///< Ran in place after a parent.
};

/** Outcome of the search. */
struct OracleResult
{
    int forwards = 0;      ///< Realized cross-instance edges.
    int colocations = 0;   ///< Realized same-instance edges.
    int dagDeadlinesMet = 0;
    int dagCount = 0;
    Tick makespan = 0;
    bool exhaustive = true; ///< False if maxStates was hit.
    std::uint64_t statesExplored = 0;
    std::vector<OracleEntry> schedule;

    int totalRealized() const { return forwards + colocations; }
};

/**
 * Search for the ideal schedule of @p dags (all arriving at tick 0) on
 * a platform with @p instances accelerators per type. Every DAG must
 * be finalized; node runtimes use nominalNodeRuntime().
 */
OracleResult findIdealSchedule(
    const std::vector<Dag *> &dags,
    const std::array<int, std::size_t(numAccTypes)> &instances,
    const OracleLimits &limits = {});

} // namespace relief

#endif // RELIEF_SCHED_ORACLE_HH
