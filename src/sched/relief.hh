/**
 * @file
 * RELIEF — RElaxing Least-laxIty to Enable Forwarding (Algorithms 1
 * and 2 of the paper).
 *
 * Newly ready nodes whose parent just finished are *forwarding nodes*:
 * launched immediately, they can pull the parent's output straight from
 * its scratchpad. RELIEF promotes such a candidate to the head of its
 * ready queue when (1) fewer forwarding nodes are queued than idle
 * instances of that accelerator type (so promoted nodes really are the
 * next to run, while the producer's data is still live), and (2) the
 * laxity-driven feasibility check says no waiting node would be pushed
 * past its deadline. Otherwise the node is inserted at its laxity
 * position like vanilla least-laxity.
 *
 * The RELIEF-LAX variant additionally applies LAX's dispatch-time
 * de-prioritization of negative-laxity nodes (evaluated in Section
 * V-E, where the paper shows it hurts fairness).
 */

#ifndef RELIEF_SCHED_RELIEF_HH
#define RELIEF_SCHED_RELIEF_HH

#include "sched/decision_log.hh"
#include "sched/policy.hh"

namespace relief
{

/** Knobs for RELIEF variants (ablations and the paper's Section VII
 *  discussion of alternative laxity distributions). */
struct ReliefOptions
{
    /** Apply LAX's negative-laxity de-prioritization at dispatch. */
    bool laxDispatch = false;
    /** Laxity distribution: CriticalPath is the paper's RELIEF; Sdr is
     *  the RELIEF-over-HetSched combination Section VII sketches. */
    DeadlineScheme scheme = DeadlineScheme::CriticalPath;
    /** Disable to promote greedily whenever an instance is idle — the
     *  ablation showing why is_feasible() exists. */
    bool feasibilityCheck = true;
};

class ReliefPolicy : public Policy
{
  public:
    /** @param lax_dispatch true = RELIEF-LAX. */
    explicit ReliefPolicy(bool lax_dispatch = false)
        : ReliefPolicy(ReliefOptions{lax_dispatch,
                                     DeadlineScheme::CriticalPath, true})
    {
    }

    explicit ReliefPolicy(const ReliefOptions &options)
        : laxDispatch_(options.laxDispatch), scheme_(options.scheme),
          feasibilityCheck_(options.feasibilityCheck)
    {
    }

    PolicyKind kind() const override
    {
        if (scheme_ == DeadlineScheme::Sdr)
            return PolicyKind::ReliefHetSched;
        return laxDispatch_ ? PolicyKind::ReliefLax : PolicyKind::Relief;
    }
    DeadlineScheme deadlineScheme() const override { return scheme_; }
    void onNodesReady(const std::vector<Node *> &ready,
                      const SchedContext &ctx,
                      ReadyQueues &queues) override;
    Node *selectNext(AccType type, ReadyQueues &queues, Tick now) override;
    Tick pushCost(std::size_t queue_len) const override;

    /** Promotions performed / denied by the feasibility check. */
    std::uint64_t numPromotions() const { return promotions_; }
    std::uint64_t numThrottled() const { return throttled_; }

    /** Every promotion decision taken so far, in order. */
    const DecisionLog &decisionLog() const { return log_; }
    DecisionLog &decisionLog() { return log_; }

    /**
     * Algorithm 2: can @p fnode jump to the head of @p queue without
     * pushing a waiting node past its deadline? On success, charges
     * fnode's runtime to the laxity of every node it bypasses.
     *
     * @param queue The candidate's ready queue.
     * @param fnode Forwarding candidate.
     * @param index The candidate's laxity-sorted position in @p queue.
     * @param now   Current time.
     * @param victim Optional out: the first non-forwarding
     *               positive-laxity node that bounds the check
     *               (nullptr when the scan found none).
     * @param victim_slack Optional out: laxity the victim keeps after
     *               absorbing fnode's runtime (negative on failure).
     */
    static bool isFeasible(ReadyQueue &queue, const Node *fnode,
                           std::size_t index, Tick now,
                           const Node **victim = nullptr,
                           STick *victim_slack = nullptr);

  private:
    bool laxDispatch_;
    DeadlineScheme scheme_ = DeadlineScheme::CriticalPath;
    bool feasibilityCheck_ = true;
    std::uint64_t promotions_ = 0;
    std::uint64_t throttled_ = 0;
    DecisionLog log_;
};

} // namespace relief

#endif // RELIEF_SCHED_RELIEF_HH
