#include "sched/ready_queue.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace relief
{

void
ReadyQueue::insertAt(std::size_t index, Node *node)
{
    RELIEF_ASSERT(node != nullptr, "inserting null node");
    RELIEF_ASSERT(index <= nodes_.size(), "ready-queue insert out of "
                  "range: ", index, " > ", nodes_.size());
    nodes_.insert(nodes_.begin() + long(index), node);
    peakSize_ = std::max(peakSize_, nodes_.size());
}

Node *
ReadyQueue::popAt(std::size_t index)
{
    RELIEF_ASSERT(index < nodes_.size(), "ready-queue pop out of range");
    Node *node = nodes_[index];
    nodes_.erase(nodes_.begin() + long(index));
    return node;
}

std::size_t
ReadyQueue::findLaxityPos(const Node *node) const
{
    std::size_t i = 0;
    while (i < nodes_.size() && nodes_[i]->isFwd)
        ++i;
    while (i < nodes_.size() && nodes_[i]->laxityKey <= node->laxityKey)
        ++i;
    return i;
}

std::size_t
ReadyQueue::findDeadlinePos(const Node *node) const
{
    std::size_t i = 0;
    while (i < nodes_.size() && nodes_[i]->deadline <= node->deadline)
        ++i;
    return i;
}

} // namespace relief
