/**
 * @file
 * Per-accelerator-type ready queue.
 *
 * Every policy maintains one sorted queue per accelerator type (paper
 * Section II-B: the manager performs sorted insertion into the
 * accelerator's ready queue). The queue itself is policy-agnostic; it
 * offers positional primitives plus the two sorted-position searches
 * policies need (by laxity key and by absolute deadline). Queues are
 * short (tens of nodes), so a vector is the right structure.
 */

#ifndef RELIEF_SCHED_READY_QUEUE_HH
#define RELIEF_SCHED_READY_QUEUE_HH

#include <array>
#include <cstddef>
#include <vector>

#include "acc/acc_types.hh"
#include "dag/node.hh"

namespace relief
{

class ReadyQueue
{
  public:
    bool empty() const { return nodes_.empty(); }
    std::size_t size() const { return nodes_.size(); }

    /** Largest length this queue ever reached (high-water mark); a
     *  backlog signal the sampled mean depth can hide. */
    std::size_t peakSize() const { return peakSize_; }

    Node *at(std::size_t index) const { return nodes_[index]; }
    const std::vector<Node *> &nodes() const { return nodes_; }

    void insertAt(std::size_t index, Node *node);
    void pushFront(Node *node) { insertAt(0, node); }
    void pushBack(Node *node) { insertAt(nodes_.size(), node); }

    Node *popFront() { return popAt(0); }
    Node *popAt(std::size_t index);

    /**
     * Sorted-insert position by laxity key (ascending, FIFO among
     * equals). The leading run of promoted forwarding nodes is never
     * displaced: the search starts after it.
     */
    std::size_t findLaxityPos(const Node *node) const;

    /** Sorted-insert position by absolute deadline (ascending, FIFO
     *  among equals). */
    std::size_t findDeadlinePos(const Node *node) const;

  private:
    std::vector<Node *> nodes_;
    std::size_t peakSize_ = 0;
};

/** One ready queue per accelerator type. */
using ReadyQueues = std::array<ReadyQueue, std::size_t(numAccTypes)>;

} // namespace relief

#endif // RELIEF_SCHED_READY_QUEUE_HH
