/**
 * @file
 * Structured log of RELIEF promotion decisions.
 *
 * Every forwarding candidate that reaches Algorithm 1's promotion loop
 * produces one PromotionDecision: the candidate's identity and laxity,
 * the queue it targeted, whether promotion was granted, and why. On a
 * denial caused by the feasibility check, the decision also names the
 * *victim* — the waiting node whose laxity could not absorb the
 * candidate's runtime — and the (negative) slack it would have been
 * left with.
 *
 * The log is queryable in-process (tests assert on individual
 * decisions), exportable as a JSON array, and mirrored line-by-line on
 * the Sched debug flag, so `--debug-flags Sched` prints exactly what
 * the log records.
 */

#ifndef RELIEF_SCHED_DECISION_LOG_HH
#define RELIEF_SCHED_DECISION_LOG_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "acc/acc_types.hh"
#include "dag/node.hh"
#include "sim/ticks.hh"

namespace relief
{

/** Why a promotion was granted or denied. */
enum class PromotionReason
{
    Feasible,        ///< Granted: no bypassed node misses its deadline.
    CheckDisabled,   ///< Granted greedily (feasibility ablation).
    NoIdleInstance,  ///< Denied: no idle accelerator of this type.
    VictimWouldMiss, ///< Denied: a waiting node would miss its deadline.
};

const char *promotionReasonName(PromotionReason reason);

/** Whether @p reason corresponds to a granted promotion. */
bool promotionGranted(PromotionReason reason);

/** One promotion decision, recorded at scheduling time. */
struct PromotionDecision
{
    Tick when = 0;             ///< Decision time.
    NodeId node = 0;           ///< Candidate node id.
    std::string label;         ///< Candidate debug label.
    AccType type = AccType(0); ///< Target accelerator type.
    STick laxity = 0;          ///< Candidate laxity at decision time.
    std::size_t queueDepth = 0; ///< Ready-queue depth before insertion.
    bool granted = false;
    PromotionReason reason = PromotionReason::Feasible;
    /** Label of the bounding non-forwarding node the feasibility scan
     *  stopped at; empty when the scan found none. */
    std::string victim;
    /** The victim's laxity minus the candidate's runtime: what the
     *  victim keeps after absorbing the bypass (negative on denial). */
    STick victimSlack = 0;

    /** One-line rendering, shared by the Sched debug flag. */
    std::string summary() const;
};

class DecisionLog
{
  public:
    void record(PromotionDecision decision);

    std::size_t size() const { return decisions_.size(); }
    const PromotionDecision &at(std::size_t index) const;
    const std::vector<PromotionDecision> &decisions() const
    {
        return decisions_;
    }

    std::uint64_t numGranted() const { return granted_; }
    std::uint64_t numDenied() const
    {
        return decisions_.size() - granted_;
    }

    /** JSON array of decision objects (times in ticks). */
    void writeJson(std::ostream &os) const;

    void clear();

  private:
    std::vector<PromotionDecision> decisions_;
    std::uint64_t granted_ = 0;
};

} // namespace relief

#endif // RELIEF_SCHED_DECISION_LOG_HH
