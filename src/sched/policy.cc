#include "sched/policy.hh"

namespace relief
{

const std::vector<PolicyKind> allPolicies = {
    PolicyKind::Fcfs,      PolicyKind::GedfD, PolicyKind::GedfN,
    PolicyKind::LL,        PolicyKind::Lax,   PolicyKind::HetSched,
    PolicyKind::ReliefLax, PolicyKind::Relief,
};

const std::vector<PolicyKind> mainPolicies = {
    PolicyKind::Fcfs, PolicyKind::GedfD,    PolicyKind::GedfN,
    PolicyKind::Lax,  PolicyKind::HetSched, PolicyKind::Relief,
};

const char *
policyName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::Fcfs:
        return "FCFS";
      case PolicyKind::GedfD:
        return "GEDF-D";
      case PolicyKind::GedfN:
        return "GEDF-N";
      case PolicyKind::LL:
        return "LL";
      case PolicyKind::Lax:
        return "LAX";
      case PolicyKind::HetSched:
        return "HetSched";
      case PolicyKind::ReliefLax:
        return "RELIEF-LAX";
      case PolicyKind::Relief:
        return "RELIEF";
      case PolicyKind::ReliefHetSched:
        return "RELIEF-HS";
    }
    return "unknown";
}

Node *
Policy::selectNext(AccType type, ReadyQueues &queues, Tick)
{
    auto &q = queues[accIndex(type)];
    return q.empty() ? nullptr : q.popFront();
}

Tick
Policy::pushCost(std::size_t queue_len) const
{
    // Default sorted-insert cost on a Cortex-A7 class core: constant
    // overhead plus a linear scan term.
    return fromNs(150.0) + fromNs(6.0) * Tick(queue_len);
}

} // namespace relief
