#include "sched/relief.hh"

#include <algorithm>

#include "sched/baseline_policies.hh"
#include "sim/debug.hh"

namespace relief
{

bool
ReliefPolicy::isFeasible(ReadyQueue &queue, const Node *fnode,
                         std::size_t index, Tick now,
                         const Node **victim, STick *victim_slack)
{
    bool can_forward = true;
    // The queue is laxity-sorted (after the promoted prefix), so the
    // first non-forwarding node with positive current laxity bounds
    // every node behind it: if it can absorb the candidate's runtime,
    // they all can. Negative-laxity nodes are skipped — they are not
    // expected to meet their deadlines with or without the promotion.
    for (std::size_t i = 0; i < index && i < queue.size(); ++i) {
        const Node *node = queue.at(i);
        STick curr_laxity = node->laxityKey - STick(now);
        if (!node->isFwd && curr_laxity > 0) {
            can_forward = curr_laxity > STick(fnode->predictedRuntime);
            if (victim)
                *victim = node;
            if (victim_slack)
                *victim_slack =
                    curr_laxity - STick(fnode->predictedRuntime);
            break;
        }
    }
    if (can_forward) {
        // Everyone the candidate bypasses will wait an extra
        // fnode.runtime; charge it to their stored laxity.
        for (std::size_t i = 0; i < index && i < queue.size(); ++i)
            queue.at(i)->laxityKey -= STick(fnode->predictedRuntime);
    }
    return can_forward;
}

void
ReliefPolicy::onNodesReady(const std::vector<Node *> &ready,
                           const SchedContext &ctx, ReadyQueues &queues)
{
    // Algorithm 1, lines 2-8: laxity-sorted forwarding-candidate lists,
    // one per accelerator type. Root nodes (no just-finished parent)
    // have nothing to forward and go straight to sorted insertion.
    std::array<std::vector<Node *>, std::size_t(numAccTypes)> fwd_nodes;
    for (Node *node : ready) {
        auto &q = queues[accIndex(node->params.type)];
        if (node->isRoot()) {
            node->isFwd = false;
            q.insertAt(q.findLaxityPos(node), node);
            continue;
        }
        auto &list = fwd_nodes[accIndex(node->params.type)];
        auto pos = std::find_if(list.begin(), list.end(),
                                [node](const Node *other) {
                                    return other->laxityKey >
                                           node->laxityKey;
                                });
        list.insert(pos, node);
    }

    // Algorithm 1, lines 9-23.
    for (std::size_t t = 0; t < std::size_t(numAccTypes); ++t) {
        int max_forwards = ctx.idleCount[t];
        auto &q = queues[t];
        for (Node *node : fwd_nodes[t]) {
            std::size_t index = q.findLaxityPos(node);

            PromotionDecision d;
            d.when = ctx.now;
            d.node = node->id;
            d.label = node->label;
            d.type = node->params.type;
            d.laxity = node->laxityKey - STick(ctx.now);
            d.queueDepth = q.size();
            const Node *victim = nullptr;
            if (max_forwards <= 0) {
                d.reason = PromotionReason::NoIdleInstance;
            } else if (!feasibilityCheck_) {
                d.reason = PromotionReason::CheckDisabled;
            } else if (isFeasible(q, node, index, ctx.now, &victim,
                                  &d.victimSlack)) {
                d.reason = PromotionReason::Feasible;
            } else {
                d.reason = PromotionReason::VictimWouldMiss;
            }
            if (victim)
                d.victim = victim->label;
            d.granted = promotionGranted(d.reason);

            if (d.granted) {
                q.pushFront(node);
                node->isFwd = true;
                --max_forwards;
                ++promotions_;
            } else {
                q.insertAt(index, node);
                node->isFwd = false;
                ++throttled_;
            }
            DPRINTFN(Sched, ctx.now, "relief", d.summary());
            log_.record(std::move(d));
        }
    }
}

Node *
ReliefPolicy::selectNext(AccType type, ReadyQueues &queues, Tick now)
{
    auto &q = queues[accIndex(type)];
    if (q.empty())
        return nullptr;
    if (laxDispatch_ && !q.at(0)->isFwd)
        return q.popAt(laxDispatchIndex(q, now));
    return q.popFront();
}

Tick
ReliefPolicy::pushCost(std::size_t queue_len) const
{
    // Sorted insert plus the feasibility scan over bypassed nodes.
    return fromNs(320.0) + fromNs(18.0) * Tick(queue_len);
}

} // namespace relief
