/**
 * @file
 * Union of time intervals, used for occupancy statistics ("fraction of
 * time at least one transaction was in flight"). Intervals may be added
 * out of order and may overlap; the covered time is computed by a merge
 * at query time.
 */

#ifndef RELIEF_STATS_INTERVAL_UNION_HH
#define RELIEF_STATS_INTERVAL_UNION_HH

#include <utility>
#include <vector>

#include "sim/ticks.hh"

namespace relief
{

class IntervalUnion
{
  public:
    /** Record the half-open busy interval [start, end). */
    void add(Tick start, Tick end);

    /** Total time covered by the union of all intervals, clipped to
     *  [0, upTo). */
    Tick covered(Tick upTo = maxTick) const;

    /** Sum of raw interval lengths (counts overlap multiple times). */
    Tick rawSum() const { return rawSum_; }

    std::size_t numIntervals() const { return intervals_.size(); }
    void clear();

  private:
    mutable std::vector<std::pair<Tick, Tick>> intervals_;
    mutable bool sorted_ = true;
    Tick rawSum_ = 0;
};

} // namespace relief

#endif // RELIEF_STATS_INTERVAL_UNION_HH
