/**
 * @file
 * Plain-text table emitter for bench/example output. Benches print the
 * same rows/series the paper's figures report; this class handles
 * alignment, numeric formatting, and optional CSV export.
 */

#ifndef RELIEF_STATS_TABLE_HH
#define RELIEF_STATS_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace relief
{

class Table
{
  public:
    explicit Table(std::string title = {}) : title_(std::move(title)) {}

    /** Set the column headers (defines the column count). */
    void setHeader(std::vector<std::string> header);

    /** Append a fully formatted row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Format a double with @p precision decimals. */
    static std::string num(double value, int precision = 2);

    /** Format a percentage with @p precision decimals (no % sign). */
    static std::string pct(double fraction, int precision = 1);

    /** Render with aligned columns. */
    void print(std::ostream &os) const;

    /** Render as CSV (no alignment, title as a comment line). */
    void printCsv(std::ostream &os) const;

    /**
     * print() to @p os and, when the RELIEF_CSV_DIR environment
     * variable names a directory, also write
     * `<dir>/<slugified-title>.csv` — how the benches export figure
     * data for external plotting.
     */
    void emit(std::ostream &os) const;

    /** Filesystem-safe slug of the title ("Fig 4 (low)" ->
     *  "fig_4_low"). */
    std::string slug() const;

    const std::string &title() const { return title_; }
    std::size_t numRows() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace relief

#endif // RELIEF_STATS_TABLE_HH
