#include "stats/registry.hh"
#include "sim/build_info.hh"

#include <iomanip>
#include <utility>

#include "sim/debug.hh"
#include "sim/logging.hh"
#include "stats/json.hh"

namespace relief
{

const char *
statKindName(StatKind kind)
{
    switch (kind) {
      case StatKind::Counter:
        return "counter";
      case StatKind::Scalar:
        return "scalar";
      case StatKind::Formula:
        return "formula";
      case StatKind::Histogram:
        return "histogram";
    }
    return "?";
}

void
StatRegistry::add(Entry entry)
{
    RELIEF_ASSERT(!entry.name.empty(), "stat with empty name");
    RELIEF_ASSERT(index_.find(entry.name) == index_.end(),
                  "duplicate stat registration '", entry.name, "'");
    DPRINTFN(Stats, 0, "stats", "registered ",
             statKindName(entry.kind), " '", entry.name, "'");
    index_.emplace(entry.name, entries_.size());
    entries_.push_back(std::move(entry));
}

void
StatRegistry::addCounter(const std::string &name, std::string desc,
                         CounterGetter get)
{
    RELIEF_ASSERT(get != nullptr, "counter '", name, "' needs a getter");
    Entry entry;
    entry.name = name;
    entry.desc = std::move(desc);
    entry.kind = StatKind::Counter;
    entry.getCounter = std::move(get);
    add(std::move(entry));
}

void
StatRegistry::addScalar(const std::string &name, std::string desc,
                        ScalarGetter get)
{
    RELIEF_ASSERT(get != nullptr, "scalar '", name, "' needs a getter");
    Entry entry;
    entry.name = name;
    entry.desc = std::move(desc);
    entry.kind = StatKind::Scalar;
    entry.getScalar = std::move(get);
    add(std::move(entry));
}

void
StatRegistry::addFormula(const std::string &name, std::string desc,
                         ScalarGetter get)
{
    RELIEF_ASSERT(get != nullptr, "formula '", name, "' needs a getter");
    Entry entry;
    entry.name = name;
    entry.desc = std::move(desc);
    entry.kind = StatKind::Formula;
    entry.getScalar = std::move(get);
    add(std::move(entry));
}

void
StatRegistry::addHistogram(const std::string &name, std::string desc,
                           const Histogram *hist)
{
    RELIEF_ASSERT(hist != nullptr, "histogram '", name, "' is null");
    Entry entry;
    entry.name = name;
    entry.desc = std::move(desc);
    entry.kind = StatKind::Histogram;
    entry.hist = hist;
    add(std::move(entry));
}

bool
StatRegistry::contains(const std::string &name) const
{
    return index_.find(name) != index_.end();
}

const StatRegistry::Entry &
StatRegistry::find(const std::string &name) const
{
    auto it = index_.find(name);
    RELIEF_ASSERT(it != index_.end(), "unknown stat '", name, "'");
    return entries_[it->second];
}

StatKind
StatRegistry::kind(const std::string &name) const
{
    return find(name).kind;
}

double
StatRegistry::value(const std::string &name) const
{
    const Entry &entry = find(name);
    RELIEF_ASSERT(entry.kind != StatKind::Histogram,
                  "stat '", name, "' is a histogram; use histogram()");
    if (entry.kind == StatKind::Counter)
        return double(entry.getCounter());
    return entry.getScalar();
}

const Histogram &
StatRegistry::histogram(const std::string &name) const
{
    const Entry &entry = find(name);
    RELIEF_ASSERT(entry.kind == StatKind::Histogram,
                  "stat '", name, "' is not a histogram");
    return *entry.hist;
}

std::vector<std::string>
StatRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const Entry &entry : entries_)
        out.push_back(entry.name);
    return out;
}

namespace
{

/** One gem5-style "name value # comment" line. */
template <typename Value>
void
textLine(std::ostream &os, const std::string &name, Value value,
         const std::string &comment)
{
    os << std::left << std::setw(44) << name << " " << std::setw(16)
       << value << " # " << comment << "\n";
}

} // namespace

void
StatRegistry::dumpText(std::ostream &os) const
{
    for (const Entry &entry : entries_) {
        switch (entry.kind) {
          case StatKind::Counter:
            textLine(os, entry.name, entry.getCounter(), entry.desc);
            break;
          case StatKind::Scalar:
          case StatKind::Formula:
            textLine(os, entry.name, entry.getScalar(), entry.desc);
            break;
          case StatKind::Histogram: {
            const Histogram &h = *entry.hist;
            textLine(os, entry.name + ".count", h.count(),
                     entry.desc + " (samples)");
            textLine(os, entry.name + ".mean", h.mean(), entry.desc);
            textLine(os, entry.name + ".underflow", h.underflow(),
                     "samples below range");
            for (std::size_t b = 0; b < h.numBuckets(); ++b) {
                std::ostringstream bucket_name;
                bucket_name << entry.name << "::" << h.bucketLo(b) << "-"
                            << h.bucketHi(b);
                textLine(os, bucket_name.str(), h.bucketCount(b),
                         "bucket count");
            }
            textLine(os, entry.name + ".overflow", h.overflow(),
                     "samples at or above range");
            break;
          }
        }
    }
}

void
StatRegistry::dumpJsonStats(std::ostream &os, int indent) const
{
    const std::string pad(std::size_t(indent), ' ');
    const std::string pad2(std::size_t(indent) + 2, ' ');
    os << "{\n";
    bool first = true;
    for (const Entry &entry : entries_) {
        if (!first)
            os << ",\n";
        first = false;
        os << pad << "\"" << jsonEscape(entry.name) << "\": {\n"
           << pad2 << "\"kind\": \"" << statKindName(entry.kind)
           << "\",\n"
           << pad2 << "\"description\": \"" << jsonEscape(entry.desc)
           << "\",\n";
        switch (entry.kind) {
          case StatKind::Counter:
            os << pad2 << "\"value\": " << entry.getCounter() << "\n";
            break;
          case StatKind::Scalar:
          case StatKind::Formula:
            os << pad2 << "\"value\": " << jsonNumber(entry.getScalar())
               << "\n";
            break;
          case StatKind::Histogram: {
            const Histogram &h = *entry.hist;
            os << pad2 << "\"count\": " << h.count() << ",\n"
               << pad2 << "\"mean\": " << jsonNumber(h.mean()) << ",\n"
               << pad2 << "\"min\": " << jsonNumber(h.min()) << ",\n"
               << pad2 << "\"max\": " << jsonNumber(h.max()) << ",\n"
               << pad2 << "\"range\": [" << jsonNumber(h.rangeLo())
               << ", " << jsonNumber(h.rangeHi()) << "],\n"
               << pad2 << "\"underflow\": " << h.underflow() << ",\n"
               << pad2 << "\"overflow\": " << h.overflow() << ",\n"
               << pad2 << "\"buckets\": [";
            for (std::size_t b = 0; b < h.numBuckets(); ++b)
                os << (b ? ", " : "") << h.bucketCount(b);
            os << "]\n";
            break;
          }
        }
        os << pad << "}";
    }
    os << "\n" << std::string(std::size_t(indent) - 2, ' ') << "}";
}

void
StatRegistry::dumpJson(std::ostream &os) const
{
    os << "{\n  \"schema\": \"relief-stats-v1\",\n  \"build_info\": ";
    writeBuildInfoJson(os, 2);
    os << ",\n  \"stats\": ";
    dumpJsonStats(os, 4);
    os << "\n}\n";
}

} // namespace relief
