/**
 * @file
 * Minimal JSON writing helpers shared by the stats JSON exporter and
 * the Chrome trace writer. Only escaping and number formatting live
 * here — document structure stays with each writer.
 */

#ifndef RELIEF_STATS_JSON_HH
#define RELIEF_STATS_JSON_HH

#include <string>

namespace relief
{

/**
 * Escape @p in for embedding inside a JSON string literal: quotes,
 * backslashes, and every control character below 0x20 (newline, tab,
 * carriage return, ... as their two-character escapes, anything else
 * as \u00XX). Without the control-character handling a task label
 * containing a newline produces JSON that Perfetto refuses to load.
 */
std::string jsonEscape(const std::string &in);

/**
 * Render @p value as a JSON number. JSON has no Inf/NaN literals, so
 * non-finite values are emitted as null (the convention Chrome's
 * trace viewer accepts); integral values print without an exponent.
 */
std::string jsonNumber(double value);

} // namespace relief

#endif // RELIEF_STATS_JSON_HH
