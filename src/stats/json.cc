#include "stats/json.hh"

#include <cmath>
#include <cstdio>

namespace relief
{

std::string
jsonEscape(const std::string &in)
{
    std::string out;
    out.reserve(in.size());
    for (char c : in) {
        unsigned char uc = static_cast<unsigned char>(c);
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          default:
            if (uc < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", uc);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

std::string
jsonNumber(double value)
{
    if (!std::isfinite(value))
        return "null";
    if (value == std::floor(value) && std::fabs(value) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", value);
        return buf;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", value);
    return buf;
}

} // namespace relief
