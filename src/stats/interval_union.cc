#include "stats/interval_union.hh"

#include <algorithm>

namespace relief
{

void
IntervalUnion::add(Tick start, Tick end)
{
    if (end <= start)
        return;
    if (!intervals_.empty() && start < intervals_.back().first)
        sorted_ = false;
    intervals_.emplace_back(start, end);
    rawSum_ += end - start;
}

Tick
IntervalUnion::covered(Tick upTo) const
{
    if (intervals_.empty())
        return 0;
    if (!sorted_) {
        std::sort(intervals_.begin(), intervals_.end());
        sorted_ = true;
    }
    Tick total = 0;
    Tick curStart = 0, curEnd = 0;
    bool open = false;
    for (const auto &[s0, e0] : intervals_) {
        Tick s = std::min(s0, upTo);
        Tick e = std::min(e0, upTo);
        if (e <= s)
            continue;
        if (!open) {
            curStart = s;
            curEnd = e;
            open = true;
        } else if (s <= curEnd) {
            curEnd = std::max(curEnd, e);
        } else {
            total += curEnd - curStart;
            curStart = s;
            curEnd = e;
        }
    }
    if (open)
        total += curEnd - curStart;
    return total;
}

void
IntervalUnion::clear()
{
    intervals_.clear();
    sorted_ = true;
    rawSum_ = 0;
}

} // namespace relief
