/**
 * @file
 * Hierarchically named statistics registry, in the spirit of gem5's
 * stat framework.
 *
 * Every model registers its counters once (registerStats() on the
 * model, called by the Soc facade at construction) under stable
 * dotted names — "dram.read_bytes", "soc.convolution0.tasks",
 * "manager.forwards" — together with a one-line description. Values
 * are read lazily through getter closures, so a registered stat always
 * dumps the model's current value; nothing is copied at registration
 * time.
 *
 * Four stat kinds:
 *  - counter:   monotonically increasing integer (bytes, events),
 *  - scalar:    instantaneous floating-point value (energy, time),
 *  - formula:   value derived from other stats (fractions, means),
 *  - histogram: bucketed distribution (stats/stats.hh Histogram).
 *
 * Two dump formats: gem5-style text ("name value # description") and a
 * stable JSON schema ("relief-stats-v1": one object keyed by stat name,
 * each entry carrying kind/description/value — histograms additionally
 * carry range, buckets, and under/overflow). Registration order is
 * preserved in both, so diffs between runs stay line-aligned.
 */

#ifndef RELIEF_STATS_REGISTRY_HH
#define RELIEF_STATS_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "stats/stats.hh"

namespace relief
{

/** What a registered stat is (tags the JSON export). */
enum class StatKind
{
    Counter,
    Scalar,
    Formula,
    Histogram,
};

const char *statKindName(StatKind kind);

class StatRegistry
{
  public:
    using CounterGetter = std::function<std::uint64_t()>;
    using ScalarGetter = std::function<double()>;

    /** Register a monotonically increasing integer stat. */
    void addCounter(const std::string &name, std::string desc,
                    CounterGetter get);

    /** Register an instantaneous floating-point stat. */
    void addScalar(const std::string &name, std::string desc,
                   ScalarGetter get);

    /** Register a stat derived from other stats (ratios, means). */
    void addFormula(const std::string &name, std::string desc,
                    ScalarGetter get);

    /** Register a histogram; @p hist must outlive the registry. */
    void addHistogram(const std::string &name, std::string desc,
                      const Histogram *hist);

    std::size_t size() const { return entries_.size(); }
    bool contains(const std::string &name) const;

    /** Kind of the stat named @p name; panics when unknown. */
    StatKind kind(const std::string &name) const;

    /** Current value of a counter/scalar/formula stat as a double;
     *  panics on unknown names and on histograms (use histogram()). */
    double value(const std::string &name) const;

    /** The registered histogram; panics unless @p name is one. */
    const Histogram &histogram(const std::string &name) const;

    /** Registered names, in registration order. */
    std::vector<std::string> names() const;

    /** gem5-style "name value # description" lines. */
    void dumpText(std::ostream &os) const;

    /** Complete JSON document: {"schema":"relief-stats-v1","stats":{...}}. */
    void dumpJson(std::ostream &os) const;

    /**
     * Just the {"stat.name": {...}, ...} stats object (no enclosing
     * document), for callers embedding the registry in a larger JSON
     * report (Soc::writeStatsJson adds per-app outcomes alongside).
     */
    void dumpJsonStats(std::ostream &os, int indent = 2) const;

  private:
    struct Entry
    {
        std::string name;
        std::string desc;
        StatKind kind = StatKind::Scalar;
        CounterGetter getCounter; ///< Counter kind.
        ScalarGetter getScalar;   ///< Scalar and Formula kinds.
        const Histogram *hist = nullptr;
    };

    const Entry &find(const std::string &name) const;
    void add(Entry entry);

    std::vector<Entry> entries_;
    std::map<std::string, std::size_t> index_;
};

} // namespace relief

#endif // RELIEF_STATS_REGISTRY_HH
