/**
 * @file
 * Minimal DOM JSON reader for tooling that consumes our own JSON
 * artifacts back (relief_compare --diff reads relief-stats-v1 /
 * relief-pressure-v1 documents). Dependency-free recursive descent:
 * the full document is parsed into a JsonValue tree up front, then
 * navigated with at()/find(). This is a reporting-path utility — it
 * allocates freely and is not meant for the simulation hot path.
 *
 * The syntax-only checker in mini_json.hh stays separate on purpose:
 * tests use it to validate structure without trusting this reader.
 */

#ifndef RELIEF_STATS_JSON_READER_HH
#define RELIEF_STATS_JSON_READER_HH

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace relief
{

class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    JsonValue() = default;

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Value accessors fatal() on a kind mismatch: the diff tool
     *  treats a malformed document as an input error, not a bug. */
    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;

    /** Array / object element count (0 for scalars). */
    std::size_t size() const;

    /** Array element; fatal() when out of range or not an array. */
    const JsonValue &at(std::size_t index) const;

    /** Object member; fatal() when missing or not an object. */
    const JsonValue &at(const std::string &key) const;

    /** Object member or nullptr when absent (tolerant lookup). */
    const JsonValue *find(const std::string &key) const;

    /** Object keys in document order (empty for non-objects). */
    const std::vector<std::string> &keys() const { return keys_; }

    static JsonValue parse(const std::string &text);
    static JsonValue parseFile(const std::string &path);

  private:
    friend class JsonParser;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> array_;
    std::vector<std::string> keys_; ///< Object keys, document order.
    std::map<std::string, std::size_t> index_; ///< key -> array_ slot.
};

} // namespace relief

#endif // RELIEF_STATS_JSON_READER_HH
