#include "stats/json_reader.hh"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "sim/logging.hh"

namespace relief
{

bool
JsonValue::asBool() const
{
    if (kind_ != Kind::Bool)
        fatal("JSON value is not a bool");
    return bool_;
}

double
JsonValue::asNumber() const
{
    if (kind_ != Kind::Number)
        fatal("JSON value is not a number");
    return number_;
}

const std::string &
JsonValue::asString() const
{
    if (kind_ != Kind::String)
        fatal("JSON value is not a string");
    return string_;
}

std::size_t
JsonValue::size() const
{
    return kind_ == Kind::Object ? keys_.size() : array_.size();
}

const JsonValue &
JsonValue::at(std::size_t index) const
{
    if (kind_ != Kind::Array)
        fatal("JSON value is not an array");
    if (index >= array_.size())
        fatal("JSON array index ", index, " out of range (size ",
              array_.size(), ")");
    return array_[index];
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    const JsonValue *value = find(key);
    if (!value)
        fatal("JSON object has no member '", key, "'");
    return *value;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    auto it = index_.find(key);
    return it == index_.end() ? nullptr : &array_[it->second];
}

/** Recursive-descent parser over the whole input string. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    JsonValue
    run()
    {
        JsonValue root = value();
        skipSpace();
        if (pos_ != text_.size())
            fail("trailing characters after the document");
        return root;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what)
    {
        // Line and column of the current position, for messages a
        // user can jump to in an editor.
        int line = 1;
        int column = 1;
        for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
            if (text_[i] == '\n') {
                ++line;
                column = 1;
            } else {
                ++column;
            }
        }
        fatal("JSON parse error at line ", line, ", column ", column,
              ": ", what);
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        skipSpace();
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "', got '" +
                 text_[pos_] + "'");
        ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && peek() == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    void
    literal(const char *word)
    {
        for (const char *p = word; *p; ++p, ++pos_)
            if (pos_ >= text_.size() || text_[pos_] != *p)
                fail(std::string("bad literal (expected ") + word + ")");
    }

    JsonValue
    value()
    {
        JsonValue out;
        switch (peek()) {
          case '{':
            return object();
          case '[':
            return array();
          case '"':
            out.kind_ = JsonValue::Kind::String;
            out.string_ = string();
            return out;
          case 't':
            literal("true");
            out.kind_ = JsonValue::Kind::Bool;
            out.bool_ = true;
            return out;
          case 'f':
            literal("false");
            out.kind_ = JsonValue::Kind::Bool;
            out.bool_ = false;
            return out;
          case 'n':
            literal("null");
            return out;
          default:
            return number();
        }
    }

    JsonValue
    object()
    {
        expect('{');
        DepthGuard guard(*this);
        JsonValue out;
        out.kind_ = JsonValue::Kind::Object;
        if (consume('}'))
            return out;
        do {
            skipSpace();
            std::string key = string();
            expect(':');
            // Duplicate keys are defined to keep the LAST value (the
            // behavior of python's json and most readers): the member
            // stays at its first position in keys(), but the value is
            // overwritten in place. Covered by json_reader_test.
            auto it = out.index_.find(key);
            if (it == out.index_.end()) {
                out.index_[key] = out.array_.size();
                out.keys_.push_back(key);
                out.array_.push_back(value());
            } else {
                out.array_[it->second] = value();
            }
        } while (consume(','));
        expect('}');
        return out;
    }

    JsonValue
    array()
    {
        expect('[');
        DepthGuard guard(*this);
        JsonValue out;
        out.kind_ = JsonValue::Kind::Array;
        if (consume(']'))
            return out;
        do {
            out.array_.push_back(value());
        } while (consume(','));
        expect(']');
        return out;
    }

    std::string
    string()
    {
        if (peek() != '"')
            fail("expected a string");
        ++pos_;
        std::string out;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            char esc = text_[pos_++];
            switch (esc) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned code = unsigned(std::strtoul(
                    text_.substr(pos_, 4).c_str(), nullptr, 16));
                pos_ += 4;
                // Our writers only escape control characters; anything
                // else round-trips as a replacement byte, which the
                // diff tool never compares anyway.
                out.push_back(code < 0x80 ? char(code) : '?');
                break;
              }
              default:
                fail("unknown escape");
            }
        }
        if (pos_ >= text_.size())
            fail("unterminated string");
        ++pos_; // closing quote
        return out;
    }

    JsonValue
    number()
    {
        std::size_t start = pos_;
        if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
            ++pos_;
        bool digits = false;
        auto eat_digits = [&] {
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
                digits = true;
            }
        };
        eat_digits();
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            eat_digits();
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '-' || text_[pos_] == '+'))
                ++pos_;
            eat_digits();
        }
        if (!digits)
            fail("expected a value");
        JsonValue out;
        out.kind_ = JsonValue::Kind::Number;
        out.number_ =
            std::strtod(text_.substr(start, pos_ - start).c_str(), nullptr);
        // JSON has no NaN/Infinity; strtod also turns out-of-range
        // magnitudes (1e999) into inf, which would silently poison
        // every downstream comparison. Reject both here.
        if (!std::isfinite(out.number_))
            fail("number is NaN/Inf or out of double range");
        return out;
    }

    /** Caps recursion so a pathological document (10k open brackets)
     *  fails with a parse error instead of a stack overflow. */
    struct DepthGuard
    {
        explicit DepthGuard(JsonParser &parser) : parser_(parser)
        {
            if (++parser_.depth_ > maxDepth)
                parser_.fail("nesting depth exceeds " +
                             std::to_string(maxDepth));
        }
        ~DepthGuard() { --parser_.depth_; }
        JsonParser &parser_;
    };

    static constexpr int maxDepth = 64;

    const std::string &text_;
    std::size_t pos_ = 0;
    int depth_ = 0;
};

JsonValue
JsonValue::parse(const std::string &text)
{
    return JsonParser(text).run();
}

JsonValue
JsonValue::parseFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot read JSON file '", path, "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parse(buffer.str());
}

} // namespace relief
