/**
 * @file
 * Lightweight statistics primitives used by every model: counters,
 * scalar accumulators, and small math helpers (geometric mean).
 */

#ifndef RELIEF_STATS_STATS_HH
#define RELIEF_STATS_STATS_HH

#include <cstdint>
#include <limits>
#include <vector>

namespace relief
{

/** Monotonically increasing event/byte counter. */
class Counter
{
  public:
    void add(std::uint64_t amount = 1) { value_ += amount; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Streaming accumulator for scalar samples: count, sum, mean, variance
 * (population), min, and max.
 */
class Accum
{
  public:
    void sample(double value);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / double(count_) : 0.0; }
    double variance() const;
    double stddev() const;
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    void reset();

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double sumSq_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Fixed-range linear histogram of scalar samples. Values below the
 * range land in the underflow bin, values at or above the upper edge
 * in the overflow bin; [lo, hi) is split into @p num_buckets equal
 * buckets. The full Accum summary (count/mean/min/max) is tracked
 * alongside, so one histogram answers both "what's the distribution"
 * and "what's the mean".
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t num_buckets);

    void sample(double value, std::uint64_t weight = 1);

    std::size_t numBuckets() const { return buckets_.size(); }
    double bucketLo(std::size_t index) const;
    double bucketHi(std::size_t index) const;
    std::uint64_t bucketCount(std::size_t index) const;
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }

    /**
     * Estimated value at quantile @p q in [0, 1], linearly
     * interpolated within the containing bucket. Underflow samples
     * count at the low edge, overflow at the high edge (the estimate
     * clamps to the observed min/max so a heavy tail cannot report a
     * value never seen). Returns 0 with no samples.
     */
    double quantile(double q) const;

    /** Total samples, including under/overflow. */
    std::uint64_t count() const { return summary_.count(); }
    double mean() const { return summary_.mean(); }
    double min() const { return summary_.min(); }
    double max() const { return summary_.max(); }
    const Accum &summary() const { return summary_; }

    double rangeLo() const { return lo_; }
    double rangeHi() const { return hi_; }

    void reset();

  private:
    double lo_;
    double hi_;
    double bucketWidth_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    Accum summary_;
};

/**
 * Geometric mean of strictly positive values. Values <= 0 are clamped to
 * @p floor first (the paper's gmean bars do the same for zero entries).
 */
double geomean(const std::vector<double> &values, double floor = 1e-9);

} // namespace relief

#endif // RELIEF_STATS_STATS_HH
