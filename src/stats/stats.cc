#include "stats/stats.hh"

#include <algorithm>
#include <cmath>

namespace relief
{

void
Accum::sample(double value)
{
    ++count_;
    sum_ += value;
    sumSq_ += value * value;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
}

double
Accum::variance() const
{
    if (count_ == 0)
        return 0.0;
    double m = mean();
    double var = sumSq_ / double(count_) - m * m;
    return var > 0.0 ? var : 0.0;
}

double
Accum::stddev() const
{
    return std::sqrt(variance());
}

void
Accum::reset()
{
    *this = Accum();
}

double
geomean(const std::vector<double> &values, double floor)
{
    if (values.empty())
        return 0.0;
    double logSum = 0.0;
    for (double v : values)
        logSum += std::log(std::max(v, floor));
    return std::exp(logSum / double(values.size()));
}

} // namespace relief
