#include "stats/stats.hh"

#include <algorithm>
#include <cmath>

namespace relief
{

void
Accum::sample(double value)
{
    ++count_;
    sum_ += value;
    sumSq_ += value * value;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
}

double
Accum::variance() const
{
    if (count_ == 0)
        return 0.0;
    double m = mean();
    double var = sumSq_ / double(count_) - m * m;
    return var > 0.0 ? var : 0.0;
}

double
Accum::stddev() const
{
    return std::sqrt(variance());
}

void
Accum::reset()
{
    *this = Accum();
}

Histogram::Histogram(double lo, double hi, std::size_t num_buckets)
    : lo_(lo), hi_(hi),
      bucketWidth_((hi - lo) / double(num_buckets ? num_buckets : 1)),
      buckets_(num_buckets ? num_buckets : 1, 0)
{
}

void
Histogram::sample(double value, std::uint64_t weight)
{
    for (std::uint64_t i = 0; i < weight; ++i)
        summary_.sample(value);
    if (value < lo_) {
        underflow_ += weight;
        return;
    }
    if (value >= hi_) {
        overflow_ += weight;
        return;
    }
    auto index = std::size_t((value - lo_) / bucketWidth_);
    if (index >= buckets_.size()) // float round-up at the top edge
        index = buckets_.size() - 1;
    buckets_[index] += weight;
}

double
Histogram::bucketLo(std::size_t index) const
{
    return lo_ + double(index) * bucketWidth_;
}

double
Histogram::bucketHi(std::size_t index) const
{
    return lo_ + double(index + 1) * bucketWidth_;
}

std::uint64_t
Histogram::bucketCount(std::size_t index) const
{
    return buckets_[index];
}

double
Histogram::quantile(double q) const
{
    if (summary_.count() == 0)
        return 0.0;
    q = std::min(1.0, std::max(0.0, q));
    double target = q * double(summary_.count());
    double seen = double(underflow_);
    if (target <= seen)
        return summary_.min();
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        double in_bucket = double(buckets_[i]);
        if (in_bucket > 0.0 && target <= seen + in_bucket) {
            double frac = (target - seen) / in_bucket;
            double v = bucketLo(i) + frac * bucketWidth_;
            return std::min(std::max(v, summary_.min()),
                            summary_.max());
        }
        seen += in_bucket;
    }
    // Target falls in the overflow bin: the best available bound is
    // the largest observed sample.
    return summary_.max();
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    underflow_ = 0;
    overflow_ = 0;
    summary_.reset();
}

double
geomean(const std::vector<double> &values, double floor)
{
    if (values.empty())
        return 0.0;
    double logSum = 0.0;
    for (double v : values)
        logSum += std::log(std::max(v, floor));
    return std::exp(logSum / double(values.size()));
}

} // namespace relief
