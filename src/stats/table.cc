#include "stats/table.hh"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "sim/logging.hh"

namespace relief
{

void
Table::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
Table::addRow(std::vector<std::string> row)
{
    RELIEF_ASSERT(header_.empty() || row.size() == header_.size(),
                  "table '", title_, "': row width ", row.size(),
                  " != header width ", header_.size());
    rows_.push_back(std::move(row));
}

std::string
Table::num(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string
Table::pct(double fraction, int precision)
{
    return num(fraction * 100.0, precision);
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> width(header_.size(), 0);
    auto grow = [&](const std::vector<std::string> &row) {
        if (row.size() > width.size())
            width.resize(row.size(), 0);
        for (std::size_t i = 0; i < row.size(); ++i)
            width[i] = std::max(width[i], row[i].size());
    };
    grow(header_);
    for (const auto &row : rows_)
        grow(row);

    if (!title_.empty())
        os << "== " << title_ << " ==\n";
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            os << std::left << std::setw(int(width[i]) + 2) << row[i];
        }
        os << "\n";
    };
    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (auto w : width)
            total += w + 2;
        os << std::string(total, '-') << "\n";
    }
    for (const auto &row : rows_)
        emit(row);
}

std::string
Table::slug() const
{
    std::string out;
    bool last_sep = true;
    for (char c : title_) {
        if (std::isalnum(static_cast<unsigned char>(c))) {
            out.push_back(char(std::tolower(
                static_cast<unsigned char>(c))));
            last_sep = false;
        } else if (!last_sep) {
            out.push_back('_');
            last_sep = true;
        }
    }
    while (!out.empty() && out.back() == '_')
        out.pop_back();
    return out.empty() ? "table" : out;
}

void
Table::emit(std::ostream &os) const
{
    print(os);
    const char *dir = std::getenv("RELIEF_CSV_DIR");
    if (!dir || !*dir)
        return;
    std::string path = std::string(dir) + "/" + slug() + ".csv";
    std::ofstream csv(path);
    if (!csv) {
        warn("cannot write CSV export to ", path);
        return;
    }
    printCsv(csv);
}

void
Table::printCsv(std::ostream &os) const
{
    if (!title_.empty())
        os << "# " << title_ << "\n";
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i)
                os << ",";
            os << row[i];
        }
        os << "\n";
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &row : rows_)
        emit(row);
}

} // namespace relief
