#include "predict/bandwidth_predictor.hh"

#include "sim/logging.hh"

namespace relief
{

const char *
bwPredictorName(BwPredictorKind kind)
{
    switch (kind) {
      case BwPredictorKind::Max:
        return "Max";
      case BwPredictorKind::Last:
        return "Last";
      case BwPredictorKind::Average:
        return "Average";
      case BwPredictorKind::Ewma:
        return "EWMA";
    }
    return "unknown";
}

BandwidthPredictor::BandwidthPredictor(BwPredictorKind kind, double max_gbs,
                                       int window, double alpha)
    : kind_(kind), maxGBs_(max_gbs), window_(window), alpha_(alpha),
      last_(max_gbs), ewma_(max_gbs)
{
    RELIEF_ASSERT(max_gbs > 0.0, "bandwidth predictor needs positive max");
    RELIEF_ASSERT(window >= 1, "average window must be >= 1");
    RELIEF_ASSERT(alpha > 0.0 && alpha <= 1.0, "EWMA alpha out of (0, 1]");
}

void
BandwidthPredictor::observe(double achieved_gbs)
{
    if (achieved_gbs <= 0.0)
        return;
    ++numObs_;
    last_ = achieved_gbs;
    ewma_ = alpha_ * achieved_gbs + (1.0 - alpha_) * ewma_;
    history_.push_back(achieved_gbs);
    windowSum_ += achieved_gbs;
    if (int(history_.size()) > window_) {
        windowSum_ -= history_.front();
        history_.pop_front();
    }
}

double
BandwidthPredictor::predict() const
{
    switch (kind_) {
      case BwPredictorKind::Max:
        return maxGBs_;
      case BwPredictorKind::Last:
        return last_;
      case BwPredictorKind::Average:
        return history_.empty() ? maxGBs_
                                : windowSum_ / double(history_.size());
      case BwPredictorKind::Ewma:
        return ewma_;
    }
    return maxGBs_;
}

} // namespace relief
