/**
 * @file
 * Node execution-time prediction (paper Section III-B).
 *
 * RELIEF's feasibility check needs each node's runtime estimate,
 * computed once when the node is inserted into the ready queue:
 *
 *   runtime = compute_time + data_movement_bytes / predicted_bandwidth
 *
 * Compute time comes from the profiled model (src/acc/compute_model);
 * data movement comes from either the Max scheme (all operands via
 * DRAM) or the graph-analyzing scheme that predicts colocations on the
 * input side and full-forwarding on the output side; bandwidth comes
 * from a BandwidthPredictor.
 */

#ifndef RELIEF_PREDICT_RUNTIME_PREDICTOR_HH
#define RELIEF_PREDICT_RUNTIME_PREDICTOR_HH

#include <array>
#include <cstdint>

#include "dag/dag.hh"
#include "predict/bandwidth_predictor.hh"
#include "stats/stats.hh"

namespace relief
{

/** Data-movement prediction scheme. */
enum class DmPredictorKind
{
    Max,   ///< Assume every operand moves through DRAM.
    Graph, ///< Analyze the DAG for colocations/forwards (Section III-B).
};

const char *dmPredictorName(DmPredictorKind kind);

class RuntimePredictor
{
  public:
    /**
     * @param bw_kind   Bandwidth prediction scheme.
     * @param dm_kind   Data-movement prediction scheme.
     * @param max_gbs   Peak memory bandwidth (Max scheme constant).
     * @param instances Accelerator instance count per type (the graph
     *                  DM predictor's unique-mapping check).
     */
    RuntimePredictor(BwPredictorKind bw_kind, DmPredictorKind dm_kind,
                     double max_gbs,
                     const std::array<int, numAccTypes> &instances);

    /** Predicted wall time of @p node (compute + memory). */
    Tick predict(const Node &node) const;

    /** Predicted bytes @p node will move (DM scheme applied). */
    std::uint64_t predictBytes(const Node &node) const;

    /** Predicted memory-access time of @p node. */
    Tick predictMemoryTime(const Node &node) const;

    /** Feed back the bandwidth a finished task achieved. */
    void observeBandwidth(double achieved_gbs);

    /** Record predicted-vs-actual samples (Table VIII accuracy). */
    void recordComputeOutcome(Tick predicted, Tick actual);
    void recordMemoryOutcome(Tick predicted, Tick actual);

    /** Signed mean error (predicted - actual) / actual, in percent. */
    double computeErrorPct() const;
    double memoryErrorPct() const;

    /** Mean absolute error in percent (the paper's gmean treatment). */
    double computeErrorAbsPct() const { return computeErrorAbs_.mean(); }
    double memoryErrorAbsPct() const { return memoryErrorAbs_.mean(); }

    BwPredictorKind bwKind() const { return bw_.kind(); }
    DmPredictorKind dmKind() const { return dmKind_; }

  private:
    BandwidthPredictor bw_;
    DmPredictorKind dmKind_;
    std::array<int, numAccTypes> instances_;
    Accum computeError_;
    Accum memoryError_;
    Accum computeErrorAbs_;
    Accum memoryErrorAbs_;
};

} // namespace relief

#endif // RELIEF_PREDICT_RUNTIME_PREDICTOR_HH
