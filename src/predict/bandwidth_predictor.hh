/**
 * @file
 * Memory-bandwidth predictors (paper Section III-B / Table VIII).
 *
 * The runtime predictor needs the bandwidth a task's DMA transfers will
 * achieve. Four schemes from the paper:
 *  - Max:     assume the channel's maximum bandwidth (the baseline the
 *             paper ships with, since accuracy barely matters —
 *             Observation 8).
 *  - Last:    last observed per-task bandwidth.
 *  - Average: arithmetic mean of the last n observations (n = 15).
 *  - EWMA:    pred = alpha * bw + (1 - alpha) * pred, alpha = 0.25.
 */

#ifndef RELIEF_PREDICT_BANDWIDTH_PREDICTOR_HH
#define RELIEF_PREDICT_BANDWIDTH_PREDICTOR_HH

#include <deque>
#include <string>

namespace relief
{

/** Bandwidth prediction scheme. */
enum class BwPredictorKind
{
    Max,
    Last,
    Average,
    Ewma,
};

const char *bwPredictorName(BwPredictorKind kind);

class BandwidthPredictor
{
  public:
    /**
     * @param kind    Prediction scheme.
     * @param max_gbs Channel maximum (prediction before any sample and
     *                the Max scheme's constant answer).
     * @param window  Average scheme history length (paper: n = 15).
     * @param alpha   EWMA weight (paper: 0.25).
     */
    explicit BandwidthPredictor(BwPredictorKind kind, double max_gbs = 12.8,
                                int window = 15, double alpha = 0.25);

    /** Record the bandwidth a finished task achieved. */
    void observe(double achieved_gbs);

    /** Bandwidth estimate for the next task. */
    double predict() const;

    BwPredictorKind kind() const { return kind_; }
    std::uint64_t numObservations() const { return numObs_; }

  private:
    BwPredictorKind kind_;
    double maxGBs_;
    int window_;
    double alpha_;
    double last_;
    double ewma_;
    double windowSum_ = 0.0;
    std::deque<double> history_;
    std::uint64_t numObs_ = 0;
};

} // namespace relief

#endif // RELIEF_PREDICT_BANDWIDTH_PREDICTOR_HH
