#include "predict/runtime_predictor.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace relief
{

const char *
dmPredictorName(DmPredictorKind kind)
{
    switch (kind) {
      case DmPredictorKind::Max:
        return "Max";
      case DmPredictorKind::Graph:
        return "Graph";
    }
    return "unknown";
}

RuntimePredictor::RuntimePredictor(
    BwPredictorKind bw_kind, DmPredictorKind dm_kind, double max_gbs,
    const std::array<int, numAccTypes> &instances)
    : bw_(bw_kind, max_gbs), dmKind_(dm_kind), instances_(instances)
{
}

namespace
{

/**
 * Graph DM prediction, input side: a parent edge contributes no bytes
 * if this node is predicted to colocate with the parent — it uses the
 * parent's accelerator type and has the earliest deadline among the
 * parent's children of that type (Section III-B: only one child can
 * colocate, predicted to be the earliest-deadline one).
 */
bool
predictColocation(const Node &node, const Node &parent)
{
    if (parent.params.type != node.params.type)
        return false;
    const Node *best = nullptr;
    for (const Node *child : parent.children) {
        if (child->params.type != parent.params.type)
            continue;
        if (!best || child->relDeadlineCp < best->relDeadlineCp)
            best = child;
    }
    return best == &node;
}

/**
 * Graph DM prediction, output side: no write-back if every child can
 * forward, i.e. (a) the children fit the accelerator instances of each
 * type without queueing behind one another, and (b) this node is the
 * latest-finishing parent (by deadline) of every child.
 */
bool
predictAllChildrenForward(const Node &node,
                          const std::array<int, numAccTypes> &instances)
{
    if (node.children.empty())
        return false;
    std::array<int, numAccTypes> demand{};
    for (const Node *child : node.children) {
        if (++demand[accIndex(child->params.type)] >
            instances[accIndex(child->params.type)]) {
            return false;
        }
        for (const Node *parent : child->parents) {
            if (parent != &node &&
                parent->relDeadlineCp > node.relDeadlineCp) {
                return false; // A later parent gates the child.
            }
        }
    }
    return true;
}

} // namespace

std::uint64_t
RuntimePredictor::predictBytes(const Node &node) const
{
    std::uint64_t operand = node.inputOperandSize();
    if (dmKind_ == DmPredictorKind::Max) {
        return std::uint64_t(node.params.numInputs) * operand +
               node.outputSize();
    }

    std::uint64_t bytes =
        std::uint64_t(node.externalInputs()) * operand;
    for (const Node *parent : node.parents) {
        if (!predictColocation(node, *parent))
            bytes += operand;
    }
    if (!predictAllChildrenForward(node, instances_))
        bytes += node.outputSize();
    return bytes;
}

Tick
RuntimePredictor::predictMemoryTime(const Node &node) const
{
    if (node.fixedRuntime)
        return 0; // Synthetic nodes carry their full runtime directly.
    return transferTime(predictBytes(node), bw_.predict());
}

Tick
RuntimePredictor::predict(const Node &node) const
{
    if (node.fixedRuntime)
        return node.fixedRuntime;
    return computeTime(node.params) + predictMemoryTime(node);
}

void
RuntimePredictor::observeBandwidth(double achieved_gbs)
{
    bw_.observe(achieved_gbs);
}

void
RuntimePredictor::recordComputeOutcome(Tick predicted, Tick actual)
{
    if (actual == 0)
        return;
    double err = (double(predicted) - double(actual)) / double(actual) *
                 100.0;
    computeError_.sample(err);
    computeErrorAbs_.sample(std::abs(err));
}

void
RuntimePredictor::recordMemoryOutcome(Tick predicted, Tick actual)
{
    if (actual == 0)
        return;
    double err = (double(predicted) - double(actual)) / double(actual) *
                 100.0;
    memoryError_.sample(err);
    memoryErrorAbs_.sample(std::abs(err));
}

double
RuntimePredictor::computeErrorPct() const
{
    return computeError_.mean();
}

double
RuntimePredictor::memoryErrorPct() const
{
    return memoryError_.mean();
}

} // namespace relief
