#include "serve/arrival.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "core/rng.hh"
#include "sim/logging.hh"

namespace relief
{

const char *
arrivalKindName(ArrivalKind kind)
{
    switch (kind) {
      case ArrivalKind::Poisson:
        return "poisson";
      case ArrivalKind::Bursty:
        return "bursty";
      case ArrivalKind::Trace:
        return "trace";
    }
    return "unknown";
}

ArrivalKind
arrivalFromName(const std::string &name)
{
    if (name == "poisson")
        return ArrivalKind::Poisson;
    if (name == "bursty" || name == "mmpp")
        return ArrivalKind::Bursty;
    if (name == "trace")
        return ArrivalKind::Trace;
    fatal("unknown arrival process '", name,
          "' (poisson | bursty | trace)");
}

namespace
{

/** Draw the class (by weight) and an app (uniform within the class). */
ArrivalEvent
drawRequest(Tick time, const std::vector<QosClassConfig> &classes,
            const std::vector<double> &weights, Xoshiro256pp &rng)
{
    ArrivalEvent event;
    event.time = time;
    event.qosClass = int(rng.pickWeighted(weights));
    const auto &apps = classes[std::size_t(event.qosClass)].apps;
    event.app = apps[rng.uniformInt(apps.size())];
    return event;
}

std::vector<double>
classWeights(const std::vector<QosClassConfig> &classes)
{
    RELIEF_ASSERT(!classes.empty(), "serving needs at least one class");
    std::vector<double> weights;
    for (const QosClassConfig &cls : classes) {
        if (cls.apps.empty())
            fatal("QoS class '", cls.name, "' has no request types");
        if (cls.weight < 0.0)
            fatal("QoS class '", cls.name, "' has a negative weight");
        weights.push_back(cls.weight);
    }
    return weights;
}

/** Exponential inter-arrival gap at @p rate_per_sec, in ticks. */
Tick
expGap(double rate_per_sec, Xoshiro256pp &rng)
{
    double mean_s = 1.0 / rate_per_sec;
    // Round up so a pathological tiny draw still advances time.
    Tick gap = Tick(rng.exponential(mean_s) * double(tickPerSec) + 0.5);
    return gap > 0 ? gap : 1;
}

std::vector<ArrivalEvent>
generatePoisson(double rate_per_sec,
                const std::vector<QosClassConfig> &classes, Tick horizon,
                Xoshiro256pp &rng)
{
    const std::vector<double> weights = classWeights(classes);
    std::vector<ArrivalEvent> out;
    Tick t = 0;
    for (;;) {
        Tick gap = expGap(rate_per_sec, rng);
        if (horizon - t <= gap) // t + gap >= horizon, overflow-safe
            break;
        t += gap;
        out.push_back(drawRequest(t, classes, weights, rng));
    }
    return out;
}

/**
 * Two-state MMPP: alternate calm/burst intervals with exponential
 * dwell times, emitting Poisson arrivals at the state's rate inside
 * each interval. Rates are normalized so the long-run mean equals
 * config.ratePerSec:
 *   mean = (1-f) * calm + f * (m * calm)  =>  calm = rate/(1-f+f*m).
 */
std::vector<ArrivalEvent>
generateBursty(const ArrivalConfig &config,
               const std::vector<QosClassConfig> &classes, Tick horizon,
               Xoshiro256pp &rng)
{
    const double f = config.burstFraction;
    const double m = config.burstRateMultiplier;
    if (f <= 0.0 || f >= 1.0)
        fatal("burst fraction must be in (0, 1), got ", f);
    if (m < 1.0)
        fatal("burst rate multiplier must be >= 1, got ", m);
    if (config.meanBurstDwell == 0)
        fatal("burst dwell time must be positive");
    const double calm_rate = config.ratePerSec / (1.0 - f + f * m);
    const double burst_rate = m * calm_rate;
    const double burst_dwell_s = toMs(config.meanBurstDwell) / 1e3;
    const double calm_dwell_s = burst_dwell_s * (1.0 - f) / f;

    const std::vector<double> weights = classWeights(classes);
    std::vector<ArrivalEvent> out;
    Tick t = 0;
    bool burst = false; // start calm; the first dwell draw flips state
    while (t < horizon) {
        double dwell_s =
            rng.exponential(burst ? burst_dwell_s : calm_dwell_s);
        Tick state_end = t + Tick(dwell_s * double(tickPerSec) + 0.5);
        if (state_end <= t)
            state_end = t + 1;
        state_end = std::min(state_end, horizon);
        double rate = burst ? burst_rate : calm_rate;
        Tick at = t;
        for (;;) {
            Tick gap = expGap(rate, rng);
            if (state_end - at <= gap)
                break;
            at += gap;
            out.push_back(drawRequest(at, classes, weights, rng));
        }
        t = state_end;
        burst = !burst;
    }
    return out;
}

int
findClass(const std::vector<QosClassConfig> &classes,
          const std::string &name)
{
    for (std::size_t i = 0; i < classes.size(); ++i)
        if (classes[i].name == name)
            return int(i);
    return -1;
}

} // namespace

std::vector<ArrivalEvent>
parseArrivalTrace(std::istream &in,
                  const std::vector<QosClassConfig> &classes, Tick horizon)
{
    std::vector<ArrivalEvent> out;
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        std::string::size_type hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue; // blank or comment-only line
        std::istringstream fields(line);
        double time_ms;
        std::string class_name, app_symbol;
        if (!(fields >> time_ms))
            fatal("arrival trace line ", line_no,
                  ": time column is not a number");
        if (!(fields >> class_name >> app_symbol))
            fatal("arrival trace line ", line_no,
                  ": expected '<time_ms> <class> <app_symbol>'");
        std::string extra;
        if (fields >> extra)
            fatal("arrival trace line ", line_no, ": trailing token '",
                  extra, "'");
        if (time_ms < 0.0)
            fatal("arrival trace line ", line_no, ": negative time");

        ArrivalEvent event;
        event.time = fromMs(time_ms);
        int cls = findClass(classes, class_name);
        if (cls < 0)
            fatal("arrival trace line ", line_no, ": unknown class '",
                  class_name, "'");
        event.qosClass = cls;
        std::vector<AppId> apps = parseMix(app_symbol);
        if (apps.size() != 1)
            fatal("arrival trace line ", line_no,
                  ": expected one app symbol, got '", app_symbol, "'");
        event.app = apps[0];
        const auto &class_apps = classes[std::size_t(cls)].apps;
        if (std::find(class_apps.begin(), class_apps.end(), event.app) ==
            class_apps.end()) {
            fatal("arrival trace line ", line_no, ": app '", app_symbol,
                  "' is not served by class '", class_name, "'");
        }
        if (event.time < horizon)
            out.push_back(event);
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const ArrivalEvent &a, const ArrivalEvent &b) {
                         return a.time < b.time;
                     });
    return out;
}

std::vector<ArrivalEvent>
generateArrivals(const ArrivalConfig &config,
                 const std::vector<QosClassConfig> &classes, Tick horizon,
                 std::uint64_t seed)
{
    if (config.kind == ArrivalKind::Trace) {
        std::ifstream in(config.tracePath);
        if (!in)
            fatal("cannot open arrival trace '", config.tracePath, "'");
        return parseArrivalTrace(in, classes, horizon);
    }
    if (config.ratePerSec <= 0.0)
        fatal("arrival rate must be positive, got ", config.ratePerSec);
    Xoshiro256pp rng(seed);
    if (config.kind == ArrivalKind::Poisson)
        return generatePoisson(config.ratePerSec, classes, horizon, rng);
    return generateBursty(config, classes, horizon, rng);
}

} // namespace relief
