#include "serve/request.hh"

namespace relief
{

const char *
admissionVerdictName(AdmissionVerdict verdict)
{
    switch (verdict) {
      case AdmissionVerdict::Admitted:
        return "admitted";
      case AdmissionVerdict::Shed:
        return "shed";
      case AdmissionVerdict::Rejected:
        return "rejected";
    }
    return "unknown";
}

std::vector<QosClassConfig>
defaultQosClasses()
{
    // RNN inference answers an interactive agent (tight 7 ms Table V
    // deadline), vision tracks the display refresh, and deblur is
    // throughput work that tolerates a 3x relaxed deadline.
    return {
        {"realtime", {AppId::Gru, AppId::Lstm}, 0.3, 1.0, 0},
        {"interactive", {AppId::Canny, AppId::Harris}, 0.5, 1.0, 1},
        {"batch", {AppId::Deblur}, 0.2, 3.0, 2},
    };
}

} // namespace relief
