#include "serve/slo.hh"

#include "stats/json.hh"

namespace relief
{

namespace
{

void
writeQuantiles(std::ostream &os, const Histogram &hist)
{
    os << "{\"mean\": " << jsonNumber(hist.mean())
       << ", \"p50\": " << jsonNumber(hist.quantile(0.50))
       << ", \"p95\": " << jsonNumber(hist.quantile(0.95))
       << ", \"p99\": " << jsonNumber(hist.quantile(0.99))
       << ", \"max\": " << jsonNumber(hist.max()) << "}";
}

} // namespace

void
writeClassSloJson(std::ostream &os, const ClassSlo &slo, Tick horizon,
                  int indent)
{
    const std::string pad(std::size_t(indent), ' ');
    os << "{\n"
       << pad << "  \"name\": \"" << jsonEscape(slo.name) << "\",\n"
       << pad << "  \"offered\": " << slo.offered << ",\n"
       << pad << "  \"admitted\": " << slo.admitted << ",\n"
       << pad << "  \"shed\": " << slo.shed << ",\n"
       << pad << "  \"rejected\": " << slo.rejected << ",\n"
       << pad << "  \"completed\": " << slo.completed << ",\n"
       << pad << "  \"missed\": " << slo.missed << ",\n"
       << pad << "  \"in_flight\": " << slo.inFlight << ",\n"
       << pad << "  \"goodput_rps\": "
       << jsonNumber(slo.goodputRps(horizon)) << ",\n"
       << pad << "  \"miss_rate\": " << jsonNumber(slo.missRate())
       << ",\n"
       << pad << "  \"shed_rate\": " << jsonNumber(slo.shedRate())
       << ",\n"
       << pad << "  \"latency_ms\": ";
    writeQuantiles(os, slo.latencyMs);
    os << ",\n" << pad << "  \"time_in_system_ms\": ";
    writeQuantiles(os, slo.timeInSystemMs);
    os << "\n" << pad << "}";
}

} // namespace relief
