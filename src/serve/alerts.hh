/**
 * @file
 * SLO burn-rate alerts for the serving layer.
 *
 * Implements the SRE multiwindow burn-rate pattern per QoS class: the
 * SLO budget is the tolerated miss fraction (1 - target), and the
 * *burn rate* over a window is the windowed miss fraction divided by
 * that budget — burn 1 means the class is spending its error budget
 * exactly at the tolerated pace, burn 2 twice as fast.
 *
 * Two windows guard against both failure modes of a single window: the
 * *fast* window makes the alert react within milliseconds of a real
 * regression, while the *slow* window keeps one unlucky burst from
 * paging. An alert OPENS only when both windows burn at or above
 * `openBurn`, and CLOSES only when both fall below `closeBurn` — the
 * gap between the two thresholds is the hysteresis band that prevents
 * open/close churn while a class hovers near its budget.
 *
 * The evaluator samples the live per-class ClassSlo counters on a
 * periodic sim-time event (same liveness discipline as the
 * IntervalSampler), records every open/close transition in its alert
 * log — mirrored onto the `Serve` debug flag like the scheduler's
 * decision log — and summarizes per class into the relief-serve-v1
 * "alerts" block. Everything is a pure function of the run, so alert
 * event streams are bit-identical across platforms and worker counts.
 */

#ifndef RELIEF_SERVE_ALERTS_HH
#define RELIEF_SERVE_ALERTS_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "serve/slo.hh"
#include "sim/simulator.hh"

namespace relief
{

struct BurnRateConfig
{
    /** SLO attainment target in (0, 1): the tolerated miss fraction
     *  (error budget) is 1 - sloTarget. */
    double sloTarget = 0.9;
    Tick fastWindow = fromMs(5.0);  ///< Reacts to regressions.
    Tick slowWindow = fromMs(25.0); ///< Filters one-burst noise.
    Tick evalPeriod = fromMs(1.0);  ///< Evaluation cadence.
    double openBurn = 2.0;  ///< Open when both windows >= this.
    double closeBurn = 1.0; ///< Close when both windows < this.
};

/** One open/close transition of a class's alert. */
struct AlertEvent
{
    Tick when = 0;
    std::string qosClass;
    bool open = true; ///< true = opened, false = closed.
    double fastBurn = 0.0;
    double slowBurn = 0.0;
};

/** Per-class summary of a run's alert activity (relief-serve-v1
 *  "alerts" block). */
struct ClassAlertSummary
{
    std::string name;
    std::uint64_t opens = 0;
    std::uint64_t closes = 0;
    bool active = false;  ///< Still open at the end of the run.
    Tick activeTicks = 0; ///< Total time spent open.
    double finalFastBurn = 0.0;
    double finalSlowBurn = 0.0;
};

class BurnRateAlerts : public SimObject
{
  public:
    /**
     * @param sim     Owning simulation context.
     * @param config  Thresholds and windows.
     * @param classes Live per-class SLO counters (must outlive the
     *                evaluator; the serving driver owns both).
     */
    BurnRateAlerts(Simulator &sim, const BurnRateConfig &config,
                   const std::vector<ClassSlo> *classes);

    /** Re-arm while this returns true (default: events pending). */
    void setLiveness(std::function<bool()> alive);

    /** Evaluate now and begin periodic evaluation. */
    void start();

    /** Cancel the pending wakeup; start() re-arms. */
    void stop();

    /** One evaluation pass at the current tick (also called by the
     *  periodic event). */
    void evaluateNow();

    /**
     * End-of-run close-out at @p when: accumulates the open time of
     * still-active alerts and freezes the final burn rates, without
     * emitting synthetic close events.
     */
    void finish(Tick when);

    const BurnRateConfig &config() const { return config_; }

    /** Every open/close transition, in sim-time order (the serving
     *  decision log for alerts). */
    const std::vector<AlertEvent> &events() const { return events_; }

    /** Per-class summaries (valid after finish()). */
    std::vector<ClassAlertSummary> summary() const;

  private:
    struct Sample
    {
        Tick when = 0;
        std::uint64_t completed = 0;
        std::uint64_t missed = 0;
    };

    struct ClassState
    {
        std::deque<Sample> samples;
        bool open = false;
        Tick openedAt = 0;
        std::uint64_t opens = 0;
        std::uint64_t closes = 0;
        Tick activeTicks = 0;
        double fastBurn = 0.0;
        double slowBurn = 0.0;
    };

    void tick();
    double windowBurn(const ClassState &state, Tick window) const;

    BurnRateConfig config_;
    const std::vector<ClassSlo> *classes_;
    std::vector<ClassState> states_;
    std::function<bool()> alive_;
    EventHandle pending_;
    std::vector<AlertEvent> events_;
    bool finished_ = false;
};

/** Write the relief-serve-v1 "alerts" array (one object per class,
 *  summary plus its open/close events) at @p indent spaces. */
void writeAlertsJson(std::ostream &os,
                     const std::vector<ClassAlertSummary> &summaries,
                     const std::vector<AlertEvent> &events, int indent);

} // namespace relief

#endif // RELIEF_SERVE_ALERTS_HH
