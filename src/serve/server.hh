/**
 * @file
 * The online serving driver: drives a Soc like an inference server
 * under open-loop load.
 *
 * ServeDriver generates a seeded arrival schedule (serve/arrival.hh),
 * and at each arrival tick builds a fresh DAG for the request's
 * application, consults the admission policy (serve/admission.hh),
 * and submits admitted requests through the hardware manager's timed
 * host interface. Completions are intercepted to maintain per-class
 * SLO accounting (serve/slo.hh), which is also registered in the
 * Soc's StatRegistry under "serve.*" names.
 *
 * Determinism contract: a ServeReport is a pure function of
 * (ServeConfig, seed). The driver resets the thread-local node-id
 * allocator at construction and draws every random variate from its
 * own core/rng.hh stream, so results are bit-identical across
 * platforms and across parallelFor worker counts — the property the
 * load-sweep bench's --jobs invariance test relies on.
 *
 * Typical use (see examples/serve_demo.cpp):
 *
 *   ServeConfig config;
 *   config.soc.policy = PolicyKind::Relief;
 *   config.arrival.ratePerSec = 400.0;
 *   config.admission.kind = AdmissionKind::QueueCap;
 *   ServeDriver driver(config);
 *   ServeReport report = driver.run();
 *   printSloTable(std::cout, report, "mixed QoS @ 400 rps");
 */

#ifndef RELIEF_SERVE_SERVER_HH
#define RELIEF_SERVE_SERVER_HH

#include <memory>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/soc.hh"
#include "serve/admission.hh"
#include "serve/alerts.hh"
#include "serve/arrival.hh"
#include "serve/request.hh"
#include "serve/slo.hh"
#include "trace/exposition.hh"
#include "trace/sampler.hh"
#include "trace/span.hh"

namespace relief
{

/**
 * Tracing / telemetry knobs for one serving run. All off by default:
 * a plain ServeDriver adds nothing to the event hot path.
 */
struct ServeTelemetryConfig
{
    /** Assemble request span trees and tail-sample them
     *  (trace/span.hh, trace/sampler.hh). */
    bool traceRequests = false;
    /** Tail-sampling keep fraction for OK traces (anomalous outcomes
     *  are always kept). */
    double okFraction = 0.0;
    /** Record a Perfetto trace: serve counter tracks plus the kept
     *  request span trees as async slices. */
    bool perfetto = false;
    /** Counter-track sampling cadence when perfetto is set. */
    Tick samplePeriod = fromUs(10.0);
    /** Periodic Prometheus text exposition; enabled when
     *  exposition.path is non-empty (trace/exposition.hh). */
    ExpositionConfig exposition;
    /** Run the per-class SLO burn-rate evaluator (serve/alerts.hh). */
    bool alerts = false;
    BurnRateConfig burnRate;
};

/** Everything one serving run needs. */
struct ServeConfig
{
    SocConfig soc;
    AppConfig app;              ///< DAG-builder knobs for requests.
    std::vector<QosClassConfig> classes = defaultQosClasses();
    ArrivalConfig arrival;
    AdmissionConfig admission;
    ServeTelemetryConfig telemetry;
    Tick horizon = continuousWindow; ///< Open-loop measurement window.
    std::uint64_t seed = 1;          ///< Master seed (arrival stream).
};

/** Outcome of one serving run. */
struct ServeReport
{
    Tick horizon = 0;
    std::vector<ClassSlo> classes; ///< One entry per QoS class.
    ClassSlo total;                ///< All classes aggregated.
    MetricsReport soc;             ///< Underlying platform metrics.
    /** Tail-sampling counters (all zero when tracing is off). */
    TailSampleSummary sampling;
    /** Burn-rate alert summaries + event log (empty when off). */
    std::vector<ClassAlertSummary> alerts;
    std::vector<AlertEvent> alertEvents;

    /**
     * Per-QoS memory-pressure rollup from the Soc's attribution
     * ledger, claim-weighted across every bandwidth resource. Entry 0
     * is the ledger's implicit "default" class (untagged traffic and
     * SPM spills); entries 1..N line up with `classes`.
     */
    struct QosPressure
    {
        std::string name;
        PressureLedger::Slot slot;
    };
    std::vector<QosPressure> pressure;
};

class ServeDriver
{
  public:
    explicit ServeDriver(const ServeConfig &config);
    ~ServeDriver();

    ServeDriver(const ServeDriver &) = delete;
    ServeDriver &operator=(const ServeDriver &) = delete;

    /** Execute the run (single-shot) and return its report. */
    ServeReport run();

    Soc &soc() { return *soc_; }
    const std::vector<ArrivalEvent> &schedule() const { return schedule_; }
    /** Per-request records, in arrival order (valid after run()). */
    const std::vector<ServeRequest> &requests() const { return requests_; }

    /** Kept request traces, sorted by id (valid after run(); empty
     *  unless telemetry.traceRequests). */
    const std::vector<RequestTrace> &keptTraces() const { return kept_; }
    /** The tail sampler, or nullptr when tracing is off. */
    const TailSampler *tailSampler() const { return sampler_.get(); }
    /** The exposition writer, or nullptr when disabled. */
    StatExposition *exposition() { return exposition_.get(); }
    /** The burn-rate evaluator, or nullptr when disabled. */
    BurnRateAlerts *alerts() { return alerts_.get(); }

  private:
    void registerStats();
    void onArrival(std::size_t index);
    void onComplete(Dag *dag);
    void onAttributed(Dag *dag, const DagLatencyRecord &record);
    void recordDropTrace(const ServeRequest &request,
                         RequestOutcome outcome);

    ServeConfig config_;
    std::unique_ptr<Soc> soc_;
    std::unique_ptr<AdmissionPolicy> admission_;
    std::vector<ArrivalEvent> schedule_;
    std::vector<ServeRequest> requests_;
    std::vector<DagPtr> dags_; ///< Keeps admitted DAGs alive.
    std::unordered_map<const Dag *, std::size_t> byDag_;
    std::vector<ClassSlo> slo_;
    ClassSlo total_;
    std::unique_ptr<TailSampler> sampler_;
    std::vector<RequestTrace> kept_;
    std::unique_ptr<BurnRateAlerts> alerts_;
    std::unique_ptr<StatExposition> exposition_;
    std::vector<int> perClassInSystem_;
    std::size_t arrivalsSeen_ = 0;
    int parallelism_ = 1;
    int inSystem_ = 0;
    Tick backlog_ = 0;
    bool ran_ = false;
};

/** Print the per-class SLO table (one row per class plus a total). */
void printSloTable(std::ostream &os, const ServeReport &report,
                   const std::string &title);

/**
 * Write one element of a relief-serve-v1 document's "runs" array:
 * run-level identity (policy / admission / arrival / offered load),
 * aggregate counters and rates, and the per-class SLO objects.
 * @p offered_load is the multiplier of measured capacity (0 when the
 * run was configured with an absolute rate instead).
 */
void writeServeRunJson(std::ostream &os, const ServeReport &report,
                       const std::string &policy,
                       const std::string &admission,
                       const std::string &arrival, double offered_load,
                       double rate_rps, int indent = 4);

/**
 * Measured serving capacity of @p soc in requests per second: a
 * closed-loop continuous run of all five applications for the paper's
 * 50 ms window under FCFS (policy-neutral so every policy in a sweep
 * sees identical offered rates), counting finished DAGs per second.
 */
double measureCapacityRps(const SocConfig &soc, const AppConfig &app);

} // namespace relief

#endif // RELIEF_SERVE_SERVER_HH
