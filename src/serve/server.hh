/**
 * @file
 * The online serving driver: drives a Soc like an inference server
 * under open-loop load.
 *
 * ServeDriver generates a seeded arrival schedule (serve/arrival.hh),
 * and at each arrival tick builds a fresh DAG for the request's
 * application, consults the admission policy (serve/admission.hh),
 * and submits admitted requests through the hardware manager's timed
 * host interface. Completions are intercepted to maintain per-class
 * SLO accounting (serve/slo.hh), which is also registered in the
 * Soc's StatRegistry under "serve.*" names.
 *
 * Determinism contract: a ServeReport is a pure function of
 * (ServeConfig, seed). The driver resets the thread-local node-id
 * allocator at construction and draws every random variate from its
 * own core/rng.hh stream, so results are bit-identical across
 * platforms and across parallelFor worker counts — the property the
 * load-sweep bench's --jobs invariance test relies on.
 *
 * Typical use (see examples/serve_demo.cpp):
 *
 *   ServeConfig config;
 *   config.soc.policy = PolicyKind::Relief;
 *   config.arrival.ratePerSec = 400.0;
 *   config.admission.kind = AdmissionKind::QueueCap;
 *   ServeDriver driver(config);
 *   ServeReport report = driver.run();
 *   printSloTable(std::cout, report, "mixed QoS @ 400 rps");
 */

#ifndef RELIEF_SERVE_SERVER_HH
#define RELIEF_SERVE_SERVER_HH

#include <memory>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/soc.hh"
#include "serve/admission.hh"
#include "serve/arrival.hh"
#include "serve/request.hh"
#include "serve/slo.hh"

namespace relief
{

/** Everything one serving run needs. */
struct ServeConfig
{
    SocConfig soc;
    AppConfig app;              ///< DAG-builder knobs for requests.
    std::vector<QosClassConfig> classes = defaultQosClasses();
    ArrivalConfig arrival;
    AdmissionConfig admission;
    Tick horizon = continuousWindow; ///< Open-loop measurement window.
    std::uint64_t seed = 1;          ///< Master seed (arrival stream).
};

/** Outcome of one serving run. */
struct ServeReport
{
    Tick horizon = 0;
    std::vector<ClassSlo> classes; ///< One entry per QoS class.
    ClassSlo total;                ///< All classes aggregated.
    MetricsReport soc;             ///< Underlying platform metrics.
};

class ServeDriver
{
  public:
    explicit ServeDriver(const ServeConfig &config);
    ~ServeDriver();

    ServeDriver(const ServeDriver &) = delete;
    ServeDriver &operator=(const ServeDriver &) = delete;

    /** Execute the run (single-shot) and return its report. */
    ServeReport run();

    Soc &soc() { return *soc_; }
    const std::vector<ArrivalEvent> &schedule() const { return schedule_; }
    /** Per-request records, in arrival order (valid after run()). */
    const std::vector<ServeRequest> &requests() const { return requests_; }

  private:
    void registerStats();
    void onArrival(std::size_t index);
    void onComplete(Dag *dag);

    ServeConfig config_;
    std::unique_ptr<Soc> soc_;
    std::unique_ptr<AdmissionPolicy> admission_;
    std::vector<ArrivalEvent> schedule_;
    std::vector<ServeRequest> requests_;
    std::vector<DagPtr> dags_; ///< Keeps admitted DAGs alive.
    std::unordered_map<const Dag *, std::size_t> byDag_;
    std::vector<ClassSlo> slo_;
    ClassSlo total_;
    int parallelism_ = 1;
    int inSystem_ = 0;
    Tick backlog_ = 0;
    bool ran_ = false;
};

/** Print the per-class SLO table (one row per class plus a total). */
void printSloTable(std::ostream &os, const ServeReport &report,
                   const std::string &title);

/**
 * Write one element of a relief-serve-v1 document's "runs" array:
 * run-level identity (policy / admission / arrival / offered load),
 * aggregate counters and rates, and the per-class SLO objects.
 * @p offered_load is the multiplier of measured capacity (0 when the
 * run was configured with an absolute rate instead).
 */
void writeServeRunJson(std::ostream &os, const ServeReport &report,
                       const std::string &policy,
                       const std::string &admission,
                       const std::string &arrival, double offered_load,
                       double rate_rps, int indent = 4);

/**
 * Measured serving capacity of @p soc in requests per second: a
 * closed-loop continuous run of all five applications for the paper's
 * 50 ms window under FCFS (policy-neutral so every policy in a sweep
 * sees identical offered rates), counting finished DAGs per second.
 */
double measureCapacityRps(const SocConfig &soc, const AppConfig &app);

} // namespace relief

#endif // RELIEF_SERVE_SERVER_HH
