#include "serve/alerts.hh"

#include <utility>

#include "sim/debug.hh"
#include "sim/logging.hh"
#include "stats/json.hh"
#include "stats/table.hh"

namespace relief
{

BurnRateAlerts::BurnRateAlerts(Simulator &sim,
                               const BurnRateConfig &config,
                               const std::vector<ClassSlo> *classes)
    : SimObject(sim, "serve.alerts"), config_(config), classes_(classes)
{
    RELIEF_ASSERT(classes_ != nullptr && !classes_->empty(),
                  "burn-rate alerts need at least one QoS class");
    RELIEF_ASSERT(config_.sloTarget > 0.0 && config_.sloTarget < 1.0,
                  "SLO target must be in (0, 1), got ",
                  config_.sloTarget);
    RELIEF_ASSERT(config_.fastWindow > 0, "fast window must be positive");
    RELIEF_ASSERT(config_.slowWindow >= config_.fastWindow,
                  "slow window must cover the fast window");
    RELIEF_ASSERT(config_.evalPeriod > 0,
                  "evaluation period must be positive");
    RELIEF_ASSERT(config_.openBurn >= config_.closeBurn,
                  "open threshold below close threshold: the alert "
                  "would churn");
    states_.resize(classes_->size());
}

void
BurnRateAlerts::setLiveness(std::function<bool()> alive)
{
    alive_ = std::move(alive);
}

void
BurnRateAlerts::start()
{
    if (pending_.pending())
        return;
    tick();
}

void
BurnRateAlerts::stop()
{
    pending_.cancel();
}

void
BurnRateAlerts::tick()
{
    evaluateNow();
    // Re-arm only while the model is alive (injectable, like the
    // IntervalSampler): two periodic services keyed on raw event-queue
    // occupancy would keep each other alive forever.
    bool alive = alive_ ? alive_() : !sim().events().empty();
    if (alive)
        pending_ = sim().after(config_.evalPeriod, HostCat::Serve,
                               [this] { tick(); },
                               "serve.alerts.tick");
}

double
BurnRateAlerts::windowBurn(const ClassState &state, Tick window) const
{
    if (state.samples.size() < 2)
        return 0.0;
    const Sample &head = state.samples.back();
    // Baseline: the latest sample at or before the window start; a run
    // younger than the window measures from its earliest sample.
    Tick cutoff = head.when > window ? head.when - window : 0;
    const Sample *baseline = &state.samples.front();
    for (const Sample &s : state.samples) {
        if (s.when > cutoff)
            break;
        baseline = &s;
    }
    std::uint64_t dc = head.completed - baseline->completed;
    std::uint64_t dm = head.missed - baseline->missed;
    if (dc == 0)
        return 0.0;
    double budget = 1.0 - config_.sloTarget;
    return (double(dm) / double(dc)) / budget;
}

void
BurnRateAlerts::evaluateNow()
{
    for (std::size_t i = 0; i < states_.size(); ++i) {
        ClassState &state = states_[i];
        const ClassSlo &slo = (*classes_)[i];
        state.samples.push_back({now(), slo.completed, slo.missed});

        state.fastBurn = windowBurn(state, config_.fastWindow);
        state.slowBurn = windowBurn(state, config_.slowWindow);

        // Multiwindow hysteresis: open only when both windows burn
        // hot, close only when both have cooled below the (lower)
        // close threshold.
        if (!state.open && state.fastBurn >= config_.openBurn &&
            state.slowBurn >= config_.openBurn) {
            state.open = true;
            state.openedAt = now();
            state.opens += 1;
            events_.push_back({now(), slo.name, true, state.fastBurn,
                               state.slowBurn});
            DPRINTF(Serve, "alert OPEN class ", slo.name, " fast ",
                    Table::num(state.fastBurn, 2), " slow ",
                    Table::num(state.slowBurn, 2), " (open >= ",
                    Table::num(config_.openBurn, 2), ")");
        } else if (state.open && state.fastBurn < config_.closeBurn &&
                   state.slowBurn < config_.closeBurn) {
            state.open = false;
            state.activeTicks += now() - state.openedAt;
            state.closes += 1;
            events_.push_back({now(), slo.name, false, state.fastBurn,
                               state.slowBurn});
            DPRINTF(Serve, "alert CLOSE class ", slo.name, " fast ",
                    Table::num(state.fastBurn, 2), " slow ",
                    Table::num(state.slowBurn, 2), " (close < ",
                    Table::num(config_.closeBurn, 2), ")");
        }

        // Keep one sample at or before the slow-window start as the
        // baseline; everything older is unreachable by either window.
        Tick cutoff =
            now() > config_.slowWindow ? now() - config_.slowWindow : 0;
        while (state.samples.size() >= 2 &&
               state.samples[1].when <= cutoff) {
            state.samples.pop_front();
        }
    }
}

void
BurnRateAlerts::finish(Tick when)
{
    if (finished_)
        return;
    finished_ = true;
    for (ClassState &state : states_) {
        if (state.open)
            state.activeTicks += when - state.openedAt;
    }
}

std::vector<ClassAlertSummary>
BurnRateAlerts::summary() const
{
    std::vector<ClassAlertSummary> out;
    out.reserve(states_.size());
    for (std::size_t i = 0; i < states_.size(); ++i) {
        const ClassState &state = states_[i];
        ClassAlertSummary s;
        s.name = (*classes_)[i].name;
        s.opens = state.opens;
        s.closes = state.closes;
        s.active = state.open;
        s.activeTicks = state.activeTicks;
        s.finalFastBurn = state.fastBurn;
        s.finalSlowBurn = state.slowBurn;
        out.push_back(std::move(s));
    }
    return out;
}

void
writeAlertsJson(std::ostream &os,
                const std::vector<ClassAlertSummary> &summaries,
                const std::vector<AlertEvent> &events, int indent)
{
    const std::string pad(std::size_t(indent), ' ');
    os << "[";
    bool first = true;
    for (const ClassAlertSummary &s : summaries) {
        os << (first ? "\n" : ",\n") << pad << "  {\"class\": \""
           << jsonEscape(s.name) << "\", \"opens\": " << s.opens
           << ", \"closes\": " << s.closes << ", \"active\": "
           << (s.active ? "true" : "false") << ", \"active_ms\": "
           << jsonNumber(toMs(s.activeTicks)) << ", \"final_fast_burn\": "
           << jsonNumber(s.finalFastBurn) << ", \"final_slow_burn\": "
           << jsonNumber(s.finalSlowBurn) << ", \"events\": [";
        bool first_event = true;
        for (const AlertEvent &e : events) {
            if (e.qosClass != s.name)
                continue;
            os << (first_event ? "" : ", ") << "{\"t_ms\": "
               << jsonNumber(toMs(e.when)) << ", \"open\": "
               << (e.open ? "true" : "false") << ", \"fast_burn\": "
               << jsonNumber(e.fastBurn) << ", \"slow_burn\": "
               << jsonNumber(e.slowBurn) << "}";
            first_event = false;
        }
        os << "]}";
        first = false;
    }
    if (first)
        os << "]";
    else
        os << "\n" << pad << "]";
}

} // namespace relief
