/**
 * @file
 * Open-loop arrival generators for the serving layer.
 *
 * Three processes, all driven by the repo's own deterministic RNG
 * (core/rng.hh) so a seed reproduces the same schedule on every
 * platform and worker-thread count:
 *
 *  - Poisson: exponential inter-arrival times at a fixed mean rate.
 *  - Bursty:  a two-state Markov-modulated Poisson process (MMPP).
 *    The stream alternates between a calm and a burst state with
 *    exponentially distributed dwell times; rates are normalized so
 *    the long-run mean rate equals the configured rate, keeping
 *    offered-load multipliers comparable with the Poisson process.
 *  - Trace:   arrivals replayed from a text file, one per line:
 *    `<time_ms> <class_name> <app_symbol>` ('#' starts a comment).
 *
 * Every arrival carries a QoS class (picked by class weight) and a
 * request type (picked uniformly among the class's apps). Schedules
 * are generated up front; admission still happens online at each
 * arrival's simulation event.
 */

#ifndef RELIEF_SERVE_ARRIVAL_HH
#define RELIEF_SERVE_ARRIVAL_HH

#include <cstdint>
#include <istream>
#include <string>
#include <vector>

#include "serve/request.hh"
#include "sim/ticks.hh"

namespace relief
{

/** Which arrival process drives the request stream. */
enum class ArrivalKind
{
    Poisson,
    Bursty, ///< Two-state MMPP.
    Trace,  ///< Replay from tracePath.
};

const char *arrivalKindName(ArrivalKind kind);
ArrivalKind arrivalFromName(const std::string &name);

/** Knobs for generateArrivals(). */
struct ArrivalConfig
{
    ArrivalKind kind = ArrivalKind::Poisson;
    /** Long-run mean offered rate, requests per second. */
    double ratePerSec = 200.0;
    /** Bursty: burst-state rate as a multiple of the calm-state rate. */
    double burstRateMultiplier = 4.0;
    /** Bursty: long-run fraction of time spent in the burst state. */
    double burstFraction = 0.25;
    /** Bursty: mean dwell time in the burst state. */
    Tick meanBurstDwell = fromMs(2.0);
    /** Trace: path of the arrival trace file. */
    std::string tracePath;
};

/** One scheduled request arrival. */
struct ArrivalEvent
{
    Tick time = 0;
    int qosClass = 0;
    AppId app = AppId::Canny;
};

/**
 * Generate the arrival schedule over [0, horizon), sorted by time.
 * Pure function of (config, classes, horizon, seed). Throws FatalError
 * on invalid configuration (non-positive rate, unreadable trace, ...).
 */
std::vector<ArrivalEvent>
generateArrivals(const ArrivalConfig &config,
                 const std::vector<QosClassConfig> &classes, Tick horizon,
                 std::uint64_t seed);

/**
 * Parse an arrival trace (see the file grammar above). Class names
 * must match @p classes; app symbols must belong to the named class.
 * Arrivals past @p horizon are dropped; the result is sorted by time.
 * Throws FatalError with line numbers on malformed input.
 */
std::vector<ArrivalEvent>
parseArrivalTrace(std::istream &in,
                  const std::vector<QosClassConfig> &classes, Tick horizon);

} // namespace relief

#endif // RELIEF_SERVE_ARRIVAL_HH
