#include "serve/admission.hh"

#include "sim/logging.hh"

namespace relief
{

const char *
admissionKindName(AdmissionKind kind)
{
    switch (kind) {
      case AdmissionKind::AdmitAll:
        return "admit-all";
      case AdmissionKind::QueueCap:
        return "queue-cap";
      case AdmissionKind::Laxity:
        return "laxity";
    }
    return "unknown";
}

AdmissionKind
admissionFromName(const std::string &name)
{
    if (name == "admit-all")
        return AdmissionKind::AdmitAll;
    if (name == "queue-cap")
        return AdmissionKind::QueueCap;
    if (name == "laxity")
        return AdmissionKind::Laxity;
    fatal("unknown admission policy '", name,
          "' (admit-all | queue-cap | laxity)");
}

namespace
{

class AdmitAllPolicy : public AdmissionPolicy
{
  public:
    AdmissionKind kind() const override { return AdmissionKind::AdmitAll; }

    AdmissionVerdict
    decide(const ServeRequest &, const Dag &,
           const AdmissionContext &) override
    {
        return AdmissionVerdict::Admitted;
    }
};

class QueueCapPolicy : public AdmissionPolicy
{
  public:
    explicit QueueCapPolicy(int cap) : cap_(cap)
    {
        if (cap_ < 1)
            fatal("queue cap must be positive, got ", cap_);
    }

    AdmissionKind kind() const override { return AdmissionKind::QueueCap; }

    AdmissionVerdict
    decide(const ServeRequest &, const Dag &,
           const AdmissionContext &ctx) override
    {
        return ctx.inSystem >= cap_ ? AdmissionVerdict::Shed
                                    : AdmissionVerdict::Admitted;
    }

  private:
    int cap_;
};

class LaxityPolicy : public AdmissionPolicy
{
  public:
    explicit LaxityPolicy(double margin) : margin_(margin)
    {
        if (margin_ <= 0.0)
            fatal("laxity margin must be positive, got ", margin_);
    }

    AdmissionKind kind() const override { return AdmissionKind::Laxity; }

    AdmissionVerdict
    decide(const ServeRequest &request, const Dag &dag,
           const AdmissionContext &ctx) override
    {
        // Predicted completion: the in-system backlog drains across
        // the accelerators while this request's own critical path
        // still has to execute end to end. Reject when that estimate
        // already blows the deadline — negative laxity at arrival.
        int lanes = ctx.parallelism > 0 ? ctx.parallelism : 1;
        Tick queueing =
            Tick(double(ctx.backlog) / double(lanes) * margin_ + 0.5);
        Tick predicted = queueing + dag.criticalPathRuntime();
        return predicted > request.relDeadline
                   ? AdmissionVerdict::Rejected
                   : AdmissionVerdict::Admitted;
    }

  private:
    double margin_;
};

} // namespace

std::unique_ptr<AdmissionPolicy>
makeAdmissionPolicy(const AdmissionConfig &config)
{
    switch (config.kind) {
      case AdmissionKind::AdmitAll:
        return std::make_unique<AdmitAllPolicy>();
      case AdmissionKind::QueueCap:
        return std::make_unique<QueueCapPolicy>(config.queueCap);
      case AdmissionKind::Laxity:
        return std::make_unique<LaxityPolicy>(config.laxityMargin);
    }
    panic("unknown admission kind");
}

} // namespace relief
